// Package dist is the cluster coordinator for distributed Monte-Carlo runs:
// it partitions a run's replication index space [0, reps) into contiguous
// shards, dispatches them to a set of rayschedd workers over POST /v1/shard
// (through the retrying client), and merges the returned shard documents
// into one complete result map in replication-index order.
//
// Correctness rests on the sim layer's determinism contract: every worker
// splits the same per-replication RNG streams, so a shard's bytes are
// independent of which worker computed it, how many workers exist, and in
// what order shards complete. The coordinator therefore only has to ensure
// coverage — every index merged exactly once — and the final artifact is
// byte-identical to a single-node run by construction.
//
// Failure model:
//
//   - Each dispatch holds a lease: a per-attempt context deadline. A worker
//     that dies, hangs, or is partitioned misses its lease and the shard is
//     requeued for any live worker — work is reassigned, never lost.
//   - A worker accumulating consecutive failed attempts is declared dead and
//     its loop exits; the run continues on the survivors and fails only when
//     no worker remains with shards outstanding.
//   - Application errors (4xx, identity mismatches) are deterministic —
//     retrying them elsewhere cannot help — and abort the run.
//   - The faults site "dist.shard" (faults.SiteDistShard) injects dispatch
//     failures deterministically, exercising the reassignment path in tests
//     without killing processes; injected failures do not count toward a
//     worker's death.
package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"rayfade/internal/client"
	"rayfade/internal/faults"
	"rayfade/internal/obs"
	"rayfade/internal/progress"
	"rayfade/internal/sim"
	"rayfade/internal/version"
)

// Config shapes a coordinator. Zero fields take the documented defaults.
type Config struct {
	// Workers are the base URLs of the rayschedd instances to shard across.
	// At least one is required.
	Workers []string
	// ShardSize is the replication count per shard; <= 0 selects
	// ceil(reps / (4 · workers)), min 1 — about four waves per worker, small
	// enough that losing a worker forfeits little progress, large enough to
	// amortize dispatch overhead.
	ShardSize int
	// LeaseTimeout bounds one dispatch attempt (including the client's
	// retries within it); a missed lease requeues the shard. <= 0 selects 2m.
	LeaseTimeout time.Duration
	// MaxAttempts caps dispatch attempts per shard across all workers;
	// <= 0 selects 4.
	MaxAttempts int
	// DeadAfter is the number of consecutive failed attempts after which a
	// worker is declared dead and abandoned; <= 0 selects 2.
	DeadAfter int
	// Client is the retry-policy template for per-worker clients; BaseURL
	// and JitterSeed are overridden per worker (distinct seeds, so workers'
	// backoff schedules do not herd).
	Client client.Config
	// Log receives coordinator events (dispatches, reassignments, worker
	// death). Nil discards.
	Log *slog.Logger
	// Tracker, when non-nil, aggregates cluster-wide progress: the
	// coordinator adds the run's replication total up front and marks a
	// whole shard's replications done as each shard document lands, so one
	// local Tracker carries the ETA for work executing remotely.
	Tracker *progress.Tracker
}

func (c Config) withDefaults() Config {
	if c.LeaseTimeout <= 0 {
		c.LeaseTimeout = 2 * time.Minute
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 2
	}
	return c
}

// Job describes one distributed run. The coordinator is experiment-agnostic:
// the request builder closes over the experiment parameters, and the
// identity triple is what every returned shard is validated against.
type Job struct {
	// Experiment and ConfigSHA identify the run (sim checkpoint identity).
	Experiment string
	ConfigSHA  string
	// Reps is the replication count; shards partition [0, Reps).
	Reps int
	// NewRequest marshals the POST /v1/shard body for range [lo, hi).
	NewRequest func(lo, hi int) ([]byte, error)
}

// WorkerInfo is what Discover learns about one live worker.
type WorkerInfo struct {
	URL        string
	Instance   string
	Version    string
	GoMaxProcs int
}

// Stats summarizes a completed (or failed) Run.
type Stats struct {
	// Shards is the partition size; Completed counts shard documents merged.
	Shards    int
	Completed int
	// Reassigned counts dispatch attempts that failed and sent the shard
	// back to the queue (lease expiry, transport failure, injected fault).
	Reassigned int
	// DeadWorkers counts workers abandoned after consecutive failures.
	DeadWorkers int
}

// workerHealth mirrors the rayschedd /healthz body.
type workerHealth struct {
	Status          string `json:"status"`
	Version         string `json:"version"`
	Instance        string `json:"instance"`
	GoMaxProcs      int    `json:"gomaxprocs"`
	ShardsInflight  int64  `json:"shards_inflight"`
	ShardsCompleted int64  `json:"shards_completed"`
}

// Coordinator drives distributed runs against a fixed worker set.
type Coordinator struct {
	cfg Config
	log *slog.Logger
}

// New validates cfg and builds a Coordinator.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("dist: no workers configured")
	}
	cfg = cfg.withDefaults()
	log := cfg.Log
	if log == nil {
		log = obs.Discard()
	}
	return &Coordinator{cfg: cfg, log: log}, nil
}

// Discover probes every worker's /healthz and returns the live ones. Dead
// workers are tolerated (logged) as long as at least one answers; a live
// worker running a different build than the coordinator is an error, because
// byte-identity across the cluster assumes identical code.
func (c *Coordinator) Discover(ctx context.Context) ([]WorkerInfo, error) {
	httpClient := c.cfg.Client.HTTPClient
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	var live []WorkerInfo
	for _, url := range c.cfg.Workers {
		h, err := fetchHealth(ctx, httpClient, url)
		if err != nil {
			c.log.Warn("dist: worker unreachable", "worker", url, "err", err.Error())
			continue
		}
		if h.Status != "ok" {
			c.log.Warn("dist: worker unhealthy", "worker", url, "status", h.Status)
			continue
		}
		if h.Version != version.Version {
			return nil, fmt.Errorf("dist: worker %s runs version %q, coordinator is %q — shard bytes would not be comparable",
				url, h.Version, version.Version)
		}
		live = append(live, WorkerInfo{URL: url, Instance: h.Instance, Version: h.Version, GoMaxProcs: h.GoMaxProcs})
	}
	if len(live) == 0 {
		return nil, fmt.Errorf("dist: none of the %d configured workers is reachable", len(c.cfg.Workers))
	}
	return live, nil
}

func fetchHealth(ctx context.Context, httpClient *http.Client, baseURL string) (workerHealth, error) {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/healthz", nil)
	if err != nil {
		return workerHealth{}, err
	}
	resp, err := httpClient.Do(req)
	if err != nil {
		return workerHealth{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return workerHealth{}, fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	var h workerHealth
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return workerHealth{}, err
	}
	return h, nil
}

// shardTask is one shard's scheduling state. Attempt counting lives here —
// the task survives reassignment across workers, so the cap is global.
type shardTask struct {
	lo, hi   int
	attempts int
}

// outcome classifies one dispatch attempt.
type outcome int

const (
	// outcomeOK: the shard document was received, validated, and recorded.
	outcomeOK outcome = iota
	// outcomeTransient: the attempt failed in a way another attempt may fix
	// (lease expiry, transport failure, corrupt transfer). Counts toward the
	// worker's consecutive-failure death threshold.
	outcomeTransient
	// outcomeInjected: a deterministic chaos fault burned the attempt. The
	// shard requeues but the worker's health is not implicated.
	outcomeInjected
	// outcomeCancelled: the run's context ended mid-attempt.
	outcomeCancelled
	// outcomeFatal: a deterministic failure (4xx, identity mismatch); the
	// run must abort.
	outcomeFatal
)

// shardSize resolves the effective shard size for a run.
func (c *Coordinator) shardSize(reps int) int {
	size := c.cfg.ShardSize
	if size <= 0 {
		waves := 4 * len(c.cfg.Workers)
		size = (reps + waves - 1) / waves
	}
	if size < 1 {
		size = 1
	}
	return size
}

// Run executes job across the worker set and returns the merged
// per-replication results (the input to sim.WriteMergedCheckpoint) plus run
// statistics. The stats are valid even when err is non-nil.
func (c *Coordinator) Run(ctx context.Context, job Job) (map[int]json.RawMessage, Stats, error) {
	var stats Stats
	if job.Reps <= 0 {
		return nil, stats, fmt.Errorf("dist: job with %d replications", job.Reps)
	}
	if job.NewRequest == nil {
		return nil, stats, errors.New("dist: job has no request builder")
	}
	size := c.shardSize(job.Reps)
	var tasks []*shardTask
	for lo := 0; lo < job.Reps; lo += size {
		hi := lo + size
		if hi > job.Reps {
			hi = job.Reps
		}
		tasks = append(tasks, &shardTask{lo: lo, hi: hi})
	}
	stats.Shards = len(tasks)
	c.cfg.Tracker.AddTotal(job.Reps)
	c.log.Info("dist: run starting",
		"experiment", job.Experiment, "reps", job.Reps,
		"shards", len(tasks), "shard_size", size, "workers", len(c.cfg.Workers))

	// The queue is buffered to the full shard count, so a requeue can never
	// block: each task is either queued, in flight on exactly one worker, or
	// completed.
	queue := make(chan *shardTask, len(tasks))
	for _, task := range tasks {
		queue <- task
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu        sync.Mutex
		shards    []*sim.Shard
		remaining = len(tasks)
		alive     = len(c.cfg.Workers)
		runErr    error
	)
	done := make(chan struct{})
	fail := func(err error) {
		mu.Lock()
		if runErr == nil {
			runErr = err
		}
		mu.Unlock()
		cancel()
	}
	// recordShard admits one validated shard; returns after closing done
	// when it was the last.
	recordShard := func(sh *sim.Shard) {
		mu.Lock()
		shards = append(shards, sh)
		stats.Completed++
		remaining--
		last := remaining == 0
		mu.Unlock()
		if last {
			close(done)
		}
	}
	// requeueShard returns a failed task to the pool, or aborts the run when
	// its attempt budget is spent.
	requeueShard := func(task *shardTask, cause error) {
		mu.Lock()
		stats.Reassigned++
		exhausted := task.attempts >= c.cfg.MaxAttempts
		if !exhausted {
			queue <- task
		}
		mu.Unlock()
		if exhausted {
			fail(fmt.Errorf("dist: shard [%d,%d) failed %d attempts: %w",
				task.lo, task.hi, task.attempts, cause))
		}
	}

	var wg sync.WaitGroup
	for i, url := range c.cfg.Workers {
		seed := c.cfg.Client.JitterSeed
		if seed == 0 {
			seed = 1
		}
		ccfg := c.cfg.Client
		ccfg.BaseURL = url
		ccfg.JitterSeed = seed + uint64(i)
		w := &workerLoop{coord: c, url: url, client: client.New(ccfg)}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.run(ctx, job, queue, recordShard, requeueShard, fail)
			mu.Lock()
			if w.dead {
				stats.DeadWorkers++
			}
			alive--
			lastWorker := alive == 0 && remaining > 0
			outstanding := remaining
			mu.Unlock()
			if lastWorker {
				fail(fmt.Errorf("dist: all %d workers failed with %d shards outstanding",
					len(c.cfg.Workers), outstanding))
			}
		}()
	}

	select {
	case <-done:
		cancel() // release the idle worker loops
	case <-ctx.Done():
	}
	wg.Wait()

	mu.Lock()
	err := runErr
	merged := shards
	finalStats := stats
	mu.Unlock()
	if err != nil {
		return nil, finalStats, err
	}
	if cerr := context.Cause(ctx); cerr != nil && finalStats.Completed < finalStats.Shards {
		return nil, finalStats, cerr
	}
	results, err := sim.MergeShards(job.Experiment, job.ConfigSHA, job.Reps, merged)
	if err != nil {
		return nil, finalStats, err
	}
	c.log.Info("dist: run complete",
		"shards", finalStats.Shards, "reassigned", finalStats.Reassigned,
		"dead_workers", finalStats.DeadWorkers)
	return results, finalStats, nil
}

// workerLoop is one worker's dispatch goroutine state.
type workerLoop struct {
	coord  *Coordinator
	url    string
	client *client.Client
	fails  int  // consecutive transient failures
	dead   bool // declared dead after DeadAfter consecutive failures
}

// run pulls shards off the queue until the context ends or the worker is
// declared dead, routing each attempt's result to exactly one of the three
// callbacks.
func (w *workerLoop) run(ctx context.Context, job Job, queue chan *shardTask,
	record func(*sim.Shard), requeue func(*shardTask, error), fatal func(error)) {
	for {
		var task *shardTask
		select {
		case <-ctx.Done():
			return
		case task = <-queue:
		}
		sh, out, err := w.attempt(ctx, job, task)
		switch out {
		case outcomeOK:
			w.fails = 0
			record(sh)
		case outcomeInjected:
			w.coord.log.Warn("dist: injected dispatch fault",
				"worker", w.url, "lo", task.lo, "hi", task.hi, "attempt", task.attempts)
			requeue(task, err)
		case outcomeTransient:
			w.fails++
			w.coord.log.Warn("dist: shard attempt failed",
				"worker", w.url, "lo", task.lo, "hi", task.hi,
				"attempt", task.attempts, "err", err.Error())
			requeue(task, err)
			if w.fails >= w.coord.cfg.DeadAfter {
				w.dead = true
				w.coord.log.Warn("dist: worker declared dead",
					"worker", w.url, "consecutive_failures", w.fails)
				return
			}
		case outcomeCancelled:
			// Return the task so the accounting stays consistent if another
			// path (not cancellation) raced us; the queue has capacity.
			queue <- task
			return
		case outcomeFatal:
			fatal(err)
			return
		}
	}
}

// attempt dispatches one shard to this worker under a lease and classifies
// the result. On outcomeOK the returned shard is validated against the job
// identity and the requested range.
func (w *workerLoop) attempt(ctx context.Context, job Job, task *shardTask) (*sim.Shard, outcome, error) {
	task.attempts++
	// Keep the span's ctx: the client call below derives its lease from it,
	// so the outbound request carries this span as the remote parent in its
	// X-Trace-Context header and the worker's spans stitch under it.
	sctx, sp := obs.StartDetached(ctx, "dist.shard")
	sp.SetAttr("worker", w.url)
	sp.SetAttr("lo", task.lo)
	sp.SetAttr("hi", task.hi)
	sp.SetAttr("attempt", task.attempts)
	result := "ok"
	defer func() {
		sp.SetAttr("outcome", result)
		sp.End()
	}()

	// Chaos hook: an injected error burns this attempt — the shard requeues
	// exactly as if the dispatch had failed on the wire.
	if ferr := faults.Inject(faults.SiteDistShard); ferr != nil {
		result = "injected"
		return nil, outcomeInjected, ferr
	}

	body, berr := job.NewRequest(task.lo, task.hi)
	if berr != nil {
		result = "fatal"
		return nil, outcomeFatal, fmt.Errorf("dist: build shard request [%d,%d): %w", task.lo, task.hi, berr)
	}
	lease, cancel := context.WithTimeout(sctx, w.coord.cfg.LeaseTimeout)
	defer cancel()
	resp, status, perr := w.client.PostJSON(lease, "/v1/shard", body)
	switch {
	case perr != nil && ctx.Err() != nil:
		result = "cancelled"
		return nil, outcomeCancelled, ctx.Err()
	case perr != nil:
		// Transport failure, exhausted retry budget, or lease expiry: the
		// lease is released and the shard goes back to the pool.
		result = "lease"
		return nil, outcomeTransient, fmt.Errorf("dist: worker %s: %w", w.url, perr)
	}
	if status != http.StatusOK {
		// Terminal application status (the client already retried the
		// retryable ones): deterministic, another worker would answer the
		// same. Abort.
		result = "fatal"
		return nil, outcomeFatal, fmt.Errorf("dist: worker %s answered %d for shard [%d,%d): %s",
			w.url, status, task.lo, task.hi, firstLine(resp))
	}
	decoded, derr := sim.DecodeShard(resp)
	if derr != nil {
		// A corrupt document may be a mangled transfer; let another attempt
		// try rather than aborting the run.
		result = "corrupt"
		return nil, outcomeTransient, fmt.Errorf("dist: worker %s shard [%d,%d): %w", w.url, task.lo, task.hi, derr)
	}
	if decoded.Experiment != job.Experiment || decoded.ConfigSHA != job.ConfigSHA ||
		decoded.Reps != job.Reps || decoded.Lo != task.lo || decoded.Hi != task.hi {
		// Identity mismatch means the worker computed a different run —
		// wrong build or wrong parameters. Deterministic; abort.
		result = "fatal"
		return nil, outcomeFatal, fmt.Errorf("dist: worker %s returned a shard for a different run: experiment %q sha %.12s… reps %d range [%d,%d), want %q %.12s… %d [%d,%d)",
			w.url, decoded.Experiment, decoded.ConfigSHA, decoded.Reps, decoded.Lo, decoded.Hi,
			job.Experiment, job.ConfigSHA, job.Reps, task.lo, task.hi)
	}
	w.coord.cfg.Tracker.AddDone(task.hi - task.lo)
	w.coord.log.Info("dist: shard complete",
		"worker", w.url, "lo", task.lo, "hi", task.hi, "attempt", task.attempts)
	return decoded, outcomeOK, nil
}

// firstLine trims a response body to its first line for error messages.
func firstLine(b []byte) string {
	for i, c := range b {
		if c == '\n' {
			b = b[:i]
			break
		}
	}
	const max = 200
	if len(b) > max {
		b = b[:max]
	}
	return string(b)
}
