// Package dist is the cluster coordinator for distributed Monte-Carlo runs:
// it partitions a run's replication index space [0, reps) into contiguous
// shards, dispatches them to a set of rayschedd workers over POST /v1/shard
// (through the retrying client), and merges the returned shard documents
// into one complete result map in replication-index order.
//
// Correctness rests on the sim layer's determinism contract: every worker
// splits the same per-replication RNG streams, so a shard's bytes are
// independent of which worker computed it, how many workers exist, and in
// what order shards complete. The coordinator therefore only has to ensure
// coverage — every index merged exactly once — and the final artifact is
// byte-identical to a single-node run by construction.
//
// Failure model:
//
//   - Each dispatch holds a lease: a per-attempt context deadline. A worker
//     that dies, hangs, or is partitioned misses its lease and the shard is
//     requeued for any live worker — work is reassigned, never lost.
//   - The coordinator itself is crash-safe when Config.JournalDir is set:
//     every landed shard is spilled atomically to the journal, and a
//     restarted coordinator resumes by loading valid journal shards and
//     re-dispatching only the uncovered ranges (see journal.go).
//   - A worker accumulating consecutive failed attempts is quarantined, not
//     killed: a circuit breaker probes its /healthz on a jittered doubling
//     backoff and re-admits it when healthy — after re-checking identity, so
//     a worker restarted with a different build is rejected rather than
//     merged. Only MaxProbes consecutive failed probes (or version skew)
//     make the death permanent; the run fails when no worker remains with
//     shards outstanding.
//   - Straggler hedging: when a shard attempt has been in flight longer than
//     a threshold (fixed via HedgeAfter, or derived from completed-shard
//     durations), the shard is speculatively queued for a second worker.
//     First valid document wins and cancels the loser. Determinism is free —
//     both copies would produce identical bytes.
//   - Application errors (4xx, identity mismatches) are deterministic —
//     retrying them elsewhere cannot help — and abort the run.
//   - The faults site "dist.shard" (faults.SiteDistShard) injects dispatch
//     failures deterministically, exercising the reassignment path in tests
//     without killing processes; injected failures do not count toward a
//     worker's quarantine threshold. The client-level sites
//     ("client.latency", "client.blackhole") simulate slow links and
//     partitions underneath the coordinator.
package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"rayfade/internal/client"
	"rayfade/internal/faults"
	"rayfade/internal/obs"
	"rayfade/internal/progress"
	"rayfade/internal/rng"
	"rayfade/internal/sim"
	"rayfade/internal/version"
)

// Config shapes a coordinator. Zero fields take the documented defaults.
type Config struct {
	// Workers are the base URLs of the rayschedd instances to shard across.
	// At least one is required.
	Workers []string
	// ShardSize is the replication count per shard; <= 0 selects
	// ceil(reps / (4 · workers)), min 1 — about four waves per worker, small
	// enough that losing a worker forfeits little progress, large enough to
	// amortize dispatch overhead.
	ShardSize int
	// LeaseTimeout bounds one dispatch attempt (including the client's
	// retries within it); a missed lease requeues the shard. <= 0 selects 2m.
	LeaseTimeout time.Duration
	// MaxAttempts caps dispatch attempts per shard across all workers;
	// <= 0 selects 4.
	MaxAttempts int
	// DeadAfter is the number of consecutive failed attempts after which a
	// worker is quarantined (probed for re-admission, not abandoned);
	// <= 0 selects 2.
	DeadAfter int
	// JournalDir, when non-empty, enables the shard journal: every landed
	// shard is atomically spilled there, and Run first loads valid shards
	// for the same run identity and re-dispatches only uncovered ranges.
	JournalDir string
	// HedgeAfter tunes straggler hedging. Zero (the default) derives the
	// threshold adaptively: 3x the median completed-shard duration, armed
	// once 3 shards have completed, floored at 250ms. A positive value is a
	// fixed threshold; negative disables hedging.
	HedgeAfter time.Duration
	// ProbeInterval is the base interval between quarantine health probes
	// (jittered, doubling per consecutive failed probe, capped at 16x);
	// <= 0 selects 2s.
	ProbeInterval time.Duration
	// MaxProbes is how many consecutive failed probes turn quarantine into
	// permanent death; <= 0 selects 8.
	MaxProbes int
	// Client is the retry-policy template for per-worker clients; BaseURL
	// and JitterSeed are overridden per worker (distinct seeds, so workers'
	// backoff schedules do not herd).
	Client client.Config
	// Log receives coordinator events (dispatches, reassignments, hedges,
	// quarantine transitions). Nil discards.
	Log *slog.Logger
	// Tracker, when non-nil, aggregates cluster-wide progress: the
	// coordinator adds the run's replication total up front and marks a
	// whole shard's replications done as each shard document lands (journal
	// restores count immediately), so one local Tracker carries the ETA for
	// work executing remotely.
	Tracker *progress.Tracker
	// Now and Sleep are the coordinator's clock; nil selects the real one.
	// Tests inject a fake so quarantine backoff and hedge sweeps run without
	// wall-clock waits.
	Now   func() time.Time
	Sleep func(ctx context.Context, d time.Duration) error
}

func (c Config) withDefaults() Config {
	if c.LeaseTimeout <= 0 {
		c.LeaseTimeout = 2 * time.Minute
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 2
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.MaxProbes <= 0 {
		c.MaxProbes = 8
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Sleep == nil {
		c.Sleep = sleepCtx
	}
	return c
}

// sleepCtx is context-aware time.Sleep.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Job describes one distributed run. The coordinator is experiment-agnostic:
// the request builder closes over the experiment parameters, and the
// identity triple is what every returned shard is validated against.
type Job struct {
	// Experiment and ConfigSHA identify the run (sim checkpoint identity).
	Experiment string
	ConfigSHA  string
	// Reps is the replication count; shards partition [0, Reps).
	Reps int
	// NewRequest marshals the POST /v1/shard body for range [lo, hi).
	NewRequest func(lo, hi int) ([]byte, error)
}

// WorkerInfo is what Discover learns about one live worker.
type WorkerInfo struct {
	URL        string
	Instance   string
	Version    string
	GoMaxProcs int
}

// Stats summarizes a completed (or failed) Run.
type Stats struct {
	// Shards is the partition size (journal restores included); Completed
	// counts shard documents dispatched and merged this run. On success
	// Resumed + Completed == Shards.
	Shards    int
	Completed int
	// Resumed counts shards restored from the journal instead of dispatched.
	Resumed int
	// Reassigned counts dispatch attempts that failed and sent the shard
	// back to the queue (lease expiry, transport failure, injected fault).
	Reassigned int
	// Hedged counts shards speculatively dispatched to a second worker
	// because the first attempt exceeded the straggler threshold.
	Hedged int
	// Quarantined counts quarantine entries (a worker can re-enter);
	// Readmitted counts quarantines that ended in re-admission.
	Quarantined int
	Readmitted  int
	// DeadWorkers counts workers whose quarantine became permanent death
	// (probe budget exhausted, or identity re-check failed).
	DeadWorkers int
}

// workerHealth mirrors the rayschedd /healthz body.
type workerHealth struct {
	Status          string `json:"status"`
	Version         string `json:"version"`
	Instance        string `json:"instance"`
	GoMaxProcs      int    `json:"gomaxprocs"`
	ShardsInflight  int64  `json:"shards_inflight"`
	ShardsCompleted int64  `json:"shards_completed"`
}

// Coordinator drives distributed runs against a fixed worker set.
type Coordinator struct {
	cfg Config
	log *slog.Logger
}

// New validates cfg and builds a Coordinator.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("dist: no workers configured")
	}
	cfg = cfg.withDefaults()
	log := cfg.Log
	if log == nil {
		log = obs.Discard()
	}
	return &Coordinator{cfg: cfg, log: log}, nil
}

// Discover probes every worker's /healthz and returns the live ones. Dead
// workers are tolerated (logged) as long as at least one answers; a live
// worker running a different build than the coordinator is an error, because
// byte-identity across the cluster assumes identical code. A draining worker
// is skipped like a dead one — it is refusing new work on purpose.
func (c *Coordinator) Discover(ctx context.Context) ([]WorkerInfo, error) {
	httpClient := c.cfg.Client.HTTPClient
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	var live []WorkerInfo
	for _, url := range c.cfg.Workers {
		h, err := fetchHealth(ctx, httpClient, url)
		if err != nil {
			c.log.Warn("dist: worker unreachable", "worker", url, "err", err.Error())
			continue
		}
		if h.Status != "ok" {
			c.log.Warn("dist: worker unhealthy", "worker", url, "status", h.Status)
			continue
		}
		if h.Version != version.Version {
			return nil, fmt.Errorf("dist: worker %s runs version %q, coordinator is %q — shard bytes would not be comparable",
				url, h.Version, version.Version)
		}
		live = append(live, WorkerInfo{URL: url, Instance: h.Instance, Version: h.Version, GoMaxProcs: h.GoMaxProcs})
	}
	if len(live) == 0 {
		return nil, fmt.Errorf("dist: none of the %d configured workers is reachable", len(c.cfg.Workers))
	}
	return live, nil
}

func fetchHealth(ctx context.Context, httpClient *http.Client, baseURL string) (workerHealth, error) {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/healthz", nil)
	if err != nil {
		return workerHealth{}, err
	}
	resp, err := httpClient.Do(req)
	if err != nil {
		return workerHealth{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return workerHealth{}, fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	var h workerHealth
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return workerHealth{}, err
	}
	return h, nil
}

// shardTask is one shard's scheduling state, guarded by run.mu. Attempt
// counting lives here — the task survives reassignment across workers, so
// the cap is global. A task may be in flight on two workers at once (the
// hedge); done flips exactly once, when the first valid document lands, and
// cancels holds the in-flight attempts' cancel functions so the winner can
// cut the loser loose.
type shardTask struct {
	lo, hi   int
	attempts int
	inflight int
	hedged   bool
	done     bool
	started  time.Time
	cancels  []context.CancelFunc
}

// outcome classifies one dispatch attempt.
type outcome int

const (
	// outcomeOK: the shard document was received, validated, and recorded.
	outcomeOK outcome = iota
	// outcomeTransient: the attempt failed in a way another attempt may fix
	// (lease expiry, transport failure, corrupt transfer). Counts toward the
	// worker's consecutive-failure quarantine threshold.
	outcomeTransient
	// outcomeInjected: a deterministic chaos fault burned the attempt. The
	// shard requeues but the worker's health is not implicated.
	outcomeInjected
	// outcomeCancelled: the attempt's context ended mid-flight — either the
	// whole run ended, or a hedged twin won and cancelled this copy.
	outcomeCancelled
	// outcomeFatal: a deterministic failure (4xx, identity mismatch); the
	// run must abort.
	outcomeFatal
)

// shardSize resolves the effective shard size for a run.
func (c *Coordinator) shardSize(reps int) int {
	size := c.cfg.ShardSize
	if size <= 0 {
		waves := 4 * len(c.cfg.Workers)
		size = (reps + waves - 1) / waves
	}
	if size < 1 {
		size = 1
	}
	return size
}

// run is one Run invocation's shared state. Everything below mu is guarded
// by it; queue capacity is sized so no sender ever blocks (each task has at
// most two live copies — original and hedge — plus per-worker cancel
// returns).
type run struct {
	c       *Coordinator
	job     Job
	journal *journal

	queue chan *shardTask

	mu        sync.Mutex
	stats     Stats
	shards    []*sim.Shard
	tasks     []*shardTask
	remaining int
	alive     int
	durations []time.Duration
	runErr    error

	done     chan struct{}
	doneOnce sync.Once
	cancel   context.CancelFunc
}

// Run executes job across the worker set and returns the merged
// per-replication results (the input to sim.WriteMergedCheckpoint) plus run
// statistics. The stats are valid even when err is non-nil.
func (c *Coordinator) Run(ctx context.Context, job Job) (map[int]json.RawMessage, Stats, error) {
	if job.Reps <= 0 {
		return nil, Stats{}, fmt.Errorf("dist: job with %d replications", job.Reps)
	}
	if job.NewRequest == nil {
		return nil, Stats{}, errors.New("dist: job has no request builder")
	}

	r := &run{c: c, job: job, done: make(chan struct{})}

	// Resume before partitioning: journal shards subtract from the index
	// space, and only the uncovered gaps become dispatchable tasks.
	var restored []*sim.Shard
	if c.cfg.JournalDir != "" {
		j, err := openJournal(c.cfg.JournalDir)
		if err != nil {
			return nil, Stats{}, err
		}
		r.journal = j
		restored = j.load(job, c.log)
	}
	size := c.shardSize(job.Reps)
	r.tasks = uncoveredTasks(job.Reps, size, restored)
	r.shards = append(r.shards, restored...)
	r.stats.Resumed = len(restored)
	r.stats.Shards = len(r.tasks) + len(restored)
	r.remaining = len(r.tasks)
	r.alive = len(c.cfg.Workers)

	c.cfg.Tracker.AddTotal(job.Reps)
	restoredReps := 0
	for _, sh := range restored {
		restoredReps += sh.Hi - sh.Lo
	}
	c.cfg.Tracker.AddDone(restoredReps)
	c.log.Info("dist: run starting",
		"experiment", job.Experiment, "reps", job.Reps,
		"shards", r.stats.Shards, "resumed", r.stats.Resumed,
		"shard_size", size, "workers", len(c.cfg.Workers))

	if r.remaining == 0 {
		// The journal already covers the whole run; nothing to dispatch.
		return r.finish(ctx)
	}

	r.queue = make(chan *shardTask, 2*len(r.tasks)+len(c.cfg.Workers))
	for _, task := range r.tasks {
		r.queue <- task
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	r.cancel = cancel

	var wg sync.WaitGroup
	if c.cfg.HedgeAfter >= 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.hedgeMonitor(ctx)
		}()
	}
	for i, url := range c.cfg.Workers {
		seed := c.cfg.Client.JitterSeed
		if seed == 0 {
			seed = 1
		}
		ccfg := c.cfg.Client
		ccfg.BaseURL = url
		ccfg.JitterSeed = seed + uint64(i)
		w := &workerLoop{
			coord:  c,
			url:    url,
			client: client.New(ccfg),
			// An independent jitter stream per worker so probe schedules do
			// not herd; offset past the client seeds for stream separation.
			probeJitter: rng.New(seed + uint64(i) + 0x9e37),
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.run(ctx, r)
			r.mu.Lock()
			if w.dead {
				r.stats.DeadWorkers++
			}
			r.alive--
			lastWorker := r.alive == 0 && r.remaining > 0
			outstanding := r.remaining
			r.mu.Unlock()
			if lastWorker {
				r.fail(fmt.Errorf("dist: all %d workers failed with %d shards outstanding",
					len(c.cfg.Workers), outstanding))
			}
		}()
	}

	select {
	case <-r.done:
		cancel() // release the idle worker loops and the hedge monitor
	case <-ctx.Done():
	}
	wg.Wait()
	return r.finish(ctx)
}

// uncoveredTasks partitions the index ranges restored does not cover into
// dispatchable tasks of at most size replications. restored must be sorted
// by Lo and non-overlapping (journal.load guarantees both).
func uncoveredTasks(reps, size int, restored []*sim.Shard) []*shardTask {
	var tasks []*shardTask
	addRange := func(lo, hi int) {
		for ; lo < hi; lo += size {
			end := lo + size
			if end > hi {
				end = hi
			}
			tasks = append(tasks, &shardTask{lo: lo, hi: end})
		}
	}
	next := 0
	for _, sh := range restored {
		addRange(next, sh.Lo)
		next = sh.Hi
	}
	addRange(next, reps)
	return tasks
}

// finish merges the collected shards and reports the final stats.
func (r *run) finish(ctx context.Context) (map[int]json.RawMessage, Stats, error) {
	r.mu.Lock()
	err := r.runErr
	merged := append([]*sim.Shard(nil), r.shards...)
	finalStats := r.stats
	outstanding := r.remaining
	r.mu.Unlock()
	if err != nil {
		return nil, finalStats, err
	}
	if cerr := context.Cause(ctx); cerr != nil && outstanding > 0 {
		return nil, finalStats, cerr
	}
	results, err := sim.MergeShards(r.job.Experiment, r.job.ConfigSHA, r.job.Reps, merged)
	if err != nil {
		return nil, finalStats, err
	}
	r.c.log.Info("dist: run complete",
		"shards", finalStats.Shards, "resumed", finalStats.Resumed,
		"reassigned", finalStats.Reassigned, "hedged", finalStats.Hedged,
		"quarantined", finalStats.Quarantined, "readmitted", finalStats.Readmitted,
		"dead_workers", finalStats.DeadWorkers)
	return results, finalStats, nil
}

// fail records the first fatal error and cancels the run.
func (r *run) fail(err error) {
	r.mu.Lock()
	if r.runErr == nil {
		r.runErr = err
	}
	cancel := r.cancel
	r.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

func (r *run) closeDone() {
	r.doneOnce.Do(func() { close(r.done) })
}

// claim registers one dispatch attempt for task: a per-attempt cancellable
// context (so a hedge winner can cut this attempt loose) and the global
// attempt count. ok is false when the task already completed — a stale queue
// copy to be dropped.
func (r *run) claim(ctx context.Context, task *shardTask) (actx context.Context, attemptN int, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if task.done {
		return nil, 0, false
	}
	actx, cancel := context.WithCancel(ctx)
	task.cancels = append(task.cancels, cancel)
	if task.inflight == 0 {
		// The straggler clock starts at first dispatch and is not reset by
		// the hedge — the threshold measures how long the shard has been
		// owed, not how long one copy has run.
		task.started = r.c.cfg.Now()
	}
	task.inflight++
	task.attempts++
	return actx, task.attempts, true
}

// release unwinds one attempt's claim and reports whether the task completed
// while (or before) this attempt ran — in which case the attempt's outcome
// is superseded and must not touch worker health or reassignment counts.
func (r *run) release(task *shardTask) (superseded bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	task.inflight--
	return task.done
}

// record admits one validated shard document: first into the journal (crash
// safety before in-memory state), then into the merge set. The first copy
// wins; a hedged twin landing second is dropped here (the bytes are
// identical by determinism, so nothing is lost). The winner cancels every
// other in-flight attempt for the task.
func (r *run) record(task *shardTask, sh *sim.Shard) {
	if r.journal != nil {
		if err := r.journal.record(sh); err != nil {
			// Journal loss degrades crash safety, not correctness: the run
			// continues, and a crash would recompute this range.
			r.c.log.Warn("dist: journal write failed",
				"lo", sh.Lo, "hi", sh.Hi, "err", err.Error())
		}
	}
	r.mu.Lock()
	if task.done {
		r.mu.Unlock()
		return
	}
	task.done = true
	cancels := task.cancels
	task.cancels = nil
	r.shards = append(r.shards, sh)
	r.stats.Completed++
	r.durations = append(r.durations, r.c.cfg.Now().Sub(task.started))
	r.remaining--
	last := r.remaining == 0
	r.mu.Unlock()
	for _, cancel := range cancels {
		cancel()
	}
	r.c.cfg.Tracker.AddDone(task.hi - task.lo)
	if last {
		r.closeDone()
	}
}

// requeue returns a failed task to the pool, or aborts the run when its
// attempt budget is spent. A task that completed in the meantime (hedge
// winner) is dropped silently — its failure is moot.
func (r *run) requeue(task *shardTask, cause error) {
	r.mu.Lock()
	if task.done {
		r.mu.Unlock()
		return
	}
	r.stats.Reassigned++
	exhausted := task.attempts >= r.c.cfg.MaxAttempts
	if !exhausted {
		r.queue <- task
	}
	r.mu.Unlock()
	if exhausted {
		r.fail(fmt.Errorf("dist: shard [%d,%d) failed %d attempts: %w",
			task.lo, task.hi, task.attempts, cause))
	}
}

// hedgeThreshold resolves the current straggler threshold; 0 means hedging
// is not yet armed (adaptive mode with too few completions).
func (r *run) hedgeThreshold() time.Duration {
	if r.c.cfg.HedgeAfter > 0 {
		return r.c.cfg.HedgeAfter
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.durations) < 3 {
		return 0
	}
	sorted := append([]time.Duration(nil), r.durations...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	th := 3 * sorted[len(sorted)/2]
	if th < 250*time.Millisecond {
		th = 250 * time.Millisecond
	}
	return th
}

// hedgeMonitor periodically sweeps in-flight tasks and queues a speculative
// second dispatch for any that exceeded the straggler threshold. At most one
// hedge per task: a straggler that stalls its hedge too is already at two
// workers, and a third copy only steals capacity from fresh shards.
func (r *run) hedgeMonitor(ctx context.Context) {
	for {
		interval := 100 * time.Millisecond
		if fixed := r.c.cfg.HedgeAfter; fixed > 0 {
			interval = fixed / 4
			if interval < 5*time.Millisecond {
				interval = 5 * time.Millisecond
			}
			if interval > time.Second {
				interval = time.Second
			}
		}
		if err := r.c.cfg.Sleep(ctx, interval); err != nil {
			return
		}
		th := r.hedgeThreshold()
		if th <= 0 {
			continue
		}
		now := r.c.cfg.Now()
		r.mu.Lock()
		for _, task := range r.tasks {
			if task.done || task.hedged || task.inflight < 1 {
				continue
			}
			if now.Sub(task.started) < th {
				continue
			}
			task.hedged = true
			r.stats.Hedged++
			r.queue <- task
			r.c.log.Info("dist: hedging straggler shard",
				"lo", task.lo, "hi", task.hi, "threshold", th.String())
		}
		idle := r.remaining == 0
		r.mu.Unlock()
		if idle {
			return
		}
	}
}

// workerLoop is one worker's dispatch goroutine state.
type workerLoop struct {
	coord       *Coordinator
	url         string
	client      *client.Client
	probeJitter *rng.Source
	instance    string // last known /healthz instance; set on re-admission
	fails       int    // consecutive transient failures
	dead        bool   // permanent death: probe budget spent or identity skew
}

// run pulls shards off the queue until the context ends or the worker dies
// permanently. Transient failures accumulate toward quarantine; quarantine
// probes /healthz until the worker is re-admitted or declared dead.
func (w *workerLoop) run(ctx context.Context, r *run) {
	for {
		var task *shardTask
		select {
		case <-ctx.Done():
			return
		case task = <-r.queue:
		}
		actx, attemptN, ok := r.claim(ctx, task)
		if !ok {
			continue // stale queue copy of a completed task
		}
		sh, out, err := w.attempt(actx, r.job, task, attemptN)
		superseded := r.release(task)
		switch out {
		case outcomeOK:
			w.fails = 0
			r.record(task, sh)
		case outcomeInjected:
			if superseded {
				continue
			}
			w.coord.log.Warn("dist: injected dispatch fault",
				"worker", w.url, "lo", task.lo, "hi", task.hi, "attempt", attemptN)
			r.requeue(task, err)
		case outcomeTransient:
			if superseded {
				continue
			}
			w.fails++
			w.coord.log.Warn("dist: shard attempt failed",
				"worker", w.url, "lo", task.lo, "hi", task.hi,
				"attempt", attemptN, "err", err.Error())
			r.requeue(task, err)
			if w.fails >= w.coord.cfg.DeadAfter {
				if !w.quarantine(ctx, r) {
					w.dead = true
					return
				}
			}
		case outcomeCancelled:
			if ctx.Err() != nil {
				// The run ended. Return the task so the accounting stays
				// consistent if another path (not cancellation) raced us;
				// the queue has capacity.
				if !superseded {
					r.queue <- task
				}
				return
			}
			// The attempt context alone was cancelled: a hedged twin won.
			// Nothing to requeue, and the worker is healthy.
		case outcomeFatal:
			if superseded {
				continue
			}
			r.fail(err)
			return
		}
	}
}

// quarantine is the circuit breaker's open state: probe the worker's
// /healthz on a jittered doubling backoff until it answers healthy (true —
// re-admitted, failure count reset) or the probe budget is spent or its
// identity fails re-validation (false — permanently dead). Probes use a
// plain HTTP client, not the retrying one, so armed client-level chaos
// (blackhole/latency) shapes dispatches without starving the probes.
func (w *workerLoop) quarantine(ctx context.Context, r *run) bool {
	r.mu.Lock()
	r.stats.Quarantined++
	r.mu.Unlock()
	cfg := w.coord.cfg
	w.coord.log.Warn("dist: worker quarantined",
		"worker", w.url, "consecutive_failures", w.fails, "probe_interval", cfg.ProbeInterval.String())
	httpClient := cfg.Client.HTTPClient
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	backoff := cfg.ProbeInterval
	for probe := 0; probe < cfg.MaxProbes; probe++ {
		// Full jitter over the current backoff, floored at a quarter of it
		// so a probe never fires immediately after the failure that
		// scheduled it.
		d := time.Duration(w.probeJitter.Float64() * float64(backoff))
		if d < backoff/4 {
			d = backoff / 4
		}
		if err := cfg.Sleep(ctx, d); err != nil {
			return false
		}
		h, err := fetchHealth(ctx, httpClient, w.url)
		if err != nil || h.Status != "ok" {
			status := "unreachable"
			if err == nil {
				status = h.Status
			}
			w.coord.log.Warn("dist: quarantine probe failed",
				"worker", w.url, "probe", probe+1, "status", status)
			backoff *= 2
			if limit := 16 * cfg.ProbeInterval; backoff > limit {
				backoff = limit
			}
			continue
		}
		// Identity re-check on re-admission: a worker that came back with a
		// different build would return shards the merge cannot trust.
		if h.Version != version.Version {
			w.coord.log.Error("dist: re-admission refused: version skew",
				"worker", w.url, "worker_version", h.Version, "coordinator_version", version.Version)
			return false
		}
		if w.instance != "" && h.Instance != w.instance {
			w.coord.log.Info("dist: worker restarted while quarantined",
				"worker", w.url, "old_instance", w.instance, "new_instance", h.Instance)
		}
		w.instance = h.Instance
		w.fails = 0
		r.mu.Lock()
		r.stats.Readmitted++
		r.mu.Unlock()
		w.coord.log.Info("dist: worker re-admitted", "worker", w.url, "probes", probe+1)
		return true
	}
	w.coord.log.Warn("dist: worker declared dead",
		"worker", w.url, "probes", cfg.MaxProbes)
	return false
}

// attempt dispatches one shard to this worker under a lease and classifies
// the result. On outcomeOK the returned shard is validated against the job
// identity and the requested range.
func (w *workerLoop) attempt(ctx context.Context, job Job, task *shardTask, attemptN int) (*sim.Shard, outcome, error) {
	// Keep the span's ctx: the client call below derives its lease from it,
	// so the outbound request carries this span as the remote parent in its
	// X-Trace-Context header and the worker's spans stitch under it.
	sctx, sp := obs.StartDetached(ctx, "dist.shard")
	sp.SetAttr("worker", w.url)
	sp.SetAttr("lo", task.lo)
	sp.SetAttr("hi", task.hi)
	sp.SetAttr("attempt", attemptN)
	result := "ok"
	defer func() {
		sp.SetAttr("outcome", result)
		sp.End()
	}()

	// Chaos hook: an injected error burns this attempt — the shard requeues
	// exactly as if the dispatch had failed on the wire.
	if ferr := faults.Inject(faults.SiteDistShard); ferr != nil {
		result = "injected"
		return nil, outcomeInjected, ferr
	}

	body, berr := job.NewRequest(task.lo, task.hi)
	if berr != nil {
		result = "fatal"
		return nil, outcomeFatal, fmt.Errorf("dist: build shard request [%d,%d): %w", task.lo, task.hi, berr)
	}
	lease, cancel := context.WithTimeout(sctx, w.coord.cfg.LeaseTimeout)
	defer cancel()
	resp, status, perr := w.client.PostJSON(lease, "/v1/shard", body)
	switch {
	case perr != nil && ctx.Err() != nil:
		result = "cancelled"
		return nil, outcomeCancelled, ctx.Err()
	case perr != nil:
		// Transport failure, exhausted retry budget, or lease expiry: the
		// lease is released and the shard goes back to the pool.
		result = "lease"
		return nil, outcomeTransient, fmt.Errorf("dist: worker %s: %w", w.url, perr)
	}
	if status != http.StatusOK {
		// Terminal application status (the client already retried the
		// retryable ones): deterministic, another worker would answer the
		// same. Abort.
		result = "fatal"
		return nil, outcomeFatal, fmt.Errorf("dist: worker %s answered %d for shard [%d,%d): %s",
			w.url, status, task.lo, task.hi, firstLine(resp))
	}
	decoded, derr := sim.DecodeShard(resp)
	if derr != nil {
		// A corrupt document may be a mangled transfer; let another attempt
		// try rather than aborting the run.
		result = "corrupt"
		return nil, outcomeTransient, fmt.Errorf("dist: worker %s shard [%d,%d): %w", w.url, task.lo, task.hi, derr)
	}
	if decoded.Experiment != job.Experiment || decoded.ConfigSHA != job.ConfigSHA ||
		decoded.Reps != job.Reps || decoded.Lo != task.lo || decoded.Hi != task.hi {
		// Identity mismatch means the worker computed a different run —
		// wrong build or wrong parameters. Deterministic; abort.
		result = "fatal"
		return nil, outcomeFatal, fmt.Errorf("dist: worker %s returned a shard for a different run: experiment %q sha %.12s… reps %d range [%d,%d), want %q %.12s… %d [%d,%d)",
			w.url, decoded.Experiment, decoded.ConfigSHA, decoded.Reps, decoded.Lo, decoded.Hi,
			job.Experiment, job.ConfigSHA, job.Reps, task.lo, task.hi)
	}
	w.coord.log.Info("dist: shard complete",
		"worker", w.url, "lo", task.lo, "hi", task.hi, "attempt", attemptN)
	return decoded, outcomeOK, nil
}

// firstLine trims a response body to its first line for error messages.
func firstLine(b []byte) string {
	for i, c := range b {
		if c == '\n' {
			b = b[:i]
			break
		}
	}
	const max = 200
	if len(b) > max {
		b = b[:max]
	}
	return string(b)
}
