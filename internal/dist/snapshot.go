package dist

// Cluster telemetry aggregation: Snapshot scrapes every configured worker's
// /healthz and /metrics into one ClusterSnapshot — the RED-style view
// (per-endpoint rate, errors, duration quantiles; shard throughput; cache /
// singleflight / session hit rates) behind `raysched cluster -status`. The
// Prometheus text parser handles exactly the exposition subset rayschedd
// renders (`name value` and `name{k="v",...} value` lines, '#' comments);
// it is not a general scraper.
//
// FetchTrace is the companion trace return channel: it retrieves one
// worker's span collection for a trace ID (GET /v1/trace/{id}) for
// obs.WriteMergedTrace.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"

	"rayfade/internal/obs"
)

// EndpointSummary is the RED view of one endpoint on one worker.
type EndpointSummary struct {
	Endpoint string
	// Requests counts completed requests across all status codes; Errors
	// counts the subset with status >= 400.
	Requests uint64
	Errors   uint64
	// P50/P95/P99 are the worker-exported latency quantiles in seconds
	// (rayschedd_request_duration_quantile); 0 when the worker has no
	// latency observations for the endpoint.
	P50, P95, P99 float64
}

// WorkerSnapshot is one worker's scraped state. Err is non-nil when the
// worker could not be scraped; the other fields are then zero.
type WorkerSnapshot struct {
	URL string
	Err error

	// Identity and lifecycle state, from /healthz (identity cross-checked
	// against rayschedd_build_info). Status is "ok" or "draining".
	Status     string
	Instance   string
	Version    string
	GoMaxProcs int

	// Shard load, from /healthz.
	ShardsInflight  int64
	ShardsCompleted int64

	// Endpoints, sorted by name.
	Endpoints []EndpointSummary

	// Hit-rate tallies, from /metrics.
	CacheHits          uint64
	CacheMisses        uint64
	SingleflightShared uint64
	SessionHits        uint64
	SessionMisses      uint64
	BatchLines         uint64
	TracesRetained     uint64
}

// ClusterSnapshot aggregates one scrape sweep across the worker set.
type ClusterSnapshot struct {
	Workers []WorkerSnapshot

	// Totals over the reachable workers.
	Live               int
	Unreachable        int
	Requests           uint64
	Errors             uint64
	ShardsInflight     int64
	ShardsCompleted    int64
	CacheHits          uint64
	CacheMisses        uint64
	SingleflightShared uint64
	SessionHits        uint64
	SessionMisses      uint64
	BatchLines         uint64
}

// Snapshot scrapes every configured worker (reachable or not — unreachable
// ones appear with Err set) and aggregates the totals. It never fails as a
// whole; the caller decides whether a partially-unreachable cluster is an
// error.
func (c *Coordinator) Snapshot(ctx context.Context) *ClusterSnapshot {
	httpClient := c.cfg.Client.HTTPClient
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	snap := &ClusterSnapshot{}
	for _, workerURL := range c.cfg.Workers {
		ws := scrapeWorker(ctx, httpClient, workerURL)
		snap.Workers = append(snap.Workers, ws)
		if ws.Err != nil {
			snap.Unreachable++
			continue
		}
		snap.Live++
		snap.ShardsInflight += ws.ShardsInflight
		snap.ShardsCompleted += ws.ShardsCompleted
		snap.CacheHits += ws.CacheHits
		snap.CacheMisses += ws.CacheMisses
		snap.SingleflightShared += ws.SingleflightShared
		snap.SessionHits += ws.SessionHits
		snap.SessionMisses += ws.SessionMisses
		snap.BatchLines += ws.BatchLines
		for _, ep := range ws.Endpoints {
			snap.Requests += ep.Requests
			snap.Errors += ep.Errors
		}
	}
	return snap
}

// scrapeWorker reads one worker's /healthz and /metrics.
func scrapeWorker(ctx context.Context, httpClient *http.Client, baseURL string) WorkerSnapshot {
	ws := WorkerSnapshot{URL: baseURL}
	h, err := fetchHealth(ctx, httpClient, baseURL)
	if err != nil {
		ws.Err = err
		return ws
	}
	ws.Status = h.Status
	ws.Instance = h.Instance
	ws.Version = h.Version
	ws.GoMaxProcs = h.GoMaxProcs
	ws.ShardsInflight = h.ShardsInflight
	ws.ShardsCompleted = h.ShardsCompleted

	samples, err := fetchMetrics(ctx, httpClient, baseURL)
	if err != nil {
		ws.Err = err
		return ws
	}
	eps := map[string]*EndpointSummary{}
	endpoint := func(name string) *EndpointSummary {
		es, ok := eps[name]
		if !ok {
			es = &EndpointSummary{Endpoint: name}
			eps[name] = es
		}
		return es
	}
	for _, s := range samples {
		switch s.name {
		case "rayschedd_requests_total":
			es := endpoint(s.labels["endpoint"])
			n := uint64(s.value)
			es.Requests += n
			if code, err := strconv.Atoi(s.labels["code"]); err == nil && code >= 400 {
				es.Errors += n
			}
		case "rayschedd_request_duration_quantile":
			es := endpoint(s.labels["endpoint"])
			switch s.labels["quantile"] {
			case "0.5":
				es.P50 = s.value
			case "0.95":
				es.P95 = s.value
			case "0.99":
				es.P99 = s.value
			}
		case "rayschedd_cache_hits_total":
			ws.CacheHits = uint64(s.value)
		case "rayschedd_cache_misses_total":
			ws.CacheMisses = uint64(s.value)
		case "rayschedd_singleflight_shared_total":
			ws.SingleflightShared = uint64(s.value)
		case "rayschedd_session_hits_total":
			ws.SessionHits = uint64(s.value)
		case "rayschedd_session_misses_total":
			ws.SessionMisses = uint64(s.value)
		case "rayschedd_batch_lines_total":
			ws.BatchLines = uint64(s.value)
		case "rayschedd_traces_retained":
			ws.TracesRetained = uint64(s.value)
		case "rayschedd_build_info":
			// Identity cross-check: /metrics and /healthz must agree on who
			// this worker is, or the scrape is incoherent (e.g. a proxy mixed
			// two backends between our two GETs).
			if inst := s.labels["instance"]; inst != "" && inst != ws.Instance {
				ws.Err = fmt.Errorf("dist: worker %s: /metrics build_info instance %q != /healthz instance %q",
					baseURL, inst, ws.Instance)
				return ws
			}
		}
	}
	for _, es := range eps {
		ws.Endpoints = append(ws.Endpoints, *es)
	}
	sort.Slice(ws.Endpoints, func(a, b int) bool { return ws.Endpoints[a].Endpoint < ws.Endpoints[b].Endpoint })
	return ws
}

// fetchMetrics GETs and parses one worker's /metrics page.
func fetchMetrics(ctx context.Context, httpClient *http.Client, baseURL string) ([]promSample, error) {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := httpClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, err
	}
	return parsePromText(data)
}

// promSample is one parsed Prometheus text-exposition sample.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parsePromText parses the exposition subset rayschedd emits. Unparsable
// lines are an error — the page is machine-generated, so leniency would
// only hide bugs.
func parsePromText(data []byte) ([]promSample, error) {
	var out []promSample
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parsePromLine(line)
		if err != nil {
			return nil, fmt.Errorf("dist: metrics line %d: %w", ln+1, err)
		}
		out = append(out, s)
	}
	return out, nil
}

func parsePromLine(line string) (promSample, error) {
	s := promSample{labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parsePromLabels(rest[i+1:end], s.labels); err != nil {
			return s, fmt.Errorf("%w in %q", err, line)
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return s, fmt.Errorf("want 'name value', got %q", line)
		}
		s.name = fields[0]
		rest = fields[1]
	}
	if s.name == "" {
		return s, fmt.Errorf("empty metric name in %q", line)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %v", line, err)
	}
	s.value = v
	return s, nil
}

// parsePromLabels parses `k="v",k2="v2"` with backslash escapes inside the
// quoted values (rayschedd renders labels with %q, so \" and \\ occur).
func parsePromLabels(s string, into map[string]string) error {
	i := 0
	for i < len(s) {
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return fmt.Errorf("label without '='")
		}
		key := strings.TrimSpace(s[i : i+eq])
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return fmt.Errorf("label %q value is not quoted", key)
		}
		i++
		var b strings.Builder
		for {
			if i >= len(s) {
				return fmt.Errorf("label %q value is unterminated", key)
			}
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				b.WriteByte(s[i+1])
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			b.WriteByte(c)
			i++
		}
		into[key] = b.String()
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
	return nil
}

// ErrTraceNotFound reports that a worker holds no span collection for the
// requested trace ID (it saw no traced requests, or the collection was
// evicted).
var ErrTraceNotFound = errors.New("dist: worker holds no trace for this id")

// FetchTrace retrieves one worker's span bundle for traceID over
// GET /v1/trace/{id}.
func (c *Coordinator) FetchTrace(ctx context.Context, workerURL, traceID string) (obs.TraceBundle, error) {
	httpClient := c.cfg.Client.HTTPClient
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	ctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		workerURL+"/v1/trace/"+url.PathEscape(traceID), nil)
	if err != nil {
		return obs.TraceBundle{}, err
	}
	resp, err := httpClient.Do(req)
	if err != nil {
		return obs.TraceBundle{}, fmt.Errorf("dist: fetch trace from %s: %w", workerURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return obs.TraceBundle{}, ErrTraceNotFound
	}
	if resp.StatusCode != http.StatusOK {
		return obs.TraceBundle{}, fmt.Errorf("dist: worker %s answered %d for trace %q", workerURL, resp.StatusCode, traceID)
	}
	var b obs.TraceBundle
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&b); err != nil {
		return obs.TraceBundle{}, fmt.Errorf("dist: decode trace bundle from %s: %w", workerURL, err)
	}
	return b, nil
}

// WriteText renders the snapshot as the human-readable `-status` report.
func (s *ClusterSnapshot) WriteText(w io.Writer) {
	fmt.Fprintf(w, "cluster: %d/%d workers live", s.Live, len(s.Workers))
	if s.Unreachable > 0 {
		fmt.Fprintf(w, " (%d unreachable)", s.Unreachable)
	}
	fmt.Fprintln(w)
	for _, ws := range s.Workers {
		if ws.Err != nil {
			fmt.Fprintf(w, "\nworker %s  UNREACHABLE: %v\n", ws.URL, ws.Err)
			continue
		}
		fmt.Fprintf(w, "\nworker %s  instance=%s version=%s gomaxprocs=%d",
			ws.URL, ws.Instance, ws.Version, ws.GoMaxProcs)
		if ws.Status != "" && ws.Status != "ok" {
			fmt.Fprintf(w, " status=%s", ws.Status)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "  shards: %d completed, %d in flight   cache: %s   singleflight: %d shared   sessions: %s   batch lines: %d   traces held: %d\n",
			ws.ShardsCompleted, ws.ShardsInflight,
			hitRate(ws.CacheHits, ws.CacheMisses),
			ws.SingleflightShared,
			hitRate(ws.SessionHits, ws.SessionMisses),
			ws.BatchLines, ws.TracesRetained)
		for _, ep := range ws.Endpoints {
			fmt.Fprintf(w, "  %-22s %7d reqs %5d errs   p50 %s  p95 %s  p99 %s\n",
				ep.Endpoint, ep.Requests, ep.Errors,
				fmtSeconds(ep.P50), fmtSeconds(ep.P95), fmtSeconds(ep.P99))
		}
	}
	fmt.Fprintf(w, "\ntotals: %d requests (%d errors)   shards: %d completed, %d in flight   cache: %s   singleflight: %d shared   sessions: %s   batch lines: %d\n",
		s.Requests, s.Errors, s.ShardsCompleted, s.ShardsInflight,
		hitRate(s.CacheHits, s.CacheMisses), s.SingleflightShared,
		hitRate(s.SessionHits, s.SessionMisses), s.BatchLines)
}

// hitRate formats "hits/total (pct)" or "-" when there were no lookups.
func hitRate(hits, misses uint64) string {
	total := hits + misses
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%d/%d (%.1f%%)", hits, total, 100*float64(hits)/float64(total))
}

// fmtSeconds renders a quantile with sub-millisecond resolution, or "-"
// when no observation exists.
func fmtSeconds(s float64) string {
	if s == 0 {
		return "-"
	}
	return time.Duration(s * float64(time.Second)).Round(10 * time.Microsecond).String()
}
