package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"rayfade/internal/client"
	"rayfade/internal/faults"
	"rayfade/internal/progress"
	"rayfade/internal/server"
	"rayfade/internal/sim"
)

// testFigure1 is the experiment all cluster tests shard: small, but wide
// enough to split across three workers several times.
func testFigure1() server.Figure1ShardConfig {
	return server.Figure1ShardConfig{
		Networks: 6, Links: 12, TransmitSeeds: 2, FadingSeeds: 2,
		Points: 3, Seed: 31,
	}
}

// testJob builds the dist.Job for wire config w.
func testJob(t *testing.T, w server.Figure1ShardConfig) Job {
	t.Helper()
	sha, err := sim.Figure1ConfigSHA(w.SimConfig())
	if err != nil {
		t.Fatal(err)
	}
	return Job{
		Experiment: sim.ExperimentFigure1,
		ConfigSHA:  sha,
		Reps:       w.Networks,
		NewRequest: func(lo, hi int) ([]byte, error) {
			return json.Marshal(server.ShardRequest{
				Experiment: sim.ExperimentFigure1, Lo: lo, Hi: hi, Figure1: &w,
			})
		},
	}
}

// startWorkers brings up n in-process rayschedd instances.
func startWorkers(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		s := server.New(server.Config{Workers: 2, QueueSize: 16})
		ts := httptest.NewServer(s)
		t.Cleanup(func() { ts.Close(); s.Close() })
		urls[i] = ts.URL
	}
	return urls
}

// fastClient is a retry config that keeps tests snappy.
func fastClient() client.Config {
	return client.Config{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
}

// singleNodeCSV renders the experiment's artifact without any cluster in the
// loop — the bytes every distributed variant must reproduce.
func singleNodeCSV(t *testing.T, w server.Figure1ShardConfig) []byte {
	t.Helper()
	res, err := sim.RunFigure1Ctx(context.Background(), w.SimConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sim.WriteSeriesCSV(&buf, "prob", res.Probs, res.CurveNames(), res.Curves); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// clusterCSV runs the full distributed pipeline — shard, merge, write the
// merged checkpoint, replay — and renders the same artifact.
func clusterCSV(t *testing.T, co *Coordinator, w server.Figure1ShardConfig) ([]byte, Stats) {
	t.Helper()
	job := testJob(t, w)
	results, stats, err := co.Run(context.Background(), job)
	if err != nil {
		t.Fatalf("cluster run: %v (stats %+v)", err, stats)
	}
	path := filepath.Join(t.TempDir(), "merged.ckpt")
	if err := sim.WriteMergedCheckpoint(path, job.Experiment, job.ConfigSHA, job.Reps, results); err != nil {
		t.Fatal(err)
	}
	cfg := w.SimConfig()
	cfg.Checkpoint = path
	res, err := sim.RunFigure1Ctx(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sim.WriteSeriesCSV(&buf, "prob", res.Probs, res.CurveNames(), res.Curves); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), stats
}

// TestClusterByteIdentical is the tentpole assertion: three workers, shard
// size 1 (every worker computes several shards), and the merged artifact is
// byte-identical to the single-node run.
func TestClusterByteIdentical(t *testing.T) {
	w := testFigure1()
	co, err := New(Config{
		Workers:   startWorkers(t, 3),
		ShardSize: 1,
		Client:    fastClient(),
	})
	if err != nil {
		t.Fatal(err)
	}
	got, stats := clusterCSV(t, co, w)
	if stats.Shards != 6 || stats.Completed != 6 {
		t.Fatalf("stats %+v, want 6/6 shards", stats)
	}
	if want := singleNodeCSV(t, w); !bytes.Equal(got, want) {
		t.Fatalf("cluster CSV differs from single-node run:\n--- cluster\n%s\n--- single\n%s", got, want)
	}
}

// TestClusterSurvivesDeadWorker: one of three workers is unreachable from
// the start; its shards are reassigned and the artifact is still
// byte-identical.
func TestClusterSurvivesDeadWorker(t *testing.T) {
	w := testFigure1()
	urls := startWorkers(t, 2)
	// A worker that accepts nothing: closed before the run begins.
	deadTS := httptest.NewServer(http.NotFoundHandler())
	deadURL := deadTS.URL
	deadTS.Close()
	// DeadAfter 1 makes quarantine entry deterministic: with 2 the run can
	// drain the queue before the dead worker pulls a second task, leaving it
	// merely suspect when the run completes. A tight probe budget turns the
	// quarantine into permanent death quickly (the probes also fail — the
	// socket is gone).
	co, err := New(Config{
		Workers:       append([]string{deadURL}, urls...),
		ShardSize:     1,
		MaxAttempts:   6,
		DeadAfter:     1,
		ProbeInterval: time.Millisecond,
		MaxProbes:     2,
		Client:        fastClient(),
	})
	if err != nil {
		t.Fatal(err)
	}
	got, stats := clusterCSV(t, co, w)
	if stats.Reassigned == 0 {
		t.Errorf("stats %+v: expected reassignments from the dead worker", stats)
	}
	if stats.Quarantined == 0 {
		t.Errorf("stats %+v: death must pass through quarantine", stats)
	}
	if stats.DeadWorkers != 1 {
		t.Errorf("stats %+v: expected exactly one dead worker", stats)
	}
	if want := singleNodeCSV(t, w); !bytes.Equal(got, want) {
		t.Fatal("cluster CSV with dead worker differs from single-node run")
	}
}

// TestClusterReassignsOnLeaseExpiry: a worker hangs on its first shard past
// the lease; the shard is reassigned and the run still completes correctly.
func TestClusterReassignsOnLeaseExpiry(t *testing.T) {
	w := testFigure1()
	urls := startWorkers(t, 2)
	// A proxy in front of a healthy worker that stalls exactly one /v1/shard
	// request beyond the lease.
	backend := server.New(server.Config{Workers: 2, QueueSize: 16})
	var hung atomic.Bool
	proxy := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/shard" && hung.CompareAndSwap(false, true) {
			time.Sleep(400 * time.Millisecond)
		}
		backend.ServeHTTP(rw, r)
	}))
	t.Cleanup(func() { proxy.Close(); backend.Close() })

	cc := fastClient()
	cc.MaxAttempts = 1 // one try per lease, so the stall maps to one reassignment
	co, err := New(Config{
		Workers:      append([]string{proxy.URL}, urls...),
		ShardSize:    1,
		LeaseTimeout: 100 * time.Millisecond,
		MaxAttempts:  6,
		DeadAfter:    3,
		Client:       cc,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, stats := clusterCSV(t, co, w)
	if !hung.Load() {
		t.Fatal("the stalling proxy never saw a shard request")
	}
	if stats.Reassigned == 0 {
		t.Errorf("stats %+v: expected the stalled shard to be reassigned", stats)
	}
	if want := singleNodeCSV(t, w); !bytes.Equal(got, want) {
		t.Fatal("cluster CSV with lease expiry differs from single-node run")
	}
}

// TestClusterInjectedDispatchFaults: the dist.shard chaos site burns
// attempts deterministically; the run reassigns through them and converges
// byte-identically.
func TestClusterInjectedDispatchFaults(t *testing.T) {
	inj, err := faults.Parse("seed=9,dist.shard=error:0.3")
	if err != nil {
		t.Fatal(err)
	}
	faults.SetDefault(inj)
	defer faults.SetDefault(nil)

	w := testFigure1()
	co, err := New(Config{
		Workers:     startWorkers(t, 3),
		ShardSize:   1,
		MaxAttempts: 12,
		Client:      fastClient(),
	})
	if err != nil {
		t.Fatal(err)
	}
	got, stats := clusterCSV(t, co, w)
	if inj.Fired() == 0 {
		t.Fatal("no dist.shard faults fired; the chaos site is not wired")
	}
	if uint64(stats.Reassigned) != inj.Fired() {
		t.Errorf("reassigned %d, faults fired %d — injected faults must map 1:1 to reassignments",
			stats.Reassigned, inj.Fired())
	}
	if want := singleNodeCSV(t, w); !bytes.Equal(got, want) {
		t.Fatal("cluster CSV under injected faults differs from single-node run")
	}
}

// TestClusterAggregatesProgress: the coordinator's tracker must account for
// every remotely-computed replication.
func TestClusterAggregatesProgress(t *testing.T) {
	w := testFigure1()
	tracker := progress.New("cluster-test", nil)
	co, err := New(Config{
		Workers:   startWorkers(t, 2),
		ShardSize: 2,
		Client:    fastClient(),
		Tracker:   tracker,
	})
	if err != nil {
		t.Fatal(err)
	}
	job := testJob(t, w)
	if _, _, err := co.Run(context.Background(), job); err != nil {
		t.Fatal(err)
	}
	snap := tracker.Snapshot()
	if snap.Total != int64(w.Networks) || snap.Done != int64(w.Networks) {
		t.Fatalf("tracker %d/%d, want %d/%d", snap.Done, snap.Total, w.Networks, w.Networks)
	}
}

func TestClusterAllWorkersDeadFails(t *testing.T) {
	deadTS := httptest.NewServer(http.NotFoundHandler())
	deadURL := deadTS.URL
	deadTS.Close()
	cc := fastClient()
	cc.MaxAttempts = 1
	co, err := New(Config{
		Workers:       []string{deadURL},
		ShardSize:     1,
		MaxAttempts:   100, // shard budget must not be the thing that fails
		DeadAfter:     2,
		ProbeInterval: time.Millisecond,
		MaxProbes:     2,
		Client:        cc,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = co.Run(context.Background(), testJob(t, testFigure1()))
	if err == nil {
		t.Fatal("run with only a dead worker succeeded")
	}
}

func TestDiscover(t *testing.T) {
	urls := startWorkers(t, 2)
	deadTS := httptest.NewServer(http.NotFoundHandler())
	deadURL := deadTS.URL
	deadTS.Close()

	co, err := New(Config{Workers: append([]string{deadURL}, urls...)})
	if err != nil {
		t.Fatal(err)
	}
	live, err := co.Discover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(live) != 2 {
		t.Fatalf("discovered %d workers, want 2", len(live))
	}
	seen := map[string]bool{}
	for _, w := range live {
		if w.Instance == "" || w.Version == "" || w.GoMaxProcs < 1 {
			t.Fatalf("incomplete worker info: %+v", w)
		}
		if seen[w.Instance] {
			t.Fatalf("duplicate instance id %q", w.Instance)
		}
		seen[w.Instance] = true
	}

	co2, err := New(Config{Workers: []string{deadURL}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := co2.Discover(context.Background()); err == nil {
		t.Fatal("discover with no live workers succeeded")
	}
}

func TestNewRejectsEmptyWorkerSet(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New with no workers succeeded")
	}
}
