// Shard journal: the coordinator's crash-safety layer. As each shard
// document lands it is spilled to a journal directory with an atomic write
// (write-temp, fsync, rename — internal/fsio), named by its index range. A
// resumed coordinator loads the directory, keeps every file that decodes as
// a valid sealed shard for the same run identity, and re-dispatches only the
// uncovered ranges; because shard bytes are worker-independent, the merged
// artifact is byte-identical to an uninterrupted run.
//
// The journal needs no manifest: every shard document already carries the
// run identity (Experiment, ConfigSHA, Reps) and its range inside the sealed
// checkpoint envelope, and the envelope's SHA-256 makes tampering or a torn
// write detectable. Invalid files are discarded (and logged), never merged —
// their ranges are simply recomputed, and the fresh document overwrites or
// shadows the bad file.
package dist

import (
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"rayfade/internal/fsio"
	"rayfade/internal/sim"
)

// journalExt marks journal shard files; everything else in the directory is
// ignored, so the journal can share a scratch directory with temp files.
const journalExt = ".shard"

type journal struct {
	dir string
}

// openJournal ensures dir exists and returns the journal over it.
func openJournal(dir string) (*journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dist: journal dir: %w", err)
	}
	return &journal{dir: dir}, nil
}

// record spills one validated shard document. The filename encodes the range
// so a recomputation of the same range overwrites its predecessor, and the
// atomic write means a crash mid-spill leaves either the old bytes or the
// new — never a torn file (a torn rename survivor fails its SHA on load).
func (j *journal) record(sh *sim.Shard) error {
	doc, err := sh.Encode()
	if err != nil {
		return err
	}
	name := fmt.Sprintf("shard-%08d-%08d%s", sh.Lo, sh.Hi, journalExt)
	return fsio.WriteFileAtomic(filepath.Join(j.dir, name), doc, 0o644)
}

// load reads every journal shard valid for job and returns them sorted by Lo
// with overlaps dropped (greedy first-by-Lo wins). Corrupt files, shards
// from a different run, and overlapping ranges are skipped with a warning —
// resume must degrade to recomputation, never to a wrong merge.
func (j *journal) load(job Job, log *slog.Logger) []*sim.Shard {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		log.Warn("dist: journal unreadable, resuming nothing", "dir", j.dir, "err", err.Error())
		return nil
	}
	var restored []*sim.Shard
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), journalExt) {
			continue
		}
		path := filepath.Join(j.dir, e.Name())
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			log.Warn("dist: journal file unreadable, discarding", "file", e.Name(), "err", rerr.Error())
			continue
		}
		sh, derr := sim.DecodeShard(data)
		if derr != nil {
			log.Warn("dist: journal file invalid, discarding (range will be recomputed)",
				"file", e.Name(), "err", derr.Error())
			continue
		}
		if sh.Experiment != job.Experiment || sh.ConfigSHA != job.ConfigSHA || sh.Reps != job.Reps {
			log.Warn("dist: journal file belongs to a different run, ignoring",
				"file", e.Name(), "experiment", sh.Experiment, "config_sha", short(sh.ConfigSHA), "reps", sh.Reps)
			continue
		}
		restored = append(restored, sh)
	}
	sort.Slice(restored, func(a, b int) bool { return restored[a].Lo < restored[b].Lo })
	kept := restored[:0]
	next := 0
	for _, sh := range restored {
		if sh.Lo < next {
			log.Warn("dist: journal shard overlaps an earlier one, discarding",
				"lo", sh.Lo, "hi", sh.Hi, "covered_to", next)
			continue
		}
		kept = append(kept, sh)
		next = sh.Hi
	}
	return kept
}

// short abbreviates a config SHA for log fields.
func short(sha string) string {
	if len(sha) > 12 {
		return sha[:12]
	}
	return sha
}
