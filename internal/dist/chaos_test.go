package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rayfade/internal/faults"
	"rayfade/internal/server"
	"rayfade/internal/version"
)

// fakeClock is the injectable time source for chaos tests: Sleep advances
// the clock instead of waiting, so quarantine backoff and hedge sweeps run
// in microseconds of wall time.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
	// Yield so goroutines whose work this sleep is "waiting for" get to run.
	runtime.Gosched()
	return ctx.Err()
}

// TestClusterQuarantineReadmissionUnderBlackhole drives the full circuit
// breaker deterministically: an armed client.blackhole partition fails every
// dispatch before it reaches the wire, workers cycle into quarantine, and
// health probes (which bypass the retrying client, as a control plane
// should) keep re-admitting them. After three probes the "partition heals"
// (the injector is disarmed) and the run completes byte-identically. All
// waiting goes through the fake clock — no real sleeps.
func TestClusterQuarantineReadmissionUnderBlackhole(t *testing.T) {
	w := testFigure1()
	clk := newFakeClock()
	inj, err := faults.Parse("seed=5,client.blackhole=error:1")
	if err != nil {
		t.Fatal(err)
	}
	faults.SetDefault(inj)
	t.Cleanup(func() { faults.SetDefault(nil) })

	var healthzHits atomic.Int64
	mkWorker := func() string {
		backend := server.New(server.Config{Workers: 2, QueueSize: 16})
		ts := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/healthz" && healthzHits.Add(1) >= 3 {
				faults.SetDefault(nil) // the partition heals
			}
			backend.ServeHTTP(rw, r)
		}))
		t.Cleanup(func() { ts.Close(); backend.Close() })
		return ts.URL
	}
	urls := []string{mkWorker(), mkWorker()}

	cc := fastClient()
	cc.MaxAttempts = 1 // one blackholed try per dispatch: quarantine fast
	cc.Sleep = clk.Sleep
	co, err := New(Config{
		Workers:       urls,
		ShardSize:     1,
		MaxAttempts:   100,
		DeadAfter:     1,
		ProbeInterval: 10 * time.Millisecond,
		MaxProbes:     50,
		HedgeAfter:    -1, // isolate the quarantine path
		Client:        cc,
		Now:           clk.Now,
		Sleep:         clk.Sleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	got, stats := clusterCSV(t, co, w)
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("quarantine cycling took %v of wall clock; the fake clock is not wired", elapsed)
	}
	if stats.Quarantined == 0 || stats.Readmitted == 0 {
		t.Fatalf("stats %+v: expected quarantine entries and re-admissions", stats)
	}
	if stats.Reassigned == 0 {
		t.Fatalf("stats %+v: blackholed dispatches must requeue their shards", stats)
	}
	if stats.DeadWorkers != 0 {
		t.Fatalf("stats %+v: healthy-on-probe workers must not die", stats)
	}
	if stats.Completed != 6 {
		t.Fatalf("stats %+v: run did not complete all shards", stats)
	}
	if want := singleNodeCSV(t, w); !bytes.Equal(got, want) {
		t.Fatal("cluster CSV after quarantine cycling differs from single-node run")
	}
}

// TestClusterQuarantineRejectsVersionSkew: a worker that fails, quarantines,
// and then presents a different build version on its re-admission probe must
// be declared dead — merging its shards would break byte-identity. The run
// still completes on the healthy worker.
func TestClusterQuarantineRejectsVersionSkew(t *testing.T) {
	w := testFigure1()
	clk := newFakeClock()

	// The impostor: shard dispatches fail transiently (503 is retryable, and
	// the one-attempt client turns it into a transport-level failure), and
	// healthz advertises a skewed build.
	impostor := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			rw.Header().Set("Content-Type", "application/json")
			json.NewEncoder(rw).Encode(map[string]any{
				"status": "ok", "version": version.Version + "-skewed",
				"instance": "impostor-1", "gomaxprocs": 1,
			})
		default:
			rw.Header().Set("Retry-After", "1")
			http.Error(rw, `{"error":"unavailable"}`, http.StatusServiceUnavailable)
		}
	}))
	t.Cleanup(impostor.Close)

	cc := fastClient()
	cc.MaxAttempts = 1
	cc.Sleep = clk.Sleep
	co, err := New(Config{
		Workers:       append([]string{impostor.URL}, startWorkers(t, 1)...),
		ShardSize:     1,
		MaxAttempts:   20,
		DeadAfter:     1,
		ProbeInterval: 10 * time.Millisecond,
		MaxProbes:     5,
		HedgeAfter:    -1,
		Client:        cc,
		Now:           clk.Now,
		Sleep:         clk.Sleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, stats := clusterCSV(t, co, w)
	if stats.DeadWorkers != 1 {
		t.Fatalf("stats %+v: the skewed worker must die", stats)
	}
	if stats.Readmitted != 0 {
		t.Fatalf("stats %+v: a skewed worker must never be re-admitted", stats)
	}
	if stats.Quarantined == 0 {
		t.Fatalf("stats %+v: death must pass through quarantine", stats)
	}
	if want := singleNodeCSV(t, w); !bytes.Equal(got, want) {
		t.Fatal("cluster CSV with skewed worker differs from single-node run")
	}
}

// TestClusterHedgesStraggler: one worker swallows shard requests forever (a
// partitioned or wedged node whose TCP connection stays up). The hedge
// monitor must dispatch a speculative copy to the healthy worker, whose
// document wins; the straggler's attempt is cancelled, not failed, so
// nothing is reassigned. Time is fake throughout.
func TestClusterHedgesStraggler(t *testing.T) {
	w := testFigure1()
	w.Networks = 2 // two shards: one hangs, one flows
	clk := newFakeClock()

	// Gate: the healthy worker holds its first response until the straggler
	// has swallowed a request, so the straggler deterministically owns a
	// shard (otherwise the healthy worker could drain the whole queue first).
	gate := make(chan struct{})
	stop := make(chan struct{})
	var once sync.Once
	straggler := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/shard" {
			once.Do(func() { close(gate) })
			select {
			case <-r.Context().Done(): // swallowed until cancelled
			case <-stop: // test teardown backstop
			}
			return
		}
		http.NotFound(rw, r)
	}))
	t.Cleanup(straggler.Close)
	t.Cleanup(func() { close(stop) })

	backend := server.New(server.Config{Workers: 2, QueueSize: 16})
	healthy := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/shard" {
			<-gate
		}
		backend.ServeHTTP(rw, r)
	}))
	t.Cleanup(func() { healthy.Close(); backend.Close() })

	co, err := New(Config{
		Workers:    []string{straggler.URL, healthy.URL},
		ShardSize:  1,
		HedgeAfter: 50 * time.Millisecond,
		Client:     fastClient(),
		Now:        clk.Now,
		Sleep:      clk.Sleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, stats := clusterCSV(t, co, w)
	if stats.Hedged == 0 {
		t.Fatalf("stats %+v: the stuck shard was never hedged", stats)
	}
	if stats.Completed != 2 {
		t.Fatalf("stats %+v: want both shards completed", stats)
	}
	if stats.Reassigned != 0 {
		t.Fatalf("stats %+v: a cancelled hedge loser must not count as reassignment", stats)
	}
	if want := singleNodeCSV(t, w); !bytes.Equal(got, want) {
		t.Fatal("hedged cluster CSV differs from single-node run")
	}
}

// TestClusterLatencyFaultThroughInjectableSleep: the client.latency chaos
// site must slow dispatches through the client's injectable Sleep — the run
// sees the delays (recorded), the wall clock does not.
func TestClusterLatencyFaultThroughInjectableSleep(t *testing.T) {
	w := testFigure1()
	inj, err := faults.Parse("seed=4,client.latency=delay:1:200ms")
	if err != nil {
		t.Fatal(err)
	}
	faults.SetDefault(inj)
	t.Cleanup(func() { faults.SetDefault(nil) })

	var slept atomic.Int64
	cc := fastClient()
	cc.Sleep = func(ctx context.Context, d time.Duration) error {
		if d == 200*time.Millisecond {
			slept.Add(1)
		}
		return ctx.Err()
	}
	co, err := New(Config{
		Workers:    startWorkers(t, 2),
		ShardSize:  1,
		HedgeAfter: -1,
		Client:     cc,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	got, stats := clusterCSV(t, co, w)
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("latency faults cost %v of wall clock; they must flow through the injectable Sleep", elapsed)
	}
	if slept.Load() == 0 {
		t.Fatal("no injected latency reached the client's Sleep")
	}
	if stats.Completed != 6 {
		t.Fatalf("stats %+v: latency alone must not fail shards", stats)
	}
	if want := singleNodeCSV(t, w); !bytes.Equal(got, want) {
		t.Fatal("cluster CSV under latency faults differs from single-node run")
	}
}
