package dist

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rayfade/internal/obs"
	"rayfade/internal/server"
)

// TestSnapshotAggregates: a scrape sweep over live workers folds their
// /healthz identity and /metrics series into per-worker and cluster totals.
func TestSnapshotAggregates(t *testing.T) {
	urls := startWorkers(t, 2)
	// Drive one counted request through each worker so the scrape has
	// something to aggregate (healthz lands under the "meta" endpoint).
	for _, u := range urls {
		resp, err := http.Get(u + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	co, err := New(Config{Workers: urls})
	if err != nil {
		t.Fatal(err)
	}
	snap := co.Snapshot(context.Background())
	if snap.Live != 2 || snap.Unreachable != 0 || len(snap.Workers) != 2 {
		t.Fatalf("live=%d unreachable=%d workers=%d", snap.Live, snap.Unreachable, len(snap.Workers))
	}
	var total uint64
	for _, ws := range snap.Workers {
		if ws.Err != nil {
			t.Fatalf("worker %s: %v", ws.URL, ws.Err)
		}
		if ws.Instance == "" || ws.Version == "" || ws.GoMaxProcs == 0 {
			t.Fatalf("worker identity incomplete: %+v", ws)
		}
		var meta *EndpointSummary
		for i := range ws.Endpoints {
			if ws.Endpoints[i].Endpoint == "meta" {
				meta = &ws.Endpoints[i]
			}
		}
		if meta == nil || meta.Requests == 0 {
			t.Fatalf("worker %s has no meta endpoint stats: %+v", ws.URL, ws.Endpoints)
		}
		if meta.P50 == 0 || meta.P50 > meta.P99 {
			t.Fatalf("worker %s quantiles implausible: %+v", ws.URL, meta)
		}
		for _, ep := range ws.Endpoints {
			total += ep.Requests
		}
	}
	if snap.Requests != total || snap.Requests == 0 {
		t.Fatalf("totals: snapshot says %d requests, workers sum to %d", snap.Requests, total)
	}
}

// TestSnapshotToleratesUnreachable: a dead worker appears with Err set and
// is excluded from the totals; the sweep itself never fails.
func TestSnapshotToleratesUnreachable(t *testing.T) {
	urls := startWorkers(t, 1)
	deadTS := httptest.NewServer(http.NotFoundHandler())
	deadURL := deadTS.URL
	deadTS.Close()

	co, err := New(Config{Workers: append([]string{deadURL}, urls...)})
	if err != nil {
		t.Fatal(err)
	}
	snap := co.Snapshot(context.Background())
	if snap.Live != 1 || snap.Unreachable != 1 {
		t.Fatalf("live=%d unreachable=%d", snap.Live, snap.Unreachable)
	}
	if snap.Workers[0].Err == nil {
		t.Fatal("dead worker scraped without error")
	}
	var buf bytes.Buffer
	snap.WriteText(&buf)
	out := buf.String()
	if !strings.Contains(out, "cluster: 1/2 workers live (1 unreachable)") {
		t.Fatalf("header wrong:\n%s", out)
	}
	if !strings.Contains(out, "UNREACHABLE") {
		t.Fatalf("dead worker not flagged:\n%s", out)
	}
}

// TestFetchTrace: the coordinator retrieves a worker's per-trace span
// collection; an unknown trace ID maps to ErrTraceNotFound.
func TestFetchTrace(t *testing.T) {
	urls := startWorkers(t, 1)
	const traceID = "4b8bc3c7d5db6fea"
	body, err := server.BenchShardRequest(7)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, urls[0]+"/v1/shard", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.HeaderTraceContext, obs.TraceContext{TraceID: traceID, ParentID: 9}.String())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shard status %d: %s", resp.StatusCode, out)
	}

	co, err := New(Config{Workers: urls})
	if err != nil {
		t.Fatal(err)
	}
	b, err := co.FetchTrace(context.Background(), urls[0], traceID)
	if err != nil {
		t.Fatal(err)
	}
	if b.TraceID != traceID || b.Instance == "" || len(b.Spans) == 0 {
		t.Fatalf("bundle = %+v", b)
	}
	var found bool
	for _, sp := range b.Spans {
		if sp.Name == "http./v1/shard" && sp.Remote == 9 {
			found = true
		}
	}
	if !found {
		t.Fatalf("shard request span with remote parent missing: %+v", b.Spans)
	}

	if _, err := co.FetchTrace(context.Background(), urls[0], "feedbeef"); !errors.Is(err, ErrTraceNotFound) {
		t.Fatalf("unknown trace: %v, want ErrTraceNotFound", err)
	}
}

// TestParsePromText: the exposition subset rayschedd renders, including
// escaped quotes and backslashes inside label values.
func TestParsePromText(t *testing.T) {
	samples, err := parsePromText([]byte(`
# HELP rayschedd_requests_total total
# TYPE rayschedd_requests_total counter
rayschedd_requests_total{endpoint="/v1/shard",code="200"} 12
rayschedd_queue_depth 3
weird{label="a\"b\\c"} 1.5
`))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 {
		t.Fatalf("parsed %d samples: %+v", len(samples), samples)
	}
	if samples[0].name != "rayschedd_requests_total" || samples[0].value != 12 ||
		samples[0].labels["endpoint"] != "/v1/shard" || samples[0].labels["code"] != "200" {
		t.Fatalf("sample 0 = %+v", samples[0])
	}
	if samples[1].name != "rayschedd_queue_depth" || samples[1].value != 3 || len(samples[1].labels) != 0 {
		t.Fatalf("sample 1 = %+v", samples[1])
	}
	if samples[2].labels["label"] != `a"b\c` {
		t.Fatalf("escaped label = %q", samples[2].labels["label"])
	}

	for name, doc := range map[string]string{
		"no value":     "rayschedd_queue_depth",
		"bad value":    "rayschedd_queue_depth x",
		"unterminated": `m{label="v} 1`,
		"open braces":  `m{label="v" 1`,
		"empty name":   `{label="v"} 1`,
	} {
		if _, err := parsePromText([]byte(doc)); err == nil {
			t.Errorf("%s: accepted %q", name, doc)
		}
	}
}
