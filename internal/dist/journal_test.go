package dist

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"rayfade/internal/server"
	"rayfade/internal/sim"
)

// rangeRecorder collects the [lo,hi) ranges a worker was asked to compute —
// the resume tests' proof that only uncovered ranges were re-dispatched.
type rangeRecorder struct {
	mu     sync.Mutex
	ranges [][2]int
}

func (rr *rangeRecorder) sorted() [][2]int {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	out := append([][2]int(nil), rr.ranges...)
	sort.Slice(out, func(a, b int) bool { return out[a][0] < out[b][0] })
	return out
}

// recordingWorker is a rayschedd instance whose /v1/shard requests are
// range-logged into rr.
func recordingWorker(t *testing.T, rr *rangeRecorder) string {
	t.Helper()
	backend := server.New(server.Config{Workers: 2, QueueSize: 16})
	ts := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/shard" {
			body, err := io.ReadAll(r.Body)
			if err == nil {
				var req struct {
					Lo int `json:"lo"`
					Hi int `json:"hi"`
				}
				if json.Unmarshal(body, &req) == nil {
					rr.mu.Lock()
					rr.ranges = append(rr.ranges, [2]int{req.Lo, req.Hi})
					rr.mu.Unlock()
				}
				r.Body = io.NopCloser(bytes.NewReader(body))
			}
		}
		backend.ServeHTTP(rw, r)
	}))
	t.Cleanup(func() { ts.Close(); backend.Close() })
	return ts.URL
}

// journalFiles lists the shard files currently in dir.
func journalFiles(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*"+journalExt))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(matches)
	return matches
}

// TestClusterJournalResume is the coordinator-crash story in miniature: a
// full journaled run stands in for the part of a run that completed before a
// SIGKILL; deleting journal files simulates the ranges the killed
// coordinator never finished. The resumed run must dispatch exactly the
// missing ranges and still produce byte-identical output.
func TestClusterJournalResume(t *testing.T) {
	w := testFigure1()
	jdir := filepath.Join(t.TempDir(), "journal")

	co, err := New(Config{
		Workers:    startWorkers(t, 2),
		ShardSize:  1,
		JournalDir: jdir,
		Client:     fastClient(),
	})
	if err != nil {
		t.Fatal(err)
	}
	first, stats := clusterCSV(t, co, w)
	if stats.Completed != 6 || stats.Resumed != 0 {
		t.Fatalf("first run stats %+v, want 6 completed / 0 resumed", stats)
	}
	files := journalFiles(t, jdir)
	if len(files) != 6 {
		t.Fatalf("journal holds %d files, want 6: %v", len(files), files)
	}

	// "Crash": lose the shards for ranges [2,3) and [5,6).
	for _, lost := range []string{"shard-00000002-00000003.shard", "shard-00000005-00000006.shard"} {
		if err := os.Remove(filepath.Join(jdir, lost)); err != nil {
			t.Fatal(err)
		}
	}

	rr := &rangeRecorder{}
	co2, err := New(Config{
		Workers:    []string{recordingWorker(t, rr)},
		ShardSize:  1,
		JournalDir: jdir,
		Client:     fastClient(),
	})
	if err != nil {
		t.Fatal(err)
	}
	resumed, stats2 := clusterCSV(t, co2, w)
	if stats2.Resumed != 4 || stats2.Completed != 2 || stats2.Shards != 6 {
		t.Fatalf("resume stats %+v, want 4 resumed + 2 completed = 6 shards", stats2)
	}
	if got, want := rr.sorted(), [][2]int{{2, 3}, {5, 6}}; len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("resume dispatched ranges %v, want exactly the lost %v", got, want)
	}
	if !bytes.Equal(first, resumed) {
		t.Fatal("resumed run differs from the uninterrupted run")
	}
	if want := singleNodeCSV(t, w); !bytes.Equal(resumed, want) {
		t.Fatal("resumed run differs from the single-node run")
	}
}

// TestClusterJournalTamper: a corrupted journal file must be discarded and
// its range recomputed — merging it would poison the artifact silently.
func TestClusterJournalTamper(t *testing.T) {
	w := testFigure1()
	jdir := filepath.Join(t.TempDir(), "journal")
	co, err := New(Config{
		Workers:    startWorkers(t, 2),
		ShardSize:  1,
		JournalDir: jdir,
		Client:     fastClient(),
	})
	if err != nil {
		t.Fatal(err)
	}
	first, _ := clusterCSV(t, co, w)

	// Flip one byte mid-file: the envelope SHA no longer matches.
	victim := filepath.Join(jdir, "shard-00000003-00000004.shard")
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rr := &rangeRecorder{}
	co2, err := New(Config{
		Workers:    []string{recordingWorker(t, rr)},
		ShardSize:  1,
		JournalDir: jdir,
		Client:     fastClient(),
	})
	if err != nil {
		t.Fatal(err)
	}
	resumed, stats := clusterCSV(t, co2, w)
	if stats.Resumed != 5 || stats.Completed != 1 {
		t.Fatalf("tamper-resume stats %+v, want 5 resumed + 1 recomputed", stats)
	}
	if got := rr.sorted(); len(got) != 1 || got[0] != [2]int{3, 4} {
		t.Fatalf("tamper-resume dispatched %v, want exactly [[3 4]]", got)
	}
	if !bytes.Equal(first, resumed) {
		t.Fatal("tamper-resumed run differs from the clean run")
	}
	// The recomputation must have overwritten the tampered file with a valid
	// document.
	fixed, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.DecodeShard(fixed); err != nil {
		t.Fatalf("journal file not repaired after recomputation: %v", err)
	}
}

// TestClusterJournalComplete: a journal covering the whole run resumes to a
// finished artifact without touching any worker — the worker URL here is
// dead on purpose.
func TestClusterJournalComplete(t *testing.T) {
	w := testFigure1()
	jdir := filepath.Join(t.TempDir(), "journal")
	co, err := New(Config{
		Workers:    startWorkers(t, 2),
		ShardSize:  1,
		JournalDir: jdir,
		Client:     fastClient(),
	})
	if err != nil {
		t.Fatal(err)
	}
	first, _ := clusterCSV(t, co, w)

	deadTS := httptest.NewServer(http.NotFoundHandler())
	deadURL := deadTS.URL
	deadTS.Close()
	co2, err := New(Config{
		Workers:    []string{deadURL},
		ShardSize:  1,
		JournalDir: jdir,
		Client:     fastClient(),
	})
	if err != nil {
		t.Fatal(err)
	}
	resumed, stats := clusterCSV(t, co2, w)
	if stats.Resumed != 6 || stats.Completed != 0 {
		t.Fatalf("complete-journal stats %+v, want 6 resumed / 0 dispatched", stats)
	}
	if !bytes.Equal(first, resumed) {
		t.Fatal("journal-only resume differs from the original run")
	}
}

// TestJournalIgnoresForeignRuns: shards journaled under a different config
// SHA must not be restored into this run.
func TestJournalIgnoresForeignRuns(t *testing.T) {
	w := testFigure1()
	jdir := filepath.Join(t.TempDir(), "journal")
	j, err := openJournal(jdir)
	if err != nil {
		t.Fatal(err)
	}
	foreign := &sim.Shard{
		Experiment: sim.ExperimentFigure1, ConfigSHA: "deadbeef", Reps: 6, Lo: 0, Hi: 3,
		Results: map[int]json.RawMessage{0: json.RawMessage(`{}`), 1: json.RawMessage(`{}`), 2: json.RawMessage(`{}`)},
	}
	if err := j.record(foreign); err != nil {
		t.Fatal(err)
	}
	co, err := New(Config{
		Workers:    startWorkers(t, 2),
		ShardSize:  1,
		JournalDir: jdir,
		Client:     fastClient(),
	})
	if err != nil {
		t.Fatal(err)
	}
	got, stats := clusterCSV(t, co, w)
	if stats.Resumed != 0 || stats.Completed != 6 {
		t.Fatalf("stats %+v: a foreign shard leaked into the resume set", stats)
	}
	if want := singleNodeCSV(t, w); !bytes.Equal(got, want) {
		t.Fatal("run with a foreign journal shard differs from single-node")
	}
}
