package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -1}
	if got := p.Add(q); got != (Point{4, 1}) {
		t.Fatalf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 3}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Fatalf("Scale = %v", got)
	}
	if got := (Point{3, 4}).Norm(); got != 5 {
		t.Fatalf("Norm = %g", got)
	}
}

func TestPolarOffset(t *testing.T) {
	p := Point{10, 10}
	east := p.PolarOffset(0, 5)
	if !almost(east.X, 15, 1e-12) || !almost(east.Y, 10, 1e-12) {
		t.Fatalf("east offset = %v", east)
	}
	north := p.PolarOffset(math.Pi/2, 3)
	if !almost(north.X, 10, 1e-12) || !almost(north.Y, 13, 1e-12) {
		t.Fatalf("north offset = %v", north)
	}
}

func TestPolarOffsetPreservesDistance(t *testing.T) {
	f := func(x, y, angle, distRaw float64) bool {
		if anyBad(x, y, angle, distRaw) {
			return true
		}
		dist := math.Mod(math.Abs(distRaw), 1000)
		p := Point{math.Mod(x, 1e6), math.Mod(y, 1e6)}
		q := p.PolarOffset(angle, dist)
		return almost(Euclidean{}.Dist(p, q), dist, 1e-6*(1+dist))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func anyBad(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

func TestEuclidean(t *testing.T) {
	m := Euclidean{}
	if got := m.Dist(Point{0, 0}, Point{3, 4}); got != 5 {
		t.Fatalf("Dist = %g", got)
	}
	if m.Name() != "euclidean" {
		t.Fatalf("Name = %q", m.Name())
	}
}

func TestManhattan(t *testing.T) {
	m := Manhattan{}
	if got := m.Dist(Point{0, 0}, Point{3, 4}); got != 7 {
		t.Fatalf("Dist = %g", got)
	}
	if got := m.Dist(Point{-1, -1}, Point{1, 1}); got != 4 {
		t.Fatalf("Dist = %g", got)
	}
}

func TestTorusWrap(t *testing.T) {
	m := Torus{W: 100, H: 100}
	// Points near opposite edges are close on the torus.
	if got := m.Dist(Point{1, 50}, Point{99, 50}); !almost(got, 2, 1e-12) {
		t.Fatalf("wrap-x distance = %g, want 2", got)
	}
	if got := m.Dist(Point{50, 1}, Point{50, 99}); !almost(got, 2, 1e-12) {
		t.Fatalf("wrap-y distance = %g, want 2", got)
	}
	// Interior pairs match the Euclidean metric.
	a, b := Point{10, 10}, Point{13, 14}
	if got := m.Dist(a, b); !almost(got, 5, 1e-12) {
		t.Fatalf("interior distance = %g, want 5", got)
	}
}

func TestMetricsSymmetricNonNegative(t *testing.T) {
	metrics := []Metric{Euclidean{}, Manhattan{}, Torus{W: 1000, H: 1000}}
	f := func(ax, ay, bx, by float64) bool {
		if anyBad(ax, ay, bx, by) {
			return true
		}
		a := Point{math.Mod(ax, 1000), math.Mod(ay, 1000)}
		b := Point{math.Mod(bx, 1000), math.Mod(by, 1000)}
		for _, m := range metrics {
			d1, d2 := m.Dist(a, b), m.Dist(b, a)
			if d1 < 0 || !almost(d1, d2, 1e-9*(1+d1)) {
				return false
			}
			if m.Dist(a, a) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	metrics := []Metric{Euclidean{}, Manhattan{}, Torus{W: 1000, H: 1000}}
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		if anyBad(ax, ay, bx, by, cx, cy) {
			return true
		}
		a := Point{math.Mod(ax, 1000), math.Mod(ay, 1000)}
		b := Point{math.Mod(bx, 1000), math.Mod(by, 1000)}
		c := Point{math.Mod(cx, 1000), math.Mod(cy, 1000)}
		for _, m := range metrics {
			if m.Dist(a, c) > m.Dist(a, b)+m.Dist(b, c)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestRect(t *testing.T) {
	r := Square(1000)
	if r.W() != 1000 || r.H() != 1000 {
		t.Fatalf("Square(1000) = %+v", r)
	}
	if !r.Valid() {
		t.Fatal("Square(1000) not valid")
	}
	if !r.Contains(Point{0, 0}) || !r.Contains(Point{1000, 1000}) {
		t.Fatal("boundary points should be contained")
	}
	if r.Contains(Point{-1, 5}) || r.Contains(Point{5, 1001}) {
		t.Fatal("exterior points should not be contained")
	}
	if got := r.Diameter(); !almost(got, 1000*math.Sqrt2, 1e-9) {
		t.Fatalf("Diameter = %g", got)
	}
}

func TestRectClamp(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	cases := []struct{ in, want Point }{
		{Point{5, 5}, Point{5, 5}},
		{Point{-3, 5}, Point{0, 5}},
		{Point{12, -2}, Point{10, 0}},
		{Point{11, 11}, Point{10, 10}},
	}
	for _, c := range cases {
		if got := r.Clamp(c.in); got != c.want {
			t.Fatalf("Clamp(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestRectValid(t *testing.T) {
	if (Rect{0, 0, 0, 10}).Valid() {
		t.Fatal("degenerate rect reported valid")
	}
	if (Rect{5, 5, 4, 6}).Valid() {
		t.Fatal("inverted rect reported valid")
	}
}

func TestPathLoss(t *testing.T) {
	if got := PathLoss(2, 2); !almost(got, 0.25, 1e-15) {
		t.Fatalf("PathLoss(2,2) = %g", got)
	}
	if got := PathLoss(10, 2.2); !almost(got, math.Pow(10, -2.2), 1e-15) {
		t.Fatalf("PathLoss(10,2.2) = %g", got)
	}
	if got := PathLoss(0, 2); !math.IsInf(got, 1) {
		t.Fatalf("PathLoss(0,2) = %g, want +Inf", got)
	}
	if got := PathLoss(1, 3.7); got != 1 {
		t.Fatalf("PathLoss(1,α) = %g, want 1", got)
	}
}

func TestPathLossMonotone(t *testing.T) {
	f := func(d1Raw, d2Raw float64) bool {
		if anyBad(d1Raw, d2Raw) {
			return true
		}
		d1 := 0.1 + math.Mod(math.Abs(d1Raw), 1000)
		d2 := d1 + 0.1 + math.Mod(math.Abs(d2Raw), 1000)
		return PathLoss(d1, 2.2) > PathLoss(d2, 2.2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestPathLossPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PathLoss(-1,2) did not panic")
		}
	}()
	PathLoss(-1, 2)
}

func TestPointString(t *testing.T) {
	if got := (Point{1, 2}).String(); got != "(1, 2)" {
		t.Fatalf("String = %q", got)
	}
}
