// Package geom provides the 2-D geometry substrate for the wireless network
// models: points, distance metrics, and the rectangular deployment areas used
// by the paper's simulations (receivers placed on a 1000×1000 plane, senders
// at a random angle and distance from their receiver).
//
// The interference reduction in the paper holds for arbitrary expected signal
// strengths, but the cited approximation algorithms assume gains derived from
// a metric. The Metric interface keeps that assumption explicit and swappable:
// the standard experiments use the Euclidean plane, while tests also exercise
// the Manhattan metric and a torus (wrap-around) metric to confirm that
// nothing in the algorithm layer silently depends on Euclidean geometry.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{k * p.X, k * p.Y} }

// Norm returns the Euclidean norm of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// String formats the point with enough precision for debugging.
func (p Point) String() string { return fmt.Sprintf("(%.4g, %.4g)", p.X, p.Y) }

// PolarOffset returns the point at the given distance from p in the given
// direction (radians, counter-clockwise from the positive x-axis). The
// paper's network generator places each sender at a uniformly random angle
// and distance from its receiver; this is that primitive.
func (p Point) PolarOffset(angle, dist float64) Point {
	return Point{p.X + dist*math.Cos(angle), p.Y + dist*math.Sin(angle)}
}

// Metric measures distances between points. Implementations must be
// symmetric, non-negative, and zero only for identical points (on the torus,
// identical modulo wrap-around).
type Metric interface {
	// Dist returns the distance between a and b.
	Dist(a, b Point) float64
	// Name identifies the metric in experiment logs.
	Name() string
}

// Euclidean is the standard plane metric used by all of the paper's
// simulations.
type Euclidean struct{}

// Dist returns the L2 distance.
func (Euclidean) Dist(a, b Point) float64 { return math.Hypot(a.X-b.X, a.Y-b.Y) }

// Name implements Metric.
func (Euclidean) Name() string { return "euclidean" }

// Manhattan is the L1 metric. It is provided for robustness tests: the
// reduction between fading and non-fading models is metric-agnostic.
type Manhattan struct{}

// Dist returns the L1 distance.
func (Manhattan) Dist(a, b Point) float64 {
	return math.Abs(a.X-b.X) + math.Abs(a.Y-b.Y)
}

// Name implements Metric.
func (Manhattan) Name() string { return "manhattan" }

// Torus is the Euclidean metric on a W×H rectangle with wrap-around edges.
// It removes boundary effects from random deployments, which is a common
// ablation in the capacity-of-wireless-networks literature.
type Torus struct {
	W, H float64
}

// Dist returns the wrap-around Euclidean distance. Coordinates are first
// reduced modulo the torus dimensions, so the metric is well defined for
// points outside the fundamental domain as well.
func (t Torus) Dist(a, b Point) float64 {
	dx := wrapDelta(a.X-b.X, t.W)
	dy := wrapDelta(a.Y-b.Y, t.H)
	return math.Hypot(dx, dy)
}

// wrapDelta reduces a coordinate difference to the shortest displacement on
// a circle of circumference period. A non-positive period means no wrapping
// in that dimension.
func wrapDelta(d, period float64) float64 {
	d = math.Abs(d)
	if period <= 0 {
		return d
	}
	d = math.Mod(d, period)
	if d > period/2 {
		d = period - d
	}
	return d
}

// Name implements Metric.
func (t Torus) Name() string { return fmt.Sprintf("torus(%gx%g)", t.W, t.H) }

// Rect is an axis-aligned rectangle [X0,X1] × [Y0,Y1], used as a deployment
// area.
type Rect struct {
	X0, Y0, X1, Y1 float64
}

// Square returns the square deployment area [0,side] × [0,side]. The paper
// uses Square(1000).
func Square(side float64) Rect { return Rect{0, 0, side, side} }

// W returns the rectangle's width.
func (r Rect) W() float64 { return r.X1 - r.X0 }

// H returns the rectangle's height.
func (r Rect) H() float64 { return r.Y1 - r.Y0 }

// Contains reports whether p lies inside the rectangle (boundary included).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.X0 && p.X <= r.X1 && p.Y >= r.Y0 && p.Y <= r.Y1
}

// Clamp returns p moved to the nearest point inside the rectangle.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.X0), r.X1),
		Y: math.Min(math.Max(p.Y, r.Y0), r.Y1),
	}
}

// Valid reports whether the rectangle is non-degenerate.
func (r Rect) Valid() bool { return r.X1 > r.X0 && r.Y1 > r.Y0 }

// Diameter returns the largest distance between two points of the rectangle
// under the Euclidean metric.
func (r Rect) Diameter() float64 { return math.Hypot(r.W(), r.H()) }

// PathLoss returns d^(-α), the propagation attenuation over distance d with
// path-loss exponent alpha. Distance zero (a degenerate co-located pair)
// yields +Inf, which the gain-matrix layer treats as an infinite gain;
// callers that cannot tolerate this should enforce minimum link lengths at
// network-generation time.
func PathLoss(d, alpha float64) float64 {
	if d < 0 {
		panic(fmt.Sprintf("geom: negative distance %g", d))
	}
	if d == 0 {
		return math.Inf(1)
	}
	return math.Pow(d, -alpha)
}
