package fading

import (
	"math"
	"testing"

	"rayfade/internal/network"
	"rayfade/internal/rng"
)

// FuzzExactSuccessInvariants drives Theorem 1 and Lemma 1 with arbitrary
// seeds, thresholds, probabilities, and noise levels: the exact probability
// must stay in [0, q_i] and inside the Lemma-1 sandwich on every input the
// fuzzer can construct.
func FuzzExactSuccessInvariants(f *testing.F) {
	f.Add(uint64(1), 2.5, 0.5, 4e-7)
	f.Add(uint64(2), 0.1, 1.0, 0.0)
	f.Add(uint64(3), 50.0, 0.01, 1.0)
	f.Add(uint64(42), 1.0, 0.99, 1e-12)
	f.Fuzz(func(t *testing.T, seed uint64, beta, prob, noise float64) {
		if !(beta > 0) || beta > 1e6 || math.IsNaN(beta) {
			t.Skip()
		}
		if math.IsNaN(prob) || prob < 0 || prob > 1 {
			t.Skip()
		}
		if math.IsNaN(noise) || noise < 0 || math.IsInf(noise, 0) {
			t.Skip()
		}
		cfg := network.Figure1Config()
		cfg.N = 8
		cfg.Noise = noise
		net, err := network.Random(cfg, rng.New(seed))
		if err != nil {
			t.Skip()
		}
		m := net.Gains()
		q := UniformProbs(m.N, prob)
		for i := 0; i < m.N; i++ {
			p := ExactSuccess(m, q, beta, i)
			if math.IsNaN(p) || p < 0 || p > q[i]+1e-12 {
				t.Fatalf("Q_%d = %g outside [0, %g] (β=%g ν=%g)", i, p, q[i], beta, noise)
			}
			lo := LowerBound(m, q, beta, i)
			hi := UpperBound(m, q, beta, i)
			if lo > p+1e-12 || p > hi+1e-12 {
				t.Fatalf("bounds [%g,%g] miss Q_%d = %g (β=%g ν=%g)", lo, hi, i, p, beta, noise)
			}
			lp := ExactSuccessLog(m, q, beta, i)
			if p > 0 && math.Abs(math.Exp(lp)-p) > 1e-9*(1+p) {
				t.Fatalf("log form disagrees: exp(%g) vs %g", lp, p)
			}
		}
	})
}

// FuzzObservation1 stresses the two analytic inequalities behind Lemma 1
// over their full domains.
func FuzzObservation1(f *testing.F) {
	f.Add(0.5, 0.5)
	f.Add(1.0, 1.0)
	f.Add(1e-9, 0.3)
	f.Fuzz(func(t *testing.T, x, q float64) {
		if math.IsNaN(x) || math.IsNaN(q) {
			t.Skip()
		}
		q = math.Abs(math.Mod(q, 1))
		xUp := math.Abs(math.Mod(x, 1e6))
		if xUp > 0 {
			if lhs, rhs := Observation1Upper(xUp, q); lhs > rhs+1e-12 {
				t.Fatalf("upper inequality fails at x=%g q=%g: %g > %g", xUp, q, lhs, rhs)
			}
		}
		xLo := math.Abs(math.Mod(x, 1))
		if xLo > 0 {
			if lhs, rhs := Observation1Lower(xLo, q); lhs > rhs+1e-12 {
				t.Fatalf("lower inequality fails at x=%g q=%g: %g > %g", xLo, q, lhs, rhs)
			}
		}
	})
}
