package fading

import (
	"fmt"
	"math"

	"rayfade/internal/network"
	"rayfade/internal/quad"
)

// OutageCurve evaluates the exact success probability of link i at every
// threshold in betas (all positive): the Rayleigh outage curve in the
// paper's closed form, with no sampling.
func OutageCurve(m *network.Matrix, q []float64, i int, betas []float64) []float64 {
	out := make([]float64, len(betas))
	for k, b := range betas {
		out[k] = ExactSuccess(m, q, b, i)
	}
	return out
}

// ErrInfiniteRate reports an expected Shannon rate that diverges: with zero
// ambient noise there is positive probability that no interferer transmits,
// the SINR is then infinite, and so is E[log(1+γ)].
var ErrInfiniteRate = fmt.Errorf("fading: expected Shannon rate is infinite (zero noise and positive silence probability)")

// ExpectedShannonExact returns E[log(1+γ_i^R)] for link i under transmission
// probabilities q — the exact expected Shannon rate, with the expectation
// over both the random transmit set and the fading. It integrates the
// layer-cake identity
//
//	E[log(1+γ)] = ∫₀^∞ P(γ ≥ x) / (1+x) dx
//
// with Theorem 1 supplying P(γ ≥ x) in closed form and adaptive quadrature
// doing the rest: the deterministic replacement for Monte-Carlo rate
// estimation. tol ≤ 0 selects the quadrature default.
func ExpectedShannonExact(m *network.Matrix, q []float64, i int, tol float64) (float64, error) {
	checkProbs(m, q)
	if q[i] == 0 || m.Own(i) == 0 {
		return 0, nil
	}
	if m.Noise == 0 {
		// If with positive probability no interferer transmits (or none
		// has positive gain), the SINR is +∞ with that probability.
		silence := q[i]
		row := m.Incoming(i)
		for j := 0; j < m.N; j++ {
			if j != i && q[j] > 0 && row[j] > 0 {
				silence *= 1 - q[j]
			}
		}
		if silence > 0 {
			return math.Inf(1), ErrInfiniteRate
		}
	}
	integrand := func(x float64) float64 {
		if x <= 0 {
			return q[i] // Q_i(q, 0+) = q_i by continuity
		}
		return ExactSuccess(m, q, x, i) / (1 + x)
	}
	return quad.SemiInfinite(integrand, 0, tol)
}

// TotalShannonExact sums the exact expected Shannon rates of all links.
// A single diverging link makes the total infinite (with ErrInfiniteRate).
func TotalShannonExact(m *network.Matrix, q []float64, tol float64) (float64, error) {
	total := 0.0
	for i := 0; i < m.N; i++ {
		v, err := ExpectedShannonExact(m, q, i, tol)
		if err != nil {
			return math.Inf(1), err
		}
		total += v
	}
	return total, nil
}
