// Package fading implements the Rayleigh-fading interference model of the
// paper's Sections 2 and 3.
//
// Under Rayleigh fading, the strength of sender j's signal at receiver i is
// an exponentially distributed random variable S(j,i) with mean S̄(j,i),
// independent across pairs and time slots. The SINR of link i is
//
//	γ_i^R = S(i,i) / (Σ_{j ≠ i, transmitting} S(j,i) + ν).
//
// The central analytic tool is Theorem 1: with each sender j transmitting
// independently with probability q_j, the probability that link i reaches
// SINR β has the closed form
//
//	Q_i(q,β) = q_i · exp(−βν/S̄(i,i)) · Π_{j≠i} (1 − β·q_j/(β + S̄(i,i)/S̄(j,i))).
//
// Lemma 1 sandwiches Q_i between two exponential bounds that drive the
// paper's reduction. This package provides the exact form, both bounds, the
// inequalities of Observation 1 they rest on, Monte-Carlo sampling of
// realized fading SINRs, and exact/sampled expected-utility evaluation.
package fading

import (
	"fmt"
	"math"

	"rayfade/internal/network"
	"rayfade/internal/rng"
	"rayfade/internal/sinr"
	"rayfade/internal/utility"
)

// checkProbs panics if q is not a vector of m.N probabilities.
func checkProbs(m *network.Matrix, q []float64) {
	if len(q) != m.N {
		panic(fmt.Sprintf("fading: %d probabilities for %d links", len(q), m.N))
	}
	for i, p := range q {
		if p < 0 || p > 1 || math.IsNaN(p) {
			panic(fmt.Sprintf("fading: q[%d] = %g is not a probability", i, p))
		}
	}
}

// ExactSuccess returns Q_i(q,β), the Theorem-1 probability that receiver i
// gets its signal with SINR at least β > 0 when every sender j transmits
// independently with probability q[j].
//
// Edge cases follow the model: a link with zero expected own-signal
// strength never succeeds; an interferer with zero gain at receiver i
// contributes a factor of 1.
func ExactSuccess(m *network.Matrix, q []float64, beta float64, i int) float64 {
	checkProbs(m, q)
	if beta <= 0 {
		panic(fmt.Sprintf("fading: threshold β = %g must be positive", beta))
	}
	if q[i] == 0 {
		return 0
	}
	sii := m.Own(i)
	if sii == 0 {
		return 0
	}
	row := m.Incoming(i)
	p := q[i] * math.Exp(-beta*m.Noise/sii)
	for j := 0; j < m.N; j++ {
		if j == i || q[j] == 0 {
			continue
		}
		sji := row[j]
		if sji == 0 {
			continue
		}
		p *= 1 - beta*q[j]/(beta+sii/sji)
	}
	return p
}

// ExactSuccessLog returns ln Q_i(q,β), accumulating the product of Theorem 1
// in log space. For large n the plain product can underflow to zero while
// the log form retains the magnitude; the simulation harness uses it when
// comparing success probabilities across thousands of links. Returns -Inf
// when Q_i = 0.
func ExactSuccessLog(m *network.Matrix, q []float64, beta float64, i int) float64 {
	checkProbs(m, q)
	if beta <= 0 {
		panic(fmt.Sprintf("fading: threshold β = %g must be positive", beta))
	}
	if q[i] == 0 || m.Own(i) == 0 {
		return math.Inf(-1)
	}
	sii := m.Own(i)
	row := m.Incoming(i)
	logp := math.Log(q[i]) - beta*m.Noise/sii
	for j := 0; j < m.N; j++ {
		if j == i || q[j] == 0 {
			continue
		}
		sji := row[j]
		if sji == 0 {
			continue
		}
		factor := 1 - beta*q[j]/(beta+sii/sji)
		if factor <= 0 {
			return math.Inf(-1)
		}
		logp += math.Log(factor)
	}
	return logp
}

// ExactSuccessEnumerated computes Q_i(q,β) by the proof's own route rather
// than the product formula: it enumerates every subset S of potential
// interferers, weighs it by Π_{j∈S} q_j · Π_{j∉S} (1−q_j), and multiplies
// the conditional success probability
//
//	P(γ_i ≥ β | S transmits) = exp(−βν/S̄(i,i)) · Π_{j∈S} 1/(1 + β·S̄(j,i)/S̄(i,i)),
//
// which follows from conditioning on the interferers' exponential draws
// (the appendix argument behind Theorem 1). It is an O(2^n) reference
// implementation: tests use it to cross-validate ExactSuccess through a
// completely different derivation. It panics for n > 25.
func ExactSuccessEnumerated(m *network.Matrix, q []float64, beta float64, i int) float64 {
	checkProbs(m, q)
	if beta <= 0 {
		panic(fmt.Sprintf("fading: threshold β = %g must be positive", beta))
	}
	if m.N > 25 {
		panic(fmt.Sprintf("fading: enumeration limited to n ≤ 25, got %d", m.N))
	}
	if q[i] == 0 || m.Own(i) == 0 {
		return 0
	}
	sii := m.Own(i)
	row := m.Incoming(i)
	// Collect the interferers that can actually transmit and interfere.
	var others []int
	for j := 0; j < m.N; j++ {
		if j != i && q[j] > 0 && row[j] > 0 {
			others = append(others, j)
		}
	}
	baseline := q[i] * math.Exp(-beta*m.Noise/sii)
	total := 0.0
	for mask := 0; mask < 1<<len(others); mask++ {
		weight := 1.0
		cond := 1.0
		for b, j := range others {
			if mask&(1<<b) != 0 {
				weight *= q[j]
				cond *= 1 / (1 + beta*row[j]/sii)
			} else {
				weight *= 1 - q[j]
			}
		}
		total += weight * cond
	}
	return baseline * total
}

// LowerBound returns the Lemma-1 lower bound on Q_i(q,β):
//
//	q_i · exp(−(β/S̄(i,i)) · (ν + Σ_{j≠i} S̄(j,i)·q_j)).
func LowerBound(m *network.Matrix, q []float64, beta float64, i int) float64 {
	checkProbs(m, q)
	sii := m.Own(i)
	if q[i] == 0 {
		return 0
	}
	if sii == 0 {
		return 0
	}
	row := m.Incoming(i)
	sum := m.Noise
	for j := 0; j < m.N; j++ {
		if j != i {
			sum += row[j] * q[j]
		}
	}
	return q[i] * math.Exp(-beta*sum/sii)
}

// UpperBound returns the Lemma-1 upper bound on Q_i(q,β):
//
//	q_i · exp(−βν/S̄(i,i) − Σ_{j≠i} min{1/2, β·S̄(j,i)/(2·S̄(i,i))}·q_j).
func UpperBound(m *network.Matrix, q []float64, beta float64, i int) float64 {
	checkProbs(m, q)
	sii := m.Own(i)
	if q[i] == 0 {
		return 0
	}
	if sii == 0 {
		return 0
	}
	row := m.Incoming(i)
	expo := -beta * m.Noise / sii
	for j := 0; j < m.N; j++ {
		if j == i {
			continue
		}
		expo -= math.Min(0.5, beta*row[j]/(2*sii)) * q[j]
	}
	return q[i] * math.Exp(expo)
}

// InterferenceSum returns A_i = Σ_{j≠i} min{1, β·S̄(j,i)/S̄(i,i)}·q_j, the
// normalized expected interference load that drives the proof of Theorem 2
// (where the level k of Algorithm 1 is chosen with b_k ≈ exp(A_i/2)).
func InterferenceSum(m *network.Matrix, q []float64, beta float64, i int) float64 {
	checkProbs(m, q)
	sii := m.Own(i)
	row := m.Incoming(i)
	sum := 0.0
	for j := 0; j < m.N; j++ {
		if j == i {
			continue
		}
		var ratio float64
		if sii == 0 {
			ratio = 1
		} else {
			ratio = math.Min(1, beta*row[j]/sii)
		}
		sum += ratio * q[j]
	}
	return sum
}

// Observation1Upper is the first inequality of Observation 1:
// exp(−xq) ≤ 1 − q/(1/x + 1) for all real x ≥ 0 and q ∈ [0,1].
// Exposed so tests can pin the analytic backbone of Lemma 1.
func Observation1Upper(x, q float64) (lhs, rhs float64) {
	return math.Exp(-x * q), 1 - q/(1/x+1)
}

// Observation1Lower is the second inequality of Observation 1:
// 1 − q/(1/x + 1) ≤ exp(−xq/2) for x ∈ (0,1], q ∈ [0,1].
func Observation1Lower(x, q float64) (lhs, rhs float64) {
	return 1 - q/(1/x+1), math.Exp(-x * q / 2)
}

// ExpectedSuccessesExact returns E[#links with SINR ≥ β] = Σ_i Q_i(q,β),
// the exact expected number of successful transmissions under Rayleigh
// fading for the given transmission probabilities — the y-axis of the
// paper's Figure 1 for the fading curves.
func ExpectedSuccessesExact(m *network.Matrix, q []float64, beta float64) float64 {
	total := 0.0
	for i := 0; i < m.N; i++ {
		total += ExactSuccess(m, q, beta, i)
	}
	return total
}

// ExpectedBinaryValueOfSet returns Σ_{i∈set} Q_i(1_set, β): the exact
// expected number of successes when exactly the links of set transmit —
// the Rayleigh-side value of a transferred non-fading solution (Lemma 2).
func ExpectedBinaryValueOfSet(m *network.Matrix, set []int, beta float64) float64 {
	q := make([]float64, m.N)
	for _, i := range set {
		q[i] = 1
	}
	total := 0.0
	for _, i := range set {
		total += ExactSuccess(m, q, beta, i)
	}
	return total
}

// SampleSINRs draws one Rayleigh realization: for each transmitting link i
// (active[i] == true), every transmitting sender's strength at receiver i is
// drawn as an independent exponential with mean S̄(j,i), and the realized
// SINR is returned. Inactive links report 0. Cost is O(a²) for a active
// links.
//
// This convenience form allocates its result and scratch; hot loops should
// hold buffers and call SampleSINRsInto, which draws the identical stream.
func SampleSINRs(m *network.Matrix, active []bool, src *rng.Source) []float64 {
	return SampleSINRsInto(m, active, src, make([]float64, m.N), make([]int, 0, m.N))
}

// checkScratch panics unless out and idx can serve as kernel scratch for an
// n-link matrix without growing.
func checkScratch(n int, out []float64, idx []int) {
	if len(out) != n {
		panic(fmt.Sprintf("fading: SINR buffer length %d for %d links", len(out), n))
	}
	if cap(idx) < n {
		panic(fmt.Sprintf("fading: index scratch capacity %d for %d links", cap(idx), n))
	}
}

// activeIndices fills idx (sliced to zero length) with the indices of active
// links, in increasing order, without allocating.
func activeIndices(active []bool, idx []int) []int {
	idx = idx[:0]
	for i, a := range active {
		if a {
			idx = append(idx, i)
		}
	}
	return idx
}

// SampleSINRsInto is the allocation-free kernel behind SampleSINRs: it draws
// one Rayleigh realization into out and returns out. The caller owns the
// scratch: out must have length m.N and idx capacity at least m.N; both may
// be reused across calls. Only active senders and receivers are visited, so
// one realization costs O(a²) exponential draws plus an O(n) clear of out —
// not an O(n²) pass over the full gain matrix.
//
// The exponential draws happen in increasing (receiver, sender) index order
// over the active links — exactly the order SampleSINRs has always consumed
// its stream — so fixed-seed experiment outputs are byte-identical whichever
// entry point is used.
func SampleSINRsInto(m *network.Matrix, active []bool, src *rng.Source, out []float64, idx []int) []float64 {
	checkScratch(m.N, out, idx)
	idx = activeIndices(active, idx)
	for i := range out {
		out[i] = 0
	}
	// Receiver-major layout: the inner loop reads row = Incoming(i)
	// contiguously at the active sender indices, in the same (i, j) order the
	// stream has always been consumed — cache-linear with identical draws.
	for _, i := range idx {
		row := m.Incoming(i)
		interf := m.Noise
		var own float64
		for _, j := range idx {
			s := src.Exp(row[j])
			if j == i {
				own = s
			} else {
				interf += s
			}
		}
		if interf == 0 {
			if own > 0 {
				out[i] = math.Inf(1)
			}
			continue
		}
		out[i] = own / interf
	}
	return out
}

// SampleSuccesses draws one Rayleigh realization and returns the indices of
// active links whose realized SINR reaches β. Like SampleSINRs it allocates;
// counting loops should use CountSuccesses with reused buffers.
func SampleSuccesses(m *network.Matrix, active []bool, beta float64, src *rng.Source) []int {
	var ok []int
	vals := SampleSINRs(m, active, src)
	for i, a := range active {
		if a && vals[i] >= beta {
			ok = append(ok, i)
		}
	}
	return ok
}

// CountSuccesses draws one Rayleigh realization and counts the active links
// whose realized SINR reaches β. It is the allocation-free counting kernel of
// the Monte-Carlo experiments: out and idx follow the SampleSINRsInto scratch
// convention, and the RNG stream consumed is identical to SampleSuccesses.
func CountSuccesses(m *network.Matrix, active []bool, beta float64, src *rng.Source, out []float64, idx []int) int {
	vals := SampleSINRsInto(m, active, src, out, idx)
	count := 0
	for i, a := range active {
		if a && vals[i] >= beta {
			count++
		}
	}
	return count
}

// MCResult is a Monte-Carlo estimate with its standard error.
type MCResult struct {
	Mean   float64
	StdErr float64
	N      int
}

// ExpectedUtilityMC estimates E[Σ_i u_i(γ_i^R)] for the transmission
// probability vector q by Monte-Carlo: each sample independently draws the
// transmitting set from q and a fading realization, then evaluates the
// utilities. us follows the utility.Sum convention (length 1 broadcasts).
//
// For binary utilities, ExpectedSuccessesExact gives the same quantity in
// closed form; the Monte-Carlo path exists for general utilities (e.g.
// Shannon), whose expectation has no simple closed form, and as an
// independent check of Theorem 1 in tests.
func ExpectedUtilityMC(m *network.Matrix, q []float64, us []utility.Func, samples int, src *rng.Source) MCResult {
	checkProbs(m, q)
	if samples <= 0 {
		panic(fmt.Sprintf("fading: %d samples", samples))
	}
	var sum, sumSq float64
	active := make([]bool, m.N)
	vals := make([]float64, m.N)
	idx := make([]int, 0, m.N)
	for s := 0; s < samples; s++ {
		for i := range active {
			active[i] = src.Bernoulli(q[i])
		}
		SampleSINRsInto(m, active, src, vals, idx)
		v := utility.Sum(us, vals)
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(samples)
	variance := sumSq/float64(samples) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return MCResult{
		Mean:   mean,
		StdErr: math.Sqrt(variance / float64(samples)),
		N:      samples,
	}
}

// SuccessProbabilityMC estimates Q_i(q,β) by Monte-Carlo, for validating
// the closed form of Theorem 1.
func SuccessProbabilityMC(m *network.Matrix, q []float64, beta float64, i int, samples int, src *rng.Source) MCResult {
	checkProbs(m, q)
	if samples <= 0 {
		panic(fmt.Sprintf("fading: %d samples", samples))
	}
	hits := 0
	active := make([]bool, m.N)
	vals := make([]float64, m.N)
	idx := make([]int, 0, m.N)
	for s := 0; s < samples; s++ {
		for k := range active {
			active[k] = src.Bernoulli(q[k])
		}
		if !active[i] {
			continue
		}
		SampleSINRsInto(m, active, src, vals, idx)
		if vals[i] >= beta {
			hits++
		}
	}
	p := float64(hits) / float64(samples)
	return MCResult{
		Mean:   p,
		StdErr: math.Sqrt(p * (1 - p) / float64(samples)),
		N:      samples,
	}
}

// NonFadingSuccessesForProbs draws the transmitting set from q and counts
// non-fading successes at threshold β; one sample of the Figure-1
// non-fading curves. It returns the count and the drawn set size.
func NonFadingSuccessesForProbs(m *network.Matrix, q []float64, beta float64, src *rng.Source) (successes, transmitters int) {
	checkProbs(m, q)
	active := make([]bool, m.N)
	for i := range active {
		if src.Bernoulli(q[i]) {
			active[i] = true
			transmitters++
		}
	}
	return sinr.CountSuccesses(m, active, beta), transmitters
}

// RayleighSuccessesForProbs draws the transmitting set from q, draws one
// fading realization, and counts Rayleigh successes at threshold β; one
// sample of the Figure-1 fading curves.
func RayleighSuccessesForProbs(m *network.Matrix, q []float64, beta float64, src *rng.Source) (successes, transmitters int) {
	checkProbs(m, q)
	active := make([]bool, m.N)
	for i := range active {
		if src.Bernoulli(q[i]) {
			active[i] = true
			transmitters++
		}
	}
	return len(SampleSuccesses(m, active, beta, src)), transmitters
}

// UniformProbs returns the probability vector assigning p to all n links.
func UniformProbs(n int, p float64) []float64 {
	q := make([]float64, n)
	for i := range q {
		q[i] = p
	}
	return q
}
