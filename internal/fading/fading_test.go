package fading

import (
	"math"
	"testing"
	"testing/quick"

	"rayfade/internal/network"
	"rayfade/internal/rng"
	"rayfade/internal/sinr"
	"rayfade/internal/utility"
)

func mat(t testing.TB, g [][]float64, noise float64) *network.Matrix {
	t.Helper()
	m, err := network.NewMatrix(g, noise)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func randomMatrix(t testing.TB, seed uint64, n int) *network.Matrix {
	t.Helper()
	cfg := network.Figure1Config()
	cfg.N = n
	net, err := network.Random(cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return net.Gains()
}

func randomProbs(src *rng.Source, n int) []float64 {
	q := make([]float64, n)
	for i := range q {
		q[i] = src.Float64()
	}
	return q
}

// Solo link, only noise: Theorem 1 collapses to Q = q·exp(−βν/S̄ii), the
// exponential tail probability.
func TestExactSuccessSoloLink(t *testing.T) {
	m := mat(t, [][]float64{{2}}, 0.5)
	got := ExactSuccess(m, []float64{1}, 3, 0)
	want := math.Exp(-3 * 0.5 / 2)
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("solo Q = %g, want %g", got, want)
	}
}

// Two links, both transmitting, no noise: Q_0 = 1/(1 + β·S̄(1,0)/S̄(0,0)),
// the classical two-user Rayleigh outage formula.
func TestExactSuccessTwoLinksNoNoise(t *testing.T) {
	m := mat(t, [][]float64{{1, 0.3}, {0.5, 1}}, 0)
	beta := 2.0
	got := ExactSuccess(m, []float64{1, 1}, beta, 0)
	want := 1 / (1 + beta*0.5/1)
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("Q_0 = %g, want %g", got, want)
	}
}

func TestExactSuccessZeroTransmitProbability(t *testing.T) {
	m := mat(t, [][]float64{{1, 0}, {0, 1}}, 0)
	if got := ExactSuccess(m, []float64{0, 1}, 1, 0); got != 0 {
		t.Fatalf("Q with q_i=0 should be 0, got %g", got)
	}
}

func TestExactSuccessSilentInterferers(t *testing.T) {
	// Interferers with q_j = 0 contribute nothing.
	m := mat(t, [][]float64{{1, 0.9}, {0.9, 1}}, 0.1)
	qSolo := ExactSuccess(m, []float64{1, 0}, 2, 0)
	soloWant := math.Exp(-2 * 0.1 / 1)
	if math.Abs(qSolo-soloWant) > 1e-15 {
		t.Fatalf("silent interferer: Q = %g, want %g", qSolo, soloWant)
	}
}

func TestExactSuccessZeroGainInterferer(t *testing.T) {
	m := mat(t, [][]float64{{1, 0}, {0, 1}}, 0)
	if got := ExactSuccess(m, []float64{1, 1}, 5, 0); got != 1 {
		t.Fatalf("zero-gain interferer: Q = %g, want 1", got)
	}
}

func TestExactSuccessZeroOwnGain(t *testing.T) {
	m := mat(t, [][]float64{{0, 0}, {0, 1}}, 0)
	if got := ExactSuccess(m, []float64{1, 1}, 1, 0); got != 0 {
		t.Fatalf("zero own gain: Q = %g, want 0", got)
	}
}

func TestExactSuccessPanics(t *testing.T) {
	m := mat(t, [][]float64{{1}}, 0)
	for _, fn := range []func(){
		func() { ExactSuccess(m, []float64{0.5, 0.5}, 1, 0) }, // wrong length
		func() { ExactSuccess(m, []float64{1.5}, 1, 0) },      // not a probability
		func() { ExactSuccess(m, []float64{0.5}, 0, 0) },      // β = 0
		func() { ExactSuccess(m, []float64{0.5}, -1, 0) },     // β < 0
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestExactSuccessLogMatches(t *testing.T) {
	m := randomMatrix(t, 3, 30)
	src := rng.New(4)
	q := randomProbs(src, m.N)
	for i := 0; i < m.N; i++ {
		p := ExactSuccess(m, q, 2.5, i)
		lp := ExactSuccessLog(m, q, 2.5, i)
		if p == 0 {
			if !math.IsInf(lp, -1) {
				t.Fatalf("link %d: p=0 but log=%g", i, lp)
			}
			continue
		}
		if math.Abs(math.Exp(lp)-p) > 1e-12*(1+p) {
			t.Fatalf("link %d: exp(log Q)=%g, Q=%g", i, math.Exp(lp), p)
		}
	}
}

func TestExactSuccessLogZeroCases(t *testing.T) {
	m := mat(t, [][]float64{{1, 0}, {0, 1}}, 0)
	if lp := ExactSuccessLog(m, []float64{0, 1}, 1, 0); !math.IsInf(lp, -1) {
		t.Fatalf("log Q with q_i = 0 should be -Inf, got %g", lp)
	}
}

// Two independent derivations of Theorem 1 — the closed-form product and
// the subset-enumeration over conditional exponentials — must agree to
// machine precision on every instance.
func TestExactSuccessMatchesEnumeration(t *testing.T) {
	f := func(seed uint64) bool {
		m := randomMatrix(t, seed, 10)
		src := rng.New(seed ^ 0x777)
		q := randomProbs(src, m.N)
		beta := 0.2 + 5*src.Float64()
		for i := 0; i < m.N; i++ {
			a := ExactSuccess(m, q, beta, i)
			b := ExactSuccessEnumerated(m, q, beta, i)
			if math.Abs(a-b) > 1e-12*(1+a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestExactSuccessEnumeratedPanics(t *testing.T) {
	big := randomMatrix(t, 1, 26)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ExactSuccessEnumerated(big, UniformProbs(26, 0.5), 2.5, 0)
}

// Theorem 1 against brute-force Monte Carlo on a moderate instance.
func TestTheorem1MatchesMonteCarlo(t *testing.T) {
	m := randomMatrix(t, 11, 8)
	src := rng.New(100)
	q := []float64{1, 0.7, 0.3, 1, 0, 0.5, 0.9, 0.2}
	beta := 2.5
	for _, i := range []int{0, 3, 6} {
		exact := ExactSuccess(m, q, beta, i)
		mc := SuccessProbabilityMC(m, q, beta, i, 200000, src)
		tol := 4*mc.StdErr + 1e-4
		if math.Abs(mc.Mean-exact) > tol {
			t.Fatalf("link %d: MC %g ± %g vs exact %g", i, mc.Mean, mc.StdErr, exact)
		}
	}
}

// Lemma 1: lower ≤ exact ≤ upper, on random geometric instances with random
// probability vectors.
func TestLemma1BoundsBracketExact(t *testing.T) {
	f := func(seed uint64) bool {
		m := randomMatrix(t, seed, 15)
		src := rng.New(seed ^ 0x5a5a)
		q := randomProbs(src, m.N)
		beta := 0.5 + 4*src.Float64()
		for i := 0; i < m.N; i++ {
			exact := ExactSuccess(m, q, beta, i)
			lo := LowerBound(m, q, beta, i)
			hi := UpperBound(m, q, beta, i)
			if lo > exact+1e-12 || exact > hi+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Observation 1, first inequality: exp(−xq) ≤ 1 − q/(1/x+1) for x ≥ 0.
func TestObservation1Upper(t *testing.T) {
	f := func(xRaw, qRaw float64) bool {
		if math.IsNaN(xRaw) || math.IsNaN(qRaw) {
			return true
		}
		x := math.Abs(math.Mod(xRaw, 100))
		q := math.Abs(math.Mod(qRaw, 1))
		if x == 0 {
			return true // statement needs x > 0 for the 1/x term
		}
		lhs, rhs := Observation1Upper(x, q)
		return lhs <= rhs+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Observation 1, second inequality: 1 − q/(1/x+1) ≤ exp(−xq/2) for x ∈ (0,1].
func TestObservation1Lower(t *testing.T) {
	f := func(xRaw, qRaw float64) bool {
		if math.IsNaN(xRaw) || math.IsNaN(qRaw) {
			return true
		}
		x := math.Abs(math.Mod(xRaw, 1))
		q := math.Abs(math.Mod(qRaw, 1))
		if x == 0 {
			return true
		}
		lhs, rhs := Observation1Lower(x, q)
		return lhs <= rhs+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Q_i is non-increasing in β.
func TestExactSuccessMonotoneInBeta(t *testing.T) {
	m := randomMatrix(t, 21, 10)
	src := rng.New(8)
	q := randomProbs(src, m.N)
	for i := 0; i < m.N; i++ {
		prev := math.Inf(1)
		for _, beta := range []float64{0.1, 0.5, 1, 2.5, 5, 20} {
			p := ExactSuccess(m, q, beta, i)
			if p > prev+1e-15 {
				t.Fatalf("link %d: Q increased from %g to %g as β grew", i, prev, p)
			}
			prev = p
		}
	}
}

// Q_i is non-increasing in any interferer's transmission probability and
// linear (increasing) in its own.
func TestExactSuccessMonotoneInProbs(t *testing.T) {
	m := randomMatrix(t, 23, 8)
	src := rng.New(9)
	q := randomProbs(src, m.N)
	i := 3
	base := ExactSuccess(m, q, 2.5, i)
	for j := 0; j < m.N; j++ {
		if j == i {
			continue
		}
		bumped := append([]float64(nil), q...)
		bumped[j] = math.Min(1, q[j]+0.3)
		if p := ExactSuccess(m, bumped, 2.5, i); p > base+1e-15 {
			t.Fatalf("raising q[%d] increased Q_%d from %g to %g", j, i, base, p)
		}
	}
	own := append([]float64(nil), q...)
	own[i] = 1
	pFull := ExactSuccess(m, own, 2.5, i)
	if q[i] > 0 {
		// Q is proportional to q_i.
		if math.Abs(pFull*q[i]-base) > 1e-12 {
			t.Fatalf("Q not linear in own probability: %g vs %g", pFull*q[i], base)
		}
	}
}

func TestExpectedSuccessesExactSums(t *testing.T) {
	m := randomMatrix(t, 31, 12)
	src := rng.New(10)
	q := randomProbs(src, m.N)
	var want float64
	for i := 0; i < m.N; i++ {
		want += ExactSuccess(m, q, 2.5, i)
	}
	if got := ExpectedSuccessesExact(m, q, 2.5); math.Abs(got-want) > 1e-12 {
		t.Fatalf("ExpectedSuccessesExact = %g, want %g", got, want)
	}
}

func TestExpectedBinaryValueOfSet(t *testing.T) {
	m := randomMatrix(t, 33, 10)
	set := []int{1, 4, 7}
	got := ExpectedBinaryValueOfSet(m, set, 2.5)
	q := make([]float64, m.N)
	for _, i := range set {
		q[i] = 1
	}
	var want float64
	for _, i := range set {
		want += ExactSuccess(m, q, 2.5, i)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("set value = %g, want %g", got, want)
	}
	if got <= 0 || got > float64(len(set)) {
		t.Fatalf("set value %g out of range (0,%d]", got, len(set))
	}
}

// Lemma 2's engine: if the set transmits at exactly its non-fading SINR
// γ_i^nf as the threshold, the Rayleigh success probability is ≥ 1/e.
func TestLemma2CoreProbabilityAtLeastOneOverE(t *testing.T) {
	f := func(seed uint64) bool {
		m := randomMatrix(t, seed, 12)
		src := rng.New(seed + 17)
		var set []int
		for i := 0; i < m.N; i++ {
			if src.Bernoulli(0.4) {
				set = append(set, i)
			}
		}
		if len(set) == 0 {
			return true
		}
		active := sinr.SetToActive(m.N, set)
		vals := sinr.Values(m, active)
		q := make([]float64, m.N)
		for _, i := range set {
			q[i] = 1
		}
		for _, i := range set {
			gamma := vals[i]
			if gamma <= 0 || math.IsInf(gamma, 1) {
				continue
			}
			if ExactSuccess(m, q, gamma, i) < 1/math.E-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInterferenceSumBounds(t *testing.T) {
	m := randomMatrix(t, 41, 20)
	src := rng.New(12)
	q := randomProbs(src, m.N)
	for i := 0; i < m.N; i++ {
		a := InterferenceSum(m, q, 2.5, i)
		if a < 0 || a > float64(m.N) {
			t.Fatalf("A_%d = %g outside [0,n]", i, a)
		}
	}
}

// The Lemma 1 upper bound rewritten through A_i:
// Q_i ≤ q_i · exp(−βν/S̄ii − A_i/2).
func TestUpperBoundViaInterferenceSum(t *testing.T) {
	m := randomMatrix(t, 43, 15)
	src := rng.New(13)
	q := randomProbs(src, m.N)
	beta := 2.5
	for i := 0; i < m.N; i++ {
		ai := InterferenceSum(m, q, beta, i)
		sii := m.Own(i)
		bound := q[i] * math.Exp(-beta*m.Noise/sii-ai/2)
		if p := ExactSuccess(m, q, beta, i); p > bound+1e-12 {
			t.Fatalf("link %d: Q = %g exceeds A_i-form bound %g", i, p, bound)
		}
	}
}

func TestSampleSINRsRespectsActivity(t *testing.T) {
	m := randomMatrix(t, 51, 10)
	src := rng.New(14)
	active := make([]bool, m.N)
	active[2], active[5] = true, true
	vals := SampleSINRs(m, active, src)
	for i, v := range vals {
		if !active[i] && v != 0 {
			t.Fatalf("inactive link %d has SINR %g", i, v)
		}
		if active[i] && (v < 0 || math.IsNaN(v)) {
			t.Fatalf("active link %d has SINR %g", i, v)
		}
	}
}

// Solo link with noise: P(realized SINR ≥ β) should match exp(−βν/S̄ii).
func TestSampleSINRsMarginalDistribution(t *testing.T) {
	m := mat(t, [][]float64{{2}}, 0.5)
	src := rng.New(15)
	active := []bool{true}
	beta := 3.0
	want := math.Exp(-beta * 0.5 / 2)
	hits := 0
	const n = 200000
	for s := 0; s < n; s++ {
		if SampleSINRs(m, active, src)[0] >= beta {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-want) > 0.005 {
		t.Fatalf("solo tail probability %g, want %g", got, want)
	}
}

func TestSampleSuccesses(t *testing.T) {
	m := randomMatrix(t, 53, 10)
	src := rng.New(16)
	active := make([]bool, m.N)
	for i := range active {
		active[i] = true
	}
	set := SampleSuccesses(m, active, 2.5, src)
	seen := map[int]bool{}
	for _, i := range set {
		if i < 0 || i >= m.N || seen[i] {
			t.Fatalf("bad success set %v", set)
		}
		seen[i] = true
	}
}

// ExpectedUtilityMC with binary utility must agree with the closed form.
func TestExpectedUtilityMCMatchesClosedForm(t *testing.T) {
	m := randomMatrix(t, 55, 10)
	src := rng.New(17)
	q := randomProbs(src, m.N)
	beta := 2.5
	exact := ExpectedSuccessesExact(m, q, beta)
	mc := ExpectedUtilityMC(m, q, utility.Uniform(utility.Binary{Beta: beta}), 60000, src)
	if math.Abs(mc.Mean-exact) > 5*mc.StdErr+0.05 {
		t.Fatalf("MC %g ± %g vs exact %g", mc.Mean, mc.StdErr, exact)
	}
}

func TestExpectedUtilityMCShannonPositive(t *testing.T) {
	m := randomMatrix(t, 57, 10)
	src := rng.New(18)
	q := UniformProbs(m.N, 0.5)
	mc := ExpectedUtilityMC(m, q, utility.Uniform(utility.Shannon{}), 2000, src)
	if mc.Mean <= 0 {
		t.Fatalf("Shannon capacity estimate %g should be positive", mc.Mean)
	}
	if mc.N != 2000 {
		t.Fatalf("sample count %d", mc.N)
	}
}

func TestExpectedUtilityMCPanics(t *testing.T) {
	m := randomMatrix(t, 59, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("0 samples did not panic")
		}
	}()
	ExpectedUtilityMC(m, UniformProbs(4, 0.5), utility.Uniform(utility.Shannon{}), 0, rng.New(1))
}

func TestSuccessCountersForProbs(t *testing.T) {
	m := randomMatrix(t, 61, 20)
	src := rng.New(19)
	q := UniformProbs(m.N, 0.3)
	nf, tx1 := NonFadingSuccessesForProbs(m, q, 2.5, src)
	rl, tx2 := RayleighSuccessesForProbs(m, q, 2.5, src)
	if nf < 0 || nf > tx1 || tx1 > m.N {
		t.Fatalf("non-fading successes %d of %d transmitters", nf, tx1)
	}
	if rl < 0 || rl > tx2 || tx2 > m.N {
		t.Fatalf("Rayleigh successes %d of %d transmitters", rl, tx2)
	}
}

func TestUniformProbs(t *testing.T) {
	q := UniformProbs(4, 0.25)
	if len(q) != 4 {
		t.Fatalf("len = %d", len(q))
	}
	for _, p := range q {
		if p != 0.25 {
			t.Fatalf("probs = %v", q)
		}
	}
}

// Property: Q is always a probability.
func TestQuickExactSuccessIsProbability(t *testing.T) {
	f := func(seed uint64, betaRaw float64) bool {
		if math.IsNaN(betaRaw) {
			return true
		}
		m := randomMatrix(t, seed, 8)
		src := rng.New(seed ^ 0xf00)
		q := randomProbs(src, m.N)
		beta := 0.01 + math.Abs(math.Mod(betaRaw, 50))
		for i := 0; i < m.N; i++ {
			p := ExactSuccess(m, q, beta, i)
			if p < 0 || p > 1 || math.IsNaN(p) {
				return false
			}
			if p > q[i]+1e-12 { // success requires transmitting
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkExactSuccess100(b *testing.B) {
	m := randomMatrix(b, 1, 100)
	q := UniformProbs(100, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExactSuccess(m, q, 2.5, i%100)
	}
}

func BenchmarkSampleSINRs100(b *testing.B) {
	m := randomMatrix(b, 1, 100)
	src := rng.New(2)
	active := make([]bool, 100)
	for i := range active {
		active[i] = i%2 == 0
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SampleSINRs(m, active, src)
	}
}

func BenchmarkExpectedSuccessesExact100(b *testing.B) {
	m := randomMatrix(b, 1, 100)
	q := UniformProbs(100, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExpectedSuccessesExact(m, q, 2.5)
	}
}
