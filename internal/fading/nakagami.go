package fading

import (
	"fmt"
	"math"

	"rayfade/internal/network"
	"rayfade/internal/rng"
)

// GainSampler draws a random received power for a given expected power.
// It abstracts the fading distribution so the scheduling and simulation
// layers can be exercised under fading models beyond Rayleigh — the
// direction the paper's discussion section raises ("interference models
// capturing further realistic properties").
type GainSampler interface {
	// SampleGain draws one received power with the given mean. A mean of
	// zero must return zero.
	SampleGain(mean float64, src *rng.Source) float64
	// Name identifies the fading model in experiment output.
	Name() string
}

// RayleighGains is the paper's model: received power is exponential with
// the given mean (a Rayleigh-distributed amplitude).
type RayleighGains struct{}

// SampleGain implements GainSampler.
func (RayleighGains) SampleGain(mean float64, src *rng.Source) float64 {
	return src.Exp(mean)
}

// Name implements GainSampler.
func (RayleighGains) Name() string { return "rayleigh" }

// NakagamiGains models Nakagami-m fading: the received power follows a
// Gamma distribution with shape M and the given mean (scale mean/M).
// M = 1 recovers Rayleigh fading exactly; larger M means milder fading
// (power concentrates around the mean), M → ∞ approaches the non-fading
// model. M ≥ 0.5 per the Nakagami parameterization.
type NakagamiGains struct{ M float64 }

// SampleGain implements GainSampler.
func (n NakagamiGains) SampleGain(mean float64, src *rng.Source) float64 {
	if n.M < 0.5 {
		panic(fmt.Sprintf("fading: Nakagami shape m = %g below 0.5", n.M))
	}
	if mean == 0 {
		return 0
	}
	return src.Gamma(n.M, mean/n.M)
}

// Name implements GainSampler.
func (n NakagamiGains) Name() string { return fmt.Sprintf("nakagami(m=%g)", n.M) }

// NonFadingGains returns the mean deterministically; it exists so the same
// sampling code path can produce non-fading results in comparisons.
type NonFadingGains struct{}

// SampleGain implements GainSampler.
func (NonFadingGains) SampleGain(mean float64, _ *rng.Source) float64 { return mean }

// Name implements GainSampler.
func (NonFadingGains) Name() string { return "non-fading" }

// SampleSINRsWith draws one fading realization under an arbitrary fading
// model and returns per-link SINRs; inactive links report 0. With
// RayleighGains it matches SampleSINRs draw-for-draw. It allocates; hot
// loops should hold buffers and call SampleSINRsWithInto.
func SampleSINRsWith(m *network.Matrix, active []bool, sampler GainSampler, src *rng.Source) []float64 {
	return SampleSINRsWithInto(m, active, sampler, src, make([]float64, m.N), make([]int, 0, m.N))
}

// SampleSINRsWithInto is the allocation-free kernel behind SampleSINRsWith,
// following the SampleSINRsInto scratch convention: out must have length m.N,
// idx capacity at least m.N, and only active sender/receiver pairs are
// visited, in the same increasing index order as SampleSINRsWith has always
// drawn them.
func SampleSINRsWithInto(m *network.Matrix, active []bool, sampler GainSampler, src *rng.Source, out []float64, idx []int) []float64 {
	checkScratch(m.N, out, idx)
	idx = activeIndices(active, idx)
	for i := range out {
		out[i] = 0
	}
	for _, i := range idx {
		row := m.Incoming(i)
		interf := m.Noise
		var own float64
		for _, j := range idx {
			s := sampler.SampleGain(row[j], src)
			if j == i {
				own = s
			} else {
				interf += s
			}
		}
		if interf == 0 {
			if own > 0 {
				out[i] = math.Inf(1)
			}
			continue
		}
		out[i] = own / interf
	}
	return out
}

// SuccessProbabilityWithMC estimates the probability that link i reaches β
// under an arbitrary fading model by Monte Carlo (there is no closed form
// for general Nakagami interference). q gives per-link transmission
// probabilities.
func SuccessProbabilityWithMC(m *network.Matrix, q []float64, beta float64, i int, sampler GainSampler, samples int, src *rng.Source) MCResult {
	checkProbs(m, q)
	if samples <= 0 {
		panic(fmt.Sprintf("fading: %d samples", samples))
	}
	hits := 0
	active := make([]bool, m.N)
	for s := 0; s < samples; s++ {
		for k := range active {
			active[k] = src.Bernoulli(q[k])
		}
		if !active[i] {
			continue
		}
		if SampleSINRsWith(m, active, sampler, src)[i] >= beta {
			hits++
		}
	}
	p := float64(hits) / float64(samples)
	return MCResult{Mean: p, StdErr: math.Sqrt(p * (1 - p) / float64(samples)), N: samples}
}

// ExpectedSuccessesWithMC estimates E[#successes] at threshold β for a
// fixed transmitting set under an arbitrary fading model.
func ExpectedSuccessesWithMC(m *network.Matrix, active []bool, beta float64, sampler GainSampler, samples int, src *rng.Source) MCResult {
	if samples <= 0 {
		panic(fmt.Sprintf("fading: %d samples", samples))
	}
	var sum, sumSq float64
	for s := 0; s < samples; s++ {
		vals := SampleSINRsWith(m, active, sampler, src)
		count := 0.0
		for i, a := range active {
			if a && vals[i] >= beta {
				count++
			}
		}
		sum += count
		sumSq += count * count
	}
	mean := sum / float64(samples)
	variance := sumSq/float64(samples) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return MCResult{Mean: mean, StdErr: math.Sqrt(variance / float64(samples)), N: samples}
}
