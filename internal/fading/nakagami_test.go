package fading

import (
	"math"
	"testing"

	"rayfade/internal/network"
	"rayfade/internal/rng"
	"rayfade/internal/sinr"
)

func TestSamplerNames(t *testing.T) {
	if (RayleighGains{}).Name() == "" || (NonFadingGains{}).Name() == "" {
		t.Fatal("empty sampler name")
	}
	if got := (NakagamiGains{M: 2}).Name(); got != "nakagami(m=2)" {
		t.Fatalf("Name = %q", got)
	}
}

func TestSamplerZeroMean(t *testing.T) {
	src := rng.New(1)
	for _, s := range []GainSampler{RayleighGains{}, NakagamiGains{M: 2}, NonFadingGains{}} {
		if v := s.SampleGain(0, src); v != 0 {
			t.Fatalf("%s: SampleGain(0) = %g", s.Name(), v)
		}
	}
}

func TestNakagamiMeanPreserved(t *testing.T) {
	src := rng.New(2)
	for _, m := range []float64{0.5, 1, 2, 8} {
		s := NakagamiGains{M: m}
		const n = 100000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += s.SampleGain(3, src)
		}
		if got := sum / n; math.Abs(got-3)/3 > 0.03 {
			t.Fatalf("m=%g: sample mean %g, want 3", m, got)
		}
	}
}

// Nakagami m=1 is exactly Rayleigh: tail probabilities must agree.
func TestNakagamiOneMatchesRayleigh(t *testing.T) {
	src := rng.New(3)
	const n = 200000
	var above int
	s := NakagamiGains{M: 1}
	for i := 0; i < n; i++ {
		if s.SampleGain(2, src) > 2 {
			above++
		}
	}
	if got, want := float64(above)/n, math.Exp(-1); math.Abs(got-want) > 0.005 {
		t.Fatalf("P(X>mean) = %g, want e^-1 = %g", got, want)
	}
}

// Larger m concentrates the distribution: variance strictly shrinks.
func TestNakagamiVarianceDecreasesInM(t *testing.T) {
	src := rng.New(4)
	const n = 100000
	variance := func(m float64) float64 {
		s := NakagamiGains{M: m}
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			v := s.SampleGain(1, src)
			sum += v
			sumSq += v * v
		}
		mean := sum / n
		return sumSq/n - mean*mean
	}
	v1, v4, v16 := variance(1), variance(4), variance(16)
	if !(v1 > v4 && v4 > v16) {
		t.Fatalf("variances not decreasing: m=1:%g m=4:%g m=16:%g", v1, v4, v16)
	}
	// Theoretical variance of Gamma(m, 1/m) is 1/m.
	if math.Abs(v4-0.25) > 0.02 {
		t.Fatalf("m=4 variance %g, want 0.25", v4)
	}
}

func TestNakagamiPanicsBelowHalf(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NakagamiGains{M: 0.4}.SampleGain(1, rng.New(1))
}

func nkMatrix(t testing.TB, seed uint64, n int) *network.Matrix {
	t.Helper()
	cfg := network.Figure1Config()
	cfg.N = n
	net, err := network.Random(cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return net.Gains()
}

func TestSampleSINRsWithNonFadingMatchesDeterministic(t *testing.T) {
	m := nkMatrix(t, 5, 15)
	src := rng.New(6)
	active := make([]bool, m.N)
	for i := range active {
		active[i] = i%2 == 0
	}
	got := SampleSINRsWith(m, active, NonFadingGains{}, src)
	want := sinr.Values(m, active)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12*(1+want[i]) {
			t.Fatalf("link %d: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestSampleSINRsWithRayleighMatchesNative(t *testing.T) {
	m := nkMatrix(t, 7, 10)
	active := make([]bool, m.N)
	for i := range active {
		active[i] = true
	}
	// Identical seeds must produce identical draws through both paths.
	a := SampleSINRs(m, active, rng.New(9))
	b := SampleSINRsWith(m, active, RayleighGains{}, rng.New(9))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("link %d: native %g, sampler %g", i, a[i], b[i])
		}
	}
}

// Nakagami interpolates between Rayleigh and non-fading: on a set that is
// feasible in the non-fading model, the success probability should rise
// with m toward 1.
func TestNakagamiInterpolatesTowardNonFading(t *testing.T) {
	// A solo link whose non-fading SINR is only 20% above the threshold:
	// S̄ = 1, ν = 1/3, β = 2.5 → γ_nf = 3 = 1.2β. The non-fading model
	// succeeds with certainty; Rayleigh succeeds with probability
	// exp(−βν/S̄) = exp(−5/6) ≈ 0.43; Nakagami-m must interpolate.
	m, err := network.NewMatrix([][]float64{{1}}, 1.0/3.0)
	if err != nil {
		t.Fatal(err)
	}
	active := []bool{true}
	src := rng.New(12)
	const samples = 40000
	probOf := func(sampler GainSampler) float64 {
		hits := 0
		for s := 0; s < samples; s++ {
			if SampleSINRsWith(m, active, sampler, src)[0] >= 2.5 {
				hits++
			}
		}
		return float64(hits) / samples
	}
	p1 := probOf(NakagamiGains{M: 1})
	p4 := probOf(NakagamiGains{M: 4})
	p16 := probOf(NakagamiGains{M: 16})
	p128 := probOf(NakagamiGains{M: 128})
	if want := math.Exp(-5.0 / 6.0); math.Abs(p1-want) > 0.01 {
		t.Fatalf("m=1 probability %g, want Rayleigh %g", p1, want)
	}
	if !(p1 < p4 && p4 < p16 && p16 < p128) {
		t.Fatalf("success probability not increasing in m: %g %g %g %g", p1, p4, p16, p128)
	}
	// Gaussian approximation: at m=128 the margin is ≈1.9σ, P ≈ 0.97.
	if p128 < 0.9 {
		t.Fatalf("m=128 success probability %g; should approach the non-fading certainty", p128)
	}
}

func TestSuccessProbabilityWithMCMatchesTheorem1ForRayleigh(t *testing.T) {
	m := nkMatrix(t, 13, 8)
	src := rng.New(14)
	q := UniformProbs(m.N, 0.7)
	exact := ExactSuccess(m, q, 2.5, 3)
	mc := SuccessProbabilityWithMC(m, q, 2.5, 3, RayleighGains{}, 100000, src)
	if math.Abs(mc.Mean-exact) > 4*mc.StdErr+1e-3 {
		t.Fatalf("MC %g ± %g vs exact %g", mc.Mean, mc.StdErr, exact)
	}
}

func TestExpectedSuccessesWithMC(t *testing.T) {
	m := nkMatrix(t, 15, 12)
	src := rng.New(16)
	active := make([]bool, m.N)
	for i := range active {
		active[i] = true
	}
	res := ExpectedSuccessesWithMC(m, active, 2.5, NakagamiGains{M: 2}, 2000, src)
	if res.Mean < 0 || res.Mean > float64(m.N) {
		t.Fatalf("mean %g out of range", res.Mean)
	}
	if res.N != 2000 {
		t.Fatalf("N = %d", res.N)
	}
}

func TestWithMCPanics(t *testing.T) {
	m := nkMatrix(t, 1, 4)
	for _, fn := range []func(){
		func() {
			SuccessProbabilityWithMC(m, UniformProbs(4, 0.5), 2.5, 0, RayleighGains{}, 0, rng.New(1))
		},
		func() {
			ExpectedSuccessesWithMC(m, make([]bool, 4), 2.5, RayleighGains{}, 0, rng.New(1))
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func BenchmarkSampleSINRsNakagami100(b *testing.B) {
	cfg := network.Figure1Config()
	net, err := network.Random(cfg, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	m := net.Gains()
	src := rng.New(2)
	active := make([]bool, m.N)
	for i := range active {
		active[i] = i%2 == 0
	}
	sampler := NakagamiGains{M: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SampleSINRsWith(m, active, sampler, src)
	}
}
