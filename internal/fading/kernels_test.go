package fading

import (
	"math"
	"testing"

	"rayfade/internal/network"
	"rayfade/internal/rng"
)

// referenceSampleSINRs is the pre-kernel implementation of SampleSINRs: a
// full O(n²) pass over the matrix, skipping inactive pairs, allocating its
// result. The kernels must reproduce its output draw-for-draw; keeping the
// old loop here pins that contract against an independent implementation.
func referenceSampleSINRs(m *network.Matrix, active []bool, src *rng.Source) []float64 {
	out := make([]float64, m.N)
	for i := 0; i < m.N; i++ {
		if !active[i] {
			continue
		}
		interf := m.Noise
		var own float64
		for j := 0; j < m.N; j++ {
			if !active[j] {
				continue
			}
			s := src.Exp(m.At(j, i))
			if j == i {
				own = s
			} else {
				interf += s
			}
		}
		if interf == 0 {
			if own > 0 {
				out[i] = math.Inf(1)
			}
			continue
		}
		out[i] = own / interf
	}
	return out
}

// randomActive draws an activity vector with density p.
func randomActive(src *rng.Source, n int, p float64) []bool {
	active := make([]bool, n)
	for i := range active {
		active[i] = src.Bernoulli(p)
	}
	return active
}

func TestSampleSINRsIntoMatchesReference(t *testing.T) {
	for _, n := range []int{1, 7, 40, 100} {
		m := randomMatrix(t, uint64(n), n)
		vals := make([]float64, n)
		idx := make([]int, 0, n)
		setup := rng.New(uint64(100 + n))
		for _, density := range []float64{0, 0.1, 0.5, 1} {
			active := randomActive(setup, n, density)
			src := rng.New(uint64(7 * n))
			want := referenceSampleSINRs(m, active, src.Clone())
			got := SampleSINRsInto(m, active, src.Clone(), vals, idx)
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("n=%d density=%.1f link %d: kernel %g, reference %g", n, density, i, got[i], want[i])
				}
			}
			// The two paths must also leave the stream at the same position.
			ref, ker := src.Clone(), src.Clone()
			referenceSampleSINRs(m, active, ref)
			SampleSINRsInto(m, active, ker, vals, idx)
			if ref.Uint64() != ker.Uint64() {
				t.Fatalf("n=%d density=%.1f: kernel consumed a different number of draws", n, density)
			}
		}
	}
}

func TestSampleSINRsWrapperMatchesKernel(t *testing.T) {
	m := randomMatrix(t, 3, 50)
	active := randomActive(rng.New(4), 50, 0.6)
	src := rng.New(5)
	a := SampleSINRs(m, active, src.Clone())
	b := SampleSINRsInto(m, active, src.Clone(), make([]float64, 50), make([]int, 0, 50))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("link %d: wrapper %g, kernel %g", i, a[i], b[i])
		}
	}
}

func TestCountSuccessesMatchesSampleSuccesses(t *testing.T) {
	m := randomMatrix(t, 6, 80)
	vals := make([]float64, 80)
	idx := make([]int, 0, 80)
	setup := rng.New(7)
	for trial := 0; trial < 20; trial++ {
		active := randomActive(setup, 80, setup.Float64())
		src := rng.New(uint64(1000 + trial))
		want := len(SampleSuccesses(m, active, 2.5, src.Clone()))
		got := CountSuccesses(m, active, 2.5, src.Clone(), vals, idx)
		if want != got {
			t.Fatalf("trial %d: CountSuccesses %d, SampleSuccesses %d", trial, got, want)
		}
	}
}

func TestSampleSINRsWithIntoMatchesAllocatingForm(t *testing.T) {
	m := randomMatrix(t, 8, 60)
	active := randomActive(rng.New(9), 60, 0.5)
	vals := make([]float64, 60)
	idx := make([]int, 0, 60)
	for _, sampler := range []GainSampler{RayleighGains{}, NakagamiGains{M: 2}, NonFadingGains{}} {
		src := rng.New(10)
		want := SampleSINRsWith(m, active, sampler, src.Clone())
		got := SampleSINRsWithInto(m, active, sampler, src.Clone(), vals, idx)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("%s link %d: kernel %g, allocating form %g", sampler.Name(), i, got[i], want[i])
			}
		}
	}
}

// TestRayleighKernelMatchesGenericKernel pins that the specialized Rayleigh
// kernel and the GainSampler-generic kernel consume the identical stream, so
// experiments may switch between them without breaking fixed-seed outputs.
func TestRayleighKernelMatchesGenericKernel(t *testing.T) {
	m := randomMatrix(t, 11, 60)
	active := randomActive(rng.New(12), 60, 0.7)
	src := rng.New(13)
	a := SampleSINRsInto(m, active, src.Clone(), make([]float64, 60), make([]int, 0, 60))
	b := SampleSINRsWithInto(m, active, RayleighGains{}, src.Clone(), make([]float64, 60), make([]int, 0, 60))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("link %d: rayleigh kernel %g, generic kernel %g", i, a[i], b[i])
		}
	}
}

func TestKernelsAllocationFree(t *testing.T) {
	m := randomMatrix(t, 14, 100)
	active := randomActive(rng.New(15), 100, 0.5)
	vals := make([]float64, 100)
	idx := make([]int, 0, 100)
	src := rng.New(16)
	if allocs := testing.AllocsPerRun(50, func() {
		SampleSINRsInto(m, active, src, vals, idx)
	}); allocs != 0 {
		t.Errorf("SampleSINRsInto allocates %.1f objects per run", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		CountSuccesses(m, active, 2.5, src, vals, idx)
	}); allocs != 0 {
		t.Errorf("CountSuccesses allocates %.1f objects per run", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		SampleSINRsWithInto(m, active, RayleighGains{}, src, vals, idx)
	}); allocs != 0 {
		t.Errorf("SampleSINRsWithInto allocates %.1f objects per run", allocs)
	}
	// The closed-form evaluator is part of the kernel layer's zero-alloc
	// contract too: the benchmark suite pins fading/expected-successes-100 at
	// exactly 0 allocs/op, so any stray allocation on this path is a bug.
	q := UniformProbs(100, 0.3)
	if allocs := testing.AllocsPerRun(50, func() {
		ExpectedSuccessesExact(m, q, 2.5)
	}); allocs != 0 {
		t.Errorf("ExpectedSuccessesExact allocates %.1f objects per run", allocs)
	}
}

func TestKernelScratchValidation(t *testing.T) {
	m := randomMatrix(t, 17, 10)
	active := make([]bool, 10)
	src := rng.New(18)
	for name, fn := range map[string]func(){
		"short out": func() { SampleSINRsInto(m, active, src, make([]float64, 9), make([]int, 0, 10)) },
		"short idx": func() { SampleSINRsInto(m, active, src, make([]float64, 10), make([]int, 0, 9)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
