package fading

import (
	"errors"
	"math"
	"testing"

	"rayfade/internal/network"
	"rayfade/internal/rng"
	"rayfade/internal/utility"
)

func TestOutageCurveMonotone(t *testing.T) {
	m := randomMatrix(t, 71, 15)
	q := UniformProbs(m.N, 0.6)
	betas := []float64{0.1, 0.5, 1, 2.5, 5, 10, 50}
	curve := OutageCurve(m, q, 3, betas)
	for k := 1; k < len(curve); k++ {
		if curve[k] > curve[k-1]+1e-15 {
			t.Fatalf("outage curve not non-increasing: %v", curve)
		}
	}
	if curve[0] > q[3] {
		t.Fatalf("curve head %g exceeds transmit probability %g", curve[0], q[3])
	}
}

// Solo link with noise: γ is exponential with mean μ = S̄/ν, and the known
// closed form is E[log(1+γ)] = e^{1/μ}·E₁(1/μ). At μ = 1 that is
// 0.596347362323194; the transmit probability scales it linearly.
func TestExpectedShannonExactSoloClosedForm(t *testing.T) {
	m := mat(t, [][]float64{{2}}, 2) // μ = 1
	got, err := ExpectedShannonExact(m, []float64{1}, 0, 1e-11)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.596347362323194
	if math.Abs(got-want) > 1e-7 {
		t.Fatalf("solo rate %.10f, want %.10f", got, want)
	}
	half, err := ExpectedShannonExact(m, []float64{0.5}, 0, 1e-11)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(half-want/2) > 1e-7 {
		t.Fatalf("q=0.5 rate %.10f, want %.10f", half, want/2)
	}
}

func TestExpectedShannonExactMatchesMC(t *testing.T) {
	m := randomMatrix(t, 73, 10)
	src := rng.New(74)
	q := UniformProbs(m.N, 0.5)
	exact, err := TotalShannonExact(m, q, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	mc := ExpectedUtilityMC(m, q, utility.Uniform(utility.Shannon{}), 60000, src)
	if math.Abs(mc.Mean-exact) > 5*mc.StdErr+0.02*exact {
		t.Fatalf("MC %g ± %g vs exact %g", mc.Mean, mc.StdErr, exact)
	}
}

func TestExpectedShannonExactZeroCases(t *testing.T) {
	m := mat(t, [][]float64{{1, 0}, {0, 1}}, 0.5)
	v, err := ExpectedShannonExact(m, []float64{0, 1}, 0, 0)
	if err != nil || v != 0 {
		t.Fatalf("silent link rate %g, %v", v, err)
	}
	zeroGain := mat(t, [][]float64{{0, 0}, {0, 1}}, 0.5)
	v, err = ExpectedShannonExact(zeroGain, []float64{1, 1}, 0, 0)
	if err != nil || v != 0 {
		t.Fatalf("zero-gain rate %g, %v", v, err)
	}
}

func TestExpectedShannonExactInfiniteAtZeroNoise(t *testing.T) {
	// ν = 0 and q < 1 interferers: positive silence probability ⇒ ∞.
	m := mat(t, [][]float64{{1, 0.5}, {0.5, 1}}, 0)
	v, err := ExpectedShannonExact(m, []float64{1, 0.5}, 0, 0)
	if !errors.Is(err, ErrInfiniteRate) || !math.IsInf(v, 1) {
		t.Fatalf("expected infinite rate, got %g, %v", v, err)
	}
	// But with the interferer always on (q = 1), the SINR is a.s. finite
	// and so is the rate.
	v, err = ExpectedShannonExact(m, []float64{1, 1}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(v, 1) || v <= 0 {
		t.Fatalf("always-on interferer rate %g", v)
	}
	if _, err := TotalShannonExact(m, []float64{1, 0.5}, 0); !errors.Is(err, ErrInfiniteRate) {
		t.Fatal("total did not propagate divergence")
	}
}

// The exact rate decreases when an interferer's transmission probability
// rises — the rate counterpart of the Q_i monotonicity.
func TestExpectedShannonExactMonotoneInInterference(t *testing.T) {
	m := randomMatrix(t, 75, 8)
	q := UniformProbs(m.N, 0.3)
	base, err := ExpectedShannonExact(m, q, 2, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	q2 := append([]float64(nil), q...)
	for j := range q2 {
		if j != 2 {
			q2[j] = 0.9
		}
	}
	loud, err := ExpectedShannonExact(m, q2, 2, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if loud >= base {
		t.Fatalf("rate rose with interference: %g → %g", base, loud)
	}
}

func BenchmarkExpectedShannonExact20(b *testing.B) {
	cfg := network.Figure1Config()
	cfg.N = 20
	net, err := network.Random(cfg, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	m := net.Gains()
	q := UniformProbs(m.N, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExpectedShannonExact(m, q, i%m.N, 1e-8); err != nil {
			b.Fatal(err)
		}
	}
}
