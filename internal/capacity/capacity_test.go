package capacity

import (
	"math"
	"testing"
	"testing/quick"

	"rayfade/internal/geom"
	"rayfade/internal/network"
	"rayfade/internal/rng"
	"rayfade/internal/sinr"
	"rayfade/internal/utility"
)

func fig1Net(t testing.TB, seed uint64, n int) *network.Network {
	t.Helper()
	cfg := network.Figure1Config()
	cfg.N = n
	net, err := network.Random(cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestGreedyUniformFeasible(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		net := fig1Net(t, seed, 100)
		set := GreedyUniform(net, 2.5)
		if len(set) == 0 {
			t.Fatalf("seed %d: empty greedy set", seed)
		}
		if !sinr.Feasible(net.Gains(), set, 2.5) {
			t.Fatalf("seed %d: greedy set infeasible", seed)
		}
	}
}

func TestGreedyUniformNontrivialSize(t *testing.T) {
	// On the Figure-1 workload the greedy should select a sizable fraction
	// of the 100 links (the paper's optimum averages ≈ 49.75).
	var total int
	const trials = 10
	for seed := uint64(0); seed < trials; seed++ {
		net := fig1Net(t, seed+100, 100)
		total += len(GreedyUniform(net, 2.5))
	}
	avg := float64(total) / trials
	if avg < 20 {
		t.Fatalf("average greedy set size %.1f is implausibly small", avg)
	}
	if avg > 75 {
		t.Fatalf("average greedy set size %.1f is implausibly large", avg)
	}
}

func TestGreedyAffectanceRespectsTau(t *testing.T) {
	net := fig1Net(t, 7, 60)
	m := net.Gains()
	order := LengthOrder(net)
	for _, tau := range []float64{0.25, 0.5, 1.0} {
		set := GreedyAffectance(m, 2.5, tau, order)
		for _, i := range set {
			sum := 0.0
			for _, j := range set {
				if j != i {
					sum += sinr.AffectanceUncapped(m, 2.5, j, i)
				}
			}
			if sum > tau+1e-9 {
				t.Fatalf("τ=%g: link %d carries affectance %g", tau, i, sum)
			}
		}
	}
}

func TestGreedyAffectanceTauMonotone(t *testing.T) {
	// A larger affectance budget can only (weakly) grow the accepted count
	// on average; check a strong version: τ=1 accepts at least as many as
	// τ=0.25 on every tested instance. (Not a theorem in general, but holds
	// robustly on this workload and guards against inverted comparisons.)
	for seed := uint64(0); seed < 10; seed++ {
		net := fig1Net(t, seed+50, 80)
		m := net.Gains()
		order := LengthOrder(net)
		small := len(GreedyAffectance(m, 2.5, 0.25, order))
		large := len(GreedyAffectance(m, 2.5, 1.0, order))
		if large < small {
			t.Fatalf("seed %d: τ=1 selected %d < τ=0.25's %d", seed, large, small)
		}
	}
}

func TestGreedyAffectanceSkipsNoiseDominated(t *testing.T) {
	// A network whose links cannot reach β even alone must yield an empty set.
	net := fig1Net(t, 9, 20)
	net.Noise = 1e9
	set := GreedyUniform(net, 2.5)
	if len(set) != 0 {
		t.Fatalf("noise-dominated network produced set %v", set)
	}
}

func TestGreedyAffectancePanics(t *testing.T) {
	net := fig1Net(t, 1, 5)
	m := net.Gains()
	for _, fn := range []func(){
		func() { GreedyAffectance(m, 2.5, 0, []int{0}) },
		func() { GreedyAffectance(m, 2.5, 1.5, []int{0}) },
		func() { GreedyAffectance(m, 0, 0.5, []int{0}) },
		func() { GreedyAffectance(m, 2.5, 0.5, []int{7}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestLengthOrder(t *testing.T) {
	net := fig1Net(t, 11, 30)
	order := LengthOrder(net)
	lengths := net.Lengths()
	seen := make([]bool, len(order))
	for k := 1; k < len(order); k++ {
		if lengths[order[k]] < lengths[order[k-1]] {
			t.Fatal("LengthOrder not sorted")
		}
	}
	for _, i := range order {
		if seen[i] {
			t.Fatal("LengthOrder repeats an index")
		}
		seen[i] = true
	}
}

func TestGreedyMonotoneWithSquareRootPowers(t *testing.T) {
	cfg := network.Figure1Config()
	cfg.Power = network.SquareRootPower{Scale: 2, Alpha: cfg.Alpha}
	net, err := network.Random(cfg, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	set := GreedyMonotone(net, 2.5)
	if len(set) == 0 {
		t.Fatal("empty set under square-root powers")
	}
	if !sinr.Feasible(net.Gains(), set, 2.5) {
		t.Fatal("monotone greedy set infeasible")
	}
}

func TestFeasiblePowersSingleLink(t *testing.T) {
	net := fig1Net(t, 15, 10)
	p, ok := FeasiblePowers(net, []int{3}, 2.5, 0, 0)
	if !ok || len(p) != 1 || p[0] <= 0 {
		t.Fatalf("single link: p=%v ok=%v", p, ok)
	}
	// With noise, the returned power gives SINR exactly β.
	i := 3
	d := net.Links[i].Length(net.Metric)
	gain := math.Pow(d, -net.Alpha)
	sinrVal := p[0] * gain / net.Noise
	if math.Abs(sinrVal-2.5) > 1e-6 {
		t.Fatalf("single-link SINR = %g, want 2.5", sinrVal)
	}
}

func TestFeasiblePowersEmptySet(t *testing.T) {
	net := fig1Net(t, 15, 5)
	if _, ok := FeasiblePowers(net, nil, 2.5, 0, 0); !ok {
		t.Fatal("empty set must be feasible")
	}
}

// Two far-apart links are jointly feasible; two co-located ones are not
// (at β ≥ 1 mutual interference cannot be beaten by any power choice).
func TestFeasiblePowersGeometry(t *testing.T) {
	far := &network.Network{
		Links: []network.Link{
			{Sender: geom.Point{X: 0, Y: 0}, Receiver: geom.Point{X: 1, Y: 0}, Power: 1, Weight: 1},
			{Sender: geom.Point{X: 1000, Y: 0}, Receiver: geom.Point{X: 1001, Y: 0}, Power: 1, Weight: 1},
		},
		Metric: geom.Euclidean{}, Alpha: 3, Noise: 1e-9,
	}
	if _, ok := FeasiblePowers(far, []int{0, 1}, 2.5, 0, 0); !ok {
		t.Fatal("far-apart pair should be power-control feasible")
	}
	near := &network.Network{
		Links: []network.Link{
			{Sender: geom.Point{X: 0, Y: 0}, Receiver: geom.Point{X: 10, Y: 0}, Power: 1, Weight: 1},
			{Sender: geom.Point{X: 0.1, Y: 0.1}, Receiver: geom.Point{X: 10, Y: 0.2}, Power: 1, Weight: 1},
		},
		Metric: geom.Euclidean{}, Alpha: 3, Noise: 1e-9,
	}
	if _, ok := FeasiblePowers(near, []int{0, 1}, 2.5, 0, 0); ok {
		t.Fatal("co-located pair should be power-control infeasible at β=2.5")
	}
}

// The powers returned by FeasiblePowers must actually certify feasibility:
// plug them into the network and check SINRs directly.
func TestFeasiblePowersCertify(t *testing.T) {
	f := func(seed uint64) bool {
		net := fig1Net(t, seed, 12)
		set := GreedyUniform(net, 2.5) // some feasible starting set
		p, ok := FeasiblePowers(net, set, 2.5, 0, 0)
		if !ok {
			// Uniform-power feasible implies power-control feasible.
			return false
		}
		mod := net.Clone()
		for k, i := range set {
			mod.Links[i].Power = p[k]
		}
		return sinr.Feasible(mod.Gains(), set, 2.5*(1-1e-6))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFeasiblePowersZeroNoise(t *testing.T) {
	net := fig1Net(t, 17, 10)
	net.Noise = 0
	set := GreedyUniform(net, 2.5)
	if len(set) < 2 {
		t.Skip("need at least two links for a meaningful zero-noise test")
	}
	p, ok := FeasiblePowers(net, set, 2.5, 0, 0)
	if !ok {
		t.Fatal("zero-noise: uniform-feasible set rejected")
	}
	mod := net.Clone()
	for k, i := range set {
		mod.Links[i].Power = p[k]
	}
	if !sinr.Feasible(mod.Gains(), set, 2.5*(1-1e-6)) {
		t.Fatal("zero-noise powers do not certify feasibility")
	}
}

func TestPowerControlGreedy(t *testing.T) {
	net := fig1Net(t, 19, 50)
	res := PowerControlGreedy(net, 2.5)
	if len(res.Set) == 0 {
		t.Fatal("power-control greedy selected nothing")
	}
	if len(res.Powers) != len(res.Set) {
		t.Fatalf("%d powers for %d links", len(res.Powers), len(res.Set))
	}
	mod := res.ApplyPowers(net)
	if !sinr.Feasible(mod.Gains(), res.Set, 2.5*(1-1e-6)) {
		t.Fatal("power-control solution infeasible under its own powers")
	}
	// Power control dominates uniform power: it can only select more links
	// than a fixed assignment's greedy (both scan in the same order and the
	// feasibility test is strictly more permissive).
	uniform := GreedyUniform(net, 2.5)
	if len(res.Set) < len(uniform) {
		t.Fatalf("power control found %d < uniform greedy %d", len(res.Set), len(uniform))
	}
}

func TestFlexibleRates(t *testing.T) {
	net := fig1Net(t, 21, 60)
	us := utility.Uniform(utility.Shannon{})
	best, classes := FlexibleRates(net, us, 0.25, 16)
	if len(classes) != 7 { // 0.25,0.5,1,2,4,8,16
		t.Fatalf("%d classes", len(classes))
	}
	for _, c := range classes {
		if !sinr.Feasible(net.Gains(), c.Set, c.Beta) {
			t.Fatalf("class β=%g set infeasible", c.Beta)
		}
		if c.Value > best.Value {
			t.Fatalf("best misses class β=%g with value %g > %g", c.Beta, c.Value, best.Value)
		}
	}
	if best.Value <= 0 {
		t.Fatal("best class has zero value")
	}
	// The value accounting matches: |set|·u(β) for uniform Shannon.
	for _, c := range classes {
		want := float64(len(c.Set)) * math.Log1p(c.Beta)
		if math.Abs(c.Value-want) > 1e-9 {
			t.Fatalf("class β=%g value %g, want %g", c.Beta, c.Value, want)
		}
	}
}

func TestFlexibleRatesTradeoff(t *testing.T) {
	// Higher thresholds admit fewer links in the large. Greedy order
	// effects make strict per-step monotonicity false (rejecting one early
	// link can admit several later ones), so compare the extremes, where
	// the β ratio is 64 and the effect dominates.
	net := fig1Net(t, 23, 80)
	_, classes := FlexibleRates(net, utility.Uniform(utility.Shannon{}), 0.5, 32)
	first, last := classes[0], classes[len(classes)-1]
	if len(last.Set) >= len(first.Set) {
		t.Fatalf("set size did not shrink from β=%g (%d links) to β=%g (%d links)",
			first.Beta, len(first.Set), last.Beta, len(last.Set))
	}
}

func TestFlexibleRatesPanics(t *testing.T) {
	net := fig1Net(t, 1, 5)
	us := utility.Uniform(utility.Shannon{})
	for _, fn := range []func(){
		func() { FlexibleRates(net, us, 0, 4) },
		func() { FlexibleRates(net, us, 4, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestLengthClassesPartition(t *testing.T) {
	net := fig1Net(t, 41, 50) // lengths in [20,40]: at most 2 classes
	classes := LengthClasses(net)
	if len(classes) == 0 || len(classes) > 2 {
		t.Fatalf("Figure-1 lengths should give 1–2 classes, got %d", len(classes))
	}
	seen := map[int]bool{}
	for _, c := range classes {
		for _, i := range c {
			if seen[i] {
				t.Fatalf("link %d in two classes", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != net.N() {
		t.Fatalf("classes cover %d of %d", len(seen), net.N())
	}
	// Every class spans less than a factor 2 in length.
	lengths := net.Lengths()
	for k, c := range classes {
		lo, hi := math.Inf(1), 0.0
		for _, i := range c {
			lo = math.Min(lo, lengths[i])
			hi = math.Max(hi, lengths[i])
		}
		if hi/lo >= 2.0000001 {
			t.Fatalf("class %d spans factor %g", k, hi/lo)
		}
	}
}

func TestLengthClassesWideRange(t *testing.T) {
	cfg := network.Figure2Config() // lengths (0,100]: many classes
	cfg.N = 150
	net, err := network.Random(cfg, rng.New(43))
	if err != nil {
		t.Fatal(err)
	}
	classes := LengthClasses(net)
	if len(classes) < 4 {
		t.Fatalf("wide length range produced only %d classes", len(classes))
	}
}

func TestGreedyByClasses(t *testing.T) {
	net := fig1Net(t, 45, 80)
	best, classes := GreedyByClasses(net, 2.5)
	if len(best) == 0 || len(classes) == 0 {
		t.Fatal("degenerate class greedy")
	}
	if !sinr.Feasible(net.Gains(), best, 2.5) {
		t.Fatal("class greedy infeasible")
	}
	// Links of the winning selection all come from one class.
	inClass := func(c []int) map[int]bool {
		m := map[int]bool{}
		for _, i := range c {
			m[i] = true
		}
		return m
	}
	found := false
	for _, c := range classes {
		cm := inClass(c)
		all := true
		for _, i := range best {
			if !cm[i] {
				all = false
				break
			}
		}
		if all {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("winning selection spans multiple classes")
	}
}

func TestWeightOrder(t *testing.T) {
	net := fig1Net(t, 31, 10)
	m := net.Gains()
	m.Weights = []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3}
	order := WeightOrder(m)
	for k := 1; k < len(order); k++ {
		if m.Weights[order[k]] > m.Weights[order[k-1]] {
			t.Fatalf("WeightOrder not sorted: %v", order)
		}
	}
	if order[0] != 5 {
		t.Fatalf("heaviest link should lead: %v", order)
	}
}

func TestGreedyWeightedFeasibleAndValued(t *testing.T) {
	net := fig1Net(t, 33, 60)
	m := net.Gains()
	src := rng.New(77)
	for i := range m.Weights {
		m.Weights[i] = 1 + 9*src.Float64()
	}
	set, value := GreedyWeighted(m, 2.5)
	if len(set) == 0 {
		t.Fatal("empty weighted set")
	}
	if !sinr.Feasible(m, set, 2.5) {
		t.Fatal("weighted greedy infeasible")
	}
	var want float64
	for _, i := range set {
		want += m.Weights[i]
	}
	if math.Abs(value-want) > 1e-12 {
		t.Fatalf("value %g, want %g", value, want)
	}
	// The heaviest viable link is scanned first, so the value is at least
	// the maximum weight.
	maxW := 0.0
	for _, w := range m.Weights {
		maxW = math.Max(maxW, w)
	}
	if value < maxW {
		t.Fatalf("weighted value %g below max weight %g", value, maxW)
	}
}

// A single heavy link must beat many light ones when they conflict: make
// link 0 enormously heavy and verify it is selected.
func TestGreedyWeightedPrefersHeavy(t *testing.T) {
	net := fig1Net(t, 35, 30)
	m := net.Gains()
	for i := range m.Weights {
		m.Weights[i] = 1
	}
	m.Weights[7] = 1000
	set, _ := GreedyWeighted(m, 2.5)
	found := false
	for _, i := range set {
		if i == 7 {
			found = true
		}
	}
	if !found {
		t.Fatal("heaviest link not selected")
	}
}

// Property: the greedy set is always feasible, across seeds, sizes, and
// thresholds.
func TestQuickGreedyAlwaysFeasible(t *testing.T) {
	f := func(seed uint64, nRaw, betaRaw uint8) bool {
		n := int(nRaw%60) + 2
		beta := 0.5 + float64(betaRaw%8)
		net := fig1Net(t, seed, n)
		set := GreedyUniform(net, beta)
		return sinr.Feasible(net.Gains(), set, beta)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGreedyUniform100(b *testing.B) {
	net := fig1Net(b, 1, 100)
	m := net.Gains()
	order := LengthOrder(net)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GreedyAffectance(m, 2.5, DefaultTau, order)
	}
}

func BenchmarkPowerControlGreedy50(b *testing.B) {
	net := fig1Net(b, 1, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PowerControlGreedy(net, 2.5)
	}
}
