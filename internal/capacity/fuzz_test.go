package capacity

import (
	"math"
	"testing"

	"rayfade/internal/network"
	"rayfade/internal/rng"
	"rayfade/internal/sinr"
)

// FuzzGreedyFeasibility: whatever the topology, threshold, noise, and
// budget, the greedy's output must be feasible and duplicate-free.
func FuzzGreedyFeasibility(f *testing.F) {
	f.Add(uint64(1), uint8(40), 2.5, 0.5)
	f.Add(uint64(9), uint8(3), 0.2, 1.0)
	f.Add(uint64(77), uint8(100), 10.0, 0.25)
	f.Fuzz(func(t *testing.T, seed uint64, nRaw uint8, beta, tau float64) {
		if math.IsNaN(beta) || beta <= 0 || beta > 1e4 {
			t.Skip()
		}
		if math.IsNaN(tau) || tau <= 0 || tau > 1 {
			t.Skip()
		}
		cfg := network.Figure1Config()
		cfg.N = int(nRaw%100) + 1
		net, err := network.Random(cfg, rng.New(seed))
		if err != nil {
			t.Skip()
		}
		m := net.Gains()
		set := GreedyAffectance(m, beta, tau, LengthOrder(net))
		seen := map[int]bool{}
		for _, i := range set {
			if i < 0 || i >= m.N || seen[i] {
				t.Fatalf("malformed set %v", set)
			}
			seen[i] = true
		}
		if !sinr.Feasible(m, set, beta) {
			t.Fatalf("infeasible greedy set (n=%d β=%g τ=%g)", cfg.N, beta, tau)
		}
	})
}
