// Package capacity implements single-slot capacity maximization in the
// non-fading SINR model: selecting a feasible set of links that maximizes
// the number (or weight, or utility) of simultaneous successes.
//
// These algorithms are the substrate the paper's reduction transfers: an
// approximation algorithm here becomes, unchanged, an O(log* n)-factor-worse
// approximation under Rayleigh fading (Lemma 2 + Theorem 2). The package
// provides faithful variants of the cited algorithm families:
//
//   - GreedyUniform — length-ordered affectance greedy for uniform powers,
//     in the style of Goussevskaia–Wattenhofer–Halldórsson–Welzl [8] and
//     Halldórsson–Wattenhofer [25];
//   - GreedyMonotone — the same scan for monotone (e.g. square-root) power
//     assignments, in the style of Halldórsson–Mitra [7];
//   - PowerControlGreedy — greedy selection with exact power-control
//     feasibility via the Foschini–Miljanic fixed point, the natural
//     executable counterpart of Kesselheim's power-control algorithm [6]
//     (see DESIGN.md for the substitution note);
//   - FlexibleRates — the rate-class decomposition of Kesselheim [22] for
//     non-binary (flexible data rate) utilities.
//
// All selection routines return sets that are certified feasible in the
// non-fading model before they are handed to the fading transfer.
package capacity

import (
	"context"
	"fmt"
	"math"
	"sort"

	"rayfade/internal/network"
	"rayfade/internal/obs"
	"rayfade/internal/sinr"
	"rayfade/internal/utility"
)

// ctxCheckStride is how many scan iterations the Ctx variants run between
// context polls: frequent enough that cancellation lands within microseconds
// on realistic instances, rare enough that the atomic load in ctx.Err never
// shows up in profiles.
const ctxCheckStride = 64

// DefaultTau is the affectance budget the greedy algorithms allocate per
// link. The SINR constraint itself allows total (uncapped) affectance 1;
// scanning with a budget of 1/2 in length order is what yields the
// constant-factor guarantees in the cited literature, because it leaves
// room for the accepted links' mutual interference. DESIGN.md calls this
// constant out for ablation (BenchmarkAblationGreedyTau).
const DefaultTau = 0.5

// GreedyAffectance scans links in the given order and accepts a link when,
// after acceptance, (a) the candidate's total uncapped affectance from the
// accepted set stays within tau, and (b) no previously accepted link's
// total affectance (including the candidate's contribution) exceeds tau.
// For tau ≤ 1 the returned set is feasible at threshold beta by the exact
// affectance characterization of the SINR constraint.
//
// Links whose own signal cannot reach β even alone (noise-dominated) are
// never accepted.
func GreedyAffectance(m *network.Matrix, beta, tau float64, order []int) []int {
	set, _ := GreedyAffectanceCtx(context.Background(), m, beta, tau, order)
	return set
}

// GreedyAffectanceCtx is GreedyAffectance with cooperative cancellation: the
// scan polls ctx every ctxCheckStride candidates and returns the selection
// so far together with ctx.Err() when cancelled. A nil error means the scan
// ran to completion.
func GreedyAffectanceCtx(ctx context.Context, m *network.Matrix, beta, tau float64, order []int) ([]int, error) {
	if tau <= 0 || tau > 1 {
		panic(fmt.Sprintf("capacity: affectance budget τ = %g outside (0,1]", tau))
	}
	if beta <= 0 {
		panic(fmt.Sprintf("capacity: threshold β = %g must be positive", beta))
	}
	// Detached: greedy scans run concurrently under experiment fan-outs and
	// per-request in the daemon, so each gets its own trace track.
	ctx, sp := obs.StartDetached(ctx, "capacity.greedy_affectance")
	sp.SetAttr("candidates", len(order))
	var selected []int
	defer func() {
		sp.SetAttr("selected", len(selected))
		sp.End()
	}()
	// load[i] = total uncapped affectance currently imposed on accepted
	// link i by the other accepted links.
	load := make(map[int]float64, len(order))
	for scanned, cand := range order {
		if scanned%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return selected, err
			}
		}
		if cand < 0 || cand >= m.N {
			panic(fmt.Sprintf("capacity: link index %d out of range", cand))
		}
		if m.Own(cand) <= beta*m.Noise {
			continue // can never reach β, even alone
		}
		inbound := 0.0
		ok := true
		for _, s := range selected {
			inbound += sinr.AffectanceUncapped(m, beta, s, cand)
			if inbound > tau {
				ok = false
				break
			}
			if load[s]+sinr.AffectanceUncapped(m, beta, cand, s) > tau {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, s := range selected {
			load[s] += sinr.AffectanceUncapped(m, beta, cand, s)
		}
		load[cand] = inbound
		selected = append(selected, cand)
	}
	return selected, nil
}

// LengthOrder returns link indices sorted by non-decreasing link length,
// the scan order of the length-greedy algorithms. Ties break by index for
// determinism.
func LengthOrder(net *network.Network) []int {
	lengths := net.Lengths()
	order := make([]int, len(lengths))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return lengths[order[a]] < lengths[order[b]] })
	return order
}

// GreedyUniform runs the length-ordered affectance greedy with the default
// budget on a network, assuming its links carry a uniform power assignment
// (the algorithm itself never changes powers). This is the executable form
// of the constant-factor uniform-power capacity algorithms [8], [25].
func GreedyUniform(net *network.Network, beta float64) []int {
	return GreedyAffectance(net.Gains(), beta, DefaultTau, LengthOrder(net))
}

// GreedyMonotone runs the same length-ordered scan for networks whose power
// assignment is monotone in link length (square-root powers in the paper's
// Figure 1), the regime of Halldórsson–Mitra [7]. Operationally it is the
// same certified-feasible greedy; the distinction matters for the
// approximation guarantee, not the code path.
func GreedyMonotone(net *network.Network, beta float64) []int {
	return GreedyUniform(net, beta)
}

// FeasiblePowers decides power-control feasibility of a link set and, when
// feasible, returns positive powers under which every link of the set
// reaches SINR at least beta.
//
// For path-loss-only gains L(j,i) (unit transmit power), the SINR
// constraints with powers p read p ≥ C·p + b, where
// C[b][a] = β·L(a,b)/L(b,b) (zero diagonal) and b_i = β·ν/L(i,i). By the
// classical power-control theory (Zander; Foschini–Miljanic), a positive
// solution exists iff the Perron spectral radius ρ(C) is below 1 (at most 1
// when ν = 0). The function estimates ρ(C) by power iteration and then
// either returns the Perron direction (ν = 0, every link gets SINR β/ρ ≥ β)
// or iterates the affine fixed point to the exact-SINR-β power vector
// (ν > 0).
//
// maxIter ≤ 0 and tol ≤ 0 select defaults (500 iterations, 1e-10).
func FeasiblePowers(net *network.Network, set []int, beta float64, maxIter int, tol float64) ([]float64, bool) {
	if len(set) == 0 {
		return nil, true
	}
	if maxIter <= 0 {
		maxIter = 500
	}
	if tol <= 0 {
		tol = 1e-10
	}
	k := len(set)
	// Normalized interference matrix C and noise offset b.
	C := make([][]float64, k)
	offset := make([]float64, k)
	for b, i := range set {
		C[b] = make([]float64, k)
		dii := net.Metric.Dist(net.Links[i].Sender, net.Links[i].Receiver)
		lii := math.Pow(dii, -net.Alpha)
		for a, j := range set {
			if a == b {
				continue
			}
			d := net.Metric.Dist(net.Links[j].Sender, net.Links[i].Receiver)
			C[b][a] = beta * math.Pow(d, -net.Alpha) / lii
		}
		offset[b] = beta * net.Noise / lii
	}
	if k == 1 {
		if net.Noise == 0 {
			return []float64{1}, true
		}
		return []float64{offset[0]}, true
	}
	// Power iteration for the Perron radius and direction.
	v := make([]float64, k)
	next := make([]float64, k)
	for a := range v {
		v[a] = 1
	}
	rho := 0.0
	for iter := 0; iter < maxIter; iter++ {
		norm := 0.0
		for b := range next {
			s := 0.0
			for a := range v {
				s += C[b][a] * v[a]
			}
			next[b] = s
			if s > norm {
				norm = s
			}
		}
		if norm == 0 { // no interference at all
			rho = 0
			break
		}
		diff := 0.0
		for b := range next {
			next[b] /= norm
			diff += math.Abs(next[b] - v[b])
		}
		copy(v, next)
		rho = norm
		if diff < tol {
			break
		}
	}
	if net.Noise == 0 {
		if rho > 1+1e-9 {
			return nil, false
		}
		// Perron direction: every link gets SINR β/ρ ≥ β (ρ ≤ 1).
		return append([]float64(nil), v...), true
	}
	if rho >= 1-1e-12 {
		return nil, false
	}
	// Affine fixed point p = C·p + offset, contraction since ρ(C) < 1.
	p := append([]float64(nil), offset...)
	for iter := 0; iter < maxIter; iter++ {
		diff := 0.0
		for b := range next {
			s := offset[b]
			for a := range p {
				s += C[b][a] * p[a]
			}
			next[b] = s
			diff += math.Abs(s - p[b])
		}
		copy(p, next)
		if diff < tol*(1+vecMax(p)) {
			return append([]float64(nil), p...), true
		}
	}
	return nil, false
}

func vecMax(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

// PowerControlResult is a power-control capacity solution: the selected set
// and the powers certifying its feasibility (aligned with Set).
type PowerControlResult struct {
	Set    []int
	Powers []float64
}

// PowerControlGreedy selects links in non-decreasing length order, keeping a
// link whenever the grown set remains power-control feasible at threshold
// beta (exact Foschini–Miljanic check). It is the executable counterpart of
// the constant-factor power-control algorithm of Kesselheim [6]: the same
// increasing-length scan, with the analytic acceptance rule replaced by the
// exact feasibility oracle (a strictly more permissive test, so the output
// is never smaller on instances where the rule would fire). The returned
// powers give every selected link SINR exactly beta.
func PowerControlGreedy(net *network.Network, beta float64) PowerControlResult {
	res, _ := PowerControlGreedyCtx(context.Background(), net, beta)
	return res
}

// PowerControlGreedyCtx is PowerControlGreedy with cooperative cancellation:
// the scan polls ctx before every feasibility check (each check is a full
// power-iteration fixed point, the expensive unit of work here) and returns
// the solution so far together with ctx.Err() when cancelled.
func PowerControlGreedyCtx(ctx context.Context, net *network.Network, beta float64) (PowerControlResult, error) {
	order := LengthOrder(net)
	ctx, sp := obs.StartDetached(ctx, "capacity.power_control_greedy")
	sp.SetAttr("candidates", len(order))
	var set []int
	var powers []float64
	defer func() {
		sp.SetAttr("selected", len(set))
		sp.End()
	}()
	for _, cand := range order {
		if err := ctx.Err(); err != nil {
			return PowerControlResult{Set: set, Powers: powers}, err
		}
		trial := append(append([]int(nil), set...), cand)
		if p, ok := FeasiblePowers(net, trial, beta, 0, 0); ok {
			set = trial
			powers = p
		}
	}
	return PowerControlResult{Set: set, Powers: powers}, nil
}

// ApplyPowers writes a power-control solution's powers back onto a copy of
// the network, so the solution can be evaluated (or transferred to the
// Rayleigh model) like any fixed-power solution. Unselected links keep
// their original powers but are not part of the solution set.
func (r PowerControlResult) ApplyPowers(net *network.Network) *network.Network {
	out := net.Clone()
	for k, i := range r.Set {
		out.Links[i].Power = r.Powers[k]
	}
	return out
}

// WeightOrder returns link indices sorted by non-increasing weight (from
// the matrix's Weights vector), ties broken by index — the scan order for
// link-weighted capacity maximization.
func WeightOrder(m *network.Matrix) []int {
	order := make([]int, m.N)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return m.Weights[order[a]] > m.Weights[order[b]] })
	return order
}

// GreedyWeighted runs the affectance greedy in non-increasing weight order:
// the executable form of link-weighted capacity maximization (the paper's
// second valid-utility example, u_i(x) = w_i for x ≥ β). The returned set
// is feasibility-certified; its value is the sum of the selected weights.
func GreedyWeighted(m *network.Matrix, beta float64) (set []int, value float64) {
	set = GreedyAffectance(m, beta, DefaultTau, WeightOrder(m))
	for _, i := range set {
		value += m.Weights[i]
	}
	return set, value
}

// LengthClasses buckets links into nearly-equal-length classes: class k
// holds the links whose length lies in [d_min·2^k, d_min·2^(k+1)). Many of
// the transferred algorithms' analyses (and the O(log Δ) bounds the paper
// cites for uniform powers) proceed class by class, because links of
// similar length interact through distance alone. Empty classes are
// omitted; classes are ordered by increasing length.
func LengthClasses(net *network.Network) [][]int {
	lengths := net.Lengths()
	if len(lengths) == 0 {
		return nil
	}
	dmin := math.Inf(1)
	for _, d := range lengths {
		if d < dmin {
			dmin = d
		}
	}
	classes := map[int][]int{}
	maxK := 0
	for i, d := range lengths {
		k := int(math.Floor(math.Log2(d / dmin)))
		if k < 0 { // float round-off at d == dmin
			k = 0
		}
		classes[k] = append(classes[k], i)
		if k > maxK {
			maxK = k
		}
	}
	var out [][]int
	for k := 0; k <= maxK; k++ {
		if c := classes[k]; len(c) > 0 {
			out = append(out, c)
		}
	}
	return out
}

// GreedyByClasses runs the affectance greedy separately inside every
// length class and returns the best single class's selection — the
// class-decomposition form of the uniform-power algorithms, whose
// approximation factor is the number of classes (O(log Δ)).
func GreedyByClasses(net *network.Network, beta float64) (best []int, classes [][]int) {
	m := net.Gains()
	order := LengthOrder(net)
	pos := make(map[int]int, len(order))
	for p, i := range order {
		pos[i] = p
	}
	classes = LengthClasses(net)
	for _, class := range classes {
		scan := append([]int(nil), class...)
		sort.SliceStable(scan, func(a, b int) bool { return pos[scan[a]] < pos[scan[b]] })
		set := GreedyAffectance(m, beta, DefaultTau, scan)
		if len(set) > len(best) {
			best = set
		}
	}
	return best, classes
}

// RateClass is one threshold class of the flexible-data-rate decomposition.
type RateClass struct {
	Beta  float64
	Set   []int
	Value float64
}

// FlexibleRates implements the rate-class decomposition of Kesselheim [22]
// for capacity maximization with non-binary utilities: candidate SINR
// thresholds are the powers of two spanning [betaMin, betaMax]; for each
// threshold β_t the binary capacity problem is solved by the affectance
// greedy, the resulting set is valued at Σ_i u_i(β_t) (every selected link
// is guaranteed SINR ≥ β_t), and the best class wins. This yields an
// O(log n)-style guarantee relative to the fractional optimum for valid
// utility functions, and — through the paper's reduction — the same up to
// O(log* n) under Rayleigh fading.
func FlexibleRates(net *network.Network, us []utility.Func, betaMin, betaMax float64) (best RateClass, classes []RateClass) {
	if betaMin <= 0 || betaMax < betaMin {
		panic(fmt.Sprintf("capacity: invalid threshold range [%g,%g]", betaMin, betaMax))
	}
	m := net.Gains()
	order := LengthOrder(net)
	for beta := betaMin; beta <= betaMax*(1+1e-12); beta *= 2 {
		set := GreedyAffectance(m, beta, DefaultTau, order)
		value := 0.0
		for _, i := range set {
			u := us[0]
			if len(us) > 1 {
				u = us[i]
			}
			value += u.Value(beta)
		}
		classes = append(classes, RateClass{Beta: beta, Set: set, Value: value})
	}
	best = classes[0]
	for _, c := range classes[1:] {
		if c.Value > best.Value {
			best = c
		}
	}
	return best, classes
}
