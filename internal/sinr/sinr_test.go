package sinr

import (
	"math"
	"testing"
	"testing/quick"

	"rayfade/internal/network"
	"rayfade/internal/rng"
)

// mat builds a Matrix from rows (G[j][i]) and noise, failing the test on error.
func mat(t testing.TB, g [][]float64, noise float64) *network.Matrix {
	t.Helper()
	m, err := network.NewMatrix(g, noise)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// mat2 is a two-link instance: strong own signals, weak cross gains.
func mat2(t testing.TB) *network.Matrix {
	return mat(t, [][]float64{
		{1.0, 0.1}, // sender 0 at receivers 0,1
		{0.2, 2.0}, // sender 1 at receivers 0,1
	}, 0.05)
}

func randomMatrix(t testing.TB, seed uint64, n int) *network.Matrix {
	t.Helper()
	cfg := network.Figure1Config()
	cfg.N = n
	net, err := network.Random(cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return net.Gains()
}

func TestValueBothActive(t *testing.T) {
	m := mat2(t)
	active := []bool{true, true}
	// γ_0 = 1 / (0.2 + 0.05) = 4; γ_1 = 2 / (0.1 + 0.05) ≈ 13.33.
	if got := Value(m, active, 0); math.Abs(got-4) > 1e-12 {
		t.Fatalf("γ_0 = %g, want 4", got)
	}
	if got := Value(m, active, 1); math.Abs(got-2/0.15) > 1e-12 {
		t.Fatalf("γ_1 = %g, want %g", got, 2/0.15)
	}
}

func TestValueSolo(t *testing.T) {
	m := mat2(t)
	// Alone, only noise interferes: γ_0 = 1/0.05 = 20.
	if got := Value(m, []bool{true, false}, 0); math.Abs(got-20) > 1e-12 {
		t.Fatalf("solo γ_0 = %g, want 20", got)
	}
}

func TestValueInactiveLinkIsZero(t *testing.T) {
	m := mat2(t)
	if got := Value(m, []bool{false, true}, 0); got != 0 {
		t.Fatalf("inactive link SINR = %g, want 0", got)
	}
}

func TestValueInfiniteWithoutNoiseOrInterference(t *testing.T) {
	m := mat(t, [][]float64{{1, 0}, {0, 1}}, 0)
	if got := Value(m, []bool{true, false}, 0); !math.IsInf(got, 1) {
		t.Fatalf("noise-free solo SINR = %g, want +Inf", got)
	}
}

func TestValuesMatchesValue(t *testing.T) {
	m := randomMatrix(t, 5, 20)
	src := rng.New(77)
	for trial := 0; trial < 20; trial++ {
		active := make([]bool, m.N)
		for i := range active {
			active[i] = src.Bernoulli(0.4)
		}
		vals := Values(m, active)
		for i := range active {
			if want := Value(m, active, i); math.Abs(vals[i]-want) > 1e-12*(1+want) {
				t.Fatalf("Values[%d] = %g, Value = %g", i, vals[i], want)
			}
		}
	}
}

func TestSetToActiveRoundTrip(t *testing.T) {
	active := SetToActive(5, []int{0, 3, 4})
	want := []bool{true, false, false, true, true}
	for i := range want {
		if active[i] != want[i] {
			t.Fatalf("SetToActive = %v", active)
		}
	}
	set := ActiveToSet(active)
	if len(set) != 3 || set[0] != 0 || set[1] != 3 || set[2] != 4 {
		t.Fatalf("ActiveToSet = %v", set)
	}
}

func TestSetToActivePanics(t *testing.T) {
	for _, set := range [][]int{{-1}, {5}, {1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetToActive(%v) did not panic", set)
				}
			}()
			SetToActive(5, set)
		}()
	}
}

func TestSuccessesAndCount(t *testing.T) {
	m := mat2(t)
	active := []bool{true, true}
	// γ_0 = 4, γ_1 ≈ 13.3.
	if got := Successes(m, active, 5); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Successes(β=5) = %v", got)
	}
	if got := CountSuccesses(m, active, 5); got != 1 {
		t.Fatalf("CountSuccesses(β=5) = %d", got)
	}
	if got := CountSuccesses(m, active, 3); got != 2 {
		t.Fatalf("CountSuccesses(β=3) = %d", got)
	}
	if got := CountSuccesses(m, active, 100); got != 0 {
		t.Fatalf("CountSuccesses(β=100) = %d", got)
	}
}

func TestFeasible(t *testing.T) {
	m := mat2(t)
	if !Feasible(m, nil, 2.5) {
		t.Fatal("empty set must be feasible")
	}
	if !Feasible(m, []int{0}, 2.5) {
		t.Fatal("singleton 0 should be feasible (solo SINR 20)")
	}
	if !Feasible(m, []int{0, 1}, 3) {
		t.Fatal("{0,1} should be feasible at β=3")
	}
	if Feasible(m, []int{0, 1}, 5) {
		t.Fatal("{0,1} should be infeasible at β=5 (γ_0=4)")
	}
}

func TestFeasibleSubsetMonotone(t *testing.T) {
	// Removing links can only raise SINRs: any subset of a feasible set is
	// feasible. Property-test on random instances.
	f := func(seed uint64) bool {
		m := randomMatrix(t, seed, 12)
		src := rng.New(seed ^ 0xabc)
		set := []int{}
		for i := 0; i < m.N; i++ {
			if src.Bernoulli(0.35) {
				set = append(set, i)
			}
		}
		if !Feasible(m, set, 2.5) {
			return true // premise not met
		}
		sub := []int{}
		for _, i := range set {
			if src.Bernoulli(0.5) {
				sub = append(sub, i)
			}
		}
		return Feasible(m, sub, 2.5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAffectanceBasics(t *testing.T) {
	m := mat2(t)
	beta := 2.0
	// a(1,0) = β·S̄(1,0)/(S̄(0,0) − β·ν) = 2·0.2/(1 − 0.1) = 4/9.
	if got, want := Affectance(m, beta, 1, 0), 0.4/0.9; math.Abs(got-want) > 1e-12 {
		t.Fatalf("a(1,0) = %g, want %g", got, want)
	}
	if got := Affectance(m, beta, 0, 0); got != 0 {
		t.Fatalf("self-affectance = %g", got)
	}
}

func TestAffectanceCapped(t *testing.T) {
	m := mat(t, [][]float64{
		{1, 50},
		{50, 1},
	}, 0)
	if got := Affectance(m, 1, 1, 0); got != 1 {
		t.Fatalf("huge interferer affectance = %g, want cap 1", got)
	}
}

func TestAffectanceNoiseDominated(t *testing.T) {
	// S̄(i,i) ≤ β·ν: the link cannot reach β even alone; affectance is 1.
	m := mat(t, [][]float64{
		{0.5, 0},
		{0, 0.5},
	}, 1)
	if got := Affectance(m, 1, 1, 0); got != 1 {
		t.Fatalf("noise-dominated affectance = %g, want 1", got)
	}
}

// The defining property: link i (with others in set S) satisfies the SINR
// constraint at β exactly when Σ_{j∈S} AffectanceUncapped(j,i) ≤ 1.
func TestAffectanceCharacterizesFeasibility(t *testing.T) {
	f := func(seed uint64) bool {
		m := randomMatrix(t, seed, 10)
		src := rng.New(seed ^ 0x123)
		beta := 2.5
		var set []int
		for i := 0; i < m.N; i++ {
			if src.Bernoulli(0.3) {
				set = append(set, i)
			}
		}
		if len(set) == 0 {
			return true
		}
		active := SetToActive(m.N, set)
		vals := Values(m, active)
		for _, i := range set {
			sum := 0.0
			for _, j := range set {
				if j != i {
					sum += AffectanceUncapped(m, beta, j, i)
				}
			}
			satisfied := vals[i] >= beta
			// Exact characterization up to float round-off at the boundary.
			if satisfied && sum > 1+1e-9 {
				return false
			}
			if !satisfied && sum < 1-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Capped affectance never exceeds the uncapped value and never exceeds 1.
func TestAffectanceCapRelation(t *testing.T) {
	f := func(seed uint64) bool {
		m := randomMatrix(t, seed, 8)
		for j := 0; j < m.N; j++ {
			for i := 0; i < m.N; i++ {
				capped := Affectance(m, 2.5, j, i)
				raw := AffectanceUncapped(m, 2.5, j, i)
				if capped > 1 || capped > raw+1e-15 || capped < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// FeasibleByAffectance must agree with the direct SINR check on random
// instances (away from the measure-zero boundary).
func TestQuickFeasibleByAffectanceAgrees(t *testing.T) {
	f := func(seed uint64) bool {
		m := randomMatrix(t, seed, 10)
		src := rng.New(seed * 31)
		var set []int
		for i := 0; i < m.N; i++ {
			if src.Bernoulli(0.3) {
				set = append(set, i)
			}
		}
		return Feasible(m, set, 2.5) == FeasibleByAffectance(m, set, 2.5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFeasibleByAffectanceAgreesWhenUncapped(t *testing.T) {
	m := mat2(t)
	if !FeasibleByAffectance(m, []int{0, 1}, 3) {
		t.Fatal("affectance feasibility should accept {0,1} at β=3")
	}
	if FeasibleByAffectance(m, []int{0, 1}, 5) {
		t.Fatal("affectance feasibility should reject {0,1} at β=5")
	}
}

func TestAffectanceSum(t *testing.T) {
	m := mat2(t)
	got := AffectanceSum(m, 2, []int{0, 1}, 0)
	want := Affectance(m, 2, 1, 0) // self term contributes 0
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("AffectanceSum = %g, want %g", got, want)
	}
}

func TestAccumulatorMatchesDirect(t *testing.T) {
	m := randomMatrix(t, 21, 15)
	acc := NewAccumulator(m)
	src := rng.New(99)
	activeSet := map[int]bool{}
	for step := 0; step < 200; step++ {
		j := src.Intn(m.N)
		if activeSet[j] {
			acc.Remove(j)
			delete(activeSet, j)
		} else {
			acc.Add(j)
			activeSet[j] = true
		}
		// Compare a random link's SINR against the direct computation.
		i := src.Intn(m.N)
		active := make([]bool, m.N)
		for k := range activeSet {
			active[k] = true
		}
		var want float64
		if active[i] {
			want = Value(m, active, i)
		} else {
			// Joining SINR: activate i temporarily.
			active[i] = true
			want = Value(m, active, i)
		}
		got := acc.SINR(i)
		if math.IsInf(want, 1) != math.IsInf(got, 1) ||
			(!math.IsInf(want, 1) && math.Abs(got-want) > 1e-9*(1+want)) {
			t.Fatalf("step %d: accumulator SINR(%d) = %g, want %g", step, i, got, want)
		}
	}
}

func TestAccumulatorBookkeeping(t *testing.T) {
	m := mat2(t)
	acc := NewAccumulator(m)
	if acc.Count() != 0 || acc.Active(0) {
		t.Fatal("fresh accumulator not empty")
	}
	acc.Add(0)
	acc.Add(1)
	if acc.Count() != 2 || !acc.Active(1) {
		t.Fatal("adds not recorded")
	}
	if got := acc.Set(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("Set = %v", got)
	}
	acc.Remove(0)
	if acc.Count() != 1 || acc.Active(0) {
		t.Fatal("remove not recorded")
	}
}

func TestAccumulatorPanics(t *testing.T) {
	m := mat2(t)
	acc := NewAccumulator(m)
	acc.Add(0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double Add did not panic")
			}
		}()
		acc.Add(0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Remove of inactive did not panic")
			}
		}()
		acc.Remove(1)
	}()
}

func TestAccumulatorAllFeasible(t *testing.T) {
	m := mat2(t)
	acc := NewAccumulator(m)
	acc.Add(0)
	acc.Add(1)
	if !acc.AllFeasible(3) {
		t.Fatal("AllFeasible(3) should hold")
	}
	if acc.AllFeasible(5) {
		t.Fatal("AllFeasible(5) should fail (γ_0 = 4)")
	}
}

// Removing an interferer never lowers anyone's SINR.
func TestQuickRemovalMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		m := randomMatrix(t, seed, 10)
		src := rng.New(seed + 1)
		active := make([]bool, m.N)
		var on []int
		for i := range active {
			if src.Bernoulli(0.5) {
				active[i] = true
				on = append(on, i)
			}
		}
		if len(on) < 2 {
			return true
		}
		before := Values(m, active)
		drop := on[src.Intn(len(on))]
		active[drop] = false
		after := Values(m, active)
		for i := range active {
			if active[i] && after[i] < before[i]-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkValues100(b *testing.B) {
	m := randomMatrix(b, 1, 100)
	active := make([]bool, m.N)
	for i := range active {
		active[i] = i%2 == 0
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Values(m, active)
	}
}

func BenchmarkAccumulatorAdd100(b *testing.B) {
	m := randomMatrix(b, 1, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc := NewAccumulator(m)
		for j := 0; j < m.N; j++ {
			acc.Add(j)
		}
	}
}
