package sinr

import (
	"fmt"
	"math"

	"rayfade/internal/network"
)

// SignalStrength returns the signal strength of a transmitting set: the
// minimum over its links of γ_i / β, i.e. the factor by which every link
// clears (or misses) the threshold. A set is feasible iff its strength is
// at least 1; it is a p-signal set (Halldórsson–Wattenhofer, ICALP 2009 —
// the paper's reference [25]) iff its strength is at least p. Stronger sets
// are more robust: under Rayleigh fading their links succeed with higher
// probability, which is why signal-strengthening appears as a tool in the
// transferred algorithms' analyses. The empty set has infinite strength.
func SignalStrength(m *network.Matrix, set []int, beta float64) float64 {
	if beta <= 0 {
		panic(fmt.Sprintf("sinr: threshold β = %g must be positive", beta))
	}
	if len(set) == 0 {
		return math.Inf(1)
	}
	active := SetToActive(m.N, set)
	vals := Values(m, active)
	strength := math.Inf(1)
	for _, i := range set {
		strength = math.Min(strength, vals[i]/beta)
	}
	return strength
}

// PartitionToSignal partitions a feasible set into subsets that are each
// p-signal sets (every link's SINR at least p·β when only its subset
// transmits), for p ≥ 1. The classic signal-strengthening lemma guarantees
// a partition into O(p) parts exists; this greedy first-fit constructs one:
// links are assigned to the first part that stays p-signal after insertion,
// opening a new part when none does.
//
// Singleton viability is required: a link that cannot reach p·β even alone
// (noise-dominated) makes the partition impossible and yields an error.
func PartitionToSignal(m *network.Matrix, set []int, beta, p float64) ([][]int, error) {
	if p < 1 {
		return nil, fmt.Errorf("sinr: signal factor p = %g must be at least 1", p)
	}
	target := p * beta
	var parts [][]int
	var accs []*Accumulator
	for _, cand := range set {
		if cand < 0 || cand >= m.N {
			return nil, fmt.Errorf("sinr: link %d out of range", cand)
		}
		if m.Noise > 0 && m.Own(cand)/m.Noise < target {
			return nil, fmt.Errorf("sinr: link %d cannot reach %g·β even alone", cand, p)
		}
		placed := false
		for k, acc := range accs {
			if fitsSignal(acc, cand, target) {
				acc.Add(cand)
				parts[k] = append(parts[k], cand)
				placed = true
				break
			}
		}
		if !placed {
			acc := NewAccumulator(m)
			acc.Add(cand)
			accs = append(accs, acc)
			parts = append(parts, []int{cand})
		}
	}
	return parts, nil
}

// LowOutAffectanceCore returns L' = {u ∈ set : Σ_{v∈set} a(u,v) ≤ bound},
// the members whose total OUTGOING capped affectance onto the rest of the
// set stays within bound. For a feasible set and bound = 2 this is the set
// the paper's Lemma 7 (Ásgeirsson–Mitra Lemma 8) guarantees to contain at
// least half the links: feasibility caps every link's incoming affectance
// at 1, so the total is at most |set| and fewer than half the members can
// emit more than 2. The Theorem-4 argument (throughput of no-regret
// dynamics) runs on exactly this core.
func LowOutAffectanceCore(m *network.Matrix, set []int, beta, bound float64) []int {
	if bound <= 0 {
		panic(fmt.Sprintf("sinr: affectance bound %g must be positive", bound))
	}
	var core []int
	for _, u := range set {
		out := 0.0
		for _, v := range set {
			if v != u {
				out += Affectance(m, beta, u, v)
			}
		}
		if out <= bound {
			core = append(core, u)
		}
	}
	return core
}

// fitsSignal reports whether adding cand keeps every member of the
// accumulator's set, and cand itself, at SINR ≥ target.
func fitsSignal(acc *Accumulator, cand int, target float64) bool {
	if acc.SINR(cand) < target {
		return false
	}
	acc.Add(cand)
	ok := true
	for _, i := range acc.Set() {
		if acc.SINR(i) < target {
			ok = false
			break
		}
	}
	acc.Remove(cand)
	return ok
}
