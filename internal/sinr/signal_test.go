package sinr

import (
	"math"
	"testing"
	"testing/quick"

	"rayfade/internal/rng"
)

func TestSignalStrengthBasics(t *testing.T) {
	m := mat2(t) // γ_0 = 4, γ_1 ≈ 13.33 with both active, noise 0.05
	got := SignalStrength(m, []int{0, 1}, 2.0)
	if math.Abs(got-2.0) > 1e-12 { // min(4,13.3)/2
		t.Fatalf("strength = %g, want 2", got)
	}
	if s := SignalStrength(m, nil, 2.0); !math.IsInf(s, 1) {
		t.Fatalf("empty set strength = %g", s)
	}
	// Feasibility iff strength ≥ 1.
	if Feasible(m, []int{0, 1}, 3) != (SignalStrength(m, []int{0, 1}, 3) >= 1) {
		t.Fatal("strength and feasibility disagree at β=3")
	}
	if Feasible(m, []int{0, 1}, 5) != (SignalStrength(m, []int{0, 1}, 5) >= 1) {
		t.Fatal("strength and feasibility disagree at β=5")
	}
}

func TestSignalStrengthPanics(t *testing.T) {
	m := mat2(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SignalStrength(m, []int{0}, 0)
}

func TestPartitionToSignalCovers(t *testing.T) {
	m := randomMatrix(t, 61, 40)
	beta := 2.5
	// Start from a feasible greedy-ish set: all links alone viable here.
	set := make([]int, m.N)
	for i := range set {
		set[i] = i
	}
	parts, err := PartitionToSignal(m, set, beta, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Partition covers exactly the set, no duplicates.
	seen := map[int]bool{}
	total := 0
	for _, part := range parts {
		for _, i := range part {
			if seen[i] {
				t.Fatalf("link %d in two parts", i)
			}
			seen[i] = true
			total++
		}
	}
	if total != len(set) {
		t.Fatalf("partition covers %d of %d links", total, len(set))
	}
	// Every part is a 2-signal set.
	for k, part := range parts {
		if s := SignalStrength(m, part, beta); s < 2-1e-9 {
			t.Fatalf("part %d strength %g < 2", k, s)
		}
	}
}

func TestPartitionToSignalPartCountScalesWithP(t *testing.T) {
	m := randomMatrix(t, 63, 60)
	set := make([]int, m.N)
	for i := range set {
		set[i] = i
	}
	count := func(p float64) int {
		parts, err := PartitionToSignal(m, set, 2.5, p)
		if err != nil {
			t.Fatal(err)
		}
		return len(parts)
	}
	c1, c4 := count(1), count(4)
	if c4 < c1 {
		t.Fatalf("stronger requirement needs fewer parts: p=1→%d, p=4→%d", c1, c4)
	}
	// Sanity: neither degenerates to one-part-per-link unless forced.
	if c1 >= m.N {
		t.Fatalf("p=1 used %d parts for %d links", c1, m.N)
	}
}

func TestPartitionToSignalErrors(t *testing.T) {
	m := mat2(t)
	if _, err := PartitionToSignal(m, []int{0}, 2.5, 0.5); err == nil {
		t.Fatal("p < 1 accepted")
	}
	if _, err := PartitionToSignal(m, []int{7}, 2.5, 1); err == nil {
		t.Fatal("out-of-range link accepted")
	}
	// Noise-dominated link: strength target unreachable even alone.
	noisy := mat(t, [][]float64{{1, 0}, {0, 1}}, 1)
	if _, err := PartitionToSignal(noisy, []int{0}, 2.5, 1); err == nil {
		t.Fatal("noise-dominated link accepted")
	}
}

// Property: all parts of any partition are feasible (strength ≥ p ≥ 1
// implies feasibility), across random instances.
func TestQuickPartitionPartsFeasible(t *testing.T) {
	f := func(seed uint64, pRaw uint8) bool {
		m := randomMatrix(t, seed, 20)
		p := 1 + float64(pRaw%4)
		set := make([]int, m.N)
		for i := range set {
			set[i] = i
		}
		parts, err := PartitionToSignal(m, set, 2.5, p)
		if err != nil {
			return true // noise-dominated instance; nothing to check
		}
		for _, part := range parts {
			if !Feasible(m, part, 2.5) {
				return false
			}
			if SignalStrength(m, part, 2.5) < p-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Stronger sets survive Rayleigh fading better: compare the per-link exact
// success probability of a 4-signal part against a barely-feasible set.
func TestSignalStrengthImprovesFadingSurvival(t *testing.T) {
	m := randomMatrix(t, 65, 30)
	beta := 2.5
	set := make([]int, m.N)
	for i := range set {
		set[i] = i
	}
	parts4, err := PartitionToSignal(m, set, beta, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The strength-4 parts must give every member SINR ≥ 4β, so under
	// Rayleigh the Lemma-1 lower bound gives success probability at least
	// exp(-1/4) for threshold β.
	for _, part := range parts4 {
		active := SetToActive(m.N, part)
		vals := Values(m, active)
		for _, i := range part {
			if vals[i] < 4*beta-1e-9 {
				t.Fatalf("part member %d has SINR %g < 4β", i, vals[i])
			}
		}
	}
}

// Lemma 7 (via Lemma 8 of Ásgeirsson–Mitra): every feasible set has a
// half-sized core of links whose outgoing affectance is at most 2.
func TestQuickLemma7HalfCore(t *testing.T) {
	f := func(seed uint64) bool {
		m := randomMatrix(t, seed, 20)
		src := rng.New(seed ^ 0x321)
		var set []int
		for i := 0; i < m.N; i++ {
			if src.Bernoulli(0.4) {
				set = append(set, i)
			}
		}
		if !Feasible(m, set, 2.5) {
			return true // lemma premise requires feasibility
		}
		core := LowOutAffectanceCore(m, set, 2.5, 2)
		return 2*len(core) >= len(set)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// With a feasible greedy set the lemma holds too, and shrinking the bound
// shrinks the core monotonically.
func TestLowOutAffectanceCoreMonotone(t *testing.T) {
	m := randomMatrix(t, 81, 40)
	set := make([]int, 0, m.N)
	acc := NewAccumulator(m)
	for i := 0; i < m.N; i++ {
		acc.Add(i)
		if !acc.AllFeasible(2.5) {
			acc.Remove(i)
			continue
		}
		set = append(set, i)
	}
	if len(set) < 4 {
		t.Skip("instance too tight")
	}
	loose := LowOutAffectanceCore(m, set, 2.5, 4)
	tight := LowOutAffectanceCore(m, set, 2.5, 0.5)
	if len(tight) > len(loose) {
		t.Fatalf("tight bound core %d exceeds loose %d", len(tight), len(loose))
	}
	if half := LowOutAffectanceCore(m, set, 2.5, 2); 2*len(half) < len(set) {
		t.Fatalf("Lemma-7 core %d below half of %d", len(half), len(set))
	}
}

func TestLowOutAffectanceCorePanics(t *testing.T) {
	m := mat2(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LowOutAffectanceCore(m, []int{0}, 2.5, 0)
}

func BenchmarkPartitionToSignal60(b *testing.B) {
	m := randomMatrix(b, 1, 60)
	set := make([]int, m.N)
	for i := range set {
		set[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PartitionToSignal(m, set, 2.5, 2); err != nil {
			b.Fatal(err)
		}
	}
}
