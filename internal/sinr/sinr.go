// Package sinr evaluates the deterministic (non-fading) SINR model of the
// paper's Section 2 on top of a gain matrix: signal-to-interference-plus-
// noise ratios, feasibility of transmission sets against a threshold β, and
// the affectance measure used by the capacity algorithms and by Lemma 6.
//
// Given the expected-strength matrix S̄ and a set S of transmitting links,
// the SINR of link i ∈ S is
//
//	γ_i^nf = S̄(i,i) / (Σ_{j ∈ S, j ≠ i} S̄(j,i) + ν).
//
// Link i "succeeds" if γ_i^nf ≥ β, and S is feasible if every link in S
// succeeds simultaneously.
package sinr

import (
	"fmt"
	"math"

	"rayfade/internal/network"
)

// Value returns the non-fading SINR γ_i^nf of link i when exactly the links
// with active[j] == true transmit. If i itself is not active, Value returns
// 0 (a link that does not transmit achieves no rate). If interference and
// noise are both zero the SINR is +Inf.
func Value(m *network.Matrix, active []bool, i int) float64 {
	if !active[i] {
		return 0
	}
	in := m.Incoming(i)
	interf := m.Noise
	for j := range active {
		if j != i && active[j] {
			interf += in[j]
		}
	}
	if interf == 0 {
		return math.Inf(1)
	}
	return in[i] / interf
}

// Values returns the SINR of every link under the given activity vector;
// inactive links report 0.
func Values(m *network.Matrix, active []bool) []float64 {
	return ValuesInto(m, active, make([]float64, m.N))
}

// ValuesInto computes the per-link SINRs into the caller-owned buffer out
// (length m.N) and returns it, allocating nothing. Hot Monte-Carlo loops
// reuse one buffer across calls.
func ValuesInto(m *network.Matrix, active []bool, out []float64) []float64 {
	if len(out) != m.N {
		panic(fmt.Sprintf("sinr: SINR buffer length %d for %d links", len(out), m.N))
	}
	for i := range out {
		out[i] = 0
	}
	// Receiver-major layout: the interference sum for receiver i reads the
	// contiguous Incoming(i) slice front to back, in the same j order as
	// always — cache-linear without reordering a single addition.
	for i := 0; i < m.N; i++ {
		if !active[i] {
			continue
		}
		in := m.Incoming(i)
		interf := m.Noise
		for j := 0; j < m.N; j++ {
			if j != i && active[j] {
				interf += in[j]
			}
		}
		if interf == 0 {
			out[i] = math.Inf(1)
		} else {
			out[i] = in[i] / interf
		}
	}
	return out
}

// SetToActive converts a set of link indices into an activity vector.
// It panics on out-of-range or duplicate indices.
func SetToActive(n int, set []int) []bool {
	active := make([]bool, n)
	for _, i := range set {
		if i < 0 || i >= n {
			panic(fmt.Sprintf("sinr: link index %d out of range [0,%d)", i, n))
		}
		if active[i] {
			panic(fmt.Sprintf("sinr: duplicate link index %d", i))
		}
		active[i] = true
	}
	return active
}

// ActiveToSet lists the indices set in an activity vector, in order.
func ActiveToSet(active []bool) []int {
	var set []int
	for i, a := range active {
		if a {
			set = append(set, i)
		}
	}
	return set
}

// Successes returns the indices of active links whose SINR reaches β.
func Successes(m *network.Matrix, active []bool, beta float64) []int {
	var ok []int
	vals := Values(m, active)
	for i, a := range active {
		if a && vals[i] >= beta {
			ok = append(ok, i)
		}
	}
	return ok
}

// CountSuccesses returns the number of active links whose SINR reaches β.
func CountSuccesses(m *network.Matrix, active []bool, beta float64) int {
	count := 0
	vals := Values(m, active)
	for i, a := range active {
		if a && vals[i] >= beta {
			count++
		}
	}
	return count
}

// Feasible reports whether the set of links is simultaneously successful at
// threshold β: every link in the set reaches SINR ≥ β when exactly the set
// transmits. The empty set is feasible.
func Feasible(m *network.Matrix, set []int, beta float64) bool {
	if len(set) == 0 {
		return true
	}
	active := SetToActive(m.N, set)
	vals := Values(m, active)
	for _, i := range set {
		if vals[i] < beta {
			return false
		}
	}
	return true
}

// Affectance returns a(j,i), the (uniform-threshold) affectance of link j on
// link i at threshold β: the fraction of link i's interference tolerance
// that j's transmission consumes, capped at 1. In gain terms,
//
//	a(j,i) = min{ 1, β·S̄(j,i) / (S̄(i,i) − β·ν) },
//
// which for uniform powers reduces to the distance form in the paper's
// Lemma 6. If the noise alone already prevents link i from reaching β
// (S̄(i,i) ≤ β·ν), the affectance is 1: the link is beyond help.
// Self-affectance a(i,i) is defined as 0.
func Affectance(m *network.Matrix, beta float64, j, i int) float64 {
	if j == i {
		return 0
	}
	margin := m.Own(i) - beta*m.Noise
	if margin <= 0 {
		return 1
	}
	a := beta * m.At(j, i) / margin
	if a > 1 {
		return 1
	}
	return a
}

// AffectanceUncapped returns the raw affectance ratio β·S̄(j,i)/(S̄(i,i)−β·ν)
// without the cap at 1. Unlike the capped form, the uncapped sum exactly
// characterizes the SINR constraint: link i succeeds alongside set S iff
// Σ_{j∈S} AffectanceUncapped(j,i) ≤ 1. A noise-dominated link (margin ≤ 0)
// reports +Inf.
func AffectanceUncapped(m *network.Matrix, beta float64, j, i int) float64 {
	if j == i {
		return 0
	}
	margin := m.Own(i) - beta*m.Noise
	if margin <= 0 {
		if beta*m.At(j, i) == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return beta * m.At(j, i) / margin
}

// AffectanceSum returns Σ_{j ∈ set} a(j,i), the total capped affectance of a
// set on link i.
func AffectanceSum(m *network.Matrix, beta float64, set []int, i int) float64 {
	sum := 0.0
	for _, j := range set {
		sum += Affectance(m, beta, j, i)
	}
	return sum
}

// FeasibleByAffectance reports whether every link i in the set has total
// uncapped affectance at most 1 from the rest of the set, which is exactly
// the SINR feasibility condition (noise-dominated links make the set
// infeasible). It cross-checks Feasible and serves the algorithms that
// reason in affectance space.
func FeasibleByAffectance(m *network.Matrix, set []int, beta float64) bool {
	for _, i := range set {
		if m.Own(i) < beta*m.Noise {
			return false // noise alone already defeats link i
		}
		sum := 0.0
		for _, j := range set {
			if j != i {
				sum += AffectanceUncapped(m, beta, j, i)
			}
		}
		if !(sum <= 1) { // rejects sums > 1 as well as Inf and NaN
			return false
		}
	}
	return true
}

// Accumulator incrementally maintains, for every receiver, the total
// interference from the currently active senders. Greedy capacity
// algorithms add and remove candidate senders many times; the accumulator
// makes each probe O(n) instead of O(n²).
type Accumulator struct {
	m      *network.Matrix
	interf []float64 // interf[i] = Σ_{active j} S̄(j,i), including j == i
	active []bool
	count  int
}

// NewAccumulator returns an empty accumulator over the matrix.
func NewAccumulator(m *network.Matrix) *Accumulator {
	return &Accumulator{
		m:      m,
		interf: make([]float64, m.N),
		active: make([]bool, m.N),
	}
}

// Add activates sender j. It panics if j is already active.
func (a *Accumulator) Add(j int) {
	if a.active[j] {
		panic(fmt.Sprintf("sinr: sender %d already active", j))
	}
	a.active[j] = true
	a.count++
	// Sender-indexed update over a receiver-major matrix: a stride-N walk.
	// The accumulator serves the incremental partitioning passes, whose cost
	// is dominated by the repeated SINR probes, not these O(n) updates.
	for i := 0; i < a.m.N; i++ {
		a.interf[i] += a.m.At(j, i)
	}
}

// Remove deactivates sender j. It panics if j is not active.
func (a *Accumulator) Remove(j int) {
	if !a.active[j] {
		panic(fmt.Sprintf("sinr: sender %d not active", j))
	}
	a.active[j] = false
	a.count--
	for i := 0; i < a.m.N; i++ {
		a.interf[i] -= a.m.At(j, i)
	}
}

// Active reports whether sender j is currently active.
func (a *Accumulator) Active(j int) bool { return a.active[j] }

// Count returns the number of active senders.
func (a *Accumulator) Count() int { return a.count }

// SINR returns the SINR link i would see right now. If i is active its own
// signal is excluded from the interference; if i is inactive the value is
// the SINR it would get by joining the current set.
func (a *Accumulator) SINR(i int) float64 {
	interf := a.interf[i] + a.m.Noise
	if a.active[i] {
		interf -= a.m.Own(i)
	}
	// Guard against cancellation leaving a tiny negative residue.
	if interf < 0 {
		interf = 0
	}
	if interf == 0 {
		return math.Inf(1)
	}
	return a.m.Own(i) / interf
}

// AllFeasible reports whether every currently active link reaches β.
func (a *Accumulator) AllFeasible(beta float64) bool {
	for i, act := range a.active {
		if act && a.SINR(i) < beta {
			return false
		}
	}
	return true
}

// Set returns the currently active links as a sorted index set.
func (a *Accumulator) Set() []int { return ActiveToSet(a.active) }
