// Package netio (de)serializes networks as JSON, so workloads can be
// generated once, archived alongside experiment results, and fed back into
// the schedulers — the bring-your-own-topology path for downstream users
// (the paper's reduction makes no assumptions beyond the gain structure, so
// arbitrary measured topologies are legitimate inputs).
//
// The format is deliberately boring: one object with the propagation
// parameters, a metric tag, and a flat link array. Unknown fields are
// rejected to catch typos in hand-written files.
package netio

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"rayfade/internal/fsio"
	"rayfade/internal/geom"
	"rayfade/internal/network"
)

// FormatVersion identifies the schema; bump on incompatible changes.
const FormatVersion = 1

type linkJSON struct {
	SX     float64 `json:"sx"`
	SY     float64 `json:"sy"`
	RX     float64 `json:"rx"`
	RY     float64 `json:"ry"`
	Power  float64 `json:"power"`
	Weight float64 `json:"weight,omitempty"`
}

type networkJSON struct {
	Version int        `json:"version"`
	Metric  string     `json:"metric"`
	Alpha   float64    `json:"alpha"`
	Noise   float64    `json:"noise"`
	Links   []linkJSON `json:"links"`
}

// metricName serializes the supported metrics.
func metricName(m geom.Metric) (string, error) {
	switch t := m.(type) {
	case geom.Euclidean:
		return "euclidean", nil
	case geom.Manhattan:
		return "manhattan", nil
	case geom.Torus:
		return fmt.Sprintf("torus:%gx%g", t.W, t.H), nil
	default:
		return "", fmt.Errorf("netio: metric %T is not serializable", m)
	}
}

// parseMetric inverts metricName.
func parseMetric(s string) (geom.Metric, error) {
	switch {
	case s == "euclidean" || s == "":
		return geom.Euclidean{}, nil
	case s == "manhattan":
		return geom.Manhattan{}, nil
	case strings.HasPrefix(s, "torus:"):
		var w, h float64
		if _, err := fmt.Sscanf(s, "torus:%gx%g", &w, &h); err != nil {
			return nil, fmt.Errorf("netio: bad torus metric %q", s)
		}
		// Non-positive or non-finite dimensions make torus wraparound
		// degenerate (math.Mod by zero is NaN), which network.Validate's
		// length check cannot catch because NaN compares false.
		if !(w > 0) || !(h > 0) || math.IsInf(w, 0) || math.IsInf(h, 0) {
			return nil, fmt.Errorf("netio: torus dimensions %gx%g must be positive and finite", w, h)
		}
		return geom.Torus{W: w, H: h}, nil
	default:
		return nil, fmt.Errorf("netio: unknown metric %q", s)
	}
}

// Save writes the network as indented JSON.
func Save(w io.Writer, net *network.Network) error {
	if err := net.Validate(); err != nil {
		return fmt.Errorf("netio: refusing to save invalid network: %w", err)
	}
	mname, err := metricName(net.Metric)
	if err != nil {
		return err
	}
	doc := networkJSON{
		Version: FormatVersion,
		Metric:  mname,
		Alpha:   net.Alpha,
		Noise:   net.Noise,
		Links:   make([]linkJSON, len(net.Links)),
	}
	for i, l := range net.Links {
		doc.Links[i] = linkJSON{
			SX: l.Sender.X, SY: l.Sender.Y,
			RX: l.Receiver.X, RY: l.Receiver.Y,
			Power: l.Power, Weight: l.Weight,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Load reads a network saved by Save (or hand-written in the same format)
// and validates it.
func Load(r io.Reader) (*network.Network, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var doc networkJSON
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("netio: decode: %w", err)
	}
	if doc.Version != 0 && doc.Version != FormatVersion {
		return nil, fmt.Errorf("netio: unsupported format version %d", doc.Version)
	}
	metric, err := parseMetric(doc.Metric)
	if err != nil {
		return nil, err
	}
	net := &network.Network{
		Metric: metric,
		Alpha:  doc.Alpha,
		Noise:  doc.Noise,
		Links:  make([]network.Link, len(doc.Links)),
	}
	for i, l := range doc.Links {
		// Reject non-finite values here: NaN slips through Validate's
		// ordered comparisons (NaN length is not <= 0, NaN weight is not
		// < 0) and would poison every downstream gain computation.
		for _, v := range [...]float64{l.SX, l.SY, l.RX, l.RY, l.Power, l.Weight} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("netio: link %d has non-finite field %g", i, v)
			}
		}
		weight := l.Weight
		if weight == 0 {
			weight = 1
		}
		net.Links[i] = network.Link{
			Sender:   geom.Point{X: l.SX, Y: l.SY},
			Receiver: geom.Point{X: l.RX, Y: l.RY},
			Power:    l.Power,
			Weight:   weight,
		}
	}
	if err := net.Validate(); err != nil {
		return nil, fmt.Errorf("netio: loaded network invalid: %w", err)
	}
	return net, nil
}

// SaveFile writes the network to path atomically (write-temp + fsync +
// rename): a crash mid-save leaves any previous file intact, never a torn
// topology.
func SaveFile(path string, net *network.Network) error {
	return fsio.WriteAtomic(path, 0o644, func(w io.Writer) error {
		return Save(w, net)
	})
}

// LoadFile reads a network from path.
func LoadFile(path string) (*network.Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
