package netio

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rayfade/internal/geom"
	"rayfade/internal/network"
	"rayfade/internal/rng"
)

func sampleNet(t testing.TB) *network.Network {
	t.Helper()
	net, err := network.Random(network.Figure1Config(), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestRoundTrip(t *testing.T) {
	orig := sampleNet(t)
	var buf bytes.Buffer
	if err := Save(&buf, orig); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.N() != orig.N() || loaded.Alpha != orig.Alpha || loaded.Noise != orig.Noise {
		t.Fatalf("header mismatch: %v vs %v", loaded, orig)
	}
	for i := range orig.Links {
		if orig.Links[i] != loaded.Links[i] {
			t.Fatalf("link %d mismatch: %+v vs %+v", i, orig.Links[i], loaded.Links[i])
		}
	}
	// Gain matrices must agree exactly.
	a, b := orig.Gains(), loaded.Gains()
	for j := 0; j < a.N; j++ {
		for i := 0; i < a.N; i++ {
			if a.At(j, i) != b.At(j, i) {
				t.Fatalf("gain (%d,%d) differs after round trip", j, i)
			}
		}
	}
}

func TestRoundTripMetrics(t *testing.T) {
	metrics := []geom.Metric{geom.Euclidean{}, geom.Manhattan{}, geom.Torus{W: 500, H: 300}}
	for _, m := range metrics {
		net := sampleNet(t)
		net.Metric = m
		var buf bytes.Buffer
		if err := Save(&buf, net); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		loaded, err := Load(&buf)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if loaded.Metric.Name() != m.Name() {
			t.Fatalf("metric %q became %q", m.Name(), loaded.Metric.Name())
		}
	}
}

func TestSaveRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, &network.Network{}); err == nil {
		t.Fatal("invalid network saved")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":      "hello",
		"unknown field": `{"version":1,"metric":"euclidean","alpha":2,"noise":0,"links":[],"bogus":1}`,
		"bad metric":    `{"version":1,"metric":"spherical","alpha":2,"noise":0,"links":[{"sx":0,"sy":0,"rx":1,"ry":0,"power":1}]}`,
		"bad version":   `{"version":99,"metric":"euclidean","alpha":2,"noise":0,"links":[{"sx":0,"sy":0,"rx":1,"ry":0,"power":1}]}`,
		"no links":      `{"version":1,"metric":"euclidean","alpha":2,"noise":0,"links":[]}`,
		"zero power":    `{"version":1,"metric":"euclidean","alpha":2,"noise":0,"links":[{"sx":0,"sy":0,"rx":1,"ry":0,"power":0}]}`,
		"zero length":   `{"version":1,"metric":"euclidean","alpha":2,"noise":0,"links":[{"sx":1,"sy":1,"rx":1,"ry":1,"power":1}]}`,
	}
	for name, doc := range cases {
		if _, err := Load(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLoadDefaults(t *testing.T) {
	// Hand-written minimal file: no version, no metric, no weights.
	doc := `{"alpha":2.2,"noise":1e-7,"links":[{"sx":0,"sy":0,"rx":10,"ry":0,"power":2}]}`
	net, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if net.Metric.Name() != "euclidean" {
		t.Fatalf("default metric %q", net.Metric.Name())
	}
	if net.Links[0].Weight != 1 {
		t.Fatalf("default weight %g", net.Links[0].Weight)
	}
}

// Property: every generator's output round-trips exactly.
func TestQuickRoundTripAllGenerators(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		src := rng.New(seed)
		nets := map[string]*network.Network{}
		base := network.Figure1Config()
		base.N = int(seed%20) + 2
		if n, err := network.Random(base, src); err == nil {
			nets["uniform"] = n
		}
		if n, err := network.RandomClustered(network.ClusterConfig{
			Clusters: 2, PerChild: 4, Spread: 25, Base: network.Figure1Config(),
		}, src); err == nil {
			nets["cluster"] = n
		}
		if n, err := network.Grid(3, 3, 50, 10, 2.2, 1e-7, nil); err == nil {
			nets["grid"] = n
		}
		for kind, orig := range nets {
			var buf bytes.Buffer
			if err := Save(&buf, orig); err != nil {
				t.Fatalf("seed %d %s: save: %v", seed, kind, err)
			}
			loaded, err := Load(&buf)
			if err != nil {
				t.Fatalf("seed %d %s: load: %v", seed, kind, err)
			}
			for i := range orig.Links {
				if orig.Links[i] != loaded.Links[i] {
					t.Fatalf("seed %d %s: link %d changed", seed, kind, i)
				}
			}
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "net.json")
	orig := sampleNet(t)
	if err := SaveFile(path, orig); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.N() != orig.N() {
		t.Fatalf("N = %d, want %d", loaded.N(), orig.N())
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file loaded")
	}
	if err := SaveFile(filepath.Join(dir, "nodir", "x.json"), orig); err == nil {
		t.Fatal("unwritable path saved")
	}
	// File is valid JSON on disk.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(`"version": 1`)) {
		t.Fatalf("file lacks version tag:\n%s", raw[:120])
	}
}
