package netio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadNetwork feeds arbitrary bytes to Load and asserts the contract the
// rayschedd daemon depends on: hostile input either yields a valid network or
// an error — never a panic, and never a "valid" network that fails its own
// Validate or cannot round-trip through Save.
func FuzzReadNetwork(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`not json`,
		`{"version":1,"metric":"euclidean","alpha":3,"noise":0.1,
		  "links":[{"sx":0,"sy":0,"rx":1,"ry":0,"power":1}]}`,
		`{"version":1,"metric":"torus:10x10","alpha":3,"noise":0,
		  "links":[{"sx":0,"sy":0,"rx":1,"ry":1,"power":1,"weight":2}]}`,
		// Hostile shapes that must be rejected, not crash or slip through.
		`{"version":99,"links":[{"sx":0,"sy":0,"rx":1,"ry":0,"power":1}]}`,
		`{"metric":"torus:0x0","alpha":3,"links":[{"sx":0,"sy":0,"rx":1,"ry":0,"power":1}]}`,
		`{"metric":"torus:-5x-5","alpha":3,"links":[{"sx":0,"sy":0,"rx":1,"ry":0,"power":1}]}`,
		`{"metric":"torus:NaNxNaN","alpha":3,"links":[{"sx":0,"sy":0,"rx":1,"ry":0,"power":1}]}`,
		`{"metric":"spherical","alpha":3,"links":[{"sx":0,"sy":0,"rx":1,"ry":0,"power":1}]}`,
		`{"alpha":3,"links":[{"sx":0,"sy":0,"rx":0,"ry":0,"power":1}]}`,
		`{"alpha":3,"links":[{"sx":0,"sy":0,"rx":1,"ry":0,"power":-1}]}`,
		`{"alpha":3,"links":[{"sx":0,"sy":0,"rx":1,"ry":0,"power":1,"weight":-2}]}`,
		`{"alpha":-3,"links":[{"sx":0,"sy":0,"rx":1,"ry":0,"power":1}]}`,
		`{"alpha":3,"noise":-1,"links":[{"sx":0,"sy":0,"rx":1,"ry":0,"power":1}]}`,
		`{"alpha":3,"links":[{"sx":1e999,"sy":0,"rx":1,"ry":0,"power":1}]}`,
		`{"alpha":3,"links":[],"bogus":true}`,
		`[1,2,3]`,
		`{"links":`,
		`{"version":1.5}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		net, err := Load(bytes.NewReader(data))
		if err != nil {
			if net != nil {
				t.Fatalf("Load returned both a network and error %v", err)
			}
			return
		}
		// Anything Load accepts must satisfy the validity contract…
		if verr := net.Validate(); verr != nil {
			t.Fatalf("Load accepted a network that fails Validate: %v\ninput: %q", verr, data)
		}
		// …and round-trip: Save must succeed and re-Load identically enough
		// to validate again (the canonical-serialization path the server's
		// cache keys rely on).
		var buf bytes.Buffer
		if serr := Save(&buf, net); serr != nil {
			t.Fatalf("Save rejected a network Load accepted: %v\ninput: %q", serr, data)
		}
		net2, lerr := Load(strings.NewReader(buf.String()))
		if lerr != nil {
			t.Fatalf("round-trip Load failed: %v\nsaved: %s", lerr, buf.String())
		}
		if net2.N() != net.N() {
			t.Fatalf("round-trip changed link count %d -> %d", net.N(), net2.N())
		}
	})
}
