package sim

import (
	"context"
	"fmt"
	"math"

	"rayfade/internal/fading"
	"rayfade/internal/network"
	"rayfade/internal/rng"
	"rayfade/internal/stats"
)

// FadingSweepConfig parameterizes the fading-family experiment: success
// counts on the Figure-1 workload under Nakagami-m fading for a range of
// shape parameters. m = 1 is exactly the paper's Rayleigh model; m → ∞
// approaches the non-fading model — so the sweep locates the paper's two
// models as endpoints of one family, the extension its discussion section
// gestures at.
type FadingSweepConfig struct {
	Networks      int       // networks to average over
	Links         int       // links per network
	TransmitSeeds int       // transmit-set draws per network
	FadingSeeds   int       // fading draws per transmit set
	Prob          float64   // common transmission probability
	Shapes        []float64 // Nakagami shapes to sweep (m ≥ 0.5)
	Beta          float64
	Workers       int
	Seed          uint64
}

func (c FadingSweepConfig) withDefaults() FadingSweepConfig {
	if c.Networks == 0 {
		c.Networks = 10
	}
	if c.Links == 0 {
		c.Links = 100
	}
	if c.TransmitSeeds == 0 {
		c.TransmitSeeds = 10
	}
	if c.FadingSeeds == 0 {
		c.FadingSeeds = 5
	}
	if c.Prob == 0 {
		c.Prob = 0.5
	}
	if len(c.Shapes) == 0 {
		c.Shapes = []float64{0.5, 1, 2, 4, 8, 16}
	}
	if c.Beta == 0 {
		c.Beta = 2.5
	}
	if c.Seed == 0 {
		c.Seed = 5
	}
	return c
}

// FadingSweepResult carries per-shape success statistics plus the
// non-fading reference at the same transmission probability.
type FadingSweepResult struct {
	Shapes    []float64
	PerShape  *stats.Series // indexed like Shapes
	NonFading stats.Running
	Rayleigh  stats.Running // the m=1 closed-form expectation, as a check
	Config    FadingSweepConfig
}

// RunFadingSweep measures the expected success count under Nakagami-m
// fading for each shape, against the non-fading count on identical
// transmit sets.
func RunFadingSweep(cfg FadingSweepConfig) *FadingSweepResult {
	res, _ := RunFadingSweepCtx(context.Background(), cfg)
	return res
}

// RunFadingSweepCtx is RunFadingSweep with cooperative cancellation; it returns nil
// and ctx.Err() when the context is cancelled before the run completes.
func RunFadingSweepCtx(ctx context.Context, cfg FadingSweepConfig) (*FadingSweepResult, error) {
	cfg = cfg.withDefaults()
	ctx, finish := beginExperiment(ctx, "sim.fadingsweep",
		"networks", cfg.Networks, "links", cfg.Links, "shapes", len(cfg.Shapes), "seed", cfg.Seed)
	defer finish()
	type netResult struct {
		perShape *stats.Series
		nf       stats.Running
		rl       stats.Running
	}
	base := rng.New(cfg.Seed)
	perNet, perErr := ParallelCtx(ctx, cfg.Networks, cfg.Workers, base, func(rep int, src *rng.Source) netResult {
		netCfg := network.Figure1Config()
		netCfg.N = cfg.Links
		net, err := network.Random(netCfg, src)
		if err != nil {
			panic(fmt.Sprintf("sim: fading sweep network generation: %v", err))
		}
		m := net.Gains()
		out := netResult{perShape: stats.NewSeries(cfg.Shapes)}
		q := fading.UniformProbs(m.N, cfg.Prob)
		out.rl.Add(fading.ExpectedSuccessesExact(m, q, cfg.Beta))
		active := make([]bool, m.N)
		vals := make([]float64, m.N)
		idx := make([]int, 0, m.N)
		for ts := 0; ts < cfg.TransmitSeeds; ts++ {
			for i := range active {
				active[i] = src.Bernoulli(cfg.Prob)
			}
			out.nf.Add(float64(countNonFadingInto(m, active, cfg.Beta, vals)))
			for si, shape := range cfg.Shapes {
				sampler := fading.NakagamiGains{M: shape}
				for fs := 0; fs < cfg.FadingSeeds; fs++ {
					fading.SampleSINRsWithInto(m, active, sampler, src, vals, idx)
					count := 0
					for i, a := range active {
						if a && vals[i] >= cfg.Beta {
							count++
						}
					}
					out.perShape.Observe(si, float64(count))
				}
				tickRealizations(cfg.FadingSeeds)
			}
		}
		return out
	})
	if perErr != nil {
		return nil, perErr
	}
	res := &FadingSweepResult{
		Shapes:   cfg.Shapes,
		PerShape: stats.NewSeries(cfg.Shapes),
		Config:   cfg,
	}
	for _, nr := range perNet {
		res.PerShape.Merge(nr.perShape)
		res.NonFading.Merge(nr.nf)
		res.Rayleigh.Merge(nr.rl)
	}
	return res, nil
}

// RayleighShapeIndex returns the index of m = 1 in the sweep, or -1.
func (r *FadingSweepResult) RayleighShapeIndex() int {
	for i, s := range r.Shapes {
		if math.Abs(s-1) < 1e-12 {
			return i
		}
	}
	return -1
}
