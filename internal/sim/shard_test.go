package sim

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"

	"rayfade/internal/rng"
)

// TestParallelShardCtxMatchesFull: every shard of a partition must reproduce
// exactly the slice of the full run it covers, at any worker width — the
// property the distributed merge rests on.
func TestParallelShardCtxMatchesFull(t *testing.T) {
	const reps = 11
	fn := func(rep int, src *rng.Source) float64 { return float64(rep) + src.Float64() }
	full, err := ParallelCtx(context.Background(), reps, 4, rng.New(9), fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, shard := range [][2]int{{0, 3}, {3, 7}, {7, 11}, {0, 11}, {5, 6}} {
		lo, hi := shard[0], shard[1]
		for _, workers := range []int{1, 3} {
			got, err := ParallelShardCtx(context.Background(), reps, lo, hi, workers, rng.New(9), fn)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != hi-lo {
				t.Fatalf("shard [%d,%d): %d results", lo, hi, len(got))
			}
			for i, v := range got {
				if v != full[lo+i] {
					t.Fatalf("shard [%d,%d) workers=%d: rep %d = %v, full run has %v",
						lo, hi, workers, lo+i, v, full[lo+i])
				}
			}
		}
	}
}

func TestParallelShardCtxRejectsBadRange(t *testing.T) {
	fn := func(rep int, src *rng.Source) int { return rep }
	for _, bad := range [][2]int{{-1, 2}, {0, 6}, {3, 2}} {
		if _, err := ParallelShardCtx(context.Background(), 5, bad[0], bad[1], 1, rng.New(1), fn); err == nil {
			t.Errorf("range [%d,%d) of 5: want error", bad[0], bad[1])
		}
	}
	// An empty range is a valid degenerate shard, mirroring ParallelCtx with
	// zero replications.
	got, err := ParallelShardCtx(context.Background(), 5, 2, 2, 1, rng.New(1), fn)
	if err != nil || len(got) != 0 {
		t.Errorf("empty range [2,2): got %v, %v", got, err)
	}
}

// shardFigure1 is a Figure-1 config small enough for shard unit tests but
// with enough networks to cut into three shards.
func shardFigure1() Figure1Config {
	return Figure1Config{
		Networks: 5, Links: 12, TransmitSeeds: 2, FadingSeeds: 2,
		Probs: []float64{0.2, 0.6, 1.0}, Seed: 17, Workers: 2,
	}
}

// TestFigure1ShardsMergeByteIdentical is the end-to-end determinism
// argument in miniature: compute the run as three shards, merge them, write
// the merged checkpoint, replay through RunFigure1Ctx, and require the CSV
// to be byte-identical to the plain single-node run.
func TestFigure1ShardsMergeByteIdentical(t *testing.T) {
	cfg := shardFigure1()
	single, err := RunFigure1Ctx(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := WriteSeriesCSV(&want, "prob", single.Probs, single.CurveNames(), single.Curves); err != nil {
		t.Fatal(err)
	}

	var shards []*Shard
	for _, r := range [][2]int{{0, 2}, {2, 3}, {3, 5}} {
		sh, err := RunFigure1ShardCtx(context.Background(), cfg, r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		// Round-trip through the wire format, as a coordinator would.
		doc, err := sh.Encode()
		if err != nil {
			t.Fatal(err)
		}
		back, err := DecodeShard(doc)
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, back)
	}
	sha, err := Figure1ConfigSHA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergeShards(ExperimentFigure1, sha, cfg.Networks, shards)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "merged.ckpt")
	if err := WriteMergedCheckpoint(path, ExperimentFigure1, sha, cfg.Networks, merged); err != nil {
		t.Fatal(err)
	}

	replay := cfg
	replay.Checkpoint = path
	res, err := RunFigure1Ctx(context.Background(), replay)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := WriteSeriesCSV(&got, "prob", res.Probs, res.CurveNames(), res.Curves); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("sharded+merged CSV differs from single-node run:\n--- merged\n%s\n--- single\n%s", got.String(), want.String())
	}
}

func TestFigure1ShardRejectsBadRange(t *testing.T) {
	cfg := shardFigure1()
	for _, bad := range [][2]int{{-1, 2}, {0, 6}, {4, 3}, {2, 2}} {
		if _, err := RunFigure1ShardCtx(context.Background(), cfg, bad[0], bad[1]); err == nil {
			t.Errorf("range [%d,%d): want error", bad[0], bad[1])
		}
	}
}
