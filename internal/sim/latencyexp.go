package sim

import (
	"context"
	"fmt"

	"rayfade/internal/capacity"
	"rayfade/internal/latency"
	"rayfade/internal/network"
	"rayfade/internal/rng"
	"rayfade/internal/stats"
	"rayfade/internal/transform"
)

// LatencyConfig parameterizes the latency-minimization comparison: the
// centralized repeated-capacity schedule and the two distributed protocols
// (fixed-probability and backoff ALOHA), each in both interference models,
// on the Figure-1 workload.
type LatencyConfig struct {
	Networks  int
	Links     int
	Trials    int // stochastic replays per network
	Beta      float64
	AlohaProb float64
	Workers   int
	Seed      uint64
}

func (c LatencyConfig) withDefaults() LatencyConfig {
	if c.Networks == 0 {
		c.Networks = 10
	}
	if c.Links == 0 {
		c.Links = 100
	}
	if c.Trials == 0 {
		c.Trials = 5
	}
	if c.Beta == 0 {
		c.Beta = 2.5
	}
	if c.AlohaProb == 0 {
		c.AlohaProb = 0.1
	}
	if c.Seed == 0 {
		c.Seed = 8
	}
	return c
}

// LatencyResult aggregates slot counts per scheduler × model.
type LatencyResult struct {
	// ScheduleLen is the non-fading repeated-capacity schedule length.
	ScheduleLen stats.Running
	// ScheduleRayleigh is the slot count replaying that schedule under
	// Rayleigh fading with the Section-4 repetition factor.
	ScheduleRayleigh stats.Running
	// AlohaNF / AlohaRL are fixed-probability ALOHA slot counts.
	AlohaNF, AlohaRL stats.Running
	// BackoffNF / BackoffRL are adaptive-backoff slot counts.
	BackoffNF, BackoffRL stats.Running
	// Incomplete counts runs that hit their slot budget.
	Incomplete int
	Config     LatencyConfig
}

// RunLatency measures all three latency schedulers in both models.
func RunLatency(cfg LatencyConfig) *LatencyResult {
	res, _ := RunLatencyCtx(context.Background(), cfg)
	return res
}

// RunLatencyCtx is RunLatency with cooperative cancellation; it returns nil
// and ctx.Err() when the context is cancelled before the run completes.
func RunLatencyCtx(ctx context.Context, cfg LatencyConfig) (*LatencyResult, error) {
	cfg = cfg.withDefaults()
	ctx, finish := beginExperiment(ctx, "sim.latency",
		"networks", cfg.Networks, "links", cfg.Links, "trials", cfg.Trials, "seed", cfg.Seed)
	defer finish()
	type netResult struct {
		schedLen, schedRL    stats.Running
		alohaNF, alohaRL     stats.Running
		backoffNF, backoffRL stats.Running
		incomplete           int
	}
	base := rng.New(cfg.Seed)
	perNet, perErr := ParallelCtx(ctx, cfg.Networks, cfg.Workers, base, func(rep int, src *rng.Source) netResult {
		netCfg := network.Figure1Config()
		netCfg.N = cfg.Links
		net, err := network.Random(netCfg, src)
		if err != nil {
			panic(fmt.Sprintf("sim: latency network generation: %v", err))
		}
		m := net.Gains()
		capFn := latency.GreedyCapacity(capacity.LengthOrder(net), capacity.DefaultTau)
		var out netResult
		sched, err := latency.RepeatedCapacity(m, cfg.Beta, capFn)
		if err != nil {
			panic(fmt.Sprintf("sim: latency scheduling: %v", err))
		}
		out.schedLen.Add(float64(len(sched)))
		maxSlots := 4096 * cfg.Links
		for trial := 0; trial < cfg.Trials; trial++ {
			// NewRayleigh carries per-model scratch so the per-slot fading
			// draws allocate nothing; the Split() call sites keep their
			// seed-era positions so fixed-seed outputs are unchanged.
			slots, done := latency.RepeatUntilDone(m, sched, cfg.Beta,
				transform.AlohaRepeats, 10000, latency.NewRayleigh(src.Split(), m.N))
			if done {
				out.schedRL.Add(float64(slots))
			} else {
				out.incomplete++
			}
			a := latency.Aloha(m, cfg.Beta,
				latency.AlohaConfig{Prob: cfg.AlohaProb, MaxSlots: maxSlots},
				src.Split(), latency.NonFading{})
			record(&out.alohaNF, &out.incomplete, a)
			fadeSrc := src.Split()
			b := latency.Aloha(m, cfg.Beta,
				latency.AlohaConfig{Prob: cfg.AlohaProb, Repeats: transform.AlohaRepeats, MaxSlots: maxSlots},
				src.Split(), latency.NewRayleigh(fadeSrc, m.N))
			record(&out.alohaRL, &out.incomplete, b)
			bo := latency.DefaultBackoff
			bo.MaxSlots = maxSlots
			c := latency.BackoffAloha(m, cfg.Beta, bo, src.Split(), latency.NonFading{})
			record(&out.backoffNF, &out.incomplete, c)
			bo.Repeats = transform.AlohaRepeats
			fadeSrc2 := src.Split()
			d := latency.BackoffAloha(m, cfg.Beta, bo, src.Split(), latency.NewRayleigh(fadeSrc2, m.N))
			record(&out.backoffRL, &out.incomplete, d)
		}
		return out
	})
	if perErr != nil {
		return nil, perErr
	}
	res := &LatencyResult{Config: cfg}
	for _, nr := range perNet {
		res.ScheduleLen.Merge(nr.schedLen)
		res.ScheduleRayleigh.Merge(nr.schedRL)
		res.AlohaNF.Merge(nr.alohaNF)
		res.AlohaRL.Merge(nr.alohaRL)
		res.BackoffNF.Merge(nr.backoffNF)
		res.BackoffRL.Merge(nr.backoffRL)
		res.Incomplete += nr.incomplete
	}
	return res, nil
}

func record(acc *stats.Running, incomplete *int, r latency.AlohaResult) {
	if r.Done {
		acc.Add(float64(r.Slots))
	} else {
		*incomplete++
	}
}
