// Package sim is the experiment harness: it reproduces the paper's
// evaluation (Section 7) — Figure 1, Figure 2, and the in-text optimum
// reference — on top of the model and algorithm packages, with deterministic
// seeding and bounded parallelism.
//
// Every experiment follows the same scheme: a config struct with the paper's
// parameters as defaults, a Run function that fans replications out over a
// worker pool (one deterministic RNG stream per replication, so results are
// identical at any parallelism level), and a result type that carries means
// with standard errors and renders itself as CSV, a markdown table, or an
// ASCII chart for terminal inspection.
package sim

import (
	"context"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"

	"rayfade/internal/faults"
	"rayfade/internal/obs"
	"rayfade/internal/progress"
	"rayfade/internal/rng"
)

// tracker, when set, receives replication- and realization-level
// notifications from every experiment in the package. It is process-global
// rather than per-config because one CLI invocation runs one experiment; the
// atomic pointer keeps Parallel's worker goroutines race-free against
// SetProgress.
var tracker atomic.Pointer[progress.Tracker]

// SetProgress installs (or, with nil, removes) the progress tracker observed
// by Parallel and the experiment inner loops. The CLI's -progress flag is
// its only intended caller.
func SetProgress(t *progress.Tracker) {
	tracker.Store(t)
}

// activeTracker returns the installed tracker, or nil. All progress.Tracker
// methods are nil-safe, so call sites never branch.
func activeTracker() *progress.Tracker {
	return tracker.Load()
}

// logger, when set, receives experiment lifecycle records (start, finish,
// parameters, elapsed time). Like the tracker it is process-global: one CLI
// invocation runs one experiment, and the atomic pointer keeps worker
// goroutines race-free against SetLogger.
var logger atomic.Pointer[slog.Logger]

// SetLogger installs (or, with nil, removes) the structured logger observed
// by the experiment harness. The CLIs' -log-level flag is its intended
// caller.
func SetLogger(l *slog.Logger) {
	if l == nil {
		logger.Store(obs.Discard())
		return
	}
	logger.Store(l)
}

// activeLogger returns the installed logger, defaulting to a discard logger
// so call sites log unconditionally.
func activeLogger() *slog.Logger {
	if l := logger.Load(); l != nil {
		return l
	}
	return obs.Discard()
}

// Parallel runs fn for reps replications on up to workers goroutines and
// returns the per-replication results in replication order.
//
// Determinism: the RNG streams are split from base sequentially before any
// goroutine starts, so the result for replication r does not depend on the
// worker count or scheduling. workers ≤ 0 selects GOMAXPROCS.
//
// When a progress tracker is installed via SetProgress, Parallel registers
// reps expected replications up front and reports each completion, giving
// long runs an elapsed/ETA readout at no cost to the replication hot path.
func Parallel[T any](reps, workers int, base *rng.Source, fn func(rep int, src *rng.Source) T) []T {
	results, _ := ParallelCtx(context.Background(), reps, workers, base, fn)
	return results
}

// ParallelCtx is Parallel with cooperative cancellation: when ctx is
// cancelled, no further replications are started and ctx.Err() is returned
// alongside the partial results (already-running replications finish — fn is
// never interrupted mid-flight, so each results[r] is either complete or the
// zero value). A nil error means every replication ran.
//
// Cancellation granularity is one replication. Experiments whose single
// replications are long pass ctx into their inner scheduler loops as well
// (see capacity and latency's Ctx variants).
func ParallelCtx[T any](ctx context.Context, reps, workers int, base *rng.Source, fn func(rep int, src *rng.Source) T) ([]T, error) {
	if reps < 0 {
		panic(fmt.Sprintf("sim: negative replication count %d", reps))
	}
	return parallelRange(ctx, 0, reps, workers, base.SplitN(reps), fn)
}

// ParallelShardCtx runs only the replication indices [lo, hi) of a reps-wide
// index space, returning their results with results[i] holding replication
// lo+i. The RNG streams for the FULL index space are split from base exactly
// as ParallelCtx would split them, so the result for replication r is
// bit-identical to what a full run computes for r — the property that lets a
// cluster of workers each compute a shard and a coordinator merge the shards
// into an artifact byte-identical to a single-node run.
func ParallelShardCtx[T any](ctx context.Context, reps, lo, hi, workers int, base *rng.Source, fn func(rep int, src *rng.Source) T) ([]T, error) {
	if reps < 0 {
		panic(fmt.Sprintf("sim: negative replication count %d", reps))
	}
	if lo < 0 || hi > reps || lo > hi {
		return nil, fmt.Errorf("sim: shard range [%d,%d) outside [0,%d)", lo, hi, reps)
	}
	return parallelRange(ctx, lo, hi, workers, base.SplitN(reps), fn)
}

// parallelRange is the shared fan-out behind ParallelCtx (lo=0, hi=reps) and
// ParallelShardCtx: it runs the global replication indices [lo, hi) against
// the pre-split per-replication streams srcs (indexed by global replication)
// and stores results[r-lo].
func parallelRange[T any](ctx context.Context, lo, hi, workers int, srcs []*rng.Source, fn func(rep int, src *rng.Source) T) ([]T, error) {
	n := hi - lo
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	if n == 0 {
		return results, ctx.Err()
	}
	t := activeTracker()
	t.AddTotal(n)
	// The fan-out is one phase span; each replication is a detached span (its
	// own trace track — concurrent siblings must not share a track, see
	// obs.StartDetached). When no tracer is installed all of this is free.
	ctx, fanSpan := obs.Start(ctx, "parallel.fanout")
	fanSpan.SetAttr("reps", n)
	fanSpan.SetAttr("workers", workers)
	if lo > 0 || hi < len(srcs) {
		fanSpan.SetAttr("shard_lo", lo)
		fanSpan.SetAttr("shard_hi", hi)
	}
	defer fanSpan.End()
	runOne := func(r int, src *rng.Source) T {
		_, sp := obs.StartDetached(ctx, "replication")
		sp.SetAttr("rep", r)
		// Chaos hook: a replication body has no error channel, so an injected
		// transient error escalates to a panic here, same as an injected
		// panic — the process-killing crash that checkpoint/resume exists to
		// survive. With no injector installed this is one atomic load.
		if err := faults.Inject(faults.SiteReplication); err != nil {
			panic(err)
		}
		out := fn(r, src)
		sp.End()
		return out
	}
	if workers <= 1 {
		for r := lo; r < hi; r++ {
			if err := ctx.Err(); err != nil {
				return results, err
			}
			results[r-lo] = runOne(r, srcs[r])
			t.ReplicationDone()
		}
		return results, nil
	}
	// Workers claim replication indices with a lock-free fetch-add instead of
	// receiving them from a dispatcher goroutine. The previous unbuffered
	// job channel forced a two-way scheduler rendezvous per replication
	// (worker wakes dispatcher, dispatcher wakes worker), which serialized
	// dispatch and flattened scaling once replication bodies got cheap; a
	// fetch-add claim is a single uncontended cache-line bump. Cancellation
	// is polled before each claim, preserving the "no further replications
	// are started" contract at the same granularity as before.
	var (
		wg   sync.WaitGroup
		next atomic.Int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				r := lo + int(next.Add(1)) - 1
				if r >= hi {
					return
				}
				results[r-lo] = runOne(r, srcs[r])
				t.ReplicationDone()
			}
		}()
	}
	wg.Wait()
	return results, ctx.Err()
}
