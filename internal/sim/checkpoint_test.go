package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"rayfade/internal/faults"
	"rayfade/internal/leakcheck"
	"rayfade/internal/rng"
)

func intCodec() (func(int) ([]byte, error), func([]byte) (int, error)) {
	enc := func(v int) ([]byte, error) { return json.Marshal(v) }
	dec := func(data []byte) (int, error) {
		var v int
		err := json.Unmarshal(data, &v)
		return v, err
	}
	return enc, dec
}

func TestParallelCheckpointCtxResumes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	cfg := struct{ Label string }{"resume-test"}
	const reps = 8
	enc, dec := intCodec()
	fn := func(rep int, src *rng.Source) int { return rep*100 + int(src.Float64()*10) }

	// Reference: uninterrupted, no checkpoint.
	base := rng.New(3)
	want, err := ParallelCheckpointCtx(context.Background(), reps, 1, base, nil, enc, dec, fn)
	if err != nil {
		t.Fatal(err)
	}

	// First run: cancel after three completions.
	ck, err := OpenCheckpoint(path, "test", cfg, reps, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var completions atomic.Int64
	_, err = ParallelCheckpointCtx(ctx, reps, 1, rng.New(3), ck, enc, dec, func(rep int, src *rng.Source) int {
		out := fn(rep, src)
		if completions.Add(1) == 3 {
			cancel()
		}
		return out
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run err = %v, want context.Canceled", err)
	}
	done := ck.Done()
	if done == 0 || done >= reps {
		t.Fatalf("checkpoint holds %d/%d reps; wanted a genuine partial", done, reps)
	}

	// Resume: a fresh Checkpoint from the same path must restore the partial
	// progress, recompute only the rest, and match the reference exactly.
	ck2, err := OpenCheckpoint(path, "test", cfg, reps, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ck2.Restored() != done {
		t.Fatalf("Restored = %d, want %d", ck2.Restored(), done)
	}
	var recomputed atomic.Int64
	got, err := ParallelCheckpointCtx(context.Background(), reps, 3, rng.New(3), ck2, enc, dec, func(rep int, src *rng.Source) int {
		recomputed.Add(1)
		return fn(rep, src)
	})
	if err != nil {
		t.Fatal(err)
	}
	if int(recomputed.Load()) != reps-done {
		t.Fatalf("resume recomputed %d reps, want %d", recomputed.Load(), reps-done)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rep %d: resumed %d != uninterrupted %d", i, got[i], want[i])
		}
	}
	if ck2.Done() != reps {
		t.Fatalf("final checkpoint holds %d/%d", ck2.Done(), reps)
	}
}

func TestParallelCheckpointCtxNilCheckpoint(t *testing.T) {
	enc, dec := intCodec()
	got, err := ParallelCheckpointCtx(context.Background(), 4, 2, rng.New(1), nil, enc, dec,
		func(rep int, src *rng.Source) int { return rep })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestParallelCheckpointCtxRepsMismatch(t *testing.T) {
	ck, err := OpenCheckpoint(filepath.Join(t.TempDir(), "ck.json"), "test", 1, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	enc, dec := intCodec()
	if _, err := ParallelCheckpointCtx(context.Background(), 5, 1, rng.New(1), ck, enc, dec,
		func(rep int, src *rng.Source) int { return rep }); err == nil {
		t.Fatal("want error for reps mismatch between Open and run")
	}
}

func TestOpenCheckpointRejectsMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	ck, err := OpenCheckpoint(path, "figure1", struct{ Seed int }{1}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.record(0, json.RawMessage(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name       string
		experiment string
		config     any
		reps       int
	}{
		{"config", "figure1", struct{ Seed int }{2}, 4},
		{"experiment", "figure2", struct{ Seed int }{1}, 4},
		{"reps", "figure1", struct{ Seed int }{1}, 5},
	}
	for _, tc := range cases {
		_, err := OpenCheckpoint(path, tc.experiment, tc.config, tc.reps, 1)
		if !errors.Is(err, ErrCheckpointMismatch) {
			t.Errorf("%s change: err = %v, want ErrCheckpointMismatch", tc.name, err)
		}
	}

	// Matching identity still opens.
	ck2, err := OpenCheckpoint(path, "figure1", struct{ Seed int }{1}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ck2.Restored() != 1 {
		t.Fatalf("Restored = %d, want 1", ck2.Restored())
	}
}

func TestOpenCheckpointRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	ck, err := OpenCheckpoint(path, "figure1", 1, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.record(0, json.RawMessage(`42`)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Flip a byte inside the body payload: checksum must catch it.
	tampered := bytes.Replace(raw, []byte(`"reps":2`), []byte(`"reps":3`), 1)
	if bytes.Equal(tampered, raw) {
		t.Fatal("test setup: tamper target not found")
	}
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCheckpoint(path, "figure1", 1, 2, 1); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("tampered body: err = %v, want ErrCheckpointCorrupt", err)
	}

	// Outright garbage.
	if err := os.WriteFile(path, []byte("not json at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCheckpoint(path, "figure1", 1, 2, 1); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("garbage file: err = %v, want ErrCheckpointCorrupt", err)
	}
}

func TestCheckpointFlushFailureSurfacesButRunCompletes(t *testing.T) {
	inj, err := faults.Parse("fsio.write=error:1")
	if err != nil {
		t.Fatal(err)
	}
	faults.SetDefault(inj)
	defer faults.SetDefault(nil)

	ck, err := OpenCheckpoint(filepath.Join(t.TempDir(), "ck.json"), "test", 1, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	enc, dec := intCodec()
	got, err := ParallelCheckpointCtx(context.Background(), 4, 1, rng.New(1), ck, enc, dec,
		func(rep int, src *rng.Source) int { return rep + 10 })
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("err = %v, want injected write failure", err)
	}
	// The results themselves are intact — only persistence failed.
	for i, v := range got {
		if v != i+10 {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

// TestFigure1KillResumeByteIdentical is the in-process half of the
// kill/resume acceptance criterion: a Figure-1 run interrupted mid-way
// (here by context cancellation while a delay fault keeps replications
// slow) and resumed from its checkpoint must render byte-identical CSV to
// an uninterrupted fixed-seed run. The true-SIGKILL variant lives in
// cmd/raysched's tests.
func TestFigure1KillResumeByteIdentical(t *testing.T) {
	cfg := smallFig1()
	cfg.Networks = 6
	cfg.Workers = 1

	render := func(res *Figure1Result) []byte {
		var buf bytes.Buffer
		if err := WriteSeriesCSV(&buf, "p", res.Probs, res.CurveNames(), res.Curves); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	want := render(RunFigure1(cfg))

	// Interrupted run: every replication is slowed by an injected delay, and
	// a watcher cancels the context as soon as the first checkpoint flush
	// lands — guaranteeing the run dies with a genuine partial on disk.
	path := filepath.Join(t.TempDir(), "fig1.ck.json")
	ckCfg := cfg
	ckCfg.Checkpoint = path
	inj, err := faults.Parse("sim.replication=delay:1:30ms")
	if err != nil {
		t.Fatal(err)
	}
	faults.SetDefault(inj)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		for {
			if _, err := os.Stat(path); err == nil {
				cancel()
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	res, runErr := RunFigure1Ctx(ctx, ckCfg)
	faults.SetDefault(nil)
	cancel()
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("interrupted run: res=%v err=%v, want cancellation", res, runErr)
	}
	if res != nil {
		t.Fatal("cancelled run must not return partial results")
	}

	// A probe with a foreign config must be refused (the file is bound to
	// its run), and the file must hold a strict subset of the replications.
	if _, perr := OpenCheckpoint(path, "figure1", 1, cfg.Networks, 1); !errors.Is(perr, ErrCheckpointMismatch) {
		t.Fatalf("probe with wrong config: err = %v, want mismatch", perr)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var file checkpointFile
	if err := json.Unmarshal(before, &file); err != nil {
		t.Fatal(err)
	}
	var body checkpointBody
	if err := json.Unmarshal(file.Body, &body); err != nil {
		t.Fatal(err)
	}
	if n := len(body.Results); n == 0 || n >= cfg.Networks {
		t.Fatalf("checkpoint holds %d/%d networks; wanted a genuine partial", n, cfg.Networks)
	}

	// Resume with different parallelism and no faults: byte-identical output.
	ckCfg.Workers = 4
	res2, err := RunFigure1Ctx(context.Background(), ckCfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := render(res2); !bytes.Equal(got, want) {
		t.Fatalf("resumed CSV differs from uninterrupted run\nresumed:\n%s\nwant:\n%s", got, want)
	}
}

// TestParallelCtxCancelMidReplication is the satellite coverage item: a
// cancellation that lands while replications are in flight must (a) return
// ctx.Err, (b) never report a completed experiment, (c) leave untouched
// result slots at the zero value, and (d) let every worker exit cleanly —
// run under -race in CI, with the shared leak-check helper watching (d).
func TestParallelCtxCancelMidReplication(t *testing.T) {
	leakcheck.Check(t)
	const reps, workers = 32, 4
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started atomic.Int64
	release := make(chan struct{})
	results, err := ParallelCtx(ctx, reps, workers, rng.New(1), func(rep int, src *rng.Source) string {
		if started.Add(1) == workers {
			// All workers are now mid-replication; cancel and let them finish
			// their current rep only.
			cancel()
			close(release)
		}
		<-release
		return "done-" + strconv.Itoa(rep)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	completed := 0
	for r, v := range results {
		switch v {
		case "":
			// Untouched slot: this replication never started. Fine.
		case "done-" + strconv.Itoa(r):
			completed++
		default:
			t.Fatalf("slot %d holds foreign result %q", r, v)
		}
	}
	if completed == 0 {
		t.Fatal("expected the in-flight replications to finish")
	}
	if completed == reps {
		t.Fatal("cancellation did not actually interrupt the run")
	}
}

func TestRunFigure1CancelledReturnsNil(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunFigure1Ctx(ctx, smallFig1())
	if res != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("res=%v err=%v, want nil + context.Canceled", res, err)
	}
}
