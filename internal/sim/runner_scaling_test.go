package sim

import (
	"context"
	"math"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"rayfade/internal/rng"
)

// spin is a CPU-bound replication body: pure arithmetic, no allocation, no
// blocking, so wall-clock across worker counts measures the fan-out itself.
func spin(iters int, src *rng.Source) float64 {
	x := src.Float64()
	for k := 0; k < iters; k++ {
		x = math.Sqrt(x*x + 1)
	}
	return x
}

// timeParallel runs reps CPU-bound replications at the given width and
// returns the wall-clock time.
func timeParallel(reps, workers, iters int) time.Duration {
	start := time.Now()
	Parallel(reps, workers, rng.New(99), func(rep int, src *rng.Source) float64 {
		return spin(iters, src)
	})
	return time.Since(start)
}

// TestParallelCtxSpeedup pins the tentpole fix: on a machine with at least 4
// hardware threads, 4 workers must beat 1 worker by at least 2x on a
// CPU-bound body. The previous unbuffered-channel dispatcher throttled
// exactly this shape of load. Run under -race in CI, the test doubles as a
// data-race check on the claim counter and result slots.
func TestParallelCtxSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test skipped in -short mode")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need at least 4 CPUs for a scaling assertion, have %d", runtime.NumCPU())
	}
	const (
		reps  = 64
		iters = 400_000
	)
	// Warm up the scheduler and any lazily-started runtime threads.
	timeParallel(8, 4, iters/10)
	serial := timeParallel(reps, 1, iters)
	wide := timeParallel(reps, 4, iters)
	speedup := float64(serial) / float64(wide)
	t.Logf("workers=1: %v  workers=4: %v  speedup %.2fx", serial, wide, speedup)
	if speedup < 2 {
		t.Fatalf("4 workers only %.2fx over 1 worker; want at least 2x", speedup)
	}
}

// TestParallelCtxWorkerInvariance pins the determinism contract of the
// atomic-claim fan-out at the runner level: per-replication RNG streams are
// pre-split, so the result vector is bit-identical at every width, including
// widths above both the replication count and the machine's core count.
func TestParallelCtxWorkerInvariance(t *testing.T) {
	body := func(rep int, src *rng.Source) float64 {
		sum := 0.0
		for k := 0; k < 100; k++ {
			sum += src.Float64() * float64(rep+1)
		}
		return sum
	}
	const reps = 37
	want := Parallel(reps, 1, rng.New(7), body)
	for _, workers := range []int{2, 3, 8, 64, 0} {
		got, err := ParallelCtx(context.Background(), reps, workers, rng.New(7), body)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for r := range want {
			if want[r] != got[r] {
				t.Fatalf("workers=%d rep %d: %g, want %g", workers, r, got[r], want[r])
			}
		}
	}
}

// TestParallelCtxCancellationStopsClaims verifies the atomic-claim loop still
// honors the "no further replications are started" contract: with a cancelled
// context, no body runs at all.
func TestParallelCtxCancellationStopsClaims(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	results, err := ParallelCtx(ctx, 16, 4, rng.New(1), func(rep int, src *rng.Source) int {
		ran.Add(1)
		return rep
	})
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if n := ran.Load(); n != 0 {
		t.Fatalf("%d replications ran after cancellation", n)
	}
	if len(results) != 16 {
		t.Fatalf("result slice length %d, want 16", len(results))
	}
}
