package sim

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"

	"rayfade/internal/fading"
	"rayfade/internal/network"
	"rayfade/internal/obs"
	"rayfade/internal/rng"
	"rayfade/internal/stats"
)

// Figure1Config parameterizes the Figure-1 experiment: the number of
// successful transmissions as a function of a common transmission
// probability, under {uniform, square-root} power × {non-fading, Rayleigh}
// model. Zero values default to the paper's settings.
type Figure1Config struct {
	Networks      int       // random networks to average over (paper: 40)
	Links         int       // links per network (paper: 100)
	TransmitSeeds int       // transmit-set draws per network & probability (paper: 25)
	FadingSeeds   int       // fading draws per transmit set (paper: 10)
	Probs         []float64 // transmission probability grid
	Beta          float64   // SINR threshold (paper: 2.5)
	Alpha         float64   // path-loss exponent (paper: 2.2)
	Noise         float64   // ambient noise (paper: 4e-7)
	DMin, DMax    float64   // link length range (paper: [20,40])
	Side          float64   // deployment square side (paper: 1000)
	Power         float64   // uniform power / sqrt scale (paper: 2)
	Workers       int       // parallel workers (≤0: GOMAXPROCS)
	Seed          uint64    // master seed
	// Topology selects the receiver deployment: "uniform" (the paper's
	// generator, default) or "cluster" (Thomas-process-like clusters) — a
	// robustness variant probing whether the Figure-1 shape depends on
	// uniform placement.
	Topology string
	// Checkpoint, when non-empty, is a file path where completed
	// per-network replications are persisted (crash-safe, atomic); an
	// existing compatible checkpoint resumes the run from whatever it
	// holds. It does not influence the computed results — a resumed run is
	// byte-identical to an uninterrupted one.
	Checkpoint string
	// CheckpointEvery is the flush interval in completed replications
	// (≤0: after every replication).
	CheckpointEvery int
}

// withDefaults fills zero fields with the paper's parameters.
func (c Figure1Config) withDefaults() Figure1Config {
	if c.Networks == 0 {
		c.Networks = 40
	}
	if c.Links == 0 {
		c.Links = 100
	}
	if c.TransmitSeeds == 0 {
		c.TransmitSeeds = 25
	}
	if c.FadingSeeds == 0 {
		c.FadingSeeds = 10
	}
	if len(c.Probs) == 0 {
		c.Probs = stats.Linspace(0.05, 1.0, 20)
	}
	if c.Beta == 0 {
		c.Beta = 2.5
	}
	if c.Alpha == 0 {
		c.Alpha = 2.2
	}
	if c.Noise == 0 {
		c.Noise = 4e-7
	}
	if c.DMin == 0 && c.DMax == 0 {
		c.DMin, c.DMax = 20, 40
	}
	if c.Side == 0 {
		c.Side = 1000
	}
	if c.Power == 0 {
		c.Power = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Topology == "" {
		c.Topology = "uniform"
	}
	return c
}

// drawNetwork realizes one network of the configured topology.
func (c Figure1Config) drawNetwork(src *rng.Source) (*network.Network, error) {
	base := network.Config{
		N:     c.Links,
		Area:  squareArea(c.Side),
		DMin:  c.DMin,
		DMax:  c.DMax,
		Alpha: c.Alpha,
		Noise: c.Noise,
	}
	switch c.Topology {
	case "uniform":
		return network.Random(base, src)
	case "cluster":
		// Clusters of ~20 receivers with a spread comparable to a few
		// link lengths: locally dense, globally sparse.
		clusters := c.Links / 20
		if clusters < 2 {
			clusters = 2
		}
		perChild := (c.Links + clusters - 1) / clusters
		net, err := network.RandomClustered(network.ClusterConfig{
			Clusters: clusters,
			PerChild: perChild,
			Spread:   2 * c.DMax,
			Base:     base,
		}, src)
		if err != nil {
			return nil, err
		}
		// Rounding may overshoot; trim to the requested link count so the
		// curves stay comparable across topologies.
		net.Links = net.Links[:c.Links]
		return net, nil
	default:
		return nil, fmt.Errorf("sim: unknown topology %q (want uniform or cluster)", c.Topology)
	}
}

// Figure-1 curve identifiers, matching the four curves of the paper's plot.
const (
	CurveUniformNonFading = "uniform/non-fading"
	CurveUniformRayleigh  = "uniform/rayleigh"
	CurveSqrtNonFading    = "sqrt/non-fading"
	CurveSqrtRayleigh     = "sqrt/rayleigh"
)

// ExperimentFigure1 is the experiment name Figure-1 checkpoints and shards
// carry; a coordinator and its workers must agree on it.
const ExperimentFigure1 = "figure1"

// identityKey returns the determinism-relevant subset of the config — the
// checkpoint/shard identity. Execution knobs (Workers, the checkpoint path)
// are deliberately excluded so a resume or a re-shard may change them.
// Callers pass a defaults-applied config, so equal effective runs hash
// equally however sparsely they were specified.
func (c Figure1Config) identityKey() any {
	return struct {
		Networks, Links, TransmitSeeds, FadingSeeds int
		Probs                                       []float64
		Beta, Alpha, Noise, DMin, DMax, Side, Power float64
		Seed                                        uint64
		Topology                                    string
	}{c.Networks, c.Links, c.TransmitSeeds, c.FadingSeeds, c.Probs,
		c.Beta, c.Alpha, c.Noise, c.DMin, c.DMax, c.Side, c.Power,
		c.Seed, c.Topology}
}

// Figure1ConfigSHA returns the run-identity hash of cfg — the value a
// coordinator checks shard documents against and stores in the merged
// checkpoint. Defaults are applied first, matching what workers compute.
func Figure1ConfigSHA(cfg Figure1Config) (string, error) {
	return ConfigHash(cfg.withDefaults().identityKey())
}

// Figure1Result carries the four success curves over the probability grid.
type Figure1Result struct {
	Probs  []float64
	Curves map[string]*stats.Series
	Config Figure1Config
}

// netResult is one replication's contribution: the four per-probability
// curves measured on a single random network.
type netResult struct {
	curves map[string]*stats.Series
}

// figure1Codec returns the encode/decode pair that round-trips a netResult
// through JSON exactly (float64 survives encoding/json bit-for-bit) — the
// representation shared by checkpoints and shard documents.
func figure1Codec() (func(netResult) ([]byte, error), func([]byte) (netResult, error)) {
	encode := func(nr netResult) ([]byte, error) { return json.Marshal(nr.curves) }
	decode := func(data []byte) (netResult, error) {
		var curves map[string]*stats.Series
		if err := json.Unmarshal(data, &curves); err != nil {
			return netResult{}, err
		}
		return netResult{curves: curves}, nil
	}
	return encode, decode
}

// replicationBody returns the Figure-1 per-network replication function,
// shared verbatim by the full run, checkpoint resume, and shard execution —
// one body, so the three paths cannot drift apart. The receiver must be
// defaults-applied.
func (cfg Figure1Config) replicationBody() func(rep int, src *rng.Source) netResult {
	// Fixed order: iterating a map here would consume the replication's
	// RNG stream in a map-iteration-dependent order and break determinism.
	powers := []struct {
		name string
		pa   network.PowerAssignment
	}{
		{"uniform", network.UniformPower{P: cfg.Power}},
		{"sqrt", network.SquareRootPower{Scale: cfg.Power, Alpha: cfg.Alpha}},
	}
	return func(rep int, src *rng.Source) netResult {
		out := netResult{curves: map[string]*stats.Series{
			CurveUniformNonFading: stats.NewSeries(cfg.Probs),
			CurveUniformRayleigh:  stats.NewSeries(cfg.Probs),
			CurveSqrtNonFading:    stats.NewSeries(cfg.Probs),
			CurveSqrtRayleigh:     stats.NewSeries(cfg.Probs),
		}}
		net, err := cfg.drawNetwork(src)
		if err != nil {
			panic(fmt.Sprintf("sim: figure 1 network generation: %v", err))
		}
		// One set of scratch buffers per replication: the kernels below are
		// allocation-free, so the inner loops touch the heap not at all.
		active := make([]bool, cfg.Links)
		vals := make([]float64, cfg.Links)
		idx := make([]int, 0, cfg.Links)
		for _, pw := range powers {
			m := net.Clone().ApplyPower(pw.pa).Gains()
			nfKey, rlKey := pw.name+"/non-fading", pw.name+"/rayleigh"
			for pi, p := range cfg.Probs {
				q := fading.UniformProbs(m.N, p)
				for ts := 0; ts < cfg.TransmitSeeds; ts++ {
					for i := range active {
						active[i] = src.Bernoulli(q[i])
					}
					nf := countNonFadingInto(m, active, cfg.Beta, vals)
					out.curves[nfKey].Observe(pi, float64(nf))
					for fs := 0; fs < cfg.FadingSeeds; fs++ {
						rl := fading.CountSuccesses(m, active, cfg.Beta, src, vals, idx)
						out.curves[rlKey].Observe(pi, float64(rl))
					}
					tickRealizations(cfg.FadingSeeds)
				}
			}
		}
		return out
	}
}

// RunFigure1 reproduces Figure 1: for each random network, each power
// assignment, and each transmission probability, it draws transmit sets and
// counts successes in the non-fading model (per transmit seed) and in the
// Rayleigh model (per transmit seed × fading seed).
func RunFigure1(cfg Figure1Config) *Figure1Result {
	res, _ := RunFigure1Ctx(context.Background(), cfg)
	return res
}

// RunFigure1ShardCtx computes only replications [lo, hi) of the Figure-1
// experiment and returns them in the shard wire format. The per-replication
// RNG streams are split exactly as RunFigure1Ctx splits them, so shard
// results are bit-identical to the corresponding slice of a single-node run;
// a coordinator merges shards covering [0, Networks) into a checkpoint the
// single-node pipeline replays byte-identically. Worker parallelism within
// the shard follows cfg.Workers.
func RunFigure1ShardCtx(ctx context.Context, cfg Figure1Config, lo, hi int) (*Shard, error) {
	cfg = cfg.withDefaults()
	if lo < 0 || hi > cfg.Networks || lo >= hi {
		return nil, fmt.Errorf("sim: figure 1 shard range [%d,%d) outside [0,%d)", lo, hi, cfg.Networks)
	}
	sha, err := ConfigHash(cfg.identityKey())
	if err != nil {
		return nil, err
	}
	ctx, finish := beginExperiment(ctx, "sim.figure1.shard",
		"lo", lo, "hi", hi, "networks", cfg.Networks, "links", cfg.Links,
		"topology", cfg.Topology, "seed", cfg.Seed)
	defer finish()
	out, err := ParallelShardCtx(ctx, cfg.Networks, lo, hi, cfg.Workers, rng.New(cfg.Seed), cfg.replicationBody())
	if err != nil {
		return nil, err
	}
	encode, _ := figure1Codec()
	results := make(map[int]json.RawMessage, hi-lo)
	for i, nr := range out {
		data, err := encode(nr)
		if err != nil {
			return nil, fmt.Errorf("sim: encode shard replication %d: %w", lo+i, err)
		}
		results[lo+i] = data
	}
	return &Shard{
		Experiment: ExperimentFigure1,
		ConfigSHA:  sha,
		Reps:       cfg.Networks,
		Lo:         lo,
		Hi:         hi,
		Results:    results,
	}, nil
}

// RunFigure1Ctx is RunFigure1 with cooperative cancellation; it returns nil
// and ctx.Err() when the context is cancelled before the run completes.
func RunFigure1Ctx(ctx context.Context, cfg Figure1Config) (*Figure1Result, error) {
	cfg = cfg.withDefaults()
	ctx, finish := beginExperiment(ctx, "sim.figure1",
		"networks", cfg.Networks, "links", cfg.Links, "topology", cfg.Topology,
		"transmit_seeds", cfg.TransmitSeeds, "fading_seeds", cfg.FadingSeeds, "seed", cfg.Seed)
	defer finish()
	var ck *Checkpoint
	if cfg.Checkpoint != "" {
		var err error
		ck, err = OpenCheckpoint(cfg.Checkpoint, ExperimentFigure1, cfg.identityKey(), cfg.Networks, cfg.CheckpointEvery)
		if err != nil {
			return nil, err
		}
		if n := ck.Restored(); n > 0 {
			activeLogger().Info("sim.figure1 resuming from checkpoint",
				"path", cfg.Checkpoint, "restored", n, "total", cfg.Networks)
		}
	}
	encode, decode := figure1Codec()
	base := rng.New(cfg.Seed)
	perNet, perErr := ParallelCheckpointCtx(ctx, cfg.Networks, cfg.Workers, base, ck, encode, decode, cfg.replicationBody())
	if perErr != nil {
		return nil, perErr
	}

	_, mergeSpan := obs.Start(ctx, "merge")
	res := &Figure1Result{Probs: cfg.Probs, Config: cfg, Curves: map[string]*stats.Series{
		CurveUniformNonFading: stats.NewSeries(cfg.Probs),
		CurveUniformRayleigh:  stats.NewSeries(cfg.Probs),
		CurveSqrtNonFading:    stats.NewSeries(cfg.Probs),
		CurveSqrtRayleigh:     stats.NewSeries(cfg.Probs),
	}}
	for _, nr := range perNet {
		for key, series := range nr.curves {
			res.Curves[key].Merge(series)
		}
	}
	mergeSpan.End()
	return res, nil
}

// CurveNames returns the curve keys in stable presentation order.
func (r *Figure1Result) CurveNames() []string {
	names := make([]string, 0, len(r.Curves))
	for k := range r.Curves {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Peak returns, for a curve, the probability with the highest mean success
// count and that mean. It errors on an unknown curve name and on a curve
// with no observations (where ArgmaxMean has no well-defined index).
func (r *Figure1Result) Peak(curve string) (prob, mean float64, err error) {
	s, ok := r.Curves[curve]
	if !ok {
		return 0, 0, fmt.Errorf("sim: unknown curve %q", curve)
	}
	i := s.ArgmaxMean()
	if i < 0 {
		return 0, 0, fmt.Errorf("sim: curve %q has no observations", curve)
	}
	return r.Probs[i], s.Acc[i].Mean(), nil
}
