package sim

import (
	"context"
	"fmt"

	"rayfade/internal/capacity"
	"rayfade/internal/network"
	"rayfade/internal/obs"
	"rayfade/internal/regret"
	"rayfade/internal/rng"
	"rayfade/internal/stats"
)

// Figure2Config parameterizes the Figure-2 experiment: per-round successful
// transmissions under no-regret (RWM) learning, in both interference models.
// Zero values default to the paper's settings.
type Figure2Config struct {
	Networks int     // random networks to average over
	Links    int     // links per network (paper: 200)
	Rounds   int     // learning rounds (paper shows ~100)
	Beta     float64 // SINR threshold (paper: 0.5)
	Alpha    float64 // path-loss exponent (paper: 2.1)
	Noise    float64 // ambient noise (paper: 0) — kept explicit, no default override
	DMin     float64 // minimum link length (paper: 0, open bound)
	DMax     float64 // maximum link length (paper: 100)
	Side     float64 // deployment square side (paper: 1000)
	Power    float64 // uniform power (paper: 2)
	Workers  int     // parallel workers (≤0: GOMAXPROCS)
	Seed     uint64  // master seed
	// Learner selects the online algorithm: "rwm" (paper's full-information
	// Randomized Weighted Majority, the default) or "exp3" (bandit
	// feedback). Exp3Gamma sets the exploration rate (default 0.1).
	Learner   string
	Exp3Gamma float64
}

func (c Figure2Config) withDefaults() Figure2Config {
	if c.Networks == 0 {
		c.Networks = 10
	}
	if c.Links == 0 {
		c.Links = 200
	}
	if c.Rounds == 0 {
		c.Rounds = 100
	}
	if c.Beta == 0 {
		c.Beta = 0.5
	}
	if c.Alpha == 0 {
		c.Alpha = 2.1
	}
	if c.DMax == 0 {
		c.DMax = 100
	}
	if c.Side == 0 {
		c.Side = 1000
	}
	if c.Power == 0 {
		c.Power = 2
	}
	if c.Seed == 0 {
		c.Seed = 2
	}
	if c.Learner == "" {
		c.Learner = "rwm"
	}
	if c.Exp3Gamma == 0 {
		c.Exp3Gamma = 0.1
	}
	return c
}

// newGame builds a game with the configured learner family.
func (c Figure2Config) newGame(m *network.Matrix, model regret.Model, src *rng.Source) *regret.Game {
	switch c.Learner {
	case "rwm":
		return regret.NewGame(m, c.Beta, model, src)
	case "exp3":
		learners := make([]regret.Learner, m.N)
		for i := range learners {
			learners[i] = regret.NewExp3(c.Exp3Gamma)
		}
		return regret.NewGameWithLearners(m, c.Beta, model, learners, src)
	default:
		panic(fmt.Sprintf("sim: unknown learner %q (want rwm or exp3)", c.Learner))
	}
}

// Figure2Result carries the two per-round success series plus reference
// levels: the greedy non-fading capacity (a lower bound on the optimum) and
// the measured maximum average regret.
type Figure2Result struct {
	Rounds      []float64
	NonFading   *stats.Series
	Rayleigh    *stats.Series
	GreedyRef   stats.Running // greedy capacity per network
	RegretNF    stats.Running // max average regret per network, non-fading
	RegretRL    stats.Running // max average regret per network, Rayleigh
	ConvergedNF stats.Running // trailing-half average successes, non-fading
	ConvergedRL stats.Running // trailing-half average successes, Rayleigh
	// FinalSendProbNF/RL are the population-mean send probabilities at the
	// last round — they show the learners splitting into persistent
	// senders and silenced links.
	FinalSendProbNF stats.Running
	FinalSendProbRL stats.Running
	Config          Figure2Config
	Lemma5NF        []regret.Lemma5Stats
	Lemma5RL        []regret.Lemma5Stats
}

// RunFigure2 reproduces Figure 2: on each random network, n RWM learners
// play for the configured number of rounds in the non-fading model and —
// with independent randomness — in the Rayleigh model; the per-round
// success counts are averaged across networks.
func RunFigure2(cfg Figure2Config) *Figure2Result {
	res, _ := RunFigure2Ctx(context.Background(), cfg)
	return res
}

// RunFigure2Ctx is RunFigure2 with cooperative cancellation; it returns nil
// and ctx.Err() when the context is cancelled before the run completes.
func RunFigure2Ctx(ctx context.Context, cfg Figure2Config) (*Figure2Result, error) {
	cfg = cfg.withDefaults()
	ctx, finish := beginExperiment(ctx, "sim.figure2",
		"networks", cfg.Networks, "links", cfg.Links, "rounds", cfg.Rounds,
		"learner", cfg.Learner, "seed", cfg.Seed)
	defer finish()
	rounds := make([]float64, cfg.Rounds)
	for t := range rounds {
		rounds[t] = float64(t + 1)
	}

	type netResult struct {
		nf, rl     *stats.Series
		greedy     float64
		regNF      float64
		regRL      float64
		convNF     float64
		convRL     float64
		sendNF     float64
		sendRL     float64
		l5NF, l5RL regret.Lemma5Stats
	}
	base := rng.New(cfg.Seed)
	perNet, perErr := ParallelCtx(ctx, cfg.Networks, cfg.Workers, base, func(rep int, src *rng.Source) netResult {
		netCfg := network.Config{
			N:     cfg.Links,
			Area:  squareArea(cfg.Side),
			DMin:  cfg.DMin,
			DMax:  cfg.DMax,
			Alpha: cfg.Alpha,
			Noise: cfg.Noise,
			Power: network.UniformPower{P: cfg.Power},
		}
		net, err := network.Random(netCfg, src)
		if err != nil {
			panic(fmt.Sprintf("sim: figure 2 network generation: %v", err))
		}
		m := net.Gains()
		out := netResult{
			nf:     stats.NewSeries(rounds),
			rl:     stats.NewSeries(rounds),
			greedy: float64(len(capacity.GreedyUniform(net, cfg.Beta))),
		}
		histNF := cfg.newGame(m, regret.NonFading, src.Split()).Run(cfg.Rounds)
		histRL := cfg.newGame(m, regret.Rayleigh, src.Split()).Run(cfg.Rounds)
		tickRealizations(cfg.Rounds) // one Rayleigh realization per learning round
		for t, s := range histNF.SuccessSeries() {
			out.nf.Observe(t, float64(s))
		}
		for t, s := range histRL.SuccessSeries() {
			out.rl.Observe(t, float64(s))
		}
		out.regNF = histNF.MaxAverageRegret()
		out.regRL = histRL.MaxAverageRegret()
		out.convNF = histNF.AverageSuccesses(cfg.Rounds / 2)
		out.convRL = histRL.AverageSuccesses(cfg.Rounds / 2)
		out.l5NF = histNF.Lemma5()
		out.l5RL = histRL.Lemma5()
		out.sendNF = histNF.Rounds[len(histNF.Rounds)-1].AvgSendProb
		out.sendRL = histRL.Rounds[len(histRL.Rounds)-1].AvgSendProb
		return out
	})
	if perErr != nil {
		return nil, perErr
	}

	_, mergeSpan := obs.Start(ctx, "merge")
	defer mergeSpan.End()
	res := &Figure2Result{
		Rounds:    rounds,
		NonFading: stats.NewSeries(rounds),
		Rayleigh:  stats.NewSeries(rounds),
		Config:    cfg,
	}
	for _, nr := range perNet {
		res.NonFading.Merge(nr.nf)
		res.Rayleigh.Merge(nr.rl)
		res.GreedyRef.Add(nr.greedy)
		res.RegretNF.Add(nr.regNF)
		res.RegretRL.Add(nr.regRL)
		res.ConvergedNF.Add(nr.convNF)
		res.ConvergedRL.Add(nr.convRL)
		res.FinalSendProbNF.Add(nr.sendNF)
		res.FinalSendProbRL.Add(nr.sendRL)
		res.Lemma5NF = append(res.Lemma5NF, nr.l5NF)
		res.Lemma5RL = append(res.Lemma5RL, nr.l5RL)
	}
	return res, nil
}
