package sim

import (
	"testing"

	"rayfade/internal/fading"
	"rayfade/internal/network"
	"rayfade/internal/rng"
	"rayfade/internal/stats"
)

func TestRunFadingSweepShapes(t *testing.T) {
	cfg := FadingSweepConfig{
		Networks:      3,
		Links:         40,
		TransmitSeeds: 4,
		FadingSeeds:   3,
		Shapes:        []float64{0.5, 1, 4, 16},
		Seed:          11,
	}
	res := RunFadingSweep(cfg)
	if len(res.Shapes) != 4 || len(res.PerShape.Acc) != 4 {
		t.Fatalf("shapes %v", res.Shapes)
	}
	wantSamples := 3 * 4 * 3 // networks × transmit × fading
	for si := range res.Shapes {
		if n := res.PerShape.Acc[si].N(); n != wantSamples {
			t.Fatalf("shape %g has %d samples, want %d", res.Shapes[si], n, wantSamples)
		}
	}
	if res.RayleighShapeIndex() != 1 {
		t.Fatalf("Rayleigh index %d", res.RayleighShapeIndex())
	}
	// The m=1 Monte-Carlo mean must agree with the closed-form expectation
	// within a few standard errors.
	m1 := res.PerShape.Acc[1]
	exact := res.Rayleigh.Mean()
	if diff := m1.Mean() - exact; diff > 4*m1.StdErr()+1.5 || diff < -4*m1.StdErr()-1.5 {
		t.Fatalf("Nakagami m=1 mean %.2f vs Rayleigh closed form %.2f", m1.Mean(), exact)
	}
}

// At a moderate transmission probability with noticeable interference, the
// ordering between fading severities is monotone in the large: milder
// fading (larger m) tracks the non-fading count more closely.
func TestRunFadingSweepApproachesNonFading(t *testing.T) {
	cfg := FadingSweepConfig{
		Networks:      4,
		Links:         60,
		TransmitSeeds: 6,
		FadingSeeds:   4,
		Prob:          0.25,
		Shapes:        []float64{1, 32},
		Seed:          13,
	}
	res := RunFadingSweep(cfg)
	nf := res.NonFading.Mean()
	gapRayleigh := abs(res.PerShape.Acc[0].Mean() - nf)
	gapMild := abs(res.PerShape.Acc[1].Mean() - nf)
	if gapMild >= gapRayleigh {
		t.Fatalf("m=32 gap %.2f not smaller than Rayleigh gap %.2f (nf=%.2f)",
			gapMild, gapRayleigh, nf)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestRunTopologyShapes(t *testing.T) {
	cfg := TopologyConfig{
		GridSide:      5,
		TransmitSeeds: 4,
		FadingSeeds:   2,
		Probs:         []float64{0.2, 0.6, 1.0},
		RandomNets:    3,
		Seed:          15,
	}
	res := RunTopology(cfg)
	if len(res.Curves) != 4 {
		t.Fatalf("%d curves", len(res.Curves))
	}
	for name, s := range res.Curves {
		for i := range res.Probs {
			if s.Acc[i].N() == 0 {
				t.Fatalf("%s point %d empty", name, i)
			}
			if m := s.Acc[i].Mean(); m < 0 || m > 25 {
				t.Fatalf("%s point %d mean %g outside [0,25]", name, i, m)
			}
		}
	}
	// Sample counts: grid = transmit×fading per point; random ×nets.
	if n := res.Curves[CurveGridNonFading].Acc[0].N(); n != 4 {
		t.Fatalf("grid non-fading samples %d", n)
	}
	if n := res.Curves[CurveRandomRayleigh].Acc[0].N(); n != 3*4*2 {
		t.Fatalf("random rayleigh samples %d", n)
	}
}

// The paper's high-interference observation must hold on both topologies:
// at full activity (dense interference), Rayleigh fading lets more links
// through than the non-fading model predicts, for the grid and the random
// layout alike.
func TestRayleighBeatsNonFadingAtFullActivityBothTopologies(t *testing.T) {
	cfg := TopologyConfig{
		GridSide:      8,
		TransmitSeeds: 10,
		FadingSeeds:   4,
		Probs:         []float64{1.0},
		RandomNets:    6,
		Seed:          17,
	}
	res := RunTopology(cfg)
	for _, pair := range [][2]string{
		{CurveGridRayleigh, CurveGridNonFading},
		{CurveRandomRayleigh, CurveRandomNonFading},
	} {
		rl := res.Curves[pair[0]].Acc[0].Mean()
		nf := res.Curves[pair[1]].Acc[0].Mean()
		if rl <= nf {
			t.Fatalf("%s (%.2f) should beat %s (%.2f) at q=1", pair[0], rl, pair[1], nf)
		}
	}
}

func TestRunTopologyDeterministic(t *testing.T) {
	cfg := TopologyConfig{
		GridSide:      4,
		TransmitSeeds: 3,
		FadingSeeds:   2,
		Probs:         []float64{0.5},
		RandomNets:    3,
		Seed:          19,
	}
	a := RunTopology(cfg)
	cfg.Workers = 1
	b := RunTopology(cfg)
	for name := range a.Curves {
		if a.Curves[name].Acc[0].Mean() != b.Curves[name].Acc[0].Mean() {
			t.Fatalf("%s differs across worker counts", name)
		}
	}
}

func TestRunShannonShapes(t *testing.T) {
	cfg := ShannonConfig{
		Networks:      3,
		Links:         40,
		TransmitSeeds: 4,
		FadingSeeds:   2,
		Probs:         []float64{0.2, 0.6, 1.0},
		Seed:          21,
	}
	res := RunShannon(cfg)
	for name, s := range res.Curves {
		for i := range res.Probs {
			if s.Acc[i].N() == 0 {
				t.Fatalf("%s point %d empty", name, i)
			}
			if m := s.Acc[i].Mean(); m <= 0 {
				t.Fatalf("%s point %d capacity %g not positive", name, i, m)
			}
		}
	}
	// Total Shannon capacity keeps growing with activity much longer than
	// the threshold objective (every extra transmitter adds log terms):
	// at q=1 it must exceed q=0.2 in both models on this workload.
	for _, name := range []string{CurveShannonNonFading, CurveShannonRayleigh} {
		s := res.Curves[name]
		if s.Acc[2].Mean() <= s.Acc[0].Mean() {
			t.Fatalf("%s: capacity at q=1 (%.1f) not above q=0.2 (%.1f)",
				name, s.Acc[2].Mean(), s.Acc[0].Mean())
		}
	}
}

// With Exact set, the closed-form curve must agree with the Monte-Carlo
// Rayleigh curve within its sampling error.
func TestRunShannonExactMatchesMC(t *testing.T) {
	cfg := ShannonConfig{
		Networks:      2,
		Links:         25,
		TransmitSeeds: 12,
		FadingSeeds:   6,
		Probs:         []float64{0.3, 0.8},
		Seed:          25,
		Exact:         true,
	}
	res := RunShannon(cfg)
	mc := res.Curves[CurveShannonRayleigh]
	exact := res.Curves[CurveShannonExact]
	for i := range cfg.Probs {
		diff := mc.Acc[i].Mean() - exact.Acc[i].Mean()
		tol := 5*mc.Acc[i].StdErr() + 5*exact.Acc[i].StdErr() + 0.02*exact.Acc[i].Mean()
		if diff > tol || diff < -tol {
			t.Fatalf("q=%g: MC %.2f vs exact %.2f (tol %.2f)",
				cfg.Probs[i], mc.Acc[i].Mean(), exact.Acc[i].Mean(), tol)
		}
	}
}

func TestRunLatencySmall(t *testing.T) {
	cfg := LatencyConfig{
		Networks: 3,
		Links:    40,
		Trials:   2,
		Seed:     23,
	}
	res := RunLatency(cfg)
	if res.Incomplete != 0 {
		t.Fatalf("%d incomplete runs", res.Incomplete)
	}
	if res.ScheduleLen.N() != 3 || res.ScheduleLen.Mean() < 1 {
		t.Fatalf("schedule length %v", res.ScheduleLen.Summarize())
	}
	// Rayleigh replay of the schedule costs at least the expanded length.
	if res.ScheduleRayleigh.Mean() < res.ScheduleLen.Mean() {
		t.Fatalf("rayleigh replay %.1f below schedule %.1f",
			res.ScheduleRayleigh.Mean(), res.ScheduleLen.Mean())
	}
	// All protocols completed with positive slot counts.
	for name, acc := range map[string]*stats.Running{
		"alohaNF": &res.AlohaNF, "alohaRL": &res.AlohaRL,
		"backoffNF": &res.BackoffNF, "backoffRL": &res.BackoffRL,
	} {
		if acc.N() == 0 || acc.Mean() <= 0 {
			t.Fatalf("%s: %v", name, acc.Summarize())
		}
	}
	// The centralized schedule beats the distributed protocols.
	if res.ScheduleLen.Mean() > res.AlohaNF.Mean() {
		t.Fatalf("schedule %.1f slots worse than ALOHA %.1f",
			res.ScheduleLen.Mean(), res.AlohaNF.Mean())
	}
}

// The Figure-1 crossover survives clustered deployments: at q = 1 on a
// locally dense topology, Rayleigh still beats the non-fading prediction.
func TestFigure1ClusterTopology(t *testing.T) {
	cfg := Figure1Config{
		Networks:      4,
		Links:         100,
		TransmitSeeds: 6,
		FadingSeeds:   3,
		Probs:         []float64{0.3, 1.0},
		Seed:          43,
		Topology:      "cluster",
	}
	res := RunFigure1(cfg)
	nf := res.Curves[CurveUniformNonFading].Means()
	rl := res.Curves[CurveUniformRayleigh].Means()
	if rl[1] <= nf[1] {
		t.Fatalf("clustered q=1: Rayleigh %.2f should beat non-fading %.2f", rl[1], nf[1])
	}
	for _, name := range res.CurveNames() {
		for i, m := range res.Curves[name].Means() {
			if m < 0 || m > 100 {
				t.Fatalf("%s point %d mean %g out of range", name, i, m)
			}
		}
	}
}

func TestFigure1UnknownTopologyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RunFigure1(Figure1Config{Networks: 1, Links: 10, TransmitSeeds: 1, FadingSeeds: 1,
		Probs: []float64{0.5}, Topology: "hexagon"})
}

// End-to-end validation of the Figure-1 pipeline against Theorem 1: the
// sampled Rayleigh curve must agree with the exact expectation
// Σ_i Q_i(q·1, β) averaged over the same networks.
func TestFigure1RayleighCurveMatchesClosedForm(t *testing.T) {
	cfg := Figure1Config{
		Networks:      5,
		Links:         50,
		TransmitSeeds: 20,
		FadingSeeds:   5,
		Probs:         []float64{0.25, 0.6, 1.0},
		Seed:          41,
		Workers:       1,
	}
	res := RunFigure1(cfg)
	// Recompute the exact expectations over the same deterministic
	// network sequence (Parallel splits the master stream once per
	// replication, and network generation is each stream's first use).
	const beta = 2.5 // the default the run used
	base := rng.New(cfg.Seed)
	exact := make([]float64, len(cfg.Probs))
	for rep := 0; rep < cfg.Networks; rep++ {
		src := base.Split()
		netCfg := network.Config{
			N:     cfg.Links,
			Area:  squareArea(1000),
			DMin:  20,
			DMax:  40,
			Alpha: 2.2,
			Noise: 4e-7,
		}
		net, err := network.Random(netCfg, src)
		if err != nil {
			t.Fatal(err)
		}
		m := net.Clone().ApplyPower(network.UniformPower{P: 2}).Gains()
		for pi, p := range cfg.Probs {
			exact[pi] += fading.ExpectedSuccessesExact(m, fading.UniformProbs(m.N, p), beta)
		}
	}
	mc := res.Curves[CurveUniformRayleigh]
	for pi := range cfg.Probs {
		want := exact[pi] / float64(cfg.Networks)
		got := mc.Acc[pi].Mean()
		tol := 6*mc.Acc[pi].StdErr() + 0.05*want
		if got < want-tol || got > want+tol {
			t.Fatalf("q=%g: sampled %0.2f vs exact %0.2f (tol %0.2f)",
				cfg.Probs[pi], got, want, tol)
		}
	}
}

func TestFigure2FinalSendProb(t *testing.T) {
	res := RunFigure2(Figure2Config{Networks: 2, Links: 30, Rounds: 60, Seed: 33})
	for _, acc := range []stats.Running{res.FinalSendProbNF, res.FinalSendProbRL} {
		if acc.N() != 2 {
			t.Fatalf("samples %d", acc.N())
		}
		if m := acc.Mean(); m <= 0 || m >= 1 {
			t.Fatalf("final send probability %g not interior", m)
		}
	}
}

func TestRunFigure2WithExp3(t *testing.T) {
	cfg := Figure2Config{
		Networks: 2,
		Links:    30,
		Rounds:   60,
		Learner:  "exp3",
		Seed:     31,
	}
	res := RunFigure2(cfg)
	if res.ConvergedNF.Mean() <= 0 {
		t.Fatalf("Exp3 converged throughput %g", res.ConvergedNF.Mean())
	}
	// Bandit feedback converges more slowly than full information on the
	// same instances and horizon.
	rwm := cfg
	rwm.Learner = "rwm"
	rwmRes := RunFigure2(rwm)
	if res.ConvergedNF.Mean() > rwmRes.ConvergedNF.Mean()*1.5 {
		t.Fatalf("Exp3 (%.1f) implausibly above RWM (%.1f)",
			res.ConvergedNF.Mean(), rwmRes.ConvergedNF.Mean())
	}
}

func TestRunFigure2UnknownLearnerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RunFigure2(Figure2Config{Networks: 1, Links: 5, Rounds: 2, Learner: "sarsa"})
}

func TestRunBaselineSmall(t *testing.T) {
	cfg := BaselineConfig{Networks: 4, Links: 60, Seed: 27}
	res := RunBaseline(cfg)
	if res.GraphSetSize.N() != 4 {
		t.Fatalf("samples %d", res.GraphSetSize.N())
	}
	// The binary abstraction over-selects: valid links never exceed the
	// claimed set size, and the SINR greedy never has violations.
	if res.GraphSINRValid.Mean() > res.GraphSetSize.Mean() {
		t.Fatal("more valid links than selected links")
	}
	if res.SINRSetSize.Mean() <= 0 || res.SINRSlots.Mean() <= 0 {
		t.Fatal("SINR schedulers degenerate")
	}
	// Lemma 2 floor applies to the SINR greedy's transfer.
	if res.SINRRayleigh.Mean() < res.SINRSetSize.Mean()/3 {
		t.Fatalf("rayleigh expectation %.2f below size/e floor", res.SINRRayleigh.Mean())
	}
	// Rayleigh replay of the SINR schedule completed on every network.
	if res.SINRRayleighSlots.N() != 4 {
		t.Fatalf("rayleigh replays completed: %d of 4", res.SINRRayleighSlots.N())
	}
}

func BenchmarkFadingSweepTiny(b *testing.B) {
	cfg := FadingSweepConfig{
		Networks:      2,
		Links:         30,
		TransmitSeeds: 2,
		FadingSeeds:   2,
		Shapes:        []float64{1, 4},
		Seed:          1,
	}
	for i := 0; i < b.N; i++ {
		RunFadingSweep(cfg)
	}
}
