package sim

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"

	"rayfade/internal/fsio"
)

// The shard wire format is the checkpoint format specialized to a contiguous
// replication-index range: the same checksummed {body, sha256} envelope, the
// same run-identity triple (experiment, config hash, replication count), plus
// a [lo, hi) shard-range header and exactly the encoded results of that
// range. A worker answers /v1/shard with one such document; the coordinator
// validates every field before admitting the results into a merge, and the
// merged map is written back out as an ordinary checkpoint file — which is
// how a distributed run re-enters the single-node pipeline and produces a
// byte-identical artifact.

// shardSchema versions the shard document format, independently of the
// checkpoint schema so either can move without invalidating the other.
const shardSchema = 1

var (
	// ErrShardCorrupt reports a shard document whose envelope checksum,
	// schema, or internal consistency (range bounds, result keys) failed
	// validation — the document cannot be trusted at all.
	ErrShardCorrupt = errors.New("sim: shard document is corrupt")
	// ErrShardMismatch reports a structurally valid shard that belongs to a
	// different run (experiment, config hash, or replication count differs).
	// Merging it would splice results from incompatible RNG streams.
	ErrShardMismatch = errors.New("sim: shard does not match this run")
	// ErrShardOverlap reports two shards claiming the same replication
	// index. Overlaps are rejected rather than resolved silently: identical
	// duplicates would be benign, but an overlap usually means a coordinator
	// bug (double lease) and must not be papered over.
	ErrShardOverlap = errors.New("sim: shard ranges overlap")
	// ErrShardGap reports a shard set whose union is not exactly [0, reps):
	// a merge over it would silently drop replications.
	ErrShardGap = errors.New("sim: shard ranges leave a gap")
)

// Shard is one worker's partial result: the encoded outputs of replications
// [Lo, Hi) of a reps-wide run, bound to the run identity the checkpoint
// format uses.
type Shard struct {
	Experiment string
	ConfigSHA  string
	Reps       int
	Lo, Hi     int
	Results    map[int]json.RawMessage // key: global replication index
}

// shardBody is the checksummed payload of a shard document.
type shardBody struct {
	Schema       int                        `json:"schema"`
	Experiment   string                     `json:"experiment"`
	ConfigSHA256 string                     `json:"config_sha256"`
	Reps         int                        `json:"reps"`
	Lo           int                        `json:"lo"`
	Hi           int                        `json:"hi"`
	Results      map[string]json.RawMessage `json:"results"` // key: decimal rep index
}

// validate checks the shard's internal consistency: sane range bounds and a
// result for exactly every index in [Lo, Hi).
func (s *Shard) validate() error {
	if s.Reps < 0 || s.Lo < 0 || s.Hi > s.Reps || s.Lo >= s.Hi {
		return fmt.Errorf("%w: range [%d,%d) outside [0,%d)", ErrShardCorrupt, s.Lo, s.Hi, s.Reps)
	}
	if len(s.Results) != s.Hi-s.Lo {
		return fmt.Errorf("%w: %d results for range [%d,%d)", ErrShardCorrupt, len(s.Results), s.Lo, s.Hi)
	}
	for rep := s.Lo; rep < s.Hi; rep++ {
		if _, ok := s.Results[rep]; !ok {
			return fmt.Errorf("%w: missing replication %d in range [%d,%d)", ErrShardCorrupt, rep, s.Lo, s.Hi)
		}
	}
	return nil
}

// Encode seals the shard into its wire document. Encoding is deterministic
// (encoding/json sorts map keys), so the same results always yield the same
// bytes — workers are interchangeable at the byte level.
func (s *Shard) Encode() ([]byte, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	body := shardBody{
		Schema:       shardSchema,
		Experiment:   s.Experiment,
		ConfigSHA256: s.ConfigSHA,
		Reps:         s.Reps,
		Lo:           s.Lo,
		Hi:           s.Hi,
		Results:      make(map[string]json.RawMessage, len(s.Results)),
	}
	for rep, data := range s.Results {
		body.Results[strconv.Itoa(rep)] = data
	}
	doc, err := sealDocument(body)
	if err != nil {
		return nil, fmt.Errorf("sim: encode shard: %w", err)
	}
	return doc, nil
}

// DecodeShard opens a shard wire document, verifying the envelope checksum,
// the schema, and the range/result consistency. It does NOT check the run
// identity — that is the merge's job, which knows what run it is merging
// for.
func DecodeShard(data []byte) (*Shard, error) {
	bodyJSON, err := openDocument(data)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrShardCorrupt, err)
	}
	var body shardBody
	if err := json.Unmarshal(bodyJSON, &body); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrShardCorrupt, err)
	}
	if body.Schema != shardSchema {
		return nil, fmt.Errorf("%w: schema %d, want %d", ErrShardCorrupt, body.Schema, shardSchema)
	}
	s := &Shard{
		Experiment: body.Experiment,
		ConfigSHA:  body.ConfigSHA256,
		Reps:       body.Reps,
		Lo:         body.Lo,
		Hi:         body.Hi,
		Results:    make(map[int]json.RawMessage, len(body.Results)),
	}
	for key, data := range body.Results {
		rep, err := strconv.Atoi(key)
		if err != nil || rep < s.Lo || rep >= s.Hi {
			return nil, fmt.Errorf("%w: result key %q outside range [%d,%d)", ErrShardCorrupt, key, s.Lo, s.Hi)
		}
		s.Results[rep] = data
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// MergeShards combines shards of the identified run into one complete
// per-replication result map. Every shard must carry the expected identity
// (ErrShardMismatch otherwise), no two shards may overlap (ErrShardOverlap),
// and together they must cover [0, reps) exactly (ErrShardGap). The merge is
// deterministic in shard arrival order: results are keyed by replication
// index, so any shard order yields the same map.
func MergeShards(experiment, configSHA string, reps int, shards []*Shard) (map[int]json.RawMessage, error) {
	for _, s := range shards {
		if err := s.validate(); err != nil {
			return nil, err
		}
		if s.Experiment != experiment {
			return nil, fmt.Errorf("%w: experiment %q, want %q", ErrShardMismatch, s.Experiment, experiment)
		}
		if s.ConfigSHA != configSHA {
			return nil, fmt.Errorf("%w: config hash %.12s…, want %.12s…", ErrShardMismatch, s.ConfigSHA, configSHA)
		}
		if s.Reps != reps {
			return nil, fmt.Errorf("%w: %d replications, want %d", ErrShardMismatch, s.Reps, reps)
		}
	}
	ordered := make([]*Shard, len(shards))
	copy(ordered, shards)
	sort.Slice(ordered, func(a, b int) bool { return ordered[a].Lo < ordered[b].Lo })
	next := 0
	for _, s := range ordered {
		if s.Lo < next {
			return nil, fmt.Errorf("%w: [%d,%d) collides at replication %d", ErrShardOverlap, s.Lo, s.Hi, s.Lo)
		}
		if s.Lo > next {
			return nil, fmt.Errorf("%w: replications [%d,%d) uncovered", ErrShardGap, next, s.Lo)
		}
		next = s.Hi
	}
	if next != reps {
		return nil, fmt.Errorf("%w: replications [%d,%d) uncovered", ErrShardGap, next, reps)
	}
	merged := make(map[int]json.RawMessage, reps)
	for _, s := range ordered {
		for rep, data := range s.Results {
			merged[rep] = data
		}
	}
	return merged, nil
}

// WriteMergedCheckpoint writes results — a complete per-replication map for
// the identified run, typically the output of MergeShards — to path in the
// checkpoint file format. A run opened against that file (OpenCheckpoint
// with the matching identity, then ParallelCheckpointCtx) restores every
// replication and recomputes nothing, which is how a coordinator turns
// merged shards into the byte-identical single-node artifact.
func WriteMergedCheckpoint(path, experiment, configSHA string, reps int, results map[int]json.RawMessage) error {
	if len(results) != reps {
		return fmt.Errorf("sim: merged checkpoint holds %d of %d replications", len(results), reps)
	}
	body := checkpointBody{
		Schema:       checkpointSchema,
		Experiment:   experiment,
		ConfigSHA256: configSHA,
		Reps:         reps,
		Results:      make(map[string]json.RawMessage, len(results)),
	}
	for rep, data := range results {
		if rep < 0 || rep >= reps {
			return fmt.Errorf("sim: merged checkpoint replication %d outside [0,%d)", rep, reps)
		}
		body.Results[strconv.Itoa(rep)] = data
	}
	doc, err := sealDocument(body)
	if err != nil {
		return fmt.Errorf("sim: encode merged checkpoint: %w", err)
	}
	return fsio.WriteFileAtomic(path, doc, 0o644)
}
