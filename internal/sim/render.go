package sim

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"rayfade/internal/stats"
)

// WriteSeriesCSV writes one or more series sharing an x grid as CSV:
// a header row, then one row per x point with mean and stderr columns per
// series. Curve order follows the names slice.
func WriteSeriesCSV(w io.Writer, xName string, xs []float64, names []string, series map[string]*stats.Series) error {
	cols := []string{xName}
	for _, n := range names {
		cols = append(cols, n+"_mean", n+"_stderr")
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for i, x := range xs {
		row := []string{fmt.Sprintf("%g", x)}
		for _, n := range names {
			s, ok := series[n]
			if !ok {
				return fmt.Errorf("sim: unknown series %q", n)
			}
			row = append(row,
				fmt.Sprintf("%.6g", s.Acc[i].Mean()),
				fmt.Sprintf("%.6g", s.Acc[i].StdErr()))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// MarkdownTable renders the same data as a GitHub-flavored markdown table
// with "mean ± stderr" cells, for EXPERIMENTS.md.
func MarkdownTable(w io.Writer, xName string, xs []float64, names []string, series map[string]*stats.Series) error {
	header := "| " + xName
	sep := "|---"
	for _, n := range names {
		header += " | " + n
		sep += "|---"
	}
	if _, err := fmt.Fprintln(w, header+" |"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, sep+"|"); err != nil {
		return err
	}
	for i, x := range xs {
		row := fmt.Sprintf("| %g", x)
		for _, n := range names {
			s, ok := series[n]
			if !ok {
				return fmt.Errorf("sim: unknown series %q", n)
			}
			row += fmt.Sprintf(" | %.2f ± %.2f", s.Acc[i].Mean(), s.Acc[i].StdErr())
		}
		if _, err := fmt.Fprintln(w, row+" |"); err != nil {
			return err
		}
	}
	return nil
}

// ASCIIChart renders the series as a fixed-size terminal chart: one glyph
// per curve, y scaled to the global max. It is deliberately crude — enough
// to eyeball the Figure-1 crossover and the Figure-2 convergence without
// leaving the terminal.
func ASCIIChart(w io.Writer, xs []float64, names []string, series map[string]*stats.Series, height int) error {
	if height <= 0 {
		height = 16
	}
	if len(xs) == 0 {
		return fmt.Errorf("sim: empty x grid")
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@'}
	maxY := 0.0
	for _, n := range names {
		s, ok := series[n]
		if !ok {
			return fmt.Errorf("sim: unknown series %q", n)
		}
		for i := range xs {
			if m := s.Acc[i].Mean(); m > maxY {
				maxY = m
			}
		}
	}
	if maxY == 0 {
		maxY = 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", len(xs)))
	}
	for k, n := range names {
		g := glyphs[k%len(glyphs)]
		s := series[n]
		for i := range xs {
			row := int(math.Round((1 - s.Acc[i].Mean()/maxY) * float64(height-1)))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][i] = g
		}
	}
	for r, line := range grid {
		label := "        "
		if r == 0 {
			label = fmt.Sprintf("%7.1f ", maxY)
		} else if r == height-1 {
			label = fmt.Sprintf("%7.1f ", 0.0)
		}
		if _, err := fmt.Fprintf(w, "%s|%s|\n", label, line); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "        %s%g .. %g\n", strings.Repeat(" ", 1), xs[0], xs[len(xs)-1]); err != nil {
		return err
	}
	legend := make([]string, 0, len(names))
	for k, n := range names {
		legend = append(legend, fmt.Sprintf("%c=%s", glyphs[k%len(glyphs)], n))
	}
	sort.Strings(legend)
	_, err := fmt.Fprintln(w, "        "+strings.Join(legend, "  "))
	return err
}
