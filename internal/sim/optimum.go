package sim

import (
	"context"
	"fmt"

	"rayfade/internal/capacity"
	"rayfade/internal/fading"
	"rayfade/internal/network"
	"rayfade/internal/opt"
	"rayfade/internal/rng"
	"rayfade/internal/stats"
)

// OptimumConfig parameterizes the in-text optimum reference of Section 7
// ("choosing the optimal set of sending links under uniform powers, we
// reach on average 49.75 successful transmissions"). Zero values default to
// the Figure-1 workload.
type OptimumConfig struct {
	Networks int // networks to average over (paper: 40)
	Links    int // links per network (paper: 100)
	Beta     float64
	Alpha    float64
	Noise    float64
	DMin     float64
	DMax     float64
	Side     float64
	Power    float64
	Search   opt.LocalSearchConfig
	Workers  int
	Seed     uint64
}

func (c OptimumConfig) withDefaults() OptimumConfig {
	if c.Networks == 0 {
		c.Networks = 40
	}
	if c.Links == 0 {
		c.Links = 100
	}
	if c.Beta == 0 {
		c.Beta = 2.5
	}
	if c.Alpha == 0 {
		c.Alpha = 2.2
	}
	if c.Noise == 0 {
		c.Noise = 4e-7
	}
	if c.DMin == 0 && c.DMax == 0 {
		c.DMin, c.DMax = 20, 40
	}
	if c.Side == 0 {
		c.Side = 1000
	}
	if c.Power == 0 {
		c.Power = 2
	}
	if c.Search.Restarts == 0 {
		c.Search = opt.DefaultLocalSearch
	}
	if c.Seed == 0 {
		c.Seed = 3
	}
	return c
}

// OptimumResult summarizes the optimum estimate across networks.
type OptimumResult struct {
	// Greedy is the plain length-greedy capacity (the algorithmic
	// baseline the regret learners are compared to).
	Greedy stats.Running
	// LocalSearch is the local-search optimum estimate (the paper's
	// "optimal set" stand-in; a certified-feasible lower bound on OPT).
	LocalSearch stats.Running
	// RayleighOfOptimum is the exact expected number of Rayleigh-fading
	// successes when the local-search optimum set transmits (Theorem 1) —
	// the fading-side value of the paper's "49.75" set, which Lemma 2
	// lower-bounds by LocalSearch/e.
	RayleighOfOptimum stats.Running
	Config            OptimumConfig
}

// RunOptimum estimates the Figure-1 workload's maximum feasible set size
// under uniform powers, per network, by greedy and by local search.
func RunOptimum(cfg OptimumConfig) *OptimumResult {
	res, _ := RunOptimumCtx(context.Background(), cfg)
	return res
}

// RunOptimumCtx is RunOptimum with cooperative cancellation; it returns nil
// and ctx.Err() when the context is cancelled before the run completes.
func RunOptimumCtx(ctx context.Context, cfg OptimumConfig) (*OptimumResult, error) {
	cfg = cfg.withDefaults()
	ctx, finish := beginExperiment(ctx, "sim.optimum",
		"networks", cfg.Networks, "links", cfg.Links, "restarts", cfg.Search.Restarts, "seed", cfg.Seed)
	defer finish()
	type netResult struct {
		greedy, local, rayleigh float64
	}
	base := rng.New(cfg.Seed)
	perNet, perErr := ParallelCtx(ctx, cfg.Networks, cfg.Workers, base, func(rep int, src *rng.Source) netResult {
		netCfg := network.Config{
			N:     cfg.Links,
			Area:  squareArea(cfg.Side),
			DMin:  cfg.DMin,
			DMax:  cfg.DMax,
			Alpha: cfg.Alpha,
			Noise: cfg.Noise,
			Power: network.UniformPower{P: cfg.Power},
		}
		net, err := network.Random(netCfg, src)
		if err != nil {
			panic(fmt.Sprintf("sim: optimum network generation: %v", err))
		}
		m := net.Gains()
		set := opt.LocalSearch(m, cfg.Beta, cfg.Search, src)
		return netResult{
			greedy:   float64(len(capacity.GreedyUniform(net, cfg.Beta))),
			local:    float64(len(set)),
			rayleigh: fading.ExpectedBinaryValueOfSet(m, set, cfg.Beta),
		}
	})
	if perErr != nil {
		return nil, perErr
	}
	res := &OptimumResult{Config: cfg}
	for _, nr := range perNet {
		res.Greedy.Add(nr.greedy)
		res.LocalSearch.Add(nr.local)
		res.RayleighOfOptimum.Add(nr.rayleigh)
	}
	return res, nil
}
