package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"rayfade/internal/rng"
)

// testShard builds a valid shard for the [lo,hi) range of an 8-rep run.
func testShard(t *testing.T, lo, hi int) *Shard {
	t.Helper()
	results := make(map[int]json.RawMessage, hi-lo)
	for rep := lo; rep < hi; rep++ {
		results[rep] = json.RawMessage(fmt.Sprintf(`{"rep":%d}`, rep))
	}
	return &Shard{Experiment: "test", ConfigSHA: "abc", Reps: 8, Lo: lo, Hi: hi, Results: results}
}

func TestShardEncodeDecodeRoundTrip(t *testing.T) {
	sh := testShard(t, 2, 5)
	doc, err := sh.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeShard(doc)
	if err != nil {
		t.Fatal(err)
	}
	if back.Experiment != sh.Experiment || back.ConfigSHA != sh.ConfigSHA ||
		back.Reps != sh.Reps || back.Lo != sh.Lo || back.Hi != sh.Hi {
		t.Fatalf("round trip header: %+v", back)
	}
	for rep, data := range sh.Results {
		if !bytes.Equal(back.Results[rep], data) {
			t.Fatalf("rep %d: %s != %s", rep, back.Results[rep], data)
		}
	}
	// Deterministic encoding: same shard, same bytes.
	doc2, err := sh.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(doc, doc2) {
		t.Fatal("shard encoding is not deterministic")
	}
}

func TestDecodeShardTamperedChecksum(t *testing.T) {
	doc, err := testShard(t, 0, 4).Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the body (a rep payload digit) — the envelope
	// checksum must catch it.
	tampered := bytes.Replace(doc, []byte(`{"rep":0}`), []byte(`{"rep":9}`), 1)
	if bytes.Equal(tampered, doc) {
		t.Fatal("tamper did not change the document")
	}
	if _, err := DecodeShard(tampered); !errors.Is(err, ErrShardCorrupt) {
		t.Fatalf("tampered shard: err = %v, want ErrShardCorrupt", err)
	}
}

func TestShardEncodeRejectsInconsistency(t *testing.T) {
	missing := testShard(t, 0, 4)
	delete(missing.Results, 2)
	if _, err := missing.Encode(); !errors.Is(err, ErrShardCorrupt) {
		t.Fatalf("missing rep: err = %v, want ErrShardCorrupt", err)
	}
	bad := testShard(t, 3, 6)
	bad.Hi = 2 // inverted range
	if _, err := bad.Encode(); !errors.Is(err, ErrShardCorrupt) {
		t.Fatalf("inverted range: err = %v, want ErrShardCorrupt", err)
	}
}

func TestMergeShardsOverlapRejected(t *testing.T) {
	shards := []*Shard{testShard(t, 0, 4), testShard(t, 3, 8)}
	if _, err := MergeShards("test", "abc", 8, shards); !errors.Is(err, ErrShardOverlap) {
		t.Fatalf("overlap: err = %v, want ErrShardOverlap", err)
	}
}

func TestMergeShardsGapDetected(t *testing.T) {
	// Interior gap.
	if _, err := MergeShards("test", "abc", 8, []*Shard{testShard(t, 0, 3), testShard(t, 5, 8)}); !errors.Is(err, ErrShardGap) {
		t.Fatalf("interior gap: err = %v, want ErrShardGap", err)
	}
	// Missing head.
	if _, err := MergeShards("test", "abc", 8, []*Shard{testShard(t, 2, 8)}); !errors.Is(err, ErrShardGap) {
		t.Fatalf("missing head: err = %v, want ErrShardGap", err)
	}
	// Missing tail.
	if _, err := MergeShards("test", "abc", 8, []*Shard{testShard(t, 0, 6)}); !errors.Is(err, ErrShardGap) {
		t.Fatalf("missing tail: err = %v, want ErrShardGap", err)
	}
}

func TestMergeShardsIdentityMismatch(t *testing.T) {
	full := []*Shard{testShard(t, 0, 8)}
	if _, err := MergeShards("other", "abc", 8, full); !errors.Is(err, ErrShardMismatch) {
		t.Fatalf("experiment mismatch: err = %v, want ErrShardMismatch", err)
	}
	if _, err := MergeShards("test", "zzz", 8, full); !errors.Is(err, ErrShardMismatch) {
		t.Fatalf("config mismatch: err = %v, want ErrShardMismatch", err)
	}
	if _, err := MergeShards("test", "abc", 9, full); !errors.Is(err, ErrShardMismatch) {
		t.Fatalf("reps mismatch: err = %v, want ErrShardMismatch", err)
	}
}

func TestMergeShardsCompleteCover(t *testing.T) {
	merged, err := MergeShards("test", "abc", 8,
		[]*Shard{testShard(t, 4, 8), testShard(t, 0, 2), testShard(t, 2, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 8 {
		t.Fatalf("merged %d of 8", len(merged))
	}
	for rep := 0; rep < 8; rep++ {
		want := fmt.Sprintf(`{"rep":%d}`, rep)
		if string(merged[rep]) != want {
			t.Fatalf("rep %d: %s", rep, merged[rep])
		}
	}
}

// TestResumeAfterMergeIdempotent: a merged checkpoint must be a fixed point
// — resuming from it recomputes nothing and rewrites the same results, so
// running the pipeline twice over the same merged file yields identical
// outputs and an unchanged replication set.
func TestResumeAfterMergeIdempotent(t *testing.T) {
	const reps = 6
	cfgKey := struct{ Label string }{"merge-idem"}
	sha, err := ConfigHash(cfgKey)
	if err != nil {
		t.Fatal(err)
	}
	enc, dec := intCodec()
	fn := func(rep int, src *rng.Source) int { return rep*10 + int(src.Float64()*10) }

	// Compute the full run as two shard-shaped halves.
	want, err := ParallelCtx(context.Background(), reps, 1, rng.New(5), fn)
	if err != nil {
		t.Fatal(err)
	}
	results := make(map[int]json.RawMessage, reps)
	for rep, v := range want {
		data, err := enc(v)
		if err != nil {
			t.Fatal(err)
		}
		results[rep] = data
	}
	merged, err := MergeShards("test", sha, reps, []*Shard{
		{Experiment: "test", ConfigSHA: sha, Reps: reps, Lo: 0, Hi: 3,
			Results: map[int]json.RawMessage{0: results[0], 1: results[1], 2: results[2]}},
		{Experiment: "test", ConfigSHA: sha, Reps: reps, Lo: 3, Hi: 6,
			Results: map[int]json.RawMessage{3: results[3], 4: results[4], 5: results[5]}},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "merged.ckpt")
	if err := WriteMergedCheckpoint(path, "test", sha, reps, merged); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for round := 1; round <= 2; round++ {
		ck, err := OpenCheckpoint(path, "test", cfgKey, reps, 1)
		if err != nil {
			t.Fatalf("round %d open: %v", round, err)
		}
		if ck.Restored() != reps {
			t.Fatalf("round %d restored %d of %d", round, ck.Restored(), reps)
		}
		got, err := ParallelCheckpointCtx(context.Background(), reps, 2, rng.New(5), ck, enc, dec,
			func(rep int, src *rng.Source) int {
				// Runs on a worker goroutine — Error, not Fatal.
				t.Errorf("round %d recomputed replication %d", round, rep)
				return -1
			})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d rep %d: %d != %d", round, i, got[i], want[i])
			}
		}
		after, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(after, first) {
			t.Fatalf("round %d rewrote the checkpoint differently", round)
		}
	}
}

func TestWriteMergedCheckpointRejectsPartial(t *testing.T) {
	path := filepath.Join(t.TempDir(), "partial.ckpt")
	err := WriteMergedCheckpoint(path, "test", "abc", 4, map[int]json.RawMessage{0: json.RawMessage(`1`)})
	if err == nil {
		t.Fatal("partial merge written without error")
	}
}
