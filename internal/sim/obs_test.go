package sim

import (
	"bytes"
	"context"
	"log/slog"
	"reflect"
	"testing"

	"rayfade/internal/obs"
)

// smallFigure1 is a fast fixed-seed workload for instrumentation tests.
func smallFigure1() Figure1Config {
	return Figure1Config{
		Networks:      3,
		Links:         12,
		TransmitSeeds: 2,
		FadingSeeds:   2,
		Probs:         []float64{0.2, 0.6},
		Seed:          11,
		Workers:       2,
	}
}

// TestTracingDoesNotPerturbResults is the determinism contract of the
// observability layer: a fixed-seed experiment must produce identical
// results with tracing and logging fully enabled, because obs never draws
// from the experiment RNG streams.
func TestTracingDoesNotPerturbResults(t *testing.T) {
	plain, err := RunFigure1Ctx(context.Background(), smallFigure1())
	if err != nil {
		t.Fatal(err)
	}

	tr := obs.NewTracer(0)
	var logBuf bytes.Buffer
	SetLogger(obs.NewLogger(&logBuf, slog.LevelDebug, false))
	defer SetLogger(nil)
	ctx := obs.WithTracer(context.Background(), tr)
	traced, err := RunFigure1Ctx(ctx, smallFigure1())
	if err != nil {
		t.Fatal(err)
	}

	for _, name := range plain.CurveNames() {
		if !reflect.DeepEqual(plain.Curves[name], traced.Curves[name]) {
			t.Fatalf("curve %q differs with tracing enabled", name)
		}
	}
	if tr.Recorded() == 0 {
		t.Fatal("tracer recorded no spans")
	}
	if !bytes.Contains(logBuf.Bytes(), []byte("experiment start")) ||
		!bytes.Contains(logBuf.Bytes(), []byte("experiment done")) {
		t.Fatalf("lifecycle log records missing:\n%s", logBuf.String())
	}
}

// TestExperimentSpanHierarchy checks the span shape one -trace run emits:
// a root experiment span, phase spans nested under it, and one detached
// replication span per network.
func TestExperimentSpanHierarchy(t *testing.T) {
	tr := obs.NewTracer(0)
	ctx := obs.WithTracer(context.Background(), tr)
	cfg := smallFigure1()
	if _, err := RunFigure1Ctx(ctx, cfg); err != nil {
		t.Fatal(err)
	}
	spans := tr.Snapshot()
	byName := map[string][]obs.SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = append(byName[s.Name], s)
	}
	roots := byName["sim.figure1"]
	if len(roots) != 1 {
		t.Fatalf("want 1 root span, got %d (%v)", len(roots), byName)
	}
	root := roots[0]
	if root.Parent != 0 {
		t.Fatalf("experiment span has parent %d", root.Parent)
	}
	fans := byName["parallel.fanout"]
	if len(fans) != 1 || fans[0].Parent != root.ID {
		t.Fatalf("fanout span not nested under experiment root: %+v", fans)
	}
	if len(byName["merge"]) != 1 || byName["merge"][0].Parent != root.ID {
		t.Fatalf("merge phase not nested under experiment root: %+v", byName["merge"])
	}
	reps := byName["replication"]
	if len(reps) != cfg.Networks {
		t.Fatalf("want %d replication spans, got %d", cfg.Networks, len(reps))
	}
	for _, r := range reps {
		if r.Parent != fans[0].ID {
			t.Fatalf("replication span parent = %d, want fanout %d", r.Parent, fans[0].ID)
		}
		if r.Root != r.ID {
			t.Fatalf("replication span must be detached (own track), got root %d", r.Root)
		}
	}

	// The exported trace must validate and show nesting.
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	stats, err := obs.ValidateTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	if !stats.Nested {
		t.Fatal("trace shows no nested phase spans")
	}
	if stats.Tracks < 2 {
		t.Fatalf("want ≥2 tracks (root + replications), got %d", stats.Tracks)
	}
}

// TestDefaultTracerCoversNonCtxEntrypoints: the Run* convenience wrappers go
// through context.Background(), which must still pick up the process-default
// tracer (raybench's -trace-dir depends on this).
func TestDefaultTracerCoversNonCtxEntrypoints(t *testing.T) {
	tr := obs.NewTracer(0)
	obs.SetDefault(tr)
	defer obs.SetDefault(nil)
	RunFigure1(smallFigure1())
	if tr.Recorded() == 0 {
		t.Fatal("default tracer saw no spans from non-ctx entrypoint")
	}
}
