package sim

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync"

	"rayfade/internal/faults"
	"rayfade/internal/fsio"
	"rayfade/internal/rng"
)

// checkpointSchema versions the on-disk checkpoint format. Bump on any
// incompatible change; Open refuses files from other schemas.
const checkpointSchema = 1

// ErrCheckpointMismatch reports a checkpoint file that is internally valid
// but belongs to a different run (experiment, config, or replication count
// differs). Resuming from it would splice results from incompatible RNG
// streams, so it is always an error, never a silent restart.
var ErrCheckpointMismatch = errors.New("sim: checkpoint does not match this run")

// ErrCheckpointCorrupt reports a checkpoint file whose checksum or schema
// failed validation. Because every flush is write-temp+fsync+rename, this
// indicates external damage, not a crash mid-write.
var ErrCheckpointCorrupt = errors.New("sim: checkpoint file is corrupt")

// checkpointBody is the checksummed payload of a checkpoint file.
type checkpointBody struct {
	Schema       int                        `json:"schema"`
	Experiment   string                     `json:"experiment"`
	ConfigSHA256 string                     `json:"config_sha256"`
	Reps         int                        `json:"reps"`
	Results      map[string]json.RawMessage `json:"results"` // key: decimal rep index
}

// checkpointFile is the full on-disk document: the body plus a SHA-256 of
// the body's exact JSON bytes. Readers re-hash Body (kept as RawMessage, so
// byte-for-byte what was written) before trusting anything inside it. The
// same envelope seals shard documents (see shardio.go), so one pair of
// helpers covers both formats.
type checkpointFile struct {
	Body   json.RawMessage `json:"body"`
	SHA256 string          `json:"sha256"`
}

// sealDocument marshals body and wraps it in the checksummed envelope.
func sealDocument(body any) ([]byte, error) {
	bodyJSON, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(bodyJSON)
	return json.Marshal(checkpointFile{Body: bodyJSON, SHA256: hex.EncodeToString(sum[:])})
}

// openDocument unwraps a checksummed envelope, verifying the SHA-256 over
// the body's exact bytes before returning them. Callers wrap the error with
// their format's corruption sentinel.
func openDocument(raw []byte) (json.RawMessage, error) {
	var file checkpointFile
	if err := json.Unmarshal(raw, &file); err != nil {
		return nil, err
	}
	sum := sha256.Sum256(file.Body)
	if hex.EncodeToString(sum[:]) != file.SHA256 {
		return nil, errors.New("body checksum mismatch")
	}
	return file.Body, nil
}

// Checkpoint persists completed replication results so an interrupted run
// can resume without recomputing them. Every flush rewrites the whole file
// atomically (write-temp + fsync + rename): a crash at any instant leaves
// either the previous complete checkpoint or the new one, never a torn
// file.
//
// The file is bound to its run by the experiment name, a SHA-256 of the
// determinism-relevant config, and the replication count; Open fails on any
// mismatch. Because the runner splits one RNG stream per replication index
// up front, "resume" is simply "skip the indices already in the file" — the
// remaining replications see exactly the streams they would have seen in an
// uninterrupted run.
type Checkpoint struct {
	path       string
	experiment string
	configSHA  string
	reps       int
	every      int

	mu       sync.Mutex
	results  map[int]json.RawMessage
	restored int // replications loaded from disk at Open
	pending  int // completions recorded since the last flush
}

// ConfigHash returns the hex SHA-256 of the JSON encoding of config, the
// identity key stored in checkpoint files. Pass a struct containing only
// the fields that determine the run's output (seeds, sizes, grids — not
// worker counts or file paths).
func ConfigHash(config any) (string, error) {
	blob, err := json.Marshal(config)
	if err != nil {
		return "", fmt.Errorf("sim: hash checkpoint config: %w", err)
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:]), nil
}

// OpenCheckpoint opens or creates the checkpoint at path for a run of the
// named experiment with the given identity config and replication count.
// every is the flush interval in completed replications (≤1 flushes after
// every completion). If the file exists it is validated (checksum, schema,
// experiment, config hash, reps) and its completed replications become
// available for resume; if it does not exist an empty checkpoint is
// returned and nothing is written until the first flush.
func OpenCheckpoint(path, experiment string, config any, reps, every int) (*Checkpoint, error) {
	if reps < 0 {
		return nil, fmt.Errorf("sim: checkpoint with negative reps %d", reps)
	}
	if every < 1 {
		every = 1
	}
	sha, err := ConfigHash(config)
	if err != nil {
		return nil, err
	}
	ck := &Checkpoint{
		path:       path,
		experiment: experiment,
		configSHA:  sha,
		reps:       reps,
		every:      every,
		results:    make(map[int]json.RawMessage),
	}
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return ck, nil
	}
	if err != nil {
		return nil, fmt.Errorf("sim: read checkpoint %s: %w", path, err)
	}
	bodyJSON, err := openDocument(raw)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCheckpointCorrupt, path, err)
	}
	var body checkpointBody
	if err := json.Unmarshal(bodyJSON, &body); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCheckpointCorrupt, path, err)
	}
	if body.Schema != checkpointSchema {
		return nil, fmt.Errorf("%w: %s: schema %d, want %d", ErrCheckpointCorrupt, path, body.Schema, checkpointSchema)
	}
	if body.Experiment != experiment {
		return nil, fmt.Errorf("%w: %s: experiment %q, want %q", ErrCheckpointMismatch, path, body.Experiment, experiment)
	}
	if body.ConfigSHA256 != sha {
		return nil, fmt.Errorf("%w: %s: config hash %.12s…, want %.12s… (parameters changed?)",
			ErrCheckpointMismatch, path, body.ConfigSHA256, sha)
	}
	if body.Reps != reps {
		return nil, fmt.Errorf("%w: %s: %d replications, want %d", ErrCheckpointMismatch, path, body.Reps, reps)
	}
	for key, data := range body.Results {
		rep, err := strconv.Atoi(key)
		if err != nil || rep < 0 || rep >= reps {
			return nil, fmt.Errorf("%w: %s: bad replication key %q", ErrCheckpointCorrupt, path, key)
		}
		ck.results[rep] = data
	}
	ck.restored = len(ck.results)
	return ck, nil
}

// Restored returns how many replications were loaded from disk at Open —
// the amount of work a resumed run skips. 0 for a fresh checkpoint.
func (ck *Checkpoint) Restored() int { return ck.restored }

// Indices returns the replication indices currently held, ascending.
func (ck *Checkpoint) Indices() []int {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	out := make([]int, 0, len(ck.results))
	for rep := range ck.results {
		out = append(out, rep)
	}
	sort.Ints(out)
	return out
}

// Done returns how many replications the checkpoint currently holds.
func (ck *Checkpoint) Done() int {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	return len(ck.results)
}

// lookup returns the stored result for a replication, if present.
func (ck *Checkpoint) lookup(rep int) (json.RawMessage, bool) {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	data, ok := ck.results[rep]
	return data, ok
}

// record stores a completed replication and flushes to disk when the flush
// interval is reached. A failed flush is returned but the result stays
// recorded in memory — a later flush retries it.
func (ck *Checkpoint) record(rep int, data json.RawMessage) error {
	ck.mu.Lock()
	ck.results[rep] = data
	ck.pending++
	due := ck.pending >= ck.every
	ck.mu.Unlock()
	if !due {
		return nil
	}
	return ck.Flush()
}

// Flush atomically rewrites the checkpoint file with everything recorded so
// far. Safe to call at any time, including after errors and cancellation —
// flushing partial progress is the entire point.
func (ck *Checkpoint) Flush() error {
	if err := faults.Inject(faults.SiteCheckpoint); err != nil {
		return err
	}
	ck.mu.Lock()
	body := checkpointBody{
		Schema:       checkpointSchema,
		Experiment:   ck.experiment,
		ConfigSHA256: ck.configSHA,
		Reps:         ck.reps,
		Results:      make(map[string]json.RawMessage, len(ck.results)),
	}
	for rep, data := range ck.results {
		body.Results[strconv.Itoa(rep)] = data
	}
	ck.pending = 0
	ck.mu.Unlock()

	doc, err := sealDocument(body)
	if err != nil {
		return fmt.Errorf("sim: encode checkpoint: %w", err)
	}
	return fsio.WriteFileAtomic(ck.path, doc, 0o644)
}

// ParallelCheckpointCtx is ParallelCtx with crash-safe persistence: results
// already present in ck are decoded instead of recomputed, and every fresh
// completion is encoded into ck (flushed to disk per ck's interval, plus a
// final flush on return, complete or cancelled).
//
// Determinism is inherited from ParallelCtx unchanged: the RNG streams are
// split per replication index before any work starts, so recomputing only
// the missing indices yields bit-identical results to an uninterrupted run
// — provided encode/decode round-trip T exactly (JSON does for float64).
// A nil ck degrades to plain ParallelCtx.
func ParallelCheckpointCtx[T any](ctx context.Context, reps, workers int, base *rng.Source, ck *Checkpoint,
	encode func(T) ([]byte, error), decode func([]byte) (T, error),
	fn func(rep int, src *rng.Source) T) ([]T, error) {
	if ck == nil {
		return ParallelCtx(ctx, reps, workers, base, fn)
	}
	if ck.reps != reps {
		return nil, fmt.Errorf("sim: checkpoint opened for %d replications, run has %d", ck.reps, reps)
	}
	// Split every stream up front exactly as ParallelCtx would, then hand the
	// missing indices to a standard run. The wrapped fn first consults the
	// checkpoint; a hit decodes, a miss computes and records.
	var (
		flushMu  sync.Mutex
		flushErr error
	)
	results, err := ParallelCtx(ctx, reps, workers, base, func(rep int, src *rng.Source) T {
		if data, ok := ck.lookup(rep); ok {
			out, derr := decode(data)
			if derr != nil {
				panic(fmt.Sprintf("sim: decode checkpointed replication %d: %v", rep, derr))
			}
			return out
		}
		out := fn(rep, src)
		data, eerr := encode(out)
		if eerr != nil {
			panic(fmt.Sprintf("sim: encode replication %d for checkpoint: %v", rep, eerr))
		}
		if rerr := ck.record(rep, data); rerr != nil {
			// Keep computing — the in-memory results are still good and the
			// final flush below retries the write — but surface the failure.
			flushMu.Lock()
			if flushErr == nil {
				flushErr = rerr
			}
			flushMu.Unlock()
		}
		return out
	})
	if ferr := ck.Flush(); ferr != nil {
		flushMu.Lock()
		if flushErr == nil {
			flushErr = ferr
		}
		flushMu.Unlock()
	}
	if err != nil {
		return results, err
	}
	flushMu.Lock()
	defer flushMu.Unlock()
	return results, flushErr
}
