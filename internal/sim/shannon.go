package sim

import (
	"context"
	"fmt"

	"rayfade/internal/fading"
	"rayfade/internal/network"
	"rayfade/internal/rng"
	"rayfade/internal/sinr"
	"rayfade/internal/stats"
	"rayfade/internal/utility"
)

// ShannonConfig parameterizes the flexible-data-rate experiment: total
// Shannon capacity Σ log(1+γ) under probabilistic access, in both models —
// the non-binary utility regime the paper's Definition 1 admits and its
// capacity results cover.
type ShannonConfig struct {
	Networks      int
	Links         int
	TransmitSeeds int
	FadingSeeds   int
	Probs         []float64
	Alpha         float64
	Noise         float64
	DMin, DMax    float64
	Side          float64
	Power         float64
	Workers       int
	Seed          uint64
	// Exact also evaluates the Rayleigh curve by deterministic quadrature
	// over the Theorem-1 closed form (fading.TotalShannonExact) — slower,
	// but it cross-validates the Monte-Carlo curve with zero variance.
	Exact bool
}

func (c ShannonConfig) withDefaults() ShannonConfig {
	if c.Networks == 0 {
		c.Networks = 10
	}
	if c.Links == 0 {
		c.Links = 100
	}
	if c.TransmitSeeds == 0 {
		c.TransmitSeeds = 10
	}
	if c.FadingSeeds == 0 {
		c.FadingSeeds = 5
	}
	if len(c.Probs) == 0 {
		c.Probs = stats.Linspace(0.1, 1.0, 10)
	}
	if c.Alpha == 0 {
		c.Alpha = 2.2
	}
	if c.Noise == 0 {
		c.Noise = 4e-7
	}
	if c.DMin == 0 && c.DMax == 0 {
		c.DMin, c.DMax = 20, 40
	}
	if c.Side == 0 {
		c.Side = 1000
	}
	if c.Power == 0 {
		c.Power = 2
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
	return c
}

// Shannon experiment curve keys.
const (
	CurveShannonNonFading = "shannon/non-fading"
	CurveShannonRayleigh  = "shannon/rayleigh"
	// CurveShannonExact is present only when Config.Exact is set.
	CurveShannonExact = "shannon/rayleigh-exact"
)

// ShannonResult carries total-capacity curves over the probability grid.
type ShannonResult struct {
	Probs  []float64
	Curves map[string]*stats.Series
	Config ShannonConfig
}

// RunShannon measures E[Σ_i log(1+γ_i)] (nats) against the transmission
// probability in both interference models on the Figure-1 geometry.
func RunShannon(cfg ShannonConfig) *ShannonResult {
	res, _ := RunShannonCtx(context.Background(), cfg)
	return res
}

// RunShannonCtx is RunShannon with cooperative cancellation; it returns nil
// and ctx.Err() when the context is cancelled before the run completes.
func RunShannonCtx(ctx context.Context, cfg ShannonConfig) (*ShannonResult, error) {
	cfg = cfg.withDefaults()
	ctx, finish := beginExperiment(ctx, "sim.shannon",
		"networks", cfg.Networks, "links", cfg.Links, "exact", cfg.Exact, "seed", cfg.Seed)
	defer finish()
	us := utility.Uniform(utility.Shannon{})
	type netResult struct {
		nf, rl, exact *stats.Series
	}
	base := rng.New(cfg.Seed)
	perNet, perErr := ParallelCtx(ctx, cfg.Networks, cfg.Workers, base, func(rep int, src *rng.Source) netResult {
		netCfg := network.Config{
			N:     cfg.Links,
			Area:  squareArea(cfg.Side),
			DMin:  cfg.DMin,
			DMax:  cfg.DMax,
			Alpha: cfg.Alpha,
			Noise: cfg.Noise,
			Power: network.UniformPower{P: cfg.Power},
		}
		net, err := network.Random(netCfg, src)
		if err != nil {
			panic(fmt.Sprintf("sim: shannon network generation: %v", err))
		}
		m := net.Gains()
		out := netResult{nf: stats.NewSeries(cfg.Probs), rl: stats.NewSeries(cfg.Probs)}
		if cfg.Exact {
			out.exact = stats.NewSeries(cfg.Probs)
		}
		active := make([]bool, m.N)
		vals := make([]float64, m.N)
		idx := make([]int, 0, m.N)
		for pi, p := range cfg.Probs {
			for ts := 0; ts < cfg.TransmitSeeds; ts++ {
				for i := range active {
					active[i] = src.Bernoulli(p)
				}
				out.nf.Observe(pi, utility.Sum(us, sinr.ValuesInto(m, active, vals)))
				for fs := 0; fs < cfg.FadingSeeds; fs++ {
					out.rl.Observe(pi, utility.Sum(us, fading.SampleSINRsInto(m, active, src, vals, idx)))
				}
				tickRealizations(cfg.FadingSeeds)
			}
			if cfg.Exact {
				q := fading.UniformProbs(m.N, p)
				v, err := fading.TotalShannonExact(m, q, 1e-7)
				if err != nil {
					panic(fmt.Sprintf("sim: exact Shannon rate: %v", err))
				}
				out.exact.Observe(pi, v)
			}
		}
		return out
	})
	if perErr != nil {
		return nil, perErr
	}
	res := &ShannonResult{Probs: cfg.Probs, Config: cfg, Curves: map[string]*stats.Series{
		CurveShannonNonFading: stats.NewSeries(cfg.Probs),
		CurveShannonRayleigh:  stats.NewSeries(cfg.Probs),
	}}
	if cfg.Exact {
		res.Curves[CurveShannonExact] = stats.NewSeries(cfg.Probs)
	}
	for _, nr := range perNet {
		res.Curves[CurveShannonNonFading].Merge(nr.nf)
		res.Curves[CurveShannonRayleigh].Merge(nr.rl)
		if nr.exact != nil {
			res.Curves[CurveShannonExact].Merge(nr.exact)
		}
	}
	return res, nil
}
