package sim

import (
	"context"
	"fmt"

	"rayfade/internal/fading"
	"rayfade/internal/network"
	"rayfade/internal/obs"
	"rayfade/internal/rng"
	"rayfade/internal/stats"
	"rayfade/internal/transform"
	"rayfade/internal/utility"
)

// ReductionConfig parameterizes the empirical study of Theorem 2: how much
// better the Rayleigh-fading expectation can be than the best single
// non-fading probability level produced by Algorithm 1, as the network
// grows. The theorem bounds the ratio by O(log* n); the experiment measures
// it.
type ReductionConfig struct {
	Sizes         []int   // network sizes n to sweep
	NetworksPer   int     // networks per size
	Prob          float64 // common Rayleigh transmission probability q
	Beta          float64
	SamplesPerStp int // Monte-Carlo samples per simulation step
	Workers       int
	Seed          uint64
}

func (c ReductionConfig) withDefaults() ReductionConfig {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{25, 50, 100, 200}
	}
	if c.NetworksPer == 0 {
		c.NetworksPer = 5
	}
	if c.Prob == 0 {
		c.Prob = 0.8
	}
	if c.Beta == 0 {
		c.Beta = 2.5
	}
	if c.SamplesPerStp == 0 {
		c.SamplesPerStp = 200
	}
	if c.Seed == 0 {
		c.Seed = 4
	}
	return c
}

// ReductionPoint is the measurement at one network size.
type ReductionPoint struct {
	N int
	// Ratio is E[Rayleigh successes] / best-step non-fading value,
	// averaged over networks. Theorem 2 bounds its expectation by a
	// constant (per step) × the number of steps = O(log* n).
	Ratio stats.Running
	// Levels is the number of Algorithm-1 levels at this n (= Θ(log* n)).
	Levels int
	// LogStar is log*₂(n) for reference.
	LogStar int
}

// ReductionResult is the sweep outcome.
type ReductionResult struct {
	Points []ReductionPoint
	Config ReductionConfig
}

// RunReduction measures the empirical Theorem-2 factor across network
// sizes: for each random network it evaluates the exact expected Rayleigh
// success count at the common probability q, runs Algorithm 1's schedule,
// Monte-Carlo-evaluates each level in the non-fading model, and records the
// ratio of the Rayleigh value to the best level's value.
func RunReduction(cfg ReductionConfig) *ReductionResult {
	res, _ := RunReductionCtx(context.Background(), cfg)
	return res
}

// RunReductionCtx is RunReduction with cooperative cancellation; it returns
// nil and ctx.Err() when the context is cancelled before the sweep finishes.
func RunReductionCtx(ctx context.Context, cfg ReductionConfig) (*ReductionResult, error) {
	cfg = cfg.withDefaults()
	ctx, finish := beginExperiment(ctx, "sim.reduction",
		"sizes", len(cfg.Sizes), "networks_per", cfg.NetworksPer, "seed", cfg.Seed)
	defer finish()
	res := &ReductionResult{Config: cfg}
	base := rng.New(cfg.Seed)
	for _, n := range cfg.Sizes {
		// Each network size is one sequential phase of the sweep.
		sizeCtx, sizeSpan := obs.Start(ctx, "size")
		sizeSpan.SetAttr("n", n)
		point := ReductionPoint{
			N:       n,
			Levels:  stats.TowerLevels(n),
			LogStar: stats.LogStar(float64(n)),
		}
		ratios, perErr := ParallelCtx(sizeCtx, cfg.NetworksPer, cfg.Workers, base, func(rep int, src *rng.Source) float64 {
			netCfg := network.Figure1Config()
			netCfg.N = n
			net, err := network.Random(netCfg, src)
			if err != nil {
				panic(fmt.Sprintf("sim: reduction network generation: %v", err))
			}
			m := net.Gains()
			q := fading.UniformProbs(n, cfg.Prob)
			rayleigh := fading.ExpectedSuccessesExact(m, q, cfg.Beta)
			steps := transform.Schedule(q, transform.ScheduleRepeats)
			best, _ := transform.BestStep(m, steps,
				utility.Uniform(utility.Binary{Beta: cfg.Beta}), cfg.SamplesPerStp, src)
			if best.Value.Mean <= 0 {
				// Degenerate tiny instance; count as ratio 1 (the theorem
				// is about non-trivial optima).
				return 1
			}
			return rayleigh / best.Value.Mean
		})
		if perErr != nil {
			sizeSpan.End()
			return nil, perErr
		}
		for _, r := range ratios {
			point.Ratio.Add(r)
		}
		res.Points = append(res.Points, point)
		sizeSpan.End()
	}
	return res, nil
}
