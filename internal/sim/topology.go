package sim

import (
	"context"
	"fmt"

	"rayfade/internal/fading"
	"rayfade/internal/network"
	"rayfade/internal/obs"
	"rayfade/internal/rng"
	"rayfade/internal/stats"
)

// TopologyConfig parameterizes the regular-vs-random topology comparison.
// The throughput-of-regular-networks line of work the paper builds on (Liu
// and Haenggi's fading analysis of square/random topologies) asks how much
// of the behaviour is an artifact of random placement; this experiment puts
// a square grid and a density-matched random network side by side in both
// interference models.
type TopologyConfig struct {
	GridSide      int     // grid is GridSide × GridSide links
	LinkLen       float64 // sender-receiver distance (both topologies)
	Spacing       float64 // grid spacing; random area matches the density
	TransmitSeeds int
	FadingSeeds   int
	Probs         []float64
	Beta          float64
	Alpha         float64
	Noise         float64
	Power         float64
	RandomNets    int // random networks to average over
	Workers       int
	Seed          uint64
}

func (c TopologyConfig) withDefaults() TopologyConfig {
	if c.GridSide == 0 {
		c.GridSide = 10
	}
	if c.LinkLen == 0 {
		c.LinkLen = 30
	}
	if c.Spacing == 0 {
		c.Spacing = 100
	}
	if c.TransmitSeeds == 0 {
		c.TransmitSeeds = 15
	}
	if c.FadingSeeds == 0 {
		c.FadingSeeds = 5
	}
	if len(c.Probs) == 0 {
		c.Probs = stats.Linspace(0.1, 1.0, 10)
	}
	if c.Beta == 0 {
		c.Beta = 2.5
	}
	if c.Alpha == 0 {
		c.Alpha = 2.2
	}
	if c.Noise == 0 {
		c.Noise = 4e-7
	}
	if c.Power == 0 {
		c.Power = 2
	}
	if c.RandomNets == 0 {
		c.RandomNets = 10
	}
	if c.Seed == 0 {
		c.Seed = 6
	}
	return c
}

// Topology comparison curve keys.
const (
	CurveGridNonFading   = "grid/non-fading"
	CurveGridRayleigh    = "grid/rayleigh"
	CurveRandomNonFading = "random/non-fading"
	CurveRandomRayleigh  = "random/rayleigh"
)

// TopologyResult carries the four curves over the probability grid.
type TopologyResult struct {
	Probs  []float64
	Curves map[string]*stats.Series
	Config TopologyConfig
}

// RunTopology measures success-vs-probability curves on the deterministic
// grid and on density-matched random networks, in both models.
func RunTopology(cfg TopologyConfig) *TopologyResult {
	res, _ := RunTopologyCtx(context.Background(), cfg)
	return res
}

// RunTopologyCtx is RunTopology with cooperative cancellation; it returns nil
// and ctx.Err() when the context is cancelled before the run completes.
func RunTopologyCtx(ctx context.Context, cfg TopologyConfig) (*TopologyResult, error) {
	cfg = cfg.withDefaults()
	ctx, finish := beginExperiment(ctx, "sim.topology",
		"grid_side", cfg.GridSide, "random_nets", cfg.RandomNets, "seed", cfg.Seed)
	defer finish()
	res := &TopologyResult{Probs: cfg.Probs, Config: cfg, Curves: map[string]*stats.Series{
		CurveGridNonFading:   stats.NewSeries(cfg.Probs),
		CurveGridRayleigh:    stats.NewSeries(cfg.Probs),
		CurveRandomNonFading: stats.NewSeries(cfg.Probs),
		CurveRandomRayleigh:  stats.NewSeries(cfg.Probs),
	}}

	// Grid: one deterministic topology, averaged over transmit draws.
	_, gridSpan := obs.Start(ctx, "grid")
	grid, err := network.Grid(cfg.GridSide, cfg.GridSide, cfg.Spacing, cfg.LinkLen,
		cfg.Alpha, cfg.Noise, network.UniformPower{P: cfg.Power})
	if err != nil {
		panic(fmt.Sprintf("sim: topology grid: %v", err))
	}
	gm := grid.Gains()
	gridSrc := rng.New(cfg.Seed ^ 0x9e3779b9)
	observeCurves(res.Curves[CurveGridNonFading], res.Curves[CurveGridRayleigh],
		gm, cfg, gridSrc)
	gridSpan.End()

	// Random: density-matched — same number of links on the same area.
	ctx, randomSpan := obs.Start(ctx, "random")
	defer randomSpan.End()
	n := cfg.GridSide * cfg.GridSide
	area := float64(cfg.GridSide) * cfg.Spacing
	type netSeries struct{ nf, rl *stats.Series }
	base := rng.New(cfg.Seed)
	perNet, perErr := ParallelCtx(ctx, cfg.RandomNets, cfg.Workers, base, func(rep int, src *rng.Source) netSeries {
		netCfg := network.Config{
			N:     n,
			Area:  squareArea(area),
			DMin:  cfg.LinkLen * 0.999,
			DMax:  cfg.LinkLen,
			Alpha: cfg.Alpha,
			Noise: cfg.Noise,
			Power: network.UniformPower{P: cfg.Power},
		}
		net, err := network.Random(netCfg, src)
		if err != nil {
			panic(fmt.Sprintf("sim: topology random network: %v", err))
		}
		out := netSeries{nf: stats.NewSeries(cfg.Probs), rl: stats.NewSeries(cfg.Probs)}
		observeCurves(out.nf, out.rl, net.Gains(), cfg, src)
		return out
	})
	if perErr != nil {
		return nil, perErr
	}
	for _, ns := range perNet {
		res.Curves[CurveRandomNonFading].Merge(ns.nf)
		res.Curves[CurveRandomRayleigh].Merge(ns.rl)
	}
	return res, nil
}

// observeCurves fills a non-fading and a Rayleigh series for one matrix,
// reusing one set of kernel scratch buffers across all draws.
func observeCurves(nf, rl *stats.Series, m *network.Matrix, cfg TopologyConfig, src *rng.Source) {
	active := make([]bool, m.N)
	vals := make([]float64, m.N)
	idx := make([]int, 0, m.N)
	for pi, p := range cfg.Probs {
		for ts := 0; ts < cfg.TransmitSeeds; ts++ {
			for i := range active {
				active[i] = src.Bernoulli(p)
			}
			nf.Observe(pi, float64(countNonFadingInto(m, active, cfg.Beta, vals)))
			for fs := 0; fs < cfg.FadingSeeds; fs++ {
				rl.Observe(pi, float64(fading.CountSuccesses(m, active, cfg.Beta, src, vals, idx)))
			}
			tickRealizations(cfg.FadingSeeds)
		}
	}
}
