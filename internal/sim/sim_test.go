package sim

import (
	"bytes"
	"strings"
	"testing"

	"rayfade/internal/progress"
	"rayfade/internal/rng"
	"rayfade/internal/stats"
)

func TestParallelOrderAndDeterminism(t *testing.T) {
	fn := func(rep int, src *rng.Source) float64 {
		return float64(rep) + src.Float64()
	}
	a := Parallel(50, 8, rng.New(9), fn)
	b := Parallel(50, 1, rng.New(9), fn) // sequential must match parallel
	c := Parallel(50, 3, rng.New(9), fn)
	for r := range a {
		if a[r] != b[r] || a[r] != c[r] {
			t.Fatalf("rep %d: results differ across worker counts: %g %g %g", r, a[r], b[r], c[r])
		}
		if int(a[r]) != r {
			t.Fatalf("rep %d: got result for wrong replication: %g", r, a[r])
		}
	}
}

func TestParallelEdgeCases(t *testing.T) {
	if got := Parallel(0, 4, rng.New(1), func(int, *rng.Source) int { return 1 }); len(got) != 0 {
		t.Fatalf("reps=0 returned %v", got)
	}
	got := Parallel(3, 100, rng.New(1), func(rep int, _ *rng.Source) int { return rep * 2 })
	if got[0] != 0 || got[1] != 2 || got[2] != 4 {
		t.Fatalf("got %v", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative reps did not panic")
			}
		}()
		Parallel(-1, 1, rng.New(1), func(int, *rng.Source) int { return 0 })
	}()
}

func TestParallelNotifiesTracker(t *testing.T) {
	tr := progress.New("test", nil)
	SetProgress(tr)
	defer SetProgress(nil)
	Parallel(12, 4, rng.New(3), func(rep int, _ *rng.Source) int { return rep })
	if s := tr.Snapshot(); s.Total != 12 || s.Done != 12 {
		t.Fatalf("tracker saw %d/%d replications, want 12/12", s.Done, s.Total)
	}
}

func TestFigure1CountsRealizations(t *testing.T) {
	tr := progress.New("test", nil)
	SetProgress(tr)
	defer SetProgress(nil)
	cfg := smallFig1()
	cfg.Workers = 2
	RunFigure1(cfg)
	// One batch of FadingSeeds realizations per (network, assignment, prob,
	// transmit seed), with two probability assignments (uniform and sqrt).
	want := int64(cfg.Networks * 2 * len(cfg.Probs) * cfg.TransmitSeeds * cfg.FadingSeeds)
	if s := tr.Snapshot(); s.Realizations != want {
		t.Fatalf("tracker saw %d realizations, want %d", s.Realizations, want)
	}
}

// smallFig1 is a scaled-down Figure-1 config that runs in well under a
// second but exercises every code path.
func smallFig1() Figure1Config {
	return Figure1Config{
		Networks:      4,
		Links:         40,
		TransmitSeeds: 5,
		FadingSeeds:   3,
		Probs:         []float64{0.1, 0.3, 0.5, 0.8, 1.0},
		Seed:          7,
	}
}

func TestRunFigure1Shapes(t *testing.T) {
	res := RunFigure1(smallFig1())
	if len(res.CurveNames()) != 4 {
		t.Fatalf("curves: %v", res.CurveNames())
	}
	for _, name := range res.CurveNames() {
		s := res.Curves[name]
		if len(s.Acc) != 5 {
			t.Fatalf("%s has %d points", name, len(s.Acc))
		}
		for i := range s.Acc {
			if s.Acc[i].N() == 0 {
				t.Fatalf("%s point %d has no observations", name, i)
			}
			m := s.Acc[i].Mean()
			if m < 0 || m > 40 {
				t.Fatalf("%s point %d mean %g outside [0,40]", name, i, m)
			}
		}
	}
	// Sample counts: non-fading = networks×seeds, Rayleigh ×fading seeds.
	if n := res.Curves[CurveUniformNonFading].Acc[0].N(); n != 4*5 {
		t.Fatalf("non-fading samples per point = %d, want 20", n)
	}
	if n := res.Curves[CurveUniformRayleigh].Acc[0].N(); n != 4*5*3 {
		t.Fatalf("Rayleigh samples per point = %d, want 60", n)
	}
}

func TestRunFigure1Deterministic(t *testing.T) {
	// Replication RNG streams are pre-split before fan-out and per-replication
	// series merge in replication order, so the result must be bit-identical
	// for any worker count — including the default (all cores).
	base := smallFig1()
	results := make([]*Figure1Result, 0, 4)
	for _, workers := range []int{1, 4, 8, 0} {
		cfg := base
		cfg.Workers = workers
		results = append(results, RunFigure1(cfg))
	}
	a := results[0]
	for _, b := range results[1:] {
		for _, name := range a.CurveNames() {
			am, bm := a.Curves[name].Means(), b.Curves[name].Means()
			as, bs := a.Curves[name].StdErrs(), b.Curves[name].StdErrs()
			for i := range am {
				if am[i] != bm[i] {
					t.Fatalf("%s point %d differs across worker counts: %g vs %g", name, i, am[i], bm[i])
				}
				// The structure-of-arrays gain matrix must not perturb the
				// accumulation order either: second moments are as sensitive
				// to reordering as means, so pin them too.
				if as[i] != bs[i] {
					t.Fatalf("%s point %d stderr differs across worker counts: %g vs %g", name, i, as[i], bs[i])
				}
			}
		}
	}
}

// The qualitative Figure-1 shape: at q=1 on a dense instance, Rayleigh
// fading lets some links through where the non-fading model predicts almost
// total collapse ("Rayleigh allows more requests to become successful if
// interference is large"); the smoothing property also keeps the Rayleigh
// peak at or below the non-fading peak height.
func TestRunFigure1QualitativeShape(t *testing.T) {
	cfg := Figure1Config{
		Networks:      6,
		Links:         100,
		TransmitSeeds: 8,
		FadingSeeds:   4,
		Probs:         []float64{0.05, 0.15, 0.3, 0.5, 0.75, 1.0},
		Seed:          11,
	}
	res := RunFigure1(cfg)
	nf := res.Curves[CurveUniformNonFading].Means()
	rl := res.Curves[CurveUniformRayleigh].Means()
	last := len(cfg.Probs) - 1
	if rl[last] <= nf[last] {
		t.Fatalf("at q=1 Rayleigh (%.2f) should beat non-fading (%.2f) on dense instances", rl[last], nf[last])
	}
	// Both curves rise then fall (unimodal up to noise): the peak is not at
	// the endpoints.
	for _, curve := range []string{CurveUniformNonFading, CurveUniformRayleigh} {
		p, _, err := res.Peak(curve)
		if err != nil {
			t.Fatalf("Peak(%s): %v", curve, err)
		}
		if p == cfg.Probs[0] {
			t.Fatalf("%s peaks at the left endpoint", curve)
		}
	}
}

func TestFigure1PeakErrorsOnUnknownCurve(t *testing.T) {
	res := RunFigure1(smallFig1())
	if _, _, err := res.Peak("nope"); err == nil {
		t.Fatal("expected error for unknown curve")
	}
}

func TestFigure1PeakErrorsOnEmptySeries(t *testing.T) {
	// A curve over an empty x-grid has no argmax: Peak must surface a clear
	// error rather than the former panic on Probs[-1].
	res := &Figure1Result{
		Probs:  nil,
		Curves: map[string]*stats.Series{CurveUniformRayleigh: stats.NewSeries(nil)},
	}
	if _, _, err := res.Peak(CurveUniformRayleigh); err == nil {
		t.Fatal("expected error for empty series")
	}
}

func smallFig2() Figure2Config {
	return Figure2Config{
		Networks: 3,
		Links:    40,
		Rounds:   40,
		Seed:     5,
	}
}

func TestRunFigure2Shapes(t *testing.T) {
	res := RunFigure2(smallFig2())
	if len(res.Rounds) != 40 {
		t.Fatalf("%d rounds", len(res.Rounds))
	}
	if res.NonFading.Acc[0].N() != 3 || res.Rayleigh.Acc[0].N() != 3 {
		t.Fatalf("per-round sample counts %d/%d", res.NonFading.Acc[0].N(), res.Rayleigh.Acc[0].N())
	}
	if res.GreedyRef.N() != 3 || res.GreedyRef.Mean() <= 0 {
		t.Fatalf("greedy reference %v", res.GreedyRef.Summarize())
	}
	if len(res.Lemma5NF) != 3 || len(res.Lemma5RL) != 3 {
		t.Fatalf("Lemma5 records %d/%d", len(res.Lemma5NF), len(res.Lemma5RL))
	}
	for _, s := range res.Lemma5NF {
		if s.X > s.F+1e-9 {
			t.Fatalf("Lemma5 violated: X=%g F=%g", s.X, s.F)
		}
	}
}

func TestRunFigure2Converges(t *testing.T) {
	cfg := smallFig2()
	cfg.Rounds = 80
	res := RunFigure2(cfg)
	// Converged throughput beats round-1 throughput in both models.
	firstNF := res.NonFading.Acc[0].Mean()
	if res.ConvergedNF.Mean() < firstNF {
		t.Fatalf("non-fading did not improve: round1 %.2f, converged %.2f", firstNF, res.ConvergedNF.Mean())
	}
	// Regret should be small after 80 rounds.
	if res.RegretNF.Mean() > 0.4 || res.RegretRL.Mean() > 0.4 {
		t.Fatalf("regret too high: NF %.3f RL %.3f", res.RegretNF.Mean(), res.RegretRL.Mean())
	}
}

func TestRunFigure2Deterministic(t *testing.T) {
	a := RunFigure2(smallFig2())
	cfg := smallFig2()
	cfg.Workers = 1
	b := RunFigure2(cfg)
	am, bm := a.NonFading.Means(), b.NonFading.Means()
	for i := range am {
		if am[i] != bm[i] {
			t.Fatalf("round %d differs across worker counts", i)
		}
	}
}

func TestRunOptimumSmall(t *testing.T) {
	cfg := OptimumConfig{
		Networks: 4,
		Links:    40,
		Seed:     13,
	}
	res := RunOptimum(cfg)
	if res.Greedy.N() != 4 || res.LocalSearch.N() != 4 {
		t.Fatalf("sample counts %d/%d", res.Greedy.N(), res.LocalSearch.N())
	}
	if res.LocalSearch.Mean() < res.Greedy.Mean() {
		t.Fatalf("local search %.2f below greedy %.2f", res.LocalSearch.Mean(), res.Greedy.Mean())
	}
	if res.LocalSearch.Mean() <= 0 || res.LocalSearch.Mean() > 40 {
		t.Fatalf("optimum estimate %.2f out of range", res.LocalSearch.Mean())
	}
	// Lemma 2 ties the fading value of the optimum set to its size.
	if res.RayleighOfOptimum.Mean() < res.LocalSearch.Mean()/3 {
		t.Fatalf("rayleigh value %.2f below optimum/e floor (opt %.2f)",
			res.RayleighOfOptimum.Mean(), res.LocalSearch.Mean())
	}
	if res.RayleighOfOptimum.Mean() > res.LocalSearch.Mean() {
		t.Fatalf("rayleigh value %.2f exceeds the set size %.2f",
			res.RayleighOfOptimum.Mean(), res.LocalSearch.Mean())
	}
}

func TestRunReduction(t *testing.T) {
	cfg := ReductionConfig{
		Sizes:         []int{10, 30},
		NetworksPer:   3,
		SamplesPerStp: 50,
		Seed:          9,
	}
	res := RunReduction(cfg)
	if len(res.Points) != 2 {
		t.Fatalf("%d points", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Ratio.N() != 3 {
			t.Fatalf("n=%d has %d samples", p.N, p.Ratio.N())
		}
		if p.Ratio.Mean() <= 0 {
			t.Fatalf("n=%d ratio %g", p.N, p.Ratio.Mean())
		}
		// The empirical factor must respect the theorem's O(log* n) form
		// with a generous constant: ratio ≤ 8·(levels+1).
		if p.Ratio.Mean() > 8*float64(p.Levels+1) {
			t.Fatalf("n=%d ratio %.2f breaks the Theorem-2 band (levels=%d)",
				p.N, p.Ratio.Mean(), p.Levels)
		}
		if p.Levels <= 0 || p.LogStar <= 0 {
			t.Fatalf("n=%d: levels=%d logstar=%d", p.N, p.Levels, p.LogStar)
		}
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	s := stats.NewSeries([]float64{1, 2})
	s.Observe(0, 3)
	s.Observe(1, 5)
	var buf bytes.Buffer
	err := WriteSeriesCSV(&buf, "q", []float64{1, 2}, []string{"a"}, map[string]*stats.Series{"a": s})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines: %v", lines)
	}
	if lines[0] != "q,a_mean,a_stderr" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1,3,") {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestWriteSeriesCSVUnknownSeries(t *testing.T) {
	var buf bytes.Buffer
	err := WriteSeriesCSV(&buf, "q", []float64{1}, []string{"missing"}, map[string]*stats.Series{})
	if err == nil {
		t.Fatal("unknown series accepted")
	}
}

func TestMarkdownTable(t *testing.T) {
	s := stats.NewSeries([]float64{1})
	s.Observe(0, 2)
	s.Observe(0, 4)
	var buf bytes.Buffer
	if err := MarkdownTable(&buf, "x", []float64{1}, []string{"curve"}, map[string]*stats.Series{"curve": s}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "| x | curve |") || !strings.Contains(out, "3.00 ±") {
		t.Fatalf("table output:\n%s", out)
	}
}

func TestASCIIChart(t *testing.T) {
	s := stats.NewSeries([]float64{1, 2, 3})
	for i, v := range []float64{1, 5, 2} {
		s.Observe(i, v)
	}
	var buf bytes.Buffer
	if err := ASCIIChart(&buf, []float64{1, 2, 3}, []string{"c"}, map[string]*stats.Series{"c": s}, 8); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "*") {
		t.Fatalf("chart has no glyphs:\n%s", out)
	}
	if !strings.Contains(out, "c") {
		t.Fatalf("chart has no legend:\n%s", out)
	}
}

func TestASCIIChartErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := ASCIIChart(&buf, nil, nil, nil, 8); err == nil {
		t.Fatal("empty grid accepted")
	}
	if err := ASCIIChart(&buf, []float64{1}, []string{"x"}, map[string]*stats.Series{}, 8); err == nil {
		t.Fatal("unknown series accepted")
	}
}

func BenchmarkFigure1Tiny(b *testing.B) {
	cfg := Figure1Config{
		Networks:      2,
		Links:         30,
		TransmitSeeds: 3,
		FadingSeeds:   2,
		Probs:         []float64{0.2, 0.6, 1.0},
		Seed:          1,
	}
	for i := 0; i < b.N; i++ {
		RunFigure1(cfg)
	}
}

func BenchmarkParallelOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Parallel(64, 0, rng.New(1), func(rep int, src *rng.Source) int { return rep })
	}
}
