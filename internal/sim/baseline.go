package sim

import (
	"context"
	"fmt"

	"rayfade/internal/capacity"
	"rayfade/internal/fading"
	"rayfade/internal/graphsched"
	"rayfade/internal/latency"
	"rayfade/internal/network"
	"rayfade/internal/rng"
	"rayfade/internal/stats"
	"rayfade/internal/transform"
)

// BaselineConfig parameterizes the graph-model-vs-SINR comparison: both
// scheduling philosophies on identical instances, evaluated under the true
// SINR constraint and under Rayleigh fading — the quantitative version of
// the paper's introduction ("significantly different techniques than in
// graph-based models have to be applied").
type BaselineConfig struct {
	Networks int
	Links    int
	Beta     float64
	Tau      float64 // conflict-graph threshold
	Workers  int
	Seed     uint64
}

func (c BaselineConfig) withDefaults() BaselineConfig {
	if c.Networks == 0 {
		c.Networks = 10
	}
	if c.Links == 0 {
		c.Links = 100
	}
	if c.Beta == 0 {
		c.Beta = 2.5
	}
	if c.Tau == 0 {
		c.Tau = graphsched.DefaultThreshold
	}
	if c.Seed == 0 {
		c.Seed = 9
	}
	return c
}

// BaselineResult aggregates the comparison.
type BaselineResult struct {
	// Capacity: set sizes and how many of the selected links actually
	// succeed under the SINR constraint / in expectation under Rayleigh.
	GraphSetSize   stats.Running
	GraphSINRValid stats.Running // SINR-valid links in the graph set
	GraphRayleigh  stats.Running // exact E[successes] of the graph set
	SINRSetSize    stats.Running
	SINRRayleigh   stats.Running
	// Latency: schedule lengths and violations.
	GraphSlots      stats.Running
	GraphViolations stats.Running // scheduled links failing the SINR check
	SINRSlots       stats.Running
	// RayleighReplaySlots: slots for the SINR schedule replayed under
	// fading with the Section-4 factor.
	SINRRayleighSlots stats.Running
	Config            BaselineConfig
}

// RunBaseline compares conflict-graph scheduling to SINR-aware scheduling.
func RunBaseline(cfg BaselineConfig) *BaselineResult {
	res, _ := RunBaselineCtx(context.Background(), cfg)
	return res
}

// RunBaselineCtx is RunBaseline with cooperative cancellation; it returns
// nil and ctx.Err() when the context is cancelled before the sweep finishes.
func RunBaselineCtx(ctx context.Context, cfg BaselineConfig) (*BaselineResult, error) {
	cfg = cfg.withDefaults()
	ctx, finish := beginExperiment(ctx, "sim.baseline",
		"networks", cfg.Networks, "links", cfg.Links, "seed", cfg.Seed)
	defer finish()
	type netResult struct {
		gSize, gValid, gRay   float64
		sSize, sRay           float64
		gSlots, gViol, sSlots float64
		sRaySlots             float64
	}
	base := rng.New(cfg.Seed)
	perNet, perErr := ParallelCtx(ctx, cfg.Networks, cfg.Workers, base, func(rep int, src *rng.Source) netResult {
		netCfg := network.Figure1Config()
		netCfg.N = cfg.Links
		net, err := network.Random(netCfg, src)
		if err != nil {
			panic(fmt.Sprintf("sim: baseline network generation: %v", err))
		}
		m := net.Gains()
		var out netResult

		// Capacity: graph independent set vs SINR greedy.
		g := graphsched.FromMatrix(m, cfg.Beta, cfg.Tau)
		gSet := g.IndependentSet()
		out.gSize = float64(len(gSet))
		ev := graphsched.EvaluateSchedule(m, [][]int{gSet}, cfg.Beta)
		out.gValid = float64(ev.SINRSuccesses)
		out.gRay = fading.ExpectedBinaryValueOfSet(m, gSet, cfg.Beta)

		sSet := capacity.GreedyUniform(net, cfg.Beta)
		out.sSize = float64(len(sSet))
		out.sRay = fading.ExpectedBinaryValueOfSet(m, sSet, cfg.Beta)

		// Latency: coloring vs repeated capacity.
		classes := g.Coloring()
		out.gSlots = float64(len(classes))
		out.gViol = float64(graphsched.EvaluateSchedule(m, classes, cfg.Beta).Violations)
		capFn := latency.GreedyCapacity(capacity.LengthOrder(net), capacity.DefaultTau)
		sched, err := latency.RepeatedCapacity(m, cfg.Beta, capFn)
		if err != nil {
			panic(fmt.Sprintf("sim: baseline scheduling: %v", err))
		}
		out.sSlots = float64(len(sched))
		slots, done := latency.RepeatUntilDone(m, sched, cfg.Beta,
			transform.AlohaRepeats, 10000, latency.Rayleigh{Src: src.Split()})
		if done {
			out.sRaySlots = float64(slots)
		}
		return out
	})
	if perErr != nil {
		return nil, perErr
	}
	res := &BaselineResult{Config: cfg}
	for _, nr := range perNet {
		res.GraphSetSize.Add(nr.gSize)
		res.GraphSINRValid.Add(nr.gValid)
		res.GraphRayleigh.Add(nr.gRay)
		res.SINRSetSize.Add(nr.sSize)
		res.SINRRayleigh.Add(nr.sRay)
		res.GraphSlots.Add(nr.gSlots)
		res.GraphViolations.Add(nr.gViol)
		res.SINRSlots.Add(nr.sSlots)
		if nr.sRaySlots > 0 {
			res.SINRRayleighSlots.Add(nr.sRaySlots)
		}
	}
	return res, nil
}
