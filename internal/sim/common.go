package sim

import (
	"rayfade/internal/geom"
	"rayfade/internal/network"
	"rayfade/internal/sinr"
)

// squareArea returns the [0,side]² deployment area.
func squareArea(side float64) geom.Rect { return geom.Square(side) }

// countNonFading counts active links reaching beta in the non-fading model.
func countNonFading(m *network.Matrix, active []bool, beta float64) int {
	return sinr.CountSuccesses(m, active, beta)
}

// countNonFadingInto is the buffer-reusing variant of countNonFading: vals
// must have length m.N and is overwritten.
func countNonFadingInto(m *network.Matrix, active []bool, beta float64, vals []float64) int {
	sinr.ValuesInto(m, active, vals)
	count := 0
	for i, a := range active {
		if a && vals[i] >= beta {
			count++
		}
	}
	return count
}

// tickRealizations batches fading-realization counts into the installed
// progress tracker, if any.
func tickRealizations(n int) {
	activeTracker().AddRealizations(n)
}
