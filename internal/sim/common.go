package sim

import (
	"rayfade/internal/geom"
	"rayfade/internal/network"
	"rayfade/internal/sinr"
)

// squareArea returns the [0,side]² deployment area.
func squareArea(side float64) geom.Rect { return geom.Square(side) }

// countNonFading counts active links reaching beta in the non-fading model.
func countNonFading(m *network.Matrix, active []bool, beta float64) int {
	return sinr.CountSuccesses(m, active, beta)
}
