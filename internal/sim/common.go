package sim

import (
	"context"
	"time"

	"rayfade/internal/geom"
	"rayfade/internal/network"
	"rayfade/internal/obs"
	"rayfade/internal/sinr"
)

// squareArea returns the [0,side]² deployment area.
func squareArea(side float64) geom.Rect { return geom.Square(side) }

// countNonFading counts active links reaching beta in the non-fading model.
func countNonFading(m *network.Matrix, active []bool, beta float64) int {
	return sinr.CountSuccesses(m, active, beta)
}

// countNonFadingInto is the buffer-reusing variant of countNonFading: vals
// must have length m.N and is overwritten.
func countNonFadingInto(m *network.Matrix, active []bool, beta float64, vals []float64) int {
	sinr.ValuesInto(m, active, vals)
	count := 0
	for i, a := range active {
		if a && vals[i] >= beta {
			count++
		}
	}
	return count
}

// tickRealizations batches fading-realization counts into the installed
// progress tracker, if any.
func tickRealizations(n int) {
	activeTracker().AddRealizations(n)
}

// beginExperiment opens the root span for one experiment run, annotates it
// with the key parameters (kv alternates string keys and values), and emits
// a start log record. The returned finish func ends the span and logs the
// elapsed time; callers defer it. Observability only — it must never touch
// the experiment RNG streams.
func beginExperiment(ctx context.Context, name string, kv ...any) (context.Context, func()) {
	start := time.Now()
	ctx, sp := obs.Start(ctx, name)
	for i := 0; i+1 < len(kv); i += 2 {
		if k, ok := kv[i].(string); ok {
			sp.SetAttr(k, kv[i+1])
		}
	}
	log := activeLogger()
	args := make([]any, 0, len(kv)+4)
	args = append(args, "experiment", name)
	if id := obs.RunID(ctx); id != "" {
		args = append(args, "run_id", id)
	}
	args = append(args, kv...)
	log.Info("experiment start", args...)
	return ctx, func() {
		sp.End()
		log.Info("experiment done", "experiment", name, "elapsed", time.Since(start).Round(time.Millisecond).String())
	}
}
