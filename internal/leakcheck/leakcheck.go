// Package leakcheck is a minimal goroutine-leak detector shared by the
// pool and sim test suites. It snapshots the goroutine count at the start
// of a test and fails the test at cleanup if the count has not returned to
// (at most) the starting level after a short grace period.
//
// Count-based checking is deliberately simple: it cannot name the leaked
// goroutine, but it needs no dependencies and is immune to the stack-label
// churn that makes dump-parsing detectors brittle. Runtime-internal
// goroutines that appear once per process (e.g. the first timer) are
// absorbed by the retry loop's grace period.
package leakcheck

import (
	"runtime"
	"testing"
	"time"
)

// Check registers a cleanup on t that fails the test if goroutines leaked
// during it. Call it first thing in the test, before spawning anything.
func Check(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		// Goroutines unwind asynchronously after channel closes and
		// WaitGroup releases; give them a moment before declaring a leak.
		deadline := time.Now().Add(2 * time.Second)
		var after int
		for {
			runtime.Gosched()
			after = runtime.NumGoroutine()
			if after <= before || time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if after > before {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Errorf("leakcheck: %d goroutines before, %d after\n%s", before, after, buf[:n])
		}
	})
}
