package faults

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"seed=5",                      // arms nothing
		"pool.job",                    // no '='
		"pool.job=panic",              // no prob
		"pool.job=panic:0.5:1ms",      // panic takes no param
		"pool.job=error:0.5:x",        // error takes no param
		"pool.job=explode:0.5",        // unknown kind
		"pool.job=panic:1.5",          // prob out of range
		"pool.job=panic:-0.1",         // prob out of range
		"pool.job=panic:NaN",          // prob NaN
		"pool.job=delay:0.5:-3ms",     // negative delay
		"pool.job=delay:0.5:bogus",    // unparsable duration
		"fsio.write=partial:0.5:1.0",  // fraction must be < 1
		"fsio.write=partial:0.5:-0.1", // fraction must be >= 0
		"seed=abc,pool.job=panic:0.5", // bad seed
		"pool.job=panic:0.5:1:2",      // too many parts
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q): want error, got nil", spec)
		}
	}
}

func TestParseAccepts(t *testing.T) {
	inj, err := Parse("seed=9, pool.job=panic:0.25, server.handler=error:1, sim.replication=delay:0.5:2ms, fsio.write=partial:1:0.25")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if inj.seed != 9 {
		t.Fatalf("seed = %d, want 9", inj.seed)
	}
	if len(inj.sites) != 4 {
		t.Fatalf("sites = %d, want 4", len(inj.sites))
	}
}

func TestNilInjectorIsNoOp(t *testing.T) {
	var inj *Injector
	if err := inj.Inject(SitePoolJob); err != nil {
		t.Fatalf("nil Inject: %v", err)
	}
	if n, fail := inj.PartialWrite(SiteFileWrite, 100); fail || n != 0 {
		t.Fatalf("nil PartialWrite = (%d, %v)", n, fail)
	}
	if inj.Snapshot() != nil {
		t.Fatal("nil Snapshot should be nil")
	}
	if inj.Fired() != 0 {
		t.Fatal("nil Fired should be 0")
	}
	if inj.Summary() != "no faults fired" {
		t.Fatalf("nil Summary = %q", inj.Summary())
	}
}

func TestPackageHelpersWithNoDefault(t *testing.T) {
	SetDefault(nil)
	if Enabled() {
		t.Fatal("Enabled with no default injector")
	}
	if err := Inject(SiteHandler); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	if n, fail := PartialWrite(SiteFileWrite, 64); fail || n != 0 {
		t.Fatalf("PartialWrite = (%d, %v)", n, fail)
	}
}

func TestErrorFault(t *testing.T) {
	inj, err := Parse("server.handler=error:1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		err := inj.Inject(SiteHandler)
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("Inject #%d = %v, want ErrInjected", i, err)
		}
		if !strings.Contains(err.Error(), SiteHandler) {
			t.Fatalf("error %q does not name the site", err)
		}
	}
	// Unarmed site on the same injector stays clean.
	if err := inj.Inject(SitePoolJob); err != nil {
		t.Fatalf("unarmed site: %v", err)
	}
	if got := inj.Snapshot()["server.handler/error"]; got != 3 {
		t.Fatalf("fired = %d, want 3", got)
	}
	if inj.Fired() != 3 {
		t.Fatalf("Fired = %d, want 3", inj.Fired())
	}
	if want := "server.handler/error=3"; inj.Summary() != want {
		t.Fatalf("Summary = %q, want %q", inj.Summary(), want)
	}
}

func TestPanicFault(t *testing.T) {
	inj, err := Parse("pool.job=panic:1")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "injected panic") || !strings.Contains(msg, SitePoolJob) {
			t.Fatalf("panic value = %v", r)
		}
	}()
	inj.Inject(SitePoolJob)
}

func TestDelayFault(t *testing.T) {
	inj, err := Parse("sim.replication=delay:1:30ms")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := inj.Inject(SiteReplication); err != nil {
		t.Fatalf("delay should not error: %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("delay too short: %v", d)
	}
	if got := inj.Snapshot()["sim.replication/delay"]; got != 1 {
		t.Fatalf("fired = %d, want 1", got)
	}
}

func TestPartialWriteFault(t *testing.T) {
	inj, err := Parse("fsio.write=partial:1:0.25")
	if err != nil {
		t.Fatal(err)
	}
	n, fail := inj.PartialWrite(SiteFileWrite, 100)
	if !fail || n != 25 {
		t.Fatalf("PartialWrite = (%d, %v), want (25, true)", n, fail)
	}
	// Partial rules must not leak into Inject.
	if err := inj.Inject(SiteFileWrite); err != nil {
		t.Fatalf("Inject on partial-only site: %v", err)
	}
}

func TestDeterministicSequence(t *testing.T) {
	spec := "seed=42,server.handler=error:0.5"
	draw := func() []bool {
		inj, err := Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 64)
		for i := range out {
			out[i] = inj.Inject(SiteHandler) != nil
		}
		return out
	}
	a, b := draw(), draw()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same spec produced different fault sequences")
	}
	fired := 0
	for _, f := range a {
		if f {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("prob 0.5 over %d draws fired %d times; stream looks degenerate", len(a), fired)
	}
}

func TestSeedChangesSequence(t *testing.T) {
	seq := func(spec string) []bool {
		inj, err := Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 64)
		for i := range out {
			out[i] = inj.Inject(SiteHandler) != nil
		}
		return out
	}
	if reflect.DeepEqual(seq("seed=1,server.handler=error:0.5"), seq("seed=2,server.handler=error:0.5")) {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestSiteStreamsIndependent(t *testing.T) {
	// Adding a second site must not perturb the first site's sequence.
	seq := func(spec string) []bool {
		inj, err := Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 64)
		for i := range out {
			out[i] = inj.Inject(SiteHandler) != nil
		}
		return out
	}
	solo := seq("seed=7,server.handler=error:0.5")
	joint := seq("seed=7,pool.job=panic:0.9,server.handler=error:0.5")
	if !reflect.DeepEqual(solo, joint) {
		t.Fatal("arming an unrelated site changed this site's sequence")
	}
}

func TestZeroProbabilityNeverFires(t *testing.T) {
	inj, err := Parse("server.handler=error:0")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := inj.Inject(SiteHandler); err != nil {
			t.Fatalf("prob 0 fired at draw %d", i)
		}
	}
	if inj.Fired() != 0 {
		t.Fatalf("Fired = %d, want 0", inj.Fired())
	}
}

func TestConcurrentInjectIsSafe(t *testing.T) {
	inj, err := Parse("server.handler=error:0.5,server.handler=delay:0.1:0s")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				inj.Inject(SiteHandler)
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	inj.Snapshot() // must not race with anything above
}

func BenchmarkInjectDisabled(b *testing.B) {
	SetDefault(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Inject(SiteReplication); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCheckReturnsDelayWithoutSleeping(t *testing.T) {
	inj, err := Parse("seed=3,client.latency=delay:1:250ms")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	d, cerr := inj.Check(SiteClientLatency)
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Fatalf("Check slept %v; it must return the delay instead", elapsed)
	}
	if cerr != nil {
		t.Fatalf("Check error: %v", cerr)
	}
	if d != 250*time.Millisecond {
		t.Fatalf("Check delay = %v, want 250ms", d)
	}
	if got := inj.Snapshot()["client.latency/delay"]; got != 1 {
		t.Fatalf("fired tally = %d, want 1", got)
	}
}

func TestCheckReturnsErrorAndDelayTogether(t *testing.T) {
	inj, err := Parse("seed=3,client.blackhole=error:1,client.blackhole=delay:1:5ms")
	if err != nil {
		t.Fatal(err)
	}
	d, cerr := inj.Check(SiteClientBlackhole)
	if !errors.Is(cerr, ErrInjected) {
		t.Fatalf("Check error = %v, want ErrInjected", cerr)
	}
	if d != 5*time.Millisecond {
		t.Fatalf("Check delay = %v, want 5ms", d)
	}
}

func TestCheckNilSafe(t *testing.T) {
	var inj *Injector
	if d, err := inj.Check(SiteClientLatency); d != 0 || err != nil {
		t.Fatalf("nil Check = (%v, %v)", d, err)
	}
	SetDefault(nil)
	if d, err := Check(SiteClientBlackhole); d != 0 || err != nil {
		t.Fatalf("package Check with no default = (%v, %v)", d, err)
	}
}
