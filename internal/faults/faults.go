// Package faults is the repo's deterministic fault-injection layer: named
// injection sites threaded through the worker pool, the HTTP handlers, the
// file-write path, and the simulation replication bodies, each of which can
// be armed with a probabilistic fault (panic, delay, transient error,
// partial write) from a -faults spec string.
//
// Design constraints, mirroring internal/obs:
//
//  1. Zero-cost no-op when disabled. Instrumented code calls
//     faults.Inject(site) unconditionally; with no injector installed the
//     call is one atomic load and a nil return — no allocation, no lock.
//     This is what keeps the 0 allocs/op kernel benchmarks at 0 and lets
//     the sites stay compiled into production binaries.
//  2. Deterministic. Every fault decision is drawn from a split rng.Source
//     seeded by the spec (never from the experiment streams), so a chaos
//     run is reproducible: the same spec and seed arm the same per-site
//     decision sequence. Under concurrency the assignment of decisions to
//     goroutines still depends on scheduling — what is pinned is the
//     per-site sequence, which suffices to replay "roughly this fault
//     density at this site".
//  3. Observable. The injector counts every fired fault per site and kind
//     (Snapshot), so chaos tests can assert that faults actually fired and
//     CLIs can print a summary.
//
// Spec grammar (comma-separated clauses):
//
//	spec   := clause ("," clause)*
//	clause := "seed=" uint64
//	        | site "=" kind ":" prob [":" param]
//	kind   := "panic" | "delay" | "error" | "partial"
//	prob   := float in [0,1]
//	param  := duration (delay, default 1ms)
//	        | fraction in [0,1) of bytes written before failing (partial, default 0.5)
//
// Example: "seed=7,pool.job=panic:0.05,server.handler=error:0.2,fsio.write=partial:0.1"
package faults

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rayfade/internal/rng"
)

// Canonical site names. Sites are plain strings so downstream code can add
// its own, but the threaded-through sites use these constants to keep specs
// and call sites from drifting apart.
const (
	// SitePoolJob fires as a pool worker picks up a job, before the job
	// body runs (server.Pool).
	SitePoolJob = "pool.job"
	// SiteHandler fires at the top of every /v1 compute request pipeline
	// (internal/server).
	SiteHandler = "server.handler"
	// SiteFileWrite fires inside the atomic file-write path
	// (internal/fsio); kind "partial" writes a prefix of the temp file and
	// fails before the rename, simulating a crash mid-write.
	SiteFileWrite = "fsio.write"
	// SiteReplication fires at the start of every sim.ParallelCtx
	// replication body. Kinds "panic" and "error" both escalate to a panic
	// there (a replication has no error channel) — the crash the
	// checkpoint/resume machinery exists to survive.
	SiteReplication = "sim.replication"
	// SiteCheckpoint fires before each checkpoint flush (internal/sim),
	// upstream of the fsio partial-write site.
	SiteCheckpoint = "sim.checkpoint"
	// SiteDistShard fires in the coordinator as it is about to dispatch a
	// shard to a worker (internal/dist). Kind "error" simulates a failed
	// dispatch: the shard's lease is released and it is reassigned — the
	// same path a dead worker exercises, made deterministic for tests.
	SiteDistShard = "dist.shard"
	// SiteClientLatency fires before every HTTP attempt in internal/client.
	// Kind "delay" simulates a slow link: the client applies the returned
	// delay through its injectable Sleep (via Check), so chaos tests advance
	// a fake clock instead of really sleeping. Kind "error" behaves like a
	// blackhole on this attempt.
	SiteClientLatency = "client.latency"
	// SiteClientBlackhole fires before every HTTP attempt in internal/client.
	// Kind "error" simulates a network partition: the attempt fails before
	// reaching the wire and is retried per the client's policy — the
	// deterministic stand-in for pulling a worker's cable, driving the
	// coordinator's lease-reassignment and quarantine paths in tests.
	SiteClientBlackhole = "client.blackhole"
)

// Kind enumerates the injectable faults.
type Kind uint8

const (
	KindPanic Kind = iota
	KindDelay
	KindError
	KindPartial
)

// String names the kind as it appears in specs and snapshots.
func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	case KindError:
		return "error"
	case KindPartial:
		return "partial"
	default:
		return fmt.Sprintf("kind(%d)", k)
	}
}

// ErrInjected is the sentinel wrapped by every injected transient error, so
// callers (and tests) can classify failures with errors.Is.
var ErrInjected = errors.New("faults: injected transient error")

// rule is one armed fault on a site.
type rule struct {
	kind  Kind
	prob  float64
	delay time.Duration // KindDelay
	frac  float64       // KindPartial: fraction of bytes written before failing
	fired atomic.Uint64
}

// site holds one injection point's rules and its private RNG stream. The
// mutex serializes draws so the per-site decision sequence is well-defined
// even when many goroutines hit the site.
type site struct {
	mu    sync.Mutex
	src   *rng.Source
	rules []*rule
}

// Injector is a parsed fault plan. A nil *Injector is a valid "injection
// off" value everywhere.
type Injector struct {
	seed  uint64
	sites map[string]*site
}

// Parse builds an Injector from a spec string (see the package comment for
// the grammar). An empty spec yields an error — use SetDefault(nil) to
// disable injection.
func Parse(spec string) (*Injector, error) {
	inj := &Injector{seed: 1, sites: make(map[string]*site)}
	type parsed struct {
		site string
		r    *rule
	}
	var rules []parsed
	clauses := strings.Split(spec, ",")
	armed := false
	for _, clause := range clauses {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, rest, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("faults: clause %q is not site=kind:prob[:param] or seed=N", clause)
		}
		name = strings.TrimSpace(name)
		if name == "seed" {
			seed, err := strconv.ParseUint(rest, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed %q: %v", rest, err)
			}
			inj.seed = seed
			continue
		}
		parts := strings.Split(rest, ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("faults: clause %q wants kind:prob[:param]", clause)
		}
		r := &rule{}
		switch parts[0] {
		case "panic":
			r.kind = KindPanic
		case "delay":
			r.kind = KindDelay
			r.delay = time.Millisecond
		case "error":
			r.kind = KindError
		case "partial":
			r.kind = KindPartial
			r.frac = 0.5
		default:
			return nil, fmt.Errorf("faults: unknown kind %q (want panic, delay, error, or partial)", parts[0])
		}
		prob, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || prob < 0 || prob > 1 || prob != prob {
			return nil, fmt.Errorf("faults: probability %q outside [0,1]", parts[1])
		}
		r.prob = prob
		if len(parts) == 3 {
			switch r.kind {
			case KindDelay:
				d, err := time.ParseDuration(parts[2])
				if err != nil || d < 0 {
					return nil, fmt.Errorf("faults: bad delay %q", parts[2])
				}
				r.delay = d
			case KindPartial:
				f, err := strconv.ParseFloat(parts[2], 64)
				if err != nil || f < 0 || f >= 1 || f != f {
					return nil, fmt.Errorf("faults: partial fraction %q outside [0,1)", parts[2])
				}
				r.frac = f
			default:
				return nil, fmt.Errorf("faults: kind %q takes no parameter (clause %q)", parts[0], clause)
			}
		}
		rules = append(rules, parsed{site: name, r: r})
		armed = true
	}
	if !armed {
		return nil, errors.New("faults: spec arms no site (did you mean to omit -faults?)")
	}
	// Site streams are derived after the seed is known, whichever clause
	// order the spec used: seed ^ FNV(site) re-keys each site independently,
	// so adding a site to a spec does not shift another site's sequence.
	for _, p := range rules {
		s, ok := inj.sites[p.site]
		if !ok {
			h := fnv.New64a()
			h.Write([]byte(p.site))
			s = &site{src: rng.New(inj.seed ^ h.Sum64())}
			inj.sites[p.site] = s
		}
		s.rules = append(s.rules, p.r)
	}
	return inj, nil
}

// defaultInjector is the process-wide injector observed by the package-level
// helpers; nil means injection is off (the production default).
var defaultInjector atomic.Pointer[Injector]

// SetDefault installs (or, with nil, removes) the process-default injector.
func SetDefault(inj *Injector) {
	if inj == nil {
		defaultInjector.Store(nil)
		return
	}
	defaultInjector.Store(inj)
}

// Default returns the process-default injector, or nil.
func Default() *Injector { return defaultInjector.Load() }

// Enabled reports whether a process-default injector is installed.
func Enabled() bool { return defaultInjector.Load() != nil }

// Inject evaluates the named site's panic/delay/error rules on the
// process-default injector: a firing delay sleeps, a firing panic panics
// (with a recognizable "faults: injected panic" message), and a firing
// error returns a wrapped ErrInjected. With no injector installed it is a
// single atomic load.
func Inject(siteName string) error {
	return defaultInjector.Load().Inject(siteName)
}

// PartialWrite evaluates the named site's partial-write rule on the
// process-default injector. When it fires it returns (prefix length, true):
// the caller must write only that prefix and fail without completing the
// operation. (0, false) means write normally.
func PartialWrite(siteName string, n int) (int, bool) {
	return defaultInjector.Load().PartialWrite(siteName, n)
}

// Check evaluates the named site's rules on the process-default injector
// like Inject, but returns any firing delay instead of sleeping it off, so
// callers with injectable clocks (internal/client) can apply the delay
// through their own Sleep. A firing panic rule still panics; a firing error
// rule is returned as a wrapped ErrInjected alongside the delay. With no
// injector installed it is a single atomic load.
func Check(siteName string) (time.Duration, error) {
	return defaultInjector.Load().Check(siteName)
}

// Inject is the method form of the package-level Inject; nil-safe.
func (inj *Injector) Inject(siteName string) error {
	d, err := inj.Check(siteName)
	if d > 0 {
		time.Sleep(d)
	}
	return err
}

// Check is the method form of the package-level Check; nil-safe.
func (inj *Injector) Check(siteName string) (time.Duration, error) {
	if inj == nil {
		return 0, nil
	}
	s, ok := inj.sites[siteName]
	if !ok {
		return 0, nil
	}
	var (
		sleep time.Duration
		act   *rule
	)
	s.mu.Lock()
	for _, r := range s.rules {
		if r.kind == KindPartial {
			continue // evaluated by PartialWrite only
		}
		if s.src.Float64() < r.prob {
			switch r.kind {
			case KindDelay:
				// Delays accumulate (several delay rules may fire on one
				// visit); panic/error act on the first firing rule.
				r.fired.Add(1)
				sleep += r.delay
			default:
				if act == nil {
					r.fired.Add(1)
					act = r
				}
			}
		}
	}
	s.mu.Unlock()
	if act == nil {
		return sleep, nil
	}
	switch act.kind {
	case KindPanic:
		panic(fmt.Sprintf("faults: injected panic at site %q", siteName))
	default:
		return sleep, fmt.Errorf("faults: site %q: %w", siteName, ErrInjected)
	}
}

// PartialWrite is the method form of the package-level PartialWrite;
// nil-safe.
func (inj *Injector) PartialWrite(siteName string, n int) (int, bool) {
	if inj == nil {
		return 0, false
	}
	s, ok := inj.sites[siteName]
	if !ok {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.rules {
		if r.kind != KindPartial {
			continue
		}
		if s.src.Float64() < r.prob {
			r.fired.Add(1)
			return int(float64(n) * r.frac), true
		}
	}
	return 0, false
}

// Snapshot returns the fired-fault tallies keyed "site/kind", for chaos
// assertions and CLI summaries. Nil-safe (nil map).
func (inj *Injector) Snapshot() map[string]uint64 {
	if inj == nil {
		return nil
	}
	out := make(map[string]uint64)
	for name, s := range inj.sites {
		for _, r := range s.rules {
			out[name+"/"+r.kind.String()] += r.fired.Load()
		}
	}
	return out
}

// Fired returns the total number of injected faults across all sites.
// Nil-safe (0).
func (inj *Injector) Fired() uint64 {
	var total uint64
	for _, n := range inj.Snapshot() {
		total += n
	}
	return total
}

// Summary renders the snapshot as one human line ("site/kind=n ..." sorted),
// or "no faults fired". Nil-safe.
func (inj *Injector) Summary() string {
	snap := inj.Snapshot()
	keys := make([]string, 0, len(snap))
	for k, n := range snap {
		if n > 0 {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return "no faults fired"
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, snap[k])
	}
	return strings.Join(parts, " ")
}
