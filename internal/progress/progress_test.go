package progress

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounters(t *testing.T) {
	tr := New("exp", nil)
	tr.AddTotal(10)
	tr.AddTotal(5)
	for i := 0; i < 6; i++ {
		tr.ReplicationDone()
	}
	tr.AddRealizations(1000)
	tr.AddRealizations(234)
	s := tr.Snapshot()
	if s.Total != 15 || s.Done != 6 || s.Realizations != 1234 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.Label != "exp" {
		t.Fatalf("label %q", s.Label)
	}
	if s.Elapsed <= 0 {
		t.Fatalf("elapsed %v", s.Elapsed)
	}
	if s.ETA <= 0 {
		t.Fatalf("ETA %v should be positive with work remaining", s.ETA)
	}
}

func TestETAZeroBeforeFirstReplication(t *testing.T) {
	tr := New("exp", nil)
	tr.AddTotal(10)
	if eta := tr.Snapshot().ETA; eta != 0 {
		t.Fatalf("ETA %v before any replication completed", eta)
	}
}

func TestNilTrackerIsSafe(t *testing.T) {
	var tr *Tracker
	tr.AddTotal(3)
	tr.ReplicationDone()
	tr.AddRealizations(7)
	tr.Start(time.Second)
	tr.Stop()
	if s := tr.Snapshot(); s != (Snapshot{}) {
		t.Fatalf("nil tracker snapshot %+v", s)
	}
}

func TestConcurrentCounting(t *testing.T) {
	tr := New("exp", nil)
	tr.AddTotal(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				tr.ReplicationDone()
				tr.AddRealizations(100)
			}
		}()
	}
	wg.Wait()
	s := tr.Snapshot()
	if s.Done != 64 || s.Realizations != 6400 {
		t.Fatalf("snapshot %+v", s)
	}
}

func TestStopPrintsFinalLine(t *testing.T) {
	var buf bytes.Buffer
	tr := New("figure1", &buf)
	tr.AddTotal(4)
	tr.ReplicationDone()
	tr.AddRealizations(2_500_000)
	tr.Start(time.Hour) // interval never fires; only the final line prints
	tr.Stop()
	out := buf.String()
	if !strings.Contains(out, "figure1: 1/4 replications") {
		t.Fatalf("final line %q lacks replication counts", out)
	}
	if !strings.Contains(out, "2.50M realizations") {
		t.Fatalf("final line %q lacks realization count", out)
	}
	// A second Stop on an already-stopped tracker is safe and prints again.
	tr.Stop()
}

func TestPeriodicReporting(t *testing.T) {
	var buf safeBuffer
	tr := New("exp", &buf)
	tr.AddTotal(2)
	tr.Start(5 * time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for buf.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	tr.Stop()
	if !strings.Contains(buf.String(), "exp: 0/2 replications") {
		t.Fatalf("periodic output %q", buf.String())
	}
}

func TestSnapshotStringOmitsEmptySections(t *testing.T) {
	s := Snapshot{Label: "x", Done: 0, Total: 0, Elapsed: 3 * time.Second}
	out := s.String()
	if strings.Contains(out, "realizations") || strings.Contains(out, "eta") || strings.Contains(out, "%") {
		t.Fatalf("zero-value snapshot renders optional sections: %q", out)
	}
}

func TestCountString(t *testing.T) {
	for n, want := range map[int64]string{
		12:            "12",
		1_500:         "1.5k",
		2_500_000:     "2.50M",
		3_000_000_000: "3.00G",
	} {
		if got := countString(n); got != want {
			t.Errorf("countString(%d) = %q, want %q", n, got, want)
		}
	}
}

// safeBuffer serializes access between the reporter goroutine and the test.
type safeBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *safeBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *safeBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Len()
}

func (b *safeBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
