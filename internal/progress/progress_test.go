package progress

import (
	"bytes"
	"io"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"rayfade/internal/obs"
)

func TestCounters(t *testing.T) {
	tr := New("exp", nil)
	tr.AddTotal(10)
	tr.AddTotal(5)
	for i := 0; i < 6; i++ {
		tr.ReplicationDone()
	}
	tr.AddRealizations(1000)
	tr.AddRealizations(234)
	s := tr.Snapshot()
	if s.Total != 15 || s.Done != 6 || s.Realizations != 1234 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.Label != "exp" {
		t.Fatalf("label %q", s.Label)
	}
	if s.Elapsed <= 0 {
		t.Fatalf("elapsed %v", s.Elapsed)
	}
	if s.ETA <= 0 {
		t.Fatalf("ETA %v should be positive with work remaining", s.ETA)
	}
}

// TestAddDoneAggregates: a cluster coordinator marks whole shards of
// remotely-computed replications done in one call; AddDone must mix with
// per-replication counting and drive the ETA like local work does.
func TestAddDoneAggregates(t *testing.T) {
	tr := New("cluster", nil)
	tr.AddTotal(12)
	tr.AddDone(4) // one shard lands
	tr.ReplicationDone()
	tr.AddDone(7) // another shard
	s := tr.Snapshot()
	if s.Done != 12 || s.Total != 12 {
		t.Fatalf("snapshot %+v, want 12/12", s)
	}
	if s.ETA != 0 {
		t.Fatalf("ETA %v with nothing remaining", s.ETA)
	}

	var nilTr *Tracker
	nilTr.AddDone(5) // nil-safe like every other Tracker method
	tr.AddDone(0)    // zero is a no-op, not an error
	if got := tr.Snapshot().Done; got != 12 {
		t.Fatalf("done %d after AddDone(0)", got)
	}
}

func TestETAZeroBeforeFirstReplication(t *testing.T) {
	tr := New("exp", nil)
	tr.AddTotal(10)
	if eta := tr.Snapshot().ETA; eta != 0 {
		t.Fatalf("ETA %v before any replication completed", eta)
	}
}

func TestNilTrackerIsSafe(t *testing.T) {
	var tr *Tracker
	tr.AddTotal(3)
	tr.ReplicationDone()
	tr.AddRealizations(7)
	tr.Start(time.Second)
	tr.Stop()
	if s := tr.Snapshot(); s != (Snapshot{}) {
		t.Fatalf("nil tracker snapshot %+v", s)
	}
}

func TestConcurrentCounting(t *testing.T) {
	tr := New("exp", nil)
	tr.AddTotal(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				tr.ReplicationDone()
				tr.AddRealizations(100)
			}
		}()
	}
	wg.Wait()
	s := tr.Snapshot()
	if s.Done != 64 || s.Realizations != 6400 {
		t.Fatalf("snapshot %+v", s)
	}
}

func TestStopPrintsFinalLine(t *testing.T) {
	var buf bytes.Buffer
	tr := New("figure1", &buf)
	tr.AddTotal(4)
	tr.ReplicationDone()
	tr.AddRealizations(2_500_000)
	tr.Start(time.Hour) // interval never fires; only the final line prints
	tr.Stop()
	out := buf.String()
	if !strings.Contains(out, "figure1: 1/4 replications") {
		t.Fatalf("final line %q lacks replication counts", out)
	}
	if !strings.Contains(out, "2.50M realizations") {
		t.Fatalf("final line %q lacks realization count", out)
	}
	// A second Stop on an already-stopped tracker is safe and prints again.
	tr.Stop()
}

func TestPeriodicReporting(t *testing.T) {
	var buf safeBuffer
	tr := New("exp", &buf)
	tr.AddTotal(2)
	tr.Start(5 * time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for buf.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	tr.Stop()
	if !strings.Contains(buf.String(), "exp: 0/2 replications") {
		t.Fatalf("periodic output %q", buf.String())
	}
}

func TestSnapshotStringOmitsEmptySections(t *testing.T) {
	s := Snapshot{Label: "x", Done: 0, Total: 0, Elapsed: 3 * time.Second}
	out := s.String()
	if strings.Contains(out, "realizations") || strings.Contains(out, "eta") || strings.Contains(out, "%") {
		t.Fatalf("zero-value snapshot renders optional sections: %q", out)
	}
}

func TestCountString(t *testing.T) {
	for n, want := range map[int64]string{
		12:            "12",
		1_500:         "1.5k",
		2_500_000:     "2.50M",
		3_000_000_000: "3.00G",
	} {
		if got := countString(n); got != want {
			t.Errorf("countString(%d) = %q, want %q", n, got, want)
		}
	}
}

// TestETAMath pins the clock so the ETA arithmetic is checked exactly:
// after 30s of elapsed time with 3 of 12 replications done, the mean is
// 10s/replication and 9 remain, so the ETA is 90s.
func TestETAMath(t *testing.T) {
	tr := New("exp", nil)
	base := tr.start
	tr.now = func() time.Time { return base.Add(30 * time.Second) }
	tr.AddTotal(12)
	for i := 0; i < 3; i++ {
		tr.ReplicationDone()
	}
	s := tr.Snapshot()
	if s.Elapsed != 30*time.Second {
		t.Fatalf("elapsed = %v, want 30s", s.Elapsed)
	}
	if s.ETA != 90*time.Second {
		t.Fatalf("ETA = %v, want 90s", s.ETA)
	}
	// All replications done: nothing remains, ETA must drop to zero.
	for i := 0; i < 9; i++ {
		tr.ReplicationDone()
	}
	if eta := tr.Snapshot().ETA; eta != 0 {
		t.Fatalf("ETA = %v after completion, want 0", eta)
	}
}

// TestStopLeavesNoGoroutine asserts the reporter goroutine is gone once
// Stop returns — Stop must join it, not orphan it.
func TestStopLeavesNoGoroutine(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		tr := New("exp", io.Discard)
		tr.Start(time.Millisecond)
		time.Sleep(3 * time.Millisecond)
		tr.Stop()
	}
	// Give the runtime a moment to retire any stragglers before counting.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines grew from %d to %d after Stop", before, runtime.NumGoroutine())
}

// TestStartAfterStopRestarts covers the stop→start lifecycle: a tracker can
// be restarted and still joins cleanly.
func TestStartAfterStopRestarts(t *testing.T) {
	var buf safeBuffer
	tr := New("exp", &buf)
	tr.Start(time.Hour)
	tr.Stop()
	tr.Start(time.Hour)
	tr.Stop()
	if got := strings.Count(buf.String(), "exp:"); got != 2 {
		t.Fatalf("expected 2 final lines, got %d:\n%s", got, buf.String())
	}
}

// TestRegistryView asserts the counters are real obs.Registry entries, not
// private copies: a snapshot of the shared registry sees every tick.
func TestRegistryView(t *testing.T) {
	reg := obs.NewRegistry()
	tr := NewWithRegistry("exp", nil, reg)
	tr.AddTotal(7)
	tr.ReplicationDone()
	tr.ReplicationDone()
	tr.AddRealizations(500)
	snap := reg.Snapshot()
	if snap[CounterTotal] != 7 || snap[CounterDone] != 2 || snap[CounterRealizations] != 500 {
		t.Fatalf("registry snapshot %v", snap)
	}
	if tr.Registry() != reg {
		t.Fatal("Registry() accessor does not return the backing registry")
	}
	var nilTr *Tracker
	if nilTr.Registry() != nil {
		t.Fatal("nil tracker must report a nil registry")
	}
}

// safeBuffer serializes access between the reporter goroutine and the test.
type safeBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *safeBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *safeBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Len()
}

func (b *safeBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
