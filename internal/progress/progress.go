// Package progress provides run observability for long Monte-Carlo
// experiments: lock-free atomic counters for completed replications and
// fading realizations, elapsed-time and ETA estimates, and an optional
// background reporter that prints a status line to a writer at a fixed
// interval.
//
// The counters live in an obs.Registry, the shared substrate of the
// observability layer: the same tallies the status line renders are
// visible to /debug/obs and any other registry view, so the progress
// reporter is one face over the numbers rather than a private copy.
//
// The experiment harness (internal/sim) notifies a Tracker from many worker
// goroutines at once; every counting method is safe for concurrent use and
// cheap enough to call from inner loops. All methods are nil-receiver-safe,
// so instrumented code paths can hold a nil *Tracker when observability is
// switched off and pay only a nil check.
package progress

import (
	"fmt"
	"io"
	"sync"
	"time"

	"rayfade/internal/obs"
)

// Registry counter names a Tracker maintains.
const (
	CounterTotal        = "progress.replications_total"
	CounterDone         = "progress.replications_done"
	CounterRealizations = "progress.realizations"
)

// Tracker accumulates progress counters for one experiment run.
type Tracker struct {
	label string
	w     io.Writer
	start time.Time
	now   func() time.Time // injectable clock; tests pin it for exact ETA math

	reg          *obs.Registry
	total        *obs.Counter // replications expected
	done         *obs.Counter // replications completed
	realizations *obs.Counter // fading realizations drawn

	mu     sync.Mutex // guards stop/wg lifecycle
	stop   chan struct{}
	ticker *time.Ticker
	wg     sync.WaitGroup
}

// New creates a Tracker labelled for reporting, counting into a fresh
// private registry. Reports go to w (typically os.Stderr); a nil w silences
// reporting but keeps the counters live.
func New(label string, w io.Writer) *Tracker {
	return NewWithRegistry(label, w, obs.NewRegistry())
}

// NewWithRegistry creates a Tracker whose counters live in reg, so the same
// tallies are visible to every other view of that registry (e.g. a daemon's
// /debug/obs page). A nil reg behaves like New.
func NewWithRegistry(label string, w io.Writer, reg *obs.Registry) *Tracker {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Tracker{
		label:        label,
		w:            w,
		start:        time.Now(),
		now:          time.Now,
		reg:          reg,
		total:        reg.Counter(CounterTotal),
		done:         reg.Counter(CounterDone),
		realizations: reg.Counter(CounterRealizations),
	}
}

// Registry exposes the registry backing the counters. Nil-safe (nil).
func (t *Tracker) Registry() *obs.Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// AddTotal registers n further expected replications. The harness calls it
// once per Parallel fan-out, so experiments composed of several fan-outs
// accumulate a correct denominator.
func (t *Tracker) AddTotal(n int) {
	if t == nil {
		return
	}
	t.total.Add(int64(n))
}

// ReplicationDone records one completed replication.
func (t *Tracker) ReplicationDone() {
	if t == nil {
		return
	}
	t.done.Add(1)
}

// AddDone records n replications completed at once. Local runs tick
// ReplicationDone per replication; a cluster coordinator calls AddDone with
// a whole shard's replication count when the shard lands, so one Tracker
// aggregates progress (and therefore ETA) across every remote worker
// instead of only counting local work.
func (t *Tracker) AddDone(n int) {
	if t == nil {
		return
	}
	t.done.Add(int64(n))
}

// AddRealizations records n further Monte-Carlo fading realizations.
// Instrumented inner loops batch their ticks (e.g. once per transmit seed)
// so the atomic add stays far off the per-draw hot path.
func (t *Tracker) AddRealizations(n int) {
	if t == nil {
		return
	}
	t.realizations.Add(int64(n))
}

// Snapshot is a point-in-time view of a run.
type Snapshot struct {
	Label        string
	Done, Total  int64
	Realizations int64
	Elapsed      time.Duration
	// ETA estimates the remaining time from the mean replication duration so
	// far; it is zero until the first replication completes.
	ETA time.Duration
}

// Snapshot captures the current counters. Safe to call concurrently with the
// counting methods; a nil Tracker yields a zero Snapshot.
func (t *Tracker) Snapshot() Snapshot {
	if t == nil {
		return Snapshot{}
	}
	s := Snapshot{
		Label:        t.label,
		Done:         t.done.Load(),
		Total:        t.total.Load(),
		Realizations: t.realizations.Load(),
		Elapsed:      t.now().Sub(t.start),
	}
	if s.Done > 0 && s.Total > s.Done {
		per := s.Elapsed / time.Duration(s.Done)
		s.ETA = per * time.Duration(s.Total-s.Done)
	}
	return s
}

// String renders the snapshot as a single status line.
func (s Snapshot) String() string {
	line := fmt.Sprintf("%s: %d/%d replications", s.Label, s.Done, s.Total)
	if s.Total > 0 {
		line += fmt.Sprintf(" (%.0f%%)", 100*float64(s.Done)/float64(s.Total))
	}
	if s.Realizations > 0 {
		line += fmt.Sprintf(" · %s realizations", countString(s.Realizations))
	}
	line += fmt.Sprintf(" · elapsed %s", s.Elapsed.Round(time.Second))
	if s.ETA > 0 {
		line += fmt.Sprintf(" · eta %s", s.ETA.Round(time.Second))
	}
	return line
}

// countString renders large counts compactly (1234567 → "1.23M").
func countString(n int64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.2fG", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.2fM", float64(n)/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// Start launches the background reporter, printing a status line every
// interval until Stop is called. Starting an already-started or nil Tracker,
// or one without a writer, is a no-op.
func (t *Tracker) Start(interval time.Duration) {
	if t == nil || t.w == nil || interval <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stop != nil {
		return
	}
	t.stop = make(chan struct{})
	t.ticker = time.NewTicker(interval)
	// The goroutine must capture the channel and ticker as locals: Stop nils
	// the struct fields, and re-reading t.stop after that would block forever
	// on a nil channel.
	stop, ticker := t.stop, t.ticker
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		for {
			select {
			case <-ticker.C:
				fmt.Fprintln(t.w, t.Snapshot())
			case <-stop:
				return
			}
		}
	}()
}

// Stop halts the background reporter and prints one final status line, so
// even runs shorter than the reporting interval leave a trace. Safe on a nil
// or never-started Tracker.
func (t *Tracker) Stop() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.stop != nil {
		close(t.stop)
		t.ticker.Stop()
		t.stop = nil
	}
	t.mu.Unlock()
	t.wg.Wait()
	if t.w != nil {
		fmt.Fprintln(t.w, t.Snapshot())
	}
}
