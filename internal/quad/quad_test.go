package quad

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFinitePolynomial(t *testing.T) {
	// ∫₀¹ x² dx = 1/3, Simpson is exact for cubics.
	v, err := Finite(func(x float64) float64 { return x * x }, 0, 1, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1.0/3.0) > 1e-12 {
		t.Fatalf("∫x² = %.15f", v)
	}
}

func TestFiniteTranscendental(t *testing.T) {
	// ∫₀^π sin x dx = 2.
	v, err := Finite(math.Sin, 0, math.Pi, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-2) > 1e-9 {
		t.Fatalf("∫sin = %.12f", v)
	}
	// ∫₁^e 1/x dx = 1.
	v, err = Finite(func(x float64) float64 { return 1 / x }, 1, math.E, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1) > 1e-9 {
		t.Fatalf("∫1/x = %.12f", v)
	}
}

func TestFiniteReversedAndEmpty(t *testing.T) {
	v, err := Finite(math.Sin, math.Pi, 0, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v+2) > 1e-9 {
		t.Fatalf("reversed ∫sin = %.12f, want -2", v)
	}
	v, err = Finite(math.Sin, 1, 1, 0)
	if err != nil || v != 0 {
		t.Fatalf("empty interval: %g, %v", v, err)
	}
}

func TestFiniteSharpPeak(t *testing.T) {
	// A narrow Gaussian: adaptive subdivision must find it.
	// ∫_{-10}^{10} exp(-1000 x²) dx = sqrt(π/1000).
	f := func(x float64) float64 { return math.Exp(-1000 * x * x) }
	v, err := Finite(f, -10, 10, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(math.Pi / 1000)
	if math.Abs(v-want) > 1e-8 {
		t.Fatalf("Gaussian integral %.12f, want %.12f", v, want)
	}
}

func TestFiniteRejectsNaN(t *testing.T) {
	if _, err := Finite(func(x float64) float64 { return math.Log(x) }, -1, 1, 0); err == nil {
		t.Fatal("NaN integrand accepted")
	}
}

func TestSemiInfiniteExponential(t *testing.T) {
	// ∫₀^∞ e^{-x} dx = 1.
	v, err := SemiInfinite(func(x float64) float64 { return math.Exp(-x) }, 0, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1) > 1e-8 {
		t.Fatalf("∫e^-x = %.12f", v)
	}
	// ∫₂^∞ e^{-x} dx = e^{-2}.
	v, err = SemiInfinite(func(x float64) float64 { return math.Exp(-x) }, 2, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-math.Exp(-2)) > 1e-8 {
		t.Fatalf("tail = %.12f, want %.12f", v, math.Exp(-2))
	}
}

func TestSemiInfiniteRational(t *testing.T) {
	// ∫₀^∞ 1/(1+x)² dx = 1.
	v, err := SemiInfinite(func(x float64) float64 { return 1 / ((1 + x) * (1 + x)) }, 0, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1) > 1e-7 {
		t.Fatalf("∫1/(1+x)² = %.12f", v)
	}
}

func TestSemiInfiniteShannonKernel(t *testing.T) {
	// The exact kernel used by the rate computation:
	// ∫₀^∞ e^{-λx}/(1+x) dx = e^λ E₁(λ). Check λ=1 against the known value
	// e·E₁(1) ≈ 0.596347362323194.
	v, err := SemiInfinite(func(x float64) float64 { return math.Exp(-x) / (1 + x) }, 0, 1e-11)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-0.596347362323194) > 1e-8 {
		t.Fatalf("Shannon kernel = %.12f", v)
	}
}

// Property: integrating a non-negative function gives a non-negative value,
// and splitting the interval is additive.
func TestQuickAdditivity(t *testing.T) {
	f := func(aRaw, bRaw, cRaw float64) bool {
		if math.IsNaN(aRaw) || math.IsNaN(bRaw) || math.IsNaN(cRaw) {
			return true
		}
		a := math.Mod(aRaw, 10)
		b := a + math.Abs(math.Mod(bRaw, 10))
		c := b + math.Abs(math.Mod(cRaw, 10))
		g := func(x float64) float64 { return math.Exp(-x*x/50) + 0.5 }
		whole, err1 := Finite(g, a, c, 1e-10)
		left, err2 := Finite(g, a, b, 1e-10)
		right, err3 := Finite(g, b, c, 1e-10)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return whole >= 0 && math.Abs(whole-(left+right)) < 1e-7*(1+math.Abs(whole))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSemiInfiniteShannonKernel(b *testing.B) {
	f := func(x float64) float64 { return math.Exp(-x) / (1 + x) }
	for i := 0; i < b.N; i++ {
		if _, err := SemiInfinite(f, 0, 1e-9); err != nil {
			b.Fatal(err)
		}
	}
}
