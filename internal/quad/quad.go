// Package quad provides the small numerical-integration toolkit the exact
// rate computations need: adaptive Simpson quadrature on finite intervals
// and a change-of-variables wrapper for semi-infinite integrals.
//
// The headline consumer is fading.ExpectedShannonExact, which evaluates
// E[log(1+γ)] = ∫₀^∞ P(γ ≥ x)/(1+x) dx with the Theorem-1 closed form as
// the integrand — replacing Monte-Carlo estimation with deterministic
// quadrature. Everything is plain float64 with explicit error control; no
// external dependencies.
package quad

import (
	"fmt"
	"math"
)

// DefaultTol is the absolute error target used when callers pass tol ≤ 0.
const DefaultTol = 1e-9

// maxDepth bounds the adaptive recursion; 2^50 subdivisions is far beyond
// any sane integrand, so hitting it indicates a pathological input.
const maxDepth = 50

// Finite integrates f over [a, b] with adaptive Simpson quadrature to
// absolute tolerance tol. b may be less than a (the sign flips). The
// integrand must be finite on the interval; NaN or ±Inf values abort with
// an error.
func Finite(f func(float64) float64, a, b, tol float64) (float64, error) {
	if tol <= 0 {
		tol = DefaultTol
	}
	if a == b {
		return 0, nil
	}
	sign := 1.0
	if b < a {
		a, b = b, a
		sign = -1
	}
	fa, fb := f(a), f(b)
	m := (a + b) / 2
	fm := f(m)
	if bad(fa) || bad(fb) || bad(fm) {
		return 0, fmt.Errorf("quad: integrand not finite on [%g,%g]", a, b)
	}
	whole := simpson(a, b, fa, fm, fb)
	v, err := adapt(f, a, b, fa, fm, fb, whole, tol, 0)
	return sign * v, err
}

func bad(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }

// simpson is the three-point Simpson rule on [a,b].
func simpson(a, b, fa, fm, fb float64) float64 {
	return (b - a) / 6 * (fa + 4*fm + fb)
}

// adapt recursively subdivides until the Richardson error estimate meets
// the tolerance.
func adapt(f func(float64) float64, a, b, fa, fm, fb, whole, tol float64, depth int) (float64, error) {
	m := (a + b) / 2
	lm, rm := (a+m)/2, (m+b)/2
	flm, frm := f(lm), f(rm)
	if bad(flm) || bad(frm) {
		return 0, fmt.Errorf("quad: integrand not finite near [%g,%g]", a, b)
	}
	left := simpson(a, m, fa, flm, fm)
	right := simpson(m, b, fm, frm, fb)
	if diff := left + right - whole; math.Abs(diff) <= 15*tol || depth >= maxDepth {
		// Richardson extrapolation sharpens the estimate one order.
		return left + right + diff/15, nil
	}
	lv, err := adapt(f, a, m, fa, flm, fm, left, tol/2, depth+1)
	if err != nil {
		return 0, err
	}
	rv, err := adapt(f, m, b, fm, frm, fb, right, tol/2, depth+1)
	if err != nil {
		return 0, err
	}
	return lv + rv, nil
}

// SemiInfinite integrates f over [a, ∞) by the substitution
// x = a + t/(1−t), which maps t ∈ [0,1) onto the tail with Jacobian
// 1/(1−t)². The integrand must decay fast enough for the transformed
// integrand to stay finite as t → 1 (exponential or 1/x² tails qualify;
// the success-probability integrands here decay exponentially).
func SemiInfinite(f func(float64) float64, a, tol float64) (float64, error) {
	g := func(t float64) float64 {
		if t >= 1 {
			return 0
		}
		u := 1 - t
		x := a + t/u
		v := f(x) / (u * u)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			// Treat overflow at the far tail as decayed-to-zero only if f
			// itself vanished; otherwise surface the problem via NaN so
			// Finite aborts.
			if fv := f(x); fv == 0 {
				return 0
			}
			return math.NaN()
		}
		return v
	}
	return Finite(g, 0, 1, tol)
}
