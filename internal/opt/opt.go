// Package opt computes (or estimates) the optimum of single-slot capacity
// maximization in the non-fading model: the largest feasible set of links
// at a given SINR threshold.
//
// The paper's Section 7 reports that "choosing the optimal set of sending
// links under uniform powers" on the Figure-1 workload yields 49.75
// successes on average. Exact maximization is NP-hard, so this package
// provides two engines:
//
//   - BruteForce — exact branch-and-bound for small instances, exploiting
//     that feasibility is downward closed (interference only grows with the
//     set), so search can maintain feasibility invariantly and prune by
//     cardinality;
//   - LocalSearch — greedy seed plus add/swap local search for instances of
//     the paper's size (n = 100), reporting a certified-feasible set that
//     lower-bounds the optimum.
//
// Both return feasibility-certified sets, so every reported "optimum" in
// EXPERIMENTS.md is a witnessed value, never just a bound.
package opt

import (
	"fmt"
	"sort"

	"rayfade/internal/network"
	"rayfade/internal/rng"
	"rayfade/internal/sinr"
)

// MaxBruteForceN caps the instance size BruteForce accepts. Branch-and-bound
// tames the 2^n tree well below this in practice, but the cap keeps a
// mistaken call from running for hours.
const MaxBruteForceN = 30

// BruteForce returns a maximum feasible set at threshold beta, found by
// exact branch-and-bound. It panics if m.N exceeds MaxBruteForceN.
//
// The search scans links in an order of decreasing own-signal strength
// (strong links first tighten the bound early), keeps the chosen prefix
// feasible at every node — valid because feasibility is downward closed —
// and prunes branches that cannot beat the incumbent by cardinality.
func BruteForce(m *network.Matrix, beta float64) []int {
	if m.N > MaxBruteForceN {
		panic(fmt.Sprintf("opt: BruteForce limited to n ≤ %d, got %d", MaxBruteForceN, m.N))
	}
	if beta <= 0 {
		panic(fmt.Sprintf("opt: threshold β = %g must be positive", beta))
	}
	order := make([]int, m.N)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return m.Own(order[a]) > m.Own(order[b])
	})
	// Pre-drop links that cannot succeed even alone.
	viable := order[:0]
	for _, i := range order {
		if m.Own(i) >= beta*m.Noise && m.Own(i) > 0 {
			viable = append(viable, i)
		}
	}

	best := []int{}
	chosen := make([]int, 0, len(viable))
	// load[i] = Σ uncapped affectance on chosen link i from other chosen.
	load := make([]float64, m.N)

	var recurse func(pos int)
	recurse = func(pos int) {
		if len(chosen)+(len(viable)-pos) <= len(best) {
			return // cannot beat incumbent
		}
		if pos == len(viable) {
			if len(chosen) > len(best) {
				best = append(best[:0], chosen...)
			}
			return
		}
		cand := viable[pos]
		// Branch 1: include cand if the set stays feasible.
		inbound := 0.0
		feasible := true
		for _, s := range chosen {
			inbound += sinr.AffectanceUncapped(m, beta, s, cand)
			if inbound > 1 {
				feasible = false
				break
			}
			if load[s]+sinr.AffectanceUncapped(m, beta, cand, s) > 1 {
				feasible = false
				break
			}
		}
		if feasible {
			for _, s := range chosen {
				load[s] += sinr.AffectanceUncapped(m, beta, cand, s)
			}
			load[cand] = inbound
			chosen = append(chosen, cand)
			recurse(pos + 1)
			chosen = chosen[:len(chosen)-1]
			for _, s := range chosen {
				load[s] -= sinr.AffectanceUncapped(m, beta, cand, s)
			}
			load[cand] = 0
		}
		// Branch 2: exclude cand.
		recurse(pos + 1)
	}
	recurse(0)
	sort.Ints(best)
	return best
}

// BruteForceWeighted returns a maximum-weight feasible set at threshold
// beta (weights from m.Weights), by the same downward-closed branch-and-
// bound as BruteForce with a weight-based bound. It panics if m.N exceeds
// MaxBruteForceN. It is the exact reference for link-weighted capacity
// maximization (the paper's second valid-utility family).
func BruteForceWeighted(m *network.Matrix, beta float64) (best []int, bestWeight float64) {
	if m.N > MaxBruteForceN {
		panic(fmt.Sprintf("opt: BruteForceWeighted limited to n ≤ %d, got %d", MaxBruteForceN, m.N))
	}
	if beta <= 0 {
		panic(fmt.Sprintf("opt: threshold β = %g must be positive", beta))
	}
	order := make([]int, 0, m.N)
	for i := 0; i < m.N; i++ {
		if m.Weights[i] > 0 && m.Own(i) >= beta*m.Noise && m.Own(i) > 0 {
			order = append(order, i)
		}
	}
	// Heavy links first: tightens the incumbent early.
	sort.SliceStable(order, func(a, b int) bool { return m.Weights[order[a]] > m.Weights[order[b]] })
	// suffix[k] = total weight of order[k:], the optimistic bound.
	suffix := make([]float64, len(order)+1)
	for k := len(order) - 1; k >= 0; k-- {
		suffix[k] = suffix[k+1] + m.Weights[order[k]]
	}

	chosen := make([]int, 0, len(order))
	chosenWeight := 0.0
	load := make([]float64, m.N)

	var recurse func(pos int)
	recurse = func(pos int) {
		if chosenWeight+suffix[pos] <= bestWeight {
			return
		}
		if pos == len(order) {
			if chosenWeight > bestWeight {
				bestWeight = chosenWeight
				best = append(best[:0], chosen...)
			}
			return
		}
		cand := order[pos]
		inbound := 0.0
		feasible := true
		for _, s := range chosen {
			inbound += sinr.AffectanceUncapped(m, beta, s, cand)
			if inbound > 1 {
				feasible = false
				break
			}
			if load[s]+sinr.AffectanceUncapped(m, beta, cand, s) > 1 {
				feasible = false
				break
			}
		}
		if feasible {
			for _, s := range chosen {
				load[s] += sinr.AffectanceUncapped(m, beta, cand, s)
			}
			load[cand] = inbound
			chosen = append(chosen, cand)
			chosenWeight += m.Weights[cand]
			recurse(pos + 1)
			chosenWeight -= m.Weights[cand]
			chosen = chosen[:len(chosen)-1]
			for _, s := range chosen {
				load[s] -= sinr.AffectanceUncapped(m, beta, cand, s)
			}
			load[cand] = 0
		}
		recurse(pos + 1)
	}
	recurse(0)
	sort.Ints(best)
	return best, bestWeight
}

// LocalSearchConfig tunes the heuristic optimum estimator.
type LocalSearchConfig struct {
	// Restarts is the number of randomized greedy seeds (≥ 1).
	Restarts int
	// SwapPasses bounds the number of full improvement sweeps per restart.
	SwapPasses int
}

// DefaultLocalSearch is the configuration used by the experiment harness.
var DefaultLocalSearch = LocalSearchConfig{Restarts: 8, SwapPasses: 30}

// LocalSearch estimates the maximum feasible set at threshold beta on
// instances too large for BruteForce. Each restart seeds with a randomized
// greedy pass (random scan order biased toward strong links) and then
// alternates two improvement moves until a fixed point:
//
//   - add: insert any outside link that keeps the set feasible;
//   - 1-swap: remove one link and insert two (found greedily) when that
//     grows the set.
//
// The best set across restarts is returned, always feasibility-certified.
func LocalSearch(m *network.Matrix, beta float64, cfg LocalSearchConfig, src *rng.Source) []int {
	if cfg.Restarts <= 0 {
		cfg.Restarts = 1
	}
	if cfg.SwapPasses <= 0 {
		cfg.SwapPasses = 10
	}
	if beta <= 0 {
		panic(fmt.Sprintf("opt: threshold β = %g must be positive", beta))
	}
	best := []int{}
	for r := 0; r < cfg.Restarts; r++ {
		set := randomizedGreedy(m, beta, src)
		set = improve(m, beta, set, cfg.SwapPasses, src)
		if len(set) > len(best) {
			best = set
		}
	}
	sort.Ints(best)
	return best
}

// randomizedGreedy scans links in a randomly perturbed strong-first order,
// accepting links that keep the set feasible.
func randomizedGreedy(m *network.Matrix, beta float64, src *rng.Source) []int {
	order := src.Perm(m.N)
	// Bias: sort by own gain with random tie-ish jitter — shuffle then
	// stable-sort by a coarse bucket of own gain, keeping diversity.
	sort.SliceStable(order, func(a, b int) bool {
		ga, gb := m.Own(order[a]), m.Own(order[b])
		return ga > gb*(1+0.2*src.Float64())
	})
	acc := newLoadSet(m, beta)
	for _, cand := range order {
		acc.tryAdd(cand)
	}
	return acc.members()
}

// improve runs add and 1-swap passes until no move helps or the pass budget
// is exhausted.
func improve(m *network.Matrix, beta float64, set []int, passes int, src *rng.Source) []int {
	acc := newLoadSet(m, beta)
	for _, i := range set {
		if !acc.tryAdd(i) {
			// Seed should always be feasible; tolerate and skip otherwise.
			continue
		}
	}
	for p := 0; p < passes; p++ {
		changed := false
		// Add pass, in random order for diversity.
		for _, cand := range src.Perm(m.N) {
			if !acc.in[cand] && acc.tryAdd(cand) {
				changed = true
			}
		}
		// 1-out-2-in swap pass.
		for _, out := range acc.members() {
			acc.remove(out)
			added := []int{}
			for _, cand := range src.Perm(m.N) {
				if cand != out && !acc.in[cand] && acc.tryAdd(cand) {
					added = append(added, cand)
					if len(added) == 2 {
						break
					}
				}
			}
			if len(added) >= 2 {
				changed = true // net gain of one
				continue
			}
			// Roll back: remove what we added, re-add out.
			for _, a := range added {
				acc.remove(a)
			}
			if !acc.tryAdd(out) {
				panic("opt: rollback failed to restore a feasible member")
			}
		}
		if !changed {
			break
		}
	}
	return acc.members()
}

// loadSet maintains a feasible set with per-member affectance loads for
// O(|S|) add probes.
type loadSet struct {
	m    *network.Matrix
	beta float64
	in   []bool
	load []float64
	set  []int
}

func newLoadSet(m *network.Matrix, beta float64) *loadSet {
	return &loadSet{m: m, beta: beta, in: make([]bool, m.N), load: make([]float64, m.N)}
}

// tryAdd inserts cand if the set stays feasible; reports success.
func (l *loadSet) tryAdd(cand int) bool {
	if l.in[cand] {
		return false
	}
	if l.m.Own(cand) <= l.beta*l.m.Noise || l.m.Own(cand) == 0 {
		return false
	}
	inbound := 0.0
	for _, s := range l.set {
		inbound += sinr.AffectanceUncapped(l.m, l.beta, s, cand)
		if inbound > 1 {
			return false
		}
		if l.load[s]+sinr.AffectanceUncapped(l.m, l.beta, cand, s) > 1 {
			return false
		}
	}
	for _, s := range l.set {
		l.load[s] += sinr.AffectanceUncapped(l.m, l.beta, cand, s)
	}
	l.load[cand] = inbound
	l.in[cand] = true
	l.set = append(l.set, cand)
	return true
}

// remove deletes a member and updates loads.
func (l *loadSet) remove(out int) {
	if !l.in[out] {
		panic(fmt.Sprintf("opt: removing non-member %d", out))
	}
	l.in[out] = false
	for k, s := range l.set {
		if s == out {
			l.set = append(l.set[:k], l.set[k+1:]...)
			break
		}
	}
	for _, s := range l.set {
		l.load[s] -= sinr.AffectanceUncapped(l.m, l.beta, out, s)
	}
	l.load[out] = 0
}

// members returns a copy of the current set.
func (l *loadSet) members() []int {
	return append([]int(nil), l.set...)
}
