package opt

import (
	"testing"
	"testing/quick"

	"rayfade/internal/capacity"
	"rayfade/internal/network"
	"rayfade/internal/rng"
	"rayfade/internal/sinr"
)

func fig1Matrix(t testing.TB, seed uint64, n int) *network.Matrix {
	t.Helper()
	cfg := network.Figure1Config()
	cfg.N = n
	net, err := network.Random(cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return net.Gains()
}

// exhaustive checks all 2^n subsets; the reference oracle for tiny n.
func exhaustive(m *network.Matrix, beta float64) int {
	best := 0
	n := m.N
	for mask := 0; mask < 1<<n; mask++ {
		var set []int
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				set = append(set, i)
			}
		}
		if len(set) > best && sinr.Feasible(m, set, beta) {
			best = len(set)
		}
	}
	return best
}

func TestBruteForceMatchesExhaustive(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		m := fig1Matrix(t, seed, 10)
		beta := 2.5
		got := BruteForce(m, beta)
		if !sinr.Feasible(m, got, beta) {
			t.Fatalf("seed %d: brute-force set infeasible", seed)
		}
		if want := exhaustive(m, beta); len(got) != want {
			t.Fatalf("seed %d: brute force found %d, exhaustive %d", seed, len(got), want)
		}
	}
}

func TestBruteForceDominatesGreedy(t *testing.T) {
	for seed := uint64(10); seed < 20; seed++ {
		cfg := network.Figure1Config()
		cfg.N = 16
		net, err := network.Random(cfg, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		m := net.Gains()
		bf := BruteForce(m, 2.5)
		greedy := capacity.GreedyUniform(net, 2.5)
		if len(bf) < len(greedy) {
			t.Fatalf("seed %d: optimum %d below greedy %d", seed, len(bf), len(greedy))
		}
	}
}

func TestBruteForceNoiseDominated(t *testing.T) {
	m := fig1Matrix(t, 1, 8)
	m.Noise = 1e9
	if got := BruteForce(m, 2.5); len(got) != 0 {
		t.Fatalf("noise-dominated instance has optimum %v", got)
	}
}

func TestBruteForcePanics(t *testing.T) {
	big := fig1Matrix(t, 1, MaxBruteForceN+1)
	for _, fn := range []func(){
		func() { BruteForce(big, 2.5) },
		func() { BruteForce(fig1Matrix(t, 1, 4), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestBruteForceWeightedUnitWeightsMatchesUnweighted(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		m := fig1Matrix(t, seed+70, 12)
		plain := BruteForce(m, 2.5)
		set, w := BruteForceWeighted(m, 2.5)
		if len(set) != len(plain) {
			t.Fatalf("seed %d: weighted optimum %d vs unweighted %d", seed, len(set), len(plain))
		}
		if w != float64(len(set)) {
			t.Fatalf("seed %d: weight %g for %d unit-weight links", seed, w, len(set))
		}
		if !sinr.Feasible(m, set, 2.5) {
			t.Fatalf("seed %d: weighted optimum infeasible", seed)
		}
	}
}

func TestBruteForceWeightedPrefersHeavyLink(t *testing.T) {
	m := fig1Matrix(t, 77, 12)
	for i := range m.Weights {
		m.Weights[i] = 1
	}
	m.Weights[3] = 100
	set, w := BruteForceWeighted(m, 2.5)
	found := false
	for _, i := range set {
		if i == 3 {
			found = true
		}
	}
	if !found {
		t.Fatal("dominant-weight link not in the optimum")
	}
	if w < 100 {
		t.Fatalf("optimum weight %g below the heavy link alone", w)
	}
}

// The weighted greedy never beats the exact weighted optimum, and lands
// within a reasonable factor of it on small instances.
func TestGreedyWeightedAgainstExact(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		m := fig1Matrix(t, seed+90, 12)
		src := rng.New(seed)
		for i := range m.Weights {
			m.Weights[i] = 1 + 9*src.Float64()
		}
		_, gw := capacity.GreedyWeighted(m, 2.5)
		_, ow := BruteForceWeighted(m, 2.5)
		if gw > ow+1e-9 {
			t.Fatalf("seed %d: greedy weight %g beats optimum %g", seed, gw, ow)
		}
		if gw < ow/4 {
			t.Fatalf("seed %d: greedy weight %g below optimum/4 = %g", seed, gw, ow/4)
		}
	}
}

func TestBruteForceWeightedPanics(t *testing.T) {
	big := fig1Matrix(t, 1, MaxBruteForceN+1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BruteForceWeighted(big, 2.5)
}

func TestLocalSearchFeasibleAndDominatesGreedy(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		cfg := network.Figure1Config()
		net, err := network.Random(cfg, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		m := net.Gains()
		ls := LocalSearch(m, 2.5, DefaultLocalSearch, rng.New(seed+999))
		if !sinr.Feasible(m, ls, 2.5) {
			t.Fatalf("seed %d: local-search set infeasible", seed)
		}
		greedy := capacity.GreedyUniform(net, 2.5)
		if len(ls) < len(greedy) {
			t.Fatalf("seed %d: local search %d below greedy %d", seed, len(ls), len(greedy))
		}
	}
}

func TestLocalSearchNearOptimalOnSmallInstances(t *testing.T) {
	for seed := uint64(30); seed < 36; seed++ {
		m := fig1Matrix(t, seed, 14)
		bf := BruteForce(m, 2.5)
		ls := LocalSearch(m, 2.5, DefaultLocalSearch, rng.New(seed*7))
		if len(ls) > len(bf) {
			t.Fatalf("seed %d: local search %d beats exact optimum %d", seed, len(ls), len(bf))
		}
		// With 8 restarts on n=14 it should land within one of optimal.
		if len(ls) < len(bf)-1 {
			t.Fatalf("seed %d: local search %d far below optimum %d", seed, len(ls), len(bf))
		}
	}
}

func TestLocalSearchDeterministicPerSeed(t *testing.T) {
	m := fig1Matrix(t, 3, 40)
	a := LocalSearch(m, 2.5, DefaultLocalSearch, rng.New(42))
	b := LocalSearch(m, 2.5, DefaultLocalSearch, rng.New(42))
	if len(a) != len(b) {
		t.Fatalf("identical seeds gave %d and %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("identical seeds gave different sets")
		}
	}
}

func TestLocalSearchDefaultsOnZeroConfig(t *testing.T) {
	m := fig1Matrix(t, 5, 20)
	set := LocalSearch(m, 2.5, LocalSearchConfig{}, rng.New(1))
	if !sinr.Feasible(m, set, 2.5) {
		t.Fatal("zero-config local search infeasible")
	}
	if len(set) == 0 {
		t.Fatal("zero-config local search empty")
	}
}

func TestLocalSearchPanicsOnBadBeta(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LocalSearch(fig1Matrix(t, 1, 5), -1, DefaultLocalSearch, rng.New(1))
}

// On the paper's Figure-1 workload the optimum estimate should land in the
// vicinity of the reported 49.75 (we assert a generous band; EXPERIMENTS.md
// records the precise measured mean).
func TestLocalSearchFigure1Band(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	total := 0
	const nets = 5
	for seed := uint64(0); seed < nets; seed++ {
		net, err := network.Random(network.Figure1Config(), rng.New(seed+500))
		if err != nil {
			t.Fatal(err)
		}
		set := LocalSearch(net.Gains(), 2.5, LocalSearchConfig{Restarts: 4, SwapPasses: 15}, rng.New(seed))
		total += len(set)
	}
	avg := float64(total) / nets
	if avg < 35 || avg > 70 {
		t.Fatalf("Figure-1 optimum estimate %.1f outside plausible band [35,70]", avg)
	}
}

// Property: local search always returns a feasible set without duplicates.
func TestQuickLocalSearchWellFormed(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%40) + 2
		m := fig1Matrix(t, seed, n)
		set := LocalSearch(m, 2.5, LocalSearchConfig{Restarts: 2, SwapPasses: 5}, rng.New(seed^0xff))
		seen := map[int]bool{}
		for _, i := range set {
			if i < 0 || i >= n || seen[i] {
				return false
			}
			seen[i] = true
		}
		return sinr.Feasible(m, set, 2.5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBruteForce16(b *testing.B) {
	m := fig1Matrix(b, 1, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BruteForce(m, 2.5)
	}
}

func BenchmarkLocalSearch100(b *testing.B) {
	m := fig1Matrix(b, 1, 100)
	src := rng.New(2)
	cfg := LocalSearchConfig{Restarts: 2, SwapPasses: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LocalSearch(m, 2.5, cfg, src)
	}
}
