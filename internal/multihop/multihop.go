// Package multihop provides the routing substrate for multi-hop scheduling
// (the setting the paper's Section 4 extends its transformations to):
// geometric connectivity graphs over node sets, shortest-path routing, and
// the conversion of node routes into link networks plus hop sequences that
// the latency schedulers consume.
//
// The paper treats a multi-hop schedule as a concatenation of single-hop
// schedules; this package builds those single hops. Packets travel
// store-and-forward along their routes, so a route of k node hops becomes k
// entries in a latency.Path over the constructed link network.
package multihop

import (
	"container/heap"
	"fmt"
	"math"

	"rayfade/internal/geom"
	"rayfade/internal/network"
	"rayfade/internal/rng"
)

// Graph is a geometric connectivity graph: nodes can communicate when their
// distance is at most Radius.
type Graph struct {
	Nodes  []geom.Point
	Radius float64
	Metric geom.Metric
	adj    [][]int
}

// NewGraph builds the adjacency structure for the node set. It returns an
// error for empty node sets or non-positive radii.
func NewGraph(nodes []geom.Point, radius float64, metric geom.Metric) (*Graph, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("multihop: no nodes")
	}
	if radius <= 0 {
		return nil, fmt.Errorf("multihop: radius %g must be positive", radius)
	}
	if metric == nil {
		metric = geom.Euclidean{}
	}
	g := &Graph{Nodes: nodes, Radius: radius, Metric: metric, adj: make([][]int, len(nodes))}
	for u := range nodes {
		for v := u + 1; v < len(nodes); v++ {
			if metric.Dist(nodes[u], nodes[v]) <= radius {
				g.adj[u] = append(g.adj[u], v)
				g.adj[v] = append(g.adj[v], u)
			}
		}
	}
	return g, nil
}

// Neighbors returns the adjacency list of node u.
func (g *Graph) Neighbors(u int) []int { return g.adj[u] }

// Degree returns the number of neighbors of node u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// Connected reports whether the whole graph is one connected component.
func (g *Graph) Connected() bool {
	if len(g.Nodes) == 0 {
		return true
	}
	seen := make([]bool, len(g.Nodes))
	queue := []int{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				queue = append(queue, v)
			}
		}
	}
	return count == len(g.Nodes)
}

// ShortestHops returns a minimum-hop path from src to dst (inclusive of both
// endpoints) via BFS, or nil if dst is unreachable. src == dst yields the
// single-node path.
func (g *Graph) ShortestHops(src, dst int) []int {
	g.check(src)
	g.check(dst)
	if src == dst {
		return []int{src}
	}
	prev := make([]int, len(g.Nodes))
	for i := range prev {
		prev[i] = -1
	}
	prev[src] = src
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if prev[v] == -1 {
				prev[v] = u
				if v == dst {
					return g.walkBack(prev, src, dst)
				}
				queue = append(queue, v)
			}
		}
	}
	return nil
}

// ShortestDistance returns a minimum-total-distance path from src to dst via
// Dijkstra (edge weight = metric distance), or nil if unreachable.
func (g *Graph) ShortestDistance(src, dst int) []int {
	g.check(src)
	g.check(dst)
	if src == dst {
		return []int{src}
	}
	dist := make([]float64, len(g.Nodes))
	prev := make([]int, len(g.Nodes))
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0
	prev[src] = src
	pq := &nodeQueue{{node: src, dist: 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(nodeItem)
		if item.dist > dist[item.node] {
			continue // stale entry
		}
		if item.node == dst {
			return g.walkBack(prev, src, dst)
		}
		for _, v := range g.adj[item.node] {
			d := dist[item.node] + g.Metric.Dist(g.Nodes[item.node], g.Nodes[v])
			if d < dist[v] {
				dist[v] = d
				prev[v] = item.node
				heap.Push(pq, nodeItem{node: v, dist: d})
			}
		}
	}
	return nil
}

func (g *Graph) check(u int) {
	if u < 0 || u >= len(g.Nodes) {
		panic(fmt.Sprintf("multihop: node %d out of range [0,%d)", u, len(g.Nodes)))
	}
}

func (g *Graph) walkBack(prev []int, src, dst int) []int {
	var rev []int
	for u := dst; ; u = prev[u] {
		rev = append(rev, u)
		if u == src {
			break
		}
	}
	path := make([]int, len(rev))
	for i, u := range rev {
		path[len(rev)-1-i] = u
	}
	return path
}

type nodeItem struct {
	node int
	dist float64
}

type nodeQueue []nodeItem

func (q nodeQueue) Len() int            { return len(q) }
func (q nodeQueue) Less(a, b int) bool  { return q[a].dist < q[b].dist }
func (q nodeQueue) Swap(a, b int)       { q[a], q[b] = q[b], q[a] }
func (q *nodeQueue) Push(x interface{}) { *q = append(*q, x.(nodeItem)) }
func (q *nodeQueue) Pop() interface{} {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}

// Workload is a routed multi-hop instance ready for the latency schedulers:
// the link network containing every hop of every route, and per-packet hop
// sequences as link indices into that network.
type Workload struct {
	Network *network.Network
	// Routes[k] lists the link indices of packet k's hops, in order.
	Routes [][]int
	// NodeRoutes[k] is packet k's node path (for reporting).
	NodeRoutes [][]int
}

// BuildWorkload converts node routes into a link network: every directed
// hop (u→v) used by any route becomes one link (deduplicated), powered by
// pa. alpha and noise parameterize the propagation.
func BuildWorkload(g *Graph, nodeRoutes [][]int, alpha, noise float64, pa network.PowerAssignment) (*Workload, error) {
	if pa == nil {
		pa = network.UniformPower{P: 1}
	}
	type hop struct{ u, v int }
	index := map[hop]int{}
	net := &network.Network{Metric: g.Metric, Alpha: alpha, Noise: noise}
	w := &Workload{Network: net}
	for k, route := range nodeRoutes {
		if len(route) == 0 {
			return nil, fmt.Errorf("multihop: route %d is empty", k)
		}
		var links []int
		for h := 0; h+1 < len(route); h++ {
			u, v := route[h], route[h+1]
			g.check(u)
			g.check(v)
			if u == v {
				return nil, fmt.Errorf("multihop: route %d has a self-hop at node %d", k, u)
			}
			key := hop{u, v}
			li, ok := index[key]
			if !ok {
				d := g.Metric.Dist(g.Nodes[u], g.Nodes[v])
				net.Links = append(net.Links, network.Link{
					Sender:   g.Nodes[u],
					Receiver: g.Nodes[v],
					Power:    pa.Power(d),
					Weight:   1,
				})
				li = len(net.Links) - 1
				index[key] = li
			}
			links = append(links, li)
		}
		w.Routes = append(w.Routes, links)
		w.NodeRoutes = append(w.NodeRoutes, append([]int(nil), route...))
	}
	if len(net.Links) == 0 {
		return nil, fmt.Errorf("multihop: no hops in any route")
	}
	return w, nil
}

// RandomWorkload places n nodes uniformly in the area, connects them at the
// given radius, routes `packets` random source→destination pairs by minimum
// hops, and builds the link workload. Pairs whose endpoints are not
// connected are re-drawn (up to a bounded number of attempts).
func RandomWorkload(n int, area geom.Rect, radius float64, packets int, alpha, noise float64, pa network.PowerAssignment, src *rng.Source) (*Workload, *Graph, error) {
	if n < 2 {
		return nil, nil, fmt.Errorf("multihop: need at least 2 nodes, got %d", n)
	}
	if packets <= 0 {
		return nil, nil, fmt.Errorf("multihop: packets = %d must be positive", packets)
	}
	nodes := make([]geom.Point, n)
	for i := range nodes {
		nodes[i] = geom.Point{
			X: src.UniformRange(area.X0, area.X1),
			Y: src.UniformRange(area.Y0, area.Y1),
		}
	}
	g, err := NewGraph(nodes, radius, geom.Euclidean{})
	if err != nil {
		return nil, nil, err
	}
	var routes [][]int
	attempts := 0
	for len(routes) < packets {
		attempts++
		if attempts > 100*packets {
			return nil, nil, fmt.Errorf("multihop: could not route %d packets (graph too disconnected at radius %g)", packets, radius)
		}
		s := src.Intn(n)
		d := src.Intn(n)
		if s == d {
			continue
		}
		path := g.ShortestHops(s, d)
		if path == nil {
			continue
		}
		routes = append(routes, path)
	}
	w, err := BuildWorkload(g, routes, alpha, noise, pa)
	if err != nil {
		return nil, nil, err
	}
	return w, g, nil
}
