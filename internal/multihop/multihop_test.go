package multihop

import (
	"math"
	"testing"
	"testing/quick"

	"rayfade/internal/capacity"
	"rayfade/internal/geom"
	"rayfade/internal/latency"
	"rayfade/internal/network"
	"rayfade/internal/rng"
)

// lineGraph builds n nodes on a line with unit spacing, radius r.
func lineGraph(t testing.TB, n int, r float64) *Graph {
	t.Helper()
	nodes := make([]geom.Point, n)
	for i := range nodes {
		nodes[i] = geom.Point{X: float64(i)}
	}
	g, err := NewGraph(nodes, r, geom.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGraphValidation(t *testing.T) {
	if _, err := NewGraph(nil, 1, nil); err == nil {
		t.Fatal("empty node set accepted")
	}
	if _, err := NewGraph([]geom.Point{{}}, 0, nil); err == nil {
		t.Fatal("zero radius accepted")
	}
}

func TestAdjacency(t *testing.T) {
	g := lineGraph(t, 5, 1.5)
	// Radius 1.5 on a unit line: each interior node sees both neighbors.
	if g.Degree(0) != 1 || g.Degree(2) != 2 {
		t.Fatalf("degrees: %d %d", g.Degree(0), g.Degree(2))
	}
	if !g.Connected() {
		t.Fatal("line graph should be connected")
	}
}

func TestDisconnected(t *testing.T) {
	nodes := []geom.Point{{X: 0}, {X: 100}}
	g, err := NewGraph(nodes, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.Connected() {
		t.Fatal("far-apart pair reported connected")
	}
	if p := g.ShortestHops(0, 1); p != nil {
		t.Fatalf("path across components: %v", p)
	}
	if p := g.ShortestDistance(0, 1); p != nil {
		t.Fatalf("Dijkstra path across components: %v", p)
	}
}

func TestShortestHopsLine(t *testing.T) {
	g := lineGraph(t, 6, 1.1)
	p := g.ShortestHops(0, 5)
	if len(p) != 6 {
		t.Fatalf("path %v, want all 6 nodes", p)
	}
	for i, u := range p {
		if u != i {
			t.Fatalf("path %v not the line order", p)
		}
	}
	if p := g.ShortestHops(3, 3); len(p) != 1 || p[0] != 3 {
		t.Fatalf("self path %v", p)
	}
}

func TestShortestHopsUsesLongEdges(t *testing.T) {
	// Radius 2.1 lets BFS skip every other node.
	g := lineGraph(t, 7, 2.1)
	p := g.ShortestHops(0, 6)
	if len(p) != 4 { // 0→2→4→6
		t.Fatalf("path %v, want 4 nodes", p)
	}
}

func TestShortestDistancePrefersShortEdges(t *testing.T) {
	// Triangle: direct long edge 0→2 (len 2.0) vs detour via 1 (1.2+1.2).
	nodes := []geom.Point{{X: 0}, {X: 1, Y: math.Sqrt(1.2*1.2 - 1)}, {X: 2}}
	g, err := NewGraph(nodes, 2.05, nil)
	if err != nil {
		t.Fatal(err)
	}
	hops := g.ShortestHops(0, 2)
	if len(hops) != 2 {
		t.Fatalf("min-hop path %v, want direct", hops)
	}
	dist := g.ShortestDistance(0, 2)
	if len(dist) != 2 {
		t.Fatalf("min-dist path %v: direct edge (2.0) beats detour (2.4)", dist)
	}
	// Now stretch the direct edge beyond the detour by moving node 2 is
	// not possible without changing adjacency; instead verify on a square:
	// corner-to-corner via two sides (1+1=2) vs diagonal sqrt(2)≈1.414.
	sq := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 0, Y: 1}}
	gs, err := NewGraph(sq, 1.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := gs.ShortestDistance(0, 2)
	if len(d) != 2 { // diagonal is within radius and shorter
		t.Fatalf("diagonal path %v", d)
	}
}

func TestPathEndpointsAndContiguity(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		nodes := make([]geom.Point, 30)
		for i := range nodes {
			nodes[i] = geom.Point{X: src.UniformRange(0, 100), Y: src.UniformRange(0, 100)}
		}
		g, err := NewGraph(nodes, 30, nil)
		if err != nil {
			return false
		}
		s, d := src.Intn(30), src.Intn(30)
		for _, path := range [][]int{g.ShortestHops(s, d), g.ShortestDistance(s, d)} {
			if path == nil {
				continue
			}
			if path[0] != s || path[len(path)-1] != d {
				return false
			}
			for h := 0; h+1 < len(path); h++ {
				if g.Metric.Dist(nodes[path[h]], nodes[path[h+1]]) > 30 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Dijkstra's total distance never exceeds the BFS path's total distance.
func TestDijkstraDominatesBFSOnDistance(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		nodes := make([]geom.Point, 25)
		for i := range nodes {
			nodes[i] = geom.Point{X: src.UniformRange(0, 100), Y: src.UniformRange(0, 100)}
		}
		g, err := NewGraph(nodes, 35, nil)
		if err != nil {
			return false
		}
		s, d := src.Intn(25), src.Intn(25)
		hops := g.ShortestHops(s, d)
		dist := g.ShortestDistance(s, d)
		if (hops == nil) != (dist == nil) {
			return false
		}
		if hops == nil {
			return true
		}
		total := func(p []int) float64 {
			sum := 0.0
			for h := 0; h+1 < len(p); h++ {
				sum += g.Metric.Dist(nodes[p[h]], nodes[p[h+1]])
			}
			return sum
		}
		// BFS path length (hop count) never exceeds Dijkstra's hop count.
		return total(dist) <= total(hops)+1e-9 && len(hops) <= len(dist)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckPanics(t *testing.T) {
	g := lineGraph(t, 3, 1.5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.ShortestHops(0, 7)
}

func TestBuildWorkload(t *testing.T) {
	g := lineGraph(t, 5, 1.1)
	routes := [][]int{
		{0, 1, 2, 3},
		{2, 3, 4},
		{0, 1}, // shares hop 0→1 with nothing; route 1 shares 2→3 with route 0
	}
	w, err := BuildWorkload(g, routes, 2.5, 1e-6, network.UniformPower{P: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Network.Validate(); err != nil {
		t.Fatal(err)
	}
	// Hops: 0→1, 1→2, 2→3 (shared), 3→4 = 4 distinct links.
	if w.Network.N() != 4 {
		t.Fatalf("links = %d, want 4 (deduplicated)", w.Network.N())
	}
	if len(w.Routes) != 3 || len(w.Routes[0]) != 3 || len(w.Routes[1]) != 2 || len(w.Routes[2]) != 1 {
		t.Fatalf("routes = %v", w.Routes)
	}
	// Shared hop 2→3 must be the same link index in routes 0 and 1.
	if w.Routes[0][2] != w.Routes[1][0] {
		t.Fatal("shared hop not deduplicated")
	}
}

func TestBuildWorkloadErrors(t *testing.T) {
	g := lineGraph(t, 3, 1.5)
	if _, err := BuildWorkload(g, [][]int{{}}, 2, 0, nil); err == nil {
		t.Fatal("empty route accepted")
	}
	if _, err := BuildWorkload(g, [][]int{{1, 1}}, 2, 0, nil); err == nil {
		t.Fatal("self-hop accepted")
	}
	if _, err := BuildWorkload(g, [][]int{{0}}, 2, 0, nil); err == nil {
		t.Fatal("hopless workload accepted")
	}
}

func TestRandomWorkloadEndToEnd(t *testing.T) {
	src := rng.New(7)
	w, g, err := RandomWorkload(60, geom.Square(500), 120, 8, 2.5, 1e-7,
		network.UniformPower{P: 2}, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Routes) != 8 {
		t.Fatalf("%d routes", len(w.Routes))
	}
	if !gHasAllRoutes(g, w.NodeRoutes) {
		t.Fatal("node routes reference missing adjacency")
	}
	// Drive the full multi-hop scheduler over the built workload, in both
	// interference models.
	m := w.Network.Gains()
	capFn := latency.GreedyCapacity(capacity.LengthOrder(w.Network), capacity.DefaultTau)
	paths := make([]latency.Path, len(w.Routes))
	for k, r := range w.Routes {
		paths[k] = r
	}
	slots, done := latency.MultiHop(m, 2.5, paths, capFn, 0, latency.NonFading{})
	if !done {
		t.Fatalf("non-fading multihop incomplete after %d slots", slots)
	}
	slotsR, doneR := latency.MultiHop(m, 2.5, paths, capFn, 200000, latency.Rayleigh{Src: src})
	if !doneR {
		t.Fatalf("rayleigh multihop incomplete after %d slots", slotsR)
	}
}

func gHasAllRoutes(g *Graph, routes [][]int) bool {
	for _, r := range routes {
		for h := 0; h+1 < len(r); h++ {
			found := false
			for _, v := range g.Neighbors(r[h]) {
				if v == r[h+1] {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
	}
	return true
}

func TestRandomWorkloadErrors(t *testing.T) {
	src := rng.New(1)
	if _, _, err := RandomWorkload(1, geom.Square(100), 10, 1, 2, 0, nil, src); err == nil {
		t.Fatal("single node accepted")
	}
	if _, _, err := RandomWorkload(10, geom.Square(100), 10, 0, 2, 0, nil, src); err == nil {
		t.Fatal("zero packets accepted")
	}
	// Tiny radius on a large area: routing must fail gracefully.
	if _, _, err := RandomWorkload(10, geom.Square(10000), 1, 5, 2, 0, nil, src); err == nil {
		t.Fatal("unroutable workload accepted")
	}
}

func BenchmarkShortestHops200(b *testing.B) {
	src := rng.New(1)
	nodes := make([]geom.Point, 200)
	for i := range nodes {
		nodes[i] = geom.Point{X: src.UniformRange(0, 1000), Y: src.UniformRange(0, 1000)}
	}
	g, err := NewGraph(nodes, 150, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ShortestHops(i%200, (i*7+3)%200)
	}
}

func BenchmarkNewGraph500(b *testing.B) {
	src := rng.New(1)
	nodes := make([]geom.Point, 500)
	for i := range nodes {
		nodes[i] = geom.Point{X: src.UniformRange(0, 1000), Y: src.UniformRange(0, 1000)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewGraph(nodes, 100, nil); err != nil {
			b.Fatal(err)
		}
	}
}
