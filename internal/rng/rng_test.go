package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("step %d: same seed diverged: %d vs %d", i, av, bv)
		}
	}
}

func TestNewDistinctSeeds(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided on %d of 100 outputs", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	s := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[s.Uint64()] = true
	}
	if len(seen) < 95 {
		t.Fatalf("seed 0 produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	for i := 0; i < 100000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", v)
		}
	}
}

func TestFloat64OpenRange(t *testing.T) {
	s := New(7)
	for i := 0; i < 100000; i++ {
		v := s.Float64Open()
		if v <= 0 || v >= 1 {
			t.Fatalf("Float64Open out of (0,1): %g", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean %g too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	s := New(5)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from expectation %g", i, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	s := New(1)
	for _, n := range []int{0, -1, -100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			s.Intn(n)
		}()
	}
}

func TestExpMeanAndPositivity(t *testing.T) {
	s := New(9)
	const n = 200000
	for _, mean := range []float64{0.1, 1, 5, 1e-7} {
		sum := 0.0
		for i := 0; i < n; i++ {
			v := s.Exp(mean)
			if v < 0 {
				t.Fatalf("Exp(%g) produced negative value %g", mean, v)
			}
			sum += v
		}
		got := sum / n
		if math.Abs(got-mean)/mean > 0.02 {
			t.Fatalf("Exp(%g) sample mean %g deviates by more than 2%%", mean, got)
		}
	}
}

func TestExpZeroMean(t *testing.T) {
	s := New(1)
	for i := 0; i < 100; i++ {
		if v := s.Exp(0); v != 0 {
			t.Fatalf("Exp(0) = %g, want 0", v)
		}
	}
}

func TestExpNegativeMeanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(-1) did not panic")
		}
	}()
	New(1).Exp(-1)
}

// TestExpDistribution checks the exponential CDF at a few quantiles,
// which catches inverse-transform mistakes a mean test would miss.
func TestExpDistribution(t *testing.T) {
	s := New(13)
	const n = 200000
	mean := 2.0
	var below1, below2 int
	for i := 0; i < n; i++ {
		v := s.Exp(mean)
		if v < mean {
			below1++
		}
		if v < 2*mean {
			below2++
		}
	}
	p1 := float64(below1) / n // should be 1 - e^-1 ≈ 0.6321
	p2 := float64(below2) / n // should be 1 - e^-2 ≈ 0.8647
	if math.Abs(p1-(1-math.Exp(-1))) > 0.01 {
		t.Fatalf("P(X<mean) = %g, want about %g", p1, 1-math.Exp(-1))
	}
	if math.Abs(p2-(1-math.Exp(-2))) > 0.01 {
		t.Fatalf("P(X<2mean) = %g, want about %g", p2, 1-math.Exp(-2))
	}
}

func TestExpRate(t *testing.T) {
	s := New(17)
	const n = 100000
	lambda := 4.0
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.ExpRate(lambda)
	}
	if got, want := sum/n, 1/lambda; math.Abs(got-want)/want > 0.03 {
		t.Fatalf("ExpRate(%g) mean %g, want about %g", lambda, got, want)
	}
}

func TestExpRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ExpRate(0) did not panic")
		}
	}()
	New(1).ExpRate(0)
}

func TestNormalMoments(t *testing.T) {
	s := New(19)
	const n = 200000
	mean, sd := 3.0, 2.0
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Normal(mean, sd)
		sum += v
		sumSq += (v - mean) * (v - mean)
	}
	if got := sum / n; math.Abs(got-mean) > 0.02 {
		t.Fatalf("Normal mean %g, want %g", got, mean)
	}
	if got := math.Sqrt(sumSq / n); math.Abs(got-sd) > 0.02 {
		t.Fatalf("Normal stddev %g, want %g", got, sd)
	}
}

func TestBernoulli(t *testing.T) {
	s := New(23)
	const n = 100000
	for _, p := range []float64{0, 0.25, 0.5, 0.9, 1} {
		hits := 0
		for i := 0; i < n; i++ {
			if s.Bernoulli(p) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-p) > 0.01 {
			t.Fatalf("Bernoulli(%g) frequency %g", p, got)
		}
	}
	if s.Bernoulli(-0.5) {
		t.Fatal("Bernoulli(-0.5) returned true")
	}
	if !s.Bernoulli(1.5) {
		t.Fatal("Bernoulli(1.5) returned false")
	}
}

func TestPoissonMoments(t *testing.T) {
	s := New(73)
	const n = 100000
	for _, mean := range []float64{0.5, 3, 50, 1000} {
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			v := float64(s.Poisson(mean))
			if v < 0 {
				t.Fatalf("Poisson(%g) negative", mean)
			}
			sum += v
			sumSq += v * v
		}
		m := sum / n
		if math.Abs(m-mean)/mean > 0.03 {
			t.Fatalf("Poisson(%g) mean %g", mean, m)
		}
		variance := sumSq/n - m*m
		if math.Abs(variance-mean)/mean > 0.08 {
			t.Fatalf("Poisson(%g) variance %g, want %g", mean, variance, mean)
		}
	}
}

func TestPoissonEdge(t *testing.T) {
	s := New(1)
	if s.Poisson(0) != 0 {
		t.Fatal("Poisson(0) != 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Poisson(-1) did not panic")
		}
	}()
	s.Poisson(-1)
}

func TestGammaMoments(t *testing.T) {
	s := New(67)
	const n = 200000
	for _, c := range []struct{ shape, scale float64 }{
		{0.5, 2}, {1, 1}, {2, 0.5}, {4, 3},
	} {
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			v := s.Gamma(c.shape, c.scale)
			if v <= 0 {
				t.Fatalf("Gamma(%g,%g) produced non-positive %g", c.shape, c.scale, v)
			}
			sum += v
			sumSq += v * v
		}
		mean := sum / n
		wantMean := c.shape * c.scale
		if math.Abs(mean-wantMean)/wantMean > 0.03 {
			t.Fatalf("Gamma(%g,%g) mean %g, want %g", c.shape, c.scale, mean, wantMean)
		}
		variance := sumSq/n - mean*mean
		wantVar := c.shape * c.scale * c.scale
		if math.Abs(variance-wantVar)/wantVar > 0.08 {
			t.Fatalf("Gamma(%g,%g) var %g, want %g", c.shape, c.scale, variance, wantVar)
		}
	}
}

// Gamma with shape 1 is the exponential distribution: check a quantile.
func TestGammaShapeOneIsExponential(t *testing.T) {
	s := New(71)
	const n = 200000
	below := 0
	for i := 0; i < n; i++ {
		if s.Gamma(1, 2) < 2 {
			below++
		}
	}
	if got, want := float64(below)/n, 1-math.Exp(-1); math.Abs(got-want) > 0.01 {
		t.Fatalf("P(Gamma(1,2)<2) = %g, want %g", got, want)
	}
}

func TestGammaPanics(t *testing.T) {
	for _, c := range [][2]float64{{0, 1}, {-1, 1}, {1, 0}, {1, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Gamma(%g,%g) did not panic", c[0], c[1])
				}
			}()
			New(1).Gamma(c[0], c[1])
		}()
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(29)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	s := New(31)
	const n, draws = 5, 50000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Perm(n)[0]]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("Perm first element %d appeared %d times, want about %g", i, c, want)
		}
	}
}

func TestShuffle(t *testing.T) {
	s := New(37)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, len(xs))
	for _, v := range xs {
		if seen[v] {
			t.Fatalf("Shuffle lost or duplicated elements: %v", xs)
		}
		seen[v] = true
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(41)
	child := parent.Split()
	// Children must differ from the parent's continuing stream.
	collisions := 0
	for i := 0; i < 1000; i++ {
		if parent.Uint64() == child.Uint64() {
			collisions++
		}
	}
	if collisions > 0 {
		t.Fatalf("parent and child streams collided %d times", collisions)
	}
}

func TestSplitNDistinct(t *testing.T) {
	parent := New(43)
	children := parent.SplitN(8)
	firsts := map[uint64]bool{}
	for _, c := range children {
		firsts[c.Uint64()] = true
	}
	if len(firsts) != 8 {
		t.Fatalf("SplitN children overlapped: %d distinct first outputs of 8", len(firsts))
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(47).Split()
	b := New(47).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestCloneReplays(t *testing.T) {
	s := New(53)
	s.Uint64()
	c := s.Clone()
	for i := 0; i < 100; i++ {
		if s.Uint64() != c.Uint64() {
			t.Fatal("Clone diverged from original")
		}
	}
}

func TestStateRestore(t *testing.T) {
	s := New(59)
	s.Uint64()
	st := s.State()
	want := []uint64{s.Uint64(), s.Uint64(), s.Uint64()}
	if err := s.Restore(st); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Fatalf("after Restore, output %d = %d, want %d", i, got, w)
		}
	}
}

func TestRestoreRejectsZeroState(t *testing.T) {
	s := New(1)
	if err := s.Restore([4]uint64{}); err != ErrInvalidState {
		t.Fatalf("Restore(zero) = %v, want ErrInvalidState", err)
	}
}

func TestUniformRange(t *testing.T) {
	s := New(61)
	for i := 0; i < 10000; i++ {
		v := s.UniformRange(20, 40)
		if v < 20 || v >= 40 {
			t.Fatalf("UniformRange(20,40) = %g", v)
		}
	}
}

func TestUniformRangePanicsInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("UniformRange(2,1) did not panic")
		}
	}()
	New(1).UniformRange(2, 1)
}

// Property: Float64 is always a valid probability and Intn respects bounds,
// across arbitrary seeds.
func TestQuickSeedProperties(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		s := New(seed)
		n := int(nRaw%100) + 1
		v := s.Float64()
		k := s.Intn(n)
		return v >= 0 && v < 1 && k >= 0 && k < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Exp is non-negative for any non-negative mean.
func TestQuickExpNonNegative(t *testing.T) {
	f := func(seed uint64, meanRaw float64) bool {
		mean := math.Abs(meanRaw)
		if math.IsNaN(mean) || math.IsInf(mean, 0) {
			return true
		}
		return New(seed).Exp(mean) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64()
	}
	_ = sink
}

func BenchmarkExp(b *testing.B) {
	s := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += s.Exp(1)
	}
	_ = sink
}

func BenchmarkSplit(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Split()
	}
}
