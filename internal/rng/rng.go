// Package rng provides a small, deterministic, splittable random number
// generator used throughout the simulator.
//
// Every stochastic component of the library draws randomness through an
// explicit *Source. There is no global generator and no wall-clock seeding:
// identical seeds produce identical experiments, which is what makes the
// figure-regeneration harness reproducible. Sources can be split into
// statistically independent child streams, so parallel replications of an
// experiment never contend on a shared generator and never change results
// when the degree of parallelism changes.
//
// The core generator is xoshiro256**, seeded through SplitMix64. Both are
// public-domain algorithms by Blackman and Vigna with excellent statistical
// behaviour and a tiny state (four uint64 words), making a Source cheap to
// copy and split.
package rng

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// Source is a deterministic pseudo-random generator. The zero value is not
// valid; create Sources with New or by splitting an existing Source.
//
// A Source is not safe for concurrent use. Split off one child per goroutine
// instead of sharing; splitting is cheap and the children are independent.
type Source struct {
	s0, s1, s2, s3 uint64
}

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used to expand seeds into full generator states, as recommended by
// the xoshiro authors.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded deterministically from seed. Distinct seeds
// yield streams that are, for all practical purposes, independent.
func New(seed uint64) *Source {
	sm := seed
	s := &Source{}
	s.s0 = splitMix64(&sm)
	s.s1 = splitMix64(&sm)
	s.s2 = splitMix64(&sm)
	s.s3 = splitMix64(&sm)
	// A state of all zeros is the one forbidden state of xoshiro256**.
	// SplitMix64 cannot produce four consecutive zero outputs, but guard
	// anyway so the invariant is locally evident.
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		s.s0 = 1
	}
	return s
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	result := bits.RotateLeft64(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = bits.RotateLeft64(s.s3, 45)
	return result
}

// Split returns a new Source whose stream is independent of the parent's
// future output. The parent advances, so successive Splits give distinct
// children.
func (s *Source) Split() *Source {
	// Re-key a SplitMix64 stream from two parent outputs. Using the
	// parent's raw state directly would correlate parent and child;
	// hashing two outputs through SplitMix64 breaks the linear structure.
	sm := s.Uint64() ^ 0xd2b74407b1ce6e93
	sm += s.Uint64()
	c := &Source{}
	c.s0 = splitMix64(&sm)
	c.s1 = splitMix64(&sm)
	c.s2 = splitMix64(&sm)
	c.s3 = splitMix64(&sm)
	if c.s0|c.s1|c.s2|c.s3 == 0 {
		c.s0 = 1
	}
	return c
}

// SplitN returns n independent child Sources. It is shorthand for calling
// Split n times and is used to hand one stream to each parallel replication.
func (s *Source) SplitN(n int) []*Source {
	children := make([]*Source, n)
	for i := range children {
		children[i] = s.Split()
	}
	return children
}

// Float64 returns a uniform value in the half-open interval [0,1).
func (s *Source) Float64() float64 {
	// Use the top 53 bits; they are the best-scrambled bits of xoshiro256**.
	return float64(s.Uint64()>>11) * 0x1p-53
}

// Float64Open returns a uniform value in the open interval (0,1). It is the
// right primitive for inverse-CDF sampling of distributions whose transform
// is singular at 0 (such as the exponential, via log).
func (s *Source) Float64Open() float64 {
	for {
		u := s.Float64()
		if u > 0 {
			return u
		}
	}
}

// Intn returns a uniform integer in [0,n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("rng: Intn called with n=%d", n))
	}
	return int(s.boundedUint64(uint64(n)))
}

// boundedUint64 returns a uniform value in [0,bound) using Lemire's
// nearly-divisionless method, which avoids modulo bias.
func (s *Source) boundedUint64(bound uint64) uint64 {
	hi, lo := bits.Mul64(s.Uint64(), bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			hi, lo = bits.Mul64(s.Uint64(), bound)
		}
	}
	return hi
}

// UniformRange returns a uniform value in [lo, hi). It panics if hi < lo.
func (s *Source) UniformRange(lo, hi float64) float64 {
	if hi < lo {
		panic(fmt.Sprintf("rng: UniformRange called with inverted range [%g,%g)", lo, hi))
	}
	return lo + (hi-lo)*s.Float64()
}

// Bernoulli returns true with probability p. Probabilities outside [0,1] are
// clamped, so Bernoulli(1.2) is always true and Bernoulli(-0.3) never.
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Exp returns an exponentially distributed value with the given mean.
// This is the distribution of a Rayleigh-fading received signal strength
// whose deterministic (non-fading) strength is mean. Exp(0) is 0, matching
// the degenerate zero-gain case; negative means panic.
func (s *Source) Exp(mean float64) float64 {
	if mean < 0 {
		panic(fmt.Sprintf("rng: Exp called with negative mean %g", mean))
	}
	if mean == 0 {
		return 0
	}
	return -mean * math.Log(s.Float64Open())
}

// ExpRate returns an exponentially distributed value with rate lambda
// (mean 1/lambda). It panics if lambda <= 0.
func (s *Source) ExpRate(lambda float64) float64 {
	if lambda <= 0 {
		panic(fmt.Sprintf("rng: ExpRate called with non-positive rate %g", lambda))
	}
	return -math.Log(s.Float64Open()) / lambda
}

// Normal returns a normally distributed value with the given mean and
// standard deviation, using the Marsaglia polar method.
func (s *Source) Normal(mean, stddev float64) float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// Gamma returns a Gamma-distributed value with the given shape and scale
// (mean shape·scale), using the Marsaglia–Tsang squeeze method, with the
// standard shape<1 boost. It panics on non-positive parameters.
func (s *Source) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic(fmt.Sprintf("rng: Gamma called with shape=%g scale=%g", shape, scale))
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) · U^{1/a}.
		u := s.Float64Open()
		return s.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = s.Normal(0, 1)
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := s.Float64Open()
		if u < 1-0.0331*x*x*x*x {
			return scale * d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return scale * d * v
		}
	}
}

// Poisson returns a Poisson-distributed count with the given mean, using
// Knuth's multiplication method for small means and a Gaussian
// approximation with continuity correction beyond 256 (where the relative
// approximation error is far below sampling noise). Poisson(0) is 0;
// negative means panic.
func (s *Source) Poisson(mean float64) int {
	if mean < 0 {
		panic(fmt.Sprintf("rng: Poisson called with negative mean %g", mean))
	}
	if mean == 0 {
		return 0
	}
	if mean > 256 {
		v := s.Normal(mean, math.Sqrt(mean))
		n := int(math.Round(v))
		if n < 0 {
			return 0
		}
		return n
	}
	limit := math.Exp(-mean)
	p := 1.0
	n := -1
	for p > limit {
		p *= s.Float64Open()
		n++
	}
	return n
}

// Perm returns a uniformly random permutation of [0,n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes n elements uniformly at random using the provided swap
// function, in the manner of math/rand.Shuffle.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, s.Intn(i+1))
	}
}

// Clone returns an exact copy of the Source: the clone and the original
// produce identical future streams. This is useful for replaying a
// stochastic process under two different treatments with common random
// numbers.
func (s *Source) Clone() *Source {
	c := *s
	return &c
}

// State returns the four state words of the generator; together with
// Restore it allows checkpointing long simulations.
func (s *Source) State() [4]uint64 {
	return [4]uint64{s.s0, s.s1, s.s2, s.s3}
}

// ErrInvalidState reports an all-zero generator state passed to Restore.
var ErrInvalidState = errors.New("rng: all-zero state is not a valid xoshiro256** state")

// Restore sets the generator to a previously captured state.
func (s *Source) Restore(state [4]uint64) error {
	if state[0]|state[1]|state[2]|state[3] == 0 {
		return ErrInvalidState
	}
	s.s0, s.s1, s.s2, s.s3 = state[0], state[1], state[2], state[3]
	return nil
}
