package transform

import (
	"math"
	"testing"
	"testing/quick"

	"rayfade/internal/fading"
	"rayfade/internal/network"
	"rayfade/internal/rng"
	"rayfade/internal/sinr"
	"rayfade/internal/stats"
	"rayfade/internal/utility"
)

func randomMatrix(t testing.TB, seed uint64, n int) *network.Matrix {
	t.Helper()
	cfg := network.Figure1Config()
	cfg.N = n
	net, err := network.Random(cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return net.Gains()
}

func TestTransferReportsNonFadingValue(t *testing.T) {
	m := randomMatrix(t, 1, 20)
	set := []int{2, 7, 11}
	us := utility.Uniform(utility.Binary{Beta: 2.5})
	rep := Transfer(m, set, us)
	active := sinr.SetToActive(m.N, set)
	want := utility.Sum(us, sinr.Values(m, active))
	if rep.NonFadingValue != want {
		t.Fatalf("NonFadingValue = %g, want %g", rep.NonFadingValue, want)
	}
	if math.Abs(rep.GuaranteedValue-want/math.E) > 1e-15 {
		t.Fatalf("GuaranteedValue = %g, want %g", rep.GuaranteedValue, want/math.E)
	}
	if len(rep.PerLinkSINR) != len(set) {
		t.Fatalf("PerLinkSINR has %d entries", len(rep.PerLinkSINR))
	}
	// The report must not alias the caller's set.
	rep.Set[0] = 99
	if set[0] == 99 {
		t.Fatal("Transfer aliased the input set")
	}
}

// Lemma 2, the paper's statement, verified exactly via Theorem 1: for
// binary utilities the expected Rayleigh value of a transferred feasible
// set is at least NonFadingValue/e.
func TestLemma2HoldsExactly(t *testing.T) {
	f := func(seed uint64) bool {
		m := randomMatrix(t, seed, 15)
		src := rng.New(seed ^ 0xbeef)
		beta := 2.5
		var set []int
		for i := 0; i < m.N; i++ {
			if src.Bernoulli(0.3) {
				set = append(set, i)
			}
		}
		us := utility.Uniform(utility.Binary{Beta: beta})
		rep := Transfer(m, set, us)
		got := ExpectedFadingBinaryValue(m, set, beta)
		return got >= rep.GuaranteedValue-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Lemma 2 for Shannon utilities, via Monte Carlo.
func TestLemma2ShannonMC(t *testing.T) {
	m := randomMatrix(t, 7, 12)
	src := rng.New(70)
	set := []int{0, 3, 5, 9}
	us := utility.Uniform(utility.Shannon{})
	rep := Transfer(m, set, us)
	q := make([]float64, m.N)
	for _, i := range set {
		q[i] = 1
	}
	mc := fading.ExpectedUtilityMC(m, q, us, 20000, src)
	if mc.Mean < rep.GuaranteedValue-5*mc.StdErr {
		t.Fatalf("Shannon transfer: MC %g ± %g below guarantee %g", mc.Mean, mc.StdErr, rep.GuaranteedValue)
	}
}

func TestRepeatedSuccessProbability(t *testing.T) {
	// r = 1 recovers the single-shot bound p/e.
	if got, want := RepeatedSuccessProbability(0.4, 1), 0.4/math.E; math.Abs(got-want) > 1e-15 {
		t.Fatalf("r=1: %g, want %g", got, want)
	}
	// Monotone in r.
	prev := 0.0
	for r := 1; r <= 10; r++ {
		p := RepeatedSuccessProbability(0.3, r)
		if p <= prev {
			t.Fatalf("not increasing in r at r=%d", r)
		}
		prev = p
	}
	if got := RepeatedSuccessProbability(0, 4); got != 0 {
		t.Fatalf("p=0 gives %g", got)
	}
}

// The Section-4 claim: with 4 repeats, the Rayleigh success probability
// dominates the original non-fading probability for all p ≤ 1/2.
func TestFourRepeatsSufficeForHalf(t *testing.T) {
	f := func(pRaw float64) bool {
		if math.IsNaN(pRaw) {
			return true
		}
		p := math.Abs(math.Mod(pRaw, 0.5))
		return RepeatedSuccessProbability(p, AlohaRepeats) >= p-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
	// And check the endpoint p = 1/2 explicitly.
	if RepeatedSuccessProbability(0.5, AlohaRepeats) < 0.5 {
		t.Fatal("4 repeats do not cover p = 1/2")
	}
	// Sanity: 1 repeat does NOT suffice (the transformation is necessary).
	if RepeatedSuccessProbability(0.5, 1) >= 0.5 {
		t.Fatal("1 repeat should not dominate p = 1/2")
	}
}

func TestRepeatedSuccessProbabilityPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { RepeatedSuccessProbability(-0.1, 4) },
		func() { RepeatedSuccessProbability(1.1, 4) },
		func() { RepeatedSuccessProbability(0.5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestScheduleStructure(t *testing.T) {
	n := 100
	q := fading.UniformProbs(n, 1)
	steps := Schedule(q, ScheduleRepeats)
	if len(steps) == 0 {
		t.Fatal("empty schedule")
	}
	// Level count matches the tower.
	if got, want := len(steps), stats.TowerLevels(n); got != want {
		t.Fatalf("levels = %d, want %d", got, want)
	}
	// First step: b_0 = 1/4, probabilities q/(4·1/4) = q.
	if steps[0].B != 0.25 {
		t.Fatalf("b_0 = %g", steps[0].B)
	}
	for i := range q {
		if math.Abs(steps[0].Probs[i]-q[i]) > 1e-15 {
			t.Fatalf("step 0 probs[%d] = %g, want %g", i, steps[0].Probs[i], q[i])
		}
	}
	// Tower recursion between consecutive steps.
	for k := 1; k < len(steps); k++ {
		want := math.Exp(steps[k-1].B / 2)
		if math.Abs(steps[k].B-want) > 1e-12 {
			t.Fatalf("b_%d = %g, want %g", k, steps[k].B, want)
		}
	}
	// All probabilities valid and scaled correctly.
	for _, s := range steps {
		if s.Repeats != ScheduleRepeats {
			t.Fatalf("step %d repeats = %d", s.Level, s.Repeats)
		}
		for i, p := range s.Probs {
			if p < 0 || p > 1 {
				t.Fatalf("step %d probs[%d] = %g", s.Level, i, p)
			}
			want := math.Min(1, q[i]/(4*s.B))
			if math.Abs(p-want) > 1e-15 {
				t.Fatalf("step %d probs[%d] = %g, want %g", s.Level, i, p, want)
			}
		}
	}
}

func TestScheduleSlotsAreLogStar(t *testing.T) {
	for _, n := range []int{1, 10, 100, 10000, 1000000} {
		steps := Schedule(fading.UniformProbs(n, 0.5), ScheduleRepeats)
		slots := TotalSlots(steps)
		if slots != len(steps)*ScheduleRepeats {
			t.Fatalf("TotalSlots inconsistent: %d vs %d steps", slots, len(steps))
		}
		// log* growth: even a million links need only a handful of levels.
		if len(steps) > 10 {
			t.Fatalf("n=%d: %d levels, want O(log* n)", n, len(steps))
		}
	}
}

func TestScheduleEmptyAndPanics(t *testing.T) {
	if steps := Schedule(nil, 19); steps != nil {
		t.Fatal("empty q should give empty schedule")
	}
	for _, fn := range []func(){
		func() { Schedule([]float64{0.5}, 0) },
		func() { Schedule([]float64{1.5}, 19) },
		func() { Schedule([]float64{-0.5}, 19) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestRunScheduleOnce(t *testing.T) {
	m := randomMatrix(t, 9, 20)
	steps := Schedule(fading.UniformProbs(m.N, 1), 3)
	src := rng.New(42)
	best := RunScheduleOnce(m, steps, src)
	if len(best) != m.N {
		t.Fatalf("len = %d", len(best))
	}
	for i, v := range best {
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("best[%d] = %g", i, v)
		}
	}
	// With q = 1 and step-0 probabilities = 1, every link transmits in
	// step 0's slots, so every link gets at least one attempt: its best
	// SINR must be positive (noise is finite).
	for i, v := range best {
		if v == 0 {
			t.Fatalf("link %d never achieved positive SINR despite q=1", i)
		}
	}
}

func TestRunScheduleOncePanicsOnShapeMismatch(t *testing.T) {
	m := randomMatrix(t, 9, 5)
	steps := Schedule(fading.UniformProbs(7, 1), 2) // wrong width
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RunScheduleOnce(m, steps, rng.New(1))
}

// Theorem 2's empirical content: the simulation (best over its attempts)
// captures at least a constant fraction of the Rayleigh expected value.
// The proof gives E[u(γ^R)] ≤ 8·E[u(max_t γ^{nf,t})]; we verify with slack.
func TestTheorem2SimulationDominates(t *testing.T) {
	for _, seed := range []uint64{3, 5, 8} {
		m := randomMatrix(t, seed, 40)
		src := rng.New(seed * 1000)
		q := make([]float64, m.N)
		for i := range q {
			q[i] = src.Float64()
		}
		beta := 2.5
		us := utility.Uniform(utility.Binary{Beta: beta})

		rayleigh := fading.ExpectedSuccessesExact(m, q, beta)
		sim := SimulationValueMC(m, Schedule(q, ScheduleRepeats), us, 300, src)
		if sim.Mean < rayleigh/8-3*sim.StdErr {
			t.Fatalf("seed %d: simulation %g ± %g below Rayleigh/8 = %g",
				seed, sim.Mean, sim.StdErr, rayleigh/8)
		}
	}
}

// Theorem 2's per-link inequality from the proof: E[u_i(γ^R)] ≤
// 8·E[u_i(max_t γ_i^{nf,t})] for every link, verified by Monte Carlo with
// sampling slack.
func TestTheorem2PerLinkConstant(t *testing.T) {
	m := randomMatrix(t, 17, 25)
	src := rng.New(171)
	q := make([]float64, m.N)
	for i := range q {
		q[i] = 0.3 + 0.7*src.Float64()
	}
	beta := 2.5
	steps := Schedule(q, ScheduleRepeats)
	const samples = 400
	simHits := make([]float64, m.N)
	for s := 0; s < samples; s++ {
		best := RunScheduleOnce(m, steps, src)
		for i, v := range best {
			if v >= beta {
				simHits[i]++
			}
		}
	}
	for i := 0; i < m.N; i++ {
		rayleigh := fading.ExactSuccess(m, q, beta, i)
		simProb := simHits[i] / samples
		se := math.Sqrt(simProb*(1-simProb)/samples) + 1e-3
		if rayleigh > 8*(simProb+3*se) {
			t.Fatalf("link %d: Rayleigh %g exceeds 8×simulation %g", i, rayleigh, simProb)
		}
	}
}

// The best single step is within a constant-per-level factor of the whole
// simulation, and BestStep picks the maximal estimate.
func TestBestStepSelection(t *testing.T) {
	m := randomMatrix(t, 13, 30)
	src := rng.New(77)
	q := fading.UniformProbs(m.N, 0.8)
	us := utility.Uniform(utility.Binary{Beta: 2.5})
	steps := Schedule(q, ScheduleRepeats)
	best, all := BestStep(m, steps, us, 400, src)
	if len(all) != len(steps) {
		t.Fatalf("got %d step values for %d steps", len(all), len(steps))
	}
	for _, sv := range all {
		if sv.Value.Mean > best.Value.Mean {
			t.Fatalf("BestStep missed a better step: %g > %g", sv.Value.Mean, best.Value.Mean)
		}
	}
	// The best step's single-slot value must be ≥ simulation value divided
	// by the total number of attempts (union bound), with MC slack.
	sim := SimulationValueMC(m, steps, us, 300, src)
	floor := sim.Mean/float64(TotalSlots(steps)) - 3*(sim.StdErr+best.Value.StdErr)
	if best.Value.Mean < floor {
		t.Fatalf("best step %g below union-bound floor %g", best.Value.Mean, floor)
	}
}

func TestBestStepPanics(t *testing.T) {
	m := randomMatrix(t, 13, 5)
	us := utility.Uniform(utility.Binary{Beta: 2.5})
	for _, fn := range []func(){
		func() { BestStep(m, nil, us, 10, rng.New(1)) },
		func() { BestStep(m, Schedule(fading.UniformProbs(5, 1), 19), us, 0, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestSimulationValueMCPanics(t *testing.T) {
	m := randomMatrix(t, 13, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SimulationValueMC(m, nil, utility.Uniform(utility.Shannon{}), 0, rng.New(1))
}

func TestExpandSchedule(t *testing.T) {
	slots := [][]int{{0, 1}, {2}}
	out := ExpandSchedule(slots, 4)
	if len(out) != 8 {
		t.Fatalf("len = %d, want 8", len(out))
	}
	for r := 0; r < 4; r++ {
		if len(out[r]) != 2 || out[r][0] != 0 || out[r][1] != 1 {
			t.Fatalf("slot %d = %v", r, out[r])
		}
		if len(out[4+r]) != 1 || out[4+r][0] != 2 {
			t.Fatalf("slot %d = %v", 4+r, out[4+r])
		}
	}
	// Deep copy: mutating output must not touch input.
	out[0][0] = 99
	if slots[0][0] == 99 {
		t.Fatal("ExpandSchedule aliased its input")
	}
}

func TestExpandSchedulePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ExpandSchedule([][]int{{0}}, 0)
}

func TestLossFactorValue(t *testing.T) {
	if math.Abs(LossFactor-1/math.E) > 1e-18 {
		t.Fatalf("LossFactor = %g", LossFactor)
	}
}

func BenchmarkSchedule100(b *testing.B) {
	q := fading.UniformProbs(100, 0.7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Schedule(q, ScheduleRepeats)
	}
}

func BenchmarkRunScheduleOnce100(b *testing.B) {
	m := randomMatrix(b, 1, 100)
	steps := Schedule(fading.UniformProbs(100, 0.7), ScheduleRepeats)
	src := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunScheduleOnce(m, steps, src)
	}
}
