// Package transform implements the paper's primary contribution: the generic
// reduction between the non-fading SINR model and the Rayleigh-fading model
// (Sections 4 and 5).
//
// Three mechanisms make up the reduction:
//
//  1. Black-box solution transfer (Lemma 2). Any solution computed for the
//     non-fading model — the same senders, the same powers — retains, in
//     expectation under Rayleigh fading, at least a 1/e fraction of its
//     non-fading utility.
//
//  2. ALOHA repetition (Section 4). A randomized protocol step that succeeds
//     with probability p ≤ 1/2 in the non-fading model succeeds at least as
//     well under Rayleigh fading when executed 4 times independently:
//     1 − (1 − p/e)⁴ ≥ p.
//
//  3. Optimum simulation (Algorithm 1 / Theorem 2). Any Rayleigh-fading
//     transmission-probability assignment q can be simulated by O(log* n)
//     non-fading steps with scaled probabilities q/(4·b_k) along the tower
//     b_0 = 1/4, b_{k+1} = exp(b_k/2), each repeated 19 times; the best
//     single step loses only a constant factor, so the Rayleigh optimum is
//     at most O(log* n) above the non-fading optimum.
//
// Together, 1 and 3 convert any ρ-approximation for non-fading capacity
// maximization into an O(ρ·log* n)-approximation under Rayleigh fading,
// which is how every algorithm in internal/capacity acquires its fading
// guarantee.
package transform

import (
	"context"
	"fmt"
	"math"

	"rayfade/internal/fading"
	"rayfade/internal/network"
	"rayfade/internal/obs"
	"rayfade/internal/rng"
	"rayfade/internal/sinr"
	"rayfade/internal/utility"
)

// LossFactor is the guaranteed retention of Lemma 2: a transferred solution
// keeps at least a 1/e fraction of its non-fading utility in expectation.
const LossFactor = 1 / math.E

// AlohaRepeats is the repetition count of the Section-4 latency
// transformation: 4 independent executions per randomized step suffice for
// success probabilities up to 1/2.
const AlohaRepeats = 4

// ScheduleRepeats is the per-level repetition count of Algorithm 1.
const ScheduleRepeats = 19

// TransferReport describes the outcome of transferring a non-fading
// solution set into the Rayleigh model (Lemma 2).
type TransferReport struct {
	// Set is the transmitting set (unchanged by the transfer).
	Set []int
	// NonFadingValue is Σ_{i∈Set} u_i(γ_i^nf) with exactly Set transmitting.
	NonFadingValue float64
	// GuaranteedValue is the Lemma-2 lower bound NonFadingValue/e on the
	// expected Rayleigh utility.
	GuaranteedValue float64
	// PerLinkSINR are the non-fading SINRs γ_i^nf of the set's links,
	// indexed like Set.
	PerLinkSINR []float64
}

// Transfer applies Lemma 2: it evaluates the non-fading value of the set and
// returns the guarantee that the very same set, transmitted under Rayleigh
// fading with unchanged powers, retains at least a 1/e fraction in
// expectation. us follows the utility.Sum convention.
func Transfer(m *network.Matrix, set []int, us []utility.Func) TransferReport {
	active := sinr.SetToActive(m.N, set)
	vals := sinr.Values(m, active)
	perLink := make([]float64, len(set))
	for k, i := range set {
		perLink[k] = vals[i]
	}
	value := utility.Sum(us, vals)
	return TransferReport{
		Set:             append([]int(nil), set...),
		NonFadingValue:  value,
		GuaranteedValue: value * LossFactor,
		PerLinkSINR:     perLink,
	}
}

// ExpectedFadingBinaryValue returns the exact expected number of successes
// of the transferred set under Rayleigh fading at threshold β (Theorem 1
// applied to the indicator probability vector). Tests verify that it always
// dominates the Lemma-2 guarantee for binary utilities.
func ExpectedFadingBinaryValue(m *network.Matrix, set []int, beta float64) float64 {
	return fading.ExpectedBinaryValueOfSet(m, set, beta)
}

// RepeatedSuccessProbability returns 1 − (1 − p/e)^r: the probability that
// at least one of r independent Rayleigh executions of a non-fading step
// with success probability p reaches the threshold, using the Lemma-1
// guarantee that each execution succeeds with probability at least p/e.
func RepeatedSuccessProbability(p float64, r int) float64 {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("transform: success probability %g outside [0,1]", p))
	}
	if r <= 0 {
		panic(fmt.Sprintf("transform: repeat count %d must be positive", r))
	}
	return 1 - math.Pow(1-p*LossFactor, float64(r))
}

// Step is one level of the Algorithm-1 simulation: every sender transmits
// with probability Probs[i] in each of Repeats independent non-fading slots.
type Step struct {
	// Level is the tower index k of the step.
	Level int
	// B is the tower value b_k the step's probabilities were scaled by.
	B float64
	// Probs are the per-link transmission probabilities q_i / (4·b_k).
	Probs []float64
	// Repeats is the number of independent attempts at this level (19 in
	// the paper).
	Repeats int
}

// Slots returns the number of non-fading time slots the step occupies.
func (s Step) Slots() int { return s.Repeats }

// Schedule builds the Algorithm-1 simulation schedule for the Rayleigh
// transmission-probability vector q: one step per tower level k with
// b_k < n, using probabilities q/(4·b_k) and the given per-level repeat
// count (pass ScheduleRepeats for the paper's constant). The total number
// of steps is Θ(log* n) — tiny for any realistic n.
func Schedule(q []float64, repeats int) []Step {
	if repeats <= 0 {
		panic(fmt.Sprintf("transform: repeats = %d must be positive", repeats))
	}
	n := len(q)
	if n == 0 {
		return nil
	}
	for i, p := range q {
		if p < 0 || p > 1 || math.IsNaN(p) {
			panic(fmt.Sprintf("transform: q[%d] = %g is not a probability", i, p))
		}
	}
	var steps []Step
	b := 0.25
	for level := 0; b < float64(n); level++ {
		probs := make([]float64, n)
		for i, p := range q {
			probs[i] = p / (4 * b)
			if probs[i] > 1 { // cannot happen for b ≥ 1/4, but keep the invariant local
				probs[i] = 1
			}
		}
		steps = append(steps, Step{Level: level, B: b, Probs: probs, Repeats: repeats})
		b = math.Exp(b / 2)
		if level > 128 {
			panic("transform: tower failed to converge")
		}
	}
	return steps
}

// TotalSlots returns the number of non-fading slots the schedule occupies —
// the O(log* n) blow-up of Theorem 2's latency corollary.
func TotalSlots(steps []Step) int {
	total := 0
	for _, s := range steps {
		total += s.Slots()
	}
	return total
}

// RunScheduleOnce samples one full execution of the schedule in the
// non-fading model and returns, per link, the maximum SINR the link achieved
// over all attempts of all steps (max_t γ_i^{nf,t} in the proof of
// Theorem 2). Links that never transmitted report 0.
func RunScheduleOnce(m *network.Matrix, steps []Step, src *rng.Source) []float64 {
	best := make([]float64, m.N)
	active := make([]bool, m.N)
	for _, step := range steps {
		if len(step.Probs) != m.N {
			panic(fmt.Sprintf("transform: step has %d probabilities for %d links", len(step.Probs), m.N))
		}
		for rep := 0; rep < step.Repeats; rep++ {
			for i := range active {
				active[i] = src.Bernoulli(step.Probs[i])
			}
			vals := sinr.Values(m, active)
			for i, v := range vals {
				if v > best[i] {
					best[i] = v
				}
			}
		}
	}
	return best
}

// SimulationValueMC estimates E[Σ_i u_i(max_t γ_i^{nf,t})], the total
// utility of the simulation when every link keeps the best of its attempts.
// This is the quantity the proof of Theorem 2 lower-bounds against the
// Rayleigh expectation.
func SimulationValueMC(m *network.Matrix, steps []Step, us []utility.Func, samples int, src *rng.Source) fading.MCResult {
	if samples <= 0 {
		panic(fmt.Sprintf("transform: %d samples", samples))
	}
	var sum, sumSq float64
	for s := 0; s < samples; s++ {
		best := RunScheduleOnce(m, steps, src)
		v := utility.Sum(us, best)
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(samples)
	variance := sumSq/float64(samples) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return fading.MCResult{Mean: mean, StdErr: math.Sqrt(variance / float64(samples)), N: samples}
}

// StepValue is the estimated value of a single simulation step.
type StepValue struct {
	Step  Step
	Value fading.MCResult
}

// BestStep estimates, for each step of the schedule, the expected
// non-fading utility of a single slot played with that step's probabilities,
// and returns the best step. Theorem 2 concludes by picking exactly this
// step: the best single non-fading probability assignment is within a
// constant of the whole simulation, hence within O(log* n) of the Rayleigh
// optimum.
func BestStep(m *network.Matrix, steps []Step, us []utility.Func, samplesPerStep int, src *rng.Source) (best StepValue, all []StepValue) {
	best, all, _ = BestStepCtx(context.Background(), m, steps, us, samplesPerStep, src)
	return best, all
}

// BestStepCtx is BestStep with cooperative cancellation: ctx is polled once
// per Monte-Carlo sample, and ctx.Err() is returned (with zero-valued best
// and nil all) when cancelled — a partially sampled step comparison would
// not be a meaningful estimate.
func BestStepCtx(ctx context.Context, m *network.Matrix, steps []Step, us []utility.Func, samplesPerStep int, src *rng.Source) (best StepValue, all []StepValue, err error) {
	if len(steps) == 0 {
		panic("transform: empty schedule")
	}
	if samplesPerStep <= 0 {
		panic(fmt.Sprintf("transform: %d samples per step", samplesPerStep))
	}
	ctx, sp := obs.StartDetached(ctx, "transform.best_step")
	sp.SetAttr("steps", len(steps))
	sp.SetAttr("samples_per_step", samplesPerStep)
	defer sp.End()
	all = make([]StepValue, len(steps))
	active := make([]bool, m.N)
	for k, step := range steps {
		var sum, sumSq float64
		for s := 0; s < samplesPerStep; s++ {
			if err := ctx.Err(); err != nil {
				return StepValue{}, nil, err
			}
			for i := range active {
				active[i] = src.Bernoulli(step.Probs[i])
			}
			v := utility.Sum(us, sinr.Values(m, active))
			sum += v
			sumSq += v * v
		}
		mean := sum / float64(samplesPerStep)
		variance := sumSq/float64(samplesPerStep) - mean*mean
		if variance < 0 {
			variance = 0
		}
		all[k] = StepValue{Step: step, Value: fading.MCResult{
			Mean:   mean,
			StdErr: math.Sqrt(variance / float64(samplesPerStep)),
			N:      samplesPerStep,
		}}
	}
	best = all[0]
	for _, sv := range all[1:] {
		if sv.Value.Mean > best.Value.Mean {
			best = sv
		}
	}
	return best, all, nil
}

// ExpandSchedule converts a non-fading latency schedule (one transmitting
// set per slot) into its Rayleigh-ready form by repeating every slot
// `repeats` times — the Section-4 transformation for algorithms built from
// repeated single-slot maximization. The guarantee: a slot whose links all
// succeed in the non-fading model gives each of those links at least a
// 1 − (1 − 1/e)^repeats chance under Rayleigh fading.
func ExpandSchedule(slots [][]int, repeats int) [][]int {
	if repeats <= 0 {
		panic(fmt.Sprintf("transform: repeats = %d must be positive", repeats))
	}
	out := make([][]int, 0, len(slots)*repeats)
	for _, slot := range slots {
		for r := 0; r < repeats; r++ {
			out = append(out, append([]int(nil), slot...))
		}
	}
	return out
}
