package latency

import (
	"testing"

	"rayfade/internal/rng"
	"rayfade/internal/stats"
	"rayfade/internal/transform"
)

func TestBackoffAlohaCompletesBothModels(t *testing.T) {
	net := fig1Net(t, 41, 60)
	m := net.Gains()
	src := rng.New(42)
	nf := BackoffAloha(m, 2.5, DefaultBackoff, src, NonFading{})
	if !nf.Done {
		t.Fatalf("non-fading backoff incomplete after %d slots", nf.Slots)
	}
	cfg := DefaultBackoff
	cfg.Repeats = transform.AlohaRepeats
	rl := BackoffAloha(m, 2.5, cfg, src, Rayleigh{Src: src})
	if !rl.Done {
		t.Fatalf("rayleigh backoff incomplete after %d slots", rl.Slots)
	}
	total := 0
	for _, c := range nf.PerSlotSuccesses {
		total += c
	}
	if total != m.N {
		t.Fatalf("first-time successes %d, want %d", total, m.N)
	}
}

// Backoff must rescue the pathological p=1 case that freezes the fixed
// protocol on dense instances: starting everyone at 1 still completes.
func TestBackoffRescuesFullProbabilityStart(t *testing.T) {
	net := fig1Net(t, 43, 80)
	m := net.Gains()
	cfg := BackoffConfig{Start: 1, Min: 0.02, Factor: 0.5, MaxSlots: 50000}
	res := BackoffAloha(m, 2.5, cfg, rng.New(44), NonFading{})
	if !res.Done {
		t.Fatalf("backoff from p=1 incomplete after %d slots", res.Slots)
	}
	fixed := Aloha(m, 2.5, AlohaConfig{Prob: 1, MaxSlots: 50000}, rng.New(44), NonFading{})
	if fixed.Done && fixed.Slots <= res.Slots {
		t.Fatal("fixed p=1 unexpectedly matched backoff on a dense instance")
	}
}

func TestBackoffRespectsMaxSlots(t *testing.T) {
	net := fig1Net(t, 45, 20)
	net.Noise = 1e9
	m := net.Gains()
	cfg := DefaultBackoff
	cfg.MaxSlots = 64
	res := BackoffAloha(m, 2.5, cfg, rng.New(46), NonFading{})
	if res.Done || res.Slots != 64 {
		t.Fatalf("done=%v slots=%d", res.Done, res.Slots)
	}
}

func TestBackoffPanicsOnBadConfig(t *testing.T) {
	net := fig1Net(t, 1, 5)
	m := net.Gains()
	bad := []BackoffConfig{
		{Start: 0, Min: 0.01, Factor: 0.5},
		{Start: 1.5, Min: 0.01, Factor: 0.5},
		{Start: 0.5, Min: 0, Factor: 0.5},
		{Start: 0.5, Min: 0.9, Factor: 0.5},
		{Start: 0.5, Min: 0.01, Factor: 0},
		{Start: 0.5, Min: 0.01, Factor: 1},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d did not panic", i)
				}
			}()
			BackoffAloha(m, 2.5, cfg, rng.New(1), NonFading{})
		}()
	}
}

// On moderately dense instances, backoff should be competitive with a
// hand-tuned fixed probability (within a small factor on average).
func TestBackoffCompetitiveWithTunedFixed(t *testing.T) {
	net := fig1Net(t, 47, 60)
	m := net.Gains()
	var fixed, backoff stats.Running
	for trial := uint64(0); trial < 8; trial++ {
		f := Aloha(m, 2.5, AlohaConfig{Prob: 0.1, MaxSlots: 50000}, rng.New(100+trial), NonFading{})
		b := BackoffAloha(m, 2.5, DefaultBackoff, rng.New(200+trial), NonFading{})
		if !f.Done || !b.Done {
			t.Fatal("a run did not complete")
		}
		fixed.Add(float64(f.Slots))
		backoff.Add(float64(b.Slots))
	}
	if backoff.Mean() > 5*fixed.Mean() {
		t.Fatalf("backoff %.1f slots vs tuned fixed %.1f — not competitive",
			backoff.Mean(), fixed.Mean())
	}
}

func BenchmarkBackoffAloha60(b *testing.B) {
	net := fig1Net(b, 1, 60)
	m := net.Gains()
	src := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BackoffAloha(m, 2.5, DefaultBackoff, src, NonFading{})
	}
}
