package latency

import (
	"errors"
	"testing"

	"rayfade/internal/capacity"
	"rayfade/internal/network"
	"rayfade/internal/rng"
	"rayfade/internal/sinr"
	"rayfade/internal/transform"
)

func fig1Net(t testing.TB, seed uint64, n int) *network.Network {
	t.Helper()
	cfg := network.Figure1Config()
	cfg.N = n
	net, err := network.Random(cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func defaultCapFn(net *network.Network) CapacityFunc {
	return GreedyCapacity(capacity.LengthOrder(net), capacity.DefaultTau)
}

func TestRepeatedCapacityCoversAllLinks(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		net := fig1Net(t, seed, 60)
		m := net.Gains()
		slots, err := RepeatedCapacity(m, 2.5, defaultCapFn(net))
		if err != nil {
			t.Fatal(err)
		}
		covered := make([]bool, m.N)
		for _, slot := range slots {
			if !sinr.Feasible(m, slot, 2.5) {
				t.Fatalf("slot %v infeasible", slot)
			}
			for _, i := range slot {
				if covered[i] {
					t.Fatalf("link %d scheduled twice", i)
				}
				covered[i] = true
			}
		}
		for i, c := range covered {
			if !c {
				t.Fatalf("link %d never scheduled", i)
			}
		}
		if len(slots) < 2 {
			t.Fatalf("schedule suspiciously short: %d slots for 60 links", len(slots))
		}
	}
}

func TestRepeatedCapacityUnschedulable(t *testing.T) {
	net := fig1Net(t, 5, 10)
	net.Noise = 1e9
	_, err := RepeatedCapacity(net.Gains(), 2.5, defaultCapFn(net))
	if !errors.Is(err, ErrUnschedulable) {
		t.Fatalf("err = %v, want ErrUnschedulable", err)
	}
}

func TestRepeatedCapacityDetectsBrokenCapacityFunc(t *testing.T) {
	net := fig1Net(t, 6, 10)
	broken := func(m *network.Matrix, beta float64, candidates []int) []int { return nil }
	if _, err := RepeatedCapacity(net.Gains(), 2.5, broken); err == nil {
		t.Fatal("empty-slot capacity function not rejected")
	}
	dense := fig1Net(t, 6, 100)
	m := dense.Gains()
	if sinr.Feasible(m, allLinks(m.N), 2.5) {
		t.Fatal("test premise broken: 100 simultaneous links should be infeasible")
	}
	infeasible := func(m *network.Matrix, beta float64, candidates []int) []int {
		return candidates // everything at once: infeasible on this workload
	}
	if _, err := RepeatedCapacity(m, 2.5, infeasible); err == nil {
		t.Fatal("infeasible-slot capacity function not rejected")
	}
}

func allLinks(n int) []int {
	set := make([]int, n)
	for i := range set {
		set[i] = i
	}
	return set
}

func TestValidateSchedule(t *testing.T) {
	net := fig1Net(t, 51, 40)
	m := net.Gains()
	slots, err := RepeatedCapacity(m, 2.5, defaultCapFn(net))
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateSchedule(m, slots, 2.5); err != nil {
		t.Fatalf("sound schedule rejected: %v", err)
	}
	// Break it in each way.
	if err := ValidateSchedule(m, slots[1:], 2.5); err == nil {
		t.Error("missing-link schedule accepted")
	}
	bad := append([][]int{{0, 0}}, slots...)
	if err := ValidateSchedule(m, bad, 2.5); err == nil {
		t.Error("duplicate-in-slot schedule accepted")
	}
	bad = append([][]int{{m.N}}, slots...)
	if err := ValidateSchedule(m, bad, 2.5); err == nil {
		t.Error("out-of-range schedule accepted")
	}
	all := make([]int, m.N)
	for i := range all {
		all[i] = i
	}
	if err := ValidateSchedule(m, [][]int{all}, 2.5); err == nil {
		t.Error("everything-at-once schedule accepted")
	}
}

func TestPlayScheduleNonFadingCompletes(t *testing.T) {
	net := fig1Net(t, 7, 50)
	m := net.Gains()
	slots, err := RepeatedCapacity(m, 2.5, defaultCapFn(net))
	if err != nil {
		t.Fatal(err)
	}
	used, done, perSlot := PlaySchedule(m, slots, 2.5, NonFading{})
	if !done {
		t.Fatal("non-fading replay of a non-fading schedule must complete")
	}
	if used != len(slots) {
		t.Fatalf("used %d slots of %d; every slot should contribute", used, len(slots))
	}
	total := 0
	for _, c := range perSlot {
		total += c
	}
	if total < m.N {
		t.Fatalf("only %d successes for %d links", total, m.N)
	}
}

func TestPlayScheduleIncomplete(t *testing.T) {
	net := fig1Net(t, 8, 20)
	m := net.Gains()
	// A schedule covering only link 0 cannot serve everyone.
	used, done, _ := PlaySchedule(m, [][]int{{0}}, 2.5, NonFading{})
	if done {
		t.Fatal("partial schedule reported done")
	}
	if used != 1 {
		t.Fatalf("used = %d", used)
	}
}

func TestRepeatUntilDoneRayleigh(t *testing.T) {
	net := fig1Net(t, 9, 40)
	m := net.Gains()
	base, err := RepeatedCapacity(m, 2.5, defaultCapFn(net))
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(123)
	slots, done := RepeatUntilDone(m, base, 2.5, transform.AlohaRepeats, 200, Rayleigh{Src: src})
	if !done {
		t.Fatalf("Rayleigh replay did not finish in %d slots", slots)
	}
	if slots < len(base) {
		t.Fatalf("finished in %d slots, less than one expanded round of %d", slots, len(base))
	}
}

// The Section-4 bound in action: the expected Rayleigh completion time with
// 4 repeats should be within a small constant of the non-fading schedule
// length. We allow a generous factor of 12 to keep the test robust.
func TestRepeatUntilDoneOverheadBounded(t *testing.T) {
	net := fig1Net(t, 10, 50)
	m := net.Gains()
	base, err := RepeatedCapacity(m, 2.5, defaultCapFn(net))
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(77)
	totalSlots := 0
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		slots, done := RepeatUntilDone(m, base, 2.5, transform.AlohaRepeats, 500, Rayleigh{Src: src})
		if !done {
			t.Fatal("run did not complete")
		}
		totalSlots += slots
	}
	avg := float64(totalSlots) / trials
	if avg > 12*float64(len(base)*transform.AlohaRepeats) {
		t.Fatalf("average Rayleigh latency %.1f ≫ %d-slot non-fading schedule", avg, len(base))
	}
}

func TestRepeatUntilDonePanics(t *testing.T) {
	net := fig1Net(t, 1, 5)
	m := net.Gains()
	for _, fn := range []func(){
		func() { RepeatUntilDone(m, [][]int{{0}}, 2.5, 0, 10, NonFading{}) },
		func() { RepeatUntilDone(m, [][]int{{0}}, 2.5, 4, 0, NonFading{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestAlohaNonFadingCompletes(t *testing.T) {
	net := fig1Net(t, 11, 40)
	m := net.Gains()
	src := rng.New(5)
	res := Aloha(m, 2.5, AlohaConfig{Prob: 0.1}, src, NonFading{})
	if !res.Done {
		t.Fatalf("ALOHA did not complete in %d slots", res.Slots)
	}
	if len(res.PerSlotSuccesses) != res.Slots {
		t.Fatalf("per-slot record %d entries for %d slots", len(res.PerSlotSuccesses), res.Slots)
	}
	total := 0
	for _, c := range res.PerSlotSuccesses {
		total += c
	}
	if total != m.N {
		t.Fatalf("first-time successes %d, want %d", total, m.N)
	}
}

func TestAlohaRayleighWithRepeats(t *testing.T) {
	net := fig1Net(t, 12, 40)
	m := net.Gains()
	src := rng.New(6)
	res := Aloha(m, 2.5, AlohaConfig{Prob: 0.1, Repeats: transform.AlohaRepeats}, src, Rayleigh{Src: src})
	if !res.Done {
		t.Fatalf("Rayleigh ALOHA did not complete in %d slots", res.Slots)
	}
}

func TestAlohaRespectsMaxSlots(t *testing.T) {
	net := fig1Net(t, 13, 30)
	net.Noise = 1e9 // nobody can ever succeed
	m := net.Gains()
	res := Aloha(m, 2.5, AlohaConfig{Prob: 0.2, MaxSlots: 100}, rng.New(7), NonFading{})
	if res.Done {
		t.Fatal("impossible instance reported done")
	}
	if res.Slots != 100 {
		t.Fatalf("Slots = %d, want 100", res.Slots)
	}
}

func TestAlohaPanicsOnBadProb(t *testing.T) {
	net := fig1Net(t, 1, 5)
	for _, p := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Prob=%g did not panic", p)
				}
			}()
			Aloha(net.Gains(), 2.5, AlohaConfig{Prob: p}, rng.New(1), NonFading{})
		}()
	}
}

// ALOHA latency grows when the transmission probability is pushed toward 1
// on dense instances (everyone collides). Compare p=0.1 vs p=1.
func TestAlohaCollapseAtHighProbability(t *testing.T) {
	net := fig1Net(t, 14, 60)
	m := net.Gains()
	low := Aloha(m, 2.5, AlohaConfig{Prob: 0.1, MaxSlots: 20000}, rng.New(8), NonFading{})
	high := Aloha(m, 2.5, AlohaConfig{Prob: 1, MaxSlots: 20000}, rng.New(9), NonFading{})
	if !low.Done {
		t.Fatal("p=0.1 did not complete")
	}
	// With p=1 every unserved link always transmits: the set of
	// transmitters is identical every slot, so successes freeze after the
	// first slot and the run cannot finish on a dense instance.
	if high.Done && high.Slots < low.Slots {
		t.Fatalf("p=1 (%d slots) beat p=0.1 (%d slots) on a dense instance", high.Slots, low.Slots)
	}
}

func TestMultiHopDelivers(t *testing.T) {
	net := fig1Net(t, 15, 30)
	m := net.Gains()
	paths := []Path{
		{0, 5, 9},
		{3, 7},
		{12},
		{},
	}
	slots, done := MultiHop(m, 2.5, paths, defaultCapFn(net), 0, NonFading{})
	if !done {
		t.Fatalf("multi-hop did not deliver in %d slots", slots)
	}
	// Store-and-forward: at least max path length slots needed.
	if slots < 3 {
		t.Fatalf("delivered in %d slots; path of 3 hops needs ≥ 3", slots)
	}
}

func TestMultiHopRayleigh(t *testing.T) {
	net := fig1Net(t, 16, 30)
	m := net.Gains()
	src := rng.New(10)
	paths := []Path{{0, 5}, {3, 7, 11}}
	slots, done := MultiHop(m, 2.5, paths, defaultCapFn(net), 10000, Rayleigh{Src: src})
	if !done {
		t.Fatalf("Rayleigh multi-hop did not deliver in %d slots", slots)
	}
}

func TestMultiHopSharedHop(t *testing.T) {
	net := fig1Net(t, 17, 20)
	m := net.Gains()
	// Two packets sharing the same next hop: one success advances both.
	paths := []Path{{4, 8}, {4, 9}}
	_, done := MultiHop(m, 2.5, paths, defaultCapFn(net), 0, NonFading{})
	if !done {
		t.Fatal("shared-hop instance did not deliver")
	}
}

func TestMultiHopPanicsOnBadPath(t *testing.T) {
	net := fig1Net(t, 1, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MultiHop(net.Gains(), 2.5, []Path{{99}}, defaultCapFn(net), 0, NonFading{})
}

func TestModelNames(t *testing.T) {
	if (NonFading{}).Name() == "" || (Rayleigh{}).Name() == "" {
		t.Fatal("model names empty")
	}
}

func BenchmarkRepeatedCapacity60(b *testing.B) {
	net := fig1Net(b, 1, 60)
	m := net.Gains()
	fn := defaultCapFn(net)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RepeatedCapacity(m, 2.5, fn); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlohaNonFading60(b *testing.B) {
	net := fig1Net(b, 1, 60)
	m := net.Gains()
	src := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Aloha(m, 2.5, AlohaConfig{Prob: 0.1}, src, NonFading{})
	}
}
