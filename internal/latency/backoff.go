package latency

import (
	"fmt"

	"rayfade/internal/network"
	"rayfade/internal/rng"
)

// BackoffConfig parameterizes the adaptive variant of the distributed
// contention protocol: links halve (or scale by Factor) their transmission
// probability after a failed attempt — classic exponential backoff — and
// keep it on success attempts of others. Compared to the fixed-probability
// protocol, backoff self-tunes to the local contention level and removes
// the need to guess a good global probability.
type BackoffConfig struct {
	// Start is the initial per-link transmission probability (0,1].
	Start float64
	// Min floors the probability so a link never silences itself forever.
	Min float64
	// Factor in (0,1) multiplies a link's probability after it transmits
	// and fails.
	Factor float64
	// MaxSlots aborts the run; 0 means 256·n slots.
	MaxSlots int
	// Repeats executes each randomized step this many times under a
	// stochastic model (the Section-4 transformation).
	Repeats int
}

// DefaultBackoff is a reasonable configuration for Figure-1-like densities.
var DefaultBackoff = BackoffConfig{Start: 0.5, Min: 0.01, Factor: 0.5}

// BackoffAloha runs the adaptive protocol: every unserved link transmits
// with its own current probability; a transmitting link that fails scales
// its probability by Factor (floored at Min); a link that succeeds drops
// out. The same code serves both interference models via the SuccessModel.
func BackoffAloha(m *network.Matrix, beta float64, cfg BackoffConfig, src *rng.Source, model SuccessModel) AlohaResult {
	if cfg.Start <= 0 || cfg.Start > 1 {
		panic(fmt.Sprintf("latency: backoff start probability %g outside (0,1]", cfg.Start))
	}
	if cfg.Min <= 0 || cfg.Min > cfg.Start {
		panic(fmt.Sprintf("latency: backoff floor %g outside (0,%g]", cfg.Min, cfg.Start))
	}
	if cfg.Factor <= 0 || cfg.Factor >= 1 {
		panic(fmt.Sprintf("latency: backoff factor %g outside (0,1)", cfg.Factor))
	}
	repeats := cfg.Repeats
	if repeats <= 0 {
		repeats = 1
	}
	maxSlots := cfg.MaxSlots
	if maxSlots <= 0 {
		maxSlots = 256 * m.N
	}
	probs := make([]float64, m.N)
	for i := range probs {
		probs[i] = cfg.Start
	}
	served := make([]bool, m.N)
	needed := m.N
	res := AlohaResult{}
	active := make([]bool, m.N)
	for res.Slots < maxSlots && needed > 0 {
		any := false
		for i := range active {
			active[i] = !served[i] && src.Bernoulli(probs[i])
			any = any || active[i]
		}
		succeededThisStep := make(map[int]bool)
		for r := 0; r < repeats && res.Slots < maxSlots; r++ {
			res.Slots++
			if !any {
				res.PerSlotSuccesses = append(res.PerSlotSuccesses, 0)
				continue
			}
			newly := 0
			for _, i := range model.Successes(m, active, beta) {
				if !served[i] {
					served[i] = true
					active[i] = false
					succeededThisStep[i] = true
					newly++
					needed--
				}
			}
			res.PerSlotSuccesses = append(res.PerSlotSuccesses, newly)
			if needed == 0 {
				break
			}
		}
		// Backoff: links that attempted this step and did not get through
		// scale down.
		for i := range probs {
			if served[i] || succeededThisStep[i] {
				continue
			}
			if active[i] { // still marked active ⇒ transmitted and failed
				probs[i] *= cfg.Factor
				if probs[i] < cfg.Min {
					probs[i] = cfg.Min
				}
			}
		}
	}
	res.Done = needed == 0
	return res
}
