// Package latency implements latency minimization: scheduling all n links in
// as few time slots as possible so that every link succeeds at least once.
//
// Two algorithm families from the literature are provided, matching the two
// classes the paper's Section 4 transforms:
//
//   - RepeatedCapacity — maximize the utilization of the first slot with a
//     capacity algorithm, remove the successful links, recurse [8]. Under
//     Rayleigh fading the same schedule is replayed with each slot repeated
//     transform.AlohaRepeats times (ExpandSchedule), preserving per-slot
//     success probabilities by the Section-4 argument.
//
//   - Aloha — the distributed, ALOHA-style contention scheme in the spirit
//     of Kesselheim–Vöcking [9]: every still-unserved link transmits with a
//     (small) probability each slot and drops out on success. The fading
//     variant executes every randomized step AlohaRepeats times.
//
// Both run against an abstract SuccessModel so the identical algorithm code
// drives the non-fading and the Rayleigh-fading experiments.
package latency

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"rayfade/internal/fading"
	"rayfade/internal/network"
	"rayfade/internal/obs"
	"rayfade/internal/rng"
	"rayfade/internal/sinr"
	"rayfade/internal/transform"
)

// SuccessModel decides which of the currently transmitting links succeed at
// threshold beta. Implementations exist for both interference models.
type SuccessModel interface {
	// Successes returns the indices of active links with SINR ≥ beta for
	// one slot. Stochastic models draw fresh fading randomness per call.
	Successes(m *network.Matrix, active []bool, beta float64) []int
	// Name identifies the model in experiment output.
	Name() string
}

// NonFading evaluates successes deterministically from the expected gains.
type NonFading struct{}

// Successes implements SuccessModel.
func (NonFading) Successes(m *network.Matrix, active []bool, beta float64) []int {
	return sinr.Successes(m, active, beta)
}

// Name implements SuccessModel.
func (NonFading) Name() string { return "non-fading" }

// Rayleigh draws an exponential fading realization per slot. The zero-ish
// literal form Rayleigh{Src: src} works everywhere but allocates per slot;
// NewRayleigh attaches reusable kernel scratch for allocation-free slots.
type Rayleigh struct {
	Src *rng.Source
	s   *rayleighScratch
}

type rayleighScratch struct {
	vals []float64
	idx  []int
	succ []int
}

// NewRayleigh returns a Rayleigh model with preallocated scratch for n-link
// matrices, making every Successes call allocation-free. The returned
// success slice is only valid until the next call on the same model — the
// schedulers in this package all consume it immediately.
func NewRayleigh(src *rng.Source, n int) Rayleigh {
	return Rayleigh{Src: src, s: &rayleighScratch{
		vals: make([]float64, n),
		idx:  make([]int, 0, n),
		succ: make([]int, 0, n),
	}}
}

// Successes implements SuccessModel.
func (r Rayleigh) Successes(m *network.Matrix, active []bool, beta float64) []int {
	if r.s == nil || len(r.s.vals) != m.N {
		return fading.SampleSuccesses(m, active, beta, r.Src)
	}
	vals := fading.SampleSINRsInto(m, active, r.Src, r.s.vals, r.s.idx)
	succ := r.s.succ[:0]
	for i, a := range active {
		if a && vals[i] >= beta {
			succ = append(succ, i)
		}
	}
	r.s.succ = succ
	return succ
}

// Name implements SuccessModel.
func (Rayleigh) Name() string { return "rayleigh" }

// ErrUnschedulable reports links that can never succeed (their own signal
// cannot beat the noise at the threshold), making full-coverage latency
// minimization impossible in the non-fading model.
var ErrUnschedulable = errors.New("latency: some links can never reach the threshold")

// CapacityFunc is any single-slot capacity maximizer over a restricted
// candidate set: it returns a feasible subset of the candidates.
type CapacityFunc func(m *network.Matrix, beta float64, candidates []int) []int

// GreedyCapacity adapts the affectance greedy of internal/capacity into a
// CapacityFunc, scanning candidates in the given global order.
func GreedyCapacity(order []int, tau float64) CapacityFunc {
	return func(m *network.Matrix, beta float64, candidates []int) []int {
		inCand := make(map[int]bool, len(candidates))
		for _, c := range candidates {
			inCand[c] = true
		}
		scan := make([]int, 0, len(candidates))
		for _, i := range order {
			if inCand[i] {
				scan = append(scan, i)
			}
		}
		return greedyRestricted(m, beta, tau, scan)
	}
}

// greedyRestricted is the affectance greedy over an explicit scan order,
// duplicated here (rather than importing internal/capacity) to keep the
// package dependency graph acyclic: capacity evaluation belongs to the
// capacity package, slot construction to this one.
func greedyRestricted(m *network.Matrix, beta, tau float64, scan []int) []int {
	var selected []int
	load := map[int]float64{}
	for _, cand := range scan {
		if m.Own(cand) <= beta*m.Noise || m.Own(cand) == 0 {
			continue
		}
		inbound := 0.0
		ok := true
		for _, s := range selected {
			inbound += sinr.AffectanceUncapped(m, beta, s, cand)
			if inbound > tau {
				ok = false
				break
			}
			if load[s]+sinr.AffectanceUncapped(m, beta, cand, s) > tau {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, s := range selected {
			load[s] += sinr.AffectanceUncapped(m, beta, cand, s)
		}
		load[cand] = inbound
		selected = append(selected, cand)
	}
	return selected
}

// RepeatedCapacity builds a non-fading schedule by repeatedly maximizing
// single-slot capacity among the still-unscheduled links. It returns the
// slots (each a feasible set). Links that cannot succeed even alone trigger
// ErrUnschedulable.
func RepeatedCapacity(m *network.Matrix, beta float64, capFn CapacityFunc) ([][]int, error) {
	return RepeatedCapacityCtx(context.Background(), m, beta, capFn)
}

// RepeatedCapacityCtx is RepeatedCapacity with cooperative cancellation: ctx
// is polled before every slot construction (each slot is one capacity-
// maximization pass, the expensive unit of work), and ctx.Err() is returned
// when cancelled — no partial schedule, since a truncated schedule would
// violate the serve-every-link contract.
func RepeatedCapacityCtx(ctx context.Context, m *network.Matrix, beta float64, capFn CapacityFunc) ([][]int, error) {
	ctx, sp := obs.StartDetached(ctx, "latency.repeated_capacity")
	sp.SetAttr("links", m.N)
	var slots [][]int
	defer func() {
		sp.SetAttr("slots", len(slots))
		sp.End()
	}()
	remaining := make([]int, 0, m.N)
	for i := 0; i < m.N; i++ {
		if m.Own(i) < beta*m.Noise || m.Own(i) == 0 {
			return nil, fmt.Errorf("%w: link %d", ErrUnschedulable, i)
		}
		remaining = append(remaining, i)
	}
	for len(remaining) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		slot := capFn(m, beta, remaining)
		if len(slot) == 0 {
			// A correct capacity function can always schedule a lone
			// viable link; an empty slot means the function is broken.
			return nil, fmt.Errorf("latency: capacity function returned empty slot with %d links remaining", len(remaining))
		}
		if !sinr.Feasible(m, slot, beta) {
			return nil, fmt.Errorf("latency: capacity function returned infeasible slot %v", slot)
		}
		slots = append(slots, slot)
		scheduled := make(map[int]bool, len(slot))
		for _, i := range slot {
			scheduled[i] = true
		}
		next := remaining[:0]
		for _, i := range remaining {
			if !scheduled[i] {
				next = append(next, i)
			}
		}
		remaining = next
	}
	return slots, nil
}

// ValidateSchedule checks a (possibly externally produced) schedule against
// the non-fading model: every link must appear in at least one slot whose
// set is simultaneously feasible at beta, and no slot may contain
// out-of-range or duplicate links. It returns nil for a sound schedule.
func ValidateSchedule(m *network.Matrix, slots [][]int, beta float64) error {
	served := make([]bool, m.N)
	for t, slot := range slots {
		seen := map[int]bool{}
		for _, i := range slot {
			if i < 0 || i >= m.N {
				return fmt.Errorf("latency: slot %d references link %d outside [0,%d)", t, i, m.N)
			}
			if seen[i] {
				return fmt.Errorf("latency: slot %d lists link %d twice", t, i)
			}
			seen[i] = true
		}
		if !sinr.Feasible(m, slot, beta) {
			return fmt.Errorf("latency: slot %d is infeasible at β=%g", t, beta)
		}
		for _, i := range slot {
			served[i] = true
		}
	}
	for i, ok := range served {
		if !ok {
			return fmt.Errorf("latency: link %d never scheduled", i)
		}
	}
	return nil
}

// PlaySchedule executes a fixed schedule under a success model and returns
// the number of slots after which every link has succeeded at least once,
// along with the per-slot success counts. If the schedule ends with links
// still unserved, done reports false and slotsUsed is len(slots).
func PlaySchedule(m *network.Matrix, slots [][]int, beta float64, model SuccessModel) (slotsUsed int, done bool, perSlot []int) {
	served := make([]bool, m.N)
	needed := m.N
	perSlot = make([]int, 0, len(slots))
	for t, slot := range slots {
		active := make([]bool, m.N)
		for _, i := range slot {
			active[i] = true
		}
		succ := model.Successes(m, active, beta)
		perSlot = append(perSlot, len(succ))
		for _, i := range succ {
			if !served[i] {
				served[i] = true
				needed--
			}
		}
		if needed == 0 {
			return t + 1, true, perSlot
		}
	}
	return len(slots), false, perSlot
}

// RepeatUntilDone replays a base schedule (expanded by `repeats` per slot,
// the Section-4 transformation) in rounds under a stochastic model until
// every link has succeeded or maxRounds is exhausted. It returns the total
// number of slots consumed. This is how a non-fading schedule is deployed
// under Rayleigh fading: each round every link keeps an independent chance,
// so the expected number of rounds is O(1) per link and O(log n) for all.
func RepeatUntilDone(m *network.Matrix, base [][]int, beta float64, repeats, maxRounds int, model SuccessModel) (totalSlots int, done bool) {
	totalSlots, done, _ = RepeatUntilDoneCtx(context.Background(), m, base, beta, repeats, maxRounds, model)
	return totalSlots, done
}

// RepeatUntilDoneCtx is RepeatUntilDone with cooperative cancellation: ctx
// is polled once per replay round, and the slots consumed so far are
// returned with done == false and ctx.Err() when cancelled.
func RepeatUntilDoneCtx(ctx context.Context, m *network.Matrix, base [][]int, beta float64, repeats, maxRounds int, model SuccessModel) (totalSlots int, done bool, err error) {
	if repeats <= 0 {
		panic(fmt.Sprintf("latency: repeats = %d must be positive", repeats))
	}
	if maxRounds <= 0 {
		panic(fmt.Sprintf("latency: maxRounds = %d must be positive", maxRounds))
	}
	ctx, sp := obs.StartDetached(ctx, "latency.repeat_until_done")
	sp.SetAttr("model", model.Name())
	defer func() {
		sp.SetAttr("slots", totalSlots)
		sp.SetAttr("done", done)
		sp.End()
	}()
	expanded := transform.ExpandSchedule(base, repeats)
	served := make([]bool, m.N)
	needed := m.N
	for round := 0; round < maxRounds; round++ {
		if err := ctx.Err(); err != nil {
			return totalSlots, false, err
		}
		for _, slot := range expanded {
			// Only still-unserved links re-transmit; served ones are done.
			active := make([]bool, m.N)
			any := false
			for _, i := range slot {
				if !served[i] {
					active[i] = true
					any = true
				}
			}
			totalSlots++
			if !any {
				continue
			}
			for _, i := range model.Successes(m, active, beta) {
				if !served[i] {
					served[i] = true
					needed--
				}
			}
			if needed == 0 {
				return totalSlots, true, nil
			}
		}
	}
	return totalSlots, false, nil
}

// AlohaConfig parameterizes the distributed contention protocol.
type AlohaConfig struct {
	// Prob is the per-slot transmission probability of each unserved link.
	// The paper's Section 4 analyzes probabilities at most 1/2.
	Prob float64
	// MaxSlots aborts the run; 0 means 64·n slots.
	MaxSlots int
	// Repeats executes each randomized step this many times under a
	// stochastic model (the Section-4 transformation); use 1 for the
	// plain non-fading protocol and transform.AlohaRepeats for Rayleigh.
	Repeats int
}

// AlohaResult reports a contention-resolution run.
type AlohaResult struct {
	// Slots is the number of time slots consumed (counting repeats).
	Slots int
	// Done reports whether every link succeeded within the budget.
	Done bool
	// PerSlotSuccesses is the number of first-time successes per slot.
	PerSlotSuccesses []int
}

// Aloha runs the distributed protocol: in every slot, each unserved link
// transmits independently with cfg.Prob (its random draw held fixed across
// the cfg.Repeats executions of the step, which re-randomize only the
// fading); links that succeed stop transmitting. The same code serves both
// models through the SuccessModel interface.
func Aloha(m *network.Matrix, beta float64, cfg AlohaConfig, src *rng.Source, model SuccessModel) AlohaResult {
	res, _ := AlohaCtx(context.Background(), m, beta, cfg, src, model)
	return res
}

// AlohaCtx is Aloha with cooperative cancellation: ctx is polled once per
// randomized step, and the partial result (Done == false) is returned with
// ctx.Err() when cancelled.
func AlohaCtx(ctx context.Context, m *network.Matrix, beta float64, cfg AlohaConfig, src *rng.Source, model SuccessModel) (AlohaResult, error) {
	if cfg.Prob <= 0 || cfg.Prob > 1 {
		panic(fmt.Sprintf("latency: transmission probability %g outside (0,1]", cfg.Prob))
	}
	repeats := cfg.Repeats
	if repeats <= 0 {
		repeats = 1
	}
	maxSlots := cfg.MaxSlots
	if maxSlots <= 0 {
		maxSlots = 64 * m.N
	}
	ctx, sp := obs.StartDetached(ctx, "latency.aloha")
	sp.SetAttr("model", model.Name())
	res := AlohaResult{}
	defer func() {
		sp.SetAttr("slots", res.Slots)
		sp.SetAttr("done", res.Done)
		sp.End()
	}()
	served := make([]bool, m.N)
	needed := m.N
	active := make([]bool, m.N)
	for res.Slots < maxSlots && needed > 0 {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		// One randomized step: draw the transmitting set among unserved.
		any := false
		for i := range active {
			active[i] = !served[i] && src.Bernoulli(cfg.Prob)
			any = any || active[i]
		}
		for r := 0; r < repeats && res.Slots < maxSlots; r++ {
			res.Slots++
			if !any {
				res.PerSlotSuccesses = append(res.PerSlotSuccesses, 0)
				continue
			}
			newly := 0
			for _, i := range model.Successes(m, active, beta) {
				if !served[i] {
					served[i] = true
					active[i] = false // do not re-transmit in later repeats
					newly++
					needed--
				}
			}
			res.PerSlotSuccesses = append(res.PerSlotSuccesses, newly)
			if needed == 0 {
				break
			}
		}
	}
	res.Done = needed == 0
	return res, nil
}

// Path is a multi-hop route: an ordered list of link indices; hop h+1 may
// only be scheduled after hop h has succeeded (store-and-forward).
type Path []int

// MultiHop schedules a set of packets along their paths: in every slot the
// set of "ready" links (each packet's next un-traversed hop) contends via
// the given capacity function, the chosen feasible subset transmits, and
// successes advance their packets. It returns the number of slots until all
// packets arrive, or done=false when maxSlots runs out. This is the
// concatenation-of-single-hop-schedules construction the paper's Section 4
// extends to multi-hop scheduling.
func MultiHop(m *network.Matrix, beta float64, paths []Path, capFn CapacityFunc, maxSlots int, model SuccessModel) (slots int, done bool) {
	slots, done, _ = MultiHopCtx(context.Background(), m, beta, paths, capFn, maxSlots, model)
	return slots, done
}

// MultiHopCtx is MultiHop with cooperative cancellation: ctx is polled once
// per slot, and the slots consumed so far are returned with done == false
// and ctx.Err() when cancelled.
func MultiHopCtx(ctx context.Context, m *network.Matrix, beta float64, paths []Path, capFn CapacityFunc, maxSlots int, model SuccessModel) (slots int, done bool, err error) {
	if maxSlots <= 0 {
		maxSlots = 64 * m.N * (len(paths) + 1)
	}
	progress := make([]int, len(paths)) // next hop index per packet
	remaining := len(paths)
	for _, p := range paths {
		if len(p) == 0 {
			remaining--
		}
		for _, link := range p {
			if link < 0 || link >= m.N {
				panic(fmt.Sprintf("latency: path link %d out of range", link))
			}
		}
	}
	for slots = 0; slots < maxSlots && remaining > 0; slots++ {
		if err := ctx.Err(); err != nil {
			return slots, false, err
		}
		// Collect ready links (dedup: two packets may share a next hop).
		readySet := map[int]bool{}
		for k, p := range paths {
			if progress[k] < len(p) {
				readySet[p[progress[k]]] = true
			}
		}
		ready := make([]int, 0, len(readySet))
		for i := range readySet {
			ready = append(ready, i)
		}
		sort.Ints(ready) // deterministic candidate order for any capFn
		slot := capFn(m, beta, ready)
		if len(slot) == 0 {
			continue
		}
		active := make([]bool, m.N)
		for _, i := range slot {
			active[i] = true
		}
		succeeded := map[int]bool{}
		for _, i := range model.Successes(m, active, beta) {
			succeeded[i] = true
		}
		for k, p := range paths {
			if progress[k] < len(p) && succeeded[p[progress[k]]] {
				progress[k]++
				if progress[k] == len(p) {
					remaining--
				}
			}
		}
	}
	return slots, remaining == 0, nil
}
