package utility

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBinary(t *testing.T) {
	u := Binary{Beta: 2.5}
	if u.Value(2.5) != 1 || u.Value(100) != 1 {
		t.Fatal("binary should be 1 at and above β")
	}
	if u.Value(2.4999) != 0 || u.Value(0) != 0 {
		t.Fatal("binary should be 0 below β")
	}
	if u.Value(math.Inf(1)) != 1 {
		t.Fatal("binary at +Inf should be 1")
	}
}

func TestWeighted(t *testing.T) {
	u := Weighted{Beta: 1, W: 3.5}
	if u.Value(1) != 3.5 || u.Value(0.5) != 0 {
		t.Fatal("weighted threshold misbehaves")
	}
}

func TestShannon(t *testing.T) {
	u := Shannon{}
	if u.Value(0) != 0 {
		t.Fatalf("Shannon(0) = %g", u.Value(0))
	}
	if got, want := u.Value(1), math.Log(2); math.Abs(got-want) > 1e-15 {
		t.Fatalf("Shannon(1) = %g, want %g", got, want)
	}
	if !math.IsInf(u.Value(math.Inf(1)), 1) {
		t.Fatal("Shannon(+Inf) should be +Inf")
	}
	// log1p accuracy for tiny SINRs.
	if got := u.Value(1e-12); math.Abs(got-1e-12) > 1e-24 {
		t.Fatalf("Shannon(1e-12) = %g", got)
	}
}

func TestCappedShannon(t *testing.T) {
	u := CappedShannon{Cap: 7}
	if got, want := u.Value(100), math.Log1p(7); got != want {
		t.Fatalf("capped value = %g, want %g", got, want)
	}
	if got, want := u.Value(3), math.Log1p(3); got != want {
		t.Fatalf("uncapped region = %g, want %g", got, want)
	}
}

func TestFuncOf(t *testing.T) {
	u := FuncOf{F: func(x float64) float64 { return 2 * x }, Label: "double"}
	if u.Value(3) != 6 || u.Name() != "double" {
		t.Fatal("FuncOf misbehaves")
	}
}

func TestNames(t *testing.T) {
	for _, u := range []Func{Binary{Beta: 1}, Weighted{Beta: 1, W: 2}, Shannon{}, CappedShannon{Cap: 3}} {
		if u.Name() == "" {
			t.Fatalf("%T has empty name", u)
		}
	}
}

func TestSumSingleUtilityBroadcast(t *testing.T) {
	got := Sum(Uniform(Binary{Beta: 1}), []float64{0.5, 1, 2, 0})
	if got != 2 {
		t.Fatalf("Sum = %g, want 2", got)
	}
}

func TestSumPerLink(t *testing.T) {
	us := []Func{Binary{Beta: 1}, Weighted{Beta: 1, W: 5}}
	if got := Sum(us, []float64{2, 2}); got != 6 {
		t.Fatalf("Sum = %g, want 6", got)
	}
}

func TestSumPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Sum(nil, []float64{1}) },
		func() { Sum([]Func{Shannon{}, Shannon{}}, []float64{1, 2, 3}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestCheckValidAcceptsPaperFamilies(t *testing.T) {
	// Binary utilities with β ≤ S̄ii/(c·ν) — the paper's first example.
	sii, nu := 1.0, 1e-3
	c := 2.0
	beta := sii / (c * nu) // exactly at the allowed maximum
	if rep := CheckValid(Binary{Beta: beta}, sii, nu, c); !rep.Valid {
		t.Fatalf("binary at threshold rejected: %s", rep.Reason)
	}
	if rep := CheckValid(Weighted{Beta: beta / 2, W: 10}, sii, nu, c); !rep.Valid {
		t.Fatalf("weighted rejected: %s", rep.Reason)
	}
	if rep := CheckValid(Shannon{}, sii, nu, c); !rep.Valid {
		t.Fatalf("Shannon rejected: %s", rep.Reason)
	}
	if rep := CheckValid(CappedShannon{Cap: 10}, sii, nu, c); !rep.Valid {
		t.Fatalf("capped Shannon rejected: %s", rep.Reason)
	}
}

func TestCheckValidRejectsBinaryAboveThreshold(t *testing.T) {
	// A binary utility whose jump sits far above S̄ii/(c·ν) is not
	// non-decreasing-and-concave on the interval: the step is a convex kink.
	sii, nu, c := 1.0, 1e-3, 2.0
	beta := 10 * sii / (c * nu)
	rep := CheckValid(Binary{Beta: beta}, sii, nu, c)
	if rep.Valid {
		t.Fatal("binary with jump inside the interval accepted")
	}
}

func TestCheckValidRejectsDecreasing(t *testing.T) {
	u := FuncOf{F: func(x float64) float64 { return 1 / (1 + x) }, Label: "decreasing"}
	if rep := CheckValid(u, 1, 1e-3, 2); rep.Valid {
		t.Fatal("decreasing function accepted")
	}
}

func TestCheckValidRejectsConvex(t *testing.T) {
	u := FuncOf{F: func(x float64) float64 { return x * x }, Label: "convex"}
	if rep := CheckValid(u, 1, 1e-3, 2); rep.Valid {
		t.Fatal("convex function accepted")
	}
}

func TestCheckValidRejectsNegative(t *testing.T) {
	u := FuncOf{F: func(x float64) float64 { return math.Log(x) }, Label: "log"} // negative for x<1
	rep := CheckValid(u, 1, 100, 2)                                              // threshold far below 1
	if rep.Valid {
		t.Fatal("negative-valued function accepted")
	}
}

func TestCheckValidZeroNoise(t *testing.T) {
	// With ν = 0 the interval is all of (0,∞); Shannon passes, x² fails.
	if rep := CheckValid(Shannon{}, 1, 0, 2); !rep.Valid {
		t.Fatalf("Shannon with ν=0 rejected: %s", rep.Reason)
	}
	if rep := CheckValid(FuncOf{F: func(x float64) float64 { return x * x }, Label: "sq"}, 1, 0, 2); rep.Valid {
		t.Fatal("x² with ν=0 accepted")
	}
}

func TestCheckValidRejectsBadParameters(t *testing.T) {
	if rep := CheckValid(Shannon{}, 1, 1, 1); rep.Valid {
		t.Fatal("c = 1 accepted")
	}
	if rep := CheckValid(Shannon{}, 0, 1, 2); rep.Valid {
		t.Fatal("sii = 0 accepted")
	}
}

func TestCheckValidThresholdValue(t *testing.T) {
	rep := CheckValid(Shannon{}, 4, 2, 2)
	if got, want := rep.Threshold, 1.0; got != want {
		t.Fatalf("Threshold = %g, want %g", got, want)
	}
}

func TestBinaryValidFor(t *testing.T) {
	// Paper Figure 1: β=2.5, p=2, d∈[20,40], α=2.2, ν=4e-7. Weakest link:
	// sii = 2/40^2.2 ≈ 6.1e-4, sii/(β·ν) ≈ 610 ≫ 1 — valid.
	sii := 2 / math.Pow(40, 2.2)
	if !BinaryValidFor(2.5, sii, 4e-7) {
		t.Fatal("Figure-1 parameters should be interference-dominated")
	}
	// Huge noise: invalid.
	if BinaryValidFor(2.5, sii, 1) {
		t.Fatal("noise-dominated case should be rejected")
	}
	// ν = 0 always valid (Figure 2).
	if !BinaryValidFor(0.5, 1e-9, 0) {
		t.Fatal("ν = 0 must always be valid")
	}
	if !BinaryValidFor(0, sii, 1) {
		t.Fatal("β = 0 must always be valid")
	}
}

// Property: all paper families are monotone non-decreasing in the SINR.
func TestQuickMonotone(t *testing.T) {
	us := []Func{Binary{Beta: 2.5}, Weighted{Beta: 1, W: 4}, Shannon{}, CappedShannon{Cap: 5}}
	f := func(aRaw, bRaw float64) bool {
		if math.IsNaN(aRaw) || math.IsNaN(bRaw) {
			return true
		}
		a := math.Abs(math.Mod(aRaw, 1e6))
		b := math.Abs(math.Mod(bRaw, 1e6))
		if a > b {
			a, b = b, a
		}
		for _, u := range us {
			if u.Value(a) > u.Value(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: utilities are non-negative on all non-negative SINRs.
func TestQuickNonNegative(t *testing.T) {
	us := []Func{Binary{Beta: 2.5}, Weighted{Beta: 1, W: 4}, Shannon{}, CappedShannon{Cap: 5}}
	f := func(xRaw float64) bool {
		if math.IsNaN(xRaw) {
			return true
		}
		x := math.Abs(xRaw)
		for _, u := range us {
			if u.Value(x) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkShannonValue(b *testing.B) {
	u := Shannon{}
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += u.Value(float64(i % 100))
	}
	_ = sink
}

func BenchmarkCheckValid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		CheckValid(Shannon{}, 1, 1e-3, 2)
	}
}
