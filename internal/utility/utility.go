// Package utility implements the valid utility functions of the paper's
// Section 2: per-link functions u_i mapping an achieved SINR to a value, so
// that the capacity objective becomes Σ_i u_i(γ_i).
//
// Definition 1 restricts attention to functions that are non-decreasing and
// concave from some point S̄(i,i)/(c·ν) on, with c > 1 — exactly the
// condition that keeps the comparison between the two models fair when
// noise is present. The three families the paper highlights are provided:
//
//   - Binary: u(γ) = 1 if γ ≥ β, else 0 (standard capacity maximization),
//   - Weighted: u(γ) = w if γ ≥ β, else 0 (link-weighted capacity),
//   - Shannon: u(γ) = log(1+γ) (total Shannon capacity).
//
// CheckValid verifies Definition 1 numerically for arbitrary functions, so
// user-supplied utilities can be validated before being fed to the
// transformation machinery, whose guarantees assume validity.
package utility

import (
	"fmt"
	"math"
)

// Func is a per-link utility: a non-negative function of the achieved SINR.
type Func interface {
	// Value returns u(sinr). Implementations must accept any sinr ≥ 0 as
	// well as +Inf (a link with no interference and no noise).
	Value(sinr float64) float64
	// Name identifies the utility in logs and experiment output.
	Name() string
}

// Binary is the threshold utility: 1 exactly when the SINR reaches Beta.
// This is the success indicator of standard capacity maximization.
type Binary struct{ Beta float64 }

// Value implements Func.
func (b Binary) Value(s float64) float64 {
	if s >= b.Beta {
		return 1
	}
	return 0
}

// Name implements Func.
func (b Binary) Name() string { return fmt.Sprintf("binary(β=%g)", b.Beta) }

// Weighted is the link-weighted threshold utility: W when the SINR reaches
// Beta, else 0.
type Weighted struct {
	Beta float64
	W    float64
}

// Value implements Func.
func (w Weighted) Value(s float64) float64 {
	if s >= w.Beta {
		return w.W
	}
	return 0
}

// Name implements Func.
func (w Weighted) Name() string { return fmt.Sprintf("weighted(β=%g,w=%g)", w.Beta, w.W) }

// Shannon is u(γ) = log(1+γ), the Shannon capacity of a unit-bandwidth
// channel. It is non-decreasing and concave on all of [0,∞), hence valid
// for every noise level.
type Shannon struct{}

// Value implements Func.
func (Shannon) Value(s float64) float64 {
	if math.IsInf(s, 1) {
		return math.Inf(1)
	}
	return math.Log1p(s)
}

// Name implements Func.
func (Shannon) Name() string { return "shannon" }

// CappedShannon is log(1+γ) truncated at the rate achieved at γ = Cap,
// modeling a maximum modulation rate. Still valid: non-decreasing and
// concave everywhere.
type CappedShannon struct{ Cap float64 }

// Value implements Func.
func (c CappedShannon) Value(s float64) float64 {
	if s > c.Cap {
		s = c.Cap
	}
	return math.Log1p(s)
}

// Name implements Func.
func (c CappedShannon) Name() string { return fmt.Sprintf("cappedShannon(γ≤%g)", c.Cap) }

// FuncOf adapts a plain function to a Func.
type FuncOf struct {
	F     func(float64) float64
	Label string
}

// Value implements Func.
func (f FuncOf) Value(s float64) float64 { return f.F(s) }

// Name implements Func.
func (f FuncOf) Name() string { return f.Label }

// Sum evaluates Σ_i u_i(sinrs[i]) for per-link utilities us. If us has
// length 1 the single utility applies to every link; otherwise it must have
// one entry per SINR.
func Sum(us []Func, sinrs []float64) float64 {
	if len(us) == 0 {
		panic("utility: Sum with no utility functions")
	}
	if len(us) != 1 && len(us) != len(sinrs) {
		panic(fmt.Sprintf("utility: %d utilities for %d links", len(us), len(sinrs)))
	}
	total := 0.0
	for i, s := range sinrs {
		u := us[0]
		if len(us) > 1 {
			u = us[i]
		}
		total += u.Value(s)
	}
	return total
}

// Uniform returns a slice aliasing one utility for all links, for use
// with Sum.
func Uniform(u Func) []Func { return []Func{u} }

// Report is the result of a CheckValid run.
type Report struct {
	Valid bool
	// Threshold is S̄(i,i)/(c·ν), the point from which the function must be
	// non-decreasing and concave. Zero if ν = 0 (every point qualifies).
	Threshold float64
	// Reason explains a failed check.
	Reason string
}

// CheckValid numerically verifies Definition 1 for utility u on a link with
// own expected strength sii under noise nu, with constant c > 1: u must be
// non-negative everywhere and non-decreasing and concave on
// [sii/(c·nu), ∞). The check samples the interval geometrically up to a
// large multiple of the threshold; it can produce false positives only for
// adversarial functions that misbehave strictly between sample points,
// which is acceptable for its role as an input-validation guard.
func CheckValid(u Func, sii, nu, c float64) Report {
	if c <= 1 {
		return Report{Reason: fmt.Sprintf("constant c = %g must exceed 1", c)}
	}
	if sii <= 0 {
		return Report{Reason: fmt.Sprintf("own signal strength %g must be positive", sii)}
	}
	var threshold float64
	if nu > 0 {
		threshold = sii / (c * nu)
	}
	// Sample geometrically from the threshold (or a small positive base)
	// across ten orders of magnitude.
	base := threshold
	if base == 0 {
		base = 1e-6
	}
	const steps = 400
	xs := make([]float64, steps)
	for k := range xs {
		xs[k] = base * math.Pow(10, 10*float64(k)/float64(steps-1))
	}
	vals := make([]float64, steps)
	for k, x := range xs {
		v := u.Value(x)
		if v < 0 || math.IsNaN(v) {
			return Report{Threshold: threshold, Reason: fmt.Sprintf("u(%g) = %g is not a non-negative value", x, v)}
		}
		vals[k] = v
	}
	const eps = 1e-9
	for k := 1; k < steps; k++ {
		if vals[k] < vals[k-1]-eps*(1+math.Abs(vals[k-1])) {
			return Report{Threshold: threshold,
				Reason: fmt.Sprintf("decreasing on [%g,%g]: u drops from %g to %g", xs[k-1], xs[k], vals[k-1], vals[k])}
		}
	}
	// Concavity via chord slopes: for x1 < x2 < x3, slope(x1,x2) ≥ slope(x2,x3).
	for k := 2; k < steps; k++ {
		s1 := (vals[k-1] - vals[k-2]) / (xs[k-1] - xs[k-2])
		s2 := (vals[k] - vals[k-1]) / (xs[k] - xs[k-1])
		if s2 > s1+eps*(1+math.Abs(s1)) {
			return Report{Threshold: threshold,
				Reason: fmt.Sprintf("convex kink near x = %g (slopes %g then %g)", xs[k-1], s1, s2)}
		}
	}
	return Report{Valid: true, Threshold: threshold}
}

// BinaryValidFor reports whether the binary utility at threshold beta is a
// valid utility function for a link with own strength sii under noise nu,
// i.e. whether there exists c > 1 with beta ≤ sii/(c·nu) (the paper's
// condition β ≤ min_i S̄(i,i)/(c·ν)). With ν = 0 every β qualifies.
func BinaryValidFor(beta, sii, nu float64) bool {
	if nu == 0 {
		return true
	}
	if beta <= 0 {
		return true
	}
	// Need c > 1 with c ≤ sii/(beta·nu); possible iff sii/(beta·nu) > 1.
	return sii/(beta*nu) > 1
}
