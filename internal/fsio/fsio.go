// Package fsio provides crash-safe file writes for everything the
// reproduction persists — results tables, benchmark reports, golden
// manifests, traces, checkpoints. The invariant is write-temp + fsync +
// rename: a reader of the destination path sees either the previous
// complete file or the new complete file, never a torn mix, no matter
// where the writer crashes.
//
// The package also hosts the faults.SiteFileWrite injection site: a
// "partial" fault writes only a prefix of the temp file and fails before
// the rename, which is exactly the crash the atomic protocol defends
// against — the destination must be untouched and the temp file cleaned up.
package fsio

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"rayfade/internal/faults"
)

// WriteFileAtomic writes data to path atomically: the bytes land in a
// temporary file in the same directory (same filesystem, so rename is
// atomic), are fsynced, and only then renamed over path. On any error the
// destination is left as it was and the temp file is removed.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("fsio: create temp for %s: %w", path, err)
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}

	if err := faults.Inject(faults.SiteFileWrite); err != nil {
		cleanup()
		return fmt.Errorf("fsio: write %s: %w", path, err)
	}
	if k, fail := faults.PartialWrite(faults.SiteFileWrite, len(data)); fail {
		// Simulate a crash mid-write: flush a prefix, then abandon the
		// temp file without renaming. The destination must stay intact.
		tmp.Write(data[:k])
		tmp.Sync()
		cleanup()
		return fmt.Errorf("fsio: write %s: partial write of %d/%d bytes: %w",
			path, k, len(data), faults.ErrInjected)
	}

	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return fmt.Errorf("fsio: write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("fsio: sync %s: %w", path, err)
	}
	if err := tmp.Chmod(perm); err != nil {
		cleanup()
		return fmt.Errorf("fsio: chmod %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("fsio: close %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("fsio: rename %s: %w", path, err)
	}
	return syncDir(dir)
}

// WriteAtomic renders via the callback into a buffer and writes the result
// atomically. Convenient for the io.Writer-shaped renderers (CSV tables,
// trace exporters) that should not stream straight into the destination.
func WriteAtomic(path string, perm os.FileMode, render func(w io.Writer) error) error {
	var buf bytes.Buffer
	if err := render(&buf); err != nil {
		return err
	}
	return WriteFileAtomic(path, buf.Bytes(), perm)
}

// syncDir fsyncs a directory so the rename itself is durable. Some
// filesystems don't support fsync on directories; that is not worth
// failing the write over, so errors other than open failures are ignored.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	d.Sync()
	return d.Close()
}
