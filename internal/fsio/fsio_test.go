package fsio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rayfade/internal/faults"
)

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileAtomic(path, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("content = %q", got)
	}
	// Overwrite path: same call replaces the file completely.
	if err := WriteFileAtomic(path, []byte("second version"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "second version" {
		t.Fatalf("content after overwrite = %q", got)
	}
	assertNoTempLitter(t, dir)
}

func TestWriteAtomicRender(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "table.csv")
	err := WriteAtomic(path, 0o644, func(w io.Writer) error {
		_, err := io.WriteString(w, "a,b\n1,2\n")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "a,b\n1,2\n" {
		t.Fatalf("content = %q", got)
	}
}

func TestWriteAtomicRenderErrorLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "never.csv")
	wantErr := errors.New("render broke")
	err := WriteAtomic(path, 0o644, func(w io.Writer) error { return wantErr })
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("destination should not exist after render error")
	}
	assertNoTempLitter(t, dir)
}

func TestPartialWriteFaultPreservesDestination(t *testing.T) {
	inj, err := faults.Parse("fsio.write=partial:1:0.5")
	if err != nil {
		t.Fatal(err)
	}
	faults.SetDefault(inj)
	defer faults.SetDefault(nil)

	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.json")
	// Seed the destination without faults armed for this write by using
	// direct os.WriteFile (the property under test is WriteFileAtomic).
	if err := os.WriteFile(path, []byte("original intact contents"), 0o644); err != nil {
		t.Fatal(err)
	}

	werr := WriteFileAtomic(path, []byte("replacement that will be torn"), 0o644)
	if !errors.Is(werr, faults.ErrInjected) {
		t.Fatalf("want injected error, got %v", werr)
	}
	if !strings.Contains(werr.Error(), "partial write") {
		t.Fatalf("error should describe the partial write: %v", werr)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "original intact contents" {
		t.Fatalf("destination corrupted by failed write: %q", got)
	}
	assertNoTempLitter(t, dir)

	if got := inj.Snapshot()["fsio.write/partial"]; got != 1 {
		t.Fatalf("fired = %d, want 1", got)
	}
}

func TestErrorFaultPreservesDestination(t *testing.T) {
	inj, err := faults.Parse("fsio.write=error:1")
	if err != nil {
		t.Fatal(err)
	}
	faults.SetDefault(inj)
	defer faults.SetDefault(nil)

	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.json")
	if err := os.WriteFile(path, []byte("before"), 0o644); err != nil {
		t.Fatal(err)
	}
	if werr := WriteFileAtomic(path, []byte("after"), 0o644); !errors.Is(werr, faults.ErrInjected) {
		t.Fatalf("want injected error, got %v", werr)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "before" {
		t.Fatalf("destination corrupted: %q", got)
	}
	assertNoTempLitter(t, dir)
}

func TestMissingDirectoryFails(t *testing.T) {
	err := WriteFileAtomic(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x"), 0o644)
	if err == nil {
		t.Fatal("want error for missing directory")
	}
}

func assertNoTempLitter(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}
