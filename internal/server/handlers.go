package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"rayfade/internal/netio"
	"rayfade/internal/network"
)

// httpError carries the status code a request-shaped failure should map to,
// so the generic handler pipeline needs no per-endpoint error tables.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func unprocessable(format string, args ...any) error {
	return &httpError{status: http.StatusUnprocessableEntity, msg: fmt.Sprintf(format, args...)}
}

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

// decodeJSON reads and decodes the request body into dst, rejecting unknown
// fields (the same typo protection netio applies to topology files) and
// trailing garbage. Oversized bodies surface as 413 via MaxBytesReader.
func decodeJSON(w http.ResponseWriter, r *http.Request, maxBytes int64, dst any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return &httpError{status: http.StatusRequestEntityTooLarge,
				msg: fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit)}
		}
		return badRequest("decode request: %v", err)
	}
	if dec.More() {
		return badRequest("trailing data after JSON document")
	}
	return nil
}

// parseTopology decodes a netio-format topology embedded in a request and
// returns the validated network plus its canonical serialization (netio.Save
// output), which is what cache keys hash: two topologies that differ only in
// whitespace or field order key identically.
func parseTopology(raw json.RawMessage, maxLinks int) (*network.Network, []byte, error) {
	if len(raw) == 0 {
		return nil, nil, badRequest("missing \"network\" field (netio topology document)")
	}
	net, err := netio.Load(bytes.NewReader(raw))
	if err != nil {
		return nil, nil, badRequest("topology: %v", err)
	}
	if maxLinks > 0 && net.N() > maxLinks {
		return nil, nil, &httpError{status: http.StatusRequestEntityTooLarge,
			msg: fmt.Sprintf("topology has %d links, limit is %d", net.N(), maxLinks)}
	}
	var canon bytes.Buffer
	if err := netio.Save(&canon, net); err != nil {
		return nil, nil, badRequest("topology: %v", err)
	}
	return net, canon.Bytes(), nil
}

// resolveTopology produces the parsed network and canonical bytes for one
// compute request, from either an inline netio document or a session ref
// registered via POST /v1/topology. The canonical bytes are identical in
// both cases (the session store keeps netio.Save output), so cache keys —
// and therefore response bytes — do not depend on which form the client
// chose.
func (s *Server) resolveTopology(raw json.RawMessage, ref string) (*network.Network, []byte, error) {
	if ref == "" {
		return parseTopology(raw, s.cfg.MaxLinks)
	}
	if len(raw) != 0 {
		return nil, nil, badRequest("provide either \"network\" or \"topology_ref\", not both")
	}
	net, canon, ok := s.sessions.Get(ref)
	if !ok {
		return nil, nil, &httpError{status: http.StatusNotFound,
			msg: fmt.Sprintf("unknown topology_ref %q (never uploaded, or evicted from the session store — POST /v1/topology to (re)register)", ref)}
	}
	return net, canon, nil
}

// requestKey builds the cache key for one request: a hash over the endpoint
// name, the defaults-applied parameter struct (marshaled, so field order is
// fixed), and the canonical topology bytes. Per-request operational knobs
// that do not affect the computed result (the deadline) must not appear in
// params.
func requestKey(endpoint string, params any, topology []byte) string {
	pb, err := json.Marshal(params)
	if err != nil {
		// Params are plain structs of scalars; this cannot fail at runtime.
		panic(fmt.Sprintf("server: marshal cache-key params: %v", err))
	}
	h := sha256.New()
	io.WriteString(h, endpoint)
	h.Write([]byte{0})
	h.Write(pb)
	h.Write([]byte{0})
	h.Write(topology)
	return hex.EncodeToString(h.Sum(nil))
}

// ---- request / response schemas -----------------------------------------

// scheduleParams are the defaults-applied knobs of /v1/schedule (also the
// cache-key payload).
type scheduleParams struct {
	Algorithm string  `json:"algorithm"`
	Beta      float64 `json:"beta"`
}

type scheduleRequest struct {
	Network     json.RawMessage `json:"network,omitempty"`
	TopologyRef string          `json:"topology_ref,omitempty"`
	Algorithm   string          `json:"algorithm,omitempty"`
	Beta        float64         `json:"beta,omitempty"`
	TimeoutMS   int64           `json:"timeout_ms,omitempty"`
}

// scheduleResponse reports a single-slot capacity solution and its fading
// transfer guarantees (Lemma 2 / Theorem 1).
type scheduleResponse struct {
	Algorithm string  `json:"algorithm"`
	Links     int     `json:"links"`
	Beta      float64 `json:"beta"`
	Set       []int   `json:"set"`
	Size      int     `json:"size"`
	// Value is the non-fading value of the set: its size for unweighted
	// algorithms, the selected weight sum for "weighted".
	Value float64 `json:"value"`
	// Powers certify power-control feasibility (aligned with Set); only
	// set by algorithm "powercontrol".
	Powers []float64 `json:"powers,omitempty"`
	// Lemma2Floor is Value/e, the transfer guarantee.
	Lemma2Floor float64 `json:"lemma2_floor"`
	// ExpectedRayleigh is the exact Theorem-1 expectation when exactly Set
	// transmits under Rayleigh fading.
	ExpectedRayleigh float64 `json:"expected_rayleigh_successes"`
}

type latencyParams struct {
	Scheduler string  `json:"scheduler"`
	Model     string  `json:"model"`
	Beta      float64 `json:"beta"`
	Prob      float64 `json:"prob"`
	MaxSlots  int     `json:"max_slots"`
	Seed      uint64  `json:"seed"`
}

type latencyRequest struct {
	Network     json.RawMessage `json:"network,omitempty"`
	TopologyRef string          `json:"topology_ref,omitempty"`
	Scheduler   string          `json:"scheduler,omitempty"`
	Model       string          `json:"model,omitempty"`
	Beta        float64         `json:"beta,omitempty"`
	Prob        float64         `json:"prob,omitempty"`
	MaxSlots    int             `json:"max_slots,omitempty"`
	Seed        uint64          `json:"seed,omitempty"`
	TimeoutMS   int64           `json:"timeout_ms,omitempty"`
}

// latencyResponse reports a full-coverage schedule (every link served).
type latencyResponse struct {
	Scheduler string  `json:"scheduler"`
	Model     string  `json:"model"`
	Links     int     `json:"links"`
	Beta      float64 `json:"beta"`
	Seed      uint64  `json:"seed"`
	// Slots is the number of time slots consumed until every link
	// succeeded (for model "rayleigh", counting the 4x repetition).
	Slots int  `json:"slots"`
	Done  bool `json:"done"`
	// Schedule is the non-fading repeated-capacity schedule (scheduler
	// "repeated" only): one feasible link set per base slot.
	Schedule [][]int `json:"schedule,omitempty"`
	// Repeats is the per-slot repetition factor applied under Rayleigh
	// fading (the Section-4 transformation), 1 otherwise.
	Repeats int `json:"repeats"`
}

type reduceParams struct {
	Beta    float64 `json:"beta"`
	Prob    float64 `json:"prob"`
	Samples int     `json:"samples"`
	Seed    uint64  `json:"seed"`
}

type reduceRequest struct {
	Network     json.RawMessage `json:"network,omitempty"`
	TopologyRef string          `json:"topology_ref,omitempty"`
	Beta        float64         `json:"beta,omitempty"`
	Prob        float64         `json:"prob,omitempty"`
	Samples     int             `json:"samples,omitempty"`
	Seed        uint64          `json:"seed,omitempty"`
	TimeoutMS   int64           `json:"timeout_ms,omitempty"`
}

// reduceStep is one level of the Algorithm-1 simulation with its estimated
// single-slot non-fading value.
type reduceStep struct {
	Level       int     `json:"level"`
	B           float64 `json:"b"`
	Repeats     int     `json:"repeats"`
	ValueMean   float64 `json:"value_mean"`
	ValueStderr float64 `json:"value_stderr"`
}

// reduceResponse reports the non-fading→Rayleigh reduction (Algorithm 1 /
// Theorem 2) applied to a uniform probability assignment.
type reduceResponse struct {
	Links   int     `json:"links"`
	Beta    float64 `json:"beta"`
	Prob    float64 `json:"prob"`
	Seed    uint64  `json:"seed"`
	Levels  int     `json:"levels"`
	LogStar int     `json:"logstar"`
	// TotalSlots is the Θ(log* n) slot count of the full simulation.
	TotalSlots int          `json:"total_slots"`
	Steps      []reduceStep `json:"steps"`
	BestLevel  int          `json:"best_level"`
	BestValue  float64      `json:"best_value"`
	// RayleighExact is E[successes] under Rayleigh fading at the requested
	// probability (Theorem 1, closed form).
	RayleighExact float64 `json:"rayleigh_exact"`
	// Ratio is RayleighExact / BestValue, the empirical Theorem-2 factor
	// (0 when the best step value is 0).
	Ratio float64 `json:"ratio"`
}

type estimateParams struct {
	Beta    float64 `json:"beta"`
	Prob    float64 `json:"prob"`
	Samples int     `json:"samples"`
	Seed    uint64  `json:"seed"`
}

type estimateRequest struct {
	Network     json.RawMessage `json:"network,omitempty"`
	TopologyRef string          `json:"topology_ref,omitempty"`
	Beta        float64         `json:"beta,omitempty"`
	Prob        float64         `json:"prob,omitempty"`
	Samples     int             `json:"samples,omitempty"`
	Seed        uint64          `json:"seed,omitempty"`
	TimeoutMS   int64           `json:"timeout_ms,omitempty"`
}

// estimateResponse reports a Monte-Carlo estimate of the expected Rayleigh
// success count next to the Theorem-1 closed form it converges to.
type estimateResponse struct {
	Links   int     `json:"links"`
	Beta    float64 `json:"beta"`
	Prob    float64 `json:"prob"`
	Seed    uint64  `json:"seed"`
	Samples int     `json:"samples"`
	// Mean and Stderr are the Monte-Carlo estimate of E[successes].
	Mean   float64 `json:"mean"`
	Stderr float64 `json:"stderr"`
	// Exact is Σ_i Q_i(q,β), the closed-form expectation.
	Exact float64 `json:"exact"`
}

// topologyResponse is the POST /v1/topology body: the content-derived
// session handle compute requests pass as topology_ref.
type topologyResponse struct {
	TopologyRef string `json:"topology_ref"`
	Links       int    `json:"links"`
	// Created is false when the topology was already registered (the upload
	// only refreshed its LRU recency).
	Created bool `json:"created"`
}

// healthResponse is the /healthz body: liveness plus the worker identity a
// cluster coordinator needs — which process it is talking to, how wide it is,
// and how much shard work it is carrying.
type healthResponse struct {
	Status          string `json:"status"`
	Version         string `json:"version"`
	Instance        string `json:"instance"`
	GoMaxProcs      int    `json:"gomaxprocs"`
	ShardsInflight  int64  `json:"shards_inflight"`
	ShardsCompleted int64  `json:"shards_completed"`
}
