package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rayfade/internal/obs"
)

// postTraced posts body to path with an X-Trace-Context header naming
// traceID and parentID, returning the response and its body.
func postTraced(t *testing.T, ts *httptest.Server, path string, body []byte, traceID string, parentID uint64) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.HeaderTraceContext, obs.TraceContext{TraceID: traceID, ParentID: parentID}.String())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// fetchTrace GETs /v1/trace/{id} and decodes the bundle when the status is
// 200.
func fetchTrace(t *testing.T, ts *httptest.Server, id string) (int, obs.TraceBundle) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/trace/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b obs.TraceBundle
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&b); err != nil {
			t.Fatalf("bad bundle JSON: %v", err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode, b
}

// TestTraceCollectionAndFetch: a request carrying X-Trace-Context has its
// spans collected into a per-trace ring — keyed by trace ID, remote-parented
// under the coordinator span from the header — and served back by
// GET /v1/trace/{id}. The server's own tracer must NOT receive those spans:
// cluster traces stay per-run, /debug/obs shows only local traffic.
func TestTraceCollectionAndFetch(t *testing.T) {
	tr := obs.NewTracer(0)
	s, ts := newTestServer(t, Config{Tracer: tr})
	topo := testTopology(t, 10, 1)
	const traceID = "4b8bc3c7d5db6fea"
	const parentID = uint64(77)

	resp, body := postTraced(t, ts, "/v1/schedule", reqBody(t, topo, nil), traceID, parentID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced request status %d: %s", resp.StatusCode, body)
	}

	status, b := fetchTrace(t, ts, traceID)
	if status != http.StatusOK {
		t.Fatalf("trace fetch status %d", status)
	}
	if b.TraceID != traceID || b.Instance != s.instance || b.EpochUnixNano == 0 {
		t.Fatalf("bundle identity wrong: %+v", b)
	}
	var reqSpan *obs.SpanRecord
	for i := range b.Spans {
		if b.Spans[i].Name == "http./v1/schedule" {
			reqSpan = &b.Spans[i]
		}
	}
	if reqSpan == nil {
		t.Fatalf("request span missing from bundle: %+v", b.Spans)
	}
	if reqSpan.Remote != parentID {
		t.Fatalf("remote parent = %d, want %d", reqSpan.Remote, parentID)
	}
	attrs := map[string]any{}
	for _, a := range reqSpan.Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["trace_id"] != traceID {
		t.Fatalf("trace_id attr = %v", attrs["trace_id"])
	}
	// The scheduler's own spans must ride along in the same bundle, nested
	// under the request span — ctx propagation through the pool holds for
	// per-trace collectors exactly as for the server tracer.
	var algNested bool
	for _, sp := range b.Spans {
		if sp.Name == "capacity.greedy_affectance" && sp.Parent == reqSpan.ID {
			algNested = true
		}
	}
	if !algNested {
		t.Fatalf("scheduler span missing or not under request span: %+v", b.Spans)
	}
	for _, sp := range tr.Snapshot() {
		if sp.Name == "http./v1/schedule" {
			t.Fatal("traced request leaked into the server tracer")
		}
	}
	// Fetching snapshots, it does not consume: a second fetch sees the spans.
	if status, b2 := fetchTrace(t, ts, traceID); status != http.StatusOK || len(b2.Spans) != len(b.Spans) {
		t.Fatalf("second fetch status=%d spans=%d, want %d", status, len(b2.Spans), len(b.Spans))
	}
}

// TestTraceStoreEviction: the per-trace store is a bounded LRU over trace
// IDs and exports its occupancy as a gauge.
func TestTraceStoreEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxTraces: 2})
	topo := testTopology(t, 10, 1)
	for _, id := range []string{"aaa0", "bbb1", "ccc2"} {
		if resp, body := postTraced(t, ts, "/v1/schedule", reqBody(t, topo, nil), id, 1); resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", id, resp.StatusCode, body)
		}
	}
	if status, _ := fetchTrace(t, ts, "aaa0"); status != http.StatusNotFound {
		t.Fatalf("oldest trace not evicted: status %d", status)
	}
	for _, id := range []string{"bbb1", "ccc2"} {
		if status, b := fetchTrace(t, ts, id); status != http.StatusOK || len(b.Spans) == 0 {
			t.Fatalf("%s: status=%d spans=%d", id, status, len(b.Spans))
		}
	}
	var sb strings.Builder
	s.metrics.WriteTo(&sb)
	if !strings.Contains(sb.String(), "rayschedd_traces_retained 2") {
		t.Fatalf("retained-traces gauge wrong:\n%s", sb.String())
	}
}

// TestTraceDisabledAndErrors: MaxTraces < 0 turns collection off — traced
// requests still work, the fetch endpoint answers 503. On an enabled server
// an unknown ID is 404 and an oversized one 400.
func TestTraceDisabledAndErrors(t *testing.T) {
	_, off := newTestServer(t, Config{MaxTraces: -1})
	topo := testTopology(t, 10, 1)
	if resp, body := postTraced(t, off, "/v1/schedule", reqBody(t, topo, nil), "abc", 1); resp.StatusCode != http.StatusOK {
		t.Fatalf("traced request with collection off: status %d: %s", resp.StatusCode, body)
	}
	if status, _ := fetchTrace(t, off, "abc"); status != http.StatusServiceUnavailable {
		t.Fatalf("disabled fetch status %d, want 503", status)
	}

	_, on := newTestServer(t, Config{})
	if status, _ := fetchTrace(t, on, "beef"); status != http.StatusNotFound {
		t.Fatalf("unknown trace status %d, want 404", status)
	}
	if status, _ := fetchTrace(t, on, strings.Repeat("a", 65)); status != http.StatusBadRequest {
		t.Fatalf("oversized trace id status %d, want 400", status)
	}
}

// TestRequestIDAdoption: a well-formed inbound X-Request-ID is adopted (so
// one client-chosen ID correlates coordinator and worker logs across
// retries); a hostile one is replaced.
func TestRequestIDAdoption(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	do := func(id string) string {
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
		if err != nil {
			t.Fatal(err)
		}
		if id != "" {
			req.Header.Set("X-Request-ID", id)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.Header.Get("X-Request-ID")
	}
	if got := do("req-1234.retry:2"); got != "req-1234.retry:2" {
		t.Fatalf("valid inbound id not adopted: %q", got)
	}
	if got := do("bad id!{}"); got == "bad id!{}" || got == "" {
		t.Fatalf("hostile inbound id adopted: %q", got)
	}
	if got := do(strings.Repeat("x", 65)); len(got) > 64 {
		t.Fatalf("oversized inbound id adopted: %q", got)
	}
}

// TestBuildInfoMatchesHealthz: the rayschedd_build_info gauge must carry the
// same identity (version, instance, gomaxprocs) that /healthz reports, so a
// scrape and a health probe can be joined on the labels.
func TestBuildInfoMatchesHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h struct {
		Version    string `json:"version"`
		Instance   string `json:"instance"`
		GoMaxProcs int    `json:"gomaxprocs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Version == "" || h.Instance == "" || h.GoMaxProcs == 0 {
		t.Fatalf("healthz identity incomplete: %+v", h)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	want := fmt.Sprintf(`rayschedd_build_info{version=%q,instance=%q,gomaxprocs="%d"} 1`,
		h.Version, h.Instance, h.GoMaxProcs)
	if !strings.Contains(string(metrics), want) {
		t.Fatalf("build_info gauge does not match healthz:\nwant %s\nin:\n%s", want, metrics)
	}
}
