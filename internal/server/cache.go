package server

import (
	"container/list"
	"sync"
)

// Cache is a thread-safe LRU of rendered response bodies, keyed by the
// canonical request hash (see requestKey). Values are the exact bytes
// written to the first requester, so a hit replays a byte-identical
// response: the daemon's determinism contract (same topology, params, and
// seed ⇒ same bytes) survives caching.
type Cache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses uint64
}

type cacheEntry struct {
	key  string
	body []byte
}

// NewCache returns an LRU holding at most capacity entries. capacity <= 0
// disables caching (every Get misses, Put is a no-op), which keeps the
// handler path branch-free.
func NewCache(capacity int) *Cache {
	return &Cache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element),
	}
}

// Get returns the cached body for key and whether it was present, updating
// recency and the hit/miss counters.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// Put stores body under key, evicting the least recently used entry when
// over capacity. The caller must not mutate body afterwards.
func (c *Cache) Put(key string, body []byte) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).body = body
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, body: body})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats returns the cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
