package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"rayfade/internal/faults"
)

// batchFlushEvery is how many response lines accumulate between explicit
// flushes: frequent enough that a slowly-produced batch streams, rare
// enough that a cache-hot batch is not one syscall per line.
const batchFlushEvery = 64

// handleEstimateBatch is POST /v1/estimate/batch: an NDJSON stream of
// estimate requests in, one response line per request out, in order. A
// success line is byte-identical to the /v1/estimate response body for the
// same request (both come out of respond on the same canonical key, so the
// two endpoints share the cache and collapse onto each other's in-flight
// computations); a failed line is the standard {"error": ...} document and
// does not abort the rest of the batch.
//
// The batch is the amortization endpoint: one connection, one HTTP
// round-trip, one instrumented envelope, and one deadline cover thousands
// of estimates, while each line still flows through the existing pipeline —
// handler fault site, cache, singleflight, pool admission, deadline — so
// batching changes the framing, never the semantics.
//
// The whole batch runs under one deadline: the server default, tightened by
// a ?timeout_ms= query parameter (the NDJSON body has no envelope to carry
// one); a line may tighten further with its own timeout_ms field.
func (s *Server) handleEstimateBatch(w http.ResponseWriter, r *http.Request) {
	// Request-level chaos hook, mirroring serve: a transient fault here
	// rejects the whole batch before any line is processed.
	if err := faults.Inject(faults.SiteHandler); err != nil {
		writeError(w, err)
		return
	}
	var timeoutMS int64
	if v := r.URL.Query().Get("timeout_ms"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil || ms < 0 {
			writeError(w, badRequest("timeout_ms query parameter %q is not a non-negative integer", v))
			return
		}
		timeoutMS = ms
	}
	ctx, cancel := s.deadline(r, timeoutMS)
	defer cancel()

	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 64<<10), int(s.cfg.MaxBodyBytes))

	flusher, _ := w.(http.Flusher)
	lines := 0
	wrote := false
	writeLine := func(body []byte) bool {
		if !wrote {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			wrote = true
		}
		if _, err := w.Write(body); err != nil {
			return false
		}
		if _, err := w.Write([]byte{'\n'}); err != nil {
			return false
		}
		if flusher != nil && lines%batchFlushEvery == 0 {
			flusher.Flush()
		}
		return true
	}

	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		lines++
		if lines > s.cfg.MaxBatchLines {
			s.batchLineErrors.Add(1)
			writeLine(errorLine(badRequest("batch exceeds %d lines; split it", s.cfg.MaxBatchLines)))
			return
		}
		body, err := s.batchLine(ctx, line)
		if err != nil {
			s.batchLineErrors.Add(1)
			body = errorLine(err)
		}
		s.batchLines.Add(1)
		if !writeLine(body) {
			return // client went away; stop burning workers on it
		}
		// A dead batch deadline fails every remaining line identically;
		// stop after reporting it once instead of emitting thousands of
		// copies of the same error.
		if err != nil && ctx.Err() != nil {
			return
		}
	}
	if err := sc.Err(); err != nil {
		if !wrote {
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				writeError(w, &httpError{status: http.StatusRequestEntityTooLarge,
					msg: fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit)})
				return
			}
			writeError(w, badRequest("read batch: %v", err))
			return
		}
		s.batchLineErrors.Add(1)
		writeLine(errorLine(badRequest("read batch: %v", err)))
		return
	}
	if lines == 0 {
		writeError(w, badRequest("empty batch (want one JSON estimate request per line)"))
		return
	}
	if flusher != nil {
		flusher.Flush()
	}
}

// batchLine serves one NDJSON line: decode, resolve the topology (inline or
// session ref), apply the estimate defaults, and resolve the canonical key
// through the shared cache/singleflight/pool pipeline. The returned bytes
// are exactly what /v1/estimate would have answered.
func (s *Server) batchLine(ctx context.Context, line []byte) ([]byte, error) {
	// Per-line chaos hook: armed server.handler faults hit individual
	// estimates, not just whole batches, so the fault surface per unit of
	// work matches the single-request path.
	if err := faults.Inject(faults.SiteHandler); err != nil {
		return nil, err
	}
	var req estimateRequest
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, badRequest("decode line: %v", err)
	}
	if dec.More() {
		return nil, badRequest("trailing data after JSON document")
	}
	net, canon, err := s.resolveTopology(req.Network, req.TopologyRef)
	if err != nil {
		return nil, err
	}
	p, err := s.estimateParamsFrom(&req)
	if err != nil {
		return nil, err
	}
	lctx := ctx
	if req.TimeoutMS > 0 {
		d := time.Duration(req.TimeoutMS) * time.Millisecond
		if d > s.cfg.MaxTimeout {
			d = s.cfg.MaxTimeout
		}
		var cancel context.CancelFunc
		lctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	key := requestKey("/v1/estimate", p, canon)
	out, err := s.respond(lctx, key, func(ctx context.Context) (any, error) {
		return computeEstimate(ctx, p, net)
	})
	if out.pooled && out.source == sourceMiss {
		s.metrics.ObserveQueueWait("/v1/estimate/batch", out.wait.Seconds())
	}
	if err != nil {
		return nil, err
	}
	return out.body, nil
}

// errorLine renders err as the standard JSON error document, sans newline.
func errorLine(err error) []byte {
	body, merr := json.Marshal(errorBody{Error: err.Error()})
	if merr != nil {
		return []byte(`{"error":"internal"}`)
	}
	return body
}
