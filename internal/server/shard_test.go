package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"rayfade/internal/sim"
)

// shardTestConfig is a Figure-1 run small enough for endpoint tests.
func shardTestConfig() Figure1ShardConfig {
	return Figure1ShardConfig{
		Networks: 4, Links: 12, TransmitSeeds: 2, FadingSeeds: 2,
		Points: 3, Seed: 23,
	}
}

func shardReq(t *testing.T, wire Figure1ShardConfig, lo, hi int) []byte {
	t.Helper()
	b, err := json.Marshal(ShardRequest{
		Experiment: sim.ExperimentFigure1, Lo: lo, Hi: hi, Figure1: &wire,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestShardEndpoint: the endpoint's shard document must decode and be
// bit-identical to computing the same shard in-process — a worker adds
// transport, never perturbation.
func TestShardEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	wire := shardTestConfig()
	resp, body := post(t, ts, "/v1/shard", shardReq(t, wire, 1, 3))
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Shard-Range"); got != "1-3" {
		t.Fatalf("X-Shard-Range = %q, want \"1-3\"", got)
	}
	sh, err := sim.DecodeShard(body)
	if err != nil {
		t.Fatal(err)
	}
	if sh.Lo != 1 || sh.Hi != 3 || sh.Reps != 4 || sh.Experiment != sim.ExperimentFigure1 {
		t.Fatalf("shard header: %+v", sh)
	}
	local, err := sim.RunFigure1ShardCtx(context.Background(), wire.SimConfig(), 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	localDoc, err := local.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, localDoc) {
		t.Fatal("endpoint shard document differs from in-process computation")
	}

	// Identical request again: served from cache, byte-identical, range
	// header still present.
	resp2, body2 := post(t, ts, "/v1/shard", shardReq(t, wire, 1, 3))
	if resp2.StatusCode != 200 || resp2.Header.Get("X-Cache") != "hit" {
		t.Fatalf("repeat: status %d, X-Cache %q", resp2.StatusCode, resp2.Header.Get("X-Cache"))
	}
	if resp2.Header.Get("X-Shard-Range") != "1-3" {
		t.Fatalf("repeat X-Shard-Range = %q", resp2.Header.Get("X-Shard-Range"))
	}
	if !bytes.Equal(body, body2) {
		t.Fatal("cached shard document differs")
	}
}

func TestShardEndpointValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxLinks: 100})
	wire := shardTestConfig()
	cases := []struct {
		name string
		body []byte
		code int
	}{
		{"unknown experiment", func() []byte {
			b, _ := json.Marshal(ShardRequest{Experiment: "figure9", Lo: 0, Hi: 1, Figure1: &wire})
			return b
		}(), 400},
		{"missing config", func() []byte {
			b, _ := json.Marshal(ShardRequest{Experiment: sim.ExperimentFigure1, Lo: 0, Hi: 1})
			return b
		}(), 400},
		{"inverted range", shardReq(t, wire, 3, 1), 400},
		{"empty range", shardReq(t, wire, 2, 2), 400},
		{"range past networks", shardReq(t, wire, 0, 5), 400},
		{"negative lo", shardReq(t, wire, -1, 2), 400},
		{"zero networks", func() []byte {
			w := wire
			w.Networks = 0
			return shardReq(t, w, 0, 1)
		}(), 400},
		{"one point", func() []byte {
			w := wire
			w.Points = 1
			return shardReq(t, w, 0, 1)
		}(), 400},
		{"oversized topology", func() []byte {
			w := wire
			w.Links = 101
			return shardReq(t, w, 0, 1)
		}(), 413},
	}
	for _, tc := range cases {
		resp, body := post(t, ts, "/v1/shard", tc.body)
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d: %s", tc.name, resp.StatusCode, tc.code, body)
		}
	}
}

// TestHealthzWorkerIdentity: /healthz must expose the identity fields a
// coordinator discovers workers by, and the shard counters must move when
// shards complete.
func TestHealthzWorkerIdentity(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	get := func() healthResponse {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h healthResponse
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h
	}
	h := get()
	if h.Status != "ok" || h.Version == "" || h.Instance == "" || h.GoMaxProcs < 1 {
		t.Fatalf("healthz identity: %+v", h)
	}
	if h.Instance != s.instance {
		t.Fatalf("healthz instance %q, server has %q", h.Instance, s.instance)
	}
	if h.ShardsInflight != 0 || h.ShardsCompleted != 0 {
		t.Fatalf("fresh daemon shard counters: %+v", h)
	}

	if resp, body := post(t, ts, "/v1/shard", shardReq(t, shardTestConfig(), 0, 2)); resp.StatusCode != 200 {
		t.Fatalf("shard: status %d: %s", resp.StatusCode, body)
	}
	h = get()
	if h.ShardsCompleted != 1 {
		t.Fatalf("shards_completed = %d after one shard", h.ShardsCompleted)
	}
	if h.ShardsInflight != 0 {
		t.Fatalf("shards_inflight = %d at rest", h.ShardsInflight)
	}
}

// TestShardMetrics: the Prometheus page must carry the shard series.
func TestShardMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if resp, body := post(t, ts, "/v1/shard", shardReq(t, shardTestConfig(), 0, 1)); resp.StatusCode != 200 {
		t.Fatalf("shard: status %d: %s", resp.StatusCode, body)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	page := buf.String()
	for _, want := range []string{
		"rayschedd_shards_completed_total 1",
		"rayschedd_shards_inflight 0",
		`rayschedd_requests_total{endpoint="/v1/shard",code="200"} 1`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("metrics page missing %q", want)
		}
	}
}
