package server

// Bench hooks: exported helpers for cmd/raybench's rayschedd throughput
// scenarios. They live in the server package (not the bench binary) so the
// request bodies are built from the same netio canonical form and request
// schemas the handlers decode — a schema change breaks the bench at compile
// time instead of silently measuring 400s.

import (
	"bytes"
	"encoding/json"
	"fmt"

	"rayfade/internal/netio"
	"rayfade/internal/network"
	"rayfade/internal/rng"
	"rayfade/internal/sim"
)

// BenchTopology returns the canonical netio serialization of a
// deterministic Figure-1-style random network with n links. The same
// (links, seed) pair always yields byte-identical output, so cache-hit
// scenarios really do hit the cache.
func BenchTopology(links int, seed uint64) ([]byte, error) {
	cfg := network.Figure1Config()
	cfg.N = links
	net, err := network.Random(cfg, rng.New(seed))
	if err != nil {
		return nil, fmt.Errorf("server: bench topology: %w", err)
	}
	var buf bytes.Buffer
	if err := netio.Save(&buf, net); err != nil {
		return nil, fmt.Errorf("server: bench topology: %w", err)
	}
	return buf.Bytes(), nil
}

// BenchEstimateRequest wraps a BenchTopology payload into a complete
// /v1/estimate request body with the given Monte-Carlo settings.
func BenchEstimateRequest(topology []byte, samples int, seed uint64) ([]byte, error) {
	body, err := json.Marshal(estimateRequest{
		Network: json.RawMessage(topology),
		Samples: samples,
		Seed:    seed,
	})
	if err != nil {
		return nil, fmt.Errorf("server: bench estimate request: %w", err)
	}
	return body, nil
}

// BenchEstimateRefRequest builds a /v1/estimate request body that references
// a session topology by ref instead of inlining it.
func BenchEstimateRefRequest(ref string, samples int, seed uint64) ([]byte, error) {
	body, err := json.Marshal(estimateRequest{
		TopologyRef: ref,
		Samples:     samples,
		Seed:        seed,
	})
	if err != nil {
		return nil, fmt.Errorf("server: bench estimate ref request: %w", err)
	}
	return body, nil
}

// BenchBatchBody builds an NDJSON /v1/estimate/batch body of lines estimate
// requests against the session topology ref. Seeds run 1..lines so each line
// is a distinct computation (distinct cache keys) on the first pass and a
// cache hit on every later pass.
func BenchBatchBody(ref string, samples, lines int) ([]byte, error) {
	var buf bytes.Buffer
	for i := 0; i < lines; i++ {
		line, err := BenchEstimateRefRequest(ref, samples, uint64(i+1))
		if err != nil {
			return nil, err
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	return buf.Bytes(), nil
}

// BenchShardRequest builds a small deterministic /v1/shard request body:
// one replication of a tiny Figure-1 instance. The same seed always yields
// byte-identical response bytes, which is what the cluster-trace-overhead
// scenario leans on to prove tracing never touches the payload.
func BenchShardRequest(seed uint64) ([]byte, error) {
	body, err := json.Marshal(ShardRequest{
		Experiment: sim.ExperimentFigure1,
		Lo:         0, Hi: 1,
		Figure1: &Figure1ShardConfig{
			Networks:      4,
			Links:         30,
			TransmitSeeds: 2,
			FadingSeeds:   2,
			Points:        3,
			Seed:          seed,
		},
	})
	if err != nil {
		return nil, fmt.Errorf("server: bench shard request: %w", err)
	}
	return body, nil
}

// BenchScheduleRequest wraps a BenchTopology payload into a complete
// /v1/schedule request body for the given algorithm ("" selects greedy).
func BenchScheduleRequest(topology []byte, algorithm string) ([]byte, error) {
	body, err := json.Marshal(scheduleRequest{
		Network:   json.RawMessage(topology),
		Algorithm: algorithm,
	})
	if err != nil {
		return nil, fmt.Errorf("server: bench schedule request: %w", err)
	}
	return body, nil
}
