package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// uploadTopology posts a topology document and decodes the session handle.
func uploadTopology(t *testing.T, ts *httptest.Server, topo []byte) topologyResponse {
	t.Helper()
	resp, body := post(t, ts, "/v1/topology", topo)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload: status %d: %s", resp.StatusCode, body)
	}
	var out topologyResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("upload: decode: %v", err)
	}
	return out
}

// metricsText renders the server's Prometheus output.
func metricsText(t *testing.T, s *Server) string {
	t.Helper()
	var sb strings.Builder
	if _, err := s.metrics.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestSessionStoreLRUAndStats(t *testing.T) {
	store := NewSessionStore(2)
	canon := func(i int) []byte { return []byte(fmt.Sprintf("topology-%d", i)) }

	ref0, created, err := store.Put(canon(0), nil)
	if err != nil || !created {
		t.Fatalf("first put: created=%v err=%v", created, err)
	}
	if want := TopologyRef(canon(0)); ref0 != want {
		t.Fatalf("ref %q, want content-derived %q", ref0, want)
	}
	// Re-upload refreshes recency, does not create.
	if _, created, _ := store.Put(canon(0), nil); created {
		t.Fatal("re-upload reported created=true")
	}
	ref1, _, _ := store.Put(canon(1), nil)
	// 0 is refreshed again, so inserting a third evicts 1 — the true LRU.
	store.Put(canon(0), nil)
	ref2, _, _ := store.Put(canon(2), nil)
	if _, _, ok := store.Get(ref1); ok {
		t.Fatal("LRU entry survived eviction")
	}
	for _, ref := range []string{ref0, ref2} {
		if _, _, ok := store.Get(ref); !ok {
			t.Fatalf("recent entry %s evicted", ref)
		}
	}
	hits, misses, evictions := store.Stats()
	if hits != 2 || misses != 1 || evictions != 1 {
		t.Fatalf("stats hits=%d misses=%d evictions=%d, want 2/1/1", hits, misses, evictions)
	}
}

func TestSessionStoreDisabled(t *testing.T) {
	store := NewSessionStore(0)
	if _, _, err := store.Put([]byte("x"), nil); err != ErrSessionsDisabled {
		t.Fatalf("Put on disabled store: %v, want ErrSessionsDisabled", err)
	}
	if _, _, ok := store.Get(TopologyRef([]byte("x"))); ok {
		t.Fatal("Get on disabled store returned ok")
	}
}

// TestSessionStoreConcurrent hammers upload/lookup/evict from many
// goroutines under a tiny capacity; under -race this is the data-race
// coverage for the store. Correctness asserts: the store never exceeds its
// bound and the churn produced real evictions.
func TestSessionStoreConcurrent(t *testing.T) {
	const (
		capacity   = 4
		workers    = 8
		iterations = 200
		topologies = 16
	)
	store := NewSessionStore(capacity)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				id := (w + i) % topologies
				canon := []byte(fmt.Sprintf("topology-%d", id))
				switch i % 3 {
				case 0, 1:
					if _, _, err := store.Put(canon, nil); err != nil {
						panic(err)
					}
				default:
					store.Get(TopologyRef(canon))
				}
				if n := store.Len(); n > capacity {
					panic(fmt.Sprintf("store grew to %d, cap %d", n, capacity))
				}
			}
		}(w)
	}
	wg.Wait()
	if n := store.Len(); n > capacity {
		t.Fatalf("store holds %d entries, cap %d", n, capacity)
	}
	if _, _, evictions := store.Stats(); evictions == 0 {
		t.Fatal("no evictions despite churn far beyond capacity")
	}
}

// TestTopologySessionLifecycle is the acceptance path: upload once, compute
// by ref, and the response bytes must be identical to the inline-topology
// request. Then eviction: the ref answers 404 with a re-upload hint, and
// re-uploading the same content restores the same handle.
func TestTopologySessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSessions: 2})
	topo := testTopology(t, 16, 1)

	up := uploadTopology(t, ts, topo)
	if up.TopologyRef != TopologyRef(topo) || up.Links != 16 || !up.Created {
		t.Fatalf("upload response %+v", up)
	}
	if again := uploadTopology(t, ts, topo); again.Created {
		t.Fatalf("re-upload reported created=true: %+v", again)
	}

	resp, inline := post(t, ts, "/v1/estimate", reqBody(t, topo, map[string]any{"samples": 50, "seed": 7}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inline estimate: status %d: %s", resp.StatusCode, inline)
	}
	refReq, _ := json.Marshal(map[string]any{"topology_ref": up.TopologyRef, "samples": 50, "seed": 7})
	resp, byRef := post(t, ts, "/v1/estimate", refReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ref estimate: status %d: %s", resp.StatusCode, byRef)
	}
	if !bytes.Equal(inline, byRef) {
		t.Fatalf("ref response differs from inline:\n%s\nvs\n%s", byRef, inline)
	}

	// Evict by uploading two more topologies into the 2-entry store.
	uploadTopology(t, ts, testTopology(t, 10, 2))
	uploadTopology(t, ts, testTopology(t, 10, 3))
	resp, body := post(t, ts, "/v1/estimate", refReq)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted ref: status %d: %s", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte("/v1/topology")) {
		t.Fatalf("404 body gives no re-upload hint: %s", body)
	}
	// Recovery: same content, same ref, same response bytes.
	if re := uploadTopology(t, ts, topo); !re.Created || re.TopologyRef != up.TopologyRef {
		t.Fatalf("re-upload after eviction: %+v", re)
	}
	resp, byRef2 := post(t, ts, "/v1/estimate", refReq)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(inline, byRef2) {
		t.Fatalf("post-recovery ref estimate: status %d, identical=%v", resp.StatusCode, bytes.Equal(inline, byRef2))
	}
}

func TestTopologyRefValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	topo := testTopology(t, 8, 1)

	// Both network and topology_ref is ambiguous.
	both, _ := json.Marshal(map[string]any{
		"network": json.RawMessage(topo), "topology_ref": "sha256:abc", "samples": 10,
	})
	if resp, body := post(t, ts, "/v1/estimate", both); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("both fields: status %d: %s", resp.StatusCode, body)
	}
	// Unknown ref is 404, not 400: the request is well-formed, the state is
	// missing.
	unknown, _ := json.Marshal(map[string]any{"topology_ref": "sha256:deadbeef", "samples": 10})
	if resp, body := post(t, ts, "/v1/estimate", unknown); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown ref: status %d: %s", resp.StatusCode, body)
	}
	// Every compute endpoint accepts refs, not just estimate.
	up := uploadTopology(t, ts, topo)
	for _, path := range []string{"/v1/schedule", "/v1/latency", "/v1/reduce"} {
		req, _ := json.Marshal(map[string]any{"topology_ref": up.TopologyRef})
		if resp, body := post(t, ts, path, req); resp.StatusCode != http.StatusOK {
			t.Fatalf("%s by ref: status %d: %s", path, resp.StatusCode, body)
		}
	}
}

func TestTopologySessionsDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSessions: -1})
	resp, body := post(t, ts, "/v1/topology", testTopology(t, 8, 1))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("upload with sessions disabled: status %d: %s", resp.StatusCode, body)
	}
}

func TestSessionMetricsExported(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxSessions: 2})
	up := uploadTopology(t, ts, testTopology(t, 8, 1))
	refReq, _ := json.Marshal(map[string]any{"topology_ref": up.TopologyRef, "samples": 10})
	if resp, body := post(t, ts, "/v1/estimate", refReq); resp.StatusCode != http.StatusOK {
		t.Fatalf("ref estimate: status %d: %s", resp.StatusCode, body)
	}
	text := metricsText(t, s)
	for _, want := range []string{
		"rayschedd_sessions_entries 1",
		"rayschedd_session_hits_total 1",
		"rayschedd_session_evictions_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}
