package server

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"rayfade/internal/obs"
	"rayfade/internal/stats"
)

// Latency histogram shape: stats.Histogram bins are equal-width, so the
// histogram runs over log10(seconds) — equal-width there is log-spaced in
// time, which is the only useful spacing for latencies that range from
// microseconds (cache hits) to minutes (huge topologies). The range spans
// 1µs to 100s with 4 buckets per decade.
const (
	latLogLo   = -6.0
	latLogHi   = 2.0
	latBuckets = 32
)

// endpointStats aggregates one endpoint's counters. The request tallies are
// obs.Registry counters (named "requests.<endpoint>.<code>"), so the same
// numbers the Prometheus page renders are visible to /debug/obs — the
// Prometheus text is one view over the shared registry, not a private copy.
type endpointStats struct {
	byCode    map[int]*obs.Counter
	latency   *stats.Histogram
	seconds   float64 // total observed, for the _sum series
	count     uint64
	queueWait *stats.Histogram
	waitSec   float64
	waitCount uint64
	shed      *obs.Counter // 429 queue-full rejections, lazily created
}

// Metrics is the daemon's observability surface: per-endpoint request and
// status-code counts, log-spaced latency and queue-wait histograms, and
// gauges sampled at render time (queue depth, in-flight jobs, cache
// occupancy). It renders in the Prometheus text exposition format using only
// the stdlib.
type Metrics struct {
	mu        sync.Mutex
	reg       *obs.Registry
	endpoints map[string]*endpointStats

	// counters are free-standing named counters (no endpoint/code labels)
	// registered via Counter, e.g. the shard-completion tally.
	counters map[string]*obs.Counter

	// gauges are sampled lazily at render time so Metrics has no coupling
	// to the pool and cache beyond these closures.
	gauges map[string]func() float64

	// build identity, rendered as the rayschedd_build_info gauge when set
	// (SetBuildInfo). Mirrors the /healthz identity fields so scrape-side
	// joins and the health endpoint can never disagree.
	buildVersion    string
	buildInstance   string
	buildGoMaxProcs int
}

// NewMetrics returns an empty registry backed by a private obs.Registry.
func NewMetrics() *Metrics {
	return NewMetricsWithRegistry(obs.NewRegistry())
}

// NewMetricsWithRegistry returns a Metrics whose counters live in reg, so
// other views of the registry (the /debug/obs endpoint) see the same
// tallies. A nil reg behaves like NewMetrics.
func NewMetricsWithRegistry(reg *obs.Registry) *Metrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Metrics{
		reg:       reg,
		endpoints: make(map[string]*endpointStats),
		counters:  make(map[string]*obs.Counter),
		gauges:    make(map[string]func() float64),
	}
}

// Registry exposes the backing obs.Registry.
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// SetBuildInfo records the daemon identity rendered as the
// rayschedd_build_info gauge (constant value 1; the labels carry the
// information, following the Prometheus build_info convention).
func (m *Metrics) SetBuildInfo(version, instance string, gomaxprocs int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.buildVersion = version
	m.buildInstance = instance
	m.buildGoMaxProcs = gomaxprocs
}

// Gauge registers a named gauge sampled every time the registry renders.
func (m *Metrics) Gauge(name string, sample func() float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.gauges[name] = sample
}

// Counter registers (or returns the existing) free-standing counter rendered
// under the given Prometheus series name. The counter lives in the backing
// obs.Registry under the same name, so /debug/obs sees the same tally.
func (m *Metrics) Counter(name string) *obs.Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.counters[name]
	if !ok {
		c = m.reg.Counter(name)
		m.counters[name] = c
	}
	return c
}

// stats returns (creating on first use) the per-endpoint aggregate. Callers
// hold m.mu.
func (m *Metrics) stats(endpoint string) *endpointStats {
	es, ok := m.endpoints[endpoint]
	if !ok {
		es = &endpointStats{
			byCode:    make(map[int]*obs.Counter),
			latency:   stats.NewHistogram(latLogLo, latLogHi, latBuckets),
			queueWait: stats.NewHistogram(latLogLo, latLogHi, latBuckets),
		}
		m.endpoints[endpoint] = es
	}
	return es
}

// clampLog maps a positive duration in seconds into the histogram's
// log10 domain.
func clampLog(seconds float64) float64 {
	lg := math.Log10(seconds)
	if lg < latLogLo {
		lg = latLogLo
	}
	if lg > latLogHi {
		lg = latLogHi
	}
	return lg
}

// quantileLevels are the latency quantiles exported per endpoint, chosen to
// match the RED-dashboard convention (median, tail, extreme tail).
var quantileLevels = []struct {
	label string
	q     float64
}{
	{"0.5", 0.5},
	{"0.95", 0.95},
	{"0.99", 0.99},
}

// histQuantile inverts a log-spaced histogram at quantile q ∈ (0,1],
// returning seconds. The rank is located in the cumulative bucket counts
// and interpolated linearly within its bucket in the log10 domain (the
// domain the buckets are equal-width in), then mapped back through 10^x —
// the standard histogram_quantile estimate, adapted to log spacing.
// Observations folded into Under/Over clamp to the domain edges. 0 when the
// histogram is empty.
func histQuantile(h *stats.Histogram, q float64) float64 {
	total := uint64(h.Under) + uint64(h.Over)
	for _, c := range h.Counts {
		total += uint64(c)
	}
	if total == 0 {
		return 0
	}
	// 1-based rank of the ceil(q·N)-th smallest observation.
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank <= uint64(h.Under) {
		return math.Pow(10, h.Lo)
	}
	cum := uint64(h.Under)
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		if rank <= cum+uint64(c) {
			lo := h.Lo + float64(i)*width
			frac := float64(rank-cum) / float64(c)
			return math.Pow(10, lo+frac*width)
		}
		cum += uint64(c)
	}
	return math.Pow(10, h.Hi)
}

// Observe records one completed request: its endpoint, HTTP status, and
// wall-clock duration in seconds.
func (m *Metrics) Observe(endpoint string, code int, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	es := m.stats(endpoint)
	c, ok := es.byCode[code]
	if !ok {
		c = m.reg.Counter(fmt.Sprintf("requests.%s.%d", endpoint, code))
		es.byCode[code] = c
	}
	c.Add(1)
	es.count++
	if seconds > 0 && !math.IsNaN(seconds) {
		es.seconds += seconds
		// Clamp into the histogram's domain so Under/Over stay empty and
		// every observation lands in a renderable bucket.
		es.latency.Add(clampLog(seconds))
	}
}

// ObserveShed records one request rejected at the door because the worker
// queue was full — the load the daemon deliberately refused. Rendered as
// rayschedd_shed_requests_total and mirrored in the obs registry as
// "shed.<endpoint>".
func (m *Metrics) ObserveShed(endpoint string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	es := m.stats(endpoint)
	if es.shed == nil {
		es.shed = m.reg.Counter("shed." + endpoint)
	}
	es.shed.Add(1)
}

// ObserveQueueWait records how long one request waited for a pool worker.
func (m *Metrics) ObserveQueueWait(endpoint string, seconds float64) {
	if seconds < 0 || math.IsNaN(seconds) {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	es := m.stats(endpoint)
	es.waitSec += seconds
	es.waitCount++
	if seconds > 0 {
		es.queueWait.Add(clampLog(seconds))
	}
}

// WriteTo renders the registry in the Prometheus text format. Output order
// is deterministic (endpoints, codes, and gauges sorted) so scrapes and
// golden tests are stable.
func (m *Metrics) WriteTo(w io.Writer) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int64
	p := func(format string, args ...any) error {
		k, err := fmt.Fprintf(w, format, args...)
		n += int64(k)
		return err
	}

	eps := make([]string, 0, len(m.endpoints))
	for ep := range m.endpoints {
		eps = append(eps, ep)
	}
	sort.Strings(eps)

	if err := p("# HELP rayschedd_requests_total Completed requests by endpoint and status code.\n# TYPE rayschedd_requests_total counter\n"); err != nil {
		return n, err
	}
	for _, ep := range eps {
		es := m.endpoints[ep]
		codes := make([]int, 0, len(es.byCode))
		for c := range es.byCode {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			if err := p("rayschedd_requests_total{endpoint=%q,code=\"%d\"} %d\n", ep, c, es.byCode[c].Load()); err != nil {
				return n, err
			}
		}
	}

	if err := p("# HELP rayschedd_request_duration_seconds Request latency (log-spaced buckets).\n# TYPE rayschedd_request_duration_seconds histogram\n"); err != nil {
		return n, err
	}
	for _, ep := range eps {
		es := m.endpoints[ep]
		h := es.latency
		width := (latLogHi - latLogLo) / float64(latBuckets)
		cum := uint64(h.Under) // sub-1µs observations fold into the first bucket
		for i, c := range h.Counts {
			cum += uint64(c)
			le := math.Pow(10, latLogLo+float64(i+1)*width)
			if err := p("rayschedd_request_duration_seconds_bucket{endpoint=%q,le=\"%.3g\"} %d\n", ep, le, cum); err != nil {
				return n, err
			}
		}
		cum += uint64(h.Over)
		if err := p("rayschedd_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ep, cum); err != nil {
			return n, err
		}
		if err := p("rayschedd_request_duration_seconds_sum{endpoint=%q} %g\n", ep, es.seconds); err != nil {
			return n, err
		}
		if err := p("rayschedd_request_duration_seconds_count{endpoint=%q} %d\n", ep, es.count); err != nil {
			return n, err
		}
	}

	// Derived latency quantiles, one gauge series per endpoint that has
	// recorded at least one positive-duration observation — dashboards read
	// these directly instead of re-deriving quantiles from the cumulative
	// buckets above. Gauges, not summaries: they are recomputed from the
	// full histogram at every scrape.
	qHeader := false
	for _, ep := range eps {
		es := m.endpoints[ep]
		if histQuantile(es.latency, 0.5) == 0 {
			continue
		}
		if !qHeader {
			if err := p("# HELP rayschedd_request_duration_quantile Request latency quantiles in seconds, derived from the log-spaced histogram at scrape time.\n# TYPE rayschedd_request_duration_quantile gauge\n"); err != nil {
				return n, err
			}
			qHeader = true
		}
		for _, lvl := range quantileLevels {
			if err := p("rayschedd_request_duration_quantile{endpoint=%q,quantile=%q} %g\n", ep, lvl.label, histQuantile(es.latency, lvl.q)); err != nil {
				return n, err
			}
		}
	}

	// Build identity: constant-1 gauge whose labels mirror /healthz, the
	// join key for cluster-wide scrapes. Rendered only once SetBuildInfo has
	// run, so bare Metrics (and the seed golden outputs) are unchanged.
	if m.buildInstance != "" || m.buildVersion != "" {
		if err := p("# HELP rayschedd_build_info Daemon identity; constant 1, the labels carry the information.\n# TYPE rayschedd_build_info gauge\nrayschedd_build_info{version=%q,instance=%q,gomaxprocs=\"%d\"} 1\n",
			m.buildVersion, m.buildInstance, m.buildGoMaxProcs); err != nil {
			return n, err
		}
	}

	// Shed-request series appear only for endpoints that have actually shed
	// load, following the queue-wait precedent: quiet deployments (and the
	// seed golden outputs) render unchanged.
	shedHeader := false
	for _, ep := range eps {
		es := m.endpoints[ep]
		if es.shed == nil || es.shed.Load() == 0 {
			continue
		}
		if !shedHeader {
			if err := p("# HELP rayschedd_shed_requests_total Requests rejected with 429 because the worker queue was full.\n# TYPE rayschedd_shed_requests_total counter\n"); err != nil {
				return n, err
			}
			shedHeader = true
		}
		if err := p("rayschedd_shed_requests_total{endpoint=%q} %d\n", ep, es.shed.Load()); err != nil {
			return n, err
		}
	}

	// Queue-wait series appear only for endpoints that have recorded at
	// least one wait, so deployments that never exercise the pool (and the
	// seed golden outputs) render unchanged.
	headerDone := false
	for _, ep := range eps {
		es := m.endpoints[ep]
		if es.waitCount == 0 {
			continue
		}
		if !headerDone {
			if err := p("# HELP rayschedd_queue_wait_seconds Time requests spent queued for a pool worker (log-spaced buckets).\n# TYPE rayschedd_queue_wait_seconds histogram\n"); err != nil {
				return n, err
			}
			headerDone = true
		}
		h := es.queueWait
		width := (latLogHi - latLogLo) / float64(latBuckets)
		cum := uint64(h.Under)
		for i, c := range h.Counts {
			cum += uint64(c)
			le := math.Pow(10, latLogLo+float64(i+1)*width)
			if err := p("rayschedd_queue_wait_seconds_bucket{endpoint=%q,le=\"%.3g\"} %d\n", ep, le, cum); err != nil {
				return n, err
			}
		}
		cum += uint64(h.Over)
		if err := p("rayschedd_queue_wait_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ep, cum); err != nil {
			return n, err
		}
		if err := p("rayschedd_queue_wait_seconds_sum{endpoint=%q} %g\n", ep, es.waitSec); err != nil {
			return n, err
		}
		if err := p("rayschedd_queue_wait_seconds_count{endpoint=%q} %d\n", ep, es.waitCount); err != nil {
			return n, err
		}
	}

	cnames := make([]string, 0, len(m.counters))
	for name := range m.counters {
		cnames = append(cnames, name)
	}
	sort.Strings(cnames)
	for _, name := range cnames {
		if err := p("# TYPE %s counter\n%s %d\n", name, name, m.counters[name].Load()); err != nil {
			return n, err
		}
	}

	names := make([]string, 0, len(m.gauges))
	for name := range m.gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := p("# TYPE %s gauge\n%s %g\n", name, name, m.gauges[name]()); err != nil {
			return n, err
		}
	}
	return n, nil
}
