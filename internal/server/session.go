package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"sync"

	"rayfade/internal/network"
)

// ErrSessionsDisabled is returned by SessionStore.Put when the store was
// built with a non-positive capacity: the deployment has opted out of the
// session API, so uploads must fail loudly instead of silently registering
// refs that every later lookup would miss.
var ErrSessionsDisabled = errors.New("server: topology sessions disabled")

// TopologyRef returns the canonical session handle for a topology: "sha256:"
// plus the hex digest of its canonical netio serialization. The ref is
// content-derived, so re-uploading an identical topology (even from another
// client, even after an eviction) always yields the same handle, and a
// handle can be computed offline without talking to the daemon.
func TopologyRef(canonical []byte) string {
	sum := sha256.Sum256(canonical)
	return "sha256:" + hex.EncodeToString(sum[:])
}

// sessionEntry is one registered topology: the parsed network the compute
// layers consume and the canonical bytes request keys hash. Both are
// immutable after insertion — the parsed *network.Network is shared by every
// concurrent request that references it, which is safe because the compute
// paths only read it (Gains builds a fresh Matrix per call).
type sessionEntry struct {
	ref   string
	net   *network.Network
	canon []byte
}

// SessionStore is a bounded LRU of uploaded topologies keyed by their
// content hash (see TopologyRef). It is the daemon's amortization of the
// per-request topology parse: POST /v1/topology pays the JSON decode,
// validation, and canonicalization once, and every later request that sends
// topology_ref skips all three.
//
// The store is deliberately an LRU rather than a TTL map: refs are
// content-derived, so eviction is always recoverable (the client re-uploads
// and gets the same handle back), and a bounded entry count — not wall-clock
// age — is what protects the daemon's memory against ref churn.
type SessionStore struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses, evictions uint64
}

// NewSessionStore returns an LRU holding at most capacity topologies.
// capacity <= 0 disables the store: Put fails with ErrSessionsDisabled and
// every Get misses.
func NewSessionStore(capacity int) *SessionStore {
	return &SessionStore{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element),
	}
}

// Put registers a topology (its canonical serialization plus the parsed
// network) and returns its ref. created reports whether the upload inserted
// a new entry; re-uploading a registered topology just refreshes its
// recency. The caller must not mutate canon or net afterwards.
func (s *SessionStore) Put(canon []byte, net *network.Network) (ref string, created bool, err error) {
	ref = TopologyRef(canon)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cap <= 0 {
		return "", false, ErrSessionsDisabled
	}
	if el, ok := s.items[ref]; ok {
		s.order.MoveToFront(el)
		return ref, false, nil
	}
	s.items[ref] = s.order.PushFront(&sessionEntry{ref: ref, net: net, canon: canon})
	for s.order.Len() > s.cap {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.items, oldest.Value.(*sessionEntry).ref)
		s.evictions++
	}
	return ref, true, nil
}

// Get resolves a ref to its parsed network and canonical bytes, updating
// recency and the hit/miss counters. ok is false for refs never uploaded,
// evicted, or when the store is disabled.
func (s *SessionStore) Get(ref string) (net *network.Network, canon []byte, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, present := s.items[ref]
	if !present {
		s.misses++
		return nil, nil, false
	}
	s.hits++
	s.order.MoveToFront(el)
	e := el.Value.(*sessionEntry)
	return e.net, e.canon, true
}

// Len returns the number of registered topologies.
func (s *SessionStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.Len()
}

// Stats returns the cumulative hit, miss, and eviction counts.
func (s *SessionStore) Stats() (hits, misses, evictions uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses, s.evictions
}
