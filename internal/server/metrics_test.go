package server

import (
	"fmt"
	"strings"
	"testing"
)

func TestMetricsRender(t *testing.T) {
	m := NewMetrics()
	m.Observe("/v1/schedule", 200, 0.01)
	m.Observe("/v1/schedule", 200, 0.02)
	m.Observe("/v1/schedule", 400, 0.001)
	m.Observe("/v1/latency", 200, 1.5)
	m.Gauge("rayschedd_queue_depth", func() float64 { return 3 })

	var sb strings.Builder
	if _, err := m.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	wants := []string{
		`rayschedd_requests_total{endpoint="/v1/schedule",code="200"} 2`,
		`rayschedd_requests_total{endpoint="/v1/schedule",code="400"} 1`,
		`rayschedd_requests_total{endpoint="/v1/latency",code="200"} 1`,
		`rayschedd_request_duration_seconds_count{endpoint="/v1/schedule"} 3`,
		`rayschedd_request_duration_seconds_bucket{endpoint="/v1/latency",le="+Inf"} 1`,
		`rayschedd_queue_depth 3`,
		"# TYPE rayschedd_requests_total counter",
		"# TYPE rayschedd_request_duration_seconds histogram",
	}
	for _, want := range wants {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestMetricsHistogramCumulative(t *testing.T) {
	m := NewMetrics()
	// Observations clamped into the domain still land in buckets: one far
	// below the 1µs floor, one far above the 100s ceiling.
	m.Observe("/x", 200, 1e-9)
	m.Observe("/x", 200, 1e9)
	var sb strings.Builder
	m.WriteTo(&sb)
	out := sb.String()
	if !strings.Contains(out, `rayschedd_request_duration_seconds_bucket{endpoint="/x",le="+Inf"} 2`) {
		t.Fatalf("+Inf bucket must count every observation:\n%s", out)
	}
	if !strings.Contains(out, `rayschedd_request_duration_seconds_count{endpoint="/x"} 2`) {
		t.Fatalf("count series wrong:\n%s", out)
	}
}

// TestQuantileSeries: the p50/p95/p99 gauges derived from the latency
// histograms. Values are bucket-resolution (the log-spaced buckets span a
// quarter decade), so the assertions use generous factor bounds rather than
// exact equality.
func TestQuantileSeries(t *testing.T) {
	m := NewMetrics()
	var sb strings.Builder
	m.WriteTo(&sb)
	if strings.Contains(sb.String(), "rayschedd_request_duration_quantile") {
		t.Fatalf("quantile series rendered with no observations:\n%s", sb.String())
	}

	// 100 requests at ~10ms and 10 stragglers at ~1s: the median must sit in
	// the 10ms region and the p99 in the 1s region.
	for i := 0; i < 100; i++ {
		m.Observe("/v1/estimate", 200, 0.01)
	}
	for i := 0; i < 10; i++ {
		m.Observe("/v1/estimate", 200, 1.0)
	}
	sb.Reset()
	m.WriteTo(&sb)
	out := sb.String()
	if !strings.Contains(out, "# TYPE rayschedd_request_duration_quantile gauge") {
		t.Fatalf("quantile type header missing:\n%s", out)
	}
	q := map[string]float64{}
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, `rayschedd_request_duration_quantile{endpoint="/v1/estimate"`) {
			continue
		}
		var quant string
		var v float64
		if _, err := fmt.Sscanf(line, `rayschedd_request_duration_quantile{endpoint="/v1/estimate",quantile=%q} %g`, &quant, &v); err != nil {
			t.Fatalf("unparsable quantile line %q: %v", line, err)
		}
		q[quant] = v
	}
	if len(q) != 3 {
		t.Fatalf("got quantiles %v, want 0.5/0.95/0.99", q)
	}
	if q["0.5"] < 0.003 || q["0.5"] > 0.03 {
		t.Fatalf("p50 = %g, want ~0.01", q["0.5"])
	}
	if q["0.99"] < 0.3 || q["0.99"] > 3 {
		t.Fatalf("p99 = %g, want ~1.0", q["0.99"])
	}
	if !(q["0.5"] <= q["0.95"] && q["0.95"] <= q["0.99"]) {
		t.Fatalf("quantiles not monotone: %v", q)
	}
}

// TestBuildInfoRendersOnlyWhenSet: bare Metrics (no SetBuildInfo) must not
// emit the build_info series, so outputs recorded before the gauge existed
// stay byte-identical.
func TestBuildInfoRendersOnlyWhenSet(t *testing.T) {
	m := NewMetrics()
	var sb strings.Builder
	m.WriteTo(&sb)
	if strings.Contains(sb.String(), "rayschedd_build_info") {
		t.Fatalf("build_info rendered without SetBuildInfo:\n%s", sb.String())
	}
	m.SetBuildInfo("1.2.3", "abcd", 8)
	sb.Reset()
	m.WriteTo(&sb)
	if !strings.Contains(sb.String(), `rayschedd_build_info{version="1.2.3",instance="abcd",gomaxprocs="8"} 1`) {
		t.Fatalf("build_info missing after SetBuildInfo:\n%s", sb.String())
	}
}

func TestMetricsDeterministicOrder(t *testing.T) {
	m := NewMetrics()
	m.Observe("/b", 200, 0.1)
	m.Observe("/a", 200, 0.1)
	var s1, s2 strings.Builder
	m.WriteTo(&s1)
	m.WriteTo(&s2)
	if s1.String() != s2.String() {
		t.Fatal("non-deterministic render")
	}
	if strings.Index(s1.String(), `endpoint="/a"`) > strings.Index(s1.String(), `endpoint="/b"`) {
		t.Fatal("endpoints not sorted")
	}
}
