package server

import (
	"strings"
	"testing"
)

func TestMetricsRender(t *testing.T) {
	m := NewMetrics()
	m.Observe("/v1/schedule", 200, 0.01)
	m.Observe("/v1/schedule", 200, 0.02)
	m.Observe("/v1/schedule", 400, 0.001)
	m.Observe("/v1/latency", 200, 1.5)
	m.Gauge("rayschedd_queue_depth", func() float64 { return 3 })

	var sb strings.Builder
	if _, err := m.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	wants := []string{
		`rayschedd_requests_total{endpoint="/v1/schedule",code="200"} 2`,
		`rayschedd_requests_total{endpoint="/v1/schedule",code="400"} 1`,
		`rayschedd_requests_total{endpoint="/v1/latency",code="200"} 1`,
		`rayschedd_request_duration_seconds_count{endpoint="/v1/schedule"} 3`,
		`rayschedd_request_duration_seconds_bucket{endpoint="/v1/latency",le="+Inf"} 1`,
		`rayschedd_queue_depth 3`,
		"# TYPE rayschedd_requests_total counter",
		"# TYPE rayschedd_request_duration_seconds histogram",
	}
	for _, want := range wants {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestMetricsHistogramCumulative(t *testing.T) {
	m := NewMetrics()
	// Observations clamped into the domain still land in buckets: one far
	// below the 1µs floor, one far above the 100s ceiling.
	m.Observe("/x", 200, 1e-9)
	m.Observe("/x", 200, 1e9)
	var sb strings.Builder
	m.WriteTo(&sb)
	out := sb.String()
	if !strings.Contains(out, `rayschedd_request_duration_seconds_bucket{endpoint="/x",le="+Inf"} 2`) {
		t.Fatalf("+Inf bucket must count every observation:\n%s", out)
	}
	if !strings.Contains(out, `rayschedd_request_duration_seconds_count{endpoint="/x"} 2`) {
		t.Fatalf("count series wrong:\n%s", out)
	}
}

func TestMetricsDeterministicOrder(t *testing.T) {
	m := NewMetrics()
	m.Observe("/b", 200, 0.1)
	m.Observe("/a", 200, 0.1)
	var s1, s2 strings.Builder
	m.WriteTo(&s1)
	m.WriteTo(&s2)
	if s1.String() != s2.String() {
		t.Fatal("non-deterministic render")
	}
	if strings.Index(s1.String(), `endpoint="/a"`) > strings.Index(s1.String(), `endpoint="/b"`) {
		t.Fatal("endpoints not sorted")
	}
}
