package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rayfade/internal/faults"
)

// ErrQueueFull is returned by Pool.Do when the admission queue has no room
// for another job. The HTTP layer translates it into 429 Too Many Requests
// with a Retry-After hint, which is the daemon's overload contract: shed
// load at the door instead of queueing unboundedly.
var ErrQueueFull = errors.New("server: worker queue full")

// ErrPoolClosed is returned by Pool.Do after Close: the daemon is draining
// and accepts no new work.
var ErrPoolClosed = errors.New("server: pool closed")

// job is one queued unit of work. done is closed exactly once, after the
// job has either run to completion or been skipped; err carries the skip
// reason (context expiry) or a recovered panic.
type job struct {
	ctx  context.Context
	fn   func(ctx context.Context)
	done chan struct{}
	err  error
	enq  time.Time     // when the job entered the queue
	wait time.Duration // queue wait, stamped when a worker picks it up
}

// Pool is a bounded worker pool: a fixed set of goroutines draining a
// buffered admission queue. Both bounds are deliberate — the workers cap
// compute concurrency near the core count (each request saturates one core;
// oversubscribing only adds scheduling jitter to every in-flight request),
// and the queue caps memory and tail latency under overload.
type Pool struct {
	jobs     chan *job
	wg       sync.WaitGroup
	inFlight atomic.Int64
	workers  int
	draining atomic.Bool

	mu     sync.RWMutex
	closed bool
}

// NewPool starts workers goroutines behind a queue of the given capacity.
// workers <= 0 selects GOMAXPROCS; queue < 0 selects 64.
func NewPool(workers, queue int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queue < 0 {
		queue = 64
	}
	p := &Pool{jobs: make(chan *job, queue), workers: workers}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for j := range p.jobs {
		p.run(j)
	}
}

// run executes one job, skipping it when its context already expired while
// queued (the requester has been answered or has given up; running anyway
// would burn a worker on unobservable output).
func (p *Pool) run(j *job) {
	defer close(j.done)
	j.wait = time.Since(j.enq)
	// A job still queued when Close begins fails deterministically instead
	// of running during shutdown: its submitter is likely gone, and "Close
	// returned" must mean "no request work is executing anywhere".
	if p.draining.Load() {
		j.err = ErrPoolClosed
		return
	}
	if err := j.ctx.Err(); err != nil {
		j.err = err
		return
	}
	p.inFlight.Add(1)
	defer p.inFlight.Add(-1)
	defer func() {
		if r := recover(); r != nil {
			j.err = fmt.Errorf("server: job panic: %v", r)
		}
	}()
	// Chaos hook: an injected panic here is recovered into j.err exactly
	// like a panic out of the job body — the path the HTTP layer's 500
	// mapping relies on.
	if err := faults.Inject(faults.SitePoolJob); err != nil {
		j.err = err
		return
	}
	j.fn(j.ctx)
}

// Do submits fn and blocks until it has run to completion or been skipped.
// It returns ErrQueueFull without blocking when the queue is at capacity,
// ErrPoolClosed after Close, the context's error when the job was skipped
// because ctx expired while queued, and a wrapped panic value if fn
// panicked. A nil return means fn ran to completion (fn observes ctx itself
// for mid-computation cancellation — the compute layers poll it).
func (p *Pool) Do(ctx context.Context, fn func(ctx context.Context)) error {
	_, err := p.DoTimed(ctx, fn)
	return err
}

// DoTimed is Do, additionally reporting how long the job waited in the
// queue before a worker picked it up — the admission-control latency the
// access log and queue-wait metrics surface. The wait is zero when the job
// was rejected at the door (queue full, pool closed).
func (p *Pool) DoTimed(ctx context.Context, fn func(ctx context.Context)) (time.Duration, error) {
	j := &job{ctx: ctx, fn: fn, done: make(chan struct{}), enq: time.Now()}
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return 0, ErrPoolClosed
	}
	select {
	case p.jobs <- j:
		p.mu.RUnlock()
	default:
		p.mu.RUnlock()
		return 0, ErrQueueFull
	}
	<-j.done
	return j.wait, j.err
}

// QueueDepth returns the number of jobs waiting for a worker.
func (p *Pool) QueueDepth() int { return len(p.jobs) }

// InFlight returns the number of jobs currently executing.
func (p *Pool) InFlight() int { return int(p.inFlight.Load()) }

// Workers returns the pool's worker count — the denominator for the HTTP
// layer's Retry-After estimate (queued jobs per worker).
func (p *Pool) Workers() int { return p.workers }

// Close stops admission and blocks until shutdown is complete: in-flight
// jobs finish, and jobs still waiting in the queue fail with ErrPoolClosed
// (their submitters unblock immediately with a deterministic error — they
// neither hang nor run during shutdown). Close is idempotent and leaves no
// worker goroutines behind.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.draining.Store(true)
	close(p.jobs)
	p.mu.Unlock()
	p.wg.Wait()
}
