// Package server is rayschedd's scheduling-as-a-service core: an HTTP/JSON
// daemon exposing the library's schedulers over netio-format topologies.
//
// Endpoints:
//
//	POST /v1/schedule        single-slot capacity scheduling + fading transfer
//	POST /v1/latency         full-coverage latency scheduling (repeated capacity, ALOHA)
//	POST /v1/reduce          non-fading→Rayleigh reduction (Algorithm 1 / Theorem 2)
//	POST /v1/estimate        Monte-Carlo Rayleigh success estimation (exact form alongside)
//	POST /v1/estimate/batch  NDJSON stream of estimate requests, one response line each
//	POST /v1/topology        register a topology session; returns its sha256 topology_ref
//	POST /v1/shard           distributed Monte-Carlo: replications [lo,hi) as a shard document
//	GET  /healthz            liveness + version + worker identity (instance, GOMAXPROCS, shard load)
//	GET  /metrics            Prometheus text: requests, latency, queue wait, cache, sessions, queue
//	GET  /debug/obs          (Config.Debug) counter snapshot + recent request spans
//	GET  /debug/pprof/       (Config.Debug) net/http/pprof
//
// Production shape, stdlib only:
//
//   - Admission control. Every compute request passes through a bounded
//     worker pool (NewPool); when the queue is full the daemon answers
//     429 with Retry-After instead of queueing unboundedly.
//   - Deadlines. Each request runs under a context deadline (server default,
//     tightened per-request via timeout_ms) that is threaded into the
//     capacity/latency/transform scheduler loops, so abandoned work stops
//     consuming workers. Expiry maps to 504.
//   - Caching. Responses are cached in an LRU keyed by a canonical hash of
//     (endpoint, defaults-applied params, canonical topology); repeated
//     identical queries replay byte-identical bodies from memory.
//   - Topology sessions. POST /v1/topology pays the topology parse,
//     validation, and canonicalization once; compute requests then send
//     topology_ref instead of the full document. Refs are content hashes,
//     so eviction from the bounded session LRU is always recoverable by
//     re-uploading.
//   - Singleflight. Concurrent identical computations collapse onto one
//     pool job; followers receive the leader's exact bytes (exported as
//     rayschedd_singleflight_shared_total).
//   - Observability. Per-endpoint request/status counts (obs.Registry
//     counters, shared with /debug/obs), log-spaced latency and queue-wait
//     histograms (reusing stats.Histogram), cache hit/miss, queue depth and
//     in-flight gauges, rendered at /metrics; a request ID per response
//     (X-Request-ID) threaded through ctx, one structured access-log record
//     per request, and an optional detached span per request. /healthz and
//     /metrics record under the shared "meta" label so probe traffic cannot
//     skew the compute histograms.
//
// Graceful shutdown is the caller's two-phase affair: http.Server.Shutdown
// stops intake and drains in-flight HTTP, then Server.Close drains the pool.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"rayfade/internal/faults"
	"rayfade/internal/obs"
	"rayfade/internal/version"
)

// Config sizes the daemon. The zero value selects production-reasonable
// defaults (see the field comments).
type Config struct {
	// Workers is the compute concurrency; <= 0 selects GOMAXPROCS.
	Workers int
	// QueueSize bounds jobs waiting for a worker; <= 0 selects 64. A full
	// queue answers 429.
	QueueSize int
	// CacheSize bounds the response LRU (entries); 0 selects 256, negative
	// disables caching.
	CacheSize int
	// MaxLinks rejects larger topologies with 413; <= 0 selects 5000.
	MaxLinks int
	// MaxBodyBytes bounds the request body; <= 0 selects 16 MiB.
	MaxBodyBytes int64
	// DefaultTimeout is the per-request compute deadline when the request
	// does not set timeout_ms; <= 0 selects 30s.
	DefaultTimeout time.Duration
	// MaxTimeout caps request-supplied timeouts; <= 0 selects 5m.
	MaxTimeout time.Duration
	// MaxSamples caps Monte-Carlo sample counts on /v1/reduce and
	// /v1/estimate; <= 0 selects 1_000_000.
	MaxSamples int
	// MaxSessions bounds the topology session LRU (entries); 0 selects 128,
	// negative disables the session API (uploads answer 503, refs miss).
	MaxSessions int
	// MaxBatchLines caps the number of NDJSON lines one /v1/estimate/batch
	// request may carry; <= 0 selects 10_000.
	MaxBatchLines int
	// MaxTraces bounds how many distinct trace IDs the daemon retains span
	// collections for (requests arriving with X-Trace-Context; served back
	// over GET /v1/trace/{id}). LRU eviction; 0 selects 64, negative
	// disables collection and the fetch endpoint answers 503.
	MaxTraces int
	// Log receives one structured access-log record per request (request id,
	// endpoint, status, duration, queue wait). Nil discards — the zero-value
	// Config stays silent, matching pre-observability behavior.
	Log *slog.Logger
	// Debug mounts the runtime-introspection surface: GET /debug/obs (counter
	// snapshot + recent spans) and the net/http/pprof handlers under
	// /debug/pprof/. Off by default: these leak operational detail and must
	// be opted into.
	Debug bool
	// Tracer, when non-nil, records one detached span per request. When nil
	// and Debug is set, the server creates a private ring tracer so
	// /debug/obs has spans to show; when nil without Debug, request spans
	// cost nothing.
	Tracer *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.MaxLinks <= 0 {
		c.MaxLinks = 5000
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxSamples <= 0 {
		c.MaxSamples = 1_000_000
	}
	if c.MaxSessions == 0 {
		c.MaxSessions = 128
	}
	if c.MaxBatchLines <= 0 {
		c.MaxBatchLines = 10_000
	}
	if c.MaxTraces == 0 {
		c.MaxTraces = 64
	}
	return c
}

// Server wires the pool, cache, metrics, and handlers into one http.Handler.
type Server struct {
	cfg      Config
	pool     *Pool
	cache    *Cache
	sessions *SessionStore
	flights  *flightGroup
	metrics  *Metrics
	mux      *http.ServeMux
	log      *slog.Logger
	tracer   *obs.Tracer
	traces   *traceStore

	// sfShared tallies singleflight followers: responses delivered from a
	// computation another request led. batchLines / batchLineErrors tally
	// the NDJSON lines /v1/estimate/batch processed and how many of them
	// answered an error document.
	sfShared        *obs.Counter
	batchLines      *obs.Counter
	batchLineErrors *obs.Counter

	// instance identifies this daemon process to cluster coordinators
	// (reported by /healthz); fresh per New, stable for the process.
	instance string
	// shardsInflight counts /v1/shard computations currently on pool
	// workers; shardsCompleted tallies successfully sealed shard documents.
	shardsInflight  atomic.Int64
	shardsCompleted *obs.Counter

	// draining gates new work intake: while set, POST endpoints answer 503 +
	// Retry-After and /healthz reports "draining" so coordinators stop
	// dispatching here instead of burning lease attempts. GETs (healthz,
	// metrics, trace fetch) stay live — operators and coordinators still need
	// to watch the drain.
	draining atomic.Bool
}

// New builds a ready-to-serve Server. The caller owns its lifecycle: serve
// s with net/http, then Close to drain the pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	log := cfg.Log
	if log == nil {
		log = obs.Discard()
	}
	tracer := cfg.Tracer
	if tracer == nil && cfg.Debug {
		tracer = obs.NewTracer(0)
	}
	s := &Server{
		cfg:      cfg,
		pool:     NewPool(cfg.Workers, cfg.QueueSize),
		cache:    NewCache(cfg.CacheSize),
		sessions: NewSessionStore(cfg.MaxSessions),
		flights:  newFlightGroup(),
		metrics:  NewMetrics(),
		mux:      http.NewServeMux(),
		log:      log,
		tracer:   tracer,
		traces:   newTraceStore(cfg.MaxTraces),
		instance: obs.NewRunID(),
	}
	s.metrics.SetBuildInfo(version.Version, s.instance, runtime.GOMAXPROCS(0))
	s.shardsCompleted = s.metrics.Counter("rayschedd_shards_completed_total")
	s.sfShared = s.metrics.Counter("rayschedd_singleflight_shared_total")
	s.batchLines = s.metrics.Counter("rayschedd_batch_lines_total")
	s.batchLineErrors = s.metrics.Counter("rayschedd_batch_line_errors_total")
	s.metrics.Gauge("rayschedd_sessions_entries", func() float64 { return float64(s.sessions.Len()) })
	s.metrics.Gauge("rayschedd_session_hits_total", func() float64 { h, _, _ := s.sessions.Stats(); return float64(h) })
	s.metrics.Gauge("rayschedd_session_misses_total", func() float64 { _, m, _ := s.sessions.Stats(); return float64(m) })
	s.metrics.Gauge("rayschedd_session_evictions_total", func() float64 { _, _, e := s.sessions.Stats(); return float64(e) })
	s.metrics.Gauge("rayschedd_shards_inflight", func() float64 { return float64(s.shardsInflight.Load()) })
	s.metrics.Gauge("rayschedd_traces_retained", func() float64 { return float64(s.traces.len()) })
	s.metrics.Gauge("rayschedd_queue_depth", func() float64 { return float64(s.pool.QueueDepth()) })
	s.metrics.Gauge("rayschedd_in_flight", func() float64 { return float64(s.pool.InFlight()) })
	s.metrics.Gauge("rayschedd_cache_entries", func() float64 { return float64(s.cache.Len()) })
	s.metrics.Gauge("rayschedd_cache_hits_total", func() float64 { h, _ := s.cache.Stats(); return float64(h) })
	s.metrics.Gauge("rayschedd_cache_misses_total", func() float64 { _, m := s.cache.Stats(); return float64(m) })
	s.metrics.Gauge("rayschedd_cache_hit_ratio", func() float64 {
		h, m := s.cache.Stats()
		if h+m == 0 {
			return 0
		}
		return float64(h) / float64(h+m)
	})

	s.mux.HandleFunc("POST /v1/schedule", s.instrumented("/v1/schedule", s.handleSchedule))
	s.mux.HandleFunc("POST /v1/latency", s.instrumented("/v1/latency", s.handleLatency))
	s.mux.HandleFunc("POST /v1/reduce", s.instrumented("/v1/reduce", s.handleReduce))
	s.mux.HandleFunc("POST /v1/estimate", s.instrumented("/v1/estimate", s.handleEstimate))
	s.mux.HandleFunc("POST /v1/estimate/batch", s.instrumented("/v1/estimate/batch", s.handleEstimateBatch))
	s.mux.HandleFunc("POST /v1/topology", s.instrumented("/v1/topology", s.handleTopology))
	s.mux.HandleFunc("POST /v1/shard", s.instrumented("/v1/shard", s.handleShard))
	s.mux.HandleFunc("GET /v1/trace/{id}", s.instrumented("meta", s.handleTraceFetch))
	// The operational endpoints share one "meta" label: they must not be
	// invisible to the access log and request counters (a scraper hammering
	// /metrics is load too), but folding them into per-path labels would let
	// probe traffic drown the compute endpoints' latency histograms.
	s.mux.HandleFunc("GET /healthz", s.instrumented("meta", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.instrumented("meta", s.handleMetrics))
	if cfg.Debug {
		s.mux.HandleFunc("GET /debug/obs", s.instrumented("meta", s.handleDebugObs))
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close drains the worker pool: queued and in-flight jobs finish, new Do
// calls fail. Call it after http.Server.Shutdown has returned.
func (s *Server) Close() { s.pool.Close() }

// SetDraining toggles drain mode (see the draining field). Safe to call
// concurrently with requests; flipping back to false re-opens intake.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports whether drain mode is set.
func (s *Server) Draining() bool { return s.draining.Load() }

// Busy reports whether compute work is still queued or in flight — the
// condition a draining daemon waits to clear before exiting.
func (s *Server) Busy() bool {
	return s.pool.InFlight() > 0 || s.pool.QueueDepth() > 0
}

// statusWriter captures the status code for metrics, plus the pool
// admission facts serve() stashes for the access log and queue-wait
// histogram (pooled is false for cache hits and door rejections).
type statusWriter struct {
	http.ResponseWriter
	status    int
	wrote     bool // any part of the response sent — a late 500 is impossible
	queueWait time.Duration
	pooled    bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// instrumented wraps a handler with the per-request observability chain:
// it adopts the client's X-Request-ID when one arrives well-formed (so a
// retried request correlates to one ID in the access log) or mints one,
// echoes it, threads it through the request context for the compute layers'
// log records, opens a detached span when a tracer is installed, and on
// completion records the request counters, the latency and queue-wait
// histograms, and one access-log line.
//
// A request arriving with a valid X-Trace-Context header is additionally
// collected: its spans (the request span and every compute span started
// under it) record into the per-trace collector keyed by the header's trace
// ID instead of the server's own tracer, and the request span remembers the
// header's parent span as its remote parent. GET /v1/trace/{id} serializes
// the collection for the coordinator's merger.
func (s *Server) instrumented(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		reqID := r.Header.Get("X-Request-ID")
		if !validRequestID(reqID) {
			reqID = obs.NewRequestID()
		}
		w.Header().Set("X-Request-ID", reqID)
		ctx := obs.WithRunID(r.Context(), reqID)
		tracer := s.tracer
		var traceID string
		var remoteParent uint64
		if hv := r.Header.Get(obs.HeaderTraceContext); hv != "" && s.traces != nil {
			if tc, err := obs.ParseTraceContext(hv); err == nil {
				if per := s.traces.tracer(tc.TraceID); per != nil {
					tracer = per
					traceID = tc.TraceID
					remoteParent = tc.ParentID
				}
			}
		}
		var sp *obs.Span
		if tracer != nil {
			ctx = obs.WithTracer(ctx, tracer)
			// Detached: concurrent requests are siblings and must not share
			// a Chrome track; the scheduler spans they start nest under this
			// one via the span carried in ctx.
			ctx, sp = obs.StartDetached(ctx, "http."+endpoint)
			sp.SetAttr("request_id", reqID)
			sp.SetAttr("method", r.Method)
			if traceID != "" {
				sp.SetAttr("trace_id", traceID)
				sp.SetRemoteParent(remoteParent)
			}
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		// The accounting below runs in a defer so a panicking handler (a bug,
		// or an injected fault) is still counted, logged, and — when nothing
		// has been sent yet — answered with a JSON 500 instead of net/http
		// tearing down the connection. The daemon must stay up under faults.
		defer func() {
			if rec := recover(); rec != nil {
				if !sw.wrote {
					writeError(sw, fmt.Errorf("server: handler panic: %v", rec))
				} else {
					sw.status = http.StatusInternalServerError
				}
				s.log.Error("handler panic",
					"request_id", reqID, "endpoint", endpoint, "panic", fmt.Sprint(rec))
			}
			elapsed := time.Since(start)
			if sp != nil {
				sp.SetAttr("status", sw.status)
				if sw.pooled {
					// Queue-wait annotation: how long this request sat waiting
					// for a pool worker, visible on the span in merged traces.
					sp.SetAttr("queue_wait_us", sw.queueWait.Microseconds())
				}
				sp.End()
			}
			s.metrics.Observe(endpoint, sw.status, elapsed.Seconds())
			if sw.pooled {
				s.metrics.ObserveQueueWait(endpoint, sw.queueWait.Seconds())
			}
			s.log.Info("request",
				"request_id", reqID,
				"endpoint", endpoint,
				"method", r.Method,
				"status", sw.status,
				"duration", elapsed.Round(time.Microsecond).String(),
				"queue_wait", sw.queueWait.Round(time.Microsecond).String(),
			)
		}()
		// Drain gate: a draining daemon refuses new compute work with the
		// same retryable-outage contract as an injected 503, so a
		// coordinator's client backs off and tries another worker instead of
		// counting a lease failure. The refusal still flows through the
		// accounting defer above — drained requests are logged and counted.
		if r.Method == http.MethodPost && s.draining.Load() {
			sw.Header().Set("Retry-After", "1")
			writeError(sw, &httpError{status: http.StatusServiceUnavailable, msg: "server: draining"})
			return
		}
		h(sw, r.WithContext(ctx))
	}
}

// writeJSON writes body (already-marshaled JSON) with status.
func writeJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

// writeError maps err onto an HTTP status and a JSON error body.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var he *httpError
	switch {
	case errors.As(err, &he):
		status = he.status
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; the status is for the access log only.
		status = http.StatusGatewayTimeout
	case errors.Is(err, ErrQueueFull):
		status = http.StatusTooManyRequests
		// serve() sets a load-derived Retry-After before calling here; this
		// is only the fallback for paths that didn't.
		if w.Header().Get("Retry-After") == "" {
			w.Header().Set("Retry-After", "1")
		}
	case errors.Is(err, ErrPoolClosed):
		status = http.StatusServiceUnavailable
	case errors.Is(err, faults.ErrInjected):
		// Injected transient errors present as a retryable outage: the
		// contract the retrying client is tested against.
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	}
	body, merr := json.Marshal(errorBody{Error: err.Error()})
	if merr != nil {
		body = []byte(`{"error":"internal"}`)
	}
	writeJSON(w, status, body)
}

// retryAfter estimates how long a shed client should back off, in whole
// seconds: the queue backlog divided by the worker count (a crude jobs-per-
// worker proxy for drain time, since job durations vary by orders of
// magnitude), clamped to [1,30] so the hint is never zero and never tells a
// client to go away for minutes.
func (s *Server) retryAfter() string {
	depth := s.pool.QueueDepth()
	workers := s.pool.Workers()
	if workers < 1 {
		workers = 1
	}
	secs := (depth + workers - 1) / workers
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return strconv.Itoa(secs)
}

// deadline derives the request's compute context: the server default
// timeout, tightened (never widened beyond MaxTimeout) by timeout_ms.
func (s *Server) deadline(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
		if d > s.cfg.MaxTimeout {
			d = s.cfg.MaxTimeout
		}
	}
	return context.WithTimeout(r.Context(), d)
}

// Response sources: how respond produced a body. Hits replay the LRU,
// misses ran a fresh pool-admitted compute, shared joined another request's
// in-flight computation.
const (
	sourceHit    = "hit"
	sourceMiss   = "miss"
	sourceShared = "shared"
)

// computeOutcome describes how one response body was produced: the bytes,
// the pool admission facts (for the queue-wait histogram), and the source.
type computeOutcome struct {
	body   []byte
	wait   time.Duration
	pooled bool
	source string
}

// respond resolves one canonical request key into response bytes: LRU
// lookup, then singleflight join (followers share the leader's bytes), then
// a fresh pool-admitted, deadline-bounded compute whose marshaled result
// fills the cache. It is the shared core of the single-request pipeline
// (serve) and the NDJSON batch loop, so both paths produce byte-identical
// bodies for identical keys by construction.
//
// The leader's computation runs detached from its own request's
// cancellation (bounded by the same deadline): followers still want the
// result if the leader's client disconnects, and the bytes land in the
// cache either way.
func (s *Server) respond(ctx context.Context, key string, compute func(ctx context.Context) (any, error)) (computeOutcome, error) {
	if body, ok := s.cache.Get(key); ok {
		return computeOutcome{body: body, source: sourceHit}, nil
	}
	fl, leader := s.flights.join(key)
	if !leader {
		select {
		case <-fl.done:
		case <-ctx.Done():
			return computeOutcome{source: sourceShared}, ctx.Err()
		}
		if fl.err != nil {
			return computeOutcome{source: sourceShared}, fl.err
		}
		s.sfShared.Add(1)
		return computeOutcome{body: fl.body, source: sourceShared}, nil
	}
	cctx := context.WithoutCancel(ctx)
	if dl, ok := ctx.Deadline(); ok {
		var cancel context.CancelFunc
		cctx, cancel = context.WithDeadline(cctx, dl)
		defer cancel()
	}
	var (
		body       []byte
		computeErr error
	)
	wait, err := s.pool.DoTimed(cctx, func(ctx context.Context) {
		resp, cerr := compute(ctx)
		if cerr != nil {
			computeErr = cerr
			return
		}
		b, merr := json.Marshal(resp)
		if merr != nil {
			computeErr = merr
			return
		}
		body = b
	})
	out := computeOutcome{
		wait:   wait,
		source: sourceMiss,
		pooled: !errors.Is(err, ErrQueueFull) && !errors.Is(err, ErrPoolClosed),
	}
	if err == nil {
		err = computeErr
	}
	if err != nil {
		s.flights.finish(key, fl, nil, err)
		return out, err
	}
	// Fill the cache before releasing the flight so a request landing in
	// between finds the bytes in the LRU instead of recomputing.
	s.cache.Put(key, body)
	s.flights.finish(key, fl, body, nil)
	out.body = body
	return out, nil
}

// serve is the shared request pipeline behind the compute endpoints:
// cache lookup on the canonical key, singleflight join, pool admission
// (429 on overflow), deadline-bounded compute, response marshaling, cache
// fill. compute runs on a pool worker.
func (s *Server) serve(w http.ResponseWriter, r *http.Request, endpoint string, params any,
	topology []byte, timeoutMS int64, compute func(ctx context.Context) (any, error)) {
	// Chaos hook: a transient error here answers 503 + Retry-After (the
	// retryable-outage contract); an injected panic is recovered by the
	// instrumented wrapper into a JSON 500. Free when no injector is set.
	if err := faults.Inject(faults.SiteHandler); err != nil {
		writeError(w, err)
		return
	}
	key := requestKey(endpoint, params, topology)
	ctx, cancel := s.deadline(r, timeoutMS)
	defer cancel()
	out, err := s.respond(ctx, key, compute)
	if sw, ok := w.(*statusWriter); ok {
		sw.queueWait = out.wait
		sw.pooled = out.pooled
	}
	if err != nil {
		if errors.Is(err, ErrQueueFull) {
			s.metrics.ObserveShed(endpoint)
			w.Header().Set("Retry-After", s.retryAfter())
		}
		writeError(w, err)
		return
	}
	if out.source == sourceShared {
		// Shared responses are misses from the cache's point of view; the
		// extra header is what lets clients (and tests) see the collapse.
		w.Header().Set("X-Singleflight", "shared")
		w.Header().Set("X-Cache", sourceMiss)
	} else {
		w.Header().Set("X-Cache", out.source)
	}
	writeJSON(w, http.StatusOK, out.body)
}

// ---- endpoint handlers ----------------------------------------------------

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	var req scheduleRequest
	if err := decodeJSON(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeError(w, err)
		return
	}
	net, canon, err := s.resolveTopology(req.Network, req.TopologyRef)
	if err != nil {
		writeError(w, err)
		return
	}
	p := scheduleParams{Algorithm: req.Algorithm, Beta: req.Beta}
	if p.Algorithm == "" {
		p.Algorithm = "greedy"
	}
	if p.Beta == 0 {
		p.Beta = 2.5
	}
	if err := validateBeta(p.Beta); err != nil {
		writeError(w, err)
		return
	}
	switch p.Algorithm {
	case "greedy", "weighted", "powercontrol":
	default:
		writeError(w, badRequest("unknown algorithm %q (want greedy, weighted, or powercontrol)", p.Algorithm))
		return
	}
	s.serve(w, r, "/v1/schedule", p, canon, req.TimeoutMS, func(ctx context.Context) (any, error) {
		return computeSchedule(ctx, p, net)
	})
}

func (s *Server) handleLatency(w http.ResponseWriter, r *http.Request) {
	var req latencyRequest
	if err := decodeJSON(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeError(w, err)
		return
	}
	net, canon, err := s.resolveTopology(req.Network, req.TopologyRef)
	if err != nil {
		writeError(w, err)
		return
	}
	p := latencyParams{
		Scheduler: req.Scheduler, Model: req.Model, Beta: req.Beta,
		Prob: req.Prob, MaxSlots: req.MaxSlots, Seed: req.Seed,
	}
	if p.Scheduler == "" {
		p.Scheduler = "repeated"
	}
	if p.Model == "" {
		p.Model = "nonfading"
	}
	if p.Beta == 0 {
		p.Beta = 2.5
	}
	if p.Prob == 0 {
		p.Prob = 0.1
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if err := validateBeta(p.Beta); err != nil {
		writeError(w, err)
		return
	}
	switch p.Scheduler {
	case "repeated", "aloha":
	default:
		writeError(w, badRequest("unknown scheduler %q (want repeated or aloha)", p.Scheduler))
		return
	}
	switch p.Model {
	case "nonfading", "rayleigh":
	default:
		writeError(w, badRequest("unknown model %q (want nonfading or rayleigh)", p.Model))
		return
	}
	if p.Prob < 0 || p.Prob > 1 {
		writeError(w, badRequest("prob %g outside (0,1]", p.Prob))
		return
	}
	if p.MaxSlots < 0 {
		writeError(w, badRequest("max_slots must be non-negative"))
		return
	}
	s.serve(w, r, "/v1/latency", p, canon, req.TimeoutMS, func(ctx context.Context) (any, error) {
		return computeLatency(ctx, p, net)
	})
}

func (s *Server) handleReduce(w http.ResponseWriter, r *http.Request) {
	var req reduceRequest
	if err := decodeJSON(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeError(w, err)
		return
	}
	net, canon, err := s.resolveTopology(req.Network, req.TopologyRef)
	if err != nil {
		writeError(w, err)
		return
	}
	p := reduceParams{Beta: req.Beta, Prob: req.Prob, Samples: req.Samples, Seed: req.Seed}
	if p.Beta == 0 {
		p.Beta = 2.5
	}
	if p.Prob == 0 {
		p.Prob = 0.5
	}
	if p.Samples == 0 {
		p.Samples = 200
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if err := validateBeta(p.Beta); err != nil {
		writeError(w, err)
		return
	}
	if err := validateProb(p.Prob); err != nil {
		writeError(w, err)
		return
	}
	if err := validateSamples(p.Samples, s.cfg.MaxSamples); err != nil {
		writeError(w, err)
		return
	}
	s.serve(w, r, "/v1/reduce", p, canon, req.TimeoutMS, func(ctx context.Context) (any, error) {
		return computeReduce(ctx, p, net)
	})
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var req estimateRequest
	if err := decodeJSON(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeError(w, err)
		return
	}
	net, canon, err := s.resolveTopology(req.Network, req.TopologyRef)
	if err != nil {
		writeError(w, err)
		return
	}
	p, err := s.estimateParamsFrom(&req)
	if err != nil {
		writeError(w, err)
		return
	}
	s.serve(w, r, "/v1/estimate", p, canon, req.TimeoutMS, func(ctx context.Context) (any, error) {
		return computeEstimate(ctx, p, net)
	})
}

// estimateParamsFrom applies the /v1/estimate defaults and validation to one
// decoded request. It is shared by the single-request handler and the NDJSON
// batch loop so a batch line and a lone request with the same fields always
// produce the same defaults-applied params — and therefore the same cache
// key and response bytes.
func (s *Server) estimateParamsFrom(req *estimateRequest) (estimateParams, error) {
	p := estimateParams{Beta: req.Beta, Prob: req.Prob, Samples: req.Samples, Seed: req.Seed}
	if p.Beta == 0 {
		p.Beta = 2.5
	}
	if p.Prob == 0 {
		p.Prob = 0.5
	}
	if p.Samples == 0 {
		p.Samples = 1000
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if err := validateBeta(p.Beta); err != nil {
		return p, err
	}
	if err := validateProb(p.Prob); err != nil {
		return p, err
	}
	if err := validateSamples(p.Samples, s.cfg.MaxSamples); err != nil {
		return p, err
	}
	return p, nil
}

// handleTopology registers a topology session: the request body is a netio
// topology document (the same JSON that goes in a compute request's
// "network" field), and the response carries its content-derived session
// handle. Re-uploading an already-registered topology is cheap and
// idempotent ("created": false) — clients recover from evictions by
// re-posting.
func (s *Server) handleTopology(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, &httpError{status: http.StatusRequestEntityTooLarge,
				msg: fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit)})
			return
		}
		writeError(w, badRequest("read body: %v", err))
		return
	}
	net, canon, err := parseTopology(raw, s.cfg.MaxLinks)
	if err != nil {
		writeError(w, err)
		return
	}
	ref, created, err := s.sessions.Put(canon, net)
	if err != nil {
		writeError(w, &httpError{status: http.StatusServiceUnavailable, msg: err.Error()})
		return
	}
	body, err := json.Marshal(topologyResponse{
		TopologyRef: ref,
		Links:       net.N(),
		Created:     created,
	})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	body, _ := json.Marshal(healthResponse{
		Status:          status,
		Version:         version.Version,
		Instance:        s.instance,
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		ShardsInflight:  s.shardsInflight.Load(),
		ShardsCompleted: s.shardsCompleted.Load(),
	})
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WriteTo(w)
}

// debugObsResponse is the GET /debug/obs body: the counter registry behind
// /metrics plus the tracer's retained spans — the JSON face of the same
// state the Prometheus page renders as text.
type debugObsResponse struct {
	Counters      map[string]int64 `json:"counters"`
	SpansRecorded uint64           `json:"spans_recorded"`
	RecentSpans   []obs.SpanRecord `json:"recent_spans"`
}

func (s *Server) handleDebugObs(w http.ResponseWriter, r *http.Request) {
	resp := debugObsResponse{
		Counters:      s.metrics.Registry().Snapshot(),
		SpansRecorded: s.tracer.Recorded(),
		RecentSpans:   s.tracer.Snapshot(),
	}
	body, err := json.MarshalIndent(resp, "", " ")
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// ---- shared validation -----------------------------------------------------

func validateBeta(beta float64) error {
	if !(beta > 0) || beta != beta {
		return badRequest("beta %g must be positive", beta)
	}
	return nil
}

func validateProb(p float64) error {
	if !(p > 0) || p > 1 {
		return badRequest("prob %g outside (0,1]", p)
	}
	return nil
}

func validateSamples(n, max int) error {
	if n < 1 || n > max {
		return badRequest("samples %d outside [1,%d]", n, max)
	}
	return nil
}
