package server

import (
	"bytes"
	"net/http"
	"testing"
)

// TestBenchTopologyDeterministic: same inputs, byte-identical payload —
// the property the cache-hit bench scenario depends on.
func TestBenchTopologyDeterministic(t *testing.T) {
	a, err := BenchTopology(20, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BenchTopology(20, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("BenchTopology is not deterministic")
	}
	c, err := BenchTopology(20, 8)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical topologies")
	}
}

// TestBenchRequestsAreServable posts the bench-built bodies at a live
// server and requires 200s — the contract that keeps throughput scenarios
// measuring compute, not error paths.
func TestBenchRequestsAreServable(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	topo, err := BenchTopology(20, 1)
	if err != nil {
		t.Fatal(err)
	}
	est, err := BenchEstimateRequest(topo, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if resp, body := post(t, ts, "/v1/estimate", est); resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/estimate: %d: %s", resp.StatusCode, body)
	}
	sched, err := BenchScheduleRequest(topo, "")
	if err != nil {
		t.Fatal(err)
	}
	if resp, body := post(t, ts, "/v1/schedule", sched); resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/schedule: %d: %s", resp.StatusCode, body)
	}
}
