package server

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsJobs(t *testing.T) {
	p := NewPool(2, 4)
	defer p.Close()
	var ran atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Do(context.Background(), func(context.Context) { ran.Add(1) }); err != nil &&
				!errors.Is(err, ErrQueueFull) {
				t.Errorf("Do: %v", err)
			}
		}()
	}
	wg.Wait()
	if ran.Load() == 0 {
		t.Fatal("no jobs ran")
	}
}

func TestPoolQueueFull(t *testing.T) {
	p := NewPool(1, 1) // one worker, one queue slot
	defer p.Close()
	block := make(chan struct{})
	started := make(chan struct{})
	go p.Do(context.Background(), func(context.Context) {
		close(started)
		<-block
	})
	<-started
	// The worker is now inside the first job, so the second lands in the
	// queue's single slot.
	go p.Do(context.Background(), func(context.Context) {})
	for p.QueueDepth() != 1 {
		time.Sleep(time.Millisecond)
	}
	// Worker busy and queue full: admission must fail fast, not block.
	err := p.Do(context.Background(), func(context.Context) {})
	close(block)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("got %v, want ErrQueueFull", err)
	}
}

func TestPoolClosed(t *testing.T) {
	p := NewPool(1, 1)
	p.Close()
	p.Close() // idempotent
	if err := p.Do(context.Background(), func(context.Context) {}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("got %v, want ErrPoolClosed", err)
	}
}

func TestPoolRecoversPanic(t *testing.T) {
	p := NewPool(1, 1)
	defer p.Close()
	err := p.Do(context.Background(), func(context.Context) { panic("kaboom") })
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("got %v, want recovered panic", err)
	}
	// The worker survived the panic and still serves.
	if err := p.Do(context.Background(), func(context.Context) {}); err != nil {
		t.Fatalf("worker died after panic: %v", err)
	}
}

func TestPoolSkipsExpiredQueuedJob(t *testing.T) {
	p := NewPool(1, 1)
	defer p.Close()
	block := make(chan struct{})
	started := make(chan struct{})
	go p.Do(context.Background(), func(context.Context) {
		close(started)
		<-block
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		errc <- p.Do(ctx, func(context.Context) {
			t.Error("expired job must not run")
		})
	}()
	// Let the job land in the queue, expire it, then free the worker.
	time.Sleep(20 * time.Millisecond)
	cancel()
	close(block)
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestPoolCloseDrains(t *testing.T) {
	p := NewPool(2, 8)
	var ran atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Do(context.Background(), func(context.Context) {
				time.Sleep(5 * time.Millisecond)
				ran.Add(1)
			})
		}()
	}
	time.Sleep(10 * time.Millisecond)
	p.Close() // must wait for queued + in-flight jobs
	wg.Wait()
	if got := p.InFlight(); got != 0 {
		t.Fatalf("in-flight after Close: %d", got)
	}
}
