package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rayfade/internal/faults"
)

// postBatch sends an NDJSON body to /v1/estimate/batch and returns the
// response plus its non-empty lines.
func postBatch(t *testing.T, ts *httptest.Server, body []byte) (*http.Response, [][]byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/estimate/batch", "application/x-ndjson", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	var lines [][]byte
	for _, line := range bytes.Split(out.Bytes(), []byte{'\n'}) {
		if len(bytes.TrimSpace(line)) > 0 {
			lines = append(lines, line)
		}
	}
	return resp, lines
}

// ndjson joins request documents into one NDJSON body.
func ndjson(docs ...[]byte) []byte {
	var buf bytes.Buffer
	for _, d := range docs {
		buf.Write(d)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// TestBatchByteIdenticalToSingle is the acceptance check: every success line
// of a batch must be byte-identical to the /v1/estimate response for the
// same request — whichever path computed first, and whether the topology is
// inline or a session ref.
func TestBatchByteIdenticalToSingle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	topo := testTopology(t, 12, 1)
	up := uploadTopology(t, ts, topo)

	var docs [][]byte
	var singles [][]byte
	// Seeds 1,2: single endpoint computes first (batch replays the cache).
	// Seeds 3,4: batch computes first (single replays). Even seeds ride the
	// session ref; odd carry the inline topology.
	for seed := 1; seed <= 2; seed++ {
		resp, body := post(t, ts, "/v1/estimate", reqBody(t, topo, map[string]any{"samples": 30, "seed": seed}))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("single seed %d: status %d: %s", seed, resp.StatusCode, body)
		}
		singles = append(singles, body)
	}
	for seed := 1; seed <= 4; seed++ {
		var doc []byte
		if seed%2 == 0 {
			doc, _ = json.Marshal(map[string]any{"topology_ref": up.TopologyRef, "samples": 30, "seed": seed})
		} else {
			doc = reqBody(t, topo, map[string]any{"samples": 30, "seed": seed})
		}
		docs = append(docs, doc)
	}
	resp, lines := postBatch(t, ts, ndjson(docs...))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != "application/x-ndjson" {
		t.Fatalf("batch content type %q", got)
	}
	if len(lines) != 4 {
		t.Fatalf("%d lines, want 4", len(lines))
	}
	for i, body := range singles {
		if !bytes.Equal(lines[i], body) {
			t.Fatalf("batch line %d differs from earlier single response:\n%s\nvs\n%s", i, lines[i], body)
		}
	}
	// Seeds 3,4 computed in the batch; the single endpoint must replay them
	// byte-identically.
	for seed := 3; seed <= 4; seed++ {
		resp, body := post(t, ts, "/v1/estimate", reqBody(t, topo, map[string]any{"samples": 30, "seed": seed}))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("single seed %d after batch: status %d: %s", seed, resp.StatusCode, body)
		}
		if !bytes.Equal(lines[seed-1], body) {
			t.Fatalf("single seed %d differs from batch line:\n%s\nvs\n%s", seed, body, lines[seed-1])
		}
	}
}

// TestBatchErrorLineDoesNotAbort: a malformed line answers an error document
// in place and the remaining lines are still served; the line counters
// account for both.
func TestBatchErrorLineDoesNotAbort(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	topo := testTopology(t, 10, 1)
	good1 := reqBody(t, topo, map[string]any{"samples": 20, "seed": 1})
	good2 := reqBody(t, topo, map[string]any{"samples": 20, "seed": 2})

	resp, lines := postBatch(t, ts, ndjson(good1, []byte(`{"not a field": true}`), good2))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(lines) != 3 {
		t.Fatalf("%d lines, want 3", len(lines))
	}
	for _, i := range []int{0, 2} {
		var out estimateResponse
		if err := json.Unmarshal(lines[i], &out); err != nil || out.Samples != 20 {
			t.Fatalf("line %d not a success body: %s", i, lines[i])
		}
	}
	var eb errorBody
	if err := json.Unmarshal(lines[1], &eb); err != nil || !strings.Contains(eb.Error, "decode line") {
		t.Fatalf("line 1 not the decode error: %s", lines[1])
	}
	if got := s.batchLines.Load(); got != 3 {
		t.Fatalf("rayschedd_batch_lines_total %d, want 3", got)
	}
	if got := s.batchLineErrors.Load(); got != 1 {
		t.Fatalf("rayschedd_batch_line_errors_total %d, want 1", got)
	}
}

func TestBatchEmptyBodyRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, body := range [][]byte{nil, []byte("\n\n  \n")} {
		resp, lines := postBatch(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("empty batch: status %d: %v", resp.StatusCode, lines)
		}
	}
}

// TestBatchLineLimit: lines beyond MaxBatchLines answer one error line and
// end the stream — the already-served prefix is not thrown away, and the
// daemon does not chew through an unbounded tail.
func TestBatchLineLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatchLines: 2})
	topo := testTopology(t, 10, 1)
	var docs [][]byte
	for seed := 1; seed <= 4; seed++ {
		docs = append(docs, reqBody(t, topo, map[string]any{"samples": 10, "seed": seed}))
	}
	resp, lines := postBatch(t, ts, ndjson(docs...))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(lines) != 3 {
		t.Fatalf("%d lines, want 2 successes + 1 limit error", len(lines))
	}
	var eb errorBody
	if err := json.Unmarshal(lines[2], &eb); err != nil || !strings.Contains(eb.Error, "2 lines") {
		t.Fatalf("final line not the limit error: %s", lines[2])
	}
}

// TestBatchPerLineFault: armed handler faults hit individual batch lines;
// the injected failures surface as in-band error documents while the other
// lines succeed, byte-identical to their single-endpoint equivalents.
func TestBatchPerLineFault(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	topo := testTopology(t, 10, 3)
	const n = 12
	var docs [][]byte
	for seed := 1; seed <= n; seed++ {
		docs = append(docs, reqBody(t, topo, map[string]any{"samples": 10, "seed": seed}))
	}
	withFaults(t, "seed=11,server.handler=error:0.4")
	resp, lines := postBatch(t, ts, ndjson(docs...))
	if resp.StatusCode == http.StatusServiceUnavailable {
		// The request-level injection point fired before any line ran;
		// legitimate, but not the path under test here.
		t.Skip("whole-batch fault fired at admission")
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(lines) != n {
		t.Fatalf("%d lines, want %d", len(lines), n)
	}
	var ok, failed int
	for i, line := range lines {
		var eb errorBody
		if err := json.Unmarshal(line, &eb); err == nil && eb.Error != "" {
			failed++
			continue
		}
		var out estimateResponse
		if err := json.Unmarshal(line, &out); err != nil {
			t.Fatalf("line %d neither error nor estimate: %s", i, line)
		}
		ok++
	}
	if ok == 0 || failed == 0 {
		t.Fatalf("fault schedule produced %d successes and %d failures; want a mix", ok, failed)
	}
	// Disarm and verify a faulted line's request now succeeds with the same
	// bytes the single endpoint serves.
	faults.SetDefault(nil)
	resp2, lines2 := postBatch(t, ts, ndjson(docs[0]))
	if resp2.StatusCode != http.StatusOK || len(lines2) != 1 {
		t.Fatalf("clean re-batch: status %d, %d lines", resp2.StatusCode, len(lines2))
	}
	respS, single := post(t, ts, "/v1/estimate", docs[0])
	if respS.StatusCode != http.StatusOK {
		t.Fatalf("single: status %d: %s", respS.StatusCode, single)
	}
	if !bytes.Equal(lines2[0], single) {
		t.Fatalf("batch line differs from single after faults cleared:\n%s\nvs\n%s", lines2[0], single)
	}
}
