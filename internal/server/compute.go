package server

import (
	"context"
	"errors"
	"math"

	"rayfade/internal/capacity"
	"rayfade/internal/fading"
	"rayfade/internal/latency"
	"rayfade/internal/network"
	"rayfade/internal/rng"
	"rayfade/internal/stats"
	"rayfade/internal/transform"
	"rayfade/internal/utility"
)

// The compute functions below are the service's business logic: pure,
// deterministic functions from (parsed request, topology) to a response
// struct. They run on pool workers with the request's deadline-carrying
// context and poll it through the Ctx variants of the compute layers, so a
// deadline or client disconnect stops the work instead of burning a worker.

func computeSchedule(ctx context.Context, p scheduleParams, net *network.Network) (*scheduleResponse, error) {
	m := net.Gains()
	resp := &scheduleResponse{Algorithm: p.Algorithm, Links: m.N, Beta: p.Beta}
	switch p.Algorithm {
	case "greedy":
		set, err := capacity.GreedyAffectanceCtx(ctx, m, p.Beta, capacity.DefaultTau, capacity.LengthOrder(net))
		if err != nil {
			return nil, err
		}
		resp.Set = set
		resp.Value = float64(len(set))
		resp.ExpectedRayleigh = fading.ExpectedBinaryValueOfSet(m, set, p.Beta)
	case "weighted":
		set, err := capacity.GreedyAffectanceCtx(ctx, m, p.Beta, capacity.DefaultTau, capacity.WeightOrder(m))
		if err != nil {
			return nil, err
		}
		resp.Set = set
		for _, i := range set {
			resp.Value += m.Weights[i]
		}
		resp.ExpectedRayleigh = fading.ExpectedBinaryValueOfSet(m, set, p.Beta)
	case "powercontrol":
		pc, err := capacity.PowerControlGreedyCtx(ctx, net, p.Beta)
		if err != nil {
			return nil, err
		}
		resp.Set = pc.Set
		resp.Value = float64(len(pc.Set))
		resp.Powers = pc.Powers
		// Evaluate the fading expectation under the certified powers, not
		// the input powers the solution replaced.
		resp.ExpectedRayleigh = fading.ExpectedBinaryValueOfSet(pc.ApplyPowers(net).Gains(), pc.Set, p.Beta)
	default:
		return nil, badRequest("unknown algorithm %q (want greedy, weighted, or powercontrol)", p.Algorithm)
	}
	if resp.Set == nil {
		resp.Set = []int{} // render [] rather than null
	}
	resp.Size = len(resp.Set)
	resp.Lemma2Floor = resp.Value * transform.LossFactor
	return resp, nil
}

func computeLatency(ctx context.Context, p latencyParams, net *network.Network) (*latencyResponse, error) {
	m := net.Gains()
	resp := &latencyResponse{
		Scheduler: p.Scheduler, Model: p.Model, Links: m.N,
		Beta: p.Beta, Seed: p.Seed, Repeats: 1,
	}
	if p.Model == "rayleigh" {
		resp.Repeats = transform.AlohaRepeats
	}
	src := rng.New(p.Seed)
	switch p.Scheduler {
	case "repeated":
		capFn := latency.GreedyCapacity(capacity.LengthOrder(net), capacity.DefaultTau)
		sched, err := latency.RepeatedCapacityCtx(ctx, m, p.Beta, capFn)
		if err != nil {
			if errors.Is(err, latency.ErrUnschedulable) {
				return nil, unprocessable("%v", err)
			}
			return nil, err
		}
		resp.Schedule = sched
		switch p.Model {
		case "nonfading":
			resp.Slots, resp.Done = len(sched), true
		case "rayleigh":
			maxRounds := p.MaxSlots
			if maxRounds <= 0 {
				maxRounds = 10000
			}
			slots, done, err := latency.RepeatUntilDoneCtx(ctx, m, sched, p.Beta,
				transform.AlohaRepeats, maxRounds, latency.NewRayleigh(src, m.N))
			if err != nil {
				return nil, err
			}
			resp.Slots, resp.Done = slots, done
		}
	case "aloha":
		cfg := latency.AlohaConfig{Prob: p.Prob, MaxSlots: p.MaxSlots, Repeats: resp.Repeats}
		var model latency.SuccessModel = latency.NonFading{}
		if p.Model == "rayleigh" {
			model = latency.NewRayleigh(src.Split(), m.N)
		}
		res, err := latency.AlohaCtx(ctx, m, p.Beta, cfg, src, model)
		if err != nil {
			return nil, err
		}
		resp.Slots, resp.Done = res.Slots, res.Done
	}
	return resp, nil
}

func computeReduce(ctx context.Context, p reduceParams, net *network.Network) (*reduceResponse, error) {
	m := net.Gains()
	q := fading.UniformProbs(m.N, p.Prob)
	steps := transform.Schedule(q, transform.ScheduleRepeats)
	best, all, err := transform.BestStepCtx(ctx, m, steps,
		utility.Uniform(utility.Binary{Beta: p.Beta}), p.Samples, rng.New(p.Seed))
	if err != nil {
		return nil, err
	}
	resp := &reduceResponse{
		Links: m.N, Beta: p.Beta, Prob: p.Prob, Seed: p.Seed,
		Levels:        len(steps),
		LogStar:       stats.LogStar(float64(m.N)),
		TotalSlots:    transform.TotalSlots(steps),
		BestLevel:     best.Step.Level,
		BestValue:     best.Value.Mean,
		RayleighExact: fading.ExpectedSuccessesExact(m, q, p.Beta),
	}
	for _, sv := range all {
		resp.Steps = append(resp.Steps, reduceStep{
			Level:       sv.Step.Level,
			B:           sv.Step.B,
			Repeats:     sv.Step.Repeats,
			ValueMean:   sv.Value.Mean,
			ValueStderr: sv.Value.StdErr,
		})
	}
	if resp.BestValue > 0 {
		resp.Ratio = resp.RayleighExact / resp.BestValue
	}
	return resp, nil
}

// estimateCtxStride is how many Monte-Carlo samples run between context
// polls in computeEstimate.
const estimateCtxStride = 64

func computeEstimate(ctx context.Context, p estimateParams, net *network.Network) (*estimateResponse, error) {
	m := net.Gains()
	q := fading.UniformProbs(m.N, p.Prob)
	src := rng.New(p.Seed)
	// Allocation-free sampling: one set of kernel scratch buffers for the
	// whole request, the SampleSINRsInto convention.
	active := make([]bool, m.N)
	vals := make([]float64, m.N)
	idx := make([]int, 0, m.N)
	var sum, sumSq float64
	for s := 0; s < p.Samples; s++ {
		if s%estimateCtxStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		for i := range active {
			active[i] = src.Bernoulli(q[i])
		}
		c := float64(fading.CountSuccesses(m, active, p.Beta, src, vals, idx))
		sum += c
		sumSq += c * c
	}
	n := float64(p.Samples)
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return &estimateResponse{
		Links: m.N, Beta: p.Beta, Prob: p.Prob, Seed: p.Seed, Samples: p.Samples,
		Mean:   mean,
		Stderr: math.Sqrt(variance / n),
		Exact:  fading.ExpectedSuccessesExact(m, q, p.Beta),
	}, nil
}
