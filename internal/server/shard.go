package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"rayfade/internal/sim"
	"rayfade/internal/stats"
)

// POST /v1/shard computes replications [lo, hi) of a Monte-Carlo experiment
// and answers with the shard wire document (internal/sim shard format: the
// checksummed {body, sha256} envelope carrying the range header and the
// encoded per-replication results). A cluster coordinator fans a run's
// replication index space across several rayschedd workers through this
// endpoint and merges the documents into a checkpoint the single-node
// pipeline replays byte-identically.
//
// The request and config structs are exported so the coordinator side
// (internal/dist, cmd/raysched cluster) builds requests against the same
// schema the handler decodes — one definition, no wire drift.

// Figure1ShardConfig is the wire form of the Figure-1 experiment parameters:
// exactly the determinism-relevant knobs the CLI exposes. The probability
// grid travels as a point count (expanded to the standard Linspace grid on
// both sides) rather than raw floats, so no float formatting can perturb the
// run identity. Zero fields take the paper defaults, as everywhere else.
type Figure1ShardConfig struct {
	Networks      int    `json:"networks"`
	Links         int    `json:"links,omitempty"`
	TransmitSeeds int    `json:"transmit_seeds,omitempty"`
	FadingSeeds   int    `json:"fading_seeds,omitempty"`
	Points        int    `json:"points,omitempty"`
	Seed          uint64 `json:"seed,omitempty"`
	Topology      string `json:"topology,omitempty"`
}

// SimConfig expands the wire config into the sim-layer config, the same way
// the figure1 CLI does. Worker parallelism is pinned to 1: the daemon's pool
// already runs shards concurrently, and nested fan-out would oversubscribe
// the machine.
func (c Figure1ShardConfig) SimConfig() sim.Figure1Config {
	cfg := sim.Figure1Config{
		Networks:      c.Networks,
		Links:         c.Links,
		TransmitSeeds: c.TransmitSeeds,
		FadingSeeds:   c.FadingSeeds,
		Seed:          c.Seed,
		Topology:      c.Topology,
		Workers:       1,
	}
	if c.Points > 0 {
		cfg.Probs = stats.Linspace(0.05, 1.0, c.Points)
	}
	return cfg
}

// ShardRequest is the POST /v1/shard body.
type ShardRequest struct {
	// Experiment names the experiment; only sim.ExperimentFigure1 exists.
	Experiment string `json:"experiment"`
	// Lo, Hi bound the replication range [lo, hi) this worker computes.
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Figure1 carries the experiment parameters when Experiment is "figure1".
	Figure1   *Figure1ShardConfig `json:"figure1,omitempty"`
	TimeoutMS int64               `json:"timeout_ms,omitempty"`
}

// shardParams is the defaults-applied cache-key payload of /v1/shard. The
// config hash folds in every determinism-relevant parameter, so (hash, range)
// identifies the result bytes exactly.
type shardParams struct {
	Experiment string `json:"experiment"`
	ConfigSHA  string `json:"config_sha256"`
	Lo         int    `json:"lo"`
	Hi         int    `json:"hi"`
}

func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	var req ShardRequest
	if err := decodeJSON(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeError(w, err)
		return
	}
	if req.Experiment != sim.ExperimentFigure1 {
		writeError(w, badRequest("unknown experiment %q (want %q)", req.Experiment, sim.ExperimentFigure1))
		return
	}
	if req.Figure1 == nil {
		writeError(w, badRequest("missing \"figure1\" experiment config"))
		return
	}
	if req.Figure1.Networks < 1 {
		writeError(w, badRequest("networks %d must be at least 1", req.Figure1.Networks))
		return
	}
	if req.Figure1.Points < 0 || req.Figure1.Points == 1 {
		writeError(w, badRequest("points %d must be 0 (default grid) or at least 2", req.Figure1.Points))
		return
	}
	if s.cfg.MaxLinks > 0 && req.Figure1.Links > s.cfg.MaxLinks {
		writeError(w, &httpError{status: http.StatusRequestEntityTooLarge,
			msg: fmt.Sprintf("links %d, limit is %d", req.Figure1.Links, s.cfg.MaxLinks)})
		return
	}
	if req.Lo < 0 || req.Hi > req.Figure1.Networks || req.Lo >= req.Hi {
		writeError(w, badRequest("shard range [%d,%d) outside [0,%d)", req.Lo, req.Hi, req.Figure1.Networks))
		return
	}
	cfg := req.Figure1.SimConfig()
	sha, err := sim.Figure1ConfigSHA(cfg)
	if err != nil {
		writeError(w, err)
		return
	}
	// The range header rides on every response (including cache hits), so a
	// coordinator can sanity-check a reply against the shard it asked for
	// before even decoding the document.
	w.Header().Set("X-Shard-Range", fmt.Sprintf("%d-%d", req.Lo, req.Hi))
	p := shardParams{Experiment: req.Experiment, ConfigSHA: sha, Lo: req.Lo, Hi: req.Hi}
	s.serve(w, r, "/v1/shard", p, nil, req.TimeoutMS, func(ctx context.Context) (any, error) {
		s.shardsInflight.Add(1)
		defer s.shardsInflight.Add(-1)
		sh, err := sim.RunFigure1ShardCtx(ctx, cfg, req.Lo, req.Hi)
		if err != nil {
			return nil, err
		}
		doc, err := sh.Encode()
		if err != nil {
			return nil, err
		}
		s.shardsCompleted.Add(1)
		// Already-marshaled JSON: serve's json.Marshal passes it through
		// verbatim, so the wire bytes are exactly the sealed document.
		return json.RawMessage(doc), nil
	})
}
