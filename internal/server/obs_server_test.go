package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"testing"

	"rayfade/internal/obs"
)

// TestMetaEndpointLabel: /healthz and /metrics must not bypass the request
// accounting — they record under the shared "meta" label, separate from the
// compute endpoints' histograms.
func TestMetaEndpointLabel(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	var sb strings.Builder
	if _, err := s.metrics.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// The second /metrics scrape above ran before its own Observe fired, so
	// the render sees healthz plus the first scrape... both under "meta".
	if !strings.Contains(out, `rayschedd_requests_total{endpoint="meta",code="200"}`) {
		t.Fatalf("meta endpoint label missing from metrics:\n%s", out)
	}
	if strings.Contains(out, `endpoint="/healthz"`) || strings.Contains(out, `endpoint="/metrics"`) {
		t.Fatalf("operational endpoints must fold into the meta label:\n%s", out)
	}
}

// TestRequestIDHeader: every response carries a unique X-Request-ID.
func TestRequestIDHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		id := resp.Header.Get("X-Request-ID")
		if id == "" {
			t.Fatal("missing X-Request-ID header")
		}
		if seen[id] {
			t.Fatalf("duplicate request id %q", id)
		}
		seen[id] = true
	}
}

// TestAccessLog: a configured logger receives one record per request with
// the endpoint, status, and request id fields.
func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	log := slog.New(slog.NewJSONHandler(&buf, nil))
	_, ts := newTestServer(t, Config{Log: log})
	topo := testTopology(t, 10, 1)
	resp, _ := post(t, ts, "/v1/schedule", reqBody(t, topo, nil))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	wantID := resp.Header.Get("X-Request-ID")

	dec := json.NewDecoder(&buf)
	var rec map[string]any
	if err := dec.Decode(&rec); err != nil {
		t.Fatalf("no access log record: %v", err)
	}
	if rec["endpoint"] != "/v1/schedule" {
		t.Fatalf("endpoint = %v", rec["endpoint"])
	}
	if rec["status"] != float64(200) {
		t.Fatalf("status = %v", rec["status"])
	}
	if rec["request_id"] != wantID {
		t.Fatalf("request_id = %v, header said %q", rec["request_id"], wantID)
	}
	if _, ok := rec["queue_wait"].(string); !ok {
		t.Fatalf("queue_wait missing: %v", rec)
	}
}

// TestQueueWaitSeries: a pooled compute request produces the queue-wait
// histogram series; a fresh server renders none (so seed golden metrics
// output is unchanged by the feature).
func TestQueueWaitSeries(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var sb strings.Builder
	s.metrics.WriteTo(&sb)
	if strings.Contains(sb.String(), "rayschedd_queue_wait_seconds") {
		t.Fatalf("queue-wait series rendered before any pooled request:\n%s", sb.String())
	}

	topo := testTopology(t, 10, 1)
	if resp, _ := post(t, ts, "/v1/schedule", reqBody(t, topo, nil)); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	sb.Reset()
	s.metrics.WriteTo(&sb)
	out := sb.String()
	if !strings.Contains(out, `rayschedd_queue_wait_seconds_count{endpoint="/v1/schedule"} 1`) {
		t.Fatalf("queue-wait count series missing after pooled request:\n%s", out)
	}

	// A cache hit skips the pool and must not bump the wait count.
	if resp, _ := post(t, ts, "/v1/schedule", reqBody(t, topo, nil)); resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("expected cache hit, got %q", resp.Header.Get("X-Cache"))
	}
	sb.Reset()
	s.metrics.WriteTo(&sb)
	if !strings.Contains(sb.String(), `rayschedd_queue_wait_seconds_count{endpoint="/v1/schedule"} 1`) {
		t.Fatalf("cache hit must not record a queue wait:\n%s", sb.String())
	}
}

// TestDebugObs: with Debug set, /debug/obs serves the counter snapshot and
// the request spans, and the pprof index is mounted; without Debug both 404.
func TestDebugObs(t *testing.T) {
	_, ts := newTestServer(t, Config{Debug: true})
	topo := testTopology(t, 10, 1)
	if resp, _ := post(t, ts, "/v1/schedule", reqBody(t, topo, nil)); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/debug/obs")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/obs status %d", resp.StatusCode)
	}
	var doc debugObsResponse
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("bad /debug/obs JSON: %v\n%s", err, body)
	}
	if doc.Counters[`requests./v1/schedule.200`] != 1 {
		t.Fatalf("schedule counter missing from snapshot: %v", doc.Counters)
	}
	if doc.SpansRecorded == 0 || len(doc.RecentSpans) == 0 {
		t.Fatalf("no spans recorded: %+v", doc)
	}
	found := false
	for _, sp := range doc.RecentSpans {
		if sp.Name == "http./v1/schedule" {
			found = true
		}
	}
	if !found {
		t.Fatalf("request span missing from recent spans: %+v", doc.RecentSpans)
	}
	if resp, err := http.Get(ts.URL + "/debug/pprof/"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index not mounted under Debug: %v %v", err, resp)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	_, plain := newTestServer(t, Config{})
	for _, path := range []string{"/debug/obs", "/debug/pprof/"} {
		resp, err := http.Get(plain.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s must 404 without Debug, got %d", path, resp.StatusCode)
		}
	}
}

// TestRequestSpansNestScheduler: the daemon's request span must become the
// parent of the scheduler span the compute layer starts, proving ctx
// propagation end to end through pool workers.
func TestRequestSpansNestScheduler(t *testing.T) {
	tr := obs.NewTracer(0)
	_, ts := newTestServer(t, Config{Tracer: tr})
	topo := testTopology(t, 10, 1)
	if resp, _ := post(t, ts, "/v1/schedule", reqBody(t, topo, nil)); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var reqSpan, algSpan *obs.SpanRecord
	spans := tr.Snapshot()
	for i := range spans {
		switch spans[i].Name {
		case "http./v1/schedule":
			reqSpan = &spans[i]
		case "capacity.greedy_affectance":
			algSpan = &spans[i]
		}
	}
	if reqSpan == nil || algSpan == nil {
		t.Fatalf("spans missing (req=%v alg=%v) in %+v", reqSpan, algSpan, spans)
	}
	if algSpan.Parent != reqSpan.ID {
		t.Fatalf("scheduler span parent = %d, want request span %d", algSpan.Parent, reqSpan.ID)
	}
}
