package server

import (
	"bytes"
	"fmt"
	"testing"
)

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", []byte("body-a"))
	body, ok := c.Get("a")
	if !ok || !bytes.Equal(body, []byte("body-a")) {
		t.Fatalf("got %q ok=%v", body, ok)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats hits=%d misses=%d", hits, misses)
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	c := NewCache(2)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	c.Get("a") // refresh a: b becomes the eviction candidate
	c.Put("c", []byte("C"))
	if _, ok := c.Get("b"); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("entry %s evicted wrongly", k)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("len %d", c.Len())
	}
}

func TestCacheUpdateExistingKey(t *testing.T) {
	c := NewCache(2)
	c.Put("a", []byte("old"))
	c.Put("a", []byte("new"))
	body, _ := c.Get("a")
	if string(body) != "new" {
		t.Fatalf("got %q", body)
	}
	if c.Len() != 1 {
		t.Fatalf("len %d", c.Len())
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(0)
	c.Put("a", []byte("A"))
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache stored an entry")
	}
	if c.Len() != 0 {
		t.Fatalf("len %d", c.Len())
	}
}

func TestCacheManyKeysStaysBounded(t *testing.T) {
	c := NewCache(8)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	if c.Len() != 8 {
		t.Fatalf("len %d, want 8", c.Len())
	}
}
