package server

import "sync"

// flightGroup collapses concurrent identical computations ("singleflight"):
// the first request for a key becomes the leader and computes; requests that
// arrive for the same key while the leader is in flight become followers and
// receive the leader's exact response bytes instead of occupying pool slots
// with duplicate work. Keys are the same canonical request hashes the
// response cache uses, so "identical" means identical (topology, params,
// seed) — exactly the requests whose responses are byte-identical by the
// daemon's determinism contract.
//
// The group tracks only in-flight work. Completed results live in the LRU
// cache; a flight is removed the moment it finishes so late arrivals go
// through the cache (or start a fresh flight) rather than reading a stale
// entry here.
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
}

// flight is one in-progress computation. done is closed exactly once, after
// body and err have been published by finish.
type flight struct {
	done chan struct{}
	body []byte
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flights: make(map[string]*flight)}
}

// join returns the flight for key, creating one when none is in progress.
// leader is true for the caller that must compute and then finish the
// flight; followers wait on fl.done.
func (g *flightGroup) join(key string) (fl *flight, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if fl, ok := g.flights[key]; ok {
		return fl, false
	}
	fl = &flight{done: make(chan struct{})}
	g.flights[key] = fl
	return fl, true
}

// finish publishes the leader's result and wakes every follower. The flight
// is unregistered before done closes so a request arriving after completion
// starts fresh (and finds the result in the response cache) instead of
// joining a finished flight.
func (g *flightGroup) finish(key string, fl *flight, body []byte, err error) {
	g.mu.Lock()
	delete(g.flights, key)
	g.mu.Unlock()
	fl.body, fl.err = body, err
	close(fl.done)
}
