package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rayfade/internal/faults"
	"rayfade/internal/leakcheck"
)

// withFaults installs a parsed injector for the test's duration.
func withFaults(t *testing.T, spec string) *faults.Injector {
	t.Helper()
	inj, err := faults.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	faults.SetDefault(inj)
	t.Cleanup(func() { faults.SetDefault(nil) })
	return inj
}

func TestHandlerTransientFaultAnswers503WithRetryAfter(t *testing.T) {
	inj := withFaults(t, "server.handler=error:1")
	_, ts := newTestServer(t, Config{})
	topo := testTopology(t, 8, 1)
	resp, body := post(t, ts, "/v1/estimate", reqBody(t, topo, map[string]any{"samples": 100}))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("injected 503 without Retry-After (clients could not back off)")
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
		t.Fatalf("malformed error body %q: %v", body, err)
	}
	if inj.Fired() == 0 {
		t.Fatal("fault never fired")
	}
}

func TestHandlerPanicFaultAnswers500AndDaemonSurvives(t *testing.T) {
	withFaults(t, "server.handler=panic:1")
	_, ts := newTestServer(t, Config{})
	topo := testTopology(t, 8, 1)
	resp, body := post(t, ts, "/v1/estimate", reqBody(t, topo, map[string]any{"samples": 100}))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || !strings.Contains(eb.Error, "panic") {
		t.Fatalf("500 body should carry the recovered panic: %q", body)
	}

	// Disarm and verify the daemon still serves normally: the panic was
	// contained to the one request.
	faults.SetDefault(nil)
	resp2, body2 := post(t, ts, "/v1/estimate", reqBody(t, topo, map[string]any{"samples": 100}))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-panic request: status %d: %s", resp2.StatusCode, body2)
	}
}

func TestPoolJobFaultRecoveredInto500(t *testing.T) {
	withFaults(t, "pool.job=panic:1")
	_, ts := newTestServer(t, Config{})
	topo := testTopology(t, 8, 1)
	resp, body := post(t, ts, "/v1/estimate", reqBody(t, topo, map[string]any{"samples": 100}))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte("panic")) {
		t.Fatalf("body %q should name the recovered panic", body)
	}
	// The worker survived; with faults off the same pool serves fine.
	faults.SetDefault(nil)
	if resp, body := post(t, ts, "/v1/estimate", reqBody(t, topo, map[string]any{"samples": 100})); resp.StatusCode != 200 {
		t.Fatalf("worker did not survive injected panic: %d %s", resp.StatusCode, body)
	}
}

func TestEveryComputeEndpointSurvivesFaultMatrix(t *testing.T) {
	// The acceptance matrix: with each fault kind armed on both request-path
	// sites, every endpoint must answer a well-formed JSON error (or succeed,
	// for delay) and the daemon must keep serving afterwards.
	topo := testTopology(t, 8, 1)
	endpoints := []struct{ path string }{
		{"/v1/schedule"}, {"/v1/latency"}, {"/v1/reduce"}, {"/v1/estimate"},
	}
	specs := []string{
		"server.handler=error:1",
		"server.handler=panic:1",
		"server.handler=delay:1:5ms",
		"pool.job=panic:1",
		"pool.job=error:1",
		"pool.job=delay:1:5ms",
	}
	_, ts := newTestServer(t, Config{})
	for _, spec := range specs {
		inj, err := faults.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		faults.SetDefault(inj)
		for _, ep := range endpoints {
			resp, body := post(t, ts, ep.path, reqBody(t, topo, nil))
			switch resp.StatusCode {
			case http.StatusOK, http.StatusInternalServerError, http.StatusServiceUnavailable:
			default:
				t.Fatalf("%s under %q: unexpected status %d: %s", ep.path, spec, resp.StatusCode, body)
			}
			if !json.Valid(body) {
				t.Fatalf("%s under %q: non-JSON body %q", ep.path, spec, body)
			}
		}
	}
	faults.SetDefault(nil)
	for _, ep := range endpoints {
		if resp, body := post(t, ts, ep.path, reqBody(t, topo, nil)); resp.StatusCode != 200 {
			t.Fatalf("%s after fault matrix: status %d: %s", ep.path, resp.StatusCode, body)
		}
	}
}

func TestShedRequestsCounterAndDynamicRetryAfter(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueSize: 1, MaxSamples: 100_000_000,
		DefaultTimeout: 2 * time.Second})
	topo := testTopology(t, 60, 9)

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := reqBody(t, topo, map[string]any{"samples": 50_000_000, "seed": 2000 + i})
			post(t, ts, "/v1/estimate", body)
		}(i)
	}
	for s.pool.InFlight() < 1 || s.pool.QueueDepth() < 1 {
		time.Sleep(time.Millisecond)
	}
	resp, out := post(t, ts, "/v1/estimate", reqBody(t, topo, map[string]any{"samples": 50_000_000}))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q, want a positive whole-second hint", ra)
	}
	wg.Wait()

	r, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	text, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(text, []byte(`rayschedd_shed_requests_total{endpoint="/v1/estimate"} 1`)) {
		t.Fatalf("/metrics missing shed counter:\n%s", text)
	}
}

func TestMetricsOmitShedSeriesWhenNothingShed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	topo := testTopology(t, 8, 1)
	post(t, ts, "/v1/schedule", reqBody(t, topo, nil))
	r, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	text, _ := io.ReadAll(r.Body)
	if bytes.Contains(text, []byte("rayschedd_shed_requests_total")) {
		t.Fatalf("shed series rendered with nothing shed:\n%s", text)
	}
}

func TestOversizedBodyRejected413(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 512})
	big := append([]byte(`{"network":"`), bytes.Repeat([]byte("x"), 4096)...)
	big = append(big, []byte(`"}`)...)
	for _, path := range []string{"/v1/schedule", "/v1/latency", "/v1/reduce", "/v1/estimate"} {
		resp, body := post(t, ts, path, big)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s: status %d, want 413: %s", path, resp.StatusCode, body)
		}
	}
}

// ---- pool shutdown semantics (satellite) ----------------------------------

func TestPoolCloseIdempotentAndLeakFree(t *testing.T) {
	leakcheck.Check(t)
	p := NewPool(4, 16)
	var ran atomic.Int32
	for i := 0; i < 8; i++ {
		go p.Do(context.Background(), func(context.Context) { ran.Add(1) })
	}
	time.Sleep(10 * time.Millisecond)
	p.Close()
	p.Close()
	p.Close()
	if err := p.Do(context.Background(), func(context.Context) {}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Do after Close = %v, want ErrPoolClosed", err)
	}
	if got := p.InFlight(); got != 0 {
		t.Fatalf("in-flight after Close: %d", got)
	}
}

func TestPoolCloseFailsQueuedJobsDeterministically(t *testing.T) {
	leakcheck.Check(t)
	p := NewPool(1, 8)
	block := make(chan struct{})
	started := make(chan struct{})
	inflightErr := make(chan error, 1)
	go func() {
		inflightErr <- p.Do(context.Background(), func(context.Context) {
			close(started)
			<-block
		})
	}()
	<-started

	// Queue several jobs behind the blocked worker; none may ever run.
	const queued = 4
	errs := make(chan error, queued)
	for i := 0; i < queued; i++ {
		go func() {
			errs <- p.Do(context.Background(), func(context.Context) {
				t.Error("queued-but-unstarted job ran during shutdown")
			})
		}()
	}
	for p.QueueDepth() < queued {
		time.Sleep(time.Millisecond)
	}

	// Close from another goroutine (it blocks on the in-flight job), then
	// release the worker.
	closed := make(chan struct{})
	go func() { p.Close(); close(closed) }()
	time.Sleep(10 * time.Millisecond)
	close(block)
	<-closed

	// The in-flight job completed normally; every queued job failed with the
	// deterministic shutdown error, not a hang and not execution.
	if err := <-inflightErr; err != nil {
		t.Fatalf("in-flight job: %v", err)
	}
	for i := 0; i < queued; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrPoolClosed) {
				t.Fatalf("queued job err = %v, want ErrPoolClosed", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("queued job submitter hung after Close")
		}
	}
}

func TestPoolWorkersAccessor(t *testing.T) {
	p := NewPool(3, 1)
	defer p.Close()
	if p.Workers() != 3 {
		t.Fatalf("Workers = %d", p.Workers())
	}
}
