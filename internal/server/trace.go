package server

import (
	"container/list"
	"encoding/json"
	"net/http"
	"sync"

	"rayfade/internal/obs"
)

// traceRingSpans bounds one trace's span retention on a worker. A Figure-1
// shard records a handful of request/replication/phase spans per
// replication, so 16Ki spans comfortably covers realistic shards while
// capping the memory one trace can pin.
const traceRingSpans = 1 << 14

// traceStore keeps per-trace span collectors for requests that arrived with
// an X-Trace-Context header: each distinct trace ID gets its own
// obs.Tracer (own ring, own epoch), so one cluster run's spans are not
// interleaved with another's and a fetch serializes exactly the requested
// trace. The store is a bounded LRU over trace IDs — an abandoned trace
// (coordinator died before fetching) ages out instead of pinning memory.
//
// Spans collected here deliberately do not land in the server's main tracer:
// the request context carries the per-trace tracer instead, so /debug/obs
// shows locally-traced traffic while cluster traces stay per-run. A nil
// *traceStore disables collection (requests with trace headers are served
// normally, nothing is retained).
type traceStore struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

type traceEntry struct {
	id     string
	tracer *obs.Tracer
}

// newTraceStore returns a store retaining at most capacity traces; a
// negative capacity disables collection (nil store).
func newTraceStore(capacity int) *traceStore {
	if capacity < 0 {
		return nil
	}
	return &traceStore{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element),
	}
}

// tracer returns (creating on first use) the collector for trace id,
// updating recency and evicting the least recently used trace when over
// capacity. Nil-safe (nil).
func (s *traceStore) tracer(id string) *obs.Tracer {
	if s == nil || s.cap == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[id]; ok {
		s.order.MoveToFront(el)
		return el.Value.(*traceEntry).tracer
	}
	tr := obs.NewTracer(traceRingSpans)
	s.items[id] = s.order.PushFront(&traceEntry{id: id, tracer: tr})
	for s.order.Len() > s.cap {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.items, oldest.Value.(*traceEntry).id)
	}
	return tr
}

// bundle snapshots the collector for trace id as a TraceBundle, or reports
// that the trace is unknown (never seen, or evicted). Nil-safe (not found).
func (s *traceStore) bundle(id, instance string) (obs.TraceBundle, bool) {
	if s == nil {
		return obs.TraceBundle{}, false
	}
	s.mu.Lock()
	el, ok := s.items[id]
	if ok {
		s.order.MoveToFront(el)
	}
	s.mu.Unlock()
	if !ok {
		return obs.TraceBundle{}, false
	}
	return el.Value.(*traceEntry).tracer.Bundle(id, instance), true
}

// len returns the number of retained traces. Nil-safe (0).
func (s *traceStore) len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.Len()
}

// handleTraceFetch is GET /v1/trace/{id}: the shard-trace return channel. A
// coordinator that dispatched work under a trace ID fetches the worker's
// span collection for that trace and merges it with its own
// (obs.WriteMergedTrace). 404 means the worker never collected the trace —
// it saw no requests under that ID, or the collection was evicted.
func (s *Server) handleTraceFetch(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		writeError(w, &httpError{status: http.StatusServiceUnavailable,
			msg: "trace collection is disabled on this worker (-traces < 0)"})
		return
	}
	id := r.PathValue("id")
	if id == "" || len(id) > 64 {
		writeError(w, badRequest("trace id must be 1-64 characters"))
		return
	}
	b, ok := s.traces.bundle(id, s.instance)
	if !ok {
		writeError(w, &httpError{status: http.StatusNotFound,
			msg: "unknown trace id (never collected, or evicted)"})
		return
	}
	body, err := json.Marshal(b)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// validRequestID reports whether an inbound X-Request-ID is safe to adopt
// for log correlation: short and drawn from a conservative charset, so a
// hostile client cannot inject log records or unbounded labels.
func validRequestID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.', c == ':':
		default:
			return false
		}
	}
	return true
}
