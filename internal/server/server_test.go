package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rayfade/internal/netio"
	"rayfade/internal/network"
	"rayfade/internal/rng"
)

// testTopology returns the canonical netio serialization of a small random
// network with n links.
func testTopology(t *testing.T, n int, seed uint64) []byte {
	t.Helper()
	cfg := network.Figure1Config()
	cfg.N = n
	net, err := network.Random(cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := netio.Save(&buf, net); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// post sends body to path and returns the response and its full body.
func post(t *testing.T, ts *httptest.Server, path string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// reqBody builds a request document embedding the topology plus extra
// top-level fields.
func reqBody(t *testing.T, topology []byte, extra map[string]any) []byte {
	t.Helper()
	doc := map[string]any{"network": json.RawMessage(topology)}
	for k, v := range extra {
		doc[k] = v
	}
	b, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestScheduleEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	topo := testTopology(t, 20, 1)
	for _, algo := range []string{"greedy", "weighted", "powercontrol"} {
		resp, body := post(t, ts, "/v1/schedule", reqBody(t, topo, map[string]any{"algorithm": algo}))
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d: %s", algo, resp.StatusCode, body)
		}
		var out scheduleResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if out.Links != 20 || out.Size == 0 || out.Size != len(out.Set) {
			t.Fatalf("%s: implausible response %+v", algo, out)
		}
		if out.Lemma2Floor <= 0 || out.Lemma2Floor >= out.Value {
			t.Fatalf("%s: lemma-2 floor %g vs value %g", algo, out.Lemma2Floor, out.Value)
		}
		// Theorem 1: the fading expectation of a feasible set sits above the
		// Lemma-2 floor (size/e).
		if algo != "weighted" && out.ExpectedRayleigh < out.Lemma2Floor {
			t.Fatalf("%s: E[rayleigh] %g below floor %g", algo, out.ExpectedRayleigh, out.Lemma2Floor)
		}
		if algo == "powercontrol" && len(out.Powers) != out.Size {
			t.Fatalf("powers %d for set of %d", len(out.Powers), out.Size)
		}
	}
}

func TestLatencyEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	topo := testTopology(t, 15, 2)
	cases := []map[string]any{
		{"scheduler": "repeated", "model": "nonfading"},
		{"scheduler": "repeated", "model": "rayleigh", "seed": 7},
		{"scheduler": "aloha", "model": "nonfading", "prob": 0.2, "max_slots": 100000},
		{"scheduler": "aloha", "model": "rayleigh", "prob": 0.2, "max_slots": 100000},
	}
	for _, c := range cases {
		resp, body := post(t, ts, "/v1/latency", reqBody(t, topo, c))
		if resp.StatusCode != 200 {
			t.Fatalf("%v: status %d: %s", c, resp.StatusCode, body)
		}
		var out latencyResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if !out.Done || out.Slots <= 0 {
			t.Fatalf("%v: schedule incomplete: %+v", c, out)
		}
		if out.Model == "rayleigh" && out.Repeats != 4 {
			t.Fatalf("rayleigh repeats %d, want the Section-4 factor 4", out.Repeats)
		}
	}
}

func TestReduceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	topo := testTopology(t, 12, 3)
	resp, body := post(t, ts, "/v1/reduce", reqBody(t, topo, map[string]any{"samples": 30, "prob": 0.6}))
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out reduceResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Levels == 0 || len(out.Steps) != out.Levels || out.TotalSlots == 0 {
		t.Fatalf("implausible reduction: %+v", out)
	}
	if out.RayleighExact <= 0 {
		t.Fatalf("rayleigh exact %g", out.RayleighExact)
	}
}

func TestEstimateEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	topo := testTopology(t, 12, 4)
	resp, body := post(t, ts, "/v1/estimate", reqBody(t, topo, map[string]any{"samples": 4000, "prob": 0.5}))
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out estimateResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	// The Monte-Carlo mean must agree with the Theorem-1 closed form within
	// a generous multiple of the standard error.
	if diff := out.Mean - out.Exact; diff > 6*out.Stderr || diff < -6*out.Stderr {
		t.Fatalf("mean %g vs exact %g (stderr %g)", out.Mean, out.Exact, out.Stderr)
	}
}

func TestMalformedBodies(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	topo := testTopology(t, 8, 5)
	for _, path := range []string{"/v1/schedule", "/v1/latency", "/v1/reduce", "/v1/estimate"} {
		for name, body := range map[string][]byte{
			"not json":        []byte("{nope"),
			"unknown field":   reqBody(t, topo, map[string]any{"bogus": 1}),
			"missing network": []byte(`{}`),
			"trailing data":   append(reqBody(t, topo, nil), []byte(`{"x":1}`)...),
			"bad topology":    []byte(`{"network":{"alpha":-1,"links":[]}}`),
		} {
			resp, out := post(t, ts, path, body)
			if resp.StatusCode != 400 {
				t.Errorf("%s %s: status %d: %s", path, name, resp.StatusCode, out)
			}
			var eb errorBody
			if err := json.Unmarshal(out, &eb); err != nil || eb.Error == "" {
				t.Errorf("%s %s: error body %q", path, name, out)
			}
		}
	}
}

func TestBadParams(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSamples: 100})
	topo := testTopology(t, 8, 5)
	cases := []struct {
		path  string
		extra map[string]any
	}{
		{"/v1/schedule", map[string]any{"algorithm": "magic"}},
		{"/v1/schedule", map[string]any{"beta": -1}},
		{"/v1/latency", map[string]any{"scheduler": "psychic"}},
		{"/v1/latency", map[string]any{"model": "rician"}},
		{"/v1/latency", map[string]any{"prob": 1.5}},
		{"/v1/reduce", map[string]any{"prob": 2.0}},
		{"/v1/reduce", map[string]any{"samples": 101}},
		{"/v1/estimate", map[string]any{"samples": -3}},
	}
	for _, c := range cases {
		resp, out := post(t, ts, c.path, reqBody(t, topo, c.extra))
		if resp.StatusCode != 400 {
			t.Errorf("%s %v: status %d: %s", c.path, c.extra, resp.StatusCode, out)
		}
	}
}

func TestOversizedTopologyAndBody(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxLinks: 10})
	topo := testTopology(t, 20, 6)
	resp, out := post(t, ts, "/v1/schedule", reqBody(t, topo, nil))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized topology: status %d: %s", resp.StatusCode, out)
	}

	_, tsSmall := newTestServer(t, Config{MaxBodyBytes: 64})
	resp, out = post(t, tsSmall, "/v1/schedule", reqBody(t, topo, nil))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d: %s", resp.StatusCode, out)
	}
}

func TestDeadlineExceeded(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSamples: 100_000_000})
	topo := testTopology(t, 60, 7)
	// A million-sample estimate on 60 links cannot finish in a millisecond;
	// the context poll inside the sampling loop must convert the deadline
	// into 504.
	resp, out := post(t, ts, "/v1/estimate",
		reqBody(t, topo, map[string]any{"samples": 100_000_000, "timeout_ms": 1}))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
}

func TestCacheHitByteIdentity(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	topo := testTopology(t, 15, 8)
	body := reqBody(t, topo, map[string]any{"samples": 500, "seed": 42})

	r1, b1 := post(t, ts, "/v1/estimate", body)
	r2, b2 := post(t, ts, "/v1/estimate", body)
	if r1.StatusCode != 200 || r2.StatusCode != 200 {
		t.Fatalf("status %d / %d", r1.StatusCode, r2.StatusCode)
	}
	if r1.Header.Get("X-Cache") != "miss" || r2.Header.Get("X-Cache") != "hit" {
		t.Fatalf("X-Cache %q then %q, want miss then hit", r1.Header.Get("X-Cache"), r2.Header.Get("X-Cache"))
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("cache hit not byte-identical:\n%s\n%s", b1, b2)
	}

	// A whitespace-reformatted topology is the same canonical network, so it
	// must hit the same cache entry.
	var compact bytes.Buffer
	if err := json.Compact(&compact, topo); err != nil {
		t.Fatal(err)
	}
	r3, b3 := post(t, ts, "/v1/estimate", reqBody(t, compact.Bytes(), map[string]any{"samples": 500, "seed": 42}))
	if r3.Header.Get("X-Cache") != "hit" || !bytes.Equal(b1, b3) {
		t.Fatalf("canonicalization miss: X-Cache=%q", r3.Header.Get("X-Cache"))
	}

	// Different seed ⇒ different key ⇒ different bytes.
	r4, b4 := post(t, ts, "/v1/estimate", reqBody(t, topo, map[string]any{"samples": 500, "seed": 43}))
	if r4.Header.Get("X-Cache") != "miss" || bytes.Equal(b1, b4) {
		t.Fatal("distinct seed must not share a cache entry")
	}
}

func TestOverloadAnswers429(t *testing.T) {
	// The short DefaultTimeout lets the saturating requests die quickly
	// once the 429 has been observed.
	s, ts := newTestServer(t, Config{Workers: 1, QueueSize: 1, MaxSamples: 100_000_000,
		DefaultTimeout: 2 * time.Second})
	topo := testTopology(t, 60, 9)
	slow := reqBody(t, topo, map[string]any{"samples": 50_000_000})

	// Occupy the single worker, then fill the single queue slot.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Vary the seed so these are cache misses that truly compute.
			body := reqBody(t, topo, map[string]any{"samples": 50_000_000, "seed": 1000 + i})
			post(t, ts, "/v1/estimate", body)
		}(i)
	}
	// Wait until the worker is busy and the queue holds the second job.
	for s.pool.InFlight() < 1 || s.pool.QueueDepth() < 1 {
		time.Sleep(time.Millisecond)
	}
	resp, out := post(t, ts, "/v1/estimate", slow)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	wg.Wait()
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/schedule")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	topo := testTopology(t, 8, 10)
	post(t, ts, "/v1/schedule", reqBody(t, topo, nil))
	post(t, ts, "/v1/schedule", []byte("{bad"))

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var h healthResponse
	if err := json.Unmarshal(hb, &h); err != nil || h.Status != "ok" || h.Version == "" {
		t.Fatalf("healthz: %s", hb)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(mb)
	for _, want := range []string{
		`rayschedd_requests_total{endpoint="/v1/schedule",code="200"} 1`,
		`rayschedd_requests_total{endpoint="/v1/schedule",code="400"} 1`,
		"rayschedd_queue_depth",
		"rayschedd_cache_hit_ratio",
		"rayschedd_in_flight",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestConcurrentHammer drives the daemon from 32 goroutines mixing cacheable
// repeats and distinct requests across endpoints; run with -race this is the
// pool/cache/metrics concurrency proof. Every response must be 200 or 429,
// and identical requests must produce identical bytes.
func TestConcurrentHammer(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, QueueSize: 256})
	topo := testTopology(t, 12, 11)

	shared := reqBody(t, topo, map[string]any{"samples": 200, "seed": 5})
	var mu sync.Mutex
	var sharedBody []byte

	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				var path string
				var body []byte
				switch (g + i) % 3 {
				case 0:
					path, body = "/v1/estimate", shared
				case 1:
					path, body = "/v1/schedule", reqBody(t, topo, map[string]any{"beta": 1.0 + float64(g%5)})
				default:
					path, body = "/v1/estimate", reqBody(t, topo, map[string]any{"samples": 100, "seed": g*10 + i})
				}
				resp, out := post(t, ts, path, body)
				if resp.StatusCode != 200 && resp.StatusCode != 429 {
					t.Errorf("goroutine %d: %s status %d: %s", g, path, resp.StatusCode, out)
					return
				}
				if resp.StatusCode == 200 && bytes.Equal(body, shared) {
					mu.Lock()
					if sharedBody == nil {
						sharedBody = append([]byte(nil), out...)
					} else if !bytes.Equal(sharedBody, out) {
						t.Errorf("shared request returned differing bytes")
					}
					mu.Unlock()
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestDrainRefusesPostsAndRecovers(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	topo := testTopology(t, 12, 5)
	body := reqBody(t, topo, map[string]any{"algorithm": "greedy"})

	// Healthy first: the request computes and healthz says ok.
	resp, _ := post(t, ts, "/v1/schedule", body)
	if resp.StatusCode != 200 {
		t.Fatalf("pre-drain status = %d", resp.StatusCode)
	}
	s.SetDraining(true)
	if !s.Draining() {
		t.Fatal("Draining() = false after SetDraining(true)")
	}
	resp, out := post(t, ts, "/v1/schedule", body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining 503 must carry Retry-After")
	}
	if !strings.Contains(string(out), "draining") {
		t.Fatalf("draining body %q does not say why", out)
	}

	// GETs stay live so the drain is observable.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	if hr.StatusCode != 200 {
		t.Fatalf("healthz during drain = %d, want 200", hr.StatusCode)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(hb, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "draining" {
		t.Fatalf("healthz status = %q, want draining", health.Status)
	}

	// Drain is reversible: intake re-opens.
	s.SetDraining(false)
	resp, _ = post(t, ts, "/v1/schedule", body)
	if resp.StatusCode != 200 {
		t.Fatalf("post-drain status = %d", resp.StatusCode)
	}
	if s.Busy() {
		t.Fatal("Busy() with no work in flight")
	}
}
