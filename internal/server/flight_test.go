package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"testing"
)

func TestFlightGroupLeaderAndFollowers(t *testing.T) {
	g := newFlightGroup()
	fl, leader := g.join("k")
	if !leader {
		t.Fatal("first join must lead")
	}
	fl2, leader2 := g.join("k")
	if leader2 || fl2 != fl {
		t.Fatalf("second join: leader=%v sameFlight=%v", leader2, fl2 == fl)
	}
	// A different key is its own flight.
	if _, leader3 := g.join("other"); !leader3 {
		t.Fatal("distinct key must lead its own flight")
	}
	g.finish("k", fl, []byte("body"), nil)
	<-fl.done
	if string(fl.body) != "body" || fl.err != nil {
		t.Fatalf("published %q/%v", fl.body, fl.err)
	}
	// The flight is unregistered on finish: a late arrival leads anew.
	if _, leader4 := g.join("k"); !leader4 {
		t.Fatal("join after finish must lead")
	}
}

func TestFlightGroupPublishesError(t *testing.T) {
	g := newFlightGroup()
	fl, _ := g.join("k")
	want := errors.New("compute exploded")
	g.finish("k", fl, nil, want)
	<-fl.done
	if !errors.Is(fl.err, want) {
		t.Fatalf("err %v, want %v", fl.err, want)
	}
}

// TestSingleflightCollapsesConcurrentIdenticalFault: with caching disabled
// and every pool job slowed by an armed delay fault (widening the in-flight
// window), a burst of identical requests must collapse onto one computation
// — at least one response carries X-Singleflight: shared and the shared
// counter moves — and every body must be byte-identical. ("Fault" in the
// name keeps this in CI's chaos-smoke subset, where the injector machinery
// is exercised under -race.)
func TestSingleflightCollapsesConcurrentIdenticalFault(t *testing.T) {
	withFaults(t, "seed=5,pool.job=delay:1:80ms")
	s, ts := newTestServer(t, Config{CacheSize: -1})
	topo := testTopology(t, 12, 1)
	req := reqBody(t, topo, map[string]any{"samples": 20, "seed": 3})

	const burst = 8
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		bodies [][]byte
		shared int
	)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := post(t, ts, "/v1/estimate", req)
			mu.Lock()
			defer mu.Unlock()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d: %s", resp.StatusCode, body)
				return
			}
			if resp.Header.Get("X-Singleflight") == "shared" {
				shared++
			}
			bodies = append(bodies, body)
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if len(bodies) != burst {
		t.Fatalf("%d bodies, want %d", len(bodies), burst)
	}
	for i := 1; i < burst; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("response %d differs:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	if shared == 0 {
		t.Fatal("no response was singleflight-shared despite an 80ms in-flight window")
	}
	if got := s.sfShared.Load(); got != int64(shared) {
		t.Fatalf("rayschedd_singleflight_shared_total %d, header count %d", got, shared)
	}
}

// TestSingleflightSharedByteIdenticalUnderHandlerFault: with transient
// handler faults armed, shared responses that do succeed must still be
// byte-identical to an unshared response for the same request — the
// singleflight path must never surface a follower-specific body, and a
// leader's injected failure must not poison later bursts.
func TestSingleflightSharedByteIdenticalUnderHandlerFault(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheSize: -1})
	topo := testTopology(t, 12, 2)
	req := reqBody(t, topo, map[string]any{"samples": 20, "seed": 9})

	// Unshared baseline, measured before any fault is armed.
	resp, baseline := post(t, ts, "/v1/estimate", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("baseline: status %d: %s", resp.StatusCode, baseline)
	}

	withFaults(t, "seed=7,server.handler=error:0.3,pool.job=delay:1:40ms")
	const bursts, width = 4, 6
	var sharedOK int
	for b := 0; b < bursts; b++ {
		var wg sync.WaitGroup
		results := make([][]byte, width)
		headers := make([]string, width)
		codes := make([]int, width)
		for i := 0; i < width; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp, body := post(t, ts, "/v1/estimate", req)
				codes[i], results[i], headers[i] = resp.StatusCode, body, resp.Header.Get("X-Singleflight")
			}(i)
		}
		wg.Wait()
		for i := 0; i < width; i++ {
			switch codes[i] {
			case http.StatusOK:
				if !bytes.Equal(results[i], baseline) {
					t.Fatalf("burst %d response %d differs from unshared baseline:\n%s\nvs\n%s",
						b, i, results[i], baseline)
				}
				if headers[i] == "shared" {
					sharedOK++
				}
			case http.StatusServiceUnavailable:
				// The armed transient fault (injected at the handler or
				// propagated through a shared flight); retryable by contract.
				var eb errorBody
				if err := json.Unmarshal(results[i], &eb); err != nil || eb.Error == "" {
					t.Fatalf("burst %d response %d: malformed 503 body %s", b, i, results[i])
				}
			default:
				t.Fatalf("burst %d response %d: unexpected status %d: %s", b, i, codes[i], results[i])
			}
		}
	}
	if sharedOK == 0 {
		t.Skip("no successful shared response in this fault schedule; byte-identity vacuous")
	}
	if s.sfShared.Load() == 0 {
		t.Fatal("shared header seen but counter never moved")
	}
}
