// Package version centralizes the release identifier stamped into every
// binary (raysched, raygen, rayschedd) and reported by the daemon's
// /healthz endpoint, so one constant bumps them all together.
package version

// Version identifies the source tree the binaries were built from. It is a
// plain constant (not ldflags-injected) so `go run` and `go test` report
// the same value as release builds.
const Version = "0.2.0"
