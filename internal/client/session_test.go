package client

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestUploadTopology(t *testing.T) {
	var gotBody []byte
	var gotContentType string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/topology" {
			t.Errorf("path %q", r.URL.Path)
		}
		gotBody, _ = io.ReadAll(r.Body)
		gotContentType = r.Header.Get("Content-Type")
		w.Write([]byte(`{"topology_ref":"sha256:abc","links":12,"created":true}`))
	}))
	defer ts.Close()
	c, _ := newTestClient(t, ts, Config{})

	sess, err := c.UploadTopology(context.Background(), []byte(`{"links":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	if sess.Ref != "sha256:abc" || sess.Links != 12 || !sess.Created {
		t.Fatalf("session %+v", sess)
	}
	if string(gotBody) != `{"links":[]}` || gotContentType != "application/json" {
		t.Fatalf("sent body %q with content type %q", gotBody, gotContentType)
	}
}

func TestUploadTopologySurfacesServerError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"topology: bad gain"}`, http.StatusBadRequest)
	}))
	defer ts.Close()
	c, _ := newTestClient(t, ts, Config{})

	_, err := c.UploadTopology(context.Background(), []byte(`{}`))
	if err == nil || !strings.Contains(err.Error(), "bad gain") || !strings.Contains(err.Error(), "400") {
		t.Fatalf("err %v, want the daemon's message and status", err)
	}
}

func TestEstimateBatch(t *testing.T) {
	var gotBody []byte
	var gotContentType string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/estimate/batch" {
			t.Errorf("path %q", r.URL.Path)
		}
		gotBody, _ = io.ReadAll(r.Body)
		gotContentType = r.Header.Get("Content-Type")
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Write([]byte("{\"mean\":1}\n{\"error\":\"decode line\"}\n{\"mean\":2}\n"))
	}))
	defer ts.Close()
	c, _ := newTestClient(t, ts, Config{})

	lines, err := c.EstimateBatch(context.Background(), [][]byte{
		[]byte(`{"seed":1}`), []byte(` {"seed":2} `), []byte(`{"seed":3}`),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 3 || string(lines[1]) != `{"error":"decode line"}` {
		t.Fatalf("lines %q", lines)
	}
	// Requests are framed one per line, whitespace normalized.
	if want := "{\"seed\":1}\n{\"seed\":2}\n{\"seed\":3}\n"; string(gotBody) != want {
		t.Fatalf("sent %q, want %q", gotBody, want)
	}
	if gotContentType != "application/x-ndjson" {
		t.Fatalf("content type %q", gotContentType)
	}
}

func TestEstimateBatchLineCountMismatch(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Write([]byte("{\"mean\":1}\n"))
	}))
	defer ts.Close()
	c, _ := newTestClient(t, ts, Config{})

	lines, err := c.EstimateBatch(context.Background(), [][]byte{[]byte(`{"seed":1}`), []byte(`{"seed":2}`)})
	if err == nil || !strings.Contains(err.Error(), "got 1 back") {
		t.Fatalf("err %v, want line-count mismatch", err)
	}
	// The truncated lines are still returned for inspection.
	if len(lines) != 1 {
		t.Fatalf("%d lines returned alongside the error", len(lines))
	}
}

func TestEstimateBatchEmpty(t *testing.T) {
	c := New(Config{BaseURL: "http://unreachable.invalid"})
	if _, err := c.EstimateBatch(context.Background(), nil); err == nil {
		t.Fatal("empty batch must fail client-side")
	}
}

// TestEstimateBatchRetriesOn429: batches ride the same retry policy as
// single requests — a shed (429 + Retry-After) is retried, not surfaced.
func TestEstimateBatchRetriesOn429(t *testing.T) {
	var calls int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		io.Copy(io.Discard, r.Body)
		if calls == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
			return
		}
		w.Write([]byte("{\"mean\":1}\n"))
	}))
	defer ts.Close()
	c, sleeps := newTestClient(t, ts, Config{})

	lines, err := c.EstimateBatch(context.Background(), [][]byte{[]byte(`{"seed":1}`)})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 || len(lines) != 1 {
		t.Fatalf("calls %d, lines %d", calls, len(lines))
	}
	if len(sleeps.delays) != 1 || sleeps.delays[0] < time.Second {
		t.Fatalf("backoff %v must honor Retry-After", sleeps.delays)
	}
}
