package client

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rayfade/internal/faults"
	"rayfade/internal/obs"
)

// fakeSleep records requested pauses without waiting.
type fakeSleep struct {
	delays []time.Duration
}

func (f *fakeSleep) sleep(ctx context.Context, d time.Duration) error {
	f.delays = append(f.delays, d)
	return ctx.Err()
}

func newTestClient(t *testing.T, ts *httptest.Server, cfg Config) (*Client, *fakeSleep) {
	t.Helper()
	fs := &fakeSleep{}
	cfg.BaseURL = ts.URL
	cfg.HTTPClient = ts.Client()
	if cfg.Sleep == nil {
		cfg.Sleep = fs.sleep
	}
	return New(cfg), fs
}

func TestPostJSONSuccessFirstTry(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		if string(body) != `{"x":1}` {
			t.Errorf("server saw body %q", body)
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()
	c, fs := newTestClient(t, ts, Config{})
	out, status, err := c.PostJSON(context.Background(), "/v1/x", []byte(`{"x":1}`))
	if err != nil || status != 200 || string(out) != `{"ok":true}` {
		t.Fatalf("out=%q status=%d err=%v", out, status, err)
	}
	if len(fs.delays) != 0 {
		t.Fatalf("slept %v on a clean request", fs.delays)
	}
	st := c.Stats()
	if st.Requests != 1 || st.Attempts != 1 || st.Retries != 0 || st.Failures != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestRetriesOn503ThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`done`))
	}))
	defer ts.Close()
	c, fs := newTestClient(t, ts, Config{BaseDelay: 10 * time.Millisecond})
	out, status, err := c.PostJSON(context.Background(), "/v1/x", nil)
	if err != nil || status != 200 || string(out) != "done" {
		t.Fatalf("out=%q status=%d err=%v", out, status, err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3", calls.Load())
	}
	// Retry-After: 1 floors both backoffs at one second, far above the
	// 10ms jitter envelope.
	if len(fs.delays) != 2 {
		t.Fatalf("delays %v, want 2 pauses", fs.delays)
	}
	for i, d := range fs.delays {
		if d < time.Second {
			t.Fatalf("pause %d = %v ignores Retry-After floor", i, d)
		}
	}
	st := c.Stats()
	if st.Requests != 1 || st.Attempts != 3 || st.Retries != 2 || st.Failures != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDoesNotRetryApplicationErrors(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"bad beta"}`))
	}))
	defer ts.Close()
	c, _ := newTestClient(t, ts, Config{})
	out, status, err := c.PostJSON(context.Background(), "/v1/x", nil)
	if err != nil {
		t.Fatalf("4xx must not be a transport error: %v", err)
	}
	if status != 400 || !strings.Contains(string(out), "bad beta") {
		t.Fatalf("status=%d out=%q", status, out)
	}
	if calls.Load() != 1 {
		t.Fatalf("a deterministic 400 was retried %d times", calls.Load())
	}
}

func TestBudgetExhaustion(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()
	c, fs := newTestClient(t, ts, Config{MaxAttempts: 4})
	_, _, err := c.PostJSON(context.Background(), "/v1/x", nil)
	if err == nil || !strings.Contains(err.Error(), "retry budget") {
		t.Fatalf("err = %v", err)
	}
	if calls.Load() != 4 {
		t.Fatalf("server saw %d calls, want exactly MaxAttempts", calls.Load())
	}
	if len(fs.delays) != 3 {
		t.Fatalf("%d pauses, want MaxAttempts-1", len(fs.delays))
	}
	if st := c.Stats(); st.Failures != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestBackoffEnvelopeGrowsAndIsJittered(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	base := 100 * time.Millisecond
	c, fs := newTestClient(t, ts, Config{MaxAttempts: 6, BaseDelay: base, MaxDelay: time.Hour, JitterSeed: 7})
	c.PostJSON(context.Background(), "/v1/x", nil)
	if len(fs.delays) != 5 {
		t.Fatalf("delays %v", fs.delays)
	}
	for k, d := range fs.delays {
		env := base << uint(k)
		if d < 0 || d > env {
			t.Fatalf("pause %d = %v outside full-jitter envelope [0,%v]", k, d, env)
		}
	}
}

func TestBackoffDeterministicPerSeed(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	run := func(seed uint64) []time.Duration {
		c, fs := newTestClient(t, ts, Config{MaxAttempts: 5, JitterSeed: seed})
		c.PostJSON(context.Background(), "/v1/x", nil)
		return fs.delays
	}
	a, b := run(3), run(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different schedule: %v vs %v", a, b)
		}
	}
	other := run(4)
	same := true
	for i := range a {
		if a[i] != other[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter — clients would herd")
	}
}

func TestContextCancellationStopsRetrying(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	fs := &fakeSleep{}
	c := New(Config{BaseURL: ts.URL, HTTPClient: ts.Client(), Sleep: func(sctx context.Context, d time.Duration) error {
		fs.delays = append(fs.delays, d)
		cancel() // cancel during the first backoff
		return sctx.Err()
	}})
	_, _, err := c.PostJSON(ctx, "/v1/x", nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(fs.delays) != 1 {
		t.Fatalf("kept retrying after cancellation: %v", fs.delays)
	}
}

func TestRetriesTransportErrors(t *testing.T) {
	// A server that closes immediately yields connection-refused transport
	// errors for every attempt.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := ts.URL
	ts.Close()
	fs := &fakeSleep{}
	c := New(Config{BaseURL: url, MaxAttempts: 3, Sleep: fs.sleep})
	_, _, err := c.PostJSON(context.Background(), "/v1/x", nil)
	if err == nil || !strings.Contains(err.Error(), "retry budget") {
		t.Fatalf("err = %v", err)
	}
	if got := c.Stats().Attempts; got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
}

// TestRequestIDStableAcrossRetries: all attempts of one logical request
// carry the same X-Request-ID, so coordinator and worker logs correlate a
// retried request as one story rather than three.
func TestRequestIDStableAcrossRetries(t *testing.T) {
	var calls atomic.Int64
	var ids []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ids = append(ids, r.Header.Get("X-Request-ID"))
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`ok`))
	}))
	defer ts.Close()
	c, _ := newTestClient(t, ts, Config{})
	if _, status, err := c.PostJSON(context.Background(), "/v1/x", nil); err != nil || status != 200 {
		t.Fatalf("status=%d err=%v", status, err)
	}
	if len(ids) != 3 {
		t.Fatalf("server saw %d attempts, want 3", len(ids))
	}
	if ids[0] == "" {
		t.Fatal("attempts carry no X-Request-ID")
	}
	if ids[1] != ids[0] || ids[2] != ids[0] {
		t.Fatalf("request id changed across retries: %v", ids)
	}

	// A second logical request draws a fresh ID.
	calls.Store(0)
	prev := ids[0]
	ids = nil
	if _, _, err := c.PostJSON(context.Background(), "/v1/x", nil); err != nil {
		t.Fatal(err)
	}
	if len(ids) == 0 || ids[0] == prev {
		t.Fatalf("second request reused id %q", prev)
	}
}

// TestTraceHeaderPropagation: with a tracer and run ID on ctx the post
// carries X-Trace-Context (parented under the client.post span); without a
// tracer the header is absent entirely, keeping untraced traffic
// byte-identical on the wire.
func TestTraceHeaderPropagation(t *testing.T) {
	var headers []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		headers = append(headers, r.Header.Get(obs.HeaderTraceContext))
		w.Write([]byte(`ok`))
	}))
	defer ts.Close()
	c, _ := newTestClient(t, ts, Config{})

	if _, _, err := c.PostJSON(context.Background(), "/v1/x", nil); err != nil {
		t.Fatal(err)
	}
	if headers[0] != "" {
		t.Fatalf("untraced request sent %s: %q", obs.HeaderTraceContext, headers[0])
	}

	tr := obs.NewTracer(16)
	ctx := obs.WithRunID(obs.WithTracer(context.Background(), tr), "feedc0de00000001")
	if _, _, err := c.PostJSON(ctx, "/v1/x", nil); err != nil {
		t.Fatal(err)
	}
	tc, err := obs.ParseTraceContext(headers[1])
	if err != nil {
		t.Fatalf("traced request header %q: %v", headers[1], err)
	}
	if tc.TraceID != "feedc0de00000001" {
		t.Fatalf("trace id = %q", tc.TraceID)
	}
	// The remote parent is the client.post span wrapping this request, so
	// worker spans nest under the client's view of the call.
	spans := tr.Snapshot()
	if len(spans) != 1 || spans[0].Name != "client.post" {
		t.Fatalf("spans = %+v, want one client.post", spans)
	}
	if tc.ParentID != spans[0].ID {
		t.Fatalf("header parent %d != client.post span %d", tc.ParentID, spans[0].ID)
	}
	attrs := map[string]any{}
	for _, a := range spans[0].Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["attempts"] != 1 {
		t.Fatalf("attempts attr = %v", attrs["attempts"])
	}
	if attrs["request_id"] == nil || attrs["status"] != 200 {
		t.Fatalf("span attrs incomplete: %v", attrs)
	}
}

// TestAttemptsAttrCountsRetries: the client.post span's attempts attr
// reflects the final attempt number after retries.
func TestAttemptsAttrCountsRetries(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`ok`))
	}))
	defer ts.Close()
	c, _ := newTestClient(t, ts, Config{})
	tr := obs.NewTracer(16)
	ctx := obs.WithTracer(context.Background(), tr)
	if _, status, err := c.PostJSON(ctx, "/v1/x", nil); err != nil || status != 200 {
		t.Fatalf("status=%d err=%v", status, err)
	}
	spans := tr.Snapshot()
	if len(spans) != 1 {
		t.Fatalf("spans = %+v", spans)
	}
	for _, a := range spans[0].Attrs {
		if a.Key == "attempts" && a.Value != 3 {
			t.Fatalf("attempts = %v, want 3", a.Value)
		}
	}
}

// armFaults installs a fault injector for the test and restores the clean
// default afterwards, keeping the package-global state from leaking.
func armFaults(t *testing.T, spec string) *faults.Injector {
	t.Helper()
	inj, err := faults.Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	faults.SetDefault(inj)
	t.Cleanup(func() { faults.SetDefault(nil) })
	return inj
}

func TestClientLatencyFaultGoesThroughInjectableSleep(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Write([]byte(`ok`))
	}))
	defer ts.Close()
	armFaults(t, "seed=3,client.latency=delay:1:300ms")
	c, fs := newTestClient(t, ts, Config{})
	start := time.Now()
	out, status, err := c.PostJSON(context.Background(), "/v1/x", nil)
	if err != nil || status != 200 || string(out) != "ok" {
		t.Fatalf("out=%q status=%d err=%v", out, status, err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("latency fault really slept (%v); must go through cfg.Sleep", elapsed)
	}
	if len(fs.delays) != 1 || fs.delays[0] != 300*time.Millisecond {
		t.Fatalf("recorded sleeps %v, want exactly [300ms]", fs.delays)
	}
	if calls.Load() != 1 {
		t.Fatalf("server saw %d calls, want 1 — latency must not drop the request", calls.Load())
	}
}

func TestClientBlackholeFaultBurnsAttemptsOffTheWire(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Write([]byte(`ok`))
	}))
	defer ts.Close()
	inj := armFaults(t, "seed=3,client.blackhole=error:1")
	c, fs := newTestClient(t, ts, Config{MaxAttempts: 3})
	_, _, err := c.PostJSON(context.Background(), "/v1/x", nil)
	if err == nil || !strings.Contains(err.Error(), "retry budget") {
		t.Fatalf("err = %v, want budget exhaustion", err)
	}
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("err = %v, want wrapped ErrInjected", err)
	}
	if calls.Load() != 0 {
		t.Fatalf("server saw %d calls; a blackholed attempt must never reach the wire", calls.Load())
	}
	if len(fs.delays) != 2 {
		t.Fatalf("%d backoff pauses, want MaxAttempts-1", len(fs.delays))
	}
	if inj.Fired() != 3 {
		t.Fatalf("fired = %d, want one blackhole per attempt", inj.Fired())
	}
	if st := c.Stats(); st.Attempts != 3 || st.Failures != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestClientFaultsDisarmedAreFree(t *testing.T) {
	faults.SetDefault(nil)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`ok`))
	}))
	defer ts.Close()
	c, fs := newTestClient(t, ts, Config{})
	if _, status, err := c.PostJSON(context.Background(), "/v1/x", nil); err != nil || status != 200 {
		t.Fatalf("status=%d err=%v", status, err)
	}
	if len(fs.delays) != 0 {
		t.Fatalf("disarmed faults caused sleeps %v", fs.delays)
	}
}
