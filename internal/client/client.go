// Package client is the retrying HTTP client for rayschedd: exponential
// backoff with full jitter, a bounded retry budget, and respect for the
// server's Retry-After hints. It retries exactly the failures the daemon
// declares retryable — transport errors, 429 (queue full), 503 (draining or
// transient fault), 502/504 (intermediaries, deadline expiry) — and never
// retries application errors (4xx validation failures are deterministic;
// repeating them wastes the server's admission budget).
//
// Jitter is drawn from a caller-seeded rng.Source rather than the global
// math/rand so chaos tests replay identical schedules, matching the
// repo-wide determinism discipline.
package client

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rayfade/internal/faults"
	"rayfade/internal/obs"
	"rayfade/internal/rng"
)

// Config shapes the retry policy. The zero value is production-reasonable.
type Config struct {
	// BaseURL prefixes every request path, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient performs the requests; nil selects http.DefaultClient.
	HTTPClient *http.Client
	// MaxAttempts caps tries per request including the first; <= 0 selects 6.
	MaxAttempts int
	// BaseDelay is the backoff unit: attempt k (0-based retry) backs off
	// Uniform(0, min(MaxDelay, BaseDelay·2^k)) — "full jitter", which
	// decorrelates clients that were rejected in the same overload spike.
	// <= 0 selects 25ms.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff; <= 0 selects 2s.
	MaxDelay time.Duration
	// JitterSeed seeds the jitter stream; 0 selects 1. Distinct clients
	// should use distinct seeds or they will herd.
	JitterSeed uint64
	// Sleep, when non-nil, replaces time.Sleep — tests inject a recorder to
	// verify the schedule without real waiting. It must honor ctx.
	Sleep func(ctx context.Context, d time.Duration) error
}

// Stats counts the client's activity; read with the accessor after a run.
type Stats struct {
	// Requests is the number of PostJSON calls.
	Requests uint64
	// Attempts is the number of HTTP round trips (≥ Requests).
	Attempts uint64
	// Retries is Attempts minus first tries.
	Retries uint64
	// Failures is the number of PostJSON calls that exhausted the budget or
	// hit a terminal error.
	Failures uint64
}

// Client is a retrying JSON-over-HTTP client for rayschedd. Safe for
// concurrent use; the jitter stream is mutex-guarded.
type Client struct {
	cfg  Config
	http *http.Client

	mu  sync.Mutex
	src *rng.Source

	requests atomic.Uint64
	attempts atomic.Uint64
	retries  atomic.Uint64
	failures atomic.Uint64
}

// New builds a client from cfg (see Config for defaulting).
func New(cfg Config) *Client {
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 6
	}
	if cfg.BaseDelay <= 0 {
		cfg.BaseDelay = 25 * time.Millisecond
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 2 * time.Second
	}
	if cfg.JitterSeed == 0 {
		cfg.JitterSeed = 1
	}
	h := cfg.HTTPClient
	if h == nil {
		h = http.DefaultClient
	}
	if cfg.Sleep == nil {
		cfg.Sleep = sleepCtx
	}
	return &Client{cfg: cfg, http: h, src: rng.New(cfg.JitterSeed)}
}

// sleepCtx is context-aware time.Sleep.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryable reports whether an HTTP status is worth another attempt.
func retryable(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// backoff computes the pause before retry k (0-based): full jitter over the
// exponential envelope, floored by the server's Retry-After when one was
// given (the server knows its queue better than our exponent does).
func (c *Client) backoff(k int, retryAfter time.Duration) time.Duration {
	env := c.cfg.BaseDelay << uint(k)
	if env > c.cfg.MaxDelay || env <= 0 { // <= 0: shift overflow
		env = c.cfg.MaxDelay
	}
	c.mu.Lock()
	d := time.Duration(c.src.Float64() * float64(env))
	c.mu.Unlock()
	if d < retryAfter {
		d = retryAfter
	}
	return d
}

// parseRetryAfter reads a delay-seconds Retry-After value (the only form
// rayschedd emits); 0 when absent or unparsable.
func parseRetryAfter(resp *http.Response) time.Duration {
	if resp == nil {
		return 0
	}
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// PostJSON posts body to path and returns the response body and status,
// retrying per the policy. A non-2xx terminal status is returned with a nil
// error — the caller distinguishes application failures from transport
// failure; err is non-nil only when the budget is exhausted or ctx ends.
func (c *Client) PostJSON(ctx context.Context, path string, body []byte) ([]byte, int, error) {
	return c.post(ctx, path, "application/json", body)
}

// PostNDJSON posts an NDJSON body (one JSON document per line) to path under
// the same retry policy as PostJSON. Retrying a whole batch is safe: every
// rayschedd batch line is deterministic and cached, so a replay returns
// byte-identical lines.
func (c *Client) PostNDJSON(ctx context.Context, path string, body []byte) ([]byte, int, error) {
	return c.post(ctx, path, "application/x-ndjson", body)
}

// post is the shared retry loop behind PostJSON and PostNDJSON. One request
// ID is minted per logical request and sent as X-Request-ID on every
// attempt, so retries correlate to one line of intent in worker access logs
// instead of presenting as distinct requests; the attempt number rides on
// the span as an attribute. When a tracer governs ctx, the outbound
// requests also carry an X-Trace-Context header naming the run and the
// enclosing span, so a collecting server parents its work under this call.
func (c *Client) post(ctx context.Context, path, contentType string, body []byte) ([]byte, int, error) {
	c.requests.Add(1)
	reqID := obs.NewRequestID()
	ctx, sp := obs.Start(ctx, "client.post")
	sp.SetAttr("path", path)
	sp.SetAttr("request_id", reqID)
	defer sp.End()
	var traceHeader string
	if tc, ok := obs.TraceContextFrom(ctx); ok {
		traceHeader = tc.String()
	}
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
		}
		c.attempts.Add(1)
		sp.SetAttr("attempts", attempt+1)
		var (
			status     int
			respBody   []byte
			retryAfter time.Duration
		)
		// Chaos hooks, free when disarmed: client.latency models a slow link
		// (the injected delay goes through cfg.Sleep, so tests with a fake
		// clock never really wait), client.blackhole models a partition (the
		// attempt burns without touching the wire and is retried per policy).
		// Either site's error kind consumes the attempt as a transport
		// failure.
		delay, err := faults.Check(faults.SiteClientLatency)
		if delay > 0 {
			if serr := c.cfg.Sleep(ctx, delay); serr != nil {
				c.failures.Add(1)
				return nil, 0, serr
			}
		}
		if err == nil {
			_, err = faults.Check(faults.SiteClientBlackhole)
		}
		if err == nil {
			req, rerr := http.NewRequestWithContext(ctx, http.MethodPost, c.cfg.BaseURL+path, bytes.NewReader(body))
			if rerr != nil {
				c.failures.Add(1)
				return nil, 0, rerr
			}
			req.Header.Set("Content-Type", contentType)
			req.Header.Set("X-Request-ID", reqID)
			if traceHeader != "" {
				req.Header.Set(obs.HeaderTraceContext, traceHeader)
			}
			var resp *http.Response
			resp, err = c.http.Do(req)
			if err == nil {
				status = resp.StatusCode
				respBody, err = io.ReadAll(resp.Body)
				retryAfter = parseRetryAfter(resp)
				resp.Body.Close()
			}
		}
		switch {
		case err != nil:
			// Transport failure (or body read failure): retryable unless the
			// context is the cause.
			if ctx.Err() != nil {
				c.failures.Add(1)
				return nil, 0, ctx.Err()
			}
			lastErr = err
		case retryable(status):
			lastErr = fmt.Errorf("client: %s answered %d", path, status)
		default:
			sp.SetAttr("status", status)
			return respBody, status, nil
		}
		if attempt < c.cfg.MaxAttempts-1 {
			if serr := c.cfg.Sleep(ctx, c.backoff(attempt, retryAfter)); serr != nil {
				c.failures.Add(1)
				return nil, 0, serr
			}
		}
	}
	c.failures.Add(1)
	sp.SetAttr("error", true)
	return nil, 0, fmt.Errorf("client: retry budget (%d attempts) exhausted: %w", c.cfg.MaxAttempts, lastErr)
}

// Stats snapshots the activity counters.
func (c *Client) Stats() Stats {
	return Stats{
		Requests: c.requests.Load(),
		Attempts: c.attempts.Load(),
		Retries:  c.retries.Load(),
		Failures: c.failures.Load(),
	}
}
