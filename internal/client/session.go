package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
)

// TopologySession is the server's answer to a topology upload: the handle
// compute requests pass as "topology_ref" in place of the inline document.
type TopologySession struct {
	// Ref is the content-derived handle ("sha256:<hex>"); stable across
	// re-uploads and across daemons.
	Ref string `json:"topology_ref"`
	// Links is the validated topology size.
	Links int `json:"links"`
	// Created is false when the daemon already held this topology.
	Created bool `json:"created"`
}

// UploadTopology registers a netio topology document with the daemon and
// returns its session handle. Because refs are content-derived, uploading is
// idempotent — callers may re-upload freely after a 404 on topology_ref
// (the store is a bounded LRU; entries can be evicted).
func (c *Client) UploadTopology(ctx context.Context, topology []byte) (TopologySession, error) {
	body, status, err := c.PostJSON(ctx, "/v1/topology", topology)
	if err != nil {
		return TopologySession{}, err
	}
	if status != http.StatusOK {
		return TopologySession{}, fmt.Errorf("client: upload topology: %s", serverError(status, body))
	}
	var sess TopologySession
	if err := json.Unmarshal(body, &sess); err != nil {
		return TopologySession{}, fmt.Errorf("client: upload topology: decode response: %w", err)
	}
	return sess, nil
}

// EstimateBatch posts the given request documents (one per NDJSON line) to
// /v1/estimate/batch and returns one response line per request, in order.
// Each returned line is either the byte-identical /v1/estimate success body
// or an {"error": ...} document; telling them apart is the caller's job
// (batches report per-line failures in-band, not by HTTP status).
func (c *Client) EstimateBatch(ctx context.Context, requests [][]byte) ([][]byte, error) {
	if len(requests) == 0 {
		return nil, fmt.Errorf("client: estimate batch: no requests")
	}
	var buf bytes.Buffer
	for _, r := range requests {
		buf.Write(bytes.TrimSpace(r))
		buf.WriteByte('\n')
	}
	body, status, err := c.PostNDJSON(ctx, "/v1/estimate/batch", buf.Bytes())
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("client: estimate batch: %s", serverError(status, body))
	}
	var lines [][]byte
	for _, line := range bytes.Split(body, []byte{'\n'}) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		lines = append(lines, line)
	}
	if len(lines) != len(requests) {
		return lines, fmt.Errorf("client: estimate batch: sent %d lines, got %d back", len(requests), len(lines))
	}
	return lines, nil
}

// serverError renders a non-2xx response for error messages, preferring the
// daemon's JSON error text over raw bytes.
func serverError(status int, body []byte) string {
	var eb struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &eb); err == nil && eb.Error != "" {
		return fmt.Sprintf("status %d: %s", status, eb.Error)
	}
	return fmt.Sprintf("status %d: %s", status, bytes.TrimSpace(body))
}
