package plot

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"rayfade/internal/stats"
)

func simpleChart() Chart {
	return Chart{
		Title:  "test <chart>",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{
			{Name: "a", X: []float64{0, 1, 2}, Y: []float64{1, 3, 2}, Err: []float64{0.1, 0.2, 0.1}},
			{Name: "b", X: []float64{0, 1, 2}, Y: []float64{2, 1, 4}},
		},
	}
}

func TestRenderProducesValidSVG(t *testing.T) {
	var buf bytes.Buffer
	if err := simpleChart().Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<svg", "</svg>", "<polyline", "<circle",
		"test &lt;chart&gt;",     // title escaped
		">a</text>", ">b</text>", // legend entries
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in SVG:\n%s", want, out[:min(400, len(out))])
		}
	}
	// Two polylines (one per series).
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Fatalf("%d polylines", got)
	}
	// Error bars only for series a (3 whiskers).
	if got := strings.Count(out, `stroke-width="1"/>`); got != 3 {
		t.Fatalf("%d error bars, want 3", got)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestRenderErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := (Chart{}).Render(&buf); err == nil {
		t.Fatal("empty chart accepted")
	}
	bad := Chart{Series: []Series{{Name: "x", X: []float64{1}, Y: []float64{1, 2}}}}
	if err := bad.Render(&buf); err == nil {
		t.Fatal("ragged series accepted")
	}
	nan := Chart{Series: []Series{{Name: "x", X: []float64{1}, Y: []float64{math.NaN()}}}}
	if err := nan.Render(&buf); err == nil {
		t.Fatal("NaN point accepted")
	}
	wrongErr := Chart{Series: []Series{{Name: "x", X: []float64{1, 2}, Y: []float64{1, 2}, Err: []float64{0.1}}}}
	if err := wrongErr.Render(&buf); err == nil {
		t.Fatal("ragged error bars accepted")
	}
}

func TestRenderDegenerateRanges(t *testing.T) {
	// Single point: x range must be widened, not divided by zero.
	c := Chart{Series: []Series{{Name: "p", X: []float64{5}, Y: []float64{0}}}}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NaN") {
		t.Fatal("degenerate chart produced NaN coordinates")
	}
}

func TestFromSeries(t *testing.T) {
	s := stats.NewSeries([]float64{1, 2})
	s.Observe(0, 4)
	s.Observe(0, 6)
	s.Observe(1, 10)
	out, err := FromSeries([]float64{1, 2}, []string{"curve"}, map[string]*stats.Series{"curve": s})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Y[0] != 5 || out[0].Y[1] != 10 {
		t.Fatalf("FromSeries = %+v", out)
	}
	if out[0].Err[0] <= 0 {
		t.Fatal("missing error bars")
	}
	if _, err := FromSeries([]float64{1}, []string{"absent"}, nil); err == nil {
		t.Fatal("unknown series accepted")
	}
}

func TestTicksCoverRange(t *testing.T) {
	for _, c := range [][2]float64{{0, 1}, {0, 100}, {0.05, 1}, {3, 7}, {0, 22.4}} {
		ts := ticks(c[0], c[1], 6)
		if len(ts) < 2 {
			t.Fatalf("range %v: only %d ticks", c, len(ts))
		}
		for _, v := range ts {
			if v < c[0]-1e-9 || v > c[1]+1e-9 {
				t.Fatalf("tick %g outside [%g,%g]", v, c[0], c[1])
			}
		}
	}
}

func BenchmarkRender(b *testing.B) {
	c := simpleChart()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := c.Render(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
