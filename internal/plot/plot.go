// Package plot renders line charts with error bars as standalone SVG —
// enough to regenerate the paper's figures as images straight from the
// experiment results, with no dependencies beyond the standard library.
//
// The renderer is intentionally small: numeric axes with automatic ticks,
// multiple series with distinct strokes, optional ±stderr whiskers, and a
// legend. It is not a general plotting library; it is the part of one this
// repository needs.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"

	"rayfade/internal/stats"
)

// Series is one polyline with optional per-point error bars.
type Series struct {
	Name string
	X    []float64
	Y    []float64
	Err  []float64 // optional; same length as Y when present
}

// Chart is a complete figure.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// W, H are the pixel dimensions (defaults 720×480).
	W, H int
}

// palette holds visually distinct stroke colors (colorblind-safe-ish).
var palette = []string{"#0072b2", "#d55e00", "#009e73", "#cc79a7", "#f0e442", "#56b4e9"}

// dashes distinguishes series beyond color.
var dashes = []string{"", "6,3", "2,2", "8,3,2,3"}

// FromSeries converts a stats series map (as produced by the sim package)
// into chart series, in the given name order.
func FromSeries(xs []float64, names []string, series map[string]*stats.Series) ([]Series, error) {
	out := make([]Series, 0, len(names))
	for _, n := range names {
		s, ok := series[n]
		if !ok {
			return nil, fmt.Errorf("plot: unknown series %q", n)
		}
		out = append(out, Series{
			Name: n,
			X:    append([]float64(nil), xs...),
			Y:    s.Means(),
			Err:  s.StdErrs(),
		})
	}
	return out, nil
}

// Render writes the chart as a standalone SVG document.
func (c Chart) Render(w io.Writer) error {
	if len(c.Series) == 0 {
		return fmt.Errorf("plot: chart has no series")
	}
	width, height := c.W, c.H
	if width <= 0 {
		width = 720
	}
	if height <= 0 {
		height = 480
	}
	const (
		marginL = 64
		marginR = 16
		marginT = 36
		marginB = 48
	)
	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := 0.0, math.Inf(-1) // anchor y at 0: these are counts/rates
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("plot: series %q has %d x for %d y", s.Name, len(s.X), len(s.Y))
		}
		if s.Err != nil && len(s.Err) != len(s.Y) {
			return fmt.Errorf("plot: series %q has %d error bars for %d points", s.Name, len(s.Err), len(s.Y))
		}
		for i := range s.X {
			if bad(s.X[i]) || bad(s.Y[i]) {
				return fmt.Errorf("plot: series %q has non-finite point %d", s.Name, i)
			}
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			hi := s.Y[i]
			if s.Err != nil {
				hi += s.Err[i]
			}
			ymax = math.Max(ymax, hi)
		}
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax <= ymin {
		ymax = ymin + 1
	}
	ymax *= 1.05 // headroom

	px := func(x float64) float64 { return marginL + (x-xmin)/(xmax-xmin)*plotW }
	py := func(y float64) float64 { return marginT + (1-(y-ymin)/(ymax-ymin))*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	if c.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="22" font-family="sans-serif" font-size="15" text-anchor="middle">%s</text>`+"\n",
			width/2, escape(c.Title))
	}

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
		marginL, py(ymin), px(xmax), py(ymin))
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%g" stroke="black"/>`+"\n",
		marginL, marginT, marginL, py(ymin))

	// Ticks.
	for _, tx := range ticks(xmin, xmax, 6) {
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
			px(tx), py(ymin), px(tx), py(ymin)+5)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			px(tx), py(ymin)+18, fmtTick(tx))
	}
	for _, ty := range ticks(ymin, ymax, 6) {
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%d" y2="%g" stroke="black"/>`+"\n",
			float64(marginL)-5, py(ty), marginL, py(ty))
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			float64(marginL)-8, py(ty)+4, fmtTick(ty))
		fmt.Fprintf(&b, `<line x1="%d" y1="%g" x2="%g" y2="%g" stroke="#dddddd"/>`+"\n",
			marginL, py(ty), px(xmax), py(ty))
	}
	if c.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%g" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
			float64(marginL)+plotW/2, height-10, escape(c.XLabel))
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, `<text x="16" y="%g" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 %g)">%s</text>`+"\n",
			float64(marginT)+plotH/2, float64(marginT)+plotH/2, escape(c.YLabel))
	}

	// Series.
	for k, s := range c.Series {
		color := palette[k%len(palette)]
		dash := dashes[(k/len(palette))%len(dashes)]
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.2f,%.2f", px(s.X[i]), py(s.Y[i])))
		}
		dashAttr := ""
		if dash != "" {
			dashAttr = fmt.Sprintf(` stroke-dasharray="%s"`, dash)
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"%s/>`+"\n",
			strings.Join(pts, " "), color, dashAttr)
		for i := range s.X {
			fmt.Fprintf(&b, `<circle cx="%.2f" cy="%.2f" r="2.4" fill="%s"/>`+"\n",
				px(s.X[i]), py(s.Y[i]), color)
			if s.Err != nil && s.Err[i] > 0 {
				fmt.Fprintf(&b, `<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="%s" stroke-width="1"/>`+"\n",
					px(s.X[i]), py(s.Y[i]-s.Err[i]), px(s.X[i]), py(s.Y[i]+s.Err[i]), color)
			}
		}
	}

	// Legend.
	for k, s := range c.Series {
		lx := float64(marginL) + 10
		ly := float64(marginT) + 14 + float64(k)*16
		color := palette[k%len(palette)]
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="2"/>`+"\n",
			lx, ly-4, lx+22, ly-4, color)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			lx+28, ly, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func bad(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }

// ticks returns ~n nicely rounded tick positions covering [lo, hi].
func ticks(lo, hi float64, n int) []float64 {
	if n < 2 {
		n = 2
	}
	span := hi - lo
	step := math.Pow(10, math.Floor(math.Log10(span/float64(n))))
	for span/step > float64(n)*2 {
		step *= 2
		if span/step <= float64(n)*2 {
			break
		}
		step *= 2.5
	}
	var ts []float64
	start := math.Ceil(lo/step) * step
	for t := start; t <= hi+1e-12*span; t += step {
		ts = append(ts, t)
		if len(ts) > 4*n {
			break
		}
	}
	return ts
}

func fmtTick(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e6 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3g", v)
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
