package graphsched

import (
	"testing"
	"testing/quick"

	"rayfade/internal/capacity"
	"rayfade/internal/network"
	"rayfade/internal/rng"
)

func fig1Matrix(t testing.TB, seed uint64, n int) *network.Matrix {
	t.Helper()
	cfg := network.Figure1Config()
	cfg.N = n
	net, err := network.Random(cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return net.Gains()
}

func TestFromMatrixSymmetric(t *testing.T) {
	m := fig1Matrix(t, 1, 30)
	g := FromMatrix(m, 2.5, DefaultThreshold)
	for i := 0; i < g.N; i++ {
		if g.Conflicts(i, i) {
			t.Fatalf("self-conflict at %d", i)
		}
		for j := 0; j < g.N; j++ {
			if g.Conflicts(i, j) != g.Conflicts(j, i) {
				t.Fatalf("asymmetric conflict %d-%d", i, j)
			}
		}
	}
	// Degrees consistent with adjacency.
	for i := 0; i < g.N; i++ {
		count := 0
		for j := 0; j < g.N; j++ {
			if g.Conflicts(i, j) {
				count++
			}
		}
		if count != g.Degree(i) {
			t.Fatalf("degree mismatch at %d: %d vs %d", i, count, g.Degree(i))
		}
	}
	if g.Edges() < 1 {
		t.Fatal("Figure-1 density should produce conflicts")
	}
}

func TestFromMatrixPanics(t *testing.T) {
	m := fig1Matrix(t, 1, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromMatrix(m, 2.5, 0)
}

func TestIndependentSetIsIndependent(t *testing.T) {
	m := fig1Matrix(t, 3, 60)
	g := FromMatrix(m, 2.5, DefaultThreshold)
	set := g.IndependentSet()
	if len(set) == 0 {
		t.Fatal("empty independent set")
	}
	for a := range set {
		for b := a + 1; b < len(set); b++ {
			if g.Conflicts(set[a], set[b]) {
				t.Fatalf("links %d and %d conflict", set[a], set[b])
			}
		}
	}
	// Maximality: every outside link conflicts with someone inside.
	inSet := map[int]bool{}
	for _, i := range set {
		inSet[i] = true
	}
	for i := 0; i < g.N; i++ {
		if inSet[i] {
			continue
		}
		conflicting := false
		for _, s := range set {
			if g.Conflicts(i, s) {
				conflicting = true
				break
			}
		}
		if !conflicting {
			t.Fatalf("link %d could join the independent set", i)
		}
	}
}

func TestColoringValid(t *testing.T) {
	m := fig1Matrix(t, 5, 60)
	g := FromMatrix(m, 2.5, DefaultThreshold)
	classes := g.Coloring()
	seen := map[int]bool{}
	for _, class := range classes {
		for a := range class {
			if seen[class[a]] {
				t.Fatalf("link %d colored twice", class[a])
			}
			seen[class[a]] = true
			for b := a + 1; b < len(class); b++ {
				if g.Conflicts(class[a], class[b]) {
					t.Fatalf("same-color conflict %d-%d", class[a], class[b])
				}
			}
		}
	}
	if len(seen) != g.N {
		t.Fatalf("coloring covers %d of %d links", len(seen), g.N)
	}
	// Greedy bound: colors ≤ max degree + 1.
	maxDeg := 0
	for i := 0; i < g.N; i++ {
		if g.Degree(i) > maxDeg {
			maxDeg = g.Degree(i)
		}
	}
	if len(classes) > maxDeg+1 {
		t.Fatalf("%d colors exceeds Δ+1 = %d", len(classes), maxDeg+1)
	}
}

// The headline comparison: graph-feasible sets are not always
// SINR-feasible (accumulation of weak interferers), while the SINR-aware
// greedy's output is always independent-set-checkable AND SINR-feasible.
func TestGraphModelMissesAccumulation(t *testing.T) {
	violationsSeen := false
	for seed := uint64(0); seed < 12 && !violationsSeen; seed++ {
		m := fig1Matrix(t, seed+50, 100)
		g := FromMatrix(m, 2.5, DefaultThreshold)
		ev := EvaluateSchedule(m, g.Coloring(), 2.5)
		if ev.Scheduled != m.N {
			t.Fatalf("schedule covers %d of %d", ev.Scheduled, m.N)
		}
		if ev.Violations > 0 {
			violationsSeen = true
		}
	}
	if !violationsSeen {
		t.Fatal("expected at least one instance where the graph schedule violates the SINR constraint")
	}
}

func TestSINRGreedyAlwaysSurvivesEvaluation(t *testing.T) {
	cfg := network.Figure1Config()
	net, err := network.Random(cfg, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	m := net.Gains()
	set := capacity.GreedyUniform(net, 2.5)
	ev := EvaluateSchedule(m, [][]int{set}, 2.5)
	if ev.Violations != 0 {
		t.Fatalf("SINR-aware set had %d violations under its own evaluation", ev.Violations)
	}
}

// Property: independent sets and colorings are structurally valid for any
// threshold and instance.
func TestQuickGraphStructures(t *testing.T) {
	f := func(seed uint64, tauRaw uint8) bool {
		m := fig1Matrix(t, seed, 25)
		tau := 0.1 + float64(tauRaw%10)/10
		g := FromMatrix(m, 2.5, tau)
		set := g.IndependentSet()
		for a := range set {
			for b := a + 1; b < len(set); b++ {
				if g.Conflicts(set[a], set[b]) {
					return false
				}
			}
		}
		covered := 0
		for _, class := range g.Coloring() {
			covered += len(class)
		}
		return covered == g.N
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// A tighter conflict threshold (smaller τ) yields more edges, hence no
// larger independent sets.
func TestThresholdMonotonicity(t *testing.T) {
	m := fig1Matrix(t, 11, 80)
	loose := FromMatrix(m, 2.5, 0.9)
	tight := FromMatrix(m, 2.5, 0.1)
	if tight.Edges() < loose.Edges() {
		t.Fatalf("tight τ has fewer edges: %d < %d", tight.Edges(), loose.Edges())
	}
	if len(tight.IndependentSet()) > len(loose.IndependentSet()) {
		t.Fatal("tight τ produced a larger independent set")
	}
}

func BenchmarkFromMatrix100(b *testing.B) {
	m := fig1Matrix(b, 1, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromMatrix(m, 2.5, DefaultThreshold)
	}
}

func BenchmarkColoring100(b *testing.B) {
	m := fig1Matrix(b, 1, 100)
	g := FromMatrix(m, 2.5, DefaultThreshold)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Coloring()
	}
}
