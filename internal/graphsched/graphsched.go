// Package graphsched implements the graph-based interference baseline the
// paper's introduction contrasts the SINR world against: interference is
// abstracted into a binary conflict graph, and scheduling reduces to
// independent sets (capacity) and colorings (latency).
//
// The conflict graph is built from the gain matrix: links i and j conflict
// when either imposes more than a threshold fraction of the other's
// interference tolerance (a pairwise affectance test). This is the natural
// "protocol model" surrogate a downstream user would reach for — and the
// comparison experiments show exactly what the paper's line of work argues:
// pairwise conflicts miss the accumulation of many weak interferers, so
// graph-feasible sets are NOT always SINR-feasible, while SINR-aware
// algorithms retain guarantees under both evaluations.
package graphsched

import (
	"fmt"
	"sort"

	"rayfade/internal/network"
	"rayfade/internal/sinr"
)

// ConflictGraph is a binary interference abstraction over n links.
type ConflictGraph struct {
	N   int
	adj [][]bool
	deg []int
}

// DefaultThreshold is the pairwise-affectance level above which two links
// are declared conflicting. 0.5 means a single neighbor may consume at most
// half of a link's interference tolerance.
const DefaultThreshold = 0.5

// FromMatrix builds the conflict graph at threshold beta: links i≠j
// conflict iff a(i,j) > tau or a(j,i) > tau (uncapped affectance).
func FromMatrix(m *network.Matrix, beta, tau float64) *ConflictGraph {
	if tau <= 0 {
		panic(fmt.Sprintf("graphsched: conflict threshold τ = %g must be positive", tau))
	}
	g := &ConflictGraph{N: m.N, adj: make([][]bool, m.N), deg: make([]int, m.N)}
	for i := range g.adj {
		g.adj[i] = make([]bool, m.N)
	}
	for i := 0; i < m.N; i++ {
		for j := i + 1; j < m.N; j++ {
			if sinr.AffectanceUncapped(m, beta, i, j) > tau ||
				sinr.AffectanceUncapped(m, beta, j, i) > tau {
				g.adj[i][j] = true
				g.adj[j][i] = true
				g.deg[i]++
				g.deg[j]++
			}
		}
	}
	return g
}

// Conflicts reports whether links i and j conflict.
func (g *ConflictGraph) Conflicts(i, j int) bool { return g.adj[i][j] }

// Degree returns the number of conflicts of link i.
func (g *ConflictGraph) Degree(i int) int { return g.deg[i] }

// Edges returns the number of conflict pairs.
func (g *ConflictGraph) Edges() int {
	total := 0
	for _, d := range g.deg {
		total += d
	}
	return total / 2
}

// IndependentSet greedily builds a maximal independent set, scanning links
// in non-decreasing degree order (the classic heuristic). This is the
// graph-model answer to capacity maximization.
func (g *ConflictGraph) IndependentSet() []int {
	order := make([]int, g.N)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return g.deg[order[a]] < g.deg[order[b]] })
	blocked := make([]bool, g.N)
	var set []int
	for _, i := range order {
		if blocked[i] {
			continue
		}
		set = append(set, i)
		for j := 0; j < g.N; j++ {
			if g.adj[i][j] {
				blocked[j] = true
			}
		}
	}
	sort.Ints(set)
	return set
}

// Coloring greedily colors the conflict graph (largest-degree-first) and
// returns the color classes — the graph-model answer to latency
// minimization: one slot per color.
func (g *ConflictGraph) Coloring() [][]int {
	order := make([]int, g.N)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return g.deg[order[a]] > g.deg[order[b]] })
	color := make([]int, g.N)
	for i := range color {
		color[i] = -1
	}
	numColors := 0
	used := make([]bool, g.N+1)
	for _, i := range order {
		for k := range used {
			used[k] = false
		}
		for j := 0; j < g.N; j++ {
			if g.adj[i][j] && color[j] >= 0 {
				used[color[j]] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		color[i] = c
		if c+1 > numColors {
			numColors = c + 1
		}
	}
	classes := make([][]int, numColors)
	for i, c := range color {
		classes[c] = append(classes[c], i)
	}
	return classes
}

// Evaluation compares a graph-model schedule against ground truth: for each
// color class (slot), how many of its links actually succeed under the real
// SINR constraint.
type Evaluation struct {
	// Slots is the schedule length (number of color classes).
	Slots int
	// Scheduled is the total number of link-slots scheduled.
	Scheduled int
	// SINRSuccesses is how many scheduled links actually reach β when
	// their slot transmits, evaluated in the non-fading SINR model.
	SINRSuccesses int
	// Violations counts scheduled links that fail the real constraint —
	// the accumulation effect the binary abstraction cannot see.
	Violations int
}

// EvaluateSchedule replays color classes under the true SINR model.
func EvaluateSchedule(m *network.Matrix, classes [][]int, beta float64) Evaluation {
	ev := Evaluation{Slots: len(classes)}
	for _, slot := range classes {
		ev.Scheduled += len(slot)
		active := sinr.SetToActive(m.N, slot)
		ok := sinr.CountSuccesses(m, active, beta)
		ev.SINRSuccesses += ok
		ev.Violations += len(slot) - ok
	}
	return ev
}
