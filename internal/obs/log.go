package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"sync/atomic"
)

// Structured logging: thin helpers over log/slog so the four binaries and
// the daemon share one configuration surface (a -log-level flag) and one
// identifier scheme. Run IDs tag one CLI invocation or experiment; request
// IDs tag one daemon request. Both come from crypto/rand, never from the
// experiment RNG streams — logging must not perturb deterministic outputs.

// ParseLevel maps the -log-level flag values onto slog levels.
func ParseLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", s)
	}
}

// NewLogger returns a slog.Logger writing to w at the given level. asJSON
// selects the JSON handler (the daemon's machine-parseable access logs);
// text is the CLI default.
func NewLogger(w io.Writer, level slog.Level, asJSON bool) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if asJSON {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

// discardLogger drops everything — the default for instrumented packages
// until a binary installs a real logger.
var discardLogger = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))

// Discard returns a logger that drops every record.
func Discard() *slog.Logger { return discardLogger }

// NewRunID returns a fresh 8-byte hex identifier for one run (one CLI
// invocation, one experiment, one daemon boot).
func NewRunID() string {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		// crypto/rand failing is unheard of; degrade to the request
		// sequence rather than aborting an experiment over a log tag.
		return fmt.Sprintf("seq-%d", reqSeq.Add(1))
	}
	return hex.EncodeToString(b[:])
}

type runIDKey struct{}

// WithRunID returns a ctx tagged with the run identifier.
func WithRunID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, runIDKey{}, id)
}

// RunID returns the run identifier carried by ctx, or "".
func RunID(ctx context.Context) string {
	id, _ := ctx.Value(runIDKey{}).(string)
	return id
}

// bootID distinguishes request IDs across daemon restarts; reqSeq orders
// them within one boot.
var (
	bootID = NewRunID()[:6]
	reqSeq atomic.Uint64
)

// NewRequestID returns a process-unique request identifier, cheap enough
// to mint per HTTP request.
func NewRequestID() string {
	return fmt.Sprintf("%s-%06d", bootID, reqSeq.Add(1))
}
