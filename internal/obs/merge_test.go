package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"
)

// buildWorkerBundle runs a little span tree on a fresh tracer and snapshots
// it as instance's contribution to the trace, with the root span
// remote-parented under coordinator span remoteParent.
func buildWorkerBundle(t *testing.T, instance string, remoteParent uint64) TraceBundle {
	t.Helper()
	tr := NewTracer(32)
	ctx := WithTracer(context.Background(), tr)
	rctx, root := Start(ctx, "http./v1/shard")
	root.SetRemoteParent(remoteParent)
	_, inner := Start(rctx, "shard.compute")
	inner.End()
	root.End()
	return tr.Bundle("4b8bc3c7d5db6fea", instance)
}

func TestWriteMergedTrace(t *testing.T) {
	local := NewTracer(32)
	lctx := WithTracer(context.Background(), local)
	_, dispatch := Start(lctx, "dist.shard")
	dispatchID := dispatch.ID()
	dispatch.End()

	b1 := buildWorkerBundle(t, "worker-a", dispatchID)
	b2 := buildWorkerBundle(t, "worker-b", dispatchID)
	// Worker-b's epoch predates the coordinator's: its shifted timestamps
	// would go negative and must clamp to zero, not fail validation.
	b2.EpochUnixNano = local.EpochUnixNano() - int64(time.Hour)

	var buf bytes.Buffer
	if err := WriteMergedTrace(&buf, local, []TraceBundle{b1, b2}); err != nil {
		t.Fatal(err)
	}
	stats, err := ValidateTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("merged trace invalid: %v\n%s", err, buf.String())
	}
	if stats.Events != 8 {
		t.Fatalf("events = %d, want 8 (1 coordinator + 2x2 worker spans + 3 process names)", stats.Events)
	}
	if stats.Procs != 3 {
		t.Fatalf("procs = %d, want 3", stats.Procs)
	}
	if !stats.Nested {
		t.Fatal("worker span nesting lost in merge")
	}

	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			TID  uint64         `json:"tid"`
			TS   float64        `json:"ts"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	names := map[string]int{}
	var remoteLinks, shifted int
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			if ev.Name != "process_name" {
				t.Fatalf("unexpected metadata event %q", ev.Name)
			}
			names[ev.Args["name"].(string)] = ev.PID
			continue
		}
		if ev.Name == "http./v1/shard" {
			// The cross-process link points at the coordinator-namespace
			// dispatch span, un-remapped, and is flagged remote.
			if ev.Args["remote_parent"] != true {
				t.Fatalf("worker root span lacks remote_parent: %+v", ev)
			}
			if got := ev.Args["parent_span"].(float64); uint64(got) != dispatchID {
				t.Fatalf("remote parent = %v, want %d", got, dispatchID)
			}
			remoteLinks++
			if ev.PID >= 2 && ev.TID < uint64(ev.PID-1)*workerIDStride {
				t.Fatalf("worker tid %d not remapped into pid %d's range", ev.TID, ev.PID)
			}
			if ev.TS == 0 {
				shifted++
			}
		}
	}
	if names["coordinator"] != 1 || names["worker-a"] != 2 || names["worker-b"] != 3 {
		t.Fatalf("process names = %v", names)
	}
	if remoteLinks != 2 {
		t.Fatalf("remote links = %d, want 2", remoteLinks)
	}
	if shifted == 0 {
		t.Fatal("worker-b's pre-epoch timestamps did not clamp to zero")
	}
}

func TestWriteMergedTraceNilLocal(t *testing.T) {
	b := buildWorkerBundle(t, "solo", 0)
	var buf bytes.Buffer
	if err := WriteMergedTrace(&buf, nil, []TraceBundle{b}); err != nil {
		t.Fatal(err)
	}
	stats, err := ValidateTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("merged trace with nil local tracer invalid: %v", err)
	}
	// 2 worker spans + 2 process names (the coordinator track is always
	// labeled, even when it contributed no spans); spans all on 1 pid.
	if stats.Events != 4 || stats.Procs != 1 {
		t.Fatalf("events=%d procs=%d, want 4 events with spans on 1 proc", stats.Events, stats.Procs)
	}
}

func TestBundleNilTracer(t *testing.T) {
	var tr *Tracer
	b := tr.Bundle("abc", "x")
	if b.TraceID != "abc" || b.Instance != "x" || len(b.Spans) != 0 || b.EpochUnixNano != 0 {
		t.Fatalf("nil tracer bundle = %+v", b)
	}
}
