package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is one named monotonic tally. The counting method is a single
// atomic add, cheap enough for batched inner-loop use; a nil *Counter is a
// valid "counting off" value (Add is a no-op, Load reports 0).
type Counter struct {
	name string
	v    atomic.Int64
}

// Name returns the counter's registry name.
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Add accumulates n. Nil-safe.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Load returns the current value. Nil-safe (0).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Registry is a concurrency-safe set of named counters. It is the single
// substrate the progress reporter, the daemon's /metrics page, and the
// /debug/obs endpoint all render views of — one tally, several faces.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: make(map[string]*Counter)}
}

// Counter returns the named counter, creating it at zero on first use.
// Callers cache the pointer and Add on it directly — the lookup is off the
// hot path. Nil-safe (returns a nil counter).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{name: name}
	r.counters[name] = c
	return c
}

// Snapshot returns a point-in-time copy of every counter. Nil-safe (nil).
func (r *Registry) Snapshot() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Load()
	}
	return out
}

// Names returns the registered counter names, sorted — the deterministic
// iteration order every rendered view uses.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
