package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// TestRingWraparoundConcurrent drives a tiny ring far past wraparound from
// many goroutines completing spans at once, with concurrent readers. Under
// -race (CI runs this package with the detector) this is the proof that slot
// reuse in the ring is synchronized; without it, that the ring's bookkeeping
// stays exact under contention.
func TestRingWraparoundConcurrent(t *testing.T) {
	const ringCap, workers, iters = 8, 8, 500
	tr := NewTracer(ringCap)
	ctx := WithTracer(context.Background(), tr)

	var readers, writers sync.WaitGroup
	stop := make(chan struct{})
	// Readers snapshot continuously while writers wrap the ring.
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, s := range tr.Snapshot() {
					if s.ID == 0 {
						t.Error("snapshot surfaced an unrecorded span")
						return
					}
				}
			}
		}()
	}
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < iters; i++ {
				_, sp := Start(ctx, "wrap")
				sp.SetAttr("i", i)
				sp.End()
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	if got := tr.Recorded(); got != workers*iters {
		t.Fatalf("Recorded = %d, want %d", got, workers*iters)
	}
	spans := tr.Snapshot()
	if len(spans) != ringCap {
		t.Fatalf("ring holds %d spans after wraparound, want %d", len(spans), ringCap)
	}
	seen := map[uint64]bool{}
	for _, s := range spans {
		if seen[s.ID] {
			t.Fatalf("ring holds span id %d twice", s.ID)
		}
		seen[s.ID] = true
	}
}

// TestRegistryReadsRaceRegistration interleaves Counter registration of new
// names with Snapshot and Names readers. The -race run proves the registry's
// map is never read bare while a registration mutates it.
func TestRegistryReadsRaceRegistration(t *testing.T) {
	reg := NewRegistry()
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				reg.Counter(fmt.Sprintf("c.%d.%d", w, i)).Add(1)
				if i%17 == 0 {
					if snap := reg.Snapshot(); len(snap) == 0 {
						t.Error("snapshot empty after registrations")
						return
					}
					names := reg.Names()
					for j := 1; j < len(names); j++ {
						if names[j-1] >= names[j] {
							t.Errorf("Names not sorted: %q before %q", names[j-1], names[j])
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := len(reg.Names()); got != workers*perWorker {
		t.Fatalf("registered %d counters, want %d", got, workers*perWorker)
	}
	for name, v := range reg.Snapshot() {
		if v != 1 {
			t.Fatalf("counter %s = %d, want 1", name, v)
		}
	}
}
