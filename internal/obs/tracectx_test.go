package obs

import (
	"context"
	"testing"
)

func TestTraceContextRoundtrip(t *testing.T) {
	tc := TraceContext{TraceID: "4b8bc3c7d5db6fea", ParentID: 0xdeadbeef}
	s := tc.String()
	if s != "00-4b8bc3c7d5db6fea-00000000deadbeef-01" {
		t.Fatalf("String() = %q", s)
	}
	got, err := ParseTraceContext(s)
	if err != nil {
		t.Fatal(err)
	}
	if got != tc {
		t.Fatalf("roundtrip = %+v, want %+v", got, tc)
	}
	// Zero parent is legal: "attach at the root".
	if got, err := ParseTraceContext(TraceContext{TraceID: "a"}.String()); err != nil || got.ParentID != 0 {
		t.Fatalf("zero-parent roundtrip: %+v, %v", got, err)
	}
}

func TestParseTraceContextRejects(t *testing.T) {
	bad := map[string]string{
		"empty":            "",
		"three fields":     "00-abc-0000000000000001",
		"five fields":      "00-abc-0000000000000001-01-00",
		"bad version":      "01-abc-0000000000000001-01",
		"empty trace id":   "00--0000000000000001-01",
		"uppercase":        "00-ABC-0000000000000001-01",
		"long trace id":    "00-" + "0123456789abcdef0123456789abcdef0" + "-0000000000000001-01",
		"short parent":     "00-abc-01-01",
		"nonhex parent":    "00-abc-000000000000000g-01",
		"bad flags":        "00-abc-0000000000000001-1",
		"trace id not hex": "00-xyz-0000000000000001-01",
		"flags not hex":    "00-abc-0000000000000001-zz",
	}
	for name, s := range bad {
		if _, err := ParseTraceContext(s); err == nil {
			t.Errorf("%s: accepted %q", name, s)
		}
	}
}

func TestTraceContextFrom(t *testing.T) {
	// No tracer → no context, regardless of run ID: untraced runs must send
	// no header at all.
	ctx := WithRunID(context.Background(), "4b8bc3c7d5db6fea")
	if _, ok := TraceContextFrom(ctx); ok {
		t.Fatal("context without tracer produced a trace context")
	}

	tr := NewTracer(8)
	ctx = WithTracer(ctx, tr)
	tc, ok := TraceContextFrom(ctx)
	if !ok || tc.TraceID != "4b8bc3c7d5db6fea" || tc.ParentID != 0 {
		t.Fatalf("root-level context = %+v ok=%v", tc, ok)
	}

	sctx, sp := Start(ctx, "dispatch")
	defer sp.End()
	tc, ok = TraceContextFrom(sctx)
	if !ok || tc.ParentID != sp.ID() {
		t.Fatalf("in-span context = %+v ok=%v, want parent %d", tc, ok, sp.ID())
	}

	// A tracer but no (or unusable) run ID also yields no context.
	if _, ok := TraceContextFrom(WithTracer(context.Background(), tr)); ok {
		t.Fatal("context without run id produced a trace context")
	}
	bad := WithTracer(WithRunID(context.Background(), "NOT-HEX"), tr)
	if _, ok := TraceContextFrom(bad); ok {
		t.Fatal("non-hex run id produced a trace context")
	}
}
