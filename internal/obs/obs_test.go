package obs

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
)

func TestSpanNesting(t *testing.T) {
	tr := NewTracer(16)
	ctx := WithTracer(context.Background(), tr)

	ctx1, root := Start(ctx, "root")
	if root == nil {
		t.Fatal("root span nil with tracer installed")
	}
	ctx2, child := Start(ctx1, "child")
	_, grand := Start(ctx2, "grandchild")
	grand.End()
	child.End()
	root.End()

	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	// Completion order: grandchild, child, root.
	g, c, r := spans[0], spans[1], spans[2]
	if g.Parent != c.ID || c.Parent != r.ID || r.Parent != 0 {
		t.Fatalf("parent chain wrong: %+v", spans)
	}
	if g.Root != r.ID || c.Root != r.ID || r.Root != r.ID {
		t.Fatalf("root ids wrong: %+v", spans)
	}
	if g.Start < c.Start || c.Start < r.Start {
		t.Fatalf("start offsets not monotone down the tree: %+v", spans)
	}
}

func TestStartWithoutTracerIsFree(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		c2, sp := Start(ctx, "nothing")
		sp.SetAttr("k", 1)
		sp.Add("n", 5)
		sp.End()
		if c2 != ctx {
			t.Fatal("disabled Start must return the original ctx")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %.1f per op, want 0", allocs)
	}
}

func TestNilSafety(t *testing.T) {
	var sp *Span
	sp.SetAttr("a", 1)
	sp.Add("b", 2)
	sp.End()
	var tr *Tracer
	if tr.Recorded() != 0 || tr.Snapshot() != nil {
		t.Fatal("nil tracer must read as empty")
	}
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatalf("nil tracer trace: %v", err)
	}
	if _, err := ValidateTrace(buf.Bytes()); err != nil {
		t.Fatalf("empty trace invalid: %v", err)
	}
	var c *Counter
	c.Add(3)
	if c.Load() != 0 || c.Name() != "" {
		t.Fatal("nil counter must read as zero")
	}
	var reg *Registry
	if reg.Counter("x") != nil || reg.Snapshot() != nil || reg.Names() != nil {
		t.Fatal("nil registry must read as empty")
	}
}

func TestRingEviction(t *testing.T) {
	tr := NewTracer(4)
	ctx := WithTracer(context.Background(), tr)
	for i := 0; i < 10; i++ {
		_, sp := Start(ctx, "s")
		sp.End()
	}
	if got := tr.Recorded(); got != 10 {
		t.Fatalf("Recorded = %d, want 10", got)
	}
	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("ring kept %d spans, want 4", len(spans))
	}
	// The ring keeps the most recent completions: ids 7..10.
	for i, s := range spans {
		if want := uint64(7 + i); s.ID != want {
			t.Fatalf("span %d has id %d, want %d", i, s.ID, want)
		}
	}
}

func TestEndIdempotent(t *testing.T) {
	tr := NewTracer(8)
	ctx := WithTracer(context.Background(), tr)
	_, sp := Start(ctx, "once")
	sp.End()
	sp.End()
	if got := tr.Recorded(); got != 1 {
		t.Fatalf("double End recorded %d spans, want 1", got)
	}
}

func TestSpanAttrsAndCounters(t *testing.T) {
	tr := NewTracer(8)
	ctx := WithTracer(context.Background(), tr)
	_, sp := Start(ctx, "attrs")
	sp.SetAttr("links", 100)
	sp.SetAttr("links", 200) // overwrite
	sp.Add("draws", 5)
	sp.Add("draws", 7)
	sp.End()
	rec := tr.Snapshot()[0]
	got := map[string]any{}
	for _, a := range rec.Attrs {
		got[a.Key] = a.Value
	}
	if got["links"] != 200 {
		t.Fatalf("links attr = %v", got["links"])
	}
	if got["draws"] != int64(12) {
		t.Fatalf("draws counter = %v", got["draws"])
	}
}

func TestDefaultTracerFallback(t *testing.T) {
	tr := NewTracer(8)
	SetDefault(tr)
	defer SetDefault(nil)
	_, sp := Start(context.Background(), "via-default")
	sp.End()
	if tr.Recorded() != 1 {
		t.Fatal("default tracer did not record")
	}
	SetDefault(nil)
	if ctx2, sp := Start(context.Background(), "off"); sp != nil || ctx2 != context.Background() {
		t.Fatal("cleared default still traces")
	}
}

func TestChromeExportValidates(t *testing.T) {
	tr := NewTracer(64)
	ctx := WithTracer(context.Background(), tr)
	ctx1, root := Start(ctx, "experiment")
	root.SetAttr("networks", 2)
	for i := 0; i < 3; i++ {
		_, child := Start(ctx1, "replication")
		child.SetAttr("rep", i)
		child.End()
	}
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	stats, err := ValidateTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("exported trace invalid: %v\n%s", err, buf.String())
	}
	if stats.Events != 4 {
		t.Fatalf("events = %d, want 4", stats.Events)
	}
	if !stats.Nested {
		t.Fatalf("nesting not detected in:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), `"rep"`) {
		t.Fatal("attrs missing from args")
	}
}

func TestValidateTraceRejects(t *testing.T) {
	bad := map[string]string{
		"not json":     `]`,
		"no array":     `{}`,
		"missing name": `{"traceEvents":[{"ph":"X","ts":0,"dur":1,"pid":1,"tid":1}]}`,
		"missing ph":   `{"traceEvents":[{"name":"a","ts":0,"dur":1,"pid":1,"tid":1}]}`,
		"missing tid":  `{"traceEvents":[{"name":"a","ph":"X","ts":0,"dur":1,"pid":1}]}`,
		"negative ts":  `{"traceEvents":[{"name":"a","ph":"X","ts":-1,"dur":1,"pid":1,"tid":1}]}`,
		"negative dur": `{"traceEvents":[{"name":"a","ph":"X","ts":0,"dur":-1,"pid":1,"tid":1}]}`,
		"missing dur":  `{"traceEvents":[{"name":"a","ph":"X","ts":0,"pid":1,"tid":1}]}`,
	}
	for name, doc := range bad {
		if _, err := ValidateTrace([]byte(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Metadata events need no timing.
	if _, err := ValidateTrace([]byte(`{"traceEvents":[{"name":"process_name","ph":"M"}]}`)); err != nil {
		t.Errorf("metadata event rejected: %v", err)
	}
}

func TestRegistryCounters(t *testing.T) {
	reg := NewRegistry()
	c1 := reg.Counter("a.b")
	c2 := reg.Counter("a.b")
	if c1 != c2 {
		t.Fatal("Counter not idempotent")
	}
	c1.Add(3)
	c2.Add(4)
	reg.Counter("z").Add(1)
	snap := reg.Snapshot()
	if snap["a.b"] != 7 || snap["z"] != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
	names := reg.Names()
	if len(names) != 2 || names[0] != "a.b" || names[1] != "z" {
		t.Fatalf("names = %v", names)
	}
}

// TestConcurrentUse exercises spans and counters from 8 workers at once;
// under -race (CI runs this package with the race detector) it is the
// thread-safety proof the satellite task asks for.
func TestConcurrentUse(t *testing.T) {
	tr := NewTracer(128)
	reg := NewRegistry()
	ctx := WithTracer(context.Background(), tr)
	shared := reg.Counter("shared")
	const workers, iters = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c1, sp := Start(ctx, "worker")
				sp.SetAttr("w", w)
				sp.Add("iters", 1)
				_, child := Start(c1, "inner")
				child.End()
				sp.End()
				shared.Add(1)
				reg.Counter("per").Add(2)
				if i%50 == 0 {
					tr.Snapshot()
					reg.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Recorded(); got != workers*iters*2 {
		t.Fatalf("recorded %d spans, want %d", got, workers*iters*2)
	}
	if shared.Load() != workers*iters {
		t.Fatalf("shared counter = %d", shared.Load())
	}
}

func TestIDs(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewRequestID()
		if seen[id] {
			t.Fatalf("duplicate request id %s", id)
		}
		seen[id] = true
	}
	if NewRunID() == NewRunID() {
		t.Fatal("run ids collide")
	}
	if _, err := ParseLevel("debug"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseLevel("nope"); err == nil {
		t.Fatal("bad level accepted")
	}
	ctx := WithRunID(context.Background(), "abc")
	if RunID(ctx) != "abc" || RunID(context.Background()) != "" {
		t.Fatal("run id ctx plumbing broken")
	}
}
