package obs

// Cross-process trace propagation. The coordinator's outbound HTTP requests
// carry an X-Trace-Context header in the W3C traceparent shape:
//
//	00-<trace-id>-<parent-span-id>-01
//	^^ version    ^^ 16 hex digits ^^ flags (sampled)
//
// The trace ID is the run ID of the originating invocation (obs.NewRunID,
// 16 hex digits), and the parent span ID is the tracer-local ID of the span
// open at the call site — for dist, the per-attempt dispatch span. A worker
// that honors the header collects the request's spans into a per-trace ring
// keyed by the trace ID and stamps the parent ID as each request span's
// remote parent, so the coordinator-side merger can stitch worker spans
// under the dispatch spans that caused them.
//
// The format deliberately matches traceparent so the header is legible to
// anyone who has seen W3C trace context, but the IDs are this repo's own
// (64-bit tracer-local span IDs, run-ID trace IDs) — no interop is claimed.

import (
	"context"
	"fmt"
	"strconv"
	"strings"
)

// HeaderTraceContext is the HTTP header carrying a TraceContext.
const HeaderTraceContext = "X-Trace-Context"

// TraceContext identifies where remote work should attach in a distributed
// trace: the trace (run) it belongs to and the span to parent under.
type TraceContext struct {
	// TraceID names the distributed trace: lowercase hex, 1–32 digits
	// (obs run IDs are 16).
	TraceID string
	// ParentID is the tracer-local ID of the span the remote work should
	// parent under; 0 means "no specific parent" (attach at the root).
	ParentID uint64
}

// String renders the traceparent-style header value.
func (tc TraceContext) String() string {
	return fmt.Sprintf("00-%s-%016x-01", tc.TraceID, tc.ParentID)
}

// ParseTraceContext parses a header value produced by TraceContext.String
// (or any version-00 traceparent-shaped value with a hex trace ID of at most
// 32 digits).
func ParseTraceContext(s string) (TraceContext, error) {
	parts := strings.Split(s, "-")
	if len(parts) != 4 {
		return TraceContext{}, fmt.Errorf("obs: trace context %q: want 4 dash-separated fields, got %d", s, len(parts))
	}
	if parts[0] != "00" {
		return TraceContext{}, fmt.Errorf("obs: trace context version %q unsupported", parts[0])
	}
	if !isLowerHex(parts[1]) || len(parts[1]) == 0 || len(parts[1]) > 32 {
		return TraceContext{}, fmt.Errorf("obs: trace id %q is not 1-32 lowercase hex digits", parts[1])
	}
	if len(parts[2]) != 16 || !isLowerHex(parts[2]) {
		return TraceContext{}, fmt.Errorf("obs: parent span id %q is not 16 lowercase hex digits", parts[2])
	}
	parent, err := strconv.ParseUint(parts[2], 16, 64)
	if err != nil {
		return TraceContext{}, fmt.Errorf("obs: parent span id %q: %w", parts[2], err)
	}
	if len(parts[3]) != 2 || !isLowerHex(parts[3]) {
		return TraceContext{}, fmt.Errorf("obs: trace flags %q are not 2 hex digits", parts[3])
	}
	return TraceContext{TraceID: parts[1], ParentID: parent}, nil
}

// TraceContextFrom derives the outbound trace context of ctx: the run ID as
// trace ID and the currently open span as the remote parent. ok is false
// when no tracer governs ctx (tracing is off — callers should then send no
// header at all, keeping untraced runs byte-identical on the wire) or when
// ctx carries no usable run ID.
func TraceContextFrom(ctx context.Context) (TraceContext, bool) {
	if TracerFrom(ctx) == nil {
		return TraceContext{}, false
	}
	id := RunID(ctx)
	if id == "" || len(id) > 32 || !isLowerHex(id) {
		return TraceContext{}, false
	}
	return TraceContext{TraceID: id, ParentID: SpanFrom(ctx).ID()}, true
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
