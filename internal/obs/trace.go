package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"rayfade/internal/fsio"
)

// The exporter emits the Chrome trace-event JSON object format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU),
// the lingua franca Perfetto, chrome://tracing, and speedscope all read.
// Each span becomes one complete ("X") event; timestamps are microseconds
// from the tracer epoch. The track id (tid) is the span's root ancestor, so
// concurrent replications land on separate tracks and their phase spans
// nest within them by timestamp containment.

// traceEvent is one Chrome trace-event entry.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	PID  int            `json:"pid"`
	TID  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceDoc is the exported JSON object.
type traceDoc struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// newTraceEncoder is the shared JSON encoder configuration for trace
// documents (single-space indent, matching the original exporter).
func newTraceEncoder(w io.Writer) *json.Encoder {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc
}

// WriteTrace renders every retained span as Chrome trace-event JSON.
// Nil-safe: a nil tracer writes an empty (but valid) trace.
func (t *Tracer) WriteTrace(w io.Writer) error {
	spans := t.Snapshot()
	sort.SliceStable(spans, func(a, b int) bool { return spans[a].Start < spans[b].Start })
	doc := traceDoc{TraceEvents: make([]traceEvent, 0, len(spans)), DisplayTimeUnit: "ms"}
	for _, s := range spans {
		doc.TraceEvents = append(doc.TraceEvents, spanEvent(s, 1, 0, 0))
	}
	return newTraceEncoder(w).Encode(doc)
}

// WriteTraceFile writes the trace to path atomically (0644): a crash
// mid-export never leaves a truncated trace behind.
func (t *Tracer) WriteTraceFile(path string) error {
	if err := fsio.WriteAtomic(path, 0o644, t.WriteTrace); err != nil {
		return fmt.Errorf("obs: write trace: %w", err)
	}
	return nil
}

// TraceStats summarizes a validated trace document.
type TraceStats struct {
	// Events is the number of trace events in the document.
	Events int
	// Tracks is the number of distinct (pid, tid) pairs.
	Tracks int
	// Procs is the number of distinct pids among timed events — in a merged
	// cluster trace, the coordinator plus every worker that contributed
	// spans.
	Procs int
	// Nested reports whether at least one complete event lies strictly
	// within another on the same track — the signature of hierarchical
	// phase spans (as opposed to a flat event list).
	Nested bool
}

// ValidateTrace checks data against the Chrome trace-event object format:
// a JSON object with a traceEvents array whose entries each carry a
// non-empty name and phase, non-negative microsecond timestamps, and pid
// and tid fields; complete ("X") events additionally need a non-negative
// duration. It returns summary stats on success. The strictness matches
// what Perfetto's importer requires, so a passing file is openable.
func ValidateTrace(data []byte) (TraceStats, error) {
	var doc struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return TraceStats{}, fmt.Errorf("obs: trace is not a JSON object: %w", err)
	}
	if doc.TraceEvents == nil {
		return TraceStats{}, fmt.Errorf("obs: trace has no traceEvents array")
	}
	type interval struct {
		track    string
		from, to float64
	}
	intervals := make([]interval, 0, len(doc.TraceEvents))
	tracks := map[string]bool{}
	procs := map[string]bool{}
	for i, ev := range doc.TraceEvents {
		var name, ph string
		if err := requireString(ev, "name", &name); err != nil {
			return TraceStats{}, fmt.Errorf("obs: event %d: %w", i, err)
		}
		if err := requireString(ev, "ph", &ph); err != nil {
			return TraceStats{}, fmt.Errorf("obs: event %d (%s): %w", i, name, err)
		}
		// Metadata events ("M") carry no timing; everything else must.
		if ph == "M" {
			continue
		}
		var ts float64
		if err := requireNumber(ev, "ts", &ts); err != nil {
			return TraceStats{}, fmt.Errorf("obs: event %d (%s): %w", i, name, err)
		}
		if ts < 0 {
			return TraceStats{}, fmt.Errorf("obs: event %d (%s): negative ts %g", i, name, ts)
		}
		for _, field := range []string{"pid", "tid"} {
			if _, ok := ev[field]; !ok {
				return TraceStats{}, fmt.Errorf("obs: event %d (%s): missing %q", i, name, field)
			}
		}
		track := string(ev["pid"]) + "/" + string(ev["tid"])
		tracks[track] = true
		procs[string(ev["pid"])] = true
		if ph == "X" {
			var dur float64
			if err := requireNumber(ev, "dur", &dur); err != nil {
				return TraceStats{}, fmt.Errorf("obs: event %d (%s): %w", i, name, err)
			}
			if dur < 0 {
				return TraceStats{}, fmt.Errorf("obs: event %d (%s): negative dur %g", i, name, dur)
			}
			intervals = append(intervals, interval{track: track, from: ts, to: ts + dur})
		}
	}
	stats := TraceStats{Events: len(doc.TraceEvents), Tracks: len(tracks), Procs: len(procs)}
	// Nesting: some complete event strictly contained in a longer one on
	// the same track. Quadratic, but traces are ring-bounded.
	for a := range intervals {
		for b := range intervals {
			if a == b || intervals[a].track != intervals[b].track {
				continue
			}
			if intervals[b].from >= intervals[a].from && intervals[b].to <= intervals[a].to &&
				(intervals[b].to-intervals[b].from) < (intervals[a].to-intervals[a].from) {
				stats.Nested = true
				return stats, nil
			}
		}
	}
	return stats, nil
}

func requireString(ev map[string]json.RawMessage, field string, dst *string) error {
	raw, ok := ev[field]
	if !ok {
		return fmt.Errorf("missing %q", field)
	}
	if err := json.Unmarshal(raw, dst); err != nil {
		return fmt.Errorf("%q is not a string: %w", field, err)
	}
	if *dst == "" {
		return fmt.Errorf("%q is empty", field)
	}
	return nil
}

func requireNumber(ev map[string]json.RawMessage, field string, dst *float64) error {
	raw, ok := ev[field]
	if !ok {
		return fmt.Errorf("missing %q", field)
	}
	if err := json.Unmarshal(raw, dst); err != nil {
		return fmt.Errorf("%q is not a number: %w", field, err)
	}
	return nil
}
