// Package obs is the repo's zero-dependency observability layer: it gives
// the sim engine, the algorithm packages, and rayschedd one shared
// vocabulary for spans (hierarchical, nanosecond-timed sections of work),
// counters (named atomic tallies), structured logging (log/slog), and
// run/request identifiers.
//
// Design constraints, in order:
//
//  1. Allocation-free when disabled. Instrumented code calls
//     obs.Start(ctx, name) unconditionally; when no Tracer is installed
//     (neither in ctx nor as the process default) the call returns a nil
//     *Span and the original ctx, touching the heap not at all. Every Span
//     and Counter method is nil-receiver-safe, so call sites never branch.
//     This is what keeps the 0 allocs/op kernel benchmarks at 0 allocs/op.
//  2. Deterministic workloads stay deterministic. obs never draws from the
//     experiment RNG streams and never reorders work; enabling tracing must
//     leave every fixed-seed output byte-identical (CI asserts this).
//  3. Bounded memory. Completed spans land in a fixed-capacity ring; a
//     long-running daemon keeps the most recent spans and a total count,
//     never an unbounded trace.
//
// The span model: Start derives a child span from the span already in ctx
// (or a root span when there is none) and returns a ctx carrying the new
// span, so nesting follows the call tree with no global state. End stamps
// the duration and moves the span into the tracer's ring. Each record keeps
// its root ancestor, which the Chrome trace-event exporter (trace.go) uses
// as the track id — concurrent replications render as parallel tracks in
// Perfetto with their phase spans nested underneath.
package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span. Values should be scalars
// (string, ints, float64, bool): they serialize into the Chrome trace
// "args" object and the /debug/obs listing.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// SpanRecord is one completed span as stored in the tracer ring. Start is
// an offset from the tracer's epoch, not wall-clock time, so records order
// and nest correctly even across clock adjustments.
type SpanRecord struct {
	ID     uint64        `json:"id"`
	Parent uint64        `json:"parent,omitempty"` // 0 for root spans
	Root   uint64        `json:"root"`             // top-level ancestor (== ID for roots)
	Remote uint64        `json:"remote,omitempty"` // parent span ID in another process's tracer (cross-process link)
	Name   string        `json:"name"`
	Start  time.Duration `json:"start_ns"`
	Dur    time.Duration `json:"dur_ns"`
	Attrs  []Attr        `json:"attrs,omitempty"`
}

// Tracer collects completed spans into a fixed-capacity ring buffer. All
// methods are safe for concurrent use; a nil *Tracer is a valid "tracing
// off" value everywhere.
type Tracer struct {
	epoch time.Time
	ids   atomic.Uint64
	total atomic.Uint64

	mu   sync.Mutex
	ring []SpanRecord
	n    int // occupied slots (≤ cap)
	next int // next write position
}

// DefaultRingCapacity bounds the span ring when NewTracer is given a
// non-positive capacity.
const DefaultRingCapacity = 4096

// NewTracer returns a Tracer whose ring keeps the most recent `capacity`
// completed spans (<= 0 selects DefaultRingCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	return &Tracer{epoch: time.Now(), ring: make([]SpanRecord, capacity)}
}

// EpochUnixNano returns the tracer's epoch as Unix nanoseconds — the anchor
// that lets a merger re-express another process's epoch-relative span
// timestamps on this process's timeline. Nil-safe (0).
func (t *Tracer) EpochUnixNano() int64 {
	if t == nil {
		return 0
	}
	return t.epoch.UnixNano()
}

// Recorded returns the total number of spans ever completed on this tracer,
// including those the ring has since evicted. Nil-safe (0).
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	return t.total.Load()
}

// Snapshot returns the retained spans in completion order (oldest first).
// Nil-safe (nil).
func (t *Tracer) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, t.n)
	start := t.next - t.n
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < t.n; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}

// record moves one completed span into the ring.
func (t *Tracer) record(r SpanRecord) {
	t.total.Add(1)
	t.mu.Lock()
	t.ring[t.next] = r
	t.next = (t.next + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	t.mu.Unlock()
}

// Span is one in-flight timed section. The zero of the API is nil: every
// method on a nil *Span is a no-op, which is how disabled instrumentation
// costs nothing.
type Span struct {
	tracer *Tracer
	name   string
	id     uint64
	parent uint64
	root   uint64
	start  time.Time

	mu     sync.Mutex
	attrs  []Attr
	remote uint64
	ended  bool
}

// ID returns the span's tracer-local identifier (0 for a nil span) — the
// value a caller embeds in an outbound TraceContext so remote work can link
// back to this span.
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// SetRemoteParent links this span under a span that lives in another
// process's tracer (the coordinator-side dispatch span whose TraceContext
// arrived with the request). The link is recorded verbatim in
// SpanRecord.Remote; the trace merger resolves it when stitching worker
// bundles under the coordinator's timeline.
func (s *Span) SetRemoteParent(id uint64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.remote = id
	s.mu.Unlock()
}

// SetAttr annotates the span. Later values win for a repeated key.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// Add accumulates n into a per-span integer counter attribute — the
// idiom for inner-loop tallies (fading draws, feasibility checks) that
// should ride on the enclosing span rather than pay a registry lookup.
func (s *Span) Add(key string, n int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			if v, ok := s.attrs[i].Value.(int64); ok {
				s.attrs[i].Value = v + n
				return
			}
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: n})
}

// End completes the span and records it. Safe to call more than once (the
// first call wins) and on a nil span.
func (s *Span) End() {
	if s == nil {
		return
	}
	dur := time.Since(s.start)
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	remote := s.remote
	s.mu.Unlock()
	s.tracer.record(SpanRecord{
		ID:     s.id,
		Parent: s.parent,
		Root:   s.root,
		Remote: remote,
		Name:   s.name,
		Start:  s.start.Sub(s.tracer.epoch),
		Dur:    dur,
		Attrs:  attrs,
	})
}

// ---- context plumbing ------------------------------------------------------

type tracerKey struct{}
type spanKey struct{}

// defaultTracer is the process-wide fallback observed when ctx carries no
// tracer — what lets non-context call paths (RunFigure1 from raybench, the
// library's Background()-based convenience wrappers) still trace.
var defaultTracer atomic.Pointer[Tracer]

// SetDefault installs (or, with nil, removes) the process-default tracer.
func SetDefault(t *Tracer) {
	if t == nil {
		defaultTracer.Store(nil)
		return
	}
	defaultTracer.Store(t)
}

// Default returns the process-default tracer, or nil.
func Default() *Tracer { return defaultTracer.Load() }

// WithTracer returns a ctx whose Start calls record into t.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom returns the tracer governing ctx: the one installed with
// WithTracer, else the process default, else nil.
func TracerFrom(ctx context.Context) *Tracer {
	if t, ok := ctx.Value(tracerKey{}).(*Tracer); ok {
		return t
	}
	return defaultTracer.Load()
}

// SpanFrom returns the span carried by ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// Start opens a span named name as a child of the span in ctx (a root span
// when there is none) and returns a ctx carrying it. When no tracer governs
// ctx it returns (ctx, nil) without allocating — the disabled fast path.
// The caller must End the returned span (nil-safe, so unconditionally).
func Start(ctx context.Context, name string) (context.Context, *Span) {
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	sp := &Span{
		tracer: t,
		name:   name,
		id:     t.ids.Add(1),
		start:  time.Now(),
	}
	if parent := SpanFrom(ctx); parent != nil && parent.tracer == t {
		sp.parent = parent.id
		sp.root = parent.root
	} else {
		sp.root = sp.id
	}
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// StartDetached opens a span that keeps its parent linkage (for the trace
// args) but is its own root — it renders on its own track in the Chrome
// trace rather than nesting inside the parent's. This is the right shape for
// work that runs concurrently with its siblings (replications under a
// Parallel fan-out, per-request algorithm calls in the daemon): complete
// events on one Chrome track must nest by containment, which overlapping
// siblings would violate. Disabled path and nil-safety match Start.
func StartDetached(ctx context.Context, name string) (context.Context, *Span) {
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	sp := &Span{
		tracer: t,
		name:   name,
		id:     t.ids.Add(1),
		start:  time.Now(),
	}
	sp.root = sp.id
	if parent := SpanFrom(ctx); parent != nil && parent.tracer == t {
		sp.parent = parent.id
	}
	return context.WithValue(ctx, spanKey{}, sp), sp
}
