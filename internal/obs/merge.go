package obs

// Cluster trace merging: the coordinator collects each worker's per-trace
// span ring (a TraceBundle fetched over GET /v1/trace/{id}) and stitches
// them with its own tracer into one Chrome trace-event document. Each
// process renders as its own pid — pid 1 is the coordinator, pid 2+k is
// worker k — with a process_name metadata event naming the track group, so
// Perfetto shows one timeline with per-worker tracks.
//
// Span IDs are tracer-local 64-bit sequences, so two processes freely reuse
// the same numbers. The merger remaps every bundle's IDs into a disjoint
// range ((k+1)·2³² + id) before emitting parent links; a worker span whose
// Remote field carries the coordinator-side dispatch span ID keeps that link
// un-remapped (it already names a coordinator span) and is marked
// remote_parent so the cross-process edges are distinguishable in the args.
//
// Timestamps are re-anchored from each bundle's epoch onto the
// coordinator's via the wall-clock difference of the two epochs. Across
// machines this inherits clock skew — good enough to read queue waits and
// shard durations, not a causality proof; spans that would land before the
// coordinator's epoch clamp to zero.

import (
	"fmt"
	"io"
	"sort"

	"rayfade/internal/fsio"
)

// TraceBundle is one process's contribution to a merged distributed trace:
// the spans it retained for one trace ID, plus the identity and epoch needed
// to place them on a shared timeline.
type TraceBundle struct {
	TraceID       string       `json:"trace_id"`
	Instance      string       `json:"instance"`
	EpochUnixNano int64        `json:"epoch_unix_nano"`
	Spans         []SpanRecord `json:"spans"`
}

// Bundle snapshots the tracer's retained spans as a TraceBundle under the
// given identity. Nil-safe (empty bundle).
func (t *Tracer) Bundle(traceID, instance string) TraceBundle {
	return TraceBundle{
		TraceID:       traceID,
		Instance:      instance,
		EpochUnixNano: t.EpochUnixNano(),
		Spans:         t.Snapshot(),
	}
}

// workerIDStride separates remapped per-bundle span ID ranges. Tracer IDs
// are sequential from 1, so 2³² spans per process is unreachable in practice
// (the ring caps retention far below it).
const workerIDStride = uint64(1) << 32

// WriteMergedTrace renders the local tracer's spans plus every worker bundle
// as one Chrome trace-event document (see the package comment above for the
// pid/ID/timestamp conventions). A nil local tracer contributes no spans but
// still anchors the timeline at epoch 0 of the first bundle.
func WriteMergedTrace(w io.Writer, local *Tracer, bundles []TraceBundle) error {
	localEpoch := local.EpochUnixNano()
	if localEpoch == 0 && len(bundles) > 0 {
		localEpoch = bundles[0].EpochUnixNano
	}
	doc := traceDoc{DisplayTimeUnit: "ms"}
	doc.TraceEvents = append(doc.TraceEvents, processNameEvent(1, "coordinator"))
	for _, s := range local.Snapshot() {
		doc.TraceEvents = append(doc.TraceEvents, spanEvent(s, 1, 0, 0))
	}
	for k, b := range bundles {
		pid := 2 + k
		name := b.Instance
		if name == "" {
			name = fmt.Sprintf("worker-%d", k)
		}
		doc.TraceEvents = append(doc.TraceEvents, processNameEvent(pid, name))
		idBase := uint64(k+1) * workerIDStride
		shift := float64(b.EpochUnixNano-localEpoch) / 1e3 // ns → µs
		for _, s := range b.Spans {
			doc.TraceEvents = append(doc.TraceEvents, spanEvent(s, pid, idBase, shift))
		}
	}
	// Stable chronological order (metadata first) keeps the document
	// deterministic for a given input and pleasant to diff.
	sort.SliceStable(doc.TraceEvents, func(a, b int) bool {
		ea, eb := doc.TraceEvents[a], doc.TraceEvents[b]
		if (ea.Ph == "M") != (eb.Ph == "M") {
			return ea.Ph == "M"
		}
		return ea.TS < eb.TS
	})
	enc := newTraceEncoder(w)
	return enc.Encode(doc)
}

// WriteMergedTraceFile writes the merged trace to path atomically (0644).
func WriteMergedTraceFile(path string, local *Tracer, bundles []TraceBundle) error {
	err := fsio.WriteAtomic(path, 0o644, func(w io.Writer) error {
		return WriteMergedTrace(w, local, bundles)
	})
	if err != nil {
		return fmt.Errorf("obs: write merged trace: %w", err)
	}
	return nil
}

// spanEvent renders one span record as a complete ("X") event on the given
// pid, remapping its IDs by idBase and shifting its timestamp by shiftMicros
// (clamped at zero — Chrome trace timestamps must be non-negative).
func spanEvent(s SpanRecord, pid int, idBase uint64, shiftMicros float64) traceEvent {
	ts := float64(s.Start.Nanoseconds())/1e3 + shiftMicros
	if ts < 0 {
		ts = 0
	}
	ev := traceEvent{
		Name: s.Name,
		Cat:  "rayfade",
		Ph:   "X",
		TS:   ts,
		Dur:  float64(s.Dur.Nanoseconds()) / 1e3,
		PID:  pid,
		TID:  s.Root + idBase,
	}
	if len(s.Attrs) > 0 {
		ev.Args = make(map[string]any, len(s.Attrs)+2)
		for _, a := range s.Attrs {
			ev.Args[a.Key] = a.Value
		}
	}
	arg := func(key string, v any) {
		if ev.Args == nil {
			ev.Args = make(map[string]any, 2)
		}
		ev.Args[key] = v
	}
	switch {
	case s.Parent != 0:
		arg("parent_span", s.Parent+idBase)
	case s.Remote != 0:
		// The parent lives in the originating process's tracer (pid 1 in a
		// merged document); its ID is already in that namespace.
		arg("parent_span", s.Remote)
		arg("remote_parent", true)
	}
	return ev
}

// processNameEvent is the Chrome metadata event labeling one pid's track
// group in the Perfetto UI.
func processNameEvent(pid int, name string) traceEvent {
	return traceEvent{
		Name: "process_name",
		Cat:  "__metadata",
		Ph:   "M",
		PID:  pid,
		Args: map[string]any{"name": name},
	}
}
