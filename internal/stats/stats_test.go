package stats

import (
	"math"
	"testing"
	"testing/quick"

	"rayfade/internal/rng"
)

func TestKahanSumExactness(t *testing.T) {
	// Summing 1e7 copies of 0.1 naively drifts; Kahan should be exact to
	// within a few ulps of the true value.
	var k KahanSum
	for i := 0; i < 1e7; i++ {
		k.Add(0.1)
	}
	if got, want := k.Sum(), 1e6; math.Abs(got-want) > 1e-6 {
		t.Fatalf("Kahan sum = %.12f, want %.12f", got, want)
	}
}

func TestRunningBasics(t *testing.T) {
	var r Running
	r.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if r.N() != 8 {
		t.Fatalf("N = %d", r.N())
	}
	if got := r.Mean(); got != 5 {
		t.Fatalf("Mean = %g", got)
	}
	// Population variance of this classic dataset is 4; sample variance 32/7.
	if got, want := r.Var(), 32.0/7.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Var = %g, want %g", got, want)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Fatalf("Min/Max = %g/%g", r.Min(), r.Max())
	}
}

func TestRunningEmptyAndSingle(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Var() != 0 || r.StdErr() != 0 {
		t.Fatal("empty accumulator should report zeros")
	}
	r.Add(3)
	if r.Mean() != 3 || r.Var() != 0 {
		t.Fatalf("single sample: mean %g var %g", r.Mean(), r.Var())
	}
}

func TestRunningMergeMatchesSequential(t *testing.T) {
	f := func(seed uint64, naRaw, nbRaw uint8) bool {
		src := rng.New(seed)
		na, nb := int(naRaw%50)+1, int(nbRaw%50)+1
		var all, a, b Running
		for i := 0; i < na; i++ {
			v := src.Normal(10, 3)
			all.Add(v)
			a.Add(v)
		}
		for i := 0; i < nb; i++ {
			v := src.Normal(-5, 7)
			all.Add(v)
			b.Add(v)
		}
		a.Merge(b)
		return a.N() == all.N() &&
			math.Abs(a.Mean()-all.Mean()) < 1e-9 &&
			math.Abs(a.Var()-all.Var()) < 1e-6 &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRunningMergeEmptyCases(t *testing.T) {
	var a, b Running
	a.Merge(b)
	if a.N() != 0 {
		t.Fatal("merge of two empties should stay empty")
	}
	b.Add(5)
	a.Merge(b)
	if a.N() != 1 || a.Mean() != 5 {
		t.Fatalf("merge into empty: n=%d mean=%g", a.N(), a.Mean())
	}
	var c Running
	a.Merge(c)
	if a.N() != 1 || a.Mean() != 5 {
		t.Fatal("merging an empty should be a no-op")
	}
}

func TestCI95(t *testing.T) {
	var r Running
	for i := 0; i < 100; i++ {
		r.Add(float64(i % 2)) // half 0s, half 1s
	}
	// std ≈ 0.5025, stderr ≈ 0.05025, CI95 ≈ 0.0985
	if got := r.CI95(); math.Abs(got-1.96*r.StdErr()) > 1e-15 {
		t.Fatalf("CI95 = %g", got)
	}
	if r.StdErr() < 0.045 || r.StdErr() > 0.055 {
		t.Fatalf("StdErr = %g out of expected band", r.StdErr())
	}
}

func TestSummaryString(t *testing.T) {
	var r Running
	r.AddAll([]float64{1, 2, 3})
	s := r.Summarize()
	if s.N != 3 || s.Mean != 2 {
		t.Fatalf("Summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %g", got)
	}
}

func TestQuantile(t *testing.T) {
	vs := []float64{4, 1, 3, 2}
	if got := Quantile(vs, 0); got != 1 {
		t.Fatalf("q0 = %g", got)
	}
	if got := Quantile(vs, 1); got != 4 {
		t.Fatalf("q1 = %g", got)
	}
	if got := Quantile(vs, 0.5); got != 2.5 {
		t.Fatalf("median = %g", got)
	}
	// Input must not be mutated.
	if vs[0] != 4 {
		t.Fatal("Quantile mutated its input")
	}
	if got := Quantile([]float64{7}, 0.3); got != 7 {
		t.Fatalf("singleton quantile = %g", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
		// A NaN observation would sort to an arbitrary position and silently
		// poison the interpolated result; it must be rejected loudly.
		func() { Quantile([]float64{1, math.NaN(), 3}, 0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 11} {
		h.Add(v)
	}
	if h.Under != 1 || h.Over != 1 {
		t.Fatalf("under=%d over=%d", h.Under, h.Over)
	}
	if h.Total() != 6 {
		t.Fatalf("Total = %d", h.Total())
	}
	// v=10 must land in the last bin, not out of range.
	if h.Counts[4] != 2 { // 9.99 and 10
		t.Fatalf("last bin = %d, want 2 (counts %v)", h.Counts[4], h.Counts)
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Fatalf("first bin = %d (counts %v)", h.Counts[0], h.Counts)
	}
}

func TestHistogramNaN(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(math.NaN())
	h.Add(5)
	h.Add(math.NaN())
	if h.NaN != 2 {
		t.Fatalf("NaN counter = %d, want 2", h.NaN)
	}
	// NaNs must not leak into any bin or the under/over counters.
	if h.Under != 0 || h.Over != 0 || h.Total() != 1 {
		t.Fatalf("NaNs corrupted bins: under=%d over=%d total=%d counts=%v",
			h.Under, h.Over, h.Total(), h.Counts)
	}
	if h.Counts[2] != 1 {
		t.Fatalf("in-range observation misplaced: counts %v", h.Counts)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 1, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestLogStar(t *testing.T) {
	cases := []struct {
		x    float64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {4, 2}, {16, 3}, {65536, 4}, {1e18, 5},
	}
	for _, c := range cases {
		if got := LogStar(c.x); got != c.want {
			t.Fatalf("LogStar(%g) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestLogStarSmallForHugeInputs(t *testing.T) {
	if got := LogStar(math.MaxFloat64); got > 6 {
		t.Fatalf("LogStar(MaxFloat64) = %d, should be tiny", got)
	}
}

func TestTowerLevels(t *testing.T) {
	if got := TowerLevels(0); got != 0 {
		t.Fatalf("TowerLevels(0) = %d", got)
	}
	// b_0 = 0.25 < 1, so even n=1 needs at least one level.
	if got := TowerLevels(1); got < 1 {
		t.Fatalf("TowerLevels(1) = %d", got)
	}
	// The tower grows so fast that realistic n values need only a handful
	// of levels — this is the paper's "log* n is essentially constant".
	for _, n := range []int{100, 10000, 1 << 30} {
		if got := TowerLevels(n); got < 2 || got > 12 {
			t.Fatalf("TowerLevels(%d) = %d, outside plausible band", n, got)
		}
	}
	// Monotone non-decreasing in n.
	prev := 0
	for n := 1; n <= 1e6; n *= 10 {
		l := TowerLevels(n)
		if l < prev {
			t.Fatalf("TowerLevels not monotone at n=%d", n)
		}
		prev = l
	}
}

func TestTowerSequence(t *testing.T) {
	seq := TowerSequence(100)
	if seq[0] != 0.25 {
		t.Fatalf("b_0 = %g", seq[0])
	}
	for i := 1; i < len(seq); i++ {
		want := math.Exp(seq[i-1] / 2)
		if math.Abs(seq[i]-want) > 1e-12 {
			t.Fatalf("b_%d = %g, want exp(b_%d/2) = %g", i, seq[i], i-1, want)
		}
	}
	last := seq[len(seq)-1]
	if last < 100 {
		t.Fatalf("sequence should end at the first value ≥ n, got %g", last)
	}
	if seq[len(seq)-2] >= 100 {
		t.Fatal("sequence overshoots: penultimate value already ≥ n")
	}
}

func TestTowerLevelsMatchesSequence(t *testing.T) {
	for _, n := range []int{1, 2, 10, 100, 100000} {
		if got, want := TowerLevels(n), len(TowerSequence(n))-1; got != want {
			t.Fatalf("n=%d: TowerLevels=%d, sequence levels=%d", n, got, want)
		}
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries([]float64{0.1, 0.2, 0.3})
	s.Observe(0, 1)
	s.Observe(0, 3)
	s.Observe(2, 10)
	means := s.Means()
	if means[0] != 2 || means[1] != 0 || means[2] != 10 {
		t.Fatalf("Means = %v", means)
	}
	if got := s.ArgmaxMean(); got != 2 {
		t.Fatalf("ArgmaxMean = %d", got)
	}
	if errs := s.StdErrs(); len(errs) != 3 || errs[0] <= 0 {
		t.Fatalf("StdErrs = %v", errs)
	}
}

func TestSeriesMerge(t *testing.T) {
	a := NewSeries([]float64{1, 2})
	b := NewSeries([]float64{1, 2})
	a.Observe(0, 2)
	b.Observe(0, 4)
	b.Observe(1, 6)
	a.Merge(b)
	if got := a.Means(); got[0] != 3 || got[1] != 6 {
		t.Fatalf("merged means = %v", got)
	}
}

func TestSeriesMergePanicsOnGridMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSeries([]float64{1}).Merge(NewSeries([]float64{1, 2}))
}

func TestSeriesArgmaxEmpty(t *testing.T) {
	s := NewSeries(nil)
	if got := s.ArgmaxMean(); got != -1 {
		t.Fatalf("ArgmaxMean on empty series = %d", got)
	}
}

func TestLinspace(t *testing.T) {
	xs := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if math.Abs(xs[i]-want[i]) > 1e-15 {
			t.Fatalf("Linspace = %v", xs)
		}
	}
	if xs[len(xs)-1] != 1 {
		t.Fatal("Linspace endpoint not exact")
	}
}

func TestLinspacePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Linspace(0, 1, 1)
}

// Property: Running.Mean always lies between Min and Max.
func TestQuickRunningMeanBounded(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		src := rng.New(seed)
		n := int(nRaw%100) + 1
		var r Running
		for i := 0; i < n; i++ {
			r.Add(src.Normal(0, 100))
		}
		return r.Mean() >= r.Min()-1e-9 && r.Mean() <= r.Max()+1e-9 && r.Var() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Quantile is monotone in q.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(seed uint64, q1Raw, q2Raw float64) bool {
		if math.IsNaN(q1Raw) || math.IsNaN(q2Raw) {
			return true
		}
		src := rng.New(seed)
		vs := make([]float64, 20)
		for i := range vs {
			vs[i] = src.Float64()
		}
		q1 := math.Mod(math.Abs(q1Raw), 1)
		q2 := math.Mod(math.Abs(q2Raw), 1)
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		return Quantile(vs, q1) <= Quantile(vs, q2)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRunningAdd(b *testing.B) {
	var r Running
	for i := 0; i < b.N; i++ {
		r.Add(float64(i))
	}
}

func BenchmarkTowerLevels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		TowerLevels(1 << 20)
	}
}
