// Package stats provides the small statistics toolkit the simulation harness
// needs: numerically stable accumulation, summary statistics with confidence
// intervals, histograms, and the iterated-logarithm helpers that appear in
// the paper's O(log* n) bounds.
//
// Nothing here is exotic — the point is that the experiment code never
// hand-rolls averaging, so every reported number in EXPERIMENTS.md carries a
// sample count and a standard error computed the same way.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// KahanSum accumulates float64 values with compensated summation, avoiding
// the error growth of naive accumulation over millions of Monte-Carlo terms.
type KahanSum struct {
	sum float64
	c   float64
}

// Add accumulates v.
func (k *KahanSum) Add(v float64) {
	y := v - k.c
	t := k.sum + y
	k.c = (t - k.sum) - y
	k.sum = t
}

// Sum returns the current compensated total.
func (k *KahanSum) Sum() float64 { return k.sum }

// Running computes mean and variance in one pass using Welford's algorithm.
// The zero value is ready to use.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates observation v.
func (r *Running) Add(v float64) {
	if r.n == 0 {
		r.min, r.max = v, v
	} else {
		if v < r.min {
			r.min = v
		}
		if v > r.max {
			r.max = v
		}
	}
	r.n++
	d := v - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (v - r.mean)
}

// AddAll incorporates every value of vs.
func (r *Running) AddAll(vs []float64) {
	for _, v := range vs {
		r.Add(v)
	}
}

// Merge combines another accumulator into r, as if every observation seen by
// o had been Added to r. This is how per-worker accumulators from parallel
// replications are reduced.
func (r *Running) Merge(o Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = o
		return
	}
	n := r.n + o.n
	d := o.mean - r.mean
	r.m2 += o.m2 + d*d*float64(r.n)*float64(o.n)/float64(n)
	r.mean += d * float64(o.n) / float64(n)
	if o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
	r.n = n
}

// N returns the number of observations.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean, or 0 with no observations.
func (r *Running) Mean() float64 { return r.mean }

// Var returns the unbiased sample variance (0 for fewer than two samples).
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// Std returns the sample standard deviation.
func (r *Running) Std() float64 { return math.Sqrt(r.Var()) }

// StdErr returns the standard error of the mean.
func (r *Running) StdErr() float64 {
	if r.n == 0 {
		return 0
	}
	return r.Std() / math.Sqrt(float64(r.n))
}

// Min returns the smallest observation (0 if none).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation (0 if none).
func (r *Running) Max() float64 { return r.max }

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval for the mean.
func (r *Running) CI95() float64 { return 1.96 * r.StdErr() }

// runningJSON is the serialized form of Running, used by the simulation
// checkpoint files. encoding/json renders float64 in shortest round-trip
// form, so a marshal/unmarshal cycle is bit-exact — a resumed run carries
// precisely the accumulator state of the interrupted one.
type runningJSON struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// MarshalJSON serializes the accumulator's full internal state.
func (r Running) MarshalJSON() ([]byte, error) {
	return json.Marshal(runningJSON{N: r.n, Mean: r.mean, M2: r.m2, Min: r.min, Max: r.max})
}

// UnmarshalJSON restores an accumulator serialized by MarshalJSON.
func (r *Running) UnmarshalJSON(data []byte) error {
	var s runningJSON
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	if s.N < 0 {
		return fmt.Errorf("stats: Running state has negative n=%d", s.N)
	}
	r.n, r.mean, r.m2, r.min, r.max = s.N, s.Mean, s.M2, s.Min, s.Max
	return nil
}

// Summary is an immutable snapshot of a Running accumulator, convenient for
// reporting.
type Summary struct {
	N           int
	Mean        float64
	Std, StdErr float64
	Min, Max    float64
}

// Summarize snapshots the accumulator.
func (r *Running) Summarize() Summary {
	return Summary{N: r.n, Mean: r.Mean(), Std: r.Std(), StdErr: r.StdErr(), Min: r.min, Max: r.max}
}

// String formats the summary as "mean ± stderr (n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean, s.StdErr, s.N)
}

// Mean returns the arithmetic mean of vs, or 0 for an empty slice.
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var k KahanSum
	for _, v := range vs {
		k.Add(v)
	}
	return k.Sum() / float64(len(vs))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of vs using linear
// interpolation between order statistics. It copies and sorts its input.
// It panics on an empty slice, a q outside [0,1], or a NaN observation:
// NaN compares false against everything, so it would land at an arbitrary
// sort position and silently poison the interpolated result.
func Quantile(vs []float64, q float64) float64 {
	if len(vs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: Quantile fraction %g outside [0,1]", q))
	}
	sorted := append([]float64(nil), vs...)
	for i, v := range sorted {
		if math.IsNaN(v) {
			panic(fmt.Sprintf("stats: Quantile input %d is NaN", i))
		}
	}
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram counts observations into equal-width bins over [Lo, Hi].
type Histogram struct {
	Lo, Hi   float64
	Counts   []int
	Under    int // observations below Lo
	Over     int // observations above Hi
	NaN      int // NaN observations, counted apart from every bin
	binWidth float64
}

// NewHistogram creates a histogram with the given bin count over [lo, hi].
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic(fmt.Sprintf("stats: NewHistogram with %d bins", bins))
	}
	if hi <= lo {
		panic(fmt.Sprintf("stats: NewHistogram with empty range [%g,%g]", lo, hi))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins), binWidth: (hi - lo) / float64(bins)}
}

// Add records one observation. NaN observations go to the NaN counter: a
// NaN would fall through every range comparison into the binning arithmetic,
// where float-to-int conversion of NaN is implementation-defined and would
// corrupt an arbitrary bin (or panic on an out-of-range index).
func (h *Histogram) Add(v float64) {
	switch {
	case math.IsNaN(v):
		h.NaN++
	case v < h.Lo:
		h.Under++
	case v > h.Hi:
		h.Over++
	default:
		i := int((v - h.Lo) / h.binWidth)
		if i == len(h.Counts) { // v == Hi lands in the last bin
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of in-range observations.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// LogStar returns the iterated logarithm log*_2(x): the number of times log2
// must be applied before the value drops to at most 1. LogStar(x) is 0 for
// x ≤ 1. This is the function in the paper's O(log* n) bounds.
func LogStar(x float64) int {
	if math.IsNaN(x) {
		panic("stats: LogStar of NaN")
	}
	n := 0
	for x > 1 {
		x = math.Log2(x)
		n++
		if n > 64 { // unreachable for any finite float64, but fail loudly
			panic("stats: LogStar failed to converge")
		}
	}
	return n
}

// TowerLevels returns the number of levels of the paper's simulation tower
// b_0 = 1/4, b_{k+1} = exp(b_k / 2) that stay strictly below n — the number
// of probability scales Algorithm 1 iterates over. It is Θ(log* n).
func TowerLevels(n int) int {
	if n <= 0 {
		return 0
	}
	levels := 0
	b := 0.25
	for b < float64(n) {
		levels++
		b = math.Exp(b / 2)
		if levels > 128 {
			panic("stats: TowerLevels failed to converge")
		}
	}
	return levels
}

// TowerSequence returns the values b_0 .. b_{k} of the paper's recursion up
// to and including the first value ≥ n.
func TowerSequence(n int) []float64 {
	seq := []float64{0.25}
	for seq[len(seq)-1] < float64(n) {
		seq = append(seq, math.Exp(seq[len(seq)-1]/2))
		if len(seq) > 129 {
			panic("stats: TowerSequence failed to converge")
		}
	}
	return seq
}

// Series aggregates y-observations for an ordered set of x-points, one
// Running accumulator per point. It is the shape of every figure in the
// paper: x is the transmission probability (Figure 1) or the round number
// (Figure 2), y the number of successful transmissions.
type Series struct {
	X   []float64
	Acc []Running
}

// NewSeries creates a series over the given x-points.
func NewSeries(xs []float64) *Series {
	return &Series{X: append([]float64(nil), xs...), Acc: make([]Running, len(xs))}
}

// Observe records y for the i-th x-point.
func (s *Series) Observe(i int, y float64) { s.Acc[i].Add(y) }

// Merge folds another series over the same x grid into s.
func (s *Series) Merge(o *Series) {
	if len(o.Acc) != len(s.Acc) {
		panic("stats: merging series with different x grids")
	}
	for i := range s.Acc {
		s.Acc[i].Merge(o.Acc[i])
	}
}

// Means returns the per-point sample means.
func (s *Series) Means() []float64 {
	ms := make([]float64, len(s.Acc))
	for i := range s.Acc {
		ms[i] = s.Acc[i].Mean()
	}
	return ms
}

// StdErrs returns the per-point standard errors.
func (s *Series) StdErrs() []float64 {
	es := make([]float64, len(s.Acc))
	for i := range s.Acc {
		es[i] = s.Acc[i].StdErr()
	}
	return es
}

// ArgmaxMean returns the index of the x-point with the largest mean
// (the curve's peak). It returns -1 for an empty series.
func (s *Series) ArgmaxMean() int {
	best := -1
	bestV := math.Inf(-1)
	for i := range s.Acc {
		if m := s.Acc[i].Mean(); m > bestV {
			best, bestV = i, m
		}
	}
	return best
}

// Linspace returns n evenly spaced values from lo to hi inclusive.
// n must be at least 2.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic(fmt.Sprintf("stats: Linspace needs n ≥ 2, got %d", n))
	}
	xs := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range xs {
		xs[i] = lo + float64(i)*step
	}
	xs[n-1] = hi
	return xs
}
