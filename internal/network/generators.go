package network

import (
	"fmt"
	"math"

	"rayfade/internal/geom"
	"rayfade/internal/rng"
)

// RandomPoisson draws a network whose receiver count follows a Poisson
// point process of the given intensity (expected receivers per unit area)
// over cfg.Area; cfg.N is ignored. Sender placement, distances, and powers
// follow cfg as in Random. Poisson processes are the canonical random
// deployment in the capacity-of-wireless-networks literature the paper
// builds on (Gupta–Kumar and the fading analyses of Liu–Haenggi); this
// generator lets experiments vary density without fixing the link count.
//
// The draw is conditioned on at least one link (a homogeneous PPP can be
// empty; an empty network is useless downstream), so the realized count is
// a zero-truncated Poisson.
func RandomPoisson(cfg Config, intensity float64, src *rng.Source) (*Network, error) {
	if intensity <= 0 {
		return nil, fmt.Errorf("network: intensity %g must be positive", intensity)
	}
	if !cfg.Area.Valid() {
		return nil, fmt.Errorf("network: invalid deployment area %+v", cfg.Area)
	}
	mean := intensity * cfg.Area.W() * cfg.Area.H()
	if mean > 1e7 {
		return nil, fmt.Errorf("network: expected %g links is unreasonably large", mean)
	}
	n := 0
	for tries := 0; n == 0; tries++ {
		n = src.Poisson(mean)
		if tries > 10000 {
			return nil, fmt.Errorf("network: intensity %g too low to realize a non-empty network", intensity)
		}
	}
	cfg.N = n
	return Random(cfg, src)
}

// ClusterConfig parameterizes a Thomas-process-like clustered deployment:
// cluster centers uniform over the area, receivers scattered around their
// center with a Gaussian spread, senders placed as in Random. Clustered
// deployments are the stress case for scheduling algorithms — interference
// is locally dense — and complement the uniform generators in robustness
// tests.
type ClusterConfig struct {
	Clusters int     // number of cluster centers
	PerChild int     // receivers per cluster
	Spread   float64 // Gaussian standard deviation around the center
	Base     Config  // distance range, α, ν, metric, power as in Random
}

// RandomClustered draws a clustered network. Receivers falling outside the
// area are clamped to it (keeping the configured density).
func RandomClustered(cc ClusterConfig, src *rng.Source) (*Network, error) {
	if cc.Clusters <= 0 || cc.PerChild <= 0 {
		return nil, fmt.Errorf("network: clusters=%d perChild=%d must be positive", cc.Clusters, cc.PerChild)
	}
	if cc.Spread <= 0 {
		return nil, fmt.Errorf("network: spread %g must be positive", cc.Spread)
	}
	cfg := cc.Base
	if !cfg.Area.Valid() {
		return nil, fmt.Errorf("network: invalid deployment area %+v", cfg.Area)
	}
	if cfg.DMin < 0 || cfg.DMax <= cfg.DMin {
		return nil, fmt.Errorf("network: invalid distance range [%g,%g]", cfg.DMin, cfg.DMax)
	}
	if !(cfg.Alpha > 0) {
		return nil, fmt.Errorf("network: invalid α = %g", cfg.Alpha)
	}
	metric := cfg.Metric
	if metric == nil {
		metric = geom.Euclidean{}
	}
	pa := cfg.Power
	if pa == nil {
		pa = UniformPower{P: 1}
	}
	net := &Network{
		Links:  make([]Link, 0, cc.Clusters*cc.PerChild),
		Metric: metric,
		Alpha:  cfg.Alpha,
		Noise:  cfg.Noise,
	}
	for c := 0; c < cc.Clusters; c++ {
		center := geom.Point{
			X: src.UniformRange(cfg.Area.X0, cfg.Area.X1),
			Y: src.UniformRange(cfg.Area.Y0, cfg.Area.Y1),
		}
		for k := 0; k < cc.PerChild; k++ {
			recv := cfg.Area.Clamp(geom.Point{
				X: src.Normal(center.X, cc.Spread),
				Y: src.Normal(center.Y, cc.Spread),
			})
			angle := src.UniformRange(0, 2*math.Pi)
			dist := cfg.DMin + (cfg.DMax-cfg.DMin)*src.Float64Open()
			net.Links = append(net.Links, Link{
				Sender:   recv.PolarOffset(angle, dist),
				Receiver: recv,
				Power:    pa.Power(dist),
				Weight:   1,
			})
		}
	}
	return net, nil
}
