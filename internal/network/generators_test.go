package network

import (
	"math"
	"testing"

	"rayfade/internal/rng"
)

func TestRandomPoissonDensity(t *testing.T) {
	cfg := Figure1Config()
	src := rng.New(41)
	intensity := 1e-4 // expected 100 links on the 1000×1000 area
	var total int
	const draws = 50
	for d := 0; d < draws; d++ {
		net, err := RandomPoisson(cfg, intensity, src)
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Validate(); err != nil {
			t.Fatal(err)
		}
		total += net.N()
	}
	avg := float64(total) / draws
	if math.Abs(avg-100) > 10 {
		t.Fatalf("average Poisson link count %.1f, want about 100", avg)
	}
}

func TestRandomPoissonNeverEmpty(t *testing.T) {
	cfg := Figure1Config()
	src := rng.New(43)
	// Mean 0.2 links: most raw draws are empty; the generator must
	// zero-truncate rather than fail.
	for d := 0; d < 20; d++ {
		net, err := RandomPoisson(cfg, 2e-7, src)
		if err != nil {
			t.Fatal(err)
		}
		if net.N() == 0 {
			t.Fatal("empty Poisson network returned")
		}
	}
}

func TestRandomPoissonErrors(t *testing.T) {
	cfg := Figure1Config()
	src := rng.New(1)
	if _, err := RandomPoisson(cfg, 0, src); err == nil {
		t.Fatal("zero intensity accepted")
	}
	if _, err := RandomPoisson(cfg, 1e3, src); err == nil {
		t.Fatal("absurd intensity accepted")
	}
	bad := cfg
	bad.Area.X1 = bad.Area.X0
	if _, err := RandomPoisson(bad, 1e-4, src); err == nil {
		t.Fatal("degenerate area accepted")
	}
}

func TestRandomClustered(t *testing.T) {
	cc := ClusterConfig{
		Clusters: 5,
		PerChild: 8,
		Spread:   25,
		Base:     Figure1Config(),
	}
	net, err := RandomClustered(cc, rng.New(45))
	if err != nil {
		t.Fatal(err)
	}
	if net.N() != 40 {
		t.Fatalf("N = %d, want 40", net.N())
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, l := range net.Links {
		if !cc.Base.Area.Contains(l.Receiver) {
			t.Fatalf("receiver %d outside area", i)
		}
		d := l.Length(net.Metric)
		if d < cc.Base.DMin || d > cc.Base.DMax {
			t.Fatalf("link %d length %g outside range", i, d)
		}
	}
}

// Clustered deployments must actually cluster: the mean nearest-neighbour
// distance between receivers should be clearly below that of a uniform
// deployment with the same count.
func TestRandomClusteredIsClustered(t *testing.T) {
	base := Figure1Config()
	cc := ClusterConfig{Clusters: 4, PerChild: 25, Spread: 20, Base: base}
	src := rng.New(47)
	clustered, err := RandomClustered(cc, src)
	if err != nil {
		t.Fatal(err)
	}
	uniCfg := base
	uniCfg.N = clustered.N()
	uniform, err := Random(uniCfg, src)
	if err != nil {
		t.Fatal(err)
	}
	nn := func(n *Network) float64 {
		total := 0.0
		for i := range n.Links {
			best := math.Inf(1)
			for j := range n.Links {
				if i == j {
					continue
				}
				if d := n.Metric.Dist(n.Links[i].Receiver, n.Links[j].Receiver); d < best {
					best = d
				}
			}
			total += best
		}
		return total / float64(n.N())
	}
	if c, u := nn(clustered), nn(uniform); c >= u/2 {
		t.Fatalf("clustered NN distance %.1f not clearly below uniform %.1f", c, u)
	}
}

func TestRandomClusteredErrors(t *testing.T) {
	base := Figure1Config()
	src := rng.New(1)
	cases := []ClusterConfig{
		{Clusters: 0, PerChild: 5, Spread: 10, Base: base},
		{Clusters: 2, PerChild: 0, Spread: 10, Base: base},
		{Clusters: 2, PerChild: 5, Spread: 0, Base: base},
	}
	for i, cc := range cases {
		if _, err := RandomClustered(cc, src); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	badArea := ClusterConfig{Clusters: 2, PerChild: 5, Spread: 10, Base: base}
	badArea.Base.Area.X1 = badArea.Base.Area.X0
	if _, err := RandomClustered(badArea, src); err == nil {
		t.Error("degenerate area accepted")
	}
	badDist := ClusterConfig{Clusters: 2, PerChild: 5, Spread: 10, Base: base}
	badDist.Base.DMax = badDist.Base.DMin
	if _, err := RandomClustered(badDist, src); err == nil {
		t.Error("degenerate distance range accepted")
	}
	badAlpha := ClusterConfig{Clusters: 2, PerChild: 5, Spread: 10, Base: base}
	badAlpha.Base.Alpha = 0
	if _, err := RandomClustered(badAlpha, src); err == nil {
		t.Error("zero alpha accepted")
	}
}

func BenchmarkRandomClustered(b *testing.B) {
	cc := ClusterConfig{Clusters: 10, PerChild: 10, Spread: 30, Base: Figure1Config()}
	src := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RandomClustered(cc, src); err != nil {
			b.Fatal(err)
		}
	}
}
