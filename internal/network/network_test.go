package network

import (
	"math"
	"testing"
	"testing/quick"

	"rayfade/internal/geom"
	"rayfade/internal/rng"
)

func twoLinkNet() *Network {
	// Link 0: sender (0,0) → receiver (1,0); link 1: sender (10,0) → (11,0).
	return &Network{
		Links: []Link{
			{Sender: geom.Point{X: 0, Y: 0}, Receiver: geom.Point{X: 1, Y: 0}, Power: 1, Weight: 1},
			{Sender: geom.Point{X: 10, Y: 0}, Receiver: geom.Point{X: 11, Y: 0}, Power: 1, Weight: 1},
		},
		Metric: geom.Euclidean{},
		Alpha:  2,
		Noise:  0.01,
	}
}

func TestLinkLength(t *testing.T) {
	l := Link{Sender: geom.Point{X: 0, Y: 0}, Receiver: geom.Point{X: 3, Y: 4}}
	if got := l.Length(geom.Euclidean{}); got != 5 {
		t.Fatalf("Length = %g", got)
	}
}

func TestValidate(t *testing.T) {
	if err := twoLinkNet().Validate(); err != nil {
		t.Fatalf("valid network rejected: %v", err)
	}
	cases := map[string]func(*Network){
		"no links":       func(n *Network) { n.Links = nil },
		"nil metric":     func(n *Network) { n.Metric = nil },
		"zero alpha":     func(n *Network) { n.Alpha = 0 },
		"negative noise": func(n *Network) { n.Noise = -1 },
		"zero power":     func(n *Network) { n.Links[0].Power = 0 },
		"neg weight":     func(n *Network) { n.Links[1].Weight = -2 },
		"zero length":    func(n *Network) { n.Links[0].Sender = n.Links[0].Receiver },
		"inf noise":      func(n *Network) { n.Noise = math.Inf(1) },
	}
	for name, mutate := range cases {
		n := twoLinkNet()
		mutate(n)
		if err := n.Validate(); err == nil {
			t.Errorf("%s: Validate accepted broken network", name)
		}
	}
}

func TestGains(t *testing.T) {
	n := twoLinkNet()
	m := n.Gains()
	if m.N != 2 {
		t.Fatalf("N = %d", m.N)
	}
	// Own-signal gains: distance 1, power 1, α=2 → 1.
	if m.At(0, 0) != 1 || m.At(1, 1) != 1 {
		t.Fatalf("diagonal gains = %g, %g", m.At(0, 0), m.At(1, 1))
	}
	if m.Own(0) != 1 || m.Own(1) != 1 {
		t.Fatalf("Own diagonal cache = %g, %g", m.Own(0), m.Own(1))
	}
	// Cross gain sender 0 → receiver 1: distance 11.
	want := math.Pow(11, -2)
	if math.Abs(m.At(0, 1)-want) > 1e-15 {
		t.Fatalf("At(0,1) = %g, want %g", m.At(0, 1), want)
	}
	// Cross gain sender 1 → receiver 0: distance 9.
	want = math.Pow(9, -2)
	if math.Abs(m.At(1, 0)-want) > 1e-15 {
		t.Fatalf("At(1,0) = %g, want %g", m.At(1, 0), want)
	}
	// Incoming(i) is the receiver-major row: Incoming(i)[j] == At(j, i).
	if in := m.Incoming(0); in[0] != m.At(0, 0) || in[1] != m.At(1, 0) {
		t.Fatalf("Incoming(0) = %v", in)
	}
	if m.Noise != 0.01 {
		t.Fatalf("Noise = %g", m.Noise)
	}
	if m.Weights[0] != 1 || m.Weights[1] != 1 {
		t.Fatalf("Weights = %v", m.Weights)
	}
}

func TestGainsScaleWithPower(t *testing.T) {
	n := twoLinkNet()
	n.Links[0].Power = 5
	m := n.Gains()
	if m.At(0, 0) != 5 {
		t.Fatalf("At(0,0) = %g, want 5", m.At(0, 0))
	}
	// Receiver-side gains of sender 1 unaffected.
	if m.At(1, 1) != 1 {
		t.Fatalf("At(1,1) = %g", m.At(1, 1))
	}
}

func TestGainsZeroWeightDefaultsToOne(t *testing.T) {
	n := twoLinkNet()
	n.Links[0].Weight = 0
	if m := n.Gains(); m.Weights[0] != 1 {
		t.Fatalf("zero weight should default to 1, got %g", m.Weights[0])
	}
}

func TestNewMatrix(t *testing.T) {
	m, err := NewMatrix([][]float64{{1, 0.5}, {0.25, 2}}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if m.N != 2 || m.At(1, 0) != 0.25 {
		t.Fatalf("matrix = %+v", m)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewMatrixRejectsBadInput(t *testing.T) {
	if _, err := NewMatrix(nil, 0); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, err := NewMatrix([][]float64{{1, 2}}, 0); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, err := NewMatrix([][]float64{{-1}}, 0); err == nil {
		t.Error("negative gain accepted")
	}
	if _, err := NewMatrix([][]float64{{1}}, -1); err == nil {
		t.Error("negative noise accepted")
	}
	if _, err := NewMatrix([][]float64{{math.NaN()}}, 0); err == nil {
		t.Error("NaN gain accepted")
	}
}

func TestMatrixValidateCatchesCorruption(t *testing.T) {
	m, _ := NewMatrix([][]float64{{1, 1}, {1, 1}}, 0)
	m.SetGain(0, 1, math.NaN())
	if err := m.Validate(); err == nil {
		t.Error("NaN not caught")
	}
	m, _ = NewMatrix([][]float64{{1}}, 0)
	m.Noise = -5
	if err := m.Validate(); err == nil {
		t.Error("negative noise not caught")
	}
}

func TestPowerAssignments(t *testing.T) {
	u := UniformPower{P: 2}
	if u.Power(10) != 2 || u.Power(1000) != 2 {
		t.Fatal("uniform power varies with distance")
	}
	s := SquareRootPower{Scale: 2, Alpha: 2.2}
	want := 2 * math.Sqrt(math.Pow(30, 2.2))
	if got := s.Power(30); math.Abs(got-want) > 1e-12 {
		t.Fatalf("sqrt power = %g, want %g", got, want)
	}
	l := LinearPower{Scale: 3, Alpha: 2}
	if got := l.Power(4); got != 48 {
		t.Fatalf("linear power = %g, want 48", got)
	}
	f := PowerFunc{F: func(d float64) float64 { return d + 1 }, Label: "affine"}
	if f.Power(2) != 3 || f.Name() != "affine" {
		t.Fatal("PowerFunc misbehaved")
	}
	for _, pa := range []PowerAssignment{u, s, l} {
		if pa.Name() == "" {
			t.Fatal("empty assignment name")
		}
	}
}

// Linear power makes every link's own received signal strength equal to the
// scale constant — a useful invariant to pin down the formula.
func TestLinearPowerEqualizesReceivedStrength(t *testing.T) {
	src := rng.New(1)
	cfg := Figure1Config()
	cfg.Power = LinearPower{Scale: 7, Alpha: cfg.Alpha}
	n, err := Random(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	m := n.Gains()
	for i := 0; i < m.N; i++ {
		if math.Abs(m.Own(i)-7) > 1e-9 {
			t.Fatalf("link %d received strength %g, want 7", i, m.Own(i))
		}
	}
}

func TestApplyPower(t *testing.T) {
	n := twoLinkNet()
	n.ApplyPower(UniformPower{P: 9})
	for i, l := range n.Links {
		if l.Power != 9 {
			t.Fatalf("link %d power = %g", i, l.Power)
		}
	}
	n.ApplyPower(LinearPower{Scale: 1, Alpha: 2})
	if math.Abs(n.Links[0].Power-1) > 1e-12 { // length 1, 1·1^2
		t.Fatalf("linear power on unit link = %g", n.Links[0].Power)
	}
}

func TestRandomRespectsConfig(t *testing.T) {
	src := rng.New(99)
	cfg := Figure1Config()
	n, err := Random(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if n.N() != 100 {
		t.Fatalf("N = %d", n.N())
	}
	for i, l := range n.Links {
		if !cfg.Area.Contains(l.Receiver) {
			t.Fatalf("receiver %d outside area: %v", i, l.Receiver)
		}
		d := l.Length(n.Metric)
		if d < cfg.DMin || d > cfg.DMax {
			t.Fatalf("link %d length %g outside [%g,%g]", i, d, cfg.DMin, cfg.DMax)
		}
		if l.Power != 2 {
			t.Fatalf("link %d power %g, want 2", i, l.Power)
		}
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	a, err := Random(Figure1Config(), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(Figure1Config(), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			t.Fatalf("link %d differs across identical seeds", i)
		}
	}
	c, err := Random(Figure1Config(), rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if a.Links[0] == c.Links[0] {
		t.Fatal("different seeds produced identical first link")
	}
}

func TestRandomOpenLowerDistanceBound(t *testing.T) {
	// Figure 2 uses DMin = 0; the generator must never emit a zero-length
	// link (infinite gain).
	cfg := Figure2Config()
	cfg.N = 2000
	n, err := Random(cfg, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range n.Lengths() {
		if d <= 0 || d > 100 {
			t.Fatalf("link %d length %g outside (0,100]", i, d)
		}
	}
}

func TestRandomRejectsBadConfig(t *testing.T) {
	src := rng.New(1)
	bad := []Config{
		{N: 0, Area: geom.Square(10), DMin: 1, DMax: 2, Alpha: 2},
		{N: 5, Area: geom.Rect{}, DMin: 1, DMax: 2, Alpha: 2},
		{N: 5, Area: geom.Square(10), DMin: 2, DMax: 2, Alpha: 2},
		{N: 5, Area: geom.Square(10), DMin: -1, DMax: 2, Alpha: 2},
		{N: 5, Area: geom.Square(10), DMin: 1, DMax: 2, Alpha: 0},
	}
	for i, cfg := range bad {
		if _, err := Random(cfg, src); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestRandomDefaultsMetricAndPower(t *testing.T) {
	cfg := Config{N: 3, Area: geom.Square(100), DMin: 1, DMax: 2, Alpha: 2}
	n, err := Random(cfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if n.Metric == nil {
		t.Fatal("metric not defaulted")
	}
	for _, l := range n.Links {
		if l.Power != 1 {
			t.Fatalf("default power = %g, want 1", l.Power)
		}
	}
}

func TestFigureConfigsMatchPaper(t *testing.T) {
	f1 := Figure1Config()
	if f1.N != 100 || f1.Alpha != 2.2 || f1.Noise != 4e-7 || f1.DMin != 20 || f1.DMax != 40 {
		t.Fatalf("Figure1Config = %+v", f1)
	}
	f2 := Figure2Config()
	if f2.N != 200 || f2.Alpha != 2.1 || f2.Noise != 0 || f2.DMax != 100 {
		t.Fatalf("Figure2Config = %+v", f2)
	}
}

func TestGrid(t *testing.T) {
	n, err := Grid(2, 3, 10, 1, 2, 0, UniformPower{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	if n.N() != 6 {
		t.Fatalf("N = %d", n.N())
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, l := range n.Links {
		if got := l.Length(n.Metric); got != 1 {
			t.Fatalf("grid link length = %g", got)
		}
		if l.Power != 4 {
			t.Fatalf("grid power = %g", l.Power)
		}
	}
	if _, err := Grid(0, 3, 10, 1, 2, 0, nil); err == nil {
		t.Error("degenerate grid accepted")
	}
	if _, err := Grid(2, 2, 0, 1, 2, 0, nil); err == nil {
		t.Error("zero spacing accepted")
	}
}

func TestDelta(t *testing.T) {
	n := twoLinkNet()
	if got := n.Delta(); got != 1 {
		t.Fatalf("Delta = %g, want 1", got)
	}
	n.Links[1].Sender = geom.Point{X: 10, Y: 0}
	n.Links[1].Receiver = geom.Point{X: 14, Y: 0}
	if got := n.Delta(); got != 4 {
		t.Fatalf("Delta = %g, want 4", got)
	}
	empty := &Network{}
	if got := empty.Delta(); got != 0 {
		t.Fatalf("Delta of empty = %g", got)
	}
}

func TestClone(t *testing.T) {
	n := twoLinkNet()
	c := n.Clone()
	c.Links[0].Power = 99
	if n.Links[0].Power == 99 {
		t.Fatal("Clone shares link storage")
	}
}

// Property: gains are always finite and positive for valid random networks,
// and the matrix passes its own validation.
func TestQuickGainsWellFormed(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		cfg := Figure1Config()
		cfg.N = int(nRaw%30) + 1
		net, err := Random(cfg, rng.New(seed))
		if err != nil {
			return false
		}
		m := net.Gains()
		if m.Validate() != nil {
			return false
		}
		for j := 0; j < m.N; j++ {
			for i := 0; i < m.N; i++ {
				v := m.At(j, i)
				if !(v > 0) || math.IsInf(v, 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the own-link gain S̄(i,i) exceeds every interferer's gain at
// receiver i whenever link lengths are much shorter than typical
// cross-distances — sanity for the Figure-1 geometry where links are
// 20–40 long in a 1000×1000 field. Not universally true, so we only check
// that the diagonal is positive and typically dominant.
func TestDiagonalTypicallyDominates(t *testing.T) {
	net, err := Random(Figure1Config(), rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	m := net.Gains()
	dominated := 0
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			if j != i && m.At(j, i) > m.Own(i) {
				dominated++
			}
		}
	}
	if frac := float64(dominated) / float64(m.N*(m.N-1)); frac > 0.05 {
		t.Fatalf("diagonal dominated in %.1f%% of pairs; geometry looks wrong", 100*frac)
	}
}

func BenchmarkGains100(b *testing.B) {
	net, err := Random(Figure1Config(), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = net.Gains()
	}
}

func BenchmarkRandomNetwork(b *testing.B) {
	src := rng.New(1)
	cfg := Figure1Config()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Random(cfg, src); err != nil {
			b.Fatal(err)
		}
	}
}
