// Package network models sets of communication links — sender/receiver
// pairs with transmission powers — and derives from them the matrix of
// expected received signal strengths S̄(j,i) that both interference models
// consume.
//
// In the paper's notation (Section 2), a network is n links (s_1,r_1) ...
// (s_n,r_n). Under the standard geometric assumption, the expected strength
// of sender j's signal at receiver i is
//
//	S̄(j,i) = p_j / d(s_j, r_i)^α
//
// for transmission power p_j and path-loss exponent α. The non-fading model
// uses S̄(j,i) directly; the Rayleigh-fading model draws an exponential
// random variable with this mean. Everything downstream (SINR evaluation,
// success probabilities, scheduling algorithms) works from the Matrix type
// produced here, so non-geometric gain matrices can be injected for tests —
// the paper's reduction does not require geometry, only non-negative means.
package network

import (
	"errors"
	"fmt"
	"math"

	"rayfade/internal/geom"
	"rayfade/internal/rng"
)

// Link is one communication request: a sender that wants to transmit to a
// receiver with a fixed power. Weight is the link's value in weighted
// capacity maximization (1 for the standard unweighted objective).
type Link struct {
	Sender   geom.Point
	Receiver geom.Point
	Power    float64
	Weight   float64
}

// Length returns the sender-receiver distance under metric m.
func (l Link) Length(m geom.Metric) float64 { return m.Dist(l.Sender, l.Receiver) }

// Network is a set of links embedded in a metric space with a common
// path-loss exponent and ambient noise power.
type Network struct {
	Links  []Link
	Metric geom.Metric
	Alpha  float64 // path-loss exponent α > 0
	Noise  float64 // ambient noise ν ≥ 0
}

// N returns the number of links.
func (n *Network) N() int { return len(n.Links) }

// Validate reports structural problems that would make downstream
// computations meaningless: no links, non-positive powers, bad exponents,
// negative noise, or zero-length links (which give infinite gain).
func (n *Network) Validate() error {
	if len(n.Links) == 0 {
		return errors.New("network: no links")
	}
	if n.Metric == nil {
		return errors.New("network: nil metric")
	}
	if !(n.Alpha > 0) {
		return fmt.Errorf("network: path-loss exponent α = %g must be positive", n.Alpha)
	}
	if n.Noise < 0 || math.IsNaN(n.Noise) || math.IsInf(n.Noise, 0) {
		return fmt.Errorf("network: noise ν = %g must be finite and non-negative", n.Noise)
	}
	for i, l := range n.Links {
		if !(l.Power > 0) || math.IsInf(l.Power, 0) {
			return fmt.Errorf("network: link %d has invalid power %g", i, l.Power)
		}
		if l.Weight < 0 {
			return fmt.Errorf("network: link %d has negative weight %g", i, l.Weight)
		}
		if l.Length(n.Metric) <= 0 {
			return fmt.Errorf("network: link %d has non-positive length", i)
		}
	}
	return nil
}

// Lengths returns the sender-receiver distance of every link.
func (n *Network) Lengths() []float64 {
	ls := make([]float64, len(n.Links))
	for i, l := range n.Links {
		ls[i] = l.Length(n.Metric)
	}
	return ls
}

// Delta returns Δ, the ratio between the longest and shortest link. Several
// approximation bounds in the literature (e.g. the O(log Δ) bound for
// uniform powers) are parameterized by it.
func (n *Network) Delta() float64 {
	if len(n.Links) == 0 {
		return 0
	}
	lo, hi := math.Inf(1), 0.0
	for _, d := range n.Lengths() {
		lo = math.Min(lo, d)
		hi = math.Max(hi, d)
	}
	return hi / lo
}

// Clone returns a deep copy of the network (the metric, being stateless, is
// shared).
func (n *Network) Clone() *Network {
	c := *n
	c.Links = append([]Link(nil), n.Links...)
	return &c
}

// Matrix is the n×n table of expected received signal strengths S̄(j,i) in
// structure-of-arrays form: one flat, receiver-major float64 slice plus a
// cached diagonal. Entry (j,i) — sender j's mean strength at receiver i,
// the paper's S̄_{j,i} — is read with At(j, i); the gains arriving at one
// receiver are contiguous in memory, so the SINR inner loops (sum over
// senders j at a fixed receiver i) walk a cache-linear slice obtained with
// Incoming(i) instead of striding across rows of a [][]float64.
type Matrix struct {
	N     int
	Noise float64
	// Weights carries the links' weights so that algorithms operating
	// purely on the matrix can still optimize weighted objectives.
	Weights []float64
	// in is the receiver-major backing: in[i*N+j] = S̄(j,i).
	in []float64
	// own caches the diagonal: own[i] = S̄(i,i), the expected own-signal
	// strength every feasibility and affectance check starts from.
	own []float64
}

// newMatrix allocates an all-zero n×n matrix with unit weights.
func newMatrix(n int, noise float64) *Matrix {
	m := &Matrix{
		N:       n,
		Noise:   noise,
		Weights: make([]float64, n),
		in:      make([]float64, n*n),
		own:     make([]float64, n),
	}
	for i := range m.Weights {
		m.Weights[i] = 1
	}
	return m
}

// At returns S̄(j,i), the mean strength of sender j's signal at receiver i.
func (m *Matrix) At(j, i int) float64 { return m.in[i*m.N+j] }

// Own returns S̄(i,i), the expected own-signal strength of link i.
func (m *Matrix) Own(i int) float64 { return m.own[i] }

// Incoming returns the contiguous slice of gains arriving at receiver i:
// Incoming(i)[j] = S̄(j,i). It is a live view into the matrix backing (not a
// copy) — the allocation-free contract of the sampling and SINR kernels
// depends on that — so callers must not grow or retain it across mutations.
func (m *Matrix) Incoming(i int) []float64 { return m.in[i*m.N : (i+1)*m.N] }

// SetGain sets S̄(j,i), keeping the diagonal cache coherent. Construction
// and test injection go through here; hot paths only read.
func (m *Matrix) SetGain(j, i int, v float64) {
	m.in[i*m.N+j] = v
	if j == i {
		m.own[i] = v
	}
}

// LinkArrays is the structure-of-arrays view of a network's links: parallel
// slices indexed by link, each contiguous in memory. Gains builds one per
// topology so the O(n²) gain fill streams through positions and powers
// linearly instead of hopping across Link structs.
type LinkArrays struct {
	SenderX, SenderY     []float64
	ReceiverX, ReceiverY []float64
	Power                []float64
	Weight               []float64
}

// Arrays decomposes the links into their structure-of-arrays form. Weights
// of zero are normalized to 1, matching the Matrix convention.
func (n *Network) Arrays() *LinkArrays {
	size := len(n.Links)
	backing := make([]float64, 6*size)
	a := &LinkArrays{
		SenderX:   backing[0*size : 1*size],
		SenderY:   backing[1*size : 2*size],
		ReceiverX: backing[2*size : 3*size],
		ReceiverY: backing[3*size : 4*size],
		Power:     backing[4*size : 5*size],
		Weight:    backing[5*size : 6*size],
	}
	for i, l := range n.Links {
		a.SenderX[i], a.SenderY[i] = l.Sender.X, l.Sender.Y
		a.ReceiverX[i], a.ReceiverY[i] = l.Receiver.X, l.Receiver.Y
		a.Power[i] = l.Power
		w := l.Weight
		if w == 0 {
			w = 1
		}
		a.Weight[i] = w
	}
	return a
}

// Gains computes the expected-strength matrix of the network:
// S̄(j,i) = p_j / d(s_j, r_i)^α, laid out receiver-major so each receiver's
// incoming gains are contiguous. The fill iterates receivers in the outer
// loop and streams the sender arrays in the inner loop; the per-entry
// arithmetic (power times PathLoss of the metric distance) is unchanged, so
// every entry is bit-identical to the historical row-major construction.
func (n *Network) Gains() *Matrix {
	size := len(n.Links)
	m := newMatrix(size, n.Noise)
	a := n.Arrays()
	for i := 0; i < size; i++ {
		row := m.in[i*size : (i+1)*size]
		recv := geom.Point{X: a.ReceiverX[i], Y: a.ReceiverY[i]}
		for j := 0; j < size; j++ {
			d := n.Metric.Dist(geom.Point{X: a.SenderX[j], Y: a.SenderY[j]}, recv)
			row[j] = a.Power[j] * geom.PathLoss(d, n.Alpha)
		}
		m.own[i] = row[i]
	}
	copy(m.Weights, a.Weight)
	return m
}

// NewMatrix builds a Matrix directly from gain values; g[j][i] is the mean
// strength of sender j at receiver i. It is the injection point for
// non-geometric instances (the paper's reduction needs only non-negative
// means). Weights default to 1.
func NewMatrix(g [][]float64, noise float64) (*Matrix, error) {
	n := len(g)
	if n == 0 {
		return nil, errors.New("network: empty gain matrix")
	}
	if noise < 0 || math.IsNaN(noise) || math.IsInf(noise, 0) {
		return nil, fmt.Errorf("network: invalid noise %g", noise)
	}
	m := newMatrix(n, noise)
	for j, row := range g {
		if len(row) != n {
			return nil, fmt.Errorf("network: gain row %d has length %d, want %d", j, len(row), n)
		}
		for i, v := range row {
			if v < 0 || math.IsNaN(v) {
				return nil, fmt.Errorf("network: gain G[%d][%d] = %g invalid", j, i, v)
			}
			m.SetGain(j, i, v)
		}
	}
	return m, nil
}

// Validate checks the matrix for NaN, negative entries, and shape errors.
func (m *Matrix) Validate() error {
	if m.N == 0 || len(m.in) != m.N*m.N || len(m.own) != m.N {
		return fmt.Errorf("network: matrix shape N=%d backing=%d diag=%d", m.N, len(m.in), len(m.own))
	}
	for i := 0; i < m.N; i++ {
		row := m.Incoming(i)
		for j, v := range row {
			if v < 0 || math.IsNaN(v) {
				return fmt.Errorf("network: G[%d][%d] = %g invalid", j, i, v)
			}
		}
		if m.own[i] != row[i] {
			return fmt.Errorf("network: diagonal cache stale at link %d (%g != %g)", i, m.own[i], row[i])
		}
	}
	if m.Noise < 0 {
		return fmt.Errorf("network: negative noise %g", m.Noise)
	}
	return nil
}

// PowerAssignment maps a link to its transmission power. The paper's
// transformations never modify powers, so an assignment is fixed before any
// algorithm runs; the power-control algorithm of [6] chooses its own powers
// and overrides whatever assignment the network started with.
type PowerAssignment interface {
	// Power returns the transmission power for a link of length d.
	Power(d float64) float64
	// Name identifies the assignment in experiment output.
	Name() string
}

// UniformPower assigns every link the same power P. The paper's Figure 1
// uses UniformPower{P: 2}.
type UniformPower struct{ P float64 }

// Power implements PowerAssignment.
func (u UniformPower) Power(float64) float64 { return u.P }

// Name implements PowerAssignment.
func (u UniformPower) Name() string { return fmt.Sprintf("uniform(%g)", u.P) }

// SquareRootPower assigns a link of length d the power Scale·sqrt(d^α),
// the "square-root" (mean) power assignment of [4]; the paper's Figure 1
// uses Scale = 2 and α = 2.2.
type SquareRootPower struct {
	Scale float64
	Alpha float64
}

// Power implements PowerAssignment.
func (s SquareRootPower) Power(d float64) float64 {
	return s.Scale * math.Sqrt(math.Pow(d, s.Alpha))
}

// Name implements PowerAssignment.
func (s SquareRootPower) Name() string { return fmt.Sprintf("sqrt(scale=%g,α=%g)", s.Scale, s.Alpha) }

// LinearPower assigns a link of length d the power Scale·d^α, which makes
// every link's received signal strength equal to Scale — the classic
// "linear" assignment.
type LinearPower struct {
	Scale float64
	Alpha float64
}

// Power implements PowerAssignment.
func (l LinearPower) Power(d float64) float64 { return l.Scale * math.Pow(d, l.Alpha) }

// Name implements PowerAssignment.
func (l LinearPower) Name() string { return fmt.Sprintf("linear(scale=%g,α=%g)", l.Scale, l.Alpha) }

// PowerFunc adapts a plain function to a PowerAssignment.
type PowerFunc struct {
	F     func(d float64) float64
	Label string
}

// Power implements PowerAssignment.
func (p PowerFunc) Power(d float64) float64 { return p.F(d) }

// Name implements PowerAssignment.
func (p PowerFunc) Name() string { return p.Label }

// ApplyPower sets every link's power according to the assignment and
// returns the network for chaining.
func (n *Network) ApplyPower(pa PowerAssignment) *Network {
	for i := range n.Links {
		n.Links[i].Power = pa.Power(n.Links[i].Length(n.Metric))
	}
	return n
}

// Config describes the random-network workload of the paper's Section 7:
// receivers placed uniformly at random on a plane, each sender at a uniform
// random angle and uniform random distance from its receiver.
type Config struct {
	N          int         // number of links
	Area       geom.Rect   // deployment area for receivers
	DMin, DMax float64     // sender-receiver distance range
	Alpha      float64     // path-loss exponent
	Noise      float64     // ambient noise ν
	Metric     geom.Metric // defaults to Euclidean
	Power      PowerAssignment
}

// Figure1Config returns the exact workload of the paper's Figure 1:
// 100 links on a 1000×1000 plane, link lengths in [20,40], α = 2.2,
// ν = 4e-7, uniform power 2.
func Figure1Config() Config {
	return Config{
		N:     100,
		Area:  geom.Square(1000),
		DMin:  20,
		DMax:  40,
		Alpha: 2.2,
		Noise: 4e-7,
		Power: UniformPower{P: 2},
	}
}

// Figure2Config returns the workload of the paper's Figure 2: 200 links,
// link lengths in (0,100], α = 2.1, ν = 0, uniform power 2.
func Figure2Config() Config {
	return Config{
		N:     200,
		Area:  geom.Square(1000),
		DMin:  0,
		DMax:  100,
		Alpha: 2.1,
		Noise: 0,
		Power: UniformPower{P: 2},
	}
}

// Random draws a network from the configuration using src. Receivers are
// uniform over the area; each sender sits at a uniformly random angle and a
// uniformly random distance in (DMin, DMax] from its receiver (the lower
// endpoint is open so that DMin = 0, as in Figure 2, cannot produce a
// zero-length link). Senders may fall outside the area, matching the paper's
// construction, which constrains only receivers.
func Random(cfg Config, src *rng.Source) (*Network, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("network: config.N = %d must be positive", cfg.N)
	}
	if !cfg.Area.Valid() {
		return nil, fmt.Errorf("network: invalid deployment area %+v", cfg.Area)
	}
	if cfg.DMin < 0 || cfg.DMax <= cfg.DMin {
		return nil, fmt.Errorf("network: invalid distance range [%g,%g]", cfg.DMin, cfg.DMax)
	}
	if !(cfg.Alpha > 0) {
		return nil, fmt.Errorf("network: invalid α = %g", cfg.Alpha)
	}
	metric := cfg.Metric
	if metric == nil {
		metric = geom.Euclidean{}
	}
	pa := cfg.Power
	if pa == nil {
		pa = UniformPower{P: 1}
	}
	net := &Network{
		Links:  make([]Link, cfg.N),
		Metric: metric,
		Alpha:  cfg.Alpha,
		Noise:  cfg.Noise,
	}
	for i := range net.Links {
		recv := geom.Point{
			X: src.UniformRange(cfg.Area.X0, cfg.Area.X1),
			Y: src.UniformRange(cfg.Area.Y0, cfg.Area.Y1),
		}
		angle := src.UniformRange(0, 2*math.Pi)
		dist := cfg.DMin + (cfg.DMax-cfg.DMin)*src.Float64Open()
		sender := recv.PolarOffset(angle, dist)
		net.Links[i] = Link{
			Sender:   sender,
			Receiver: recv,
			Power:    pa.Power(dist),
			Weight:   1,
		}
	}
	return net, nil
}

// Grid builds a deterministic rows×cols network: receivers on a regular
// grid with the given spacing, each sender offset east by linkLen. Regular
// topologies of this kind are the deterministic counterpart to Random and
// are convenient for tests and worked examples (cf. the regular-topology
// throughput analyses the paper cites).
func Grid(rows, cols int, spacing, linkLen, alpha, noise float64, pa PowerAssignment) (*Network, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("network: grid %dx%d invalid", rows, cols)
	}
	if spacing <= 0 || linkLen <= 0 {
		return nil, fmt.Errorf("network: grid spacing %g / link length %g invalid", spacing, linkLen)
	}
	if pa == nil {
		pa = UniformPower{P: 1}
	}
	net := &Network{
		Links:  make([]Link, 0, rows*cols),
		Metric: geom.Euclidean{},
		Alpha:  alpha,
		Noise:  noise,
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			recv := geom.Point{X: float64(c) * spacing, Y: float64(r) * spacing}
			net.Links = append(net.Links, Link{
				Sender:   recv.Add(geom.Point{X: linkLen}),
				Receiver: recv,
				Power:    pa.Power(linkLen),
				Weight:   1,
			})
		}
	}
	return net, nil
}
