// Package benchio is the measurement and serialization layer behind
// cmd/raybench: a small harness that times a function with warmup and
// repeated measurement, records allocation behaviour, and reads/writes the
// schema-versioned BENCH_<label>.json reports the repo's performance
// trajectory is built from.
//
// The package is deliberately generic — it knows nothing about fading,
// SINR, or the sim experiments. Scenario definitions live in cmd/raybench;
// benchio owns the measurement loop, the report schema, the regression
// comparison (compare.go), and the golden-determinism manifest (golden.go),
// so all three are unit-testable without running real workloads.
package benchio

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"rayfade/internal/fsio"
)

// SchemaVersion identifies the BENCH report layout. Readers reject files
// with a different version instead of misinterpreting them.
const SchemaVersion = 1

// Report is one benchmark run: every scenario measured under one
// environment, tagged with a label ("seed", "pr", "local", ...).
type Report struct {
	// Schema is SchemaVersion at write time.
	Schema int `json:"schema"`
	// Label names the run; the conventional file name is BENCH_<label>.json.
	Label string `json:"label"`
	// UnixTime is the capture time (seconds since epoch).
	UnixTime int64 `json:"unix_time"`
	// Env describes the machine and source tree the numbers came from.
	// Cross-machine time comparisons are meaningless; Env is what lets a
	// reader notice that before trusting a delta.
	Env Env `json:"env"`
	// Scenarios are the per-scenario measurements, in suite order.
	Scenarios []Scenario `json:"scenarios"`
}

// Env captures where a report was measured. Allocation counts are
// machine-independent; times are only comparable between reports whose Env
// matches in the fields that matter (CPU model, GOMAXPROCS).
type Env struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// CPUModel is the "model name" line from /proc/cpuinfo when readable,
	// empty otherwise.
	CPUModel string `json:"cpu_model,omitempty"`
	// GitSHA is the source revision, when the caller could determine it.
	GitSHA string `json:"git_sha,omitempty"`
}

// Scenario is one measured scenario: median-of-reps timing plus allocation
// behaviour per operation.
type Scenario struct {
	Name string `json:"name"`
	// NsPerOp is the median per-operation wall time across reps.
	NsPerOp float64 `json:"ns_per_op"`
	// MinNsPerOp / MaxNsPerOp bound the rep-to-rep dispersion; a wide
	// spread flags a noisy measurement.
	MinNsPerOp float64 `json:"min_ns_per_op"`
	MaxNsPerOp float64 `json:"max_ns_per_op"`
	// AllocsPerOp and BytesPerOp are heap-allocation counts per operation,
	// measured over a full rep (so they include anything the operation
	// triggers on other goroutines).
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// OpsPerSec is 1e9/NsPerOp — the throughput reading of the same number.
	OpsPerSec float64 `json:"ops_per_sec"`
	// UnitsPerOp is how many logical units of work one operation covers —
	// e.g. the line count of a batch request, or the fan width of a
	// concurrent burst. Omitted (meaning 1) for plain scenarios. Throughput
	// in units/sec is OpsPerSec times this.
	UnitsPerOp float64 `json:"units_per_op,omitempty"`
	// Iters is the calibrated iteration count each rep ran; Reps is how
	// many timed reps contributed.
	Iters int `json:"iters"`
	Reps  int `json:"reps"`
	// TraceSpansPerOp and TraceOverheadNsPerOp are filled only by traced
	// runs (raybench run -trace-dir): the spans one operation emits and the
	// extra per-op wall time the enabled tracer cost against the untraced
	// measurement of the same run. Zero (omitted) on plain runs, so the
	// schema stays at version 1.
	TraceSpansPerOp      float64 `json:"trace_spans_per_op,omitempty"`
	TraceOverheadNsPerOp float64 `json:"trace_overhead_ns_per_op,omitempty"`
}

// Options tunes the measurement loop. The zero value selects the full
// defaults; Quick() selects the CI smoke settings.
type Options struct {
	// WarmupIters runs before any timing (JIT-free Go still benefits:
	// caches, page faults, pool fills). <= 0 selects 1.
	WarmupIters int
	// Reps is the number of timed repetitions; the median is reported.
	// <= 0 selects 5.
	Reps int
	// MinTime is the target wall time per rep; iterations are calibrated
	// up (doubling) until one rep takes at least this long. <= 0 selects
	// 100ms. A single operation longer than MinTime runs once per rep.
	MinTime time.Duration
	// MaxIters caps the calibrated per-rep iteration count. <= 0 selects
	// 1<<20.
	MaxIters int
}

func (o Options) withDefaults() Options {
	if o.WarmupIters <= 0 {
		o.WarmupIters = 1
	}
	if o.Reps <= 0 {
		o.Reps = 5
	}
	if o.MinTime <= 0 {
		o.MinTime = 100 * time.Millisecond
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 1 << 20
	}
	return o
}

// Quick returns the -quick settings: fewer reps and a shorter per-rep
// target, sized for PR smoke runs on shared runners.
func Quick() Options {
	return Options{WarmupIters: 1, Reps: 3, MinTime: 25 * time.Millisecond}
}

// Measure times fn under opts and returns the filled Scenario. fn is the
// operation under test; it must be self-contained (no per-call setup — do
// that before calling Measure, or fold its cost knowingly).
func Measure(name string, opts Options, fn func()) Scenario {
	opts = opts.withDefaults()
	for i := 0; i < opts.WarmupIters; i++ {
		fn()
	}
	iters := calibrate(opts, fn)

	// Allocation passes: MemStats deltas over one full rep. Mallocs is a
	// process-wide counter, so concurrent helpers (worker pools, HTTP
	// goroutines) are charged to the scenario that drives them — which is
	// the accounting a throughput scenario wants. Two passes are taken and
	// the smaller kept: a one-off background allocation (runtime
	// housekeeping, a timer firing) lands in at most one window, so the
	// minimum is the steady-state per-op cost. An allocation-free kernel
	// thereby reports exactly 0 instead of a fractional phantom like 1/iters.
	allocs, bytes := measureAllocs(iters, fn)
	if a2, b2 := measureAllocs(iters, fn); a2 < allocs || (a2 == allocs && b2 < bytes) {
		allocs, bytes = a2, b2
	}

	// Timed reps.
	ns := make([]float64, opts.Reps)
	for r := 0; r < opts.Reps; r++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		ns[r] = float64(time.Since(start).Nanoseconds()) / float64(iters)
	}
	med, lo, hi := medianMinMax(ns)
	s := Scenario{
		Name:        name,
		NsPerOp:     med,
		MinNsPerOp:  lo,
		MaxNsPerOp:  hi,
		AllocsPerOp: allocs,
		BytesPerOp:  bytes,
		Iters:       iters,
		Reps:        opts.Reps,
	}
	if med > 0 {
		s.OpsPerSec = 1e9 / med
	}
	return s
}

// measureAllocs runs one rep of fn between MemStats readings and returns the
// per-operation allocation count and byte volume.
func measureAllocs(iters int, fn func()) (allocs, bytes float64) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < iters; i++ {
		fn()
	}
	runtime.ReadMemStats(&after)
	allocs = float64(after.Mallocs-before.Mallocs) / float64(iters)
	bytes = float64(after.TotalAlloc-before.TotalAlloc) / float64(iters)
	return allocs, bytes
}

// ScalingWidth extracts the worker width from a scaling-scenario name of the
// form ".../workers=N". It returns 0 when the name carries no such suffix.
// Scenario names encode their parallelism this way so both the runner and
// the comparison layer can refuse to trust a width the measuring machine
// could not actually provide.
func ScalingWidth(name string) int {
	const marker = "workers="
	i := strings.LastIndex(name, marker)
	if i < 0 || (i > 0 && name[i-1] != '/') {
		return 0
	}
	n, err := strconv.Atoi(name[i+len(marker):])
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// calibrate doubles the iteration count until one rep reaches MinTime.
func calibrate(opts Options, fn func()) int {
	iters := 1
	for {
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		if time.Since(start) >= opts.MinTime || iters >= opts.MaxIters {
			return iters
		}
		iters *= 2
	}
}

// medianMinMax returns the median, minimum, and maximum of vs (len ≥ 1).
func medianMinMax(vs []float64) (med, lo, hi float64) {
	sorted := append([]float64(nil), vs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	n := len(sorted)
	med = sorted[n/2]
	if n%2 == 0 {
		med = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	return med, sorted[0], sorted[n-1]
}

// CaptureEnv fills an Env from the running process. gitSHA is supplied by
// the caller (empty when unknown) so benchio stays free of exec.
func CaptureEnv(gitSHA string) Env {
	return Env{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUModel:   cpuModel(),
		GitSHA:     gitSHA,
	}
}

// cpuModel parses the first "model name" line of /proc/cpuinfo; it returns
// "" on any platform or error, which serializes as an absent field.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}

// WriteReport marshals r (indented, trailing newline) to path, stamping the
// schema version.
func WriteReport(path string, r *Report) error {
	r.Schema = SchemaVersion
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("benchio: marshal report: %w", err)
	}
	return fsio.WriteFileAtomic(path, append(data, '\n'), 0o644)
}

// ReadReport reads and validates a BENCH report. It rejects files written
// under a different schema version.
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchio: read report: %w", err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("benchio: parse %s: %w", path, err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("benchio: %s has schema %d, this binary reads %d", path, r.Schema, SchemaVersion)
	}
	return &r, nil
}
