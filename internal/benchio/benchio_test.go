package benchio

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func writeFile(path, data string) error {
	return os.WriteFile(path, []byte(data), 0o644)
}

func TestMeasureFillsScenario(t *testing.T) {
	var sink float64
	s := Measure("spin", Options{WarmupIters: 1, Reps: 3, MinTime: time.Millisecond}, func() {
		for i := 0; i < 1000; i++ {
			sink += math.Sqrt(float64(i))
		}
	})
	if s.Name != "spin" {
		t.Fatalf("name = %q", s.Name)
	}
	if s.NsPerOp <= 0 {
		t.Fatalf("NsPerOp = %g, want > 0", s.NsPerOp)
	}
	if s.MinNsPerOp > s.NsPerOp || s.NsPerOp > s.MaxNsPerOp {
		t.Fatalf("ordering broken: min %g median %g max %g", s.MinNsPerOp, s.NsPerOp, s.MaxNsPerOp)
	}
	if s.OpsPerSec <= 0 {
		t.Fatalf("OpsPerSec = %g, want > 0", s.OpsPerSec)
	}
	if s.Iters < 1 || s.Reps != 3 {
		t.Fatalf("iters %d reps %d", s.Iters, s.Reps)
	}
	_ = sink
}

func TestMeasureCountsAllocations(t *testing.T) {
	var keep [][]byte
	s := Measure("alloc", Options{WarmupIters: 1, Reps: 2, MinTime: time.Microsecond, MaxIters: 4}, func() {
		keep = append(keep[:0], make([]byte, 4096))
	})
	if s.AllocsPerOp < 0.5 {
		t.Fatalf("AllocsPerOp = %g, want ≥ 1-ish for an allocating op", s.AllocsPerOp)
	}
	if s.BytesPerOp < 1024 {
		t.Fatalf("BytesPerOp = %g, want ≥ 1024", s.BytesPerOp)
	}
}

func TestMedianMinMax(t *testing.T) {
	med, lo, hi := medianMinMax([]float64{5, 1, 3})
	if med != 3 || lo != 1 || hi != 5 {
		t.Fatalf("odd: got %g %g %g", med, lo, hi)
	}
	med, lo, hi = medianMinMax([]float64{4, 2})
	if med != 3 || lo != 2 || hi != 4 {
		t.Fatalf("even: got %g %g %g", med, lo, hi)
	}
}

func TestCaptureEnv(t *testing.T) {
	env := CaptureEnv("abc123")
	if env.GoVersion == "" || env.GOOS == "" || env.GOARCH == "" {
		t.Fatalf("incomplete env: %+v", env)
	}
	if env.NumCPU < 1 || env.GOMAXPROCS < 1 {
		t.Fatalf("bad CPU counts: %+v", env)
	}
	if env.GitSHA != "abc123" {
		t.Fatalf("GitSHA = %q", env.GitSHA)
	}
}

func TestReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	want := &Report{
		Label:    "test",
		UnixTime: 1700000000,
		Env:      CaptureEnv("deadbeef"),
		Scenarios: []Scenario{
			{Name: "a", NsPerOp: 120.5, MinNsPerOp: 110, MaxNsPerOp: 130, AllocsPerOp: 0, BytesPerOp: 0, OpsPerSec: 1e9 / 120.5, Iters: 64, Reps: 5},
			{Name: "b", NsPerOp: 3e6, MinNsPerOp: 2.5e6, MaxNsPerOp: 3.5e6, AllocsPerOp: 12, BytesPerOp: 4096, OpsPerSec: 1e9 / 3e6, Iters: 8, Reps: 5},
		},
	}
	if err := WriteReport(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != SchemaVersion {
		t.Fatalf("schema = %d, want %d", got.Schema, SchemaVersion)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestReadReportRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_old.json")
	r := &Report{Label: "old"}
	if err := WriteReport(path, r); err != nil {
		t.Fatal(err)
	}
	// Rewrite with a bumped schema number.
	data := `{"schema": 999, "label": "old", "env": {}, "scenarios": []}`
	if err := writeFile(path, data); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("want schema error, got %v", err)
	}
}

func TestReadReportRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_bad.json")
	if err := writeFile(path, "{not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(path); err == nil {
		t.Fatal("want parse error, got nil")
	}
	if _, err := ReadReport(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("want read error for absent file, got nil")
	}
}

func TestScalingWidth(t *testing.T) {
	cases := map[string]int{
		"sim/figure1-small/workers=1":  1,
		"sim/figure1-small/workers=8":  8,
		"sim/figure1-small/workers=64": 64,
		"fading/sample-sinrs-100":      0,
		"workers=4":                    4,
		"sim/notworkers=4":             0, // suffix must be its own path segment
		"sim/workers=":                 0,
		"sim/workers=-2":               0,
		"":                             0,
	}
	for name, want := range cases {
		if got := ScalingWidth(name); got != want {
			t.Errorf("ScalingWidth(%q) = %d, want %d", name, got, want)
		}
	}
}

func TestMeasureAllocationFreeReportsExactlyZero(t *testing.T) {
	// A kernel that allocates nothing must report exactly 0 allocs/op even
	// when unrelated runtime activity allocates once during one of the
	// measurement windows; the min-of-two-passes rule filters such one-offs.
	sink := 0.0
	s := Measure("zero", Options{Reps: 1, MinTime: time.Millisecond}, func() {
		for i := 0; i < 100; i++ {
			sink += float64(i)
		}
	})
	if s.AllocsPerOp != 0 {
		t.Fatalf("allocs/op = %g, want exactly 0", s.AllocsPerOp)
	}
}
