package benchio

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func manifest(entries map[string]string) *GoldenManifest {
	m := &GoldenManifest{Entries: map[string]GoldenEntry{}}
	for name, hash := range entries {
		m.Entries[name] = GoldenEntry{SHA256: hash, Note: "note-" + name}
	}
	return m
}

func TestHashBytesStable(t *testing.T) {
	a := HashBytes([]byte("figure1 output"))
	b := HashBytes([]byte("figure1 output"))
	if a != b {
		t.Fatalf("same input, different hashes: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("hex sha256 length = %d, want 64", len(a))
	}
	if c := HashBytes([]byte("figure1 output ")); c == a {
		t.Fatal("different input, same hash")
	}
}

func TestGoldenRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "golden.json")
	want := manifest(map[string]string{"figure1": "aa", "reduction": "bb"})
	if err := WriteGolden(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGolden(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != GoldenSchemaVersion {
		t.Fatalf("schema = %d", got.Schema)
	}
	if !reflect.DeepEqual(got.Entries, want.Entries) {
		t.Fatalf("entries mismatch:\ngot  %+v\nwant %+v", got.Entries, want.Entries)
	}
}

func TestGoldenRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "golden.json")
	if err := writeFile(path, `{"schema": 42, "entries": {}}`); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadGolden(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("want schema error, got %v", err)
	}
}

func TestDiffGoldenClean(t *testing.T) {
	rec := manifest(map[string]string{"a": "h1", "b": "h2"})
	got := manifest(map[string]string{"a": "h1", "b": "h2"})
	d := DiffGolden(rec, got)
	if !d.Clean() {
		t.Fatalf("diff not clean: %+v", d)
	}
}

func TestDiffGoldenMismatch(t *testing.T) {
	rec := manifest(map[string]string{"a": "h1", "b": "h2", "dropped": "h3"})
	got := manifest(map[string]string{"a": "h1", "b": "CHANGED", "extra": "h4"})
	d := DiffGolden(rec, got)
	if d.Clean() {
		t.Fatal("diff reported clean")
	}
	if !reflect.DeepEqual(d.Mismatched, []string{"b"}) {
		t.Fatalf("Mismatched = %v", d.Mismatched)
	}
	if !reflect.DeepEqual(d.Missing, []string{"dropped"}) {
		t.Fatalf("Missing = %v", d.Missing)
	}
	if !reflect.DeepEqual(d.Extra, []string{"extra"}) {
		t.Fatalf("Extra = %v", d.Extra)
	}
}
