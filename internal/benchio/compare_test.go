package benchio

import (
	"math"
	"strings"
	"testing"
)

func report(scenarios ...Scenario) *Report {
	return &Report{Label: "t", Scenarios: scenarios}
}

func deltaFor(t *testing.T, c *CompareResult, name string) Delta {
	t.Helper()
	for _, d := range c.Deltas {
		if d.Name == name {
			return d
		}
	}
	t.Fatalf("no delta for %q", name)
	return Delta{}
}

func TestCompareFlagsRegressionBeyondThreshold(t *testing.T) {
	old := report(Scenario{Name: "k", NsPerOp: 100})
	new := report(Scenario{Name: "k", NsPerOp: 200}) // 2× slower
	c := Compare(old, new, MetricTime, 0.40)
	d := deltaFor(t, c, "k")
	if d.Status != StatusRegression {
		t.Fatalf("status = %q, want regression", d.Status)
	}
	if !c.Failed() {
		t.Fatal("Failed() = false for a 2× regression at 40%")
	}
	if got := c.Regressions(); len(got) != 1 || got[0].Name != "k" {
		t.Fatalf("Regressions() = %+v", got)
	}
}

func TestCompareWithinThresholdIsOK(t *testing.T) {
	old := report(Scenario{Name: "k", NsPerOp: 100})
	new := report(Scenario{Name: "k", NsPerOp: 130})
	c := Compare(old, new, MetricTime, 0.40)
	if d := deltaFor(t, c, "k"); d.Status != StatusOK {
		t.Fatalf("status = %q, want ok", d.Status)
	}
	if c.Failed() {
		t.Fatal("Failed() = true for +30% at 40% threshold")
	}
}

func TestCompareFlagsImprovement(t *testing.T) {
	old := report(Scenario{Name: "k", NsPerOp: 100})
	new := report(Scenario{Name: "k", NsPerOp: 40})
	c := Compare(old, new, MetricTime, 0.40)
	if d := deltaFor(t, c, "k"); d.Status != StatusImprovement {
		t.Fatalf("status = %q, want improvement", d.Status)
	}
	if c.Failed() {
		t.Fatal("an improvement must not fail the gate")
	}
}

func TestCompareZeroBaselineTime(t *testing.T) {
	old := report(Scenario{Name: "k", NsPerOp: 0})
	new := report(Scenario{Name: "k", NsPerOp: 50})
	c := Compare(old, new, MetricTime, 0.40)
	d := deltaFor(t, c, "k")
	if d.Status != StatusIncomparable || !strings.Contains(d.Reason, "zero") {
		t.Fatalf("delta = %+v, want incomparable/zero baseline", d)
	}
	if c.Failed() {
		t.Fatal("incomparable must not fail the gate")
	}
}

func TestCompareZeroBaselineAllocsStillGates(t *testing.T) {
	// An allocation-free kernel that starts allocating is exactly what the
	// allocs gate exists for — the zero baseline must stay comparable.
	old := report(Scenario{Name: "kernel", AllocsPerOp: 0})
	bad := report(Scenario{Name: "kernel", AllocsPerOp: 100})
	c := Compare(old, bad, MetricAllocs, 0.40)
	if d := deltaFor(t, c, "kernel"); d.Status != StatusRegression {
		t.Fatalf("status = %q, want regression for 0→100 allocs", d.Status)
	}
	// ...but runtime jitter below the absolute slack stays quiet.
	ok := report(Scenario{Name: "kernel", AllocsPerOp: 2})
	c = Compare(old, ok, MetricAllocs, 0.40)
	if d := deltaFor(t, c, "kernel"); d.Status != StatusOK {
		t.Fatalf("status = %q, want ok for 0→2 allocs", d.Status)
	}
}

func TestCompareAllocSlackAbsorbsSmallAbsoluteGrowth(t *testing.T) {
	// 4 → 7 allocs is +75% relative but tiny in absolute terms; the slack
	// keeps it from gating.
	old := report(Scenario{Name: "s", AllocsPerOp: 4})
	new := report(Scenario{Name: "s", AllocsPerOp: 7})
	c := Compare(old, new, MetricAllocs, 0.40)
	if d := deltaFor(t, c, "s"); d.Status == StatusRegression {
		t.Fatalf("status = regression for +3 allocs within slack")
	}
	// 100 → 200 is beyond both relative threshold and slack.
	old = report(Scenario{Name: "s", AllocsPerOp: 100})
	new = report(Scenario{Name: "s", AllocsPerOp: 200})
	c = Compare(old, new, MetricAllocs, 0.40)
	if d := deltaFor(t, c, "s"); d.Status != StatusRegression {
		t.Fatalf("status = %q, want regression for 100→200 allocs", d.Status)
	}
}

func TestCompareNaNGuard(t *testing.T) {
	for _, tc := range []struct{ oldV, newV float64 }{
		{math.NaN(), 100},
		{100, math.NaN()},
		{math.Inf(1), 100},
		{100, math.Inf(1)},
		{-5, 100},
	} {
		old := report(Scenario{Name: "k", NsPerOp: tc.oldV})
		new := report(Scenario{Name: "k", NsPerOp: tc.newV})
		c := Compare(old, new, MetricTime, 0.40)
		d := deltaFor(t, c, "k")
		if d.Status != StatusIncomparable {
			t.Fatalf("old=%g new=%g: status = %q, want incomparable", tc.oldV, tc.newV, d.Status)
		}
		if c.Failed() {
			t.Fatalf("old=%g new=%g: non-finite input failed the gate", tc.oldV, tc.newV)
		}
	}
}

func TestCompareMissingScenarioFails(t *testing.T) {
	old := report(Scenario{Name: "kept", NsPerOp: 100}, Scenario{Name: "dropped", NsPerOp: 100})
	new := report(Scenario{Name: "kept", NsPerOp: 100}, Scenario{Name: "brand-new", NsPerOp: 100})
	c := Compare(old, new, MetricTime, 0.40)
	if len(c.Missing) != 1 || c.Missing[0] != "dropped" {
		t.Fatalf("Missing = %v", c.Missing)
	}
	if len(c.Added) != 1 || c.Added[0] != "brand-new" {
		t.Fatalf("Added = %v", c.Added)
	}
	if !c.Failed() {
		t.Fatal("a silently dropped scenario must fail the gate")
	}
}

// TestCompareAddedScenariosDoNotGate: a PR that introduces new scenarios
// must pass cleanly — additions have no baseline and are informational, not
// a failure — and the text output must say so rather than hinting at a
// missing-scenario problem.
func TestCompareAddedScenariosDoNotGate(t *testing.T) {
	old := report(Scenario{Name: "kept", NsPerOp: 100})
	new := report(Scenario{Name: "kept", NsPerOp: 100}, Scenario{Name: "brand-new", NsPerOp: 100})
	c := Compare(old, new, MetricTime, 0.40)
	if len(c.Added) != 1 || len(c.Missing) != 0 {
		t.Fatalf("Added = %v, Missing = %v", c.Added, c.Missing)
	}
	if c.Failed() {
		t.Fatal("new-in-PR scenarios must not fail the gate")
	}
	var sb strings.Builder
	if err := c.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "brand-new") || !strings.Contains(out, "informational") {
		t.Fatalf("added scenario not reported as informational:\n%s", out)
	}
	if strings.Contains(out, "MISSING") {
		t.Fatalf("addition mislabeled as missing:\n%s", out)
	}
}

func TestCompareDefaultsThresholdAndMetric(t *testing.T) {
	old := report(Scenario{Name: "k", NsPerOp: 100})
	new := report(Scenario{Name: "k", NsPerOp: 115}) // +15% > default 10%
	c := Compare(old, new, "", 0)
	if c.Threshold != 0.10 || c.Metric != MetricTime {
		t.Fatalf("defaults not applied: %+v", c)
	}
	if d := deltaFor(t, c, "k"); d.Status != StatusRegression {
		t.Fatalf("status = %q, want regression at default threshold", d.Status)
	}
}

func TestCompareWriteText(t *testing.T) {
	old := report(Scenario{Name: "a", NsPerOp: 100}, Scenario{Name: "gone", NsPerOp: 1})
	new := report(Scenario{Name: "a", NsPerOp: 300}, Scenario{Name: "fresh", NsPerOp: 1})
	c := Compare(old, new, MetricTime, 0.40)
	var sb strings.Builder
	if err := c.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"regression", "MISSING", "fresh", "+200.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestCompareEnvMismatchDowngradesTime(t *testing.T) {
	old := report(Scenario{Name: "k", NsPerOp: 100})
	old.Env.NumCPU = 1
	new := report(Scenario{Name: "k", NsPerOp: 300}) // 3× "slower" — but other machine
	new.Env.NumCPU = 8
	c := Compare(old, new, MetricTime, 0.40)
	d := deltaFor(t, c, "k")
	if d.Status != StatusInformational {
		t.Fatalf("status = %q, want informational on num_cpu mismatch", d.Status)
	}
	if d.Ratio != 3 {
		t.Fatalf("informational delta should keep the ratio, got %g", d.Ratio)
	}
	if c.Failed() {
		t.Fatal("informational deltas must not gate")
	}
}

func TestCompareEnvMismatchStillGatesAllocs(t *testing.T) {
	old := report(Scenario{Name: "k", AllocsPerOp: 10})
	old.Env.NumCPU = 1
	new := report(Scenario{Name: "k", AllocsPerOp: 100})
	new.Env.NumCPU = 8
	c := Compare(old, new, MetricAllocs, 0.40)
	if d := deltaFor(t, c, "k"); d.Status != StatusRegression {
		t.Fatalf("status = %q; allocs are machine-independent and must still gate", d.Status)
	}
	if !c.Failed() {
		t.Fatal("alloc regression must fail across machine classes")
	}
}

func TestCompareOversubscribedScalingWidthIncomparable(t *testing.T) {
	old := report(
		Scenario{Name: "sim/figure1-small/workers=8", NsPerOp: 100},
		Scenario{Name: "sim/figure1-small/workers=1", NsPerOp: 100},
	)
	old.Env.NumCPU = 1 // the corrupt-baseline shape: widths measured on one core
	new := report(
		Scenario{Name: "sim/figure1-small/workers=8", NsPerOp: 100},
		Scenario{Name: "sim/figure1-small/workers=1", NsPerOp: 100},
	)
	new.Env.NumCPU = 8
	c := Compare(old, new, MetricTime, 0.40)
	d := deltaFor(t, c, "sim/figure1-small/workers=8")
	if d.Status != StatusIncomparable {
		t.Fatalf("status = %q, want incomparable for width 8 on a 1-CPU baseline", d.Status)
	}
	if !strings.Contains(d.Reason, "num_cpu") {
		t.Fatalf("reason = %q", d.Reason)
	}
	// The width-1 scenario is not oversubscribed — plain env-mismatch rules.
	if d := deltaFor(t, c, "sim/figure1-small/workers=1"); d.Status != StatusInformational {
		t.Fatalf("workers=1 status = %q, want informational", d.Status)
	}
	if c.Failed() {
		t.Fatal("neither incomparable nor informational deltas may gate")
	}
}

func TestCompareMissingScalingScenarioExcusedOnNarrowMachine(t *testing.T) {
	old := report(
		Scenario{Name: "sim/figure1-small/workers=8", NsPerOp: 100},
		Scenario{Name: "plain-kernel", NsPerOp: 100},
	)
	old.Env.NumCPU = 8
	new := report(Scenario{Name: "plain-kernel", NsPerOp: 100})
	new.Env.NumCPU = 4 // the runner refused to measure workers=8 here
	c := Compare(old, new, MetricAllocs, 0.40)
	if len(c.Missing) != 0 {
		t.Fatalf("Missing = %v; an oversubscribed width is an expected skip", c.Missing)
	}
	if len(c.SkippedScaling) != 1 || c.SkippedScaling[0] != "sim/figure1-small/workers=8" {
		t.Fatalf("SkippedScaling = %v", c.SkippedScaling)
	}
	if c.Failed() {
		t.Fatal("an expected scaling skip must not fail the gate")
	}
	// A genuinely vanished scenario still gates.
	new2 := report(Scenario{Name: "sim/figure1-small/workers=8", NsPerOp: 100})
	new2.Env.NumCPU = 8
	if c := Compare(old, new2, MetricAllocs, 0.40); !c.Failed() {
		t.Fatal("a vanished non-scaling scenario must still fail the gate")
	}
}
