package benchio

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"rayfade/internal/fsio"
)

// GoldenSchemaVersion identifies the golden-manifest layout.
const GoldenSchemaVersion = 1

// GoldenManifest maps experiment names to the SHA-256 of their canonical
// fixed-seed output. It is checked in (results/golden.json); `raybench
// golden -check` recomputes every hash and fails on any drift, turning
// "the experiments are deterministic" from a claim into a mechanical
// invariant.
type GoldenManifest struct {
	Schema  int                    `json:"schema"`
	Entries map[string]GoldenEntry `json:"entries"`
}

// GoldenEntry is one experiment's recorded fingerprint.
type GoldenEntry struct {
	// SHA256 is the hex digest of the experiment's canonical rendering.
	SHA256 string `json:"sha256"`
	// Note describes the fixed configuration the hash was taken under, so
	// a mismatch can be reproduced by hand.
	Note string `json:"note,omitempty"`
}

// HashBytes returns the hex SHA-256 of data.
func HashBytes(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// GoldenDiff is the outcome of checking a freshly computed manifest against
// the recorded one.
type GoldenDiff struct {
	// Mismatched experiments exist in both manifests with different hashes
	// — a determinism break or an intentional output change.
	Mismatched []string
	// Missing experiments are recorded but were not recomputed (an
	// experiment was dropped without regenerating the manifest).
	Missing []string
	// Extra experiments were computed but are not recorded yet.
	Extra []string
}

// DiffGolden compares the recorded manifest against freshly computed
// entries. Names in each field are sorted for stable output.
func DiffGolden(recorded, computed *GoldenManifest) GoldenDiff {
	var d GoldenDiff
	for name, want := range recorded.Entries {
		got, ok := computed.Entries[name]
		switch {
		case !ok:
			d.Missing = append(d.Missing, name)
		case got.SHA256 != want.SHA256:
			d.Mismatched = append(d.Mismatched, name)
		}
	}
	for name := range computed.Entries {
		if _, ok := recorded.Entries[name]; !ok {
			d.Extra = append(d.Extra, name)
		}
	}
	sort.Strings(d.Mismatched)
	sort.Strings(d.Missing)
	sort.Strings(d.Extra)
	return d
}

// Clean reports whether the diff is empty: every recorded experiment was
// recomputed to the identical hash and nothing appeared or disappeared.
func (d GoldenDiff) Clean() bool {
	return len(d.Mismatched) == 0 && len(d.Missing) == 0 && len(d.Extra) == 0
}

// WriteGolden marshals m (indented, sorted keys via encoding/json's map
// ordering, trailing newline) to path, stamping the schema version.
func WriteGolden(path string, m *GoldenManifest) error {
	m.Schema = GoldenSchemaVersion
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("benchio: marshal golden manifest: %w", err)
	}
	return fsio.WriteFileAtomic(path, append(data, '\n'), 0o644)
}

// ReadGolden reads and validates a golden manifest.
func ReadGolden(path string) (*GoldenManifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchio: read golden manifest: %w", err)
	}
	var m GoldenManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("benchio: parse %s: %w", path, err)
	}
	if m.Schema != GoldenSchemaVersion {
		return nil, fmt.Errorf("benchio: %s has golden schema %d, this binary reads %d", path, m.Schema, GoldenSchemaVersion)
	}
	if m.Entries == nil {
		m.Entries = map[string]GoldenEntry{}
	}
	return &m, nil
}
