package benchio

import (
	"fmt"
	"io"
	"math"
)

// Comparison statuses. A scenario is a regression only when it is slower
// (or allocates more, under MetricAllocs) beyond the noise threshold;
// everything that cannot be compared meaningfully is reported as
// incomparable rather than silently passed or failed.
const (
	StatusOK           = "ok"
	StatusRegression   = "regression"
	StatusImprovement  = "improvement"
	StatusIncomparable = "incomparable"
	// StatusInformational marks a delta that was computed but must not gate:
	// the reports disagree on a field that makes the metric cross-machine
	// (currently: time metrics when num_cpu differs). The numbers are shown,
	// the ratio is real, but Failed() ignores it.
	StatusInformational = "informational"
)

// Metric selects which per-scenario number Compare gates on.
type Metric string

const (
	// MetricTime gates on NsPerOp. Only meaningful when both reports come
	// from the same machine class.
	MetricTime Metric = "time"
	// MetricAllocs gates on AllocsPerOp — machine-independent, so it is
	// the metric CI uses against a baseline captured elsewhere.
	MetricAllocs Metric = "allocs"
)

// allocSlack is the absolute allocs/op increase below which an alloc delta
// is never a regression: it absorbs runtime jitter (GC bookkeeping, HTTP
// goroutines) without masking a kernel that starts allocating per element.
const allocSlack = 8.0

// Delta is one scenario's old-vs-new comparison.
type Delta struct {
	Name     string  `json:"name"`
	Old      float64 `json:"old"`
	New      float64 `json:"new"`
	Ratio    float64 `json:"ratio"`            // new/old; 0 when incomparable
	PctDelta float64 `json:"pct_delta"`        // 100*(new-old)/old; 0 when incomparable
	Status   string  `json:"status"`           // one of the Status* constants
	Reason   string  `json:"reason,omitempty"` // set when incomparable
}

// CompareResult is the full old-vs-new report.
type CompareResult struct {
	Metric    Metric  `json:"metric"`
	Threshold float64 `json:"threshold"`
	Deltas    []Delta `json:"deltas"`
	// Missing are scenarios present in old but absent from new — a suite
	// that silently shrank fails the gate.
	Missing []string `json:"missing,omitempty"`
	// SkippedScaling are scenarios present in old but absent from new whose
	// worker width exceeds the new report's CPU count: the runner refuses to
	// measure oversubscribed widths, so their absence is expected and does
	// not gate.
	SkippedScaling []string `json:"skipped_scaling,omitempty"`
	// Added are scenarios new to this run; informational only.
	Added []string `json:"added,omitempty"`
}

// Compare evaluates new against old under a relative noise threshold
// (0.10 = 10%; <= 0 selects 0.10). Guards:
//
//   - zero baseline: a ratio against 0 is undefined; the pair is
//     incomparable unless the metric is allocs, where growth beyond the
//     absolute slack is still a regression (0 → N allocs is exactly the
//     failure mode the allocation-free kernels guard against);
//   - NaN/Inf on either side: incomparable, never a silent pass;
//   - scenarios missing from new are collected in Missing.
func Compare(old, new *Report, metric Metric, threshold float64) *CompareResult {
	if threshold <= 0 {
		threshold = 0.10
	}
	if metric == "" {
		metric = MetricTime
	}
	res := &CompareResult{Metric: metric, Threshold: threshold}
	// Time is only comparable within one machine class. When the two reports
	// were measured on different CPU counts every time delta is computed but
	// downgraded to informational — visible, never gating.
	envMismatch := metric == MetricTime && old.Env.NumCPU != new.Env.NumCPU
	newByName := make(map[string]Scenario, len(new.Scenarios))
	for _, s := range new.Scenarios {
		newByName[s.Name] = s
	}
	oldNames := make(map[string]bool, len(old.Scenarios))
	for _, os := range old.Scenarios {
		oldNames[os.Name] = true
		ns, ok := newByName[os.Name]
		if !ok {
			if w := ScalingWidth(os.Name); w > 0 && new.Env.NumCPU > 0 && w > new.Env.NumCPU {
				res.SkippedScaling = append(res.SkippedScaling, os.Name)
			} else {
				res.Missing = append(res.Missing, os.Name)
			}
			continue
		}
		d := compareOne(os, ns, metric, threshold)
		// A worker-scaling scenario wider than either machine's core count
		// was oversubscribed when measured; its numbers say nothing about
		// scaling and must not gate in either direction.
		if w := ScalingWidth(os.Name); w > 0 && metric == MetricTime &&
			(w > old.Env.NumCPU || w > new.Env.NumCPU) {
			d.Status = StatusIncomparable
			d.Reason = fmt.Sprintf("width %d exceeds num_cpu (old %d, new %d)", w, old.Env.NumCPU, new.Env.NumCPU)
		} else if envMismatch && d.Status != StatusIncomparable {
			d.Status = StatusInformational
			d.Reason = fmt.Sprintf("num_cpu differs (old %d, new %d)", old.Env.NumCPU, new.Env.NumCPU)
		}
		res.Deltas = append(res.Deltas, d)
	}
	for _, s := range new.Scenarios {
		if !oldNames[s.Name] {
			res.Added = append(res.Added, s.Name)
		}
	}
	return res
}

func metricValue(s Scenario, m Metric) float64 {
	if m == MetricAllocs {
		return s.AllocsPerOp
	}
	return s.NsPerOp
}

func compareOne(old, new Scenario, metric Metric, threshold float64) Delta {
	d := Delta{Name: old.Name, Old: metricValue(old, metric), New: metricValue(new, metric)}
	switch {
	case math.IsNaN(d.Old) || math.IsInf(d.Old, 0) || math.IsNaN(d.New) || math.IsInf(d.New, 0):
		d.Status = StatusIncomparable
		d.Reason = "non-finite measurement"
		return d
	case d.Old < 0 || d.New < 0:
		d.Status = StatusIncomparable
		d.Reason = "negative measurement"
		return d
	case d.Old == 0:
		if metric == MetricAllocs {
			// The one comparison that stays meaningful against a zero
			// baseline: an allocation-free kernel that starts allocating.
			if d.New > allocSlack {
				d.Status = StatusRegression
			} else {
				d.Status = StatusOK
			}
			return d
		}
		d.Status = StatusIncomparable
		d.Reason = "zero baseline"
		return d
	}
	d.Ratio = d.New / d.Old
	d.PctDelta = 100 * (d.New - d.Old) / d.Old
	switch {
	case d.Ratio > 1+threshold && (metric != MetricAllocs || d.New-d.Old > allocSlack):
		d.Status = StatusRegression
	case d.Ratio < 1-threshold:
		d.Status = StatusImprovement
	default:
		d.Status = StatusOK
	}
	return d
}

// Regressions returns the deltas flagged as regressions.
func (c *CompareResult) Regressions() []Delta {
	var out []Delta
	for _, d := range c.Deltas {
		if d.Status == StatusRegression {
			out = append(out, d)
		}
	}
	return out
}

// Failed reports whether the comparison should gate a merge: any
// regression, or any scenario that disappeared from the suite.
func (c *CompareResult) Failed() bool {
	return len(c.Regressions()) > 0 || len(c.Missing) > 0
}

// WriteText renders the comparison as an aligned human-readable table.
func (c *CompareResult) WriteText(w io.Writer) error {
	unit := "ns/op"
	if c.Metric == MetricAllocs {
		unit = "allocs/op"
	}
	if _, err := fmt.Fprintf(w, "%-40s %14s %14s %9s  %s\n", "scenario", "old "+unit, "new "+unit, "delta", "status"); err != nil {
		return err
	}
	for _, d := range c.Deltas {
		delta := "n/a"
		if d.Status != StatusIncomparable && d.Old != 0 {
			delta = fmt.Sprintf("%+.1f%%", d.PctDelta)
		}
		status := d.Status
		if d.Reason != "" {
			status += " (" + d.Reason + ")"
		}
		if _, err := fmt.Fprintf(w, "%-40s %14.1f %14.1f %9s  %s\n", d.Name, d.Old, d.New, delta, status); err != nil {
			return err
		}
	}
	for _, name := range c.Missing {
		if _, err := fmt.Fprintf(w, "%-40s MISSING from new report\n", name); err != nil {
			return err
		}
	}
	for _, name := range c.SkippedScaling {
		if _, err := fmt.Fprintf(w, "%-40s skipped (width exceeds new report's num_cpu)\n", name); err != nil {
			return err
		}
	}
	for _, name := range c.Added {
		if _, err := fmt.Fprintf(w, "%-40s new in this report (informational; no baseline to gate against)\n", name); err != nil {
			return err
		}
	}
	return nil
}

// WriteTraceOverhead renders the span-overhead readings a traced run
// (raybench run -trace-dir) recorded into its report: per scenario, the
// spans emitted per operation and what the enabled tracer cost on top of
// the untraced measurement. Writes nothing when the report carries no
// trace data.
func WriteTraceOverhead(w io.Writer, r *Report) error {
	header := false
	for _, s := range r.Scenarios {
		if s.TraceSpansPerOp == 0 && s.TraceOverheadNsPerOp == 0 {
			continue
		}
		if !header {
			if _, err := fmt.Fprintf(w, "\ntracing overhead (%s):\n%-40s %14s %18s\n",
				r.Label, "scenario", "spans/op", "overhead ns/op"); err != nil {
				return err
			}
			header = true
		}
		if _, err := fmt.Fprintf(w, "%-40s %14.1f %18.0f\n",
			s.Name, s.TraceSpansPerOp, s.TraceOverheadNsPerOp); err != nil {
			return err
		}
	}
	return nil
}
