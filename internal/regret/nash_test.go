package regret

import (
	"testing"

	"rayfade/internal/network"
	"rayfade/internal/rng"
)

func TestBestResponseDynamicsConverges(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		net := fig2Net(t, seed+100, 60)
		m := net.Gains()
		res := BestResponseDynamics(m, 0.5, 0)
		if !res.Converged {
			t.Fatalf("seed %d: no convergence in %d sweeps", seed, res.Sweeps)
		}
		if !IsPureNash(m, res.Profile, 0.5) {
			t.Fatalf("seed %d: converged profile is not a Nash equilibrium", seed)
		}
		if res.Senders == 0 {
			t.Fatalf("seed %d: all-idle equilibrium is implausible (solo links profit)", seed)
		}
		if res.ExpectedSuccesses <= 0 || res.ExpectedSuccesses > float64(res.Senders) {
			t.Fatalf("seed %d: expected successes %g for %d senders",
				seed, res.ExpectedSuccesses, res.Senders)
		}
	}
}

// At equilibrium every sender has conditional success probability > 1/2, so
// the expected successes exceed half the sender count.
func TestNashSendersSucceedOftenEnough(t *testing.T) {
	net := fig2Net(t, 7, 80)
	m := net.Gains()
	res := BestResponseDynamics(m, 0.5, 0)
	if !res.Converged {
		t.Skip("dynamics cycled on this instance")
	}
	if res.ExpectedSuccesses < float64(res.Senders)/2 {
		t.Fatalf("equilibrium successes %g below half of %d senders",
			res.ExpectedSuccesses, res.Senders)
	}
}

// The no-regret dynamics converge to throughput comparable with the Nash
// benchmark they generalize.
func TestNoRegretComparableToNash(t *testing.T) {
	net := fig2Net(t, 11, 80)
	m := net.Gains()
	nash := BestResponseDynamics(m, 0.5, 0)
	h := NewGame(m, 0.5, Rayleigh, rng.New(7)).Run(200)
	learned := h.AverageSuccesses(60)
	if !nash.Converged {
		t.Skip("dynamics cycled on this instance")
	}
	if learned < nash.ExpectedSuccesses/4 {
		t.Fatalf("no-regret throughput %.1f far below Nash benchmark %.1f",
			learned, nash.ExpectedSuccesses)
	}
}

func TestIsPureNashDetectsDeviation(t *testing.T) {
	net := fig2Net(t, 13, 30)
	m := net.Gains()
	res := BestResponseDynamics(m, 0.5, 0)
	if !res.Converged {
		t.Skip("dynamics cycled on this instance")
	}
	// Flip one sender off (or one idler on): the profile must stop being
	// an equilibrium for at least one of the flips.
	broken := 0
	for i := range res.Profile {
		mod := append([]bool(nil), res.Profile...)
		mod[i] = !mod[i]
		if !IsPureNash(m, mod, 0.5) {
			broken++
		}
	}
	if broken == 0 {
		t.Fatal("every single-link flip kept the profile in equilibrium")
	}
}

func TestIsPureNashPanicsOnShape(t *testing.T) {
	net := fig2Net(t, 1, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	IsPureNash(net.Gains(), []bool{true}, 0.5)
}

func TestBestResponseDynamicsPanicsOnBeta(t *testing.T) {
	net := fig2Net(t, 1, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BestResponseDynamics(net.Gains(), 0, 0)
}

// A lone viable link must transmit at equilibrium.
func TestNashSingleLink(t *testing.T) {
	m, err := network.NewMatrix([][]float64{{1}}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	res := BestResponseDynamics(m, 0.5, 0)
	if !res.Converged || res.Senders != 1 {
		t.Fatalf("solo link: converged=%v senders=%d", res.Converged, res.Senders)
	}
}

func BenchmarkBestResponseDynamics100(b *testing.B) {
	cfg := network.Figure2Config()
	cfg.N = 100
	net, err := network.Random(cfg, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	m := net.Gains()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BestResponseDynamics(m, 0.5, 0)
	}
}
