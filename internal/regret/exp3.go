package regret

import (
	"fmt"
	"math"

	"rayfade/internal/network"
	"rayfade/internal/rng"
)

// Learner is a two-action online learning algorithm. The game runner calls
// Choose at the start of a round and Observe at its end with the full loss
// vector; bandit-feedback learners (Exp3) must look only at the loss of the
// action they chose, full-information learners (RWM) may use both entries.
type Learner interface {
	// Choose samples the round's action.
	Choose(src *rng.Source) int
	// Observe consumes the round's losses (indexed by action). chosen is
	// the action the learner actually played.
	Observe(chosen int, losses [2]float64)
	// SendProbability reports the current probability of playing Send.
	SendProbability() float64
}

// Observe implements Learner for RWM: full information, the chosen action
// is irrelevant.
func (r *RWM) Observe(_ int, losses [2]float64) { r.Update(losses) }

var _ Learner = (*RWM)(nil)

// Exp3 is the exponential-weights bandit algorithm of Auer, Cesa-Bianchi,
// Freund, and Schapire ("The nonstochastic multiarmed bandit problem",
// SIAM J. Comput. 2002) for two actions — the reference the paper gives
// for no-regret algorithms. Unlike RWM it only uses the loss of the action
// actually played, which models links that cannot evaluate counterfactual
// transmissions.
type Exp3 struct {
	w     [2]float64
	gamma float64
	// lastP caches the distribution used for the most recent Choose, for
	// the importance-weighted update.
	lastP [2]float64
}

// NewExp3 returns a learner with exploration rate gamma ∈ (0,1].
func NewExp3(gamma float64) *Exp3 {
	if gamma <= 0 || gamma > 1 {
		panic(fmt.Sprintf("regret: Exp3 exploration rate %g outside (0,1]", gamma))
	}
	e := &Exp3{w: [2]float64{1, 1}, gamma: gamma}
	e.refreshProbs()
	return e
}

func (e *Exp3) refreshProbs() {
	total := e.w[0] + e.w[1]
	for a := range e.lastP {
		e.lastP[a] = (1-e.gamma)*e.w[a]/total + e.gamma/2
	}
}

// Choose implements Learner.
func (e *Exp3) Choose(src *rng.Source) int {
	e.refreshProbs()
	if src.Float64() < e.lastP[Idle] {
		return Idle
	}
	return Send
}

// SendProbability implements Learner.
func (e *Exp3) SendProbability() float64 {
	e.refreshProbs()
	return e.lastP[Send]
}

// Observe implements Learner. Only losses[chosen] is consulted — Exp3 is a
// bandit algorithm. Losses in [0,1] are converted to rewards 1−loss and
// importance-weighted by the probability of the chosen action.
func (e *Exp3) Observe(chosen int, losses [2]float64) {
	loss := losses[chosen]
	if loss < 0 || loss > 1 {
		panic(fmt.Sprintf("regret: Exp3 loss %g outside [0,1]", loss))
	}
	reward := 1 - loss
	est := reward / e.lastP[chosen]
	e.w[chosen] *= math.Exp(e.gamma * est / 2)
	// Keep weights bounded: only ratios matter.
	maxW := math.Max(e.w[0], e.w[1])
	if maxW > 1e100 {
		e.w[0] /= maxW
		e.w[1] /= maxW
	}
	e.refreshProbs()
}

var _ Learner = (*Exp3)(nil)

// NewGameWithLearners creates a game where each link runs the provided
// learner (one per link). It generalizes NewGame, which equips every link
// with the paper's RWM variant.
func NewGameWithLearners(m *network.Matrix, beta float64, model Model, learners []Learner, src *rng.Source) *Game {
	if beta <= 0 {
		panic(fmt.Sprintf("regret: threshold β = %g must be positive", beta))
	}
	if len(learners) != m.N {
		panic(fmt.Sprintf("regret: %d learners for %d links", len(learners), m.N))
	}
	return &Game{m: m, beta: beta, model: model, learners: learners, src: src,
		sinrBuf: make([]float64, m.N), idxBuf: make([]int, 0, m.N)}
}
