// Package regret implements the distributed, game-theoretic approach to
// capacity maximization of the paper's Sections 6 and 7: every link is a
// player with two actions per round — transmit or stay silent — running a
// no-regret learning algorithm against the rewards
//
//	h_i = +1  transmit and succeed (SINR ≥ β),
//	h_i = −1  transmit and fail,
//	h_i =  0  stay silent.
//
// The concrete learner is the Randomized Weighted Majority variant the
// paper simulates (Section 7): losses are 1 for a failed transmission, 0.5
// for staying silent, and 0 otherwise; weights are multiplied by (1−η)^loss;
// η starts at √0.5 and is multiplied by √0.5 whenever the round count
// crosses the next power of two.
//
// The game runner plays n learners against each other under either
// interference model, records per-round successes (the paper's Figure 2
// series), and keeps full-information reward histories so the external
// regret of Definition 2 — and with it the premise of Theorem 4 and the
// X ≤ F ≤ 2X + εn relation of Lemma 5 — can be measured exactly.
package regret

import (
	"fmt"
	"math"

	"rayfade/internal/fading"
	"rayfade/internal/network"
	"rayfade/internal/rng"
	"rayfade/internal/sinr"
)

// Action indices.
const (
	Idle = 0
	Send = 1
)

// Losses of the paper's Section 7.
const (
	LossSendFail = 1.0
	LossIdle     = 0.5
	LossOther    = 0.0
)

// RWM is the Randomized Weighted Majority learner over the two actions,
// parameterized exactly as in the paper's simulations.
type RWM struct {
	w     [2]float64
	eta   float64
	steps int
	// nextPow is the next power of two at which η is decayed.
	nextPow int
}

// NewRWM returns a fresh learner with unit weights and η = √0.5.
func NewRWM() *RWM {
	return &RWM{w: [2]float64{1, 1}, eta: math.Sqrt(0.5), nextPow: 2}
}

// Eta returns the current learning rate (exposed for tests).
func (r *RWM) Eta() float64 { return r.eta }

// Weights returns the current action weights (exposed for tests).
func (r *RWM) Weights() [2]float64 { return r.w }

// Choose samples an action with probability proportional to the weights.
func (r *RWM) Choose(src *rng.Source) int {
	total := r.w[0] + r.w[1]
	if total <= 0 {
		// Both weights underflowed to zero; reset to uniform rather than
		// dividing by zero. Normalization in Update makes this unreachable
		// in practice.
		r.w = [2]float64{1, 1}
		total = 2
	}
	if src.Float64()*total < r.w[Idle] {
		return Idle
	}
	return Send
}

// SendProbability returns the current probability of choosing Send.
func (r *RWM) SendProbability() float64 {
	total := r.w[0] + r.w[1]
	if total <= 0 {
		return 0.5
	}
	return r.w[Send] / total
}

// Update applies the losses of the finished round to both actions and
// advances the η schedule: whenever the number of completed rounds crosses
// the next power of two, η is multiplied by √0.5.
func (r *RWM) Update(losses [2]float64) {
	for a, l := range losses {
		if l < 0 {
			panic(fmt.Sprintf("regret: negative loss %g", l))
		}
		r.w[a] *= math.Pow(1-r.eta, l)
	}
	// Normalize so weights stay in a sane floating-point range over long
	// horizons; Choose only uses their ratio.
	maxW := math.Max(r.w[0], r.w[1])
	if maxW > 0 && maxW < 1e-100 {
		r.w[0] /= maxW
		r.w[1] /= maxW
	}
	r.steps++
	if r.steps > r.nextPow {
		r.eta *= math.Sqrt(0.5)
		r.nextPow *= 2
	}
}

// Model selects the interference model the game is played in.
type Model int

// Supported models.
const (
	NonFading Model = iota
	Rayleigh
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case NonFading:
		return "non-fading"
	case Rayleigh:
		return "rayleigh"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Round records one step of the game: who transmitted, who succeeded, the
// full-information reward each player would have received from sending
// (idling always rewards 0), and the mean send probability across players
// before the round — the convergence diagnostic behind the Figure-2 curves.
type Round struct {
	Sent        []bool
	Succeeded   []bool
	Successes   int
	RewardSend  []float64
	AvgSendProb float64
}

// History is the recorded trajectory of a game run.
type History struct {
	Model  Model
	Rounds []Round
	N      int
}

// Game couples n learners (one per link) to an interference instance.
type Game struct {
	m        *network.Matrix
	beta     float64
	model    Model
	learners []Learner
	src      *rng.Source
	// sinrBuf/idxBuf are per-game kernel scratch: step evaluates one SINR
	// realization per round into them instead of allocating, which is what
	// keeps long Figure-2 runs off the garbage collector.
	sinrBuf []float64
	idxBuf  []int
}

// NewGame creates a game over the matrix at threshold beta, equipping every
// link with the paper's RWM learner. All randomness (action sampling and
// fading draws) comes from src. Use NewGameWithLearners for other
// algorithms (e.g. Exp3 bandit feedback).
func NewGame(m *network.Matrix, beta float64, model Model, src *rng.Source) *Game {
	if beta <= 0 {
		panic(fmt.Sprintf("regret: threshold β = %g must be positive", beta))
	}
	learners := make([]Learner, m.N)
	for i := range learners {
		learners[i] = NewRWM()
	}
	return &Game{m: m, beta: beta, model: model, learners: learners, src: src,
		sinrBuf: make([]float64, m.N), idxBuf: make([]int, 0, m.N)}
}

// Learners exposes the per-link learners (for tests and probability
// inspection).
func (g *Game) Learners() []Learner { return g.learners }

// step plays one round and returns its record.
func (g *Game) step() Round {
	n := g.m.N
	sent := make([]bool, n)
	chosen := make([]int, n)
	avgProb := 0.0
	for i, p := range g.learners {
		avgProb += p.SendProbability()
		chosen[i] = p.Choose(g.src)
		sent[i] = chosen[i] == Send
	}
	avgProb /= float64(n)
	// Realized SINRs of the transmitting set, into the per-game scratch.
	var vals []float64
	if g.model == Rayleigh {
		vals = fading.SampleSINRsInto(g.m, sent, g.src, g.sinrBuf, g.idxBuf)
	} else {
		vals = sinr.ValuesInto(g.m, sent, g.sinrBuf)
	}
	succeeded := make([]bool, n)
	successes := 0
	rewardSend := make([]float64, n)
	for i := 0; i < n; i++ {
		if sent[i] {
			if vals[i] >= g.beta {
				succeeded[i] = true
				successes++
				rewardSend[i] = 1
			} else {
				rewardSend[i] = -1
			}
			continue
		}
		// Counterfactual: would i have succeeded had it also transmitted?
		// Only i's own success matters for i's reward.
		if g.counterfactualSuccess(sent, i) {
			rewardSend[i] = 1
		} else {
			rewardSend[i] = -1
		}
	}
	// Update learners with the Section-7 losses for both actions (bandit
	// learners will only consult the entry for the action they played).
	for i, p := range g.learners {
		var losses [2]float64
		losses[Idle] = LossIdle
		if rewardSend[i] < 0 {
			losses[Send] = LossSendFail
		} else {
			losses[Send] = LossOther
		}
		p.Observe(chosen[i], losses)
	}
	return Round{
		Sent:        sent,
		Succeeded:   succeeded,
		Successes:   successes,
		RewardSend:  rewardSend,
		AvgSendProb: avgProb,
	}
}

// SendProbSeries returns the per-round mean send probability — it shows the
// population splitting into persistent senders and silenced links as the
// dynamics converge.
func (h *History) SendProbSeries() []float64 {
	out := make([]float64, len(h.Rounds))
	for t, r := range h.Rounds {
		out[t] = r.AvgSendProb
	}
	return out
}

// counterfactualSuccess evaluates whether idle link i would have reached β
// had it transmitted alongside the realized set.
func (g *Game) counterfactualSuccess(sent []bool, i int) bool {
	interf := g.m.Noise
	var own float64
	row := g.m.Incoming(i)
	if g.model == Rayleigh {
		own = g.src.Exp(row[i])
		for j, s := range sent {
			if s && j != i {
				interf += g.src.Exp(row[j])
			}
		}
	} else {
		own = row[i]
		for j, s := range sent {
			if s && j != i {
				interf += row[j]
			}
		}
	}
	if interf == 0 {
		return own > 0
	}
	return own/interf >= g.beta
}

// Run plays T rounds and returns the trajectory.
func (g *Game) Run(T int) *History {
	if T <= 0 {
		panic(fmt.Sprintf("regret: horizon T = %d must be positive", T))
	}
	h := &History{Model: g.model, Rounds: make([]Round, 0, T), N: g.m.N}
	for t := 0; t < T; t++ {
		h.Rounds = append(h.Rounds, g.step())
	}
	return h
}

// SuccessSeries returns the per-round number of successful transmissions —
// the curves of the paper's Figure 2.
func (h *History) SuccessSeries() []int {
	out := make([]int, len(h.Rounds))
	for t, r := range h.Rounds {
		out[t] = r.Successes
	}
	return out
}

// realizedReward returns player i's actual reward in round r.
func realizedReward(r Round, i int) float64 {
	if !r.Sent[i] {
		return 0
	}
	return r.RewardSend[i]
}

// ExternalRegret computes player i's external regret after T = len(Rounds)
// rounds per Definition 2: the best fixed action's cumulative reward minus
// the realized cumulative reward.
func (h *History) ExternalRegret(i int) float64 {
	var sendSum, realized float64
	for _, r := range h.Rounds {
		sendSum += r.RewardSend[i]
		realized += realizedReward(r, i)
	}
	best := math.Max(sendSum, 0) // the fixed Idle action earns 0
	return best - realized
}

// MaxAverageRegret returns the largest per-round external regret across
// players: max_i regret_i / T. No-regret dynamics drive this to 0.
func (h *History) MaxAverageRegret() float64 {
	worst := math.Inf(-1)
	T := float64(len(h.Rounds))
	for i := 0; i < h.N; i++ {
		if r := h.ExternalRegret(i) / T; r > worst {
			worst = r
		}
	}
	return worst
}

// ExpectedReward returns h̄_i(q), the expectation of the stochastic reward
// h_i under Rayleigh fading when the links transmit with probabilities q
// (paper Section 6): 0 if link i stays silent (q_i = 0); otherwise, for a
// transmitting link, 2·Q_i(q,β) − 1 conditioned on transmission — obtained
// here for the pure-strategy profile by dividing out q_i.
func ExpectedReward(m *network.Matrix, q []float64, beta float64, i int) float64 {
	if q[i] == 0 {
		return 0
	}
	// Q_i includes the q_i factor; the reward expectation conditions on
	// link i actually transmitting.
	conditional := fading.ExactSuccess(m, q, beta, i) / q[i]
	return 2*conditional - 1
}

// Lemma5Stats holds the quantities of the paper's Lemma 5.
type Lemma5Stats struct {
	// F = Σ_i f_i, where f_i is the fraction of rounds player i transmits.
	F float64
	// X = Σ_i x_i, where x_i is the average per-round success rate of
	// player i (realized successes as the empirical stand-in for the
	// expected success probability).
	X float64
	// Epsilon is the maximum average external regret across players.
	Epsilon float64
}

// Lemma5 measures F, X, and ε on a trajectory. The lemma asserts
// X ≤ F ≤ 2X + εn for the expected quantities; tests verify the empirical
// version within sampling noise.
func (h *History) Lemma5() Lemma5Stats {
	T := float64(len(h.Rounds))
	var F, X float64
	for i := 0; i < h.N; i++ {
		var sent, succ float64
		for _, r := range h.Rounds {
			if r.Sent[i] {
				sent++
				if r.Succeeded[i] {
					succ++
				}
			}
		}
		F += sent / T
		X += succ / T
	}
	return Lemma5Stats{F: F, X: X, Epsilon: h.MaxAverageRegret()}
}

// RoundsToConverge returns the first round t such that the moving average
// of successes over the next `window` rounds stays within `tol` (relative)
// of the final converged level, or -1 if the trajectory never settles. It
// quantifies the paper's "good performance can already be seen after 30 to
// 40 time steps" observation.
func (h *History) RoundsToConverge(window int, tol float64) int {
	if window <= 0 || window > len(h.Rounds) {
		window = len(h.Rounds) / 4
		if window == 0 {
			window = 1
		}
	}
	if tol <= 0 {
		tol = 0.1
	}
	final := h.AverageSuccesses(window)
	if final == 0 {
		return -1
	}
	avg := func(start int) float64 {
		end := start + window
		if end > len(h.Rounds) {
			end = len(h.Rounds)
		}
		sum := 0.0
		for _, r := range h.Rounds[start:end] {
			sum += float64(r.Successes)
		}
		return sum / float64(end-start)
	}
	for t := 0; t+window <= len(h.Rounds); t++ {
		if math.Abs(avg(t)-final)/final <= tol {
			return t + 1
		}
	}
	return -1
}

// AverageSuccesses returns the mean per-round number of successes over the
// trailing `window` rounds (the converged throughput the paper compares to
// the optimum); window ≤ 0 averages the whole run.
func (h *History) AverageSuccesses(window int) float64 {
	if len(h.Rounds) == 0 {
		return 0
	}
	start := 0
	if window > 0 && window < len(h.Rounds) {
		start = len(h.Rounds) - window
	}
	sum := 0.0
	for _, r := range h.Rounds[start:] {
		sum += float64(r.Successes)
	}
	return sum / float64(len(h.Rounds)-start)
}
