package regret

import (
	"fmt"

	"rayfade/internal/fading"
	"rayfade/internal/network"
)

// The no-regret sequences the paper analyzes generalize Nash equilibria of
// the capacity game (Section 6; the game-theoretic treatment is
// Andrews–Dinitz, the paper's reference [5]). This file provides the
// equilibrium side of that connection: exact best responses against the
// expected rewards h̄ under Rayleigh fading, round-robin best-response
// dynamics, and a pure-Nash check — so the learning dynamics can be
// compared against the equilibria they generalize.

// bestResponse returns the action maximizing link i's expected reward given
// the others' pure profile: Send iff h̄_i > 0, i.e. iff the conditional
// success probability exceeds 1/2 (reward +1 vs −1). Idle yields exactly 0,
// so ties break toward Idle (no strict gain from transmitting).
func bestResponse(m *network.Matrix, profile []bool, beta float64, i int) int {
	q := make([]float64, m.N)
	for j, s := range profile {
		if s {
			q[j] = 1
		}
	}
	q[i] = 1 // evaluate the Send branch
	if ExpectedReward(m, q, beta, i) > 0 {
		return Send
	}
	return Idle
}

// NashResult reports a best-response-dynamics run.
type NashResult struct {
	// Profile is the final pure strategy profile (true = Send).
	Profile []bool
	// Converged reports whether a pure Nash equilibrium was reached.
	Converged bool
	// Sweeps is the number of full round-robin passes performed.
	Sweeps int
	// Senders is the number of transmitting links in the final profile.
	Senders int
	// ExpectedSuccesses is Σ_i Q_i at the final profile (Theorem 1).
	ExpectedSuccesses float64
}

// BestResponseDynamics runs round-robin best-response dynamics from the
// all-idle profile: in each sweep every link in turn switches to its exact
// best response against the current profile. It stops at the first sweep
// with no switches (a pure Nash equilibrium of the expected-reward game) or
// after maxSweeps (converged = false). maxSweeps ≤ 0 selects 4·n.
//
// The game is not a potential game, so convergence is not guaranteed in
// theory; on the paper's workloads it settles within a few sweeps, giving
// the equilibrium benchmark the no-regret trajectories are compared to.
func BestResponseDynamics(m *network.Matrix, beta float64, maxSweeps int) NashResult {
	if beta <= 0 {
		panic(fmt.Sprintf("regret: threshold β = %g must be positive", beta))
	}
	if maxSweeps <= 0 {
		maxSweeps = 4 * m.N
		if maxSweeps < 16 {
			maxSweeps = 16
		}
	}
	profile := make([]bool, m.N)
	res := NashResult{Profile: profile}
	for sweep := 0; sweep < maxSweeps; sweep++ {
		res.Sweeps = sweep + 1
		changed := false
		for i := 0; i < m.N; i++ {
			want := bestResponse(m, profile, beta, i) == Send
			if profile[i] != want {
				profile[i] = want
				changed = true
			}
		}
		if !changed {
			res.Converged = true
			break
		}
	}
	q := make([]float64, m.N)
	for i, s := range profile {
		if s {
			q[i] = 1
			res.Senders++
		}
	}
	res.ExpectedSuccesses = fading.ExpectedSuccessesExact(m, q, beta)
	return res
}

// IsPureNash reports whether the profile is a pure Nash equilibrium of the
// expected-reward game: no link strictly gains by switching its action.
func IsPureNash(m *network.Matrix, profile []bool, beta float64) bool {
	if len(profile) != m.N {
		panic(fmt.Sprintf("regret: profile has %d entries for %d links", len(profile), m.N))
	}
	for i := range profile {
		if (bestResponse(m, profile, beta, i) == Send) != profile[i] {
			return false
		}
	}
	return true
}
