package regret

import (
	"math"
	"testing"

	"rayfade/internal/capacity"
	"rayfade/internal/fading"
	"rayfade/internal/network"
	"rayfade/internal/rng"
)

func fig2Net(t testing.TB, seed uint64, n int) *network.Network {
	t.Helper()
	cfg := network.Figure2Config()
	cfg.N = n
	net, err := network.Random(cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestRWMInitialState(t *testing.T) {
	r := NewRWM()
	if w := r.Weights(); w[0] != 1 || w[1] != 1 {
		t.Fatalf("initial weights %v", w)
	}
	if got := r.Eta(); math.Abs(got-math.Sqrt(0.5)) > 1e-15 {
		t.Fatalf("initial η = %g", got)
	}
	if p := r.SendProbability(); p != 0.5 {
		t.Fatalf("initial send probability %g", p)
	}
}

func TestRWMPunishesFailing(t *testing.T) {
	r := NewRWM()
	// Repeated send-failures must drive the send probability down.
	for i := 0; i < 20; i++ {
		r.Update([2]float64{Idle: LossIdle, Send: LossSendFail})
	}
	if p := r.SendProbability(); p > 0.05 {
		t.Fatalf("after 20 failures send probability still %g", p)
	}
}

func TestRWMRewardsSucceeding(t *testing.T) {
	r := NewRWM()
	// Succeeding (loss 0) against idling (loss 0.5) drives sending up.
	for i := 0; i < 20; i++ {
		r.Update([2]float64{Idle: LossIdle, Send: LossOther})
	}
	if p := r.SendProbability(); p < 0.95 {
		t.Fatalf("after 20 successes send probability only %g", p)
	}
}

func TestRWMEtaSchedule(t *testing.T) {
	r := NewRWM()
	losses := [2]float64{0, 0}
	eta0 := r.Eta()
	// η decays only when steps crosses the next power of two (2, 4, 8, ...).
	r.Update(losses) // steps=1
	r.Update(losses) // steps=2, not > 2
	if r.Eta() != eta0 {
		t.Fatalf("η decayed too early at 2 steps")
	}
	r.Update(losses) // steps=3 > 2 → decay
	if want := eta0 * math.Sqrt(0.5); math.Abs(r.Eta()-want) > 1e-15 {
		t.Fatalf("η after first decay = %g, want %g", r.Eta(), want)
	}
	r.Update(losses) // 4
	r.Update(losses) // 5 > 4 → decay
	if want := eta0 * 0.5; math.Abs(r.Eta()-want) > 1e-15 {
		t.Fatalf("η after second decay = %g, want %g", r.Eta(), want)
	}
}

func TestRWMChooseFollowsWeights(t *testing.T) {
	r := NewRWM()
	for i := 0; i < 30; i++ {
		r.Update([2]float64{Idle: LossIdle, Send: LossSendFail})
	}
	src := rng.New(1)
	sends := 0
	for i := 0; i < 10000; i++ {
		if r.Choose(src) == Send {
			sends++
		}
	}
	if frac := float64(sends) / 10000; math.Abs(frac-r.SendProbability()) > 0.02 {
		t.Fatalf("empirical send rate %g vs probability %g", frac, r.SendProbability())
	}
}

func TestRWMLongHorizonNumericallyStable(t *testing.T) {
	r := NewRWM()
	for i := 0; i < 200000; i++ {
		r.Update([2]float64{Idle: LossIdle, Send: LossSendFail})
	}
	w := r.Weights()
	if math.IsNaN(w[0]) || math.IsNaN(w[1]) || w[0]+w[1] == 0 {
		t.Fatalf("weights degenerated: %v", w)
	}
	p := r.SendProbability()
	if math.IsNaN(p) || p < 0 || p > 1 {
		t.Fatalf("send probability degenerated: %g", p)
	}
}

func TestRWMPanicsOnNegativeLoss(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRWM().Update([2]float64{-1, 0})
}

func TestModelString(t *testing.T) {
	if NonFading.String() != "non-fading" || Rayleigh.String() != "rayleigh" {
		t.Fatal("model names wrong")
	}
	if Model(9).String() == "" {
		t.Fatal("unknown model should still print")
	}
}

func TestGameRunShapes(t *testing.T) {
	net := fig2Net(t, 1, 30)
	g := NewGame(net.Gains(), 0.5, NonFading, rng.New(7))
	h := g.Run(25)
	if len(h.Rounds) != 25 || h.N != 30 {
		t.Fatalf("history shape: %d rounds, n=%d", len(h.Rounds), h.N)
	}
	for t2, r := range h.Rounds {
		if len(r.Sent) != 30 || len(r.RewardSend) != 30 || len(r.Succeeded) != 30 {
			t.Fatalf("round %d has wrong widths", t2)
		}
		count := 0
		for i := range r.Succeeded {
			if r.Succeeded[i] {
				count++
				if !r.Sent[i] {
					t.Fatalf("round %d: link %d succeeded without sending", t2, i)
				}
			}
		}
		if count != r.Successes {
			t.Fatalf("round %d: recorded %d successes, counted %d", t2, r.Successes, count)
		}
		for i, rw := range r.RewardSend {
			if rw != 1 && rw != -1 {
				t.Fatalf("round %d: RewardSend[%d] = %g", t2, i, rw)
			}
		}
	}
	if series := h.SuccessSeries(); len(series) != 25 {
		t.Fatalf("series length %d", len(series))
	}
}

func TestGamePanics(t *testing.T) {
	net := fig2Net(t, 1, 5)
	for _, fn := range []func(){
		func() { NewGame(net.Gains(), 0, NonFading, rng.New(1)) },
		func() { NewGame(net.Gains(), 0.5, NonFading, rng.New(1)).Run(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// The core no-regret property: average external regret vanishes as T grows,
// in both models.
func TestRegretVanishes(t *testing.T) {
	for _, model := range []Model{NonFading, Rayleigh} {
		net := fig2Net(t, 3, 40)
		g := NewGame(net.Gains(), 0.5, model, rng.New(11))
		short := g.Run(20).MaxAverageRegret()
		gLong := NewGame(net.Gains(), 0.5, model, rng.New(11))
		long := gLong.Run(600).MaxAverageRegret()
		if long > 0.25 {
			t.Fatalf("%v: average regret after 600 rounds is %g", model, long)
		}
		if long > short+0.05 {
			t.Fatalf("%v: regret grew from %g (T=20) to %g (T=600)", model, short, long)
		}
	}
}

// Regret against an adversarial (non-game) loss sequence: feed RWM a
// sequence where Send is always good, and check the realized reward
// approaches the best fixed action.
func TestRWMNoRegretOnStationarySequence(t *testing.T) {
	r := NewRWM()
	src := rng.New(13)
	T := 2000
	var realized float64
	for t2 := 0; t2 < T; t2++ {
		a := r.Choose(src)
		if a == Send {
			realized++ // reward 1
		}
		r.Update([2]float64{Idle: LossIdle, Send: LossOther})
	}
	// Best fixed action (Send) earns T; realized must be close.
	if realized < 0.9*float64(T) {
		t.Fatalf("realized reward %g of %d — RWM failed to lock onto Send", realized, T)
	}
}

// Lemma 5: X ≤ F ≤ 2X + εn (empirical version, with slack for sampling).
func TestLemma5Relation(t *testing.T) {
	for _, model := range []Model{NonFading, Rayleigh} {
		net := fig2Net(t, 5, 50)
		g := NewGame(net.Gains(), 0.5, model, rng.New(17))
		h := g.Run(400)
		s := h.Lemma5()
		if s.X > s.F+1e-9 {
			t.Fatalf("%v: X = %g exceeds F = %g", model, s.X, s.F)
		}
		slack := 0.1 * float64(h.N) // sampling noise allowance
		if s.F > 2*s.X+math.Max(s.Epsilon, 0)*float64(h.N)+slack {
			t.Fatalf("%v: F = %g > 2X + εn = %g", model, s.F, 2*s.X+s.Epsilon*float64(h.N))
		}
	}
}

// Theorem 3's empirical content: converged throughput is a constant
// fraction of the non-fading greedy capacity (a stand-in lower bound on
// |OPT|), in both models.
func TestConvergedThroughputNearCapacity(t *testing.T) {
	net := fig2Net(t, 7, 60)
	m := net.Gains()
	greedySize := float64(len(capacity.GreedyUniform(net, 0.5)))
	for _, model := range []Model{NonFading, Rayleigh} {
		g := NewGame(m, 0.5, model, rng.New(19))
		h := g.Run(300)
		avg := h.AverageSuccesses(100)
		if avg < greedySize/8 {
			t.Fatalf("%v: converged throughput %.2f far below greedy capacity %.0f", model, avg, greedySize)
		}
	}
}

// The paper's Figure-2 observation: the learner converges within a few
// dozen rounds — late-window throughput should dominate the first rounds.
func TestConvergenceWithinFortyRounds(t *testing.T) {
	net := fig2Net(t, 9, 60)
	g := NewGame(net.Gains(), 0.5, NonFading, rng.New(23))
	h := g.Run(200)
	early := 0.0
	for _, r := range h.Rounds[:5] {
		early += float64(r.Successes)
	}
	early /= 5
	late := h.AverageSuccesses(50)
	if late < early {
		t.Fatalf("throughput did not improve: first-5 average %.2f, last-50 average %.2f", early, late)
	}
}

func TestExternalRegretDefinition(t *testing.T) {
	// Hand-built two-round history for one player.
	h := &History{N: 1, Rounds: []Round{
		{Sent: []bool{true}, Succeeded: []bool{false}, Successes: 0, RewardSend: []float64{-1}},
		{Sent: []bool{false}, Succeeded: []bool{false}, Successes: 0, RewardSend: []float64{1}},
	}}
	// Realized: −1 + 0 = −1. Fixed Send: −1 + 1 = 0. Fixed Idle: 0.
	// Regret = max(0, 0) − (−1) = 1.
	if got := h.ExternalRegret(0); math.Abs(got-1) > 1e-15 {
		t.Fatalf("ExternalRegret = %g, want 1", got)
	}
	if got := h.MaxAverageRegret(); math.Abs(got-0.5) > 1e-15 {
		t.Fatalf("MaxAverageRegret = %g, want 0.5", got)
	}
}

func TestAverageSuccessesWindow(t *testing.T) {
	h := &History{N: 1, Rounds: []Round{
		{Successes: 0, Sent: []bool{false}, Succeeded: []bool{false}, RewardSend: []float64{1}},
		{Successes: 2, Sent: []bool{false}, Succeeded: []bool{false}, RewardSend: []float64{1}},
		{Successes: 4, Sent: []bool{false}, Succeeded: []bool{false}, RewardSend: []float64{1}},
	}}
	if got := h.AverageSuccesses(0); math.Abs(got-2) > 1e-15 {
		t.Fatalf("full average = %g", got)
	}
	if got := h.AverageSuccesses(2); math.Abs(got-3) > 1e-15 {
		t.Fatalf("window-2 average = %g", got)
	}
	if got := h.AverageSuccesses(99); math.Abs(got-2) > 1e-15 {
		t.Fatalf("oversized window average = %g", got)
	}
	empty := &History{}
	if got := empty.AverageSuccesses(5); got != 0 {
		t.Fatalf("empty history average = %g", got)
	}
}

// The paper's Figure-2 convergence claim, quantified: on its workload the
// dynamics settle within roughly 30–40 rounds.
func TestRoundsToConvergeMatchesPaperBand(t *testing.T) {
	net := fig2Net(t, 19, 100)
	for _, model := range []Model{NonFading, Rayleigh} {
		h := NewGame(net.Gains(), 0.5, model, rng.New(51)).Run(150)
		conv := h.RoundsToConverge(20, 0.1)
		if conv < 0 {
			t.Fatalf("%v: never converged", model)
		}
		if conv > 60 {
			t.Fatalf("%v: converged only after %d rounds", model, conv)
		}
	}
}

func TestRoundsToConvergeEdgeCases(t *testing.T) {
	empty := &History{}
	if got := empty.RoundsToConverge(5, 0.1); got != -1 {
		t.Fatalf("empty history converged at %d", got)
	}
	flat := &History{N: 1}
	for i := 0; i < 10; i++ {
		flat.Rounds = append(flat.Rounds, Round{Successes: 3,
			Sent: []bool{true}, Succeeded: []bool{true}, RewardSend: []float64{1}})
	}
	if got := flat.RoundsToConverge(3, 0.1); got != 1 {
		t.Fatalf("flat trajectory converges at %d, want 1", got)
	}
	zero := &History{N: 1}
	for i := 0; i < 10; i++ {
		zero.Rounds = append(zero.Rounds, Round{
			Sent: []bool{false}, Succeeded: []bool{false}, RewardSend: []float64{-1}})
	}
	if got := zero.RoundsToConverge(3, 0.1); got != -1 {
		t.Fatalf("all-zero trajectory converged at %d", got)
	}
}

// h̄_i matches its definition: simulate the reward of a transmitting link
// and compare against 2·Q_i − 1.
func TestExpectedRewardMatchesEmpirical(t *testing.T) {
	net := fig2Net(t, 23, 15)
	m := net.Gains()
	src := rng.New(61)
	q := make([]float64, m.N)
	for i := range q {
		q[i] = 1 // pure strategies: everyone transmits
	}
	i := 4
	want := ExpectedReward(m, q, 0.5, i)
	if want < -1 || want > 1 {
		t.Fatalf("expected reward %g outside [-1,1]", want)
	}
	var sum float64
	const trials = 100000
	active := make([]bool, m.N)
	for k := range active {
		active[k] = true
	}
	for trial := 0; trial < trials; trial++ {
		vals := fading.SampleSINRs(m, active, src)
		if vals[i] >= 0.5 {
			sum++
		} else {
			sum--
		}
	}
	got := sum / trials
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("empirical reward %g vs h̄ = %g", got, want)
	}
	// Silent links earn 0.
	qSilent := append([]float64(nil), q...)
	qSilent[i] = 0
	if r := ExpectedReward(m, qSilent, 0.5, i); r != 0 {
		t.Fatalf("silent reward %g", r)
	}
}

func TestSendProbSeries(t *testing.T) {
	net := fig2Net(t, 13, 30)
	h := NewGame(net.Gains(), 0.5, NonFading, rng.New(41)).Run(80)
	series := h.SendProbSeries()
	if len(series) != 80 {
		t.Fatalf("series length %d", len(series))
	}
	if math.Abs(series[0]-0.5) > 1e-12 {
		t.Fatalf("round-1 average send probability %g, want 0.5 (fresh RWM)", series[0])
	}
	for tIdx, p := range series {
		if p < 0 || p > 1 {
			t.Fatalf("round %d probability %g", tIdx, p)
		}
	}
	// After convergence the population splits; the average must have moved
	// away from the uniform 0.5 start.
	if last := series[len(series)-1]; math.Abs(last-0.5) < 0.01 {
		t.Fatalf("send probabilities did not move from 0.5 (last %g)", last)
	}
}

// Determinism: identical seeds give identical histories.
func TestGameDeterministic(t *testing.T) {
	net := fig2Net(t, 11, 20)
	a := NewGame(net.Gains(), 0.5, Rayleigh, rng.New(31)).Run(50)
	b := NewGame(net.Gains(), 0.5, Rayleigh, rng.New(31)).Run(50)
	for t2 := range a.Rounds {
		if a.Rounds[t2].Successes != b.Rounds[t2].Successes {
			t.Fatalf("round %d diverged across identical seeds", t2)
		}
	}
}

func BenchmarkGameRoundNonFading100(b *testing.B) {
	cfg := network.Figure2Config()
	cfg.N = 100
	net, err := network.Random(cfg, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	g := NewGame(net.Gains(), 0.5, NonFading, rng.New(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.step()
	}
}

func BenchmarkGameRoundRayleigh100(b *testing.B) {
	cfg := network.Figure2Config()
	cfg.N = 100
	net, err := network.Random(cfg, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	g := NewGame(net.Gains(), 0.5, Rayleigh, rng.New(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.step()
	}
}
