package regret

import (
	"math"
	"testing"

	"rayfade/internal/network"
	"rayfade/internal/rng"
)

func TestNewExp3Validation(t *testing.T) {
	for _, g := range []float64{0, -0.2, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("gamma=%g did not panic", g)
				}
			}()
			NewExp3(g)
		}()
	}
}

func TestExp3InitialUniformWithExploration(t *testing.T) {
	e := NewExp3(0.1)
	if p := e.SendProbability(); math.Abs(p-0.5) > 1e-12 {
		t.Fatalf("initial send probability %g", p)
	}
}

func TestExp3ExplorationFloor(t *testing.T) {
	e := NewExp3(0.2)
	// Hammer the Send action with losses; probability must stay at or
	// above the exploration floor γ/2.
	src := rng.New(1)
	for i := 0; i < 500; i++ {
		a := e.Choose(src)
		losses := [2]float64{Idle: 0.5, Send: 1}
		e.Observe(a, losses)
	}
	if p := e.SendProbability(); p < 0.1-1e-12 {
		t.Fatalf("send probability %g fell below exploration floor 0.1", p)
	}
	if p := e.SendProbability(); p > 0.3 {
		t.Fatalf("send probability %g did not shrink under constant failure", p)
	}
}

func TestExp3LearnsGoodAction(t *testing.T) {
	e := NewExp3(0.1)
	src := rng.New(2)
	for i := 0; i < 2000; i++ {
		a := e.Choose(src)
		losses := [2]float64{Idle: 0.5, Send: 0} // sending always succeeds
		e.Observe(a, losses)
	}
	if p := e.SendProbability(); p < 0.8 {
		t.Fatalf("send probability %g after 2000 favorable rounds", p)
	}
}

func TestExp3ObservePanicsOutOfRange(t *testing.T) {
	e := NewExp3(0.1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Observe(Send, [2]float64{0, 1.5})
}

// Exp3 must only consult the chosen action's loss: feeding garbage into the
// other entry must not change the trajectory.
func TestExp3IgnoresCounterfactualLoss(t *testing.T) {
	a := NewExp3(0.1)
	b := NewExp3(0.1)
	srcA, srcB := rng.New(3), rng.New(3)
	for i := 0; i < 300; i++ {
		ca := a.Choose(srcA)
		cb := b.Choose(srcB)
		if ca != cb {
			t.Fatalf("round %d: identical streams diverged before update", i)
		}
		lossesA := [2]float64{0.5, 0.25}
		lossesB := lossesA
		lossesB[1-ca] = 0.9 // corrupt only the unchosen entry
		a.Observe(ca, lossesA)
		b.Observe(cb, lossesB)
		if math.Abs(a.SendProbability()-b.SendProbability()) > 1e-15 {
			t.Fatal("Exp3 consulted the counterfactual loss")
		}
	}
}

func TestGameWithExp3Learners(t *testing.T) {
	cfg := network.Figure2Config()
	cfg.N = 40
	net, err := network.Random(cfg, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	m := net.Gains()
	learners := make([]Learner, m.N)
	for i := range learners {
		learners[i] = NewExp3(0.1)
	}
	g := NewGameWithLearners(m, 0.5, Rayleigh, learners, rng.New(22))
	h := g.Run(300)
	if len(h.Rounds) != 300 {
		t.Fatalf("rounds = %d", len(h.Rounds))
	}
	// Bandit learning is slower than full information but must still find
	// substantial throughput and keep regret moderate.
	if avg := h.AverageSuccesses(100); avg < 3 {
		t.Fatalf("Exp3 converged throughput %.2f too low", avg)
	}
	if reg := h.MaxAverageRegret(); reg > 0.6 {
		t.Fatalf("Exp3 regret %.3f", reg)
	}
}

func TestNewGameWithLearnersValidation(t *testing.T) {
	cfg := network.Figure2Config()
	cfg.N = 5
	net, err := network.Random(cfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	m := net.Gains()
	for _, fn := range []func(){
		func() { NewGameWithLearners(m, 0, NonFading, make([]Learner, 5), rng.New(1)) },
		func() { NewGameWithLearners(m, 0.5, NonFading, make([]Learner, 3), rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// RWM (full information) converges faster than Exp3 (bandit) on the same
// instance — the expected ordering; verifies both wire into the game.
func TestFullInfoBeatsBanditEarly(t *testing.T) {
	cfg := network.Figure2Config()
	cfg.N = 60
	net, err := network.Random(cfg, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	m := net.Gains()
	rwm := NewGame(m, 0.5, NonFading, rng.New(32)).Run(40)
	learners := make([]Learner, m.N)
	for i := range learners {
		learners[i] = NewExp3(0.1)
	}
	exp3 := NewGameWithLearners(m, 0.5, NonFading, learners, rng.New(32)).Run(40)
	if rwm.AverageSuccesses(10) < exp3.AverageSuccesses(10)*0.8 {
		t.Fatalf("RWM (%.1f) unexpectedly far below Exp3 (%.1f) after 40 rounds",
			rwm.AverageSuccesses(10), exp3.AverageSuccesses(10))
	}
}

func BenchmarkExp3Round(b *testing.B) {
	e := NewExp3(0.1)
	src := rng.New(1)
	for i := 0; i < b.N; i++ {
		a := e.Choose(src)
		e.Observe(a, [2]float64{0.5, 0})
	}
}
