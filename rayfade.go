// Package rayfade is a library for wireless link scheduling under SINR
// interference, with first-class support for the Rayleigh-fading model and
// the non-fading ↔ Rayleigh reduction of Dams, Hoefer, and Kesselheim
// ("Scheduling in Wireless Networks with Rayleigh-Fading Interference",
// SPAA 2012).
//
// The central object is the Scenario: a set of communication links with an
// SINR threshold. A Scenario answers questions in both interference models —
// deterministic SINRs and feasibility on the non-fading side; exact success
// probabilities (Theorem 1), bounds (Lemma 1), and sampling on the Rayleigh
// side — and runs the scheduling algorithms the paper's reduction transfers:
// capacity maximization, latency minimization, optimum simulation
// (Algorithm 1), and distributed regret learning.
//
// Minimal use:
//
//	scn, err := rayfade.NewScenario(rayfade.Figure1Workload(), 2.5, 1)
//	set := scn.GreedyCapacity()               // non-fading solution
//	rep := scn.TransferToRayleigh(set)        // Lemma-2 guarantee
//	exp := scn.ExpectedRayleighSuccesses(set) // exact Theorem-1 value
//
// Everything is deterministic given the seeds supplied; no global state.
package rayfade

import (
	"fmt"

	"rayfade/internal/capacity"
	"rayfade/internal/fading"
	"rayfade/internal/graphsched"
	"rayfade/internal/latency"
	"rayfade/internal/netio"
	"rayfade/internal/network"
	"rayfade/internal/opt"
	"rayfade/internal/regret"
	"rayfade/internal/rng"
	"rayfade/internal/sinr"
	"rayfade/internal/transform"
	"rayfade/internal/utility"
)

// Re-exported building blocks. The aliased packages remain internal; these
// aliases are the supported surface.
type (
	// Network is a set of links in a metric space with path loss and noise.
	Network = network.Network
	// Link is one sender→receiver communication request.
	Link = network.Link
	// NetworkConfig describes a random-network workload.
	NetworkConfig = network.Config
	// PowerAssignment maps link length to transmission power.
	PowerAssignment = network.PowerAssignment
	// UniformPower assigns every link the same power.
	UniformPower = network.UniformPower
	// SquareRootPower assigns power proportional to sqrt(length^α).
	SquareRootPower = network.SquareRootPower
	// LinearPower assigns power proportional to length^α.
	LinearPower = network.LinearPower
	// Utility maps an achieved SINR to a value (paper Definition 1).
	Utility = utility.Func
	// BinaryUtility is the threshold success indicator.
	BinaryUtility = utility.Binary
	// ShannonUtility is log(1+SINR).
	ShannonUtility = utility.Shannon
	// TransferReport is the Lemma-2 transfer guarantee.
	TransferReport = transform.TransferReport
	// SimulationStep is one probability level of Algorithm 1.
	SimulationStep = transform.Step
	// RegretHistory records a no-regret learning run.
	RegretHistory = regret.History
)

// Figure1Workload returns the random-network workload of the paper's
// Figure 1 (100 links, 1000×1000 plane, lengths 20–40, α=2.2, ν=4e-7,
// uniform power 2).
func Figure1Workload() NetworkConfig { return network.Figure1Config() }

// Figure2Workload returns the workload of the paper's Figure 2 (200 links,
// lengths (0,100], α=2.1, ν=0, uniform power 2).
func Figure2Workload() NetworkConfig { return network.Figure2Config() }

// Scenario couples a network to an SINR threshold and caches the gain
// matrix. Create one with NewScenario or FromNetwork. Methods that consume
// randomness take it from the scenario's seeded stream; a Scenario is not
// safe for concurrent use (clone the network and build per-goroutine
// scenarios instead).
type Scenario struct {
	net  *Network
	m    *network.Matrix
	beta float64
	src  *rng.Source
}

// NewScenario draws a random network from the workload and wraps it at the
// given SINR threshold. The seed fixes both the topology and all later
// stochastic operations on the scenario.
func NewScenario(cfg NetworkConfig, beta float64, seed uint64) (*Scenario, error) {
	src := rng.New(seed)
	net, err := network.Random(cfg, src)
	if err != nil {
		return nil, err
	}
	return fromNetwork(net, beta, src)
}

// LoadScenario reads a network from a netio/raygen JSON file and wraps it
// at the given threshold, seeding the scenario's randomness with seed.
func LoadScenario(path string, beta float64, seed uint64) (*Scenario, error) {
	net, err := netio.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return fromNetwork(net, beta, rng.New(seed))
}

// SaveNetwork writes the scenario's network to a netio JSON file, so the
// exact instance can be archived and replayed.
func (s *Scenario) SaveNetwork(path string) error {
	return netio.SaveFile(path, s.net)
}

// FromNetwork wraps an existing, caller-constructed network (e.g. measured
// topology, custom generator) at the given threshold, seeding the
// scenario's stochastic operations with seed.
func FromNetwork(net *Network, beta float64, seed uint64) (*Scenario, error) {
	return fromNetwork(net, beta, rng.New(seed))
}

// fromNetwork is the internal constructor; src may be nil, in which case
// stochastic methods panic until Reseed is called.
func fromNetwork(net *Network, beta float64, src *rng.Source) (*Scenario, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	if beta <= 0 {
		return nil, fmt.Errorf("rayfade: SINR threshold β = %g must be positive", beta)
	}
	return &Scenario{net: net, m: net.Gains(), beta: beta, src: src}, nil
}

// Reseed replaces the scenario's randomness stream.
func (s *Scenario) Reseed(seed uint64) { s.src = rng.New(seed) }

// N returns the number of links.
func (s *Scenario) N() int { return s.m.N }

// Beta returns the SINR threshold.
func (s *Scenario) Beta() float64 { return s.beta }

// Network returns the underlying network (shared, not a copy).
func (s *Scenario) Network() *Network { return s.net }

// rngOrPanic returns the stream, failing loudly if the scenario has none.
func (s *Scenario) rngOrPanic() *rng.Source {
	if s.src == nil {
		panic("rayfade: scenario has no randomness source; call Reseed")
	}
	return s.src
}

// --- Non-fading model -------------------------------------------------

// NonFadingSINRs returns γ_i^nf for every link when exactly the given set
// transmits (0 for links outside the set).
func (s *Scenario) NonFadingSINRs(set []int) []float64 {
	return sinr.Values(s.m, sinr.SetToActive(s.m.N, set))
}

// Feasible reports whether the set is simultaneously successful at the
// scenario threshold in the non-fading model.
func (s *Scenario) Feasible(set []int) bool {
	return sinr.Feasible(s.m, set, s.beta)
}

// GreedyCapacity runs the length-ordered affectance greedy (uniform /
// monotone powers) and returns a feasibility-certified set.
func (s *Scenario) GreedyCapacity() []int {
	return capacity.GreedyUniform(s.net, s.beta)
}

// PowerControlCapacity runs the greedy power-control capacity algorithm and
// returns the selected set with its certifying powers.
func (s *Scenario) PowerControlCapacity() capacity.PowerControlResult {
	return capacity.PowerControlGreedy(s.net, s.beta)
}

// OptimumEstimate estimates the maximum feasible set by local search
// (restarts × swap passes per internal defaults). The result is always
// feasible, hence a witnessed lower bound on the true optimum.
func (s *Scenario) OptimumEstimate() []int {
	return opt.LocalSearch(s.m, s.beta, opt.DefaultLocalSearch, s.rngOrPanic())
}

// ExactOptimum computes the true maximum feasible set by branch-and-bound.
// It panics for networks larger than opt.MaxBruteForceN links.
func (s *Scenario) ExactOptimum() []int {
	return opt.BruteForce(s.m, s.beta)
}

// --- Rayleigh model ----------------------------------------------------

// RayleighSuccessProbability returns Q_i(q, β) in closed form (Theorem 1):
// the probability that link i reaches the threshold when every link j
// transmits independently with probability q[j].
func (s *Scenario) RayleighSuccessProbability(q []float64, i int) float64 {
	return fading.ExactSuccess(s.m, q, s.beta, i)
}

// RayleighSuccessBounds returns the Lemma-1 lower and upper bounds on
// Q_i(q, β).
func (s *Scenario) RayleighSuccessBounds(q []float64, i int) (lo, hi float64) {
	return fading.LowerBound(s.m, q, s.beta, i), fading.UpperBound(s.m, q, s.beta, i)
}

// ExpectedRayleighSuccesses returns the exact expected number of successes
// when exactly the given set transmits under Rayleigh fading.
func (s *Scenario) ExpectedRayleighSuccesses(set []int) float64 {
	return fading.ExpectedBinaryValueOfSet(s.m, set, s.beta)
}

// SampleRayleighSuccesses draws one fading realization for the transmitting
// set and returns which links succeeded.
func (s *Scenario) SampleRayleighSuccesses(set []int) []int {
	return fading.SampleSuccesses(s.m, sinr.SetToActive(s.m.N, set), s.beta, s.rngOrPanic())
}

// ExpectedUtilityMC estimates E[Σ u(γ^R)] for transmission probabilities q
// by Monte Carlo with the given sample count.
func (s *Scenario) ExpectedUtilityMC(q []float64, u Utility, samples int) fading.MCResult {
	return fading.ExpectedUtilityMC(s.m, q, utility.Uniform(u), samples, s.rngOrPanic())
}

// --- The reduction -----------------------------------------------------

// TransferToRayleigh applies Lemma 2 to a non-fading solution set with
// binary utilities at the scenario threshold: the identical set, transmitted
// under Rayleigh fading, keeps at least a 1/e fraction of its value.
func (s *Scenario) TransferToRayleigh(set []int) TransferReport {
	return transform.Transfer(s.m, set, utility.Uniform(utility.Binary{Beta: s.beta}))
}

// SimulationSchedule builds the Algorithm-1 schedule simulating the
// Rayleigh transmission probabilities q with O(log* n) non-fading steps.
func (s *Scenario) SimulationSchedule(q []float64) []SimulationStep {
	return transform.Schedule(q, transform.ScheduleRepeats)
}

// BestSimulationStep evaluates the schedule's steps in the non-fading model
// (Monte Carlo, samplesPerStep each) and returns the best single step — the
// probability assignment Theorem 2 guarantees is within O(log* n) of the
// Rayleigh optimum.
func (s *Scenario) BestSimulationStep(q []float64, samplesPerStep int) transform.StepValue {
	best, _ := transform.BestStep(s.m, s.SimulationSchedule(q),
		utility.Uniform(utility.Binary{Beta: s.beta}), samplesPerStep, s.rngOrPanic())
	return best
}

// --- Latency -----------------------------------------------------------

// RepeatedCapacitySchedule builds a full non-fading schedule (every link
// succeeds once) by repeated single-slot maximization.
func (s *Scenario) RepeatedCapacitySchedule() ([][]int, error) {
	capFn := latency.GreedyCapacity(capacity.LengthOrder(s.net), capacity.DefaultTau)
	return latency.RepeatedCapacity(s.m, s.beta, capFn)
}

// PlayScheduleRayleigh replays a schedule under Rayleigh fading with the
// Section-4 repetition factor until every link succeeds (or maxRounds
// replays are exhausted). It returns the slots consumed.
func (s *Scenario) PlayScheduleRayleigh(slots [][]int, maxRounds int) (int, bool) {
	return latency.RepeatUntilDone(s.m, slots, s.beta, transform.AlohaRepeats, maxRounds,
		latency.Rayleigh{Src: s.rngOrPanic()})
}

// Aloha runs the distributed contention protocol with per-slot transmission
// probability p. Under model "rayleigh" each randomized step is executed
// transform.AlohaRepeats times, per the Section-4 transformation.
func (s *Scenario) Aloha(p float64, rayleigh bool) latency.AlohaResult {
	cfg := latency.AlohaConfig{Prob: p}
	var model latency.SuccessModel = latency.NonFading{}
	if rayleigh {
		cfg.Repeats = transform.AlohaRepeats
		model = latency.Rayleigh{Src: s.rngOrPanic()}
	}
	return latency.Aloha(s.m, s.beta, cfg, s.rngOrPanic(), model)
}

// --- Regret learning ---------------------------------------------------

// RunRegretLearning plays the Section-7 RWM dynamics for the given number
// of rounds and returns the trajectory (per-round successes, regret,
// Lemma-5 statistics).
func (s *Scenario) RunRegretLearning(rounds int, rayleigh bool) *RegretHistory {
	model := regret.NonFading
	if rayleigh {
		model = regret.Rayleigh
	}
	return regret.NewGame(s.m, s.beta, model, s.rngOrPanic().Split()).Run(rounds)
}

// RunBanditLearning plays the same game as RunRegretLearning but with Exp3
// bandit learners (Auer et al.), which consume only the reward of the action
// actually played — the natural model for links that cannot evaluate
// counterfactual transmissions. gamma is the Exp3 exploration rate.
func (s *Scenario) RunBanditLearning(rounds int, rayleigh bool, gamma float64) *RegretHistory {
	model := regret.NonFading
	if rayleigh {
		model = regret.Rayleigh
	}
	learners := make([]regret.Learner, s.m.N)
	for i := range learners {
		learners[i] = regret.NewExp3(gamma)
	}
	return regret.NewGameWithLearners(s.m, s.beta, model, learners, s.rngOrPanic().Split()).Run(rounds)
}

// WeightedCapacity runs link-weighted capacity maximization (the paper's
// second valid-utility family): weights are taken from the network's links,
// the scan is heaviest-first, and the returned set is feasibility-certified.
func (s *Scenario) WeightedCapacity() (set []int, value float64) {
	return capacity.GreedyWeighted(s.m, s.beta)
}

// SampleFadingSuccesses draws one realization under an arbitrary fading
// model (e.g. fading.NakagamiGains{M: 4}) and returns the successful links
// of the transmitting set. With fading.RayleighGains it matches
// SampleRayleighSuccesses in distribution.
func (s *Scenario) SampleFadingSuccesses(set []int, sampler fading.GainSampler) []int {
	active := sinr.SetToActive(s.m.N, set)
	vals := fading.SampleSINRsWith(s.m, active, sampler, s.rngOrPanic())
	var ok []int
	for i, a := range active {
		if a && vals[i] >= s.beta {
			ok = append(ok, i)
		}
	}
	return ok
}

// NashEquilibrium runs round-robin best-response dynamics on the expected-
// reward game (the equilibria the paper's no-regret sequences generalize)
// and returns the result, including the equilibrium's exact expected
// Rayleigh success count.
func (s *Scenario) NashEquilibrium() regret.NashResult {
	return regret.BestResponseDynamics(s.m, s.beta, 0)
}

// ConflictGraphCapacity runs the binary-conflict-graph baseline (the model
// class the paper's introduction contrasts SINR scheduling against): a
// greedy maximal independent set of the pairwise-affectance conflict graph
// at threshold tau (use graphsched.DefaultThreshold for the standard
// setting). It returns the claimed set and the subset that actually
// satisfies the true SINR constraint — the gap is the accumulation effect
// binary models cannot see.
func (s *Scenario) ConflictGraphCapacity(tau float64) (claimed, valid []int) {
	g := graphsched.FromMatrix(s.m, s.beta, tau)
	claimed = g.IndependentSet()
	active := sinr.SetToActive(s.m.N, claimed)
	vals := sinr.Values(s.m, active)
	for _, i := range claimed {
		if vals[i] >= s.beta {
			valid = append(valid, i)
		}
	}
	return claimed, valid
}

// ExpectedShannonRate returns the exact expected Shannon rate
// E[log(1+γ_i^R)] of link i under transmission probabilities q, computed by
// deterministic quadrature over the Theorem-1 closed form (no sampling).
// It reports fading.ErrInfiniteRate when the rate diverges (zero noise with
// positive silence probability).
func (s *Scenario) ExpectedShannonRate(q []float64, i int) (float64, error) {
	return fading.ExpectedShannonExact(s.m, q, i, 0)
}

// TotalShannonRate returns the exact expected network Shannon capacity
// Σ_i E[log(1+γ_i^R)] under transmission probabilities q.
func (s *Scenario) TotalShannonRate(q []float64) (float64, error) {
	return fading.TotalShannonExact(s.m, q, 0)
}

// UniformProbs returns the all-equal transmission probability vector for
// this scenario's links.
func (s *Scenario) UniformProbs(p float64) []float64 {
	return fading.UniformProbs(s.m.N, p)
}
